package packing

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// verifyPacking checks Definition 1's requirements at the packing level:
// every input size appears in exactly one bin, and no bin exceeds k.
func verifyPacking(t *testing.T, sizes []int, bins [][]int, k int) {
	t.Helper()
	want := map[int]int{}
	for _, s := range sizes {
		want[s]++
	}
	got := map[int]int{}
	for _, b := range bins {
		fill := 0
		for _, s := range b {
			got[s]++
			fill += s
		}
		if fill > k {
			t.Fatalf("bin %v exceeds capacity %d", b, k)
		}
		if len(b) == 0 {
			t.Fatal("empty bin emitted")
		}
	}
	for s, c := range want {
		if got[s] != c {
			t.Fatalf("size %d packed %d times; want %d (bins %v)", s, got[s], c, bins)
		}
	}
	for s := range got {
		if want[s] == 0 {
			t.Fatalf("size %d appears in bins but not in input", s)
		}
	}
}

func TestPatternFeasible(t *testing.T) {
	// Paper example: k=4, p1 = [0,0,0,1] is feasible (4 ≤ 4).
	p1 := Pattern{Count: []int{0, 0, 0, 1}}
	if !p1.Feasible(4) || p1.Slots() != 4 {
		t.Fatalf("p1 slots=%d feasible=%v", p1.Slots(), p1.Feasible(4))
	}
	p2 := Pattern{Count: []int{1, 0, 0, 1}}
	if p2.Feasible(4) {
		t.Fatal("[1,0,0,1] uses 5 slots and must be infeasible for k=4")
	}
}

func TestDemands(t *testing.T) {
	// Section 5.3's example: SCC sizes {4, 4, 2, 2} with k=4 give
	// c1=0, c2=2, c3=0, c4=2.
	c, err := Demands([]int{4, 4, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 0, 2}
	for j := range want {
		if c[j] != want[j] {
			t.Fatalf("Demands = %v; want %v", c, want)
		}
	}
	if _, err := Demands([]int{5}, 4); err == nil {
		t.Fatal("oversized component should error")
	}
	if _, err := Demands([]int{0}, 4); err == nil {
		t.Fatal("zero-size component should error")
	}
}

func TestFFDBasic(t *testing.T) {
	sizes := []int{4, 4, 2, 2}
	bins, err := FirstFitDecreasing(sizes, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyPacking(t, sizes, bins, 4)
	// FFD: 4|4|2+2 → 3 bins, which matches the paper's optimal packing.
	if len(bins) != 3 {
		t.Fatalf("FFD used %d bins; want 3", len(bins))
	}
}

func TestFFDRejectsBadSizes(t *testing.T) {
	if _, err := FirstFitDecreasing([]int{3, 9}, 4); err == nil {
		t.Fatal("size > k should error")
	}
}

func TestSolvePaperExample(t *testing.T) {
	// Section 5.3: packing {4, 4, 2, 2} with k=4 optimally needs 3 HITs
	// (x1=2 of pattern [0,0,0,1] and x2=1 of pattern [0,2,0,0]); the
	// suboptimal solution with 4 HITs must be avoided.
	sizes := []int{4, 4, 2, 2}
	res, err := Solve(sizes, 4)
	if err != nil {
		t.Fatal(err)
	}
	verifyPacking(t, sizes, res.Bins, 4)
	if res.NumBins() != 3 {
		t.Fatalf("Solve used %d bins; want 3", res.NumBins())
	}
	if !res.Optimal {
		t.Error("Solve should certify optimality here")
	}
	if res.LowerBound != 3 {
		t.Errorf("LowerBound = %d; want 3", res.LowerBound)
	}
}

func TestSolveEmpty(t *testing.T) {
	res, err := Solve(nil, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBins() != 0 || !res.Optimal {
		t.Fatalf("empty solve = %+v", res)
	}
}

func TestSolveCapacityErrors(t *testing.T) {
	if _, err := Solve([]int{1}, 0); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := Solve([]int{7}, 4); err == nil {
		t.Fatal("size > k should error")
	}
}

func TestSolveAllSingletons(t *testing.T) {
	sizes := make([]int, 17)
	for i := range sizes {
		sizes[i] = 1
	}
	res, err := Solve(sizes, 5)
	if err != nil {
		t.Fatal(err)
	}
	verifyPacking(t, sizes, res.Bins, 5)
	if res.NumBins() != 4 { // ceil(17/5)
		t.Fatalf("bins = %d; want 4", res.NumBins())
	}
}

func TestSolveTightTriples(t *testing.T) {
	// Six components of size 3 with k=9: exactly 2 bins.
	sizes := []int{3, 3, 3, 3, 3, 3}
	res, err := Solve(sizes, 9)
	if err != nil {
		t.Fatal(err)
	}
	verifyPacking(t, sizes, res.Bins, 9)
	if res.NumBins() != 2 {
		t.Fatalf("bins = %d; want 2", res.NumBins())
	}
}

func TestSolveBeatsNaiveOnMixedSizes(t *testing.T) {
	// Sizes engineered so one-bin-per-component would need 8 but the
	// optimum is the volume bound.
	sizes := []int{6, 4, 6, 4, 5, 5, 3, 7}
	k := 10
	res, err := Solve(sizes, k)
	if err != nil {
		t.Fatal(err)
	}
	verifyPacking(t, sizes, res.Bins, k)
	if res.NumBins() != 4 { // volume = 40, k = 10
		t.Fatalf("bins = %d; want 4 (volume bound)", res.NumBins())
	}
}

func TestSolveLowerBoundNeverExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 4 + rng.Intn(12)
		n := 1 + rng.Intn(40)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(k)
		}
		res, err := Solve(sizes, k)
		if err != nil {
			t.Fatal(err)
		}
		verifyPacking(t, sizes, res.Bins, k)
		if res.NumBins() < res.LowerBound {
			t.Fatalf("bins %d below lower bound %d", res.NumBins(), res.LowerBound)
		}
		ffd, _ := FirstFitDecreasing(sizes, k)
		if res.NumBins() > len(ffd) {
			t.Fatalf("Solve (%d bins) worse than FFD (%d bins)", res.NumBins(), len(ffd))
		}
	}
}

// Property: FFD output is a valid packing with at most one bin per item and
// at least the volume bound.
func TestFFDValidityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(15)
		n := rng.Intn(50)
		sizes := make([]int, n)
		vol := 0
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(k)
			vol += sizes[i]
		}
		bins, err := FirstFitDecreasing(sizes, k)
		if err != nil {
			return false
		}
		count := 0
		for _, b := range bins {
			fill := 0
			for _, s := range b {
				fill += s
				count++
			}
			if fill > k {
				return false
			}
		}
		lb := (vol + k - 1) / k
		return count == n && len(bins) >= lb && len(bins) <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: Solve never uses more bins than FFD and never fewer than the
// volume bound.
func TestSolveSandwichProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(10)
		n := rng.Intn(30)
		sizes := make([]int, n)
		vol := 0
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(k)
			vol += sizes[i]
		}
		res, err := Solve(sizes, k)
		if err != nil {
			return false
		}
		ffd, _ := FirstFitDecreasing(sizes, k)
		lb := (vol + k - 1) / k
		return res.NumBins() >= lb && res.NumBins() <= len(ffd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSimplexKnownLP(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → optimum 36 at (2, 6).
	res, err := simplexMax(
		[]float64{3, 5},
		[][]float64{{1, 0}, {0, 2}, {3, 2}},
		[]float64{4, 12, 18},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.objective < 35.999 || res.objective > 36.001 {
		t.Fatalf("objective = %v; want 36", res.objective)
	}
	if res.y[0] < 1.999 || res.y[0] > 2.001 || res.y[1] < 5.999 || res.y[1] > 6.001 {
		t.Fatalf("solution = %v; want (2, 6)", res.y)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	// max x s.t. -x ≤ 1 → unbounded.
	_, err := simplexMax([]float64{1}, [][]float64{{-1}}, []float64{1})
	if err == nil {
		t.Fatal("unbounded LP should error")
	}
}

func TestSimplexDegenerateDoesNotCycle(t *testing.T) {
	// Classic degenerate instance; must terminate.
	res, err := simplexMax(
		[]float64{10, -57, -9, -24},
		[][]float64{
			{0.5, -5.5, -2.5, 9},
			{0.5, -1.5, -0.5, 1},
			{1, 0, 0, 0},
		},
		[]float64{0, 0, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.objective < 0.999 || res.objective > 1.001 {
		t.Fatalf("objective = %v; want 1", res.objective)
	}
}

func TestPriceKnapsack(t *testing.T) {
	// Duals: size 2 worth 0.5, size 3 worth 0.9, k = 6.
	y := []float64{0, 0.5, 0.9, 0, 0, 0}
	p, v := priceKnapsack(y, 6)
	// Best: two size-3 items → value 1.8.
	if v < 1.799 || v > 1.801 {
		t.Fatalf("knapsack value = %v; want 1.8", v)
	}
	if p.Count[2] != 2 {
		t.Fatalf("pattern = %v; want two size-3 items", p)
	}
	if !p.Feasible(6) {
		t.Fatal("priced pattern must be feasible")
	}
}

func TestPriceKnapsackZeroDuals(t *testing.T) {
	p, v := priceKnapsack(make([]float64, 5), 5)
	if v != 0 || p.Slots() != 0 {
		t.Fatalf("zero duals should price an empty pattern; got %v value %v", p, v)
	}
}

func TestColumnGenerationConverges(t *testing.T) {
	demands := []int{0, 5, 0, 3, 0, 0, 0, 0, 0, 0} // five 2s, three 4s, k=10
	cols, x, iters, err := columnGeneration(demands, 10)
	if err != nil {
		t.Fatal(err)
	}
	if iters < 1 {
		t.Fatal("no iterations recorded")
	}
	// The LP must cover demand: Σ_i a_ij x_i ≥ c_j.
	for j := 0; j < 10; j++ {
		var cov float64
		for i, p := range cols {
			cov += float64(p.Count[j]) * x[i]
		}
		if cov < float64(demands[j])-1e-6 {
			t.Fatalf("LP coverage for size %d = %v < demand %d", j+1, cov, demands[j])
		}
	}
	// LP optimum must be ≥ volume/k = (10+12)/10 = 2.2.
	var obj float64
	for _, v := range x {
		obj += v
	}
	if obj < 2.2-1e-6 {
		t.Fatalf("LP objective %v below volume bound 2.2", obj)
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	sizes := make([]int, 300)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(sizes, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFDMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	sizes := make([]int, 300)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FirstFitDecreasing(sizes, 10); err != nil {
			b.Fatal(err)
		}
	}
}
