// Package packing solves the bottom tier of CrowdER's two-tiered approach
// (Section 5.3): packing small connected components into the minimum number
// of cluster-based HITs of capacity k. This is a one-dimensional
// cutting-stock problem; following the paper (and Valério de Carvalho,
// cited as [25]) it is solved with an LP relaxation by delayed column
// generation — the pricing problem is an unbounded knapsack — followed by
// branch-and-bound to obtain an integer solution. FirstFitDecreasing
// provides the classic heuristic used as an ablation baseline and as the
// rounding step's residual packer.
package packing

import (
	"errors"
	"math"
)

// lpResult holds the outcome of a simplex solve.
type lpResult struct {
	// y is the optimal solution of the maximization problem.
	y []float64
	// objective is the optimal objective value.
	objective float64
	// duals are the dual values of the ≤ constraints (one per row), read
	// from the objective row's slack coefficients at optimality.
	duals []float64
}

var errUnbounded = errors.New("packing: LP is unbounded")

const lpEps = 1e-9

// simplexMax solves   max obj·y  s.t.  A y ≤ rhs, y ≥ 0   with the dense
// primal simplex method (Bland's rule for anti-cycling). All rhs entries
// must be non-negative so the slack basis is feasible; the cutting-stock
// dual always satisfies this (rhs is the all-ones vector).
//
// In the cutting-stock usage, rows of A are patterns, columns are item
// sizes: solving this dual LP yields the size duals y directly (needed by
// the pricing knapsack), and the duals of these rows are the primal
// pattern activities x.
func simplexMax(obj []float64, a [][]float64, rhs []float64) (lpResult, error) {
	m := len(a)    // constraints
	n := len(obj)  // variables
	total := n + m // + slack variables
	// Tableau: m rows of [n vars | m slacks | rhs], plus objective row z.
	tab := make([][]float64, m)
	for i := 0; i < m; i++ {
		tab[i] = make([]float64, total+1)
		copy(tab[i], a[i])
		tab[i][n+i] = 1
		tab[i][total] = rhs[i]
		if rhs[i] < 0 {
			return lpResult{}, errors.New("packing: negative rhs not supported")
		}
	}
	z := make([]float64, total+1)
	for j := 0; j < n; j++ {
		z[j] = -obj[j] // maximization: reduced costs start at -obj
	}
	basis := make([]int, m)
	for i := range basis {
		basis[i] = n + i
	}

	// Dantzig's rule (most negative reduced cost) converges fast in
	// practice but can cycle on degenerate bases; after blandAfter
	// iterations we switch to Bland's rule, which provably terminates.
	blandAfter := 50 * (m + n + 1)
	maxIter := blandAfter + (1 << 20)
	for iter := 0; ; iter++ {
		if iter > maxIter {
			return lpResult{}, errors.New("packing: simplex iteration limit exceeded")
		}
		bland := iter >= blandAfter
		enter := -1
		best := -lpEps
		for j := 0; j < total; j++ {
			if z[j] < best {
				best = z[j]
				enter = j
				if bland {
					break // Bland: first improving index
				}
			}
		}
		if enter == -1 {
			break // optimal
		}
		// Leaving variable: min ratio test; tie-break on smallest basis
		// index (Bland) to limit cycling.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			if tab[i][enter] > lpEps {
				ratio := tab[i][total] / tab[i][enter]
				if ratio < bestRatio-lpEps ||
					(ratio < bestRatio+lpEps && (leave == -1 || basis[i] < basis[leave])) {
					bestRatio = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return lpResult{}, errUnbounded
		}
		pivot(tab, z, leave, enter, total)
		basis[leave] = enter
	}

	res := lpResult{
		y:     make([]float64, n),
		duals: make([]float64, m),
	}
	for i, b := range basis {
		if b < n {
			res.y[b] = tab[i][total]
		}
	}
	for i := 0; i < m; i++ {
		res.duals[i] = z[n+i]
	}
	// Objective value: z-row accumulated the optimum.
	var objv float64
	for j := 0; j < n; j++ {
		objv += obj[j] * res.y[j]
	}
	res.objective = objv
	return res, nil
}

// pivot performs a Gauss–Jordan pivot on tab[leave][enter], updating the
// objective row z as well.
func pivot(tab [][]float64, z []float64, leave, enter, width int) {
	p := tab[leave][enter]
	row := tab[leave]
	for j := 0; j <= width; j++ {
		row[j] /= p
	}
	for i := range tab {
		if i == leave {
			continue
		}
		f := tab[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j <= width; j++ {
			tab[i][j] -= f * row[j]
		}
	}
	f := z[enter]
	if f != 0 {
		for j := 0; j <= width; j++ {
			z[j] -= f * row[j]
		}
	}
}
