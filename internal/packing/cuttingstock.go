package packing

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Pattern describes the composition of one HIT in the paper's notation
// p = [a1, a2, ..., ak]: Count[j] is the number of packed components of
// size j+1 (so Count has length k). A pattern is feasible iff
// Σ (j+1)·Count[j] ≤ k (Section 5.3).
type Pattern struct {
	Count []int
}

// Slots returns the total number of vertices the pattern occupies.
func (p Pattern) Slots() int {
	s := 0
	for j, c := range p.Count {
		s += (j + 1) * c
	}
	return s
}

// Feasible reports whether the pattern fits within capacity k.
func (p Pattern) Feasible(k int) bool { return p.Slots() <= k }

func (p Pattern) String() string { return fmt.Sprint(p.Count) }

func (p Pattern) clone() Pattern {
	c := make([]int, len(p.Count))
	copy(c, p.Count)
	return Pattern{Count: c}
}

func (p Pattern) key() string { return fmt.Sprint(p.Count) }

// Result is the outcome of a cutting-stock solve.
type Result struct {
	// Bins lists, for each emitted HIT, the multiset of component sizes
	// packed into it (sizes sorted descending).
	Bins [][]int
	// LowerBound is the LP relaxation bound ⌈z_LP⌉ (number of HITs cannot
	// be below this).
	LowerBound int
	// Optimal reports whether the solution provably attains LowerBound
	// or was certified optimal by branch-and-bound.
	Optimal bool
	// Iterations is the number of column-generation rounds performed.
	Iterations int
	// PatternsGenerated is the number of distinct patterns priced in.
	PatternsGenerated int
}

// NumBins returns the number of HITs used.
func (r Result) NumBins() int { return len(r.Bins) }

// Demands converts a slice of component sizes into the demand vector
// c[j] = number of components of size j+1 (Section 5.3's c_j). Sizes must
// lie in [1, k].
func Demands(sizes []int, k int) ([]int, error) {
	c := make([]int, k)
	for _, s := range sizes {
		if s < 1 || s > k {
			return nil, fmt.Errorf("packing: component size %d outside [1, %d]", s, k)
		}
		c[s-1]++
	}
	return c, nil
}

// FirstFitDecreasing packs the given component sizes into bins of capacity
// k with the classic FFD heuristic: sort sizes descending, place each into
// the first bin with room, opening a new bin when none fits. It returns
// the bins as size multisets.
func FirstFitDecreasing(sizes []int, k int) ([][]int, error) {
	sorted := make([]int, len(sizes))
	copy(sorted, sizes)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	var bins [][]int
	var residual []int
	for _, s := range sorted {
		if s < 1 || s > k {
			return nil, fmt.Errorf("packing: component size %d outside [1, %d]", s, k)
		}
		placed := false
		for i := range bins {
			if residual[i] >= s {
				bins[i] = append(bins[i], s)
				residual[i] -= s
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, []int{s})
			residual = append(residual, k-s)
		}
	}
	return bins, nil
}

// Solve packs the given component sizes into the minimum number of bins of
// capacity k using the paper's method: LP relaxation of the cutting-stock
// formulation solved by delayed column generation (pricing = unbounded
// knapsack over the LP duals), then branch-and-bound over the generated
// columns, cross-checked against round-down + FFD and pure FFD. The best
// integer solution found is returned; Optimal is set when it meets the LP
// lower bound or B&B proved optimality.
func Solve(sizes []int, k int) (Result, error) {
	if k < 1 {
		return Result{}, errors.New("packing: capacity must be >= 1")
	}
	if len(sizes) == 0 {
		return Result{Optimal: true}, nil
	}
	demands, err := Demands(sizes, k)
	if err != nil {
		return Result{}, err
	}

	cols, lpVals, iters, err := columnGeneration(demands, k)
	if err != nil {
		return Result{}, err
	}
	var lpObj float64
	for _, v := range lpVals {
		lpObj += v
	}
	lb := int(math.Ceil(lpObj - 1e-6))
	// The trivial volume bound also applies and guards LP numerical slack.
	vol := 0
	for _, s := range sizes {
		vol += s
	}
	if vb := (vol + k - 1) / k; vb > lb {
		lb = vb
	}

	// Upper bound 1: round the LP down and pack the residual demand by FFD.
	roundBins := roundDownAndRepair(cols, lpVals, demands, k)
	// Upper bound 2: pure FFD.
	ffdBins, err := FirstFitDecreasing(sizes, k)
	if err != nil {
		return Result{}, err
	}
	best := roundBins
	if len(ffdBins) < len(best) {
		best = ffdBins
	}

	optimal := len(best) == lb
	if !optimal {
		// Branch-and-bound over the generated columns for a certified
		// integer optimum of the restricted master problem.
		bb, proved := branchAndBound(cols, demands, k, len(best)+1)
		if bb != nil {
			bbBins := patternsToBins(cols, bb, demands)
			if len(bbBins) < len(best) {
				best = bbBins
			}
		}
		optimal = len(best) == lb || proved
	}

	return Result{
		Bins:              canonicalBins(best),
		LowerBound:        lb,
		Optimal:           optimal,
		Iterations:        iters,
		PatternsGenerated: len(cols),
	}, nil
}

// columnGeneration runs delayed column generation on the cutting-stock LP:
//
//	min Σ x_i  s.t.  Σ_i a_ij x_i ≥ c_j,  x ≥ 0.
//
// It solves the dual LP (max c·y s.t. each pattern's a·y ≤ 1, y ≥ 0) with
// the simplex method; the dual's variables y are exactly the size duals
// needed by the pricing knapsack, and the dual's row duals recover the
// primal pattern activities x.
func columnGeneration(demands []int, k int) (cols []Pattern, x []float64, iters int, err error) {
	// Initial columns: for each demanded size j, a homogeneous pattern with
	// ⌊k/j⌋ components of that size (always feasible, covers every row).
	seen := make(map[string]bool)
	for j := 1; j <= k; j++ {
		if demands[j-1] == 0 {
			continue
		}
		p := Pattern{Count: make([]int, k)}
		p.Count[j-1] = k / j
		cols = append(cols, p)
		seen[p.key()] = true
	}
	if len(cols) == 0 {
		return nil, nil, 0, nil
	}

	obj := make([]float64, k)
	for j := 0; j < k; j++ {
		obj[j] = float64(demands[j])
	}

	const maxRounds = 500
	for iters = 1; iters <= maxRounds; iters++ {
		a := make([][]float64, len(cols))
		rhs := make([]float64, len(cols))
		for i, p := range cols {
			row := make([]float64, k)
			for j := 0; j < k; j++ {
				row[j] = float64(p.Count[j])
			}
			a[i] = row
			rhs[i] = 1
		}
		res, serr := simplexMax(obj, a, rhs)
		if serr != nil {
			return nil, nil, iters, serr
		}
		x = res.duals

		// Pricing: most violated pattern under duals y = res.y.
		newPat, value := priceKnapsack(res.y, k)
		if value <= 1+1e-7 {
			return cols, x, iters, nil // LP optimal
		}
		key := newPat.key()
		if seen[key] {
			// Numerical stall: the "improving" pattern already exists.
			return cols, x, iters, nil
		}
		seen[key] = true
		cols = append(cols, newPat)
	}
	return cols, x, maxRounds, nil
}

// priceKnapsack solves the pricing problem: find a feasible pattern
// maximizing Σ y_j a_j subject to Σ j·a_j ≤ k (unbounded knapsack with
// item weights 1..k and values y). Returns the pattern and its value.
func priceKnapsack(y []float64, k int) (Pattern, float64) {
	best := make([]float64, k+1) // best[w]: max value with capacity w
	choice := make([]int, k+1)   // size taken at capacity w (0 = none)
	for w := 1; w <= k; w++ {
		bestVal := best[w-1]
		bestChoice := 0
		for j := 1; j <= w; j++ {
			v := best[w-j] + y[j-1]
			if v > bestVal+1e-12 {
				bestVal = v
				bestChoice = j
			}
		}
		best[w] = bestVal
		choice[w] = bestChoice
	}
	p := Pattern{Count: make([]int, k)}
	w := k
	for w > 0 {
		if choice[w] == 0 {
			w--
			continue
		}
		j := choice[w]
		p.Count[j-1]++
		w -= j
	}
	return p, best[k]
}

// roundDownAndRepair takes the fractional LP solution, keeps ⌊x_i⌋ copies
// of each pattern, and packs the uncovered residual demand with FFD.
func roundDownAndRepair(cols []Pattern, x []float64, demands []int, k int) [][]int {
	residual := make([]int, len(demands))
	copy(residual, demands)
	var bins [][]int
	for i, p := range cols {
		n := int(math.Floor(x[i] + 1e-9))
		if n <= 0 {
			continue
		}
		// Don't emit more copies of a pattern than the remaining demand can
		// use: cap by the max over sizes of ceil(residual_j / a_ij).
		useful := 0
		for j, a := range p.Count {
			if a > 0 && residual[j] > 0 {
				need := (residual[j] + a - 1) / a
				if need > useful {
					useful = need
				}
			}
		}
		if n > useful {
			n = useful
		}
		for c := 0; c < n; c++ {
			var bin []int
			for j, a := range p.Count {
				for t := 0; t < a && residual[j] > 0; t++ {
					bin = append(bin, j+1)
					residual[j]--
				}
			}
			if len(bin) > 0 {
				bins = append(bins, bin)
			}
		}
	}
	var leftover []int
	for j, r := range residual {
		for t := 0; t < r; t++ {
			leftover = append(leftover, j+1)
		}
	}
	if len(leftover) > 0 {
		extra, _ := FirstFitDecreasing(leftover, k) // sizes are valid by construction
		bins = append(bins, extra...)
	}
	return bins
}

// branchAndBound searches for an integer solution over the generated
// columns with cost < ub. It returns the pattern multiset of the best
// solution found (nil if none better than ub) and whether the search ran
// to completion (proving optimality over these columns).
func branchAndBound(cols []Pattern, demands []int, k int, ub int) (best map[int]int, proved bool) {
	// Order columns by slots used descending so dense patterns are tried
	// first — this finds good solutions early and tightens pruning.
	order := make([]int, len(cols))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return cols[order[a]].Slots() > cols[order[b]].Slots()
	})

	bestCost := ub
	cur := make(map[int]int)
	var nodes int
	const nodeLimit = 2_000_000
	proved = true

	var rec func(pos int, used int, residual []int)
	rec = func(pos int, used int, residual []int) {
		if nodes++; nodes > nodeLimit {
			proved = false
			return
		}
		// Residual volume lower bound.
		vol := 0
		covered := true
		for j, r := range residual {
			if r > 0 {
				covered = false
				vol += r * (j + 1)
			}
		}
		if covered {
			if used < bestCost {
				bestCost = used
				best = make(map[int]int, len(cur))
				for i, c := range cur {
					best[i] = c
				}
			}
			return
		}
		lb := used + (vol+k-1)/k
		if lb >= bestCost {
			return
		}
		if pos >= len(order) {
			return
		}
		i := order[pos]
		p := cols[i]
		// Max useful copies of pattern i for the residual demand.
		maxCopies := 0
		for j, a := range p.Count {
			if a > 0 && residual[j] > 0 {
				need := (residual[j] + a - 1) / a
				if need > maxCopies {
					maxCopies = need
				}
			}
		}
		if maxCopies+used >= bestCost {
			maxCopies = bestCost - used - 1
		}
		for c := maxCopies; c >= 0; c-- {
			next := make([]int, len(residual))
			copy(next, residual)
			for j, a := range p.Count {
				next[j] -= a * c
				if next[j] < 0 {
					next[j] = 0
				}
			}
			if c > 0 {
				cur[i] = c
			}
			rec(pos+1, used+c, next)
			delete(cur, i)
			if nodes > nodeLimit {
				return
			}
		}
	}
	rec(0, 0, demands)
	return best, proved
}

// patternsToBins expands a pattern multiset (column index → copies) into
// concrete bins, assigning real demand to pattern slots and dropping any
// slots beyond the true demand. Bins that end up covering no demand at all
// are dropped, so the returned count can be below the pattern-count sum.
func patternsToBins(cols []Pattern, patterns map[int]int, demands []int) [][]int {
	idxs := make([]int, 0, len(patterns))
	for i := range patterns {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	residual := make([]int, len(demands))
	copy(residual, demands)
	var bins [][]int
	for _, i := range idxs {
		p := cols[i]
		for c := 0; c < patterns[i]; c++ {
			var bin []int
			for j, a := range p.Count {
				for t := 0; t < a && residual[j] > 0; t++ {
					bin = append(bin, j+1)
					residual[j]--
				}
			}
			if len(bin) > 0 {
				bins = append(bins, bin)
			}
		}
	}
	return bins
}

// canonicalBins sorts sizes within each bin descending and bins by
// (descending fill, then lexicographic) for deterministic output.
func canonicalBins(bins [][]int) [][]int {
	out := make([][]int, len(bins))
	for i, b := range bins {
		c := make([]int, len(b))
		copy(c, b)
		sort.Sort(sort.Reverse(sort.IntSlice(c)))
		out[i] = c
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := sum(out[i]), sum(out[j])
		if si != sj {
			return si > sj
		}
		return fmt.Sprint(out[i]) < fmt.Sprint(out[j])
	})
	return out
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
