// Package active implements pool-based active learning for entity
// resolution — the human-in-the-loop alternative the paper discusses in
// Section 8 (Sarawagi & Bhamidipaty; Arasu et al.): instead of labeling a
// fixed random training sample, the learner iteratively queries labels
// for the pairs it is most uncertain about, cutting the number of labels
// needed to reach a given quality.
//
// CrowdER spends crowd effort on *verifying* likely matches; active
// learning spends it on *training* a classifier. This package lets the
// repository compare the two uses of the same human budget (see the
// extension experiment in internal/experiments).
package active

import (
	"errors"
	"maps"
	"math"
	"math/rand"
	"slices"
	"sort"

	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/svm"
)

// Oracle answers label queries (in experiments: the ground truth; in a
// live system: a crowd worker).
type Oracle func(record.Pair) bool

// Options configures the active-learning loop.
type Options struct {
	// SeedSize is the initial random labeled sample (default 20).
	SeedSize int
	// BatchSize is the number of labels queried per round (default 20).
	BatchSize int
	// Rounds is the number of query rounds (default 10).
	Rounds int
	// Attrs selects the feature attributes (default all).
	Attrs []int
	// Seed drives sampling and training randomness.
	Seed int64
	// Strategy selects the query strategy (default Uncertainty).
	Strategy Strategy
}

// Strategy selects which unlabeled pairs to query.
type Strategy int

const (
	// Uncertainty queries the pairs with the smallest |margin| — the
	// classic uncertainty-sampling rule.
	Uncertainty Strategy = iota
	// RandomSampling queries uniformly — the passive baseline, exposed so
	// label-efficiency comparisons share one code path.
	RandomSampling
)

func (o *Options) defaults(t *record.Table) {
	if o.SeedSize <= 0 {
		o.SeedSize = 20
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 20
	}
	if o.Rounds <= 0 {
		o.Rounds = 10
	}
	if len(o.Attrs) == 0 {
		for i := range t.Schema {
			o.Attrs = append(o.Attrs, i)
		}
	}
}

// RoundStats records the state after one query round.
type RoundStats struct {
	// Labels is the cumulative number of labels purchased.
	Labels int
	// PosLabels is how many of them were positive.
	PosLabels int
}

// Result is the outcome of an active-learning run.
type Result struct {
	// Model is the final trained classifier.
	Model *svm.Model
	// LabelsUsed is the total number of oracle queries.
	LabelsUsed int
	// History records cumulative label counts per round.
	History []RoundStats
	// Ranked is the candidate pool ordered by final model score
	// descending (the input to precision-recall evaluation).
	Ranked []record.Pair
}

// Run executes the active-learning loop over the candidate pool: label a
// random seed, then for each round train a classifier and query labels
// for the BatchSize pairs chosen by the strategy, retraining as labels
// accumulate.
func Run(t *record.Table, pool []record.Pair, oracle Oracle, opts Options) (*Result, error) {
	if len(pool) == 0 {
		return nil, errors.New("active: empty candidate pool")
	}
	if oracle == nil {
		return nil, errors.New("active: nil oracle")
	}
	opts.defaults(t)
	rng := rand.New(rand.NewSource(opts.Seed))

	features := make([][]float64, len(pool))
	for i, p := range pool {
		features[i] = svm.FeatureVector(t, p, opts.Attrs)
	}

	labeled := make(map[int]bool)   // pool index → queried
	labels := make(map[int]float64) // pool index → ±1
	query := func(idx int) {
		if labeled[idx] {
			return
		}
		labeled[idx] = true
		if oracle(pool[idx]) {
			labels[idx] = 1
		} else {
			labels[idx] = -1
		}
	}

	// Seed sample: half from the top of a similarity proxy (mean feature
	// value — likely positives live there), half uniform. A purely random
	// seed from a heavily imbalanced pool usually contains no positives,
	// which degenerates the first model and strands uncertainty sampling
	// in a region with nothing to learn.
	proxyOrder := make([]int, len(pool))
	for i := range proxyOrder {
		proxyOrder[i] = i
	}
	sort.Slice(proxyOrder, func(a, b int) bool {
		return mean(features[proxyOrder[a]]) > mean(features[proxyOrder[b]])
	})
	for i := 0; i < len(proxyOrder) && len(labeled) < opts.SeedSize/2; i++ {
		query(proxyOrder[i])
	}
	for _, idx := range rng.Perm(len(pool)) {
		if len(labeled) >= opts.SeedSize {
			break
		}
		query(idx)
	}
	// Guarantee both classes before the first training round when the
	// pool provides them: walk down the proxy ranking for a positive and
	// up from the bottom for a negative.
	ensureBothClasses(proxyOrder, labeled, labels, query)

	res := &Result{}
	var model *svm.Model
	train := func() error {
		// Sorted pool order, not map order: Pegasos permutes examples from
		// the seeded RNG, so the *input* order must be deterministic for
		// retraining over the same labeled set to be bit-identical.
		examples := make([]svm.Example, 0, len(labeled))
		for _, idx := range slices.Sorted(maps.Keys(labeled)) {
			examples = append(examples, svm.Example{X: features[idx], Label: labels[idx]})
		}
		m, err := svm.Train(examples, svm.TrainOptions{Seed: opts.Seed, BalanceClasses: true})
		if err != nil {
			return err
		}
		model = m
		return nil
	}
	snapshot := func() {
		pos := 0
		for idx := range labeled {
			if labels[idx] > 0 {
				pos++
			}
		}
		res.History = append(res.History, RoundStats{Labels: len(labeled), PosLabels: pos})
	}

	if err := train(); err != nil {
		return nil, err
	}
	snapshot()

	for round := 0; round < opts.Rounds; round++ {
		if len(labeled) >= len(pool) {
			break
		}
		switch opts.Strategy {
		case RandomSampling:
			for _, idx := range rng.Perm(len(pool)) {
				if len(labeled) >= min(len(pool), res.History[len(res.History)-1].Labels+opts.BatchSize) {
					break
				}
				query(idx)
			}
		default: // Uncertainty
			type cand struct {
				idx    int
				margin float64
			}
			var cands []cand
			for i := range pool {
				if !labeled[i] {
					cands = append(cands, cand{idx: i, margin: math.Abs(model.Score(features[i]))})
				}
			}
			sort.Slice(cands, func(a, b int) bool {
				if cands[a].margin != cands[b].margin {
					return cands[a].margin < cands[b].margin
				}
				return cands[a].idx < cands[b].idx
			})
			for i := 0; i < opts.BatchSize && i < len(cands); i++ {
				query(cands[i].idx)
			}
		}
		if err := train(); err != nil {
			return nil, err
		}
		snapshot()
	}

	res.Model = model
	res.LabelsUsed = len(labeled)
	res.Ranked = rankByScore(pool, features, model)
	return res, nil
}

func rankByScore(pool []record.Pair, features [][]float64, m *svm.Model) []record.Pair {
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := m.Score(features[idx[a]]), m.Score(features[idx[b]])
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	out := make([]record.Pair, len(pool))
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ensureBothClasses tops up the labeled set so both classes are present
// when the pool contains them: scan the proxy ranking from the top for a
// positive and from the bottom for a negative.
func ensureBothClasses(proxyOrder []int, labeled map[int]bool, labels map[int]float64, query func(int)) {
	hasPos, hasNeg := false, false
	check := func() {
		hasPos, hasNeg = false, false
		for idx := range labeled {
			if labels[idx] > 0 {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
	}
	check()
	for i := 0; i < len(proxyOrder) && !hasPos; i++ {
		query(proxyOrder[i])
		check()
	}
	for i := len(proxyOrder) - 1; i >= 0 && !hasNeg; i-- {
		query(proxyOrder[i])
		check()
	}
}
