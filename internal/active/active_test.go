package active

import (
	"testing"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/eval"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
)

// pool builds a candidate pool with ground truth from a small Restaurant
// dataset.
func pool(t *testing.T) (*dataset.Dataset, []record.Pair) {
	t.Helper()
	d := dataset.RestaurantN(7, 300, 40)
	pairs := simjoin.Pairs(simjoin.Join(d.Table, simjoin.Options{Threshold: 0.1}))
	return d, pairs
}

func TestRunBasics(t *testing.T) {
	d, pairs := pool(t)
	res, err := Run(d.Table, pairs, func(p record.Pair) bool {
		return d.Matches.Has(p.A, p.B)
	}, Options{Seed: 1, SeedSize: 20, BatchSize: 20, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelsUsed != 20+5*20 {
		t.Errorf("LabelsUsed = %d; want 120", res.LabelsUsed)
	}
	if len(res.History) != 6 {
		t.Errorf("History has %d rounds; want 6", len(res.History))
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Labels <= res.History[i-1].Labels {
			t.Error("label counts should grow each round")
		}
	}
	if len(res.Ranked) != len(pairs) {
		t.Errorf("Ranked has %d pairs; want %d", len(res.Ranked), len(pairs))
	}
}

func TestRunErrors(t *testing.T) {
	d, pairs := pool(t)
	if _, err := Run(d.Table, nil, func(record.Pair) bool { return false }, Options{}); err == nil {
		t.Error("empty pool should error")
	}
	if _, err := Run(d.Table, pairs, nil, Options{}); err == nil {
		t.Error("nil oracle should error")
	}
}

func TestUncertaintyFindsPositives(t *testing.T) {
	// Uncertainty sampling must discover far more positives than the base
	// rate: the uncertain region is where the matches live.
	d, pairs := pool(t)
	oracle := func(p record.Pair) bool { return d.Matches.Has(p.A, p.B) }
	res, err := Run(d.Table, pairs, oracle, Options{Seed: 2, SeedSize: 30, BatchSize: 20, Rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	baseRate := float64(d.Matches.Len()) / float64(len(pairs))
	gotRate := float64(last.PosLabels) / float64(last.Labels)
	if gotRate < 3*baseRate {
		t.Errorf("positive rate among queried labels = %.4f; want well above base rate %.4f", gotRate, baseRate)
	}
}

func TestActiveBeatsPassiveAtEqualBudget(t *testing.T) {
	// The Sarawagi et al. result: at the same label budget, uncertainty
	// sampling yields a better ranking than random sampling. Individual
	// seeds are noisy (a lucky random sample can win once), so compare
	// mean AUC over several seeds.
	d, pairs := pool(t)
	oracle := func(p record.Pair) bool { return d.Matches.Has(p.A, p.B) }

	var aSum, pSum float64
	const trials = 5
	for s := int64(0); s < trials; s++ {
		opts := Options{Seed: 100 + s, SeedSize: 30, BatchSize: 25, Rounds: 6}
		activeRes, err := Run(d.Table, pairs, oracle, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Strategy = RandomSampling
		passiveRes, err := Run(d.Table, pairs, oracle, opts)
		if err != nil {
			t.Fatal(err)
		}
		if activeRes.LabelsUsed > passiveRes.LabelsUsed+opts.BatchSize {
			t.Fatalf("budgets should be comparable: %d vs %d", activeRes.LabelsUsed, passiveRes.LabelsUsed)
		}
		aSum += eval.AUCPR(eval.PRCurve(activeRes.Ranked, d.Matches, d.Matches.Len()))
		pSum += eval.AUCPR(eval.PRCurve(passiveRes.Ranked, d.Matches, d.Matches.Len()))
	}
	if aSum < pSum-0.05*trials {
		t.Errorf("mean active AUC (%.3f) should not trail mean passive AUC (%.3f)",
			aSum/trials, pSum/trials)
	}
}

func TestPoolExhaustion(t *testing.T) {
	// Rounds × BatchSize exceeding the pool must terminate cleanly with
	// every pair labeled at most once.
	d := dataset.RestaurantN(9, 60, 8)
	pairs := simjoin.Pairs(simjoin.Join(d.Table, simjoin.Options{Threshold: 0.3}))
	if len(pairs) == 0 {
		t.Skip("no candidates at this threshold")
	}
	res, err := Run(d.Table, pairs, func(p record.Pair) bool {
		return d.Matches.Has(p.A, p.B)
	}, Options{Seed: 4, SeedSize: 5, BatchSize: 1000, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.LabelsUsed > len(pairs) {
		t.Errorf("labeled %d pairs out of a pool of %d", res.LabelsUsed, len(pairs))
	}
}

func TestRunRepeatIsBitIdentical(t *testing.T) {
	// Pins the map-iteration fix in train(): the labeled set is a map, so
	// feeding Pegasos in map order made every retrain — and therefore the
	// query sequence and final model — differ between identical runs.
	// Two runs over the same pool and seed must agree exactly: same
	// ranking, same weights, same per-round label counts.
	d, pairs := pool(t)
	oracle := func(p record.Pair) bool { return d.Matches.Has(p.A, p.B) }
	opts := Options{Seed: 11, SeedSize: 20, BatchSize: 20, Rounds: 4}
	a, err := Run(d.Table, pairs, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d.Table, pairs, oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ranked) != len(b.Ranked) {
		t.Fatalf("rankings sized %d vs %d", len(a.Ranked), len(b.Ranked))
	}
	for i := range a.Ranked {
		if a.Ranked[i] != b.Ranked[i] {
			t.Fatalf("ranking diverges at %d: %v vs %v", i, a.Ranked[i], b.Ranked[i])
		}
	}
	if len(a.Model.W) != len(b.Model.W) || a.Model.B != b.Model.B {
		t.Fatal("final models differ in shape or bias")
	}
	for i := range a.Model.W {
		if a.Model.W[i] != b.Model.W[i] {
			t.Fatalf("weight %d differs: %v vs %v", i, a.Model.W[i], b.Model.W[i])
		}
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("round %d stats differ: %+v vs %+v", i, a.History[i], b.History[i])
		}
	}
}
