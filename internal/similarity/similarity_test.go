package similarity

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/crowder/crowder/internal/record"
)

// sets interns two token slices through a shared interner, returning the
// sorted ID-set representation the set-similarity functions operate on.
func sets(xs, ys []string) ([]int32, []int32) {
	in := record.NewInterner()
	return in.IDSet(xs...), in.IDSet(ys...)
}

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestJaccardPaperExample(t *testing.T) {
	// Section 2.1.1: J(r1, r2) over Product Names.
	r1, r2 := sets(
		[]string{"ipad", "two", "16gb", "wifi", "white"},
		[]string{"ipad", "2nd", "generation", "16gb", "wifi", "white"},
	)
	got := Jaccard(r1, r2)
	want := 4.0 / 7.0 // the paper rounds to 0.57
	if !almostEq(got, want) {
		t.Fatalf("J(r1,r2) = %v; want %v", got, want)
	}
	if got < 0.5 {
		t.Fatal("paper says J(r1,r2) >= 0.5, so the pair matches at threshold 0.5")
	}
}

func TestJaccardPaperNonMatch(t *testing.T) {
	// Section 2.1.1: J(r1, r3) = 0.25 < 0.5.
	r1, r3 := sets(
		[]string{"ipad", "two", "16gb", "wifi", "white"},
		[]string{"iphone", "4th", "generation", "white", "16gb"},
	)
	got := Jaccard(r1, r3)
	if !almostEq(got, 0.25) {
		t.Fatalf("J(r1,r3) = %v; want 0.25", got)
	}
}

func TestJaccardEdgeCases(t *testing.T) {
	if got := Jaccard(nil, nil); got != 1 {
		t.Errorf("J(∅,∅) = %v; want 1", got)
	}
	a, empty := sets([]string{"a"}, nil)
	if got := Jaccard(a, empty); got != 0 {
		t.Errorf("J({a},∅) = %v; want 0", got)
	}
	x, y := sets([]string{"a", "b"}, []string{"a", "b"})
	if got := Jaccard(x, y); got != 1 {
		t.Errorf("J(X,X) = %v; want 1", got)
	}
}

func TestIntersectSize(t *testing.T) {
	a, b := sets([]string{"a", "b", "c", "e"}, []string{"b", "c", "d"})
	if got := IntersectSize(a, b); got != 2 {
		t.Errorf("IntersectSize = %d; want 2", got)
	}
	if got := IntersectSize(a, nil); got != 0 {
		t.Errorf("IntersectSize(X,∅) = %d; want 0", got)
	}
}

func TestDice(t *testing.T) {
	a, b := sets([]string{"a", "b", "c"}, []string{"b", "c", "d"})
	if got := Dice(a, b); !almostEq(got, 2.0*2/6) {
		t.Errorf("Dice = %v; want %v", got, 2.0*2/6)
	}
	if Dice(nil, nil) != 1 {
		t.Error("Dice(∅,∅) should be 1")
	}
}

func TestOverlap(t *testing.T) {
	a, b := sets([]string{"a", "b"}, []string{"a", "b", "c", "d"})
	if got := Overlap(a, b); got != 1 {
		t.Errorf("Overlap = %v; want 1 (a ⊆ b)", got)
	}
	empty, x := sets(nil, []string{"x"})
	if Overlap(empty, x) != 0 {
		t.Error("Overlap(∅, X) should be 0")
	}
	if Overlap(nil, nil) != 1 {
		t.Error("Overlap(∅, ∅) should be 1")
	}
}

func TestCosineSet(t *testing.T) {
	a, b := sets([]string{"a", "b"}, []string{"a", "c"})
	want := 1.0 / math.Sqrt(4)
	if got := CosineSet(a, b); !almostEq(got, want) {
		t.Errorf("CosineSet = %v; want %v", got, want)
	}
	if CosineSet(nil, nil) != 1 {
		t.Error("CosineSet(∅,∅) should be 1")
	}
	x, empty := sets([]string{"a"}, nil)
	if CosineSet(x, empty) != 0 {
		t.Error("CosineSet(X,∅) should be 0")
	}
}

func TestCosineTF(t *testing.T) {
	a := NewTF([]string{"x", "x", "y"})
	b := NewTF([]string{"x", "y", "y"})
	// dot = 2*1 + 1*2 = 4; |a| = sqrt(5); |b| = sqrt(5).
	if got := CosineTF(a, b); !almostEq(got, 4.0/5.0) {
		t.Errorf("CosineTF = %v; want 0.8", got)
	}
	if CosineTF(TF{}, TF{}) != 1 {
		t.Error("CosineTF(∅,∅) should be 1")
	}
	if CosineTF(NewTF([]string{"a"}), TF{}) != 0 {
		t.Error("CosineTF(X,∅) should be 0")
	}
}

func TestCosineStrings(t *testing.T) {
	if got := CosineStrings("Apple iPad", "apple ipad"); !almostEq(got, 1) {
		t.Errorf("CosineStrings(same after normalize) = %v; want 1", got)
	}
	if got := CosineStrings("alpha", "beta"); got != 0 {
		t.Errorf("CosineStrings(disjoint) = %v; want 0", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"ab", "ba", 2},
		{"oceana", "oceania", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d; want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSim(t *testing.T) {
	if got := LevenshteinSim("", ""); got != 1 {
		t.Errorf("LevenshteinSim(∅,∅) = %v; want 1", got)
	}
	if got := LevenshteinSim("abcd", "abcd"); got != 1 {
		t.Errorf("identical = %v; want 1", got)
	}
	if got := LevenshteinSim("abcd", "wxyz"); got != 0 {
		t.Errorf("totally different = %v; want 0", got)
	}
	if got := LevenshteinSim("kitten", "sitting"); !almostEq(got, 1-3.0/7.0) {
		t.Errorf("kitten/sitting = %v; want %v", got, 1-3.0/7.0)
	}
}

func TestQGrams(t *testing.T) {
	got := QGrams("ab", 2)
	want := []string{"#a", "ab", "b$"}
	if len(got) != len(want) {
		t.Fatalf("QGrams = %v; want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("QGrams = %v; want %v", got, want)
		}
	}
	if QGrams("abc", 0) != nil {
		t.Error("q=0 should return nil")
	}
	// Empty string with q=2 still yields the padding gram "#$".
	if g := QGrams("", 2); len(g) != 1 || g[0] != "#$" {
		t.Errorf(`QGrams("",2) = %v; want ["#$"]`, g)
	}
}

func TestQGramJaccard(t *testing.T) {
	if got := QGramJaccard("abc", "abc", 2); got != 1 {
		t.Errorf("identical q-gram Jaccard = %v; want 1", got)
	}
	got := QGramJaccard("abc", "xyz", 2)
	if got != 0 {
		t.Errorf("disjoint q-gram Jaccard = %v; want 0", got)
	}
	// q=0 yields no grams on either side: identical empty sets.
	if got := QGramJaccard("abc", "xyz", 0); got != 1 {
		t.Errorf("no-gram Jaccard = %v; want 1", got)
	}
}

func TestSetSimilarityProperties(t *testing.T) {
	type simFn struct {
		name string
		fn   func(a, b []int32) float64
	}
	fns := []simFn{
		{"Jaccard", Jaccard},
		{"Dice", Dice},
		{"Overlap", Overlap},
		{"CosineSet", CosineSet},
	}
	for _, sf := range fns {
		sf := sf
		t.Run(sf.name, func(t *testing.T) {
			f := func(xs, ys []string) bool {
				a, b := sets(xs, ys)
				v := sf.fn(a, b)
				// Bounds, symmetry, identity.
				if v < 0 || v > 1 {
					return false
				}
				if !almostEq(v, sf.fn(b, a)) {
					return false
				}
				return almostEq(sf.fn(a, a), 1)
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

// Property: the merge intersection agrees with the hash-set intersection
// that the interned representation replaced.
func TestIntersectAgreesWithTokenSet(t *testing.T) {
	f := func(xs, ys []string) bool {
		a, b := sets(xs, ys)
		want := record.NewTokenSet(xs...).IntersectionSize(record.NewTokenSet(ys...))
		return IntersectSize(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Jaccard <= Dice <= Overlap ordering for non-empty sets, and
// Jaccard <= CosineSet (AM–GM).
func TestSimilarityOrderingProperty(t *testing.T) {
	f := func(xs, ys []string) bool {
		a, b := sets(xs, ys)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		j, d, o, c := Jaccard(a, b), Dice(a, b), Overlap(a, b), CosineSet(a, b)
		const eps = 1e-12
		return j <= d+eps && d <= o+eps && j <= c+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Levenshtein is a metric — symmetric, zero iff equal, and
// satisfies the triangle inequality.
func TestLevenshteinMetricProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		if dab != dba {
			return false
		}
		if (dab == 0) != (a == b) {
			// Equal strings after rune conversion; byte-identical implies 0.
			if a == b && dab != 0 {
				return false
			}
			if dab == 0 && a != b {
				return false
			}
		}
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		return dab <= dac+dcb
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Levenshtein bounded by max length; at least |len(a)-len(b)|.
func TestLevenshteinBoundsProperty(t *testing.T) {
	f := func(a, b string) bool {
		ra, rb := []rune(a), []rune(b)
		d := Levenshtein(a, b)
		diff := len(ra) - len(rb)
		if diff < 0 {
			diff = -diff
		}
		max := len(ra)
		if len(rb) > max {
			max = len(rb)
		}
		return d >= diff && d <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkJaccard(b *testing.B) {
	x, y := sets(
		[]string{"apple", "ipad2", "16gb", "wifi", "white", "tablet", "2011"},
		[]string{"ipad", "2nd", "generation", "16gb", "wifi", "white"},
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Jaccard(x, y)
	}
}

func BenchmarkLevenshtein(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Levenshtein("apple ipad2 16gb wifi white", "ipad 2nd generation 16gb wifi white")
	}
}
