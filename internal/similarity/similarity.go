// Package similarity implements the string- and set-similarity functions
// used by CrowdER's machine pass and by the learning-based baseline:
// Jaccard, Dice, overlap and cosine set similarities, TF cosine similarity,
// Levenshtein edit distance (raw and normalized), and q-gram extraction.
//
// The set functions operate on the interned representation of the data
// model (record.Table.TokenIDs): a token set is a strictly ascending
// []int32 of dense token IDs, and every intersection is a branch-light
// linear merge over two sorted slices — no hashing on the hot path.
//
// All similarity functions return values in [0, 1], are symmetric, and
// return 1 for identical non-empty inputs.
package similarity

import (
	"cmp"
	"math"

	"github.com/crowder/crowder/internal/record"
)

// intersectSorted returns |a ∩ b| for two strictly ascending sorted
// slices by a linear merge.
func intersectSorted[E cmp.Ordered](a, b []E) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// IntersectSize returns |a ∩ b| for two sorted token-ID sets. When one
// set is much larger than the other it gallops instead of merging.
func IntersectSize(a, b []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= gallopSkewRatio*len(a) {
		return IntersectSizeGalloping(a, b)
	}
	return intersectSorted(a, b)
}

// gallopSkewRatio is the size skew at which galloping beats the linear
// merge: below it the merge's branch-light loop wins on real data.
const gallopSkewRatio = 16

// IntersectSizeGalloping returns |a ∩ b| by galloping search: for each
// element of the smaller set, an exponential probe followed by a binary
// search locates its insertion point in the larger set, so the cost is
// O(|small|·log(|large|/|small|)) rather than O(|small| + |large|). The
// result is exactly IntersectSize; the join's verification step uses it
// when a short probing record meets a long indexed one.
func IntersectSizeGalloping(small, large []int32) int {
	if len(small) > len(large) {
		small, large = large, small
	}
	n, lo := 0, 0
	for _, v := range small {
		// Exponential probe from the current frontier.
		step := 1
		hi := lo
		for hi < len(large) && large[hi] < v {
			lo = hi + 1
			hi += step
			step <<= 1
		}
		if hi > len(large) {
			hi = len(large)
		}
		// Binary search in the bracketed window [lo, hi).
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if large[mid] < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(large) {
			break
		}
		if large[lo] == v {
			n++
			lo++
		}
	}
	return n
}

// jaccardSorted is the Jaccard formula shared by the token-ID and q-gram
// paths, including the empty-set convention.
func jaccardSorted[E cmp.Ordered](a, b []E) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := intersectSorted(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Jaccard returns |a ∩ b| / |a ∪ b| over sorted token-ID sets. By
// convention two empty sets have similarity 1 (they are identical).
// Skewed set sizes take the galloping path (see IntersectSize).
func Jaccard(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := IntersectSize(a, b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Dice returns 2·|a ∩ b| / (|a| + |b|) over sorted token-ID sets.
func Dice(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	denom := len(a) + len(b)
	if denom == 0 {
		return 1
	}
	return 2 * float64(intersectSorted(a, b)) / float64(denom)
}

// Overlap returns |a ∩ b| / min(|a|, |b|), the overlap coefficient, over
// sorted token-ID sets.
func Overlap(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	min := len(a)
	if len(b) < min {
		min = len(b)
	}
	if min == 0 {
		return 0
	}
	return float64(intersectSorted(a, b)) / float64(min)
}

// CosineSet returns |a ∩ b| / sqrt(|a|·|b|), the set (binary-vector)
// cosine similarity, over sorted token-ID sets.
func CosineSet(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	return float64(intersectSorted(a, b)) / math.Sqrt(float64(len(a))*float64(len(b)))
}

// TF is a term-frequency vector over tokens.
type TF map[string]float64

// NewTF builds a term-frequency vector from a token slice (with multiplicity).
func NewTF(tokens []string) TF {
	tf := make(TF, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	return tf
}

// CosineTF returns the cosine similarity between two term-frequency vectors.
func CosineTF(a, b TF) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	small, large := a, b
	if len(large) < len(small) {
		small, large = large, small
	}
	var dot float64
	for t, w := range small {
		if w2, ok := large[t]; ok {
			dot += w * w2
		}
	}
	var na, nb float64
	for _, w := range a {
		na += w * w
	}
	for _, w := range b {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// CosineStrings tokenizes both strings (with normalization) and returns the
// TF cosine similarity. This is the "cosine similarity" feature used by the
// SVM baseline in Section 7.3 (following Köpcke et al.).
func CosineStrings(a, b string) float64 {
	return CosineTF(NewTF(record.Tokenize(a)), NewTF(record.Tokenize(b)))
}

// Levenshtein returns the edit distance between a and b: the minimum
// number of single-rune insertions, deletions and substitutions needed to
// transform a into b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	// Keep the shorter string in the inner dimension to bound memory.
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			del := prev[j] + 1
			ins := cur[j-1] + 1
			sub := prev[j-1] + cost
			m := del
			if ins < m {
				m = ins
			}
			if sub < m {
				m = sub
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// LevenshteinSim returns 1 − d(a,b)/max(|a|,|b|), a similarity in [0, 1].
// Two empty strings have similarity 1.
func LevenshteinSim(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	max := len(ra)
	if len(rb) > max {
		max = len(rb)
	}
	if max == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(max)
}

// QGrams returns the padded q-grams of s. The string is padded with q−1
// copies of '#' on the left and '$' on the right, the standard construction
// for q-gram indexing (Christen's survey, cited as [7]).
func QGrams(s string, q int) []string {
	if q <= 0 {
		return nil
	}
	rs := []rune(s)
	padded := make([]rune, 0, len(rs)+2*(q-1))
	for i := 0; i < q-1; i++ {
		padded = append(padded, '#')
	}
	padded = append(padded, rs...)
	for i := 0; i < q-1; i++ {
		padded = append(padded, '$')
	}
	if len(padded) < q {
		return nil
	}
	out := make([]string, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		out = append(out, string(padded[i:i+q]))
	}
	return out
}

// QGramJaccard returns the Jaccard similarity between the q-gram sets of
// two strings.
func QGramJaccard(a, b string, q int) float64 {
	ga := record.NewTokenSet(QGrams(a, q)...).Sorted()
	gb := record.NewTokenSet(QGrams(b, q)...).Sorted()
	return jaccardSorted(ga, gb)
}
