// Package record defines the core data model for entity resolution:
// records with named attributes, tables of records, token normalization,
// and record pairs.
//
// The model follows Section 2 of the CrowdER paper: each record is a row
// with string attributes (e.g. [name, address, city, type] for the
// Restaurant dataset); machine-based techniques operate on the token set
// derived from all attribute values after normalization (lowercasing and
// replacing non-alphanumeric characters with spaces, per Section 7.1).
package record

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"sync"
)

// ID identifies a record within a Table. IDs are dense, starting at 0.
type ID int

// Record is a single row: an ID plus attribute values positionally aligned
// with the owning Table's schema.
type Record struct {
	ID     ID
	Values []string
}

// Attr returns the value of the attribute at position i, or "" if the
// record has no such attribute.
func (r *Record) Attr(i int) string {
	if i < 0 || i >= len(r.Values) {
		return ""
	}
	return r.Values[i]
}

// String renders the record in the "[v1, v2, ...]" form used by the paper.
func (r *Record) String() string {
	return fmt.Sprintf("r%d[%s]", r.ID, strings.Join(r.Values, ", "))
}

// Table is a collection of records sharing a schema.
type Table struct {
	// Schema names the attributes, e.g. ["name", "address", "city", "type"].
	Schema  []string
	Records []Record

	// Source optionally tags each record with the data source it came from
	// (used by integrated datasets such as Product = abt ∪ buy). Empty when
	// the table has a single source. When non-empty, len(Source) equals
	// len(Records) and Source[i] is the source index of Records[i].
	Source []int

	// Token cache (see TokenIDs): every record is tokenized and interned at
	// most once. mu guards lazy construction so concurrent readers are safe;
	// mutating the table itself concurrently with reads is not. postings is
	// the live full inverted index (see Postings); posted counts the records
	// already inserted into it.
	mu       sync.Mutex
	interner *Interner
	tokenIDs [][]int32
	postings [][]int32
	posted   int
}

// NewTable creates an empty table with the given schema.
func NewTable(schema ...string) *Table {
	return &Table{Schema: schema}
}

// Append adds a record with the given attribute values and returns its ID.
func (t *Table) Append(values ...string) ID {
	id := ID(len(t.Records))
	vs := make([]string, len(values))
	copy(vs, values)
	t.Records = append(t.Records, Record{ID: id, Values: vs})
	return id
}

// AppendFrom adds a record tagged with a source index (for integrated
// two-source tables such as Product).
func (t *Table) AppendFrom(source int, values ...string) ID {
	id := t.Append(values...)
	for len(t.Source) < len(t.Records)-1 {
		t.Source = append(t.Source, 0)
	}
	t.Source = append(t.Source, source)
	return id
}

// Len returns the number of records.
func (t *Table) Len() int { return len(t.Records) }

// Get returns the record with the given ID, or nil if out of range.
func (t *Table) Get(id ID) *Record {
	if int(id) < 0 || int(id) >= len(t.Records) {
		return nil
	}
	return &t.Records[id]
}

// CrossOK reports whether the pair (a, b) is admissible under an optional
// cross-source-only restriction: always true when the restriction is off
// or the table is single-source, otherwise true iff the records come from
// different sources. The join and blocking layers share this predicate.
func (t *Table) CrossOK(crossOnly bool, a, b ID) bool {
	if !crossOnly || len(t.Source) == 0 {
		return true
	}
	return t.Source[a] != t.Source[b]
}

// AttrIndex returns the position of the named attribute in the schema, or
// -1 if absent.
func (t *Table) AttrIndex(name string) int {
	for i, s := range t.Schema {
		if s == name {
			return i
		}
	}
	return -1
}

// Pair is an unordered pair of record IDs with A < B canonically.
type Pair struct {
	A, B ID
}

// MakePair returns the canonical (ordered) form of the pair {a, b}.
func MakePair(a, b ID) Pair {
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// Contains reports whether id is one of the pair's endpoints.
func (p Pair) Contains(id ID) bool { return p.A == id || p.B == id }

// Other returns the endpoint that is not id. It panics if id is not an
// endpoint, which indicates a programming error at the call site.
func (p Pair) Other(id ID) ID {
	switch id {
	case p.A:
		return p.B
	case p.B:
		return p.A
	}
	panic(fmt.Sprintf("record: pair %v does not contain %d", p, id))
}

func (p Pair) String() string { return fmt.Sprintf("(r%d,r%d)", p.A, p.B) }

// PairSet is a set of canonical pairs.
type PairSet map[Pair]struct{}

// NewPairSet builds a set from the given pairs, canonicalizing each.
func NewPairSet(pairs ...Pair) PairSet {
	s := make(PairSet, len(pairs))
	for _, p := range pairs {
		s.Add(p.A, p.B)
	}
	return s
}

// Add inserts the canonical pair {a, b}. Self-pairs are ignored.
func (s PairSet) Add(a, b ID) {
	if a == b {
		return
	}
	s[MakePair(a, b)] = struct{}{}
}

// Has reports whether the canonical pair {a, b} is present.
func (s PairSet) Has(a, b ID) bool {
	_, ok := s[MakePair(a, b)]
	return ok
}

// Len returns the number of pairs.
func (s PairSet) Len() int { return len(s) }

// Slice returns the pairs in deterministic (sorted) order.
func (s PairSet) Slice() []Pair {
	out := make([]Pair, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	SortPairs(out)
	return out
}

// SortPairs orders pairs by (A, B) ascending, in place.
func SortPairs(ps []Pair) {
	slices.SortFunc(ps, func(a, b Pair) int {
		if c := cmp.Compare(a.A, b.A); c != 0 {
			return c
		}
		return cmp.Compare(a.B, b.B)
	})
}
