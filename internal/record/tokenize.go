package record

import (
	"slices"
	"strings"
)

// Normalize applies the paper's preprocessing (Section 7.1): letters are
// lowercased and every non-alphanumeric character is replaced with a space.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// Tokenize splits a normalized string into whitespace-delimited tokens.
func Tokenize(s string) []string {
	return strings.Fields(Normalize(s))
}

// TokenSet is a set of distinct tokens.
type TokenSet map[string]struct{}

// NewTokenSet builds a set from the given tokens.
func NewTokenSet(tokens ...string) TokenSet {
	s := make(TokenSet, len(tokens))
	for _, t := range tokens {
		s[t] = struct{}{}
	}
	return s
}

// Add inserts a token.
func (s TokenSet) Add(tok string) { s[tok] = struct{}{} }

// Has reports membership.
func (s TokenSet) Has(tok string) bool {
	_, ok := s[tok]
	return ok
}

// Len returns the set cardinality.
func (s TokenSet) Len() int { return len(s) }

// Sorted returns the tokens in lexicographic order.
func (s TokenSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for t := range s {
		out = append(out, t)
	}
	slices.Sort(out)
	return out
}

// IntersectionSize returns |s ∩ o|.
func (s TokenSet) IntersectionSize(o TokenSet) int {
	small, large := s, o
	if len(large) < len(small) {
		small, large = large, small
	}
	n := 0
	for t := range small {
		if large.Has(t) {
			n++
		}
	}
	return n
}

// UnionSize returns |s ∪ o|.
func (s TokenSet) UnionSize(o TokenSet) int {
	return len(s) + len(o) - s.IntersectionSize(o)
}

// RecordTokens returns the token set of a record: the union of tokens from
// all attribute values (Section 7.1: "a token set for each record, which
// consisted of the tokens from all attribute values").
func RecordTokens(r *Record) TokenSet {
	s := make(TokenSet)
	for _, v := range r.Values {
		for _, t := range Tokenize(v) {
			s.Add(t)
		}
	}
	return s
}

// AttrTokens returns the token set of a single attribute value.
func AttrTokens(r *Record, attr int) TokenSet {
	s := make(TokenSet)
	for _, t := range Tokenize(r.Attr(attr)) {
		s.Add(t)
	}
	return s
}

// TableTokens materializes RecordTokens for every record in the table,
// indexed by record ID.
func TableTokens(t *Table) []TokenSet {
	out := make([]TokenSet, t.Len())
	for i := range t.Records {
		out[i] = RecordTokens(&t.Records[i])
	}
	return out
}

// SortedRecordTokens returns each record's tokens as a sorted slice,
// indexed by record ID. The similarity-join code uses this form for
// prefix filtering.
func SortedRecordTokens(t *Table) [][]string {
	out := make([][]string, t.Len())
	for i := range t.Records {
		out[i] = RecordTokens(&t.Records[i]).Sorted()
	}
	return out
}
