package record

import (
	"testing"
	"testing/quick"
)

func TestTableAppendAndGet(t *testing.T) {
	tab := NewTable("name", "price")
	id1 := tab.Append("iPad Two 16GB WiFi White", "$490")
	id2 := tab.Append("iPad 2nd generation 16GB WiFi White", "$469")

	if id1 != 0 || id2 != 1 {
		t.Fatalf("IDs = %d, %d; want 0, 1", id1, id2)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d; want 2", tab.Len())
	}
	r := tab.Get(id2)
	if r == nil || r.Attr(1) != "$469" {
		t.Fatalf("Get(%d) = %v; want price $469", id2, r)
	}
	if tab.Get(-1) != nil || tab.Get(99) != nil {
		t.Fatal("Get out of range should return nil")
	}
}

func TestTableAppendFrom(t *testing.T) {
	tab := NewTable("name")
	tab.AppendFrom(0, "abt record")
	tab.AppendFrom(1, "buy record")
	tab.AppendFrom(1, "another buy record")
	if len(tab.Source) != 3 {
		t.Fatalf("len(Source) = %d; want 3", len(tab.Source))
	}
	want := []int{0, 1, 1}
	for i, w := range want {
		if tab.Source[i] != w {
			t.Errorf("Source[%d] = %d; want %d", i, tab.Source[i], w)
		}
	}
}

func TestTableAppendFromAfterAppend(t *testing.T) {
	tab := NewTable("name")
	tab.Append("plain")
	tab.AppendFrom(2, "sourced")
	if len(tab.Source) != 2 || tab.Source[0] != 0 || tab.Source[1] != 2 {
		t.Fatalf("Source = %v; want [0 2]", tab.Source)
	}
}

func TestAttrIndex(t *testing.T) {
	tab := NewTable("name", "address", "city", "type")
	if got := tab.AttrIndex("city"); got != 2 {
		t.Errorf("AttrIndex(city) = %d; want 2", got)
	}
	if got := tab.AttrIndex("missing"); got != -1 {
		t.Errorf("AttrIndex(missing) = %d; want -1", got)
	}
}

func TestRecordAttrOutOfRange(t *testing.T) {
	r := Record{ID: 0, Values: []string{"a"}}
	if r.Attr(1) != "" || r.Attr(-1) != "" {
		t.Error("Attr out of range should return empty string")
	}
	if r.Attr(0) != "a" {
		t.Error("Attr(0) should return the value")
	}
}

func TestMakePairCanonical(t *testing.T) {
	p := MakePair(5, 2)
	if p.A != 2 || p.B != 5 {
		t.Fatalf("MakePair(5,2) = %v; want (2,5)", p)
	}
	if MakePair(2, 5) != p {
		t.Fatal("MakePair should be order-insensitive")
	}
}

func TestPairOther(t *testing.T) {
	p := MakePair(3, 7)
	if p.Other(3) != 7 || p.Other(7) != 3 {
		t.Fatal("Other returned the wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-member should panic")
		}
	}()
	p.Other(9)
}

func TestPairContains(t *testing.T) {
	p := MakePair(1, 4)
	if !p.Contains(1) || !p.Contains(4) || p.Contains(2) {
		t.Fatal("Contains gave wrong answer")
	}
}

func TestPairSetBasics(t *testing.T) {
	s := NewPairSet()
	s.Add(1, 2)
	s.Add(2, 1) // duplicate under canonicalization
	s.Add(3, 3) // self-pair ignored
	s.Add(4, 5)
	if s.Len() != 2 {
		t.Fatalf("Len = %d; want 2", s.Len())
	}
	if !s.Has(2, 1) || !s.Has(4, 5) || s.Has(1, 3) {
		t.Fatal("Has gave wrong answers")
	}
	got := s.Slice()
	want := []Pair{{1, 2}, {4, 5}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v; want %v", got, want)
		}
	}
}

func TestSortPairs(t *testing.T) {
	ps := []Pair{{3, 4}, {1, 9}, {1, 2}, {0, 7}}
	SortPairs(ps)
	want := []Pair{{0, 7}, {1, 2}, {1, 9}, {3, 4}}
	for i := range want {
		if ps[i] != want[i] {
			t.Fatalf("SortPairs = %v; want %v", ps, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Apple iPad2 16GB, WiFi White", "apple ipad2 16gb  wifi white"},
		{"55 e. 54th st.", "55 e  54th st "},
		{"ABC", "abc"},
		{"", ""},
		{"---", "   "},
		{"Déjà", "d j "}, // non-ASCII letters are treated as separators
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q; want %q", c.in, got, c.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Apple iPod shuffle 2GB Blue!")
	want := []string{"apple", "ipod", "shuffle", "2gb", "blue"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v; want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Tokenize = %v; want %v", got, want)
		}
	}
}

func TestTokenSetOps(t *testing.T) {
	a := NewTokenSet("ipad", "16gb", "wifi", "white")
	b := NewTokenSet("ipad", "16gb", "wifi", "white", "two", "2nd", "generation")
	if got := a.IntersectionSize(b); got != 4 {
		t.Errorf("IntersectionSize = %d; want 4", got)
	}
	if got := a.UnionSize(b); got != 7 {
		t.Errorf("UnionSize = %d; want 7", got)
	}
	// Symmetry.
	if a.IntersectionSize(b) != b.IntersectionSize(a) {
		t.Error("IntersectionSize not symmetric")
	}
	if a.UnionSize(b) != b.UnionSize(a) {
		t.Error("UnionSize not symmetric")
	}
}

func TestTokenSetSorted(t *testing.T) {
	s := NewTokenSet("pear", "apple", "mango")
	got := s.Sorted()
	want := []string{"apple", "mango", "pear"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted = %v; want %v", got, want)
		}
	}
}

func TestRecordTokensPaperExample(t *testing.T) {
	// r1 from Table 1 of the paper: the Jaccard computation in Section 2.1.1
	// uses the Product Name tokens {iPad, Two, 16GB, WiFi, White}.
	tab := NewTable("product_name", "price")
	id := tab.Append("iPad Two 16GB WiFi White", "$490")
	toks := AttrTokens(tab.Get(id), 0)
	want := []string{"16gb", "ipad", "two", "white", "wifi"}
	got := toks.Sorted()
	if len(got) != len(want) {
		t.Fatalf("AttrTokens = %v; want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AttrTokens = %v; want %v", got, want)
		}
	}
	// RecordTokens also folds in the price tokens.
	all := RecordTokens(tab.Get(id))
	if !all.Has("490") {
		t.Error("RecordTokens should include price tokens")
	}
}

func TestTableTokens(t *testing.T) {
	tab := NewTable("name")
	tab.Append("alpha beta")
	tab.Append("beta gamma")
	ts := TableTokens(tab)
	if len(ts) != 2 {
		t.Fatalf("len = %d; want 2", len(ts))
	}
	if !ts[0].Has("alpha") || !ts[1].Has("gamma") {
		t.Error("TableTokens missing expected tokens")
	}
	st := SortedRecordTokens(tab)
	if len(st[0]) != 2 || st[0][0] != "alpha" {
		t.Errorf("SortedRecordTokens[0] = %v", st[0])
	}
}

// Property: MakePair always yields A <= B and is order-insensitive.
func TestMakePairProperty(t *testing.T) {
	f := func(a, b int16) bool {
		p := MakePair(ID(a), ID(b))
		q := MakePair(ID(b), ID(a))
		return p == q && p.A <= p.B
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Normalize output contains only [a-z0-9 ] and is idempotent.
func TestNormalizeProperty(t *testing.T) {
	f := func(s string) bool {
		n := Normalize(s)
		for _, r := range n {
			ok := r == ' ' || (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9')
			if !ok {
				return false
			}
		}
		return Normalize(n) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection <= min size, union >= max size, and
// |A| + |B| = |A∩B| + |A∪B|.
func TestTokenSetSizeProperty(t *testing.T) {
	f := func(xs, ys []string) bool {
		a, b := NewTokenSet(xs...), NewTokenSet(ys...)
		i, u := a.IntersectionSize(b), a.UnionSize(b)
		min := a.Len()
		if b.Len() < min {
			min = b.Len()
		}
		max := a.Len()
		if b.Len() > max {
			max = b.Len()
		}
		return i <= min && u >= max && a.Len()+b.Len() == i+u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairUniverse(t *testing.T) {
	tab := NewTable("name")
	tab.Append("a")
	tab.Append("b")
	tab.Append("c")
	if got := tab.PairUniverse(false); got != 3 {
		t.Errorf("all-pairs universe = %d; want 3", got)
	}
	// Single-source tables ignore crossOnly.
	if got := tab.PairUniverse(true); got != 3 {
		t.Errorf("crossOnly without sources = %d; want 3", got)
	}

	multi := NewTable("name")
	// Tags deliberately not {0, 1}: counts {4: 2, 9: 3, 11: 1}.
	for _, src := range []int{4, 9, 4, 9, 9, 11} {
		multi.AppendFrom(src, "x")
	}
	// Cross products: 2·3 + 2·1 + 3·1 = 11.
	if got := multi.PairUniverse(true); got != 11 {
		t.Errorf("cross universe = %d; want 11", got)
	}
	if got := multi.PairUniverse(false); got != 15 {
		t.Errorf("all-pairs universe = %d; want 15", got)
	}
}

func TestPostingsIncremental(t *testing.T) {
	tab := NewTable("name")
	tab.Append("alpha beta")
	tab.Append("beta gamma")
	posts := tab.Postings()
	if len(posts) != tab.TokenUniverse() {
		t.Fatalf("postings cover %d tokens; universe %d", len(posts), tab.TokenUniverse())
	}
	beta, ok := tab.Tokens().Lookup("beta")
	if !ok {
		t.Fatal("beta not interned")
	}
	if got := posts[beta]; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("postings[beta] = %v", got)
	}
	// Appending extends the live index without rebuilding.
	tab.Append("beta delta")
	posts = tab.Postings()
	if got := posts[beta]; len(got) != 3 || got[2] != 2 {
		t.Fatalf("postings[beta] after append = %v", got)
	}
	delta, _ := tab.Tokens().Lookup("delta")
	if got := posts[delta]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("postings[delta] = %v", got)
	}
}
