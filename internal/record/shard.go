package record

// FNV-1a 64-bit constants, written out so the hash is obviously stable:
// shard assignments are persisted implicitly in every sharded structure
// keyed by them (verdict-cache banks, per-shard deduction graphs), so
// the function must never change behavior across versions.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashID folds one ID into an FNV-1a state, one byte at a time.
func hashID(h uint64, id int64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= uint64(uint8(id >> s))
		h *= fnvPrime64
	}
	return h
}

// Shard maps the pair onto one of n shards by a stable content hash
// (FNV-1a over both endpoint IDs). It depends only on the canonical
// pair, never on observation or insertion order, so any structure
// partitioned by it — the verdict cache's banks, the per-shard
// transitivity graphs — assigns a pair to the same shard in every
// batching of the same table. n ≤ 1 returns 0.
func (p Pair) Shard(n int) int {
	if n <= 1 {
		return 0
	}
	h := hashID(hashID(fnvOffset64, int64(p.A)), int64(p.B))
	return int(h % uint64(n))
}
