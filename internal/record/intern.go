package record

import "slices"

// Interner assigns dense int32 IDs to token strings. Dense IDs let the
// similarity and join layers replace hash-map token sets with sorted
// []int32 slices: intersections become linear merges, inverted indexes
// become flat slices, and the per-token memory drops from a map entry to
// four bytes. IDs are assigned in first-seen order, starting at 0.
//
// An Interner is not safe for concurrent mutation; concurrent read-only
// use (Lookup, Token, Len) is safe once interning is complete.
type Interner struct {
	ids  map[string]int32
	toks []string
}

// NewInterner creates an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]int32)}
}

// Intern returns the ID of tok, assigning the next dense ID if unseen.
func (in *Interner) Intern(tok string) int32 {
	if id, ok := in.ids[tok]; ok {
		return id
	}
	id := int32(len(in.toks))
	in.ids[tok] = id
	in.toks = append(in.toks, tok)
	return id
}

// Lookup returns the ID of tok if it has been interned.
func (in *Interner) Lookup(tok string) (int32, bool) {
	id, ok := in.ids[tok]
	return id, ok
}

// Token returns the string for an interned ID. It panics on out-of-range
// IDs, which indicates a programming error at the call site.
func (in *Interner) Token(id int32) string {
	return in.toks[id]
}

// Len returns the number of distinct interned tokens; valid IDs are
// [0, Len).
func (in *Interner) Len() int { return len(in.toks) }

// IDSet interns every token and returns the deduplicated IDs sorted
// ascending — the canonical set representation used by the similarity
// merge-intersection functions.
func (in *Interner) IDSet(tokens ...string) []int32 {
	if len(tokens) == 0 {
		return nil
	}
	out := make([]int32, 0, len(tokens))
	for _, t := range tokens {
		out = append(out, in.Intern(t))
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// ensureTokenIDs extends the table's token-ID cache to cover every record,
// tokenizing each record exactly once over the table's lifetime. The
// caller must hold t.mu.
func (t *Table) ensureTokenIDs() {
	if t.interner == nil {
		t.interner = NewInterner()
	}
	for i := len(t.tokenIDs); i < len(t.Records); i++ {
		r := &t.Records[i]
		var toks []string
		for _, v := range r.Values {
			toks = append(toks, Tokenize(v)...)
		}
		t.tokenIDs = append(t.tokenIDs, t.interner.IDSet(toks...))
	}
}

// TokenIDs returns each record's token set as sorted dense IDs, indexed by
// record ID. The result is cached on the table: every record is tokenized
// once no matter how many times TokenIDs is called, and appending records
// later only tokenizes the new ones. Tables are append-only as far as the
// cache is concerned — mutating an already-tokenized record's Values in
// place is unsupported and would leave the cache stale. The returned
// slices must not be mutated. Safe for concurrent callers as long as the
// table itself is not being mutated concurrently.
func (t *Table) TokenIDs() [][]int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureTokenIDs()
	return t.tokenIDs[:len(t.Records):len(t.Records)]
}

// Tokens returns the table's token interner, building the token cache
// first so every record's tokens are present. Valid token IDs are
// [0, Tokens().Len()).
func (t *Table) Tokens() *Interner {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureTokenIDs()
	return t.interner
}

// TokenUniverse returns the number of distinct tokens across the table —
// the exclusive upper bound on the IDs in TokenIDs. Dense layers (inverted
// indexes, frequency tables) size their arrays with it.
func (t *Table) TokenUniverse() int {
	return t.Tokens().Len()
}
