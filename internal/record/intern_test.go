package record

import (
	"sync"
	"testing"
)

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner()
	a := in.Intern("apple")
	b := in.Intern("ipad")
	if a != 0 || b != 1 {
		t.Fatalf("IDs not dense from 0: %d, %d", a, b)
	}
	if got := in.Intern("apple"); got != a {
		t.Errorf("re-interning changed the ID: %d vs %d", got, a)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d; want 2", in.Len())
	}
	if in.Token(a) != "apple" || in.Token(b) != "ipad" {
		t.Error("Token does not invert Intern")
	}
	if id, ok := in.Lookup("ipad"); !ok || id != b {
		t.Errorf("Lookup(ipad) = %d, %v", id, ok)
	}
	if _, ok := in.Lookup("absent"); ok {
		t.Error("Lookup of an unseen token should fail")
	}
}

func TestInternerIDSet(t *testing.T) {
	in := NewInterner()
	got := in.IDSet("wifi", "apple", "wifi", "ipad", "apple")
	if len(got) != 3 {
		t.Fatalf("IDSet kept %d IDs; want 3 (dedup)", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("IDSet not strictly sorted: %v", got)
		}
	}
	if in.IDSet() != nil {
		t.Error("empty IDSet should be nil")
	}
}

func TestTableTokenIDsCached(t *testing.T) {
	tab := NewTable("name")
	tab.Append("iPad Two 16GB WiFi White")
	tab.Append("iPad 2nd generation 16GB WiFi White")

	ids := tab.TokenIDs()
	if len(ids) != 2 {
		t.Fatalf("TokenIDs covers %d records; want 2", len(ids))
	}
	again := tab.TokenIDs()
	for i := range ids {
		if len(again[i]) != len(ids[i]) {
			t.Fatal("second call disagrees with first")
		}
		// Cached: the same backing arrays are returned, not rebuilt.
		if len(ids[i]) > 0 && &again[i][0] != &ids[i][0] {
			t.Fatal("TokenIDs re-tokenized instead of reading the cache")
		}
	}

	// The ID sets must agree with the string token sets.
	in := tab.Tokens()
	for i := range ids {
		want := RecordTokens(&tab.Records[i])
		if len(ids[i]) != want.Len() {
			t.Fatalf("record %d: %d IDs vs %d tokens", i, len(ids[i]), want.Len())
		}
		for _, id := range ids[i] {
			if !want.Has(in.Token(id)) {
				t.Fatalf("record %d: ID %d maps to %q, not in token set", i, id, in.Token(id))
			}
		}
	}
}

func TestTableTokenIDsExtendsAfterAppend(t *testing.T) {
	tab := NewTable("name")
	tab.Append("apple ipad")
	first := tab.TokenIDs()
	if len(first) != 1 {
		t.Fatal("expected one record")
	}
	tab.Append("apple iphone")
	second := tab.TokenIDs()
	if len(second) != 2 {
		t.Fatalf("cache did not extend: %d records", len(second))
	}
	// Previously returned slice is still valid and unchanged.
	if len(first) != 1 || len(first[0]) != 2 {
		t.Error("earlier snapshot corrupted by append")
	}
	if tab.TokenUniverse() != 3 { // apple, ipad, iphone
		t.Errorf("TokenUniverse = %d; want 3", tab.TokenUniverse())
	}
}

func TestTableTokenIDsConcurrentReaders(t *testing.T) {
	tab := NewTable("name")
	for i := 0; i < 50; i++ {
		tab.Append("apple ipad wifi", "16gb white")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := tab.TokenIDs()
			if len(ids) != 50 {
				t.Errorf("TokenIDs covers %d records; want 50", len(ids))
			}
		}()
	}
	wg.Wait()
}
