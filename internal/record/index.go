package record

// Postings returns the table's live full inverted index: postings[tok]
// lists, in ascending order, the IDs of every record whose token set
// contains tok. Valid token IDs are [0, len(postings)) = the token
// universe at call time.
//
// Like TokenIDs, the index is maintained incrementally and cached on the
// table: the first call builds it for every record, and each later call
// only inserts the records appended since. Appending records therefore
// costs O(tokens of the new records), not a rebuild — the property the
// incremental resolver's delta join and delta blocking rely on. The
// returned slices must not be mutated; they may be extended in place by a
// later call, so callers needing a stable snapshot must copy. Safe for
// concurrent callers as long as the table is not mutated concurrently.
func (t *Table) Postings() [][]int32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ensureTokenIDs()
	for len(t.postings) < t.interner.Len() {
		t.postings = append(t.postings, nil)
	}
	for i := t.posted; i < len(t.Records); i++ {
		for _, tok := range t.tokenIDs[i] {
			t.postings[tok] = append(t.postings[tok], int32(i))
		}
	}
	t.posted = len(t.Records)
	return t.postings[:t.interner.Len():t.interner.Len()]
}

// PairUniverse counts the candidate-pair universe of the table: all
// distinct pairs n·(n−1)/2, or — with crossOnly and a multi-source table —
// only the pairs whose records come from different sources, i.e. the sum
// of cross-source products Σ_{s<t} c_s·c_t = (n² − Σ c_s²)/2 over the
// actual source tag values. This is correct for any number of sources and
// any tag values (the tags need not be {0, 1}).
func (t *Table) PairUniverse(crossOnly bool) int {
	n := len(t.Records)
	if !crossOnly || len(t.Source) == 0 {
		return n * (n - 1) / 2
	}
	counts := map[int]int{}
	for _, s := range t.Source {
		counts[s]++
	}
	sumSq := 0
	for _, c := range counts {
		sumSq += c * c
	}
	return (n*n - sumSq) / 2
}
