package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crowder/crowder/internal/record"
)

// paperPairs are the ten above-threshold pairs of Figure 2(a) / Figure 5.
// The top component is {r1,r2,r3,r4,r5,r6,r7}; the bottom is {r8,r9}.
func paperPairs() []record.Pair {
	mk := record.MakePair
	return []record.Pair{
		mk(1, 2), mk(1, 7), mk(2, 7), mk(2, 3),
		mk(3, 4), mk(4, 5), mk(4, 6), mk(4, 7),
		mk(5, 6), mk(8, 9),
	}
}

func TestFromPairsBasics(t *testing.T) {
	g := FromPairs(paperPairs())
	if g.NumVertices() != 9 {
		t.Errorf("NumVertices = %d; want 9", g.NumVertices())
	}
	if g.NumEdges() != 10 {
		t.Errorf("NumEdges = %d; want 10", g.NumEdges())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(1, 9) {
		t.Error("edge (1,9) should not exist")
	}
}

func TestAddEdgeIdempotentAndSelfLoop(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(1, 1)
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d; want 1", g.NumEdges())
	}
	if g.NumVertices() != 2 {
		t.Errorf("NumVertices = %d; want 2", g.NumVertices())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := FromPairs(paperPairs())
	g.RemoveEdge(8, 9)
	if g.HasEdge(8, 9) {
		t.Error("edge should be removed")
	}
	if g.NumEdges() != 9 {
		t.Errorf("NumEdges = %d; want 9", g.NumEdges())
	}
	// Vertices 8, 9 became isolated and must be dropped.
	if g.NumVertices() != 7 {
		t.Errorf("NumVertices = %d; want 7", g.NumVertices())
	}
	// Removing a non-existent edge is a no-op.
	g.RemoveEdge(8, 9)
	if g.NumEdges() != 9 {
		t.Error("double remove changed the edge count")
	}
}

func TestDegreePaperExample(t *testing.T) {
	// Figure 8(a): r4 has the maximum degree (4).
	g := FromPairs(paperPairs())
	if d := g.Degree(4); d != 4 {
		t.Errorf("Degree(r4) = %d; want 4", d)
	}
	if d := g.Degree(1); d != 2 {
		t.Errorf("Degree(r1) = %d; want 2", d)
	}
	v, ok := g.MaxDegreeVertex()
	if !ok || v != 4 {
		t.Errorf("MaxDegreeVertex = %v, %v; want r4", v, ok)
	}
}

func TestMaxDegreeVertexEmptyAndTie(t *testing.T) {
	g := New()
	if _, ok := g.MaxDegreeVertex(); ok {
		t.Error("empty graph should report ok=false")
	}
	g.AddEdge(5, 6)
	g.AddEdge(2, 3)
	v, ok := g.MaxDegreeVertex()
	if !ok || v != 2 {
		t.Errorf("tie should break to smallest ID; got %v", v)
	}
}

func TestConnectedComponentsPaperExample(t *testing.T) {
	// Section 5.1: the Figure 5 graph "consists of two connected
	// components"; with k=4 the top one (7 vertices) is an LCC and the
	// bottom one ({r8, r9}) is an SCC.
	g := FromPairs(paperPairs())
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("got %d components; want 2", len(comps))
	}
	if comps[0].Size() != 7 {
		t.Errorf("first component size = %d; want 7", comps[0].Size())
	}
	if comps[1].Size() != 2 {
		t.Errorf("second component size = %d; want 2", comps[1].Size())
	}
	want := []record.ID{1, 2, 3, 4, 5, 6, 7}
	for i, v := range want {
		if comps[0].Vertices[i] != v {
			t.Fatalf("component vertices = %v; want %v", comps[0].Vertices, want)
		}
	}
}

func TestVerticesAndNeighborsSorted(t *testing.T) {
	g := FromPairs(paperPairs())
	vs := g.Vertices()
	for i := 1; i < len(vs); i++ {
		if vs[i-1] >= vs[i] {
			t.Fatal("Vertices not sorted")
		}
	}
	ns := g.Neighbors(4)
	want := []record.ID{3, 5, 6, 7}
	if len(ns) != len(want) {
		t.Fatalf("Neighbors(4) = %v; want %v", ns, want)
	}
	for i := range want {
		if ns[i] != want[i] {
			t.Fatalf("Neighbors(4) = %v; want %v", ns, want)
		}
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := FromPairs(paperPairs())
	es := g.Edges()
	if len(es) != 10 {
		t.Fatalf("Edges len = %d; want 10", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i-1].A > es[i].A || (es[i-1].A == es[i].A && es[i-1].B >= es[i].B) {
			t.Fatal("Edges not in canonical sorted order")
		}
	}
}

func TestClone(t *testing.T) {
	g := FromPairs(paperPairs())
	c := g.Clone()
	c.RemoveEdge(1, 2)
	if !g.HasEdge(1, 2) {
		t.Error("mutating clone affected original")
	}
	if c.NumEdges() != g.NumEdges()-1 {
		t.Error("clone edge count wrong after removal")
	}
}

func TestSubgraph(t *testing.T) {
	g := FromPairs(paperPairs())
	sub := g.Subgraph([]record.ID{1, 2, 3, 7})
	// Edges within {1,2,3,7}: (1,2), (1,7), (2,7), (2,3).
	if sub.NumEdges() != 4 {
		t.Errorf("subgraph edges = %d; want 4", sub.NumEdges())
	}
	if sub.HasEdge(3, 4) {
		t.Error("subgraph should not contain (3,4)")
	}
}

func TestBFSOrderVisitsAll(t *testing.T) {
	g := FromPairs(paperPairs())
	order := g.BFSOrder()
	if len(order) != g.NumVertices() {
		t.Fatalf("BFS visited %d vertices; want %d", len(order), g.NumVertices())
	}
	// BFS from vertex 1 visits 1, then neighbors 2 and 7, etc.
	if order[0] != 1 || order[1] != 2 || order[2] != 7 {
		t.Errorf("BFS prefix = %v; want [1 2 7 ...]", order[:3])
	}
}

func TestDFSOrderVisitsAll(t *testing.T) {
	g := FromPairs(paperPairs())
	order := g.DFSOrder()
	if len(order) != g.NumVertices() {
		t.Fatalf("DFS visited %d vertices; want %d", len(order), g.NumVertices())
	}
	// DFS from 1 goes deep: 1 → 2 → 3 → 4 → ...
	if order[0] != 1 || order[1] != 2 || order[2] != 3 || order[3] != 4 {
		t.Errorf("DFS prefix = %v; want [1 2 3 4 ...]", order[:4])
	}
}

func TestEdgesCoveredBy(t *testing.T) {
	g := FromPairs(paperPairs())
	// Section 3.2's optimal H1 = {r1, r2, r3, r7} covers 4 edges.
	cov := g.EdgesCoveredBy([]record.ID{1, 2, 3, 7})
	if len(cov) != 4 {
		t.Errorf("covered %d edges; want 4", len(cov))
	}
}

func TestCoversAllPaperOptimal(t *testing.T) {
	// Section 3.2: H1={r1,r2,r3,r7}, H2={r3,r4,r5,r6}, H3={r4,r7,r8,r9}
	// cover all ten pairs.
	g := FromPairs(paperPairs())
	groups := [][]record.ID{
		{1, 2, 3, 7},
		{3, 4, 5, 6},
		{4, 7, 8, 9},
	}
	if !g.CoversAll(groups) {
		t.Fatal("the paper's optimal 3-HIT solution must cover all edges")
	}
	// Dropping any group must break coverage.
	for i := range groups {
		partial := make([][]record.ID, 0, 2)
		for j, grp := range groups {
			if j != i {
				partial = append(partial, grp)
			}
		}
		if g.CoversAll(partial) {
			t.Errorf("dropping group %d should break coverage", i)
		}
	}
}

// randomGraph builds a deterministic pseudo-random graph for properties.
func randomGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New()
	for i := 0; i < m; i++ {
		a := record.ID(rng.Intn(n))
		b := record.ID(rng.Intn(n))
		g.AddEdge(a, b)
	}
	return g
}

// Property: connected components partition the vertex set and edges never
// cross components.
func TestComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 30, 40)
		comps := g.ConnectedComponents()
		seen := make(map[record.ID]int)
		total := 0
		for ci, c := range comps {
			total += c.Size()
			for _, v := range c.Vertices {
				if _, dup := seen[v]; dup {
					return false
				}
				seen[v] = ci
			}
		}
		if total != g.NumVertices() {
			return false
		}
		for _, e := range g.Edges() {
			if seen[e.A] != seen[e.B] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: BFS and DFS orders are permutations of the vertex set.
func TestTraversalPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 30)
		for _, order := range [][]record.ID{g.BFSOrder(), g.DFSOrder()} {
			if len(order) != g.NumVertices() {
				return false
			}
			seen := make(map[record.ID]bool)
			for _, v := range order {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: sum of degrees = 2 × #edges.
func TestHandshakeProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 35)
		sum := 0
		for _, v := range g.Vertices() {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: EdgesCoveredBy(all vertices) returns every edge.
func TestFullCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 15, 25)
		return len(g.EdgesCoveredBy(g.Vertices())) == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBFSPrefixMatchesFullOrder(t *testing.T) {
	g := FromPairs(paperPairs())
	full := g.BFSOrder()
	for _, k := range []int{1, 3, 5, 9, 20} {
		prefix := g.BFSPrefix(k)
		want := k
		if want > len(full) {
			want = len(full)
		}
		if len(prefix) != want {
			t.Fatalf("BFSPrefix(%d) has %d vertices; want %d", k, len(prefix), want)
		}
		for i := range prefix {
			if prefix[i] != full[i] {
				t.Fatalf("BFSPrefix(%d)[%d] = %v; full order has %v", k, i, prefix[i], full[i])
			}
		}
	}
}

func TestDFSPrefixMatchesFullOrder(t *testing.T) {
	g := FromPairs(paperPairs())
	full := g.DFSOrder()
	for _, k := range []int{1, 4, 9, 15} {
		prefix := g.DFSPrefix(k)
		want := k
		if want > len(full) {
			want = len(full)
		}
		if len(prefix) != want {
			t.Fatalf("DFSPrefix(%d) has %d vertices; want %d", k, len(prefix), want)
		}
		for i := range prefix {
			if prefix[i] != full[i] {
				t.Fatalf("DFSPrefix(%d)[%d] = %v; full order has %v", k, i, prefix[i], full[i])
			}
		}
	}
}

// Property: prefixes agree with full traversals on random graphs.
func TestPrefixConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 30)
		bfs, dfs := g.BFSOrder(), g.DFSOrder()
		for _, k := range []int{1, 5, 50} {
			bp, dp := g.BFSPrefix(k), g.DFSPrefix(k)
			for i := range bp {
				if bp[i] != bfs[i] {
					return false
				}
			}
			for i := range dp {
				if dp[i] != dfs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPrefixOnEmptyGraph(t *testing.T) {
	g := New()
	if len(g.BFSPrefix(5)) != 0 || len(g.DFSPrefix(5)) != 0 {
		t.Error("prefixes of an empty graph should be empty")
	}
}
