// Package graph implements the undirected pair graph used by CrowdER's
// cluster-based HIT generation (Sections 4 and 5): vertices are record IDs,
// edges are record pairs to verify. It provides adjacency queries, degrees,
// connected components, BFS/DFS traversal orders, and edge-cover checks.
package graph

import (
	"sort"

	"github.com/crowder/crowder/internal/record"
)

// Graph is an undirected simple graph over record IDs. Vertices exist only
// if they appear in at least one edge (isolated records never need to be
// placed in a HIT).
type Graph struct {
	adj   map[record.ID]map[record.ID]struct{}
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[record.ID]map[record.ID]struct{})}
}

// FromPairs builds a graph whose edge set is exactly the given pairs
// (Section 4: "each vertex represents a record, and each edge denotes a
// pair of records").
func FromPairs(pairs []record.Pair) *Graph {
	g := New()
	for _, p := range pairs {
		g.AddEdge(p.A, p.B)
	}
	return g
}

// AddEdge inserts the undirected edge {a, b}. Self-loops are ignored.
// Re-adding an existing edge is a no-op.
func (g *Graph) AddEdge(a, b record.ID) {
	if a == b {
		return
	}
	if g.hasEdge(a, b) {
		return
	}
	g.addHalf(a, b)
	g.addHalf(b, a)
	g.edges++
}

func (g *Graph) addHalf(from, to record.ID) {
	m, ok := g.adj[from]
	if !ok {
		m = make(map[record.ID]struct{})
		g.adj[from] = m
	}
	m[to] = struct{}{}
}

func (g *Graph) hasEdge(a, b record.ID) bool {
	m, ok := g.adj[a]
	if !ok {
		return false
	}
	_, ok = m[b]
	return ok
}

// HasEdge reports whether the undirected edge {a, b} exists.
func (g *Graph) HasEdge(a, b record.ID) bool { return g.hasEdge(a, b) }

// RemoveEdge deletes the undirected edge {a, b} if present. Vertices whose
// last incident edge is removed are dropped from the graph.
func (g *Graph) RemoveEdge(a, b record.ID) {
	if !g.hasEdge(a, b) {
		return
	}
	delete(g.adj[a], b)
	delete(g.adj[b], a)
	if len(g.adj[a]) == 0 {
		delete(g.adj, a)
	}
	if len(g.adj[b]) == 0 {
		delete(g.adj, b)
	}
	g.edges--
}

// NumVertices returns the number of vertices with at least one edge.
func (g *Graph) NumVertices() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v record.ID) int { return len(g.adj[v]) }

// Vertices returns all vertices in ascending ID order. Deterministic order
// keeps the HIT-generation algorithms reproducible.
func (g *Graph) Vertices() []record.ID {
	out := make([]record.ID, 0, len(g.adj))
	for v := range g.adj {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighbors returns v's adjacent vertices in ascending ID order.
func (g *Graph) Neighbors(v record.ID) []record.ID {
	m := g.adj[v]
	out := make([]record.ID, 0, len(m))
	for u := range m {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all edges as canonical pairs in deterministic order.
func (g *Graph) Edges() []record.Pair {
	out := make([]record.Pair, 0, g.edges)
	for v, m := range g.adj {
		for u := range m {
			if v < u {
				out = append(out, record.Pair{A: v, B: u})
			}
		}
	}
	record.SortPairs(out)
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	c.edges = g.edges
	for v, m := range g.adj {
		cm := make(map[record.ID]struct{}, len(m))
		for u := range m {
			cm[u] = struct{}{}
		}
		c.adj[v] = cm
	}
	return c
}

// MaxDegreeVertex returns the vertex with the maximum degree, breaking ties
// by smallest ID for determinism. ok is false when the graph is empty.
func (g *Graph) MaxDegreeVertex() (v record.ID, ok bool) {
	best := -1
	for u, m := range g.adj {
		d := len(m)
		if d > best || (d == best && u < v) {
			best, v, ok = d, u, true
		}
	}
	return v, ok
}

// Component is a connected component: a sorted set of vertex IDs.
type Component struct {
	Vertices []record.ID
}

// Size returns the number of vertices in the component.
func (c *Component) Size() int { return len(c.Vertices) }

// ConnectedComponents returns the connected components of the graph, each
// with vertices sorted ascending, and components sorted by their smallest
// vertex. Every vertex (all of which have degree ≥ 1) appears in exactly
// one component.
func (g *Graph) ConnectedComponents() []Component {
	seen := make(map[record.ID]bool, len(g.adj))
	var comps []Component
	for _, start := range g.Vertices() {
		if seen[start] {
			continue
		}
		// Iterative BFS to avoid recursion depth issues on long paths.
		var comp []record.ID
		queue := []record.ID{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			comp = append(comp, v)
			for u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, Component{Vertices: comp})
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i].Vertices[0] < comps[j].Vertices[0] })
	return comps
}

// Subgraph returns the induced subgraph on the given vertex set: all edges
// of g with both endpoints in vs.
func (g *Graph) Subgraph(vs []record.ID) *Graph {
	in := make(map[record.ID]bool, len(vs))
	for _, v := range vs {
		in[v] = true
	}
	sub := New()
	for v := range g.adj {
		if !in[v] {
			continue
		}
		for u := range g.adj[v] {
			if in[u] && v < u {
				sub.AddEdge(v, u)
			}
		}
	}
	return sub
}

// BFSOrder returns all vertices in breadth-first order, starting each new
// traversal from the smallest unvisited vertex.
func (g *Graph) BFSOrder() []record.ID {
	seen := make(map[record.ID]bool, len(g.adj))
	var order []record.ID
	for _, start := range g.Vertices() {
		if seen[start] {
			continue
		}
		queue := []record.ID{start}
		seen[start] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return order
}

// DFSOrder returns all vertices in depth-first (preorder) order, starting
// each new traversal from the smallest unvisited vertex.
func (g *Graph) DFSOrder() []record.ID {
	seen := make(map[record.ID]bool, len(g.adj))
	var order []record.ID
	for _, start := range g.Vertices() {
		if seen[start] {
			continue
		}
		stack := []record.ID{start}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			order = append(order, v)
			// Push neighbors in reverse so the smallest is visited first.
			nbrs := g.Neighbors(v)
			for i := len(nbrs) - 1; i >= 0; i-- {
				if !seen[nbrs[i]] {
					stack = append(stack, nbrs[i])
				}
			}
		}
	}
	return order
}

// EdgesCoveredBy returns the edges of g whose endpoints both lie in the
// vertex set vs (i.e. the edges a cluster-based HIT containing vs can
// check, per Section 3.2).
func (g *Graph) EdgesCoveredBy(vs []record.ID) []record.Pair {
	in := make(map[record.ID]bool, len(vs))
	for _, v := range vs {
		in[v] = true
	}
	var out []record.Pair
	for _, v := range vs {
		for u := range g.adj[v] {
			if v < u && in[u] {
				out = append(out, record.Pair{A: v, B: u})
			}
		}
	}
	record.SortPairs(out)
	return out
}

// BFSPrefix returns the first max vertices in breadth-first order (the
// same order BFSOrder produces), stopping early — the building block of
// the BFS-based HIT generator, which only ever needs k vertices per HIT.
func (g *Graph) BFSPrefix(max int) []record.ID {
	seen := make(map[record.ID]bool, max*2)
	var order []record.ID
	for _, start := range g.Vertices() {
		if len(order) >= max {
			break
		}
		if seen[start] {
			continue
		}
		queue := []record.ID{start}
		seen[start] = true
		for len(queue) > 0 && len(order) < max {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, u := range g.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return order
}

// DFSPrefix returns the first max vertices in depth-first preorder (the
// same order DFSOrder produces), stopping early.
func (g *Graph) DFSPrefix(max int) []record.ID {
	seen := make(map[record.ID]bool, max*2)
	var order []record.ID
	for _, start := range g.Vertices() {
		if len(order) >= max {
			break
		}
		if seen[start] {
			continue
		}
		stack := []record.ID{start}
		for len(stack) > 0 && len(order) < max {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[v] {
				continue
			}
			seen[v] = true
			order = append(order, v)
			nbrs := g.Neighbors(v)
			for i := len(nbrs) - 1; i >= 0; i-- {
				if !seen[nbrs[i]] {
					stack = append(stack, nbrs[i])
				}
			}
		}
	}
	return order
}

// CoversAll reports whether the given vertex groups cover every edge of g:
// for every edge {a, b} there is a group containing both a and b
// (requirement 2 of Definition 1).
func (g *Graph) CoversAll(groups [][]record.ID) bool {
	remaining := make(map[record.Pair]bool, g.edges)
	for _, e := range g.Edges() {
		remaining[e] = true
	}
	for _, grp := range groups {
		for _, e := range g.EdgesCoveredBy(grp) {
			delete(remaining, e)
		}
	}
	return len(remaining) == 0
}
