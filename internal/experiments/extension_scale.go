package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/crowder/crowder/internal/blocking"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/simjoin"
)

// ScaleRow is one dataset size of the scaling experiment.
type ScaleRow struct {
	Records int
	// SimJoin columns: prefix-filtered join over all pairs.
	SimJoinCandidates int
	SimJoinMillis     int64
	// Blocking columns: capped token blocking + candidate scoring.
	BlockingCandidates   int
	BlockingMillis       int64
	BlockingCompleteness float64
	// HITs produced by the two-tiered generator from the simjoin
	// candidates (k=10), showing crowd cost growth with data size.
	HITs int
}

// ScaleResult is the Section 9 scaling study: how machine-pass time,
// candidate counts and HIT counts grow with dataset size, and what a
// capped blocking scheme buys.
type ScaleResult struct {
	Threshold float64
	MaxBlock  int
	Rows      []ScaleRow
}

// Scale runs Restaurant-style datasets of growing size through the
// machine pass, both with the exact similarity join and with capped token
// blocking, and generates the two-tiered HITs for each size. The
// duplicate-pair count scales proportionally with the records.
func (e *Env) Scale(sizes []int, tau float64, maxBlock int) (*ScaleResult, error) {
	res := &ScaleResult{Threshold: tau, MaxBlock: maxBlock}
	for _, n := range sizes {
		dups := n / 8 // Restaurant's ratio: 106/858 ≈ 1/8
		d := dataset.RestaurantN(e.Seed+int64(n), n, dups)

		start := time.Now()
		scored := simjoin.Join(d.Table, simjoin.Options{Threshold: tau})
		joinMS := time.Since(start).Milliseconds()

		start = time.Now()
		cands := blocking.TokenBlocking(d.Table, blocking.Options{MaxBlock: maxBlock})
		blocked := simjoin.ScoreCandidates(d.Table, cands, tau)
		blockMS := time.Since(start).Milliseconds()

		found := 0
		for _, sp := range blocked {
			if d.Matches.Has(sp.Pair.A, sp.Pair.B) {
				found++
			}
		}
		completeness := float64(found) / float64(d.Matches.Len())

		hits, err := hitgen.TwoTiered{}.Generate(simjoin.Pairs(scored), 10)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ScaleRow{
			Records:              n,
			SimJoinCandidates:    len(scored),
			SimJoinMillis:        joinMS,
			BlockingCandidates:   len(blocked),
			BlockingMillis:       blockMS,
			BlockingCompleteness: completeness,
			HITs:                 len(hits),
		})
	}
	return res, nil
}

// String renders the scaling table.
func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — scaling study (threshold %.2f, MaxBlock %d)\n", r.Threshold, r.MaxBlock)
	fmt.Fprintf(&b, "%-9s %14s %10s %16s %10s %14s %8s\n",
		"Records", "SimJoin cands", "ms", "Blocking cands", "ms", "Completeness", "HITs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9d %14d %10d %16d %10d %13.1f%% %8d\n",
			row.Records, row.SimJoinCandidates, row.SimJoinMillis,
			row.BlockingCandidates, row.BlockingMillis,
			100*row.BlockingCompleteness, row.HITs)
	}
	return b.String()
}
