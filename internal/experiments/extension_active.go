package experiments

import (
	"fmt"
	"strings"

	"github.com/crowder/crowder/internal/active"
	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/eval"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/record"
)

// ActiveVsHybridResult is the extension experiment contrasting two uses of
// the same human effort: CrowdER spends it VERIFYING likely matches (the
// paper's approach); active learning spends it TRAINING a classifier
// (the Section 8 line of work: Sarawagi & Bhamidipaty, Arasu et al.).
type ActiveVsHybridResult struct {
	Dataset string
	// HumanJudgments is the equalized budget: pair judgments purchased.
	HumanJudgments int
	// Rows, one per technique: AUC of the resulting ranking.
	Rows []AblationRow
}

// ActiveVsHybrid runs both techniques at an (approximately) equal human
// budget on the dataset and reports ranking quality. The hybrid budget is
// HITs × assignments × covered-pairs-per-HIT judgments; active learning
// gets the same number of single-judgment labels.
func (e *Env) ActiveVsHybrid(d *dataset.Dataset, tau float64, k int) (*ActiveVsHybridResult, error) {
	pairs := e.pairsAt(d, tau)
	total := d.Matches.Len()

	// Hybrid: the paper's pipeline.
	gen := hitgen.TwoTiered{}
	hits, err := gen.Generate(pairs, k)
	if err != nil {
		return nil, err
	}
	pop := crowd.NewPopulation(e.Seed, crowd.PopulationOptions{})
	run, err := crowd.RunClusterHITs(hits, pairs, d.Matches, pop, crowd.Config{
		Seed:       e.Seed,
		Difficulty: e.difficultyFn(d),
	})
	if err != nil {
		return nil, err
	}
	post := aggregate.DawidSkene(run.Answers, aggregate.DawidSkeneOptions{})
	hybridAUC := eval.AUCPR(eval.PRCurve(post.Ranked(), d.Matches, total))
	budget := len(run.Answers) // total pair judgments the crowd produced

	// Active learning over the full 0.1-threshold pool with the same
	// number of oracle labels.
	poolPairs := e.pairsAt(d, 0.1)
	attrs := []int{0}
	if len(d.Table.Schema) >= 4 {
		attrs = []int{0, 1, 2, 3}
	}
	seedSize := 30
	rounds := 10
	batch := (budget - seedSize) / rounds
	if batch < 1 {
		batch = 1
	}
	act, err := active.Run(d.Table, poolPairs, func(p record.Pair) bool {
		return d.Matches.Has(p.A, p.B)
	}, active.Options{
		Seed:      e.Seed,
		SeedSize:  seedSize,
		BatchSize: batch,
		Rounds:    rounds,
		Attrs:     attrs,
	})
	if err != nil {
		return nil, err
	}
	activeAUC := eval.AUCPR(eval.PRCurve(act.Ranked, d.Matches, total))

	return &ActiveVsHybridResult{
		Dataset:        d.Name,
		HumanJudgments: budget,
		Rows: []AblationRow{
			{Variant: fmt.Sprintf("CrowdER hybrid (%d HITs)", len(hits)), Value: hybridAUC},
			{Variant: fmt.Sprintf("Active learning (%d labels)", act.LabelsUsed), Value: activeAUC},
		},
	}, nil
}

// String renders the comparison.
func (r *ActiveVsHybridResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — verification vs training at ~%d human judgments (%s)\n",
		r.HumanJudgments, r.Dataset)
	fmt.Fprintf(&b, "%-32s %10s\n", "Technique", "AUC-PR")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-32s %10.3f\n", row.Variant, row.Value)
	}
	return b.String()
}
