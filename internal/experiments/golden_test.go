package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update rewrites the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares rendered experiment output against its checked-in
// snapshot byte for byte. The experiment drivers are deterministic in
// the environment seed, so any drift — dataset generation, join
// semantics, HIT generation, formatting — fails tier-1 here instead of
// silently changing EXPERIMENTS.md the next time someone regenerates it.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s (regenerate with -update if intended):\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

func TestGoldenTable2Restaurant(t *testing.T) {
	checkGolden(t, "table2_restaurant.golden", sharedEnv.Table2(sharedEnv.Restaurant).String())
}

func TestGoldenTable2Product(t *testing.T) {
	checkGolden(t, "table2_product.golden", sharedEnv.Table2(sharedEnv.Product).String())
}

func TestGoldenFigure10Restaurant(t *testing.T) {
	if testing.Short() {
		t.Skip("full generator replay; skipped in -short mode")
	}
	r, err := sharedEnv.Figure10(sharedEnv.Restaurant)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure10_restaurant.golden", r.String())
}
