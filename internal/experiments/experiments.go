// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7). Each driver returns a result struct whose
// String method prints the same rows/series the paper reports, so the
// repository's EXPERIMENTS.md can record paper-vs-measured side by side.
//
// Absolute numbers differ from the paper — the datasets are synthetic
// stand-ins and the crowd is simulated — but the shapes the paper's
// conclusions rest on are reproduced: which technique wins, by roughly
// what factor, and where the crossovers fall.
package experiments

import (
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
)

// Env bundles the datasets and the base RNG seed shared by all drivers.
type Env struct {
	Seed       int64
	Restaurant *dataset.Dataset
	Product    *dataset.Dataset
	ProductDup *dataset.Dataset

	// joined caches the lowest-threshold similarity join per dataset so
	// threshold sweeps reuse one pass.
	joined map[string][]simjoin.ScoredPair
}

// NewEnv constructs the standard experimental environment with the
// paper-scale datasets.
func NewEnv(seed int64) *Env {
	prod := dataset.Product(seed)
	return &Env{
		Seed:       seed,
		Restaurant: dataset.Restaurant(seed),
		Product:    prod,
		ProductDup: dataset.ProductDup(seed+1, prod),
		joined:     make(map[string][]simjoin.ScoredPair),
	}
}

// isCross reports whether the dataset joins across sources only.
func isCross(d *dataset.Dataset) bool { return len(d.Table.Source) > 0 }

// scoredAt returns the dataset's scored pairs at the given threshold,
// reusing a cached 0.1-threshold join when possible.
func (e *Env) scoredAt(d *dataset.Dataset, tau float64) []simjoin.ScoredPair {
	if tau >= 0.1 {
		base, ok := e.joined[d.Name]
		if !ok {
			base = simjoin.Join(d.Table, simjoin.Options{Threshold: 0.1, CrossSourceOnly: isCross(d)})
			e.joined[d.Name] = base
		}
		return simjoin.FilterThreshold(base, tau)
	}
	return simjoin.Join(d.Table, simjoin.Options{Threshold: tau, CrossSourceOnly: isCross(d)})
}

// pairsAt returns just the pairs at the threshold.
func (e *Env) pairsAt(d *dataset.Dataset, tau float64) []record.Pair {
	return simjoin.Pairs(e.scoredAt(d, tau))
}

// countMatches counts how many scored pairs are true matches.
func countMatches(sp []simjoin.ScoredPair, truth record.PairSet) int {
	n := 0
	for _, s := range sp {
		if truth.Has(s.Pair.A, s.Pair.B) {
			n++
		}
	}
	return n
}

// difficultyFn derives a per-pair judgment difficulty for the crowd
// simulator from machine similarity (see crowd.DifficultyFromLikelihood).
// Product+Dup's token-swap duplicates, for example, have similarity ≈ 1
// and are almost never misjudged — which is what lets its cluster-based
// HITs stay accurate despite heavy transitivity (Figure 15(b)).
func (e *Env) difficultyFn(d *dataset.Dataset) func(record.Pair) float64 {
	sim := make(map[record.Pair]float64)
	for _, sp := range e.scoredAt(d, 0.1) {
		sim[sp.Pair] = sp.Likelihood
	}
	return crowd.DifficultyFromLikelihood(sim)
}
