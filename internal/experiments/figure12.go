package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/eval"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
	"github.com/crowder/crowder/internal/svm"
)

// recallGrid is the x-axis the paper's PR plots use.
var recallGrid = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// MethodCurve is one technique's PR curve plus run metadata.
type MethodCurve struct {
	Method string
	Points []eval.PRPoint
	// HITs and CostDollars are zero for machine-only techniques.
	HITs        int
	CostDollars float64
}

// Figure12Result reproduces Figure 12: PR curves of simjoin, SVM, hybrid
// and hybrid(QT) on one dataset.
type Figure12Result struct {
	Dataset string
	Curves  []MethodCurve
}

// Figure12 runs the four entity-resolution techniques of Section 7.3 on
// the dataset. hybridThreshold is the likelihood threshold the hybrid
// workflow prunes at (0.35 for Restaurant, 0.2 for Product in the paper);
// k is the cluster size (10).
func (e *Env) Figure12(d *dataset.Dataset, hybridThreshold float64, k int) (*Figure12Result, error) {
	res := &Figure12Result{Dataset: d.Name}
	total := d.Matches.Len()

	// simjoin: rank all candidate pairs above 0.1 by Jaccard likelihood.
	scored := e.scoredAt(d, 0.1)
	res.Curves = append(res.Curves, MethodCurve{
		Method: "simjoin",
		Points: eval.PRCurve(simjoin.Pairs(scored), d.Matches, total),
	})

	// SVM: Section 7.3's learning-based baseline.
	svmCurve, err := e.svmCurve(d, scored)
	if err != nil {
		return nil, err
	}
	res.Curves = append(res.Curves, svmCurve)

	// hybrid and hybrid(QT).
	for _, qt := range []bool{false, true} {
		c, err := e.hybridCurve(d, hybridThreshold, k, qt)
		if err != nil {
			return nil, err
		}
		res.Curves = append(res.Curves, c)
	}
	return res, nil
}

// svmCurve trains the linear SVM per Section 7.3: features are edit
// distance + cosine per attribute (all four for Restaurant, name only for
// Product), trained on 500 random pairs with Jaccard above 0.1, sampled 10
// times; scores are averaged across the samples before ranking.
func (e *Env) svmCurve(d *dataset.Dataset, scored []simjoin.ScoredPair) (MethodCurve, error) {
	attrs := []int{0}
	if len(d.Table.Schema) >= 4 {
		attrs = []int{0, 1, 2, 3}
	}
	pairs := simjoin.Pairs(scored)
	features := make([][]float64, len(pairs))
	for i, p := range pairs {
		features[i] = svm.FeatureVector(d.Table, p, attrs)
	}

	// Training pairs: 500 per sample, 10 samples averaged (Section 7.3).
	// The paper samples uniformly from pairs above Jaccard 0.1; with ~100
	// matches among ~90k candidates a uniform 500-pair sample usually
	// contains zero positives, so (as any practical ER training-set
	// construction does) we stratify: half the sample is drawn from the
	// top of the likelihood ranking, where the matches live, and half
	// uniformly. See EXPERIMENTS.md for this documented deviation.
	const samples = 10
	const trainSize = 500
	topPool := len(pairs) / 20
	if topPool < trainSize/2 {
		topPool = trainSize / 2
	}
	if topPool > len(pairs) {
		topPool = len(pairs)
	}
	sumScores := make([]float64, len(pairs))
	rng := rand.New(rand.NewSource(e.Seed + 42))
	for s := 0; s < samples; s++ {
		n := trainSize
		if n > len(pairs) {
			n = len(pairs)
		}
		idxs := make([]int, 0, n)
		seen := make(map[int]bool, n)
		// Half from the likely-positive region (pairs are sorted by
		// likelihood descending), half uniform.
		for len(idxs) < n/2 {
			i := rng.Intn(topPool)
			if !seen[i] {
				seen[i] = true
				idxs = append(idxs, i)
			}
		}
		for len(idxs) < n {
			i := rng.Intn(len(pairs))
			if !seen[i] {
				seen[i] = true
				idxs = append(idxs, i)
			}
		}
		train := make([]svm.Example, n)
		for i, idx := range idxs {
			p := pairs[idx]
			label := -1.0
			if d.Matches.Has(p.A, p.B) {
				label = 1.0
			}
			train[i] = svm.Example{X: features[idx], Label: label}
		}
		model, err := svm.Train(train, svm.TrainOptions{Seed: e.Seed + int64(s), BalanceClasses: true})
		if err != nil {
			return MethodCurve{}, fmt.Errorf("experiments: svm sample %d: %w", s, err)
		}
		for i := range pairs {
			sumScores[i] += model.Score(features[i])
		}
	}

	ranked := make([]record.Pair, len(pairs))
	copy(ranked, pairs)
	// Sort by averaged score descending.
	scoreOf := make(map[record.Pair]float64, len(pairs))
	for i, p := range pairs {
		scoreOf[p] = sumScores[i]
	}
	sortPairsByScore(ranked, scoreOf)
	return MethodCurve{
		Method: "SVM",
		Points: eval.PRCurve(ranked, d.Matches, d.Matches.Len()),
	}, nil
}

// hybridCurve runs the full hybrid workflow (machine prune → two-tiered
// cluster HITs → simulated crowd → Dawid–Skene) and evaluates the crowd's
// ranked output.
func (e *Env) hybridCurve(d *dataset.Dataset, tau float64, k int, qt bool) (MethodCurve, error) {
	pairs := e.pairsAt(d, tau)
	gen := hitgen.TwoTiered{}
	hits, err := gen.Generate(pairs, k)
	if err != nil {
		return MethodCurve{}, err
	}
	pop := crowd.NewPopulation(e.Seed, crowd.PopulationOptions{})
	run, err := crowd.RunClusterHITs(hits, pairs, d.Matches, pop, crowd.Config{
		Seed:              e.Seed,
		QualificationTest: qt,
		Difficulty:        e.difficultyFn(d),
	})
	if err != nil {
		return MethodCurve{}, err
	}
	post := aggregate.DawidSkene(run.Answers, aggregate.DawidSkeneOptions{})
	name := "hybrid"
	if qt {
		name = "hybrid(QT)"
	}
	return MethodCurve{
		Method:      name,
		Points:      eval.PRCurve(post.Ranked(), d.Matches, d.Matches.Len()),
		HITs:        len(hits),
		CostDollars: run.CostDollars,
	}, nil
}

// sortPairsByScore orders pairs by score descending; ties keep the
// canonical pair order (sorted first, then stably reordered by score).
func sortPairsByScore(pairs []record.Pair, score map[record.Pair]float64) {
	record.SortPairs(pairs)
	sort.SliceStable(pairs, func(i, j int) bool {
		return score[pairs[i]] > score[pairs[j]]
	})
}

// String renders the four curves at the recall grid, Figure 12's layout.
func (r *Figure12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12 — Precision/Recall (%s)\n", r.Dataset)
	fmt.Fprintf(&b, "%-8s", "Recall")
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "%14s", c.Method)
	}
	b.WriteByte('\n')
	for _, rec := range recallGrid {
		fmt.Fprintf(&b, "%6.0f%% ", rec*100)
		for _, c := range r.Curves {
			fmt.Fprintf(&b, "%13.1f%%", 100*eval.PrecisionAtRecall(c.Points, rec))
		}
		b.WriteByte('\n')
	}
	for _, c := range r.Curves {
		if c.HITs > 0 {
			fmt.Fprintf(&b, "%s: %d HITs, $%.2f\n", c.Method, c.HITs, c.CostDollars)
		}
	}
	return b.String()
}

// Curve returns the named method's curve, or nil.
func (r *Figure12Result) Curve(method string) *MethodCurve {
	for i := range r.Curves {
		if r.Curves[i].Method == method {
			return &r.Curves[i]
		}
	}
	return nil
}
