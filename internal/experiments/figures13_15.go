package experiments

import (
	"fmt"
	"strings"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/eval"
	"github.com/crowder/crowder/internal/hitgen"
)

// PairVsClusterRun is one (HIT type × QT) cell of Figures 13–15.
type PairVsClusterRun struct {
	// Label is the paper's notation: P16, C10, P16 (QT), C10 (QT), …
	Label string
	// MedianAssignmentSeconds is Figure 13's metric.
	MedianAssignmentSeconds float64
	// TotalMinutes is Figure 14's metric: the makespan of all HITs.
	TotalMinutes float64
	// Points is Figure 15's metric: the PR curve of the aggregated answers.
	Points []eval.PRPoint
	// HITs is the number of tasks (kept equal across the two formats).
	HITs int
}

// PairVsClusterResult reproduces Figures 13, 14 and 15 for one dataset:
// the pair-based and cluster-based comparison at equal HIT counts.
type PairVsClusterResult struct {
	Dataset string
	// PairsPerHIT is the computed pair-HIT batch size (16 for Product,
	// 28 for Product+Dup in the paper).
	PairsPerHIT int
	Runs        []PairVsClusterRun
}

// PairVsCluster runs the Section 7.4 comparison on the dataset: prune at
// the likelihood threshold (0.2 in the paper), generate cluster-based HITs
// with k=10, then generate pair-based HITs batched so both formats yield
// the same number of HITs, and crowdsource both with and without a
// qualification test.
func (e *Env) PairVsCluster(d *dataset.Dataset, tau float64, k int) (*PairVsClusterResult, error) {
	pairs := e.pairsAt(d, tau)
	gen := hitgen.TwoTiered{}
	clusterHITs, err := gen.Generate(pairs, k)
	if err != nil {
		return nil, err
	}
	nHITs := len(clusterHITs)
	if nHITs == 0 {
		return nil, fmt.Errorf("experiments: no HITs at threshold %v on %s", tau, d.Name)
	}
	// Equal-cost pair-based batching: ⌈|P| / #clusterHITs⌉ pairs per HIT
	// (Section 7.4: 8315/508 ≈ 16 for Product, 3401/120 ≈ 28 for
	// Product+Dup).
	perHIT := (len(pairs) + nHITs - 1) / nHITs
	pairHITs, err := hitgen.GeneratePairHITs(pairs, perHIT)
	if err != nil {
		return nil, err
	}

	res := &PairVsClusterResult{Dataset: d.Name, PairsPerHIT: perHIT}
	pop := crowd.NewPopulation(e.Seed, crowd.PopulationOptions{})
	total := d.Matches.Len()

	for _, qt := range []bool{false, true} {
		suffix := ""
		if qt {
			suffix = " (QT)"
		}
		cfg := crowd.Config{Seed: e.Seed, QualificationTest: qt, Difficulty: e.difficultyFn(d)}

		pr, err := crowd.RunPairHITs(pairHITs, d.Matches, pop, cfg)
		if err != nil {
			return nil, err
		}
		post := aggregate.DawidSkene(pr.Answers, aggregate.DawidSkeneOptions{})
		res.Runs = append(res.Runs, PairVsClusterRun{
			Label:                   fmt.Sprintf("P%d%s", perHIT, suffix),
			MedianAssignmentSeconds: pr.MedianAssignmentSeconds(),
			TotalMinutes:            pr.TotalSeconds / 60,
			Points:                  eval.PRCurve(post.Ranked(), d.Matches, total),
			HITs:                    len(pairHITs),
		})

		cr, err := crowd.RunClusterHITs(clusterHITs, pairs, d.Matches, pop, cfg)
		if err != nil {
			return nil, err
		}
		post = aggregate.DawidSkene(cr.Answers, aggregate.DawidSkeneOptions{})
		res.Runs = append(res.Runs, PairVsClusterRun{
			Label:                   fmt.Sprintf("C%d%s", k, suffix),
			MedianAssignmentSeconds: cr.MedianAssignmentSeconds(),
			TotalMinutes:            cr.TotalSeconds / 60,
			Points:                  eval.PRCurve(post.Ranked(), d.Matches, total),
			HITs:                    len(clusterHITs),
		})
	}
	return res, nil
}

// Run returns the named run, or nil.
func (r *PairVsClusterResult) Run(label string) *PairVsClusterRun {
	for i := range r.Runs {
		if r.Runs[i].Label == label {
			return &r.Runs[i]
		}
	}
	return nil
}

// String renders all three figures' data for this dataset.
func (r *PairVsClusterResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 13/14/15 — pair-based vs cluster-based HITs (%s, %d HITs each)\n",
		r.Dataset, r.Runs[0].HITs)
	fmt.Fprintf(&b, "%-10s %22s %18s %16s\n",
		"Run", "Median/assignment (s)", "Total time (min)", "Precision@90%R")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%-10s %22.0f %18.1f %15.1f%%\n",
			run.Label, run.MedianAssignmentSeconds, run.TotalMinutes,
			100*eval.PrecisionAtRecall(run.Points, 0.9*eval.MaxRecall(run.Points)))
	}
	return b.String()
}
