package experiments

import (
	"strconv"
	"strings"
	"testing"

	"github.com/crowder/crowder/internal/eval"
)

// sharedEnv is built once; the experiment drivers are read-mostly (the
// join cache mutates but is idempotent), and tests here run sequentially.
var sharedEnv = NewEnv(1)

func TestTable2RestaurantShape(t *testing.T) {
	r := sharedEnv.Table2(sharedEnv.Restaurant)
	if len(r.Rows) != 6 {
		t.Fatalf("got %d rows; want 6", len(r.Rows))
	}
	// Monotonicity: lower threshold keeps more pairs and never less recall.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].TotalPairs < r.Rows[i-1].TotalPairs {
			t.Errorf("row %d: pairs %d < previous %d", i, r.Rows[i].TotalPairs, r.Rows[i-1].TotalPairs)
		}
		if r.Rows[i].Recall < r.Rows[i-1].Recall-1e-9 {
			t.Errorf("row %d: recall %.3f < previous %.3f", i, r.Rows[i].Recall, r.Rows[i-1].Recall)
		}
	}
	// Paper's punchline: threshold 0.2 reaches full recall on Restaurant
	// with two orders of magnitude fewer pairs than the total.
	row02 := r.Rows[3]
	if row02.Recall < 0.999 {
		t.Errorf("recall@0.2 = %.3f; want 1.0", row02.Recall)
	}
	total := r.Rows[5].TotalPairs
	if row02.TotalPairs*10 > total {
		t.Errorf("pruning too weak: %d of %d pairs kept at 0.2", row02.TotalPairs, total)
	}
	if !strings.Contains(r.String(), "Restaurant") {
		t.Error("String() should mention the dataset")
	}
}

func TestTable2ProductShape(t *testing.T) {
	r := sharedEnv.Table2(sharedEnv.Product)
	// Product is the hard dataset: recall at 0.5 far below Restaurant's.
	if r.Rows[0].Recall > 0.5 {
		t.Errorf("Product recall@0.5 = %.3f; want < 0.5 (paper: 30.5%%)", r.Rows[0].Recall)
	}
	if r.Rows[3].Recall < 0.85 {
		t.Errorf("Product recall@0.2 = %.3f; want >= 0.85 (paper: 92.2%%)", r.Rows[3].Recall)
	}
	if r.Rows[5].Recall < 0.999 {
		t.Errorf("Product recall@0 = %.3f; want 1.0", r.Rows[5].Recall)
	}
}

func TestFigure10TwoTieredWins(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment replay; skipped in -short mode")
	}
	r, err := sharedEnv.Figure10(sharedEnv.Restaurant)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 5 {
		t.Fatalf("got %d series; want 5", len(r.Series))
	}
	// Section 7.2: "the two-tiered approach generated the fewest
	// cluster-based HITs" at every threshold, "with the differences being
	// greater for smaller thresholds".
	for i := range r.Values {
		tt := r.CountFor("Two-tiered", i)
		for _, s := range r.Series {
			if s.Generator == "Two-tiered" {
				continue
			}
			if s.Counts[i] < tt {
				t.Errorf("at threshold %.1f, %s (%d) beat two-tiered (%d)",
					r.Values[i], s.Generator, s.Counts[i], tt)
			}
		}
	}
	// Differences grow as the threshold shrinks: compare the ratio vs the
	// best baseline at 0.5 and at 0.1.
	best := func(i int) int {
		b := 1 << 30
		for _, s := range r.Series {
			if s.Generator != "Two-tiered" && s.Counts[i] < b {
				b = s.Counts[i]
			}
		}
		return b
	}
	hiRatio := float64(best(0)) / float64(r.CountFor("Two-tiered", 0))
	loRatio := float64(best(len(r.Values)-1)) / float64(r.CountFor("Two-tiered", len(r.Values)-1))
	if loRatio < hiRatio {
		t.Errorf("advantage should grow at smaller thresholds: ratio@0.5=%.2f ratio@0.1=%.2f", hiRatio, loRatio)
	}
}

func TestFigure11TwoTieredWinsAllK(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment replay; skipped in -short mode")
	}
	r, err := sharedEnv.Figure11(sharedEnv.Product)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Values {
		tt := r.CountFor("Two-tiered", i)
		for _, s := range r.Series {
			if s.Generator != "Two-tiered" && s.Counts[i] < tt {
				t.Errorf("at k=%.0f, %s (%d) beat two-tiered (%d)",
					r.Values[i], s.Generator, s.Counts[i], tt)
			}
		}
		// HIT counts fall as k grows for every generator.
		if i > 0 {
			for _, s := range r.Series {
				if s.Counts[i] > s.Counts[i-1] {
					t.Errorf("%s: HITs rose from k=%.0f to k=%.0f", s.Generator, r.Values[i-1], r.Values[i])
				}
			}
		}
	}
}

func TestFigure12ProductHybridDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment replay; skipped in -short mode")
	}
	r, err := sharedEnv.Figure12(sharedEnv.Product, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 4 {
		t.Fatalf("got %d curves; want 4", len(r.Curves))
	}
	// Section 7.3: on Product, "hybrid and hybrid(QT) achieved
	// significantly better quality than simjoin and SVM".
	at80 := func(m string) float64 {
		return eval.PrecisionAtRecall(r.Curve(m).Points, 0.8)
	}
	if at80("hybrid") < at80("simjoin")+0.2 {
		t.Errorf("hybrid P@80R (%.2f) should dominate simjoin (%.2f)", at80("hybrid"), at80("simjoin"))
	}
	if at80("hybrid") < at80("SVM")+0.2 {
		t.Errorf("hybrid P@80R (%.2f) should dominate SVM (%.2f)", at80("hybrid"), at80("SVM"))
	}
	// The QT variant is at least as good as plain hybrid.
	if at80("hybrid(QT)") < at80("hybrid")-0.05 {
		t.Errorf("hybrid(QT) (%.2f) should not trail hybrid (%.2f)", at80("hybrid(QT)"), at80("hybrid"))
	}
	// The hybrid's max recall is capped by the machine prune (92.2% in the
	// paper at threshold 0.2): it cannot reach 100%.
	if mr := eval.MaxRecall(r.Curve("hybrid").Points); mr > 0.995 {
		t.Errorf("hybrid max recall = %.3f; pruning should cap it below 1", mr)
	}
}

func TestFigure12RestaurantComparable(t *testing.T) {
	r, err := sharedEnv.Figure12(sharedEnv.Restaurant, 0.35, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Section 7.3: on Restaurant the hybrid workflow is comparable to the
	// learning-based SVM (within a reasonable band at 80% recall).
	h := eval.PrecisionAtRecall(r.Curve("hybrid(QT)").Points, 0.8)
	s := eval.PrecisionAtRecall(r.Curve("SVM").Points, 0.8)
	if h < s-0.25 {
		t.Errorf("hybrid(QT) P@80R (%.2f) should be comparable to SVM (%.2f)", h, s)
	}
}

func TestPairVsClusterProduct(t *testing.T) {
	r, err := sharedEnv.PairVsCluster(sharedEnv.Product, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Runs) != 4 {
		t.Fatalf("got %d runs; want 4", len(r.Runs))
	}
	p := r.Run("P" + strconv.Itoa(r.PairsPerHIT))
	c := r.Run("C10")
	if p == nil || c == nil {
		t.Fatal("missing runs")
	}
	// Figure 13(a): a cluster-based HIT takes less time per assignment.
	if c.MedianAssignmentSeconds >= p.MedianAssignmentSeconds {
		t.Errorf("cluster median (%.0f s) should be below pair median (%.0f s)",
			c.MedianAssignmentSeconds, p.MedianAssignmentSeconds)
	}
	// Figure 14(a): pair-based HITs finish earlier overall on Product
	// (more workers are attracted to the familiar interface).
	if p.TotalMinutes >= c.TotalMinutes {
		t.Errorf("pair total (%.1f min) should beat cluster total (%.1f min) on Product",
			p.TotalMinutes, c.TotalMinutes)
	}
	// Figure 15(a): quality is similar.
	pq := eval.PrecisionAtRecall(p.Points, 0.8)
	cq := eval.PrecisionAtRecall(c.Points, 0.8)
	if pq-cq > 0.15 || cq-pq > 0.15 {
		t.Errorf("pair (%.2f) and cluster (%.2f) quality should be similar", pq, cq)
	}
}

func TestPairVsClusterProductDup(t *testing.T) {
	r, err := sharedEnv.PairVsCluster(sharedEnv.ProductDup, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Run("P" + strconv.Itoa(r.PairsPerHIT))
	c := r.Run("C10")
	// Figure 13(b): with many matches the cluster advantage is dramatic.
	if c.MedianAssignmentSeconds*2 >= p.MedianAssignmentSeconds {
		t.Errorf("cluster median (%.0f s) should be under half the pair median (%.0f s)",
			c.MedianAssignmentSeconds, p.MedianAssignmentSeconds)
	}
	// Figure 14(b): cluster-based HITs also win in total completion time.
	if c.TotalMinutes >= p.TotalMinutes {
		t.Errorf("cluster total (%.1f min) should beat pair total (%.1f min) on Product+Dup",
			c.TotalMinutes, p.TotalMinutes)
	}
	// The pair batch size exceeds Product's (28 vs 16 in the paper).
	if r.PairsPerHIT <= 10 {
		t.Errorf("PairsPerHIT = %d; expected a large batch on Product+Dup", r.PairsPerHIT)
	}
}

func TestQTIncreasesLatency(t *testing.T) {
	r, err := sharedEnv.PairVsCluster(sharedEnv.Product, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	c, cqt := r.Run("C10"), r.Run("C10 (QT)")
	if cqt.TotalMinutes <= c.TotalMinutes {
		t.Errorf("QT should lengthen completion: %.1f vs %.1f min", cqt.TotalMinutes, c.TotalMinutes)
	}
}

func TestAblationPackingExactNotWorse(t *testing.T) {
	r, err := sharedEnv.AblationPacking(sharedEnv.Restaurant)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0].Value > r.Rows[1].Value {
		t.Errorf("exact packing (%v HITs) should not be worse than FFD (%v)", r.Rows[0].Value, r.Rows[1].Value)
	}
}

func TestAblationEMBeatsMajority(t *testing.T) {
	r, err := sharedEnv.AblationEM(sharedEnv.Restaurant, 0.35, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0].Value <= r.Rows[1].Value {
		t.Errorf("EM accuracy (%v) should beat majority vote (%v) under spammers",
			r.Rows[0].Value, r.Rows[1].Value)
	}
}

func TestAblationTieBreakHelps(t *testing.T) {
	// The min-outdegree tie-break should not increase HITs (it exists to
	// keep the carved components tight).
	r, err := sharedEnv.AblationTieBreak(sharedEnv.Restaurant)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0].Value > r.Rows[1].Value {
		t.Errorf("tie-break (%v) should not generate more HITs than no tie-break (%v)",
			r.Rows[0].Value, r.Rows[1].Value)
	}
}

func TestExtensionActiveVsHybrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment replay; skipped in -short mode")
	}
	// On Product — where learned similarity features are weak (the paper's
	// Figure 12(b) shows SVM failing) — spending the human budget on
	// CrowdER verification must beat spending it on classifier training.
	r, err := sharedEnv.ActiveVsHybrid(sharedEnv.Product, 0.2, 10)
	if err != nil {
		t.Fatal(err)
	}
	hybrid, activeL := r.Rows[0].Value, r.Rows[1].Value
	if hybrid <= activeL {
		t.Errorf("on Product, hybrid AUC (%.3f) should beat active learning (%.3f)", hybrid, activeL)
	}
	if r.HumanJudgments <= 0 {
		t.Error("budget not recorded")
	}
	if !strings.Contains(r.String(), "Product") {
		t.Error("String() should mention the dataset")
	}
}

func TestExtensionScale(t *testing.T) {
	r, err := sharedEnv.Scale([]int{200, 400}, 0.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows; want 2", len(r.Rows))
	}
	small, big := r.Rows[0], r.Rows[1]
	if big.SimJoinCandidates <= small.SimJoinCandidates {
		t.Error("candidates should grow with dataset size")
	}
	if big.HITs <= small.HITs {
		t.Error("HITs should grow with dataset size")
	}
	// Capped blocking keeps most matches.
	for _, row := range r.Rows {
		if row.BlockingCompleteness < 0.9 {
			t.Errorf("n=%d: completeness %.2f below 0.9", row.Records, row.BlockingCompleteness)
		}
		if row.BlockingCandidates > row.SimJoinCandidates*2 {
			t.Errorf("n=%d: blocking produced %d candidates vs simjoin %d", row.Records, row.BlockingCandidates, row.SimJoinCandidates)
		}
	}
	if !strings.Contains(r.String(), "scaling study") {
		t.Error("String() header missing")
	}
}
