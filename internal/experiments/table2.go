package experiments

import (
	"fmt"
	"strings"

	"github.com/crowder/crowder/internal/dataset"
)

// Table2Row is one row of Table 2: the effect of one likelihood threshold.
type Table2Row struct {
	Threshold  float64
	TotalPairs int
	Matches    int
	Recall     float64
}

// Table2Result reproduces Table 2 (likelihood-threshold selection) for one
// dataset.
type Table2Result struct {
	Dataset string
	Rows    []Table2Row
}

// Table2 sweeps the likelihood threshold over {0.5, 0.4, 0.3, 0.2, 0.1, 0}
// on the given dataset and reports retained pairs, retained matches and
// recall — the exact columns of Table 2.
func (e *Env) Table2(d *dataset.Dataset) *Table2Result {
	res := &Table2Result{Dataset: d.Name}
	total := d.Matches.Len()
	for _, tau := range []float64{0.5, 0.4, 0.3, 0.2, 0.1, 0} {
		sp := e.scoredAt(d, tau)
		m := countMatches(sp, d.Matches)
		res.Rows = append(res.Rows, Table2Row{
			Threshold:  tau,
			TotalPairs: len(sp),
			Matches:    m,
			Recall:     float64(m) / float64(total),
		})
	}
	return res
}

// String renders the paper's table layout.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — Likelihood-threshold selection (%s)\n", r.Dataset)
	fmt.Fprintf(&b, "%-10s %12s %9s %8s\n", "Threshold", "Total #Pair", "Matches", "Recall")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10.1f %12d %9d %7.1f%%\n",
			row.Threshold, row.TotalPairs, row.Matches, 100*row.Recall)
	}
	return b.String()
}
