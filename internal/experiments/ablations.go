package experiments

import (
	"fmt"
	"strings"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/hitgen"
)

// AblationRow compares one variant against the paper's configuration.
type AblationRow struct {
	Variant string
	Value   float64
}

// AblationResult holds one ablation study.
type AblationResult struct {
	Name   string
	Metric string
	Rows   []AblationRow
}

// AblationPacking compares the two-tiered approach with exact cutting-stock
// packing (the paper's bottom tier) against First-Fit-Decreasing, measured
// in generated HITs at threshold 0.1 and k=10 — quantifying how much the
// ILP matters.
func (e *Env) AblationPacking(d *dataset.Dataset) (*AblationResult, error) {
	pairs := e.pairsAt(d, 0.1)
	res := &AblationResult{
		Name:   fmt.Sprintf("Packing strategy (%s)", d.Name),
		Metric: "#HITs",
	}
	for _, gen := range []hitgen.ClusterGenerator{
		hitgen.TwoTiered{},
		hitgen.TwoTiered{Pack: hitgen.PackFFD},
	} {
		hits, err := gen.Generate(pairs, 10)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{Variant: gen.Name(), Value: float64(len(hits))})
	}
	return res, nil
}

// AblationSeed compares the top tier's max-degree seeding (Algorithm 2,
// line 4) against naive smallest-ID seeding.
func (e *Env) AblationSeed(d *dataset.Dataset) (*AblationResult, error) {
	pairs := e.pairsAt(d, 0.1)
	res := &AblationResult{
		Name:   fmt.Sprintf("Top-tier seed rule (%s)", d.Name),
		Metric: "#HITs",
	}
	for _, gen := range []hitgen.ClusterGenerator{
		hitgen.TwoTiered{},
		hitgen.TwoTiered{Seed: hitgen.SeedMinID},
	} {
		hits, err := gen.Generate(pairs, 10)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{Variant: gen.Name(), Value: float64(len(hits))})
	}
	return res, nil
}

// AblationTieBreak compares Algorithm 2's min-outdegree tie-breaking
// against no tie-breaking.
func (e *Env) AblationTieBreak(d *dataset.Dataset) (*AblationResult, error) {
	pairs := e.pairsAt(d, 0.1)
	res := &AblationResult{
		Name:   fmt.Sprintf("Top-tier tie-break rule (%s)", d.Name),
		Metric: "#HITs",
	}
	for _, gen := range []hitgen.ClusterGenerator{
		hitgen.TwoTiered{},
		hitgen.TwoTiered{DisableTieBreak: true},
	} {
		hits, err := gen.Generate(pairs, 10)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{Variant: gen.Name(), Value: float64(len(hits))})
	}
	return res, nil
}

// AblationEM compares Dawid–Skene aggregation against majority voting
// under a spam-heavy crowd, measured as decision accuracy on the judged
// pairs — the paper's rationale for adopting the EM-based algorithm
// ("a simple technique ... is susceptible to spammers").
func (e *Env) AblationEM(d *dataset.Dataset, tau float64, k int) (*AblationResult, error) {
	pairs := e.pairsAt(d, tau)
	gen := hitgen.TwoTiered{}
	hits, err := gen.Generate(pairs, k)
	if err != nil {
		return nil, err
	}
	// A spammier-than-default pool to stress the aggregators.
	pop := crowd.NewPopulation(e.Seed, crowd.PopulationOptions{SpammerRate: 0.3})
	run, err := crowd.RunClusterHITs(hits, pairs, d.Matches, pop, crowd.Config{Seed: e.Seed, Difficulty: e.difficultyFn(d)})
	if err != nil {
		return nil, err
	}
	accuracy := func(post aggregate.Posterior) float64 {
		ok := 0
		for _, p := range pairs {
			if (post[p] >= 0.5) == d.Matches.Has(p.A, p.B) {
				ok++
			}
		}
		return float64(ok) / float64(len(pairs))
	}
	res := &AblationResult{
		Name:   fmt.Sprintf("Answer aggregation under 30%% spammers (%s)", d.Name),
		Metric: "decision accuracy",
	}
	res.Rows = append(res.Rows,
		AblationRow{Variant: "Dawid-Skene EM", Value: accuracy(aggregate.DawidSkene(run.Answers, aggregate.DawidSkeneOptions{}))},
		AblationRow{Variant: "Majority vote", Value: accuracy(aggregate.MajorityVote(run.Answers))},
	)
	return res, nil
}

// String renders the ablation table.
func (r *AblationResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — %s\n", r.Name)
	fmt.Fprintf(&b, "%-22s %14s\n", "Variant", r.Metric)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-22s %14.4g\n", row.Variant, row.Value)
	}
	return b.String()
}
