package experiments

import (
	"fmt"
	"strings"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/hitgen"
)

// generators returns the five strategies compared in Section 7.2, in the
// paper's legend order.
func (e *Env) generators() []hitgen.ClusterGenerator {
	return []hitgen.ClusterGenerator{
		hitgen.Random{Seed: e.Seed},
		hitgen.DFS{},
		hitgen.BFS{},
		hitgen.Approx{},
		hitgen.TwoTiered{},
	}
}

// HITCountSeries is one generator's HIT counts across the swept parameter.
type HITCountSeries struct {
	Generator string
	Counts    []int
}

// HITCountResult reproduces Figure 10 or 11: the number of cluster-based
// HITs per generator across a parameter sweep.
type HITCountResult struct {
	Figure  string
	Dataset string
	Param   string
	Values  []float64
	Series  []HITCountSeries
}

// Figure10 sweeps the likelihood threshold from 0.5 to 0.1 with k=10 and
// counts the cluster-based HITs each generator produces (Figure 10).
func (e *Env) Figure10(d *dataset.Dataset) (*HITCountResult, error) {
	res := &HITCountResult{
		Figure:  "Figure 10",
		Dataset: d.Name,
		Param:   "likelihood threshold",
		Values:  []float64{0.5, 0.4, 0.3, 0.2, 0.1},
	}
	const k = 10
	for _, gen := range e.generators() {
		series := HITCountSeries{Generator: gen.Name()}
		for _, tau := range res.Values {
			pairs := e.pairsAt(d, tau)
			hits, err := gen.Generate(pairs, k)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at tau=%v: %w", gen.Name(), tau, err)
			}
			if err := hitgen.ValidateCover(pairs, hits, k); err != nil {
				return nil, fmt.Errorf("experiments: %s at tau=%v: %w", gen.Name(), tau, err)
			}
			series.Counts = append(series.Counts, len(hits))
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Figure11 sweeps the cluster-size threshold over {5, 10, 15, 20} with
// likelihood threshold 0.1 (Figure 11).
func (e *Env) Figure11(d *dataset.Dataset) (*HITCountResult, error) {
	res := &HITCountResult{
		Figure:  "Figure 11",
		Dataset: d.Name,
		Param:   "cluster-size threshold",
		Values:  []float64{5, 10, 15, 20},
	}
	pairs := e.pairsAt(d, 0.1)
	for _, gen := range e.generators() {
		series := HITCountSeries{Generator: gen.Name()}
		for _, kf := range res.Values {
			k := int(kf)
			hits, err := gen.Generate(pairs, k)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at k=%d: %w", gen.Name(), k, err)
			}
			if err := hitgen.ValidateCover(pairs, hits, k); err != nil {
				return nil, fmt.Errorf("experiments: %s at k=%d: %w", gen.Name(), k, err)
			}
			series.Counts = append(series.Counts, len(hits))
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// String renders the series as the figure's data table.
func (r *HITCountResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — #cluster-based HITs vs %s (%s)\n", r.Figure, r.Param, r.Dataset)
	fmt.Fprintf(&b, "%-16s", "Generator")
	for _, v := range r.Values {
		fmt.Fprintf(&b, "%10.1f", v)
	}
	b.WriteByte('\n')
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%-16s", s.Generator)
		for _, c := range s.Counts {
			fmt.Fprintf(&b, "%10d", c)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CountFor returns the HIT count of the named generator at value index i,
// or -1 when absent. Convenience for tests and EXPERIMENTS.md assembly.
func (r *HITCountResult) CountFor(generator string, i int) int {
	for _, s := range r.Series {
		if s.Generator == generator && i < len(s.Counts) {
			return s.Counts[i]
		}
	}
	return -1
}
