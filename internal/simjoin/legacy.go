package simjoin

import (
	"cmp"
	"slices"

	"github.com/crowder/crowder/internal/record"
)

// jaccardTokenSets is the hash-set Jaccard the legacy path scores with,
// kept here so LegacyJoin remains a faithful copy of the original code.
func jaccardTokenSets(a, b record.TokenSet) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := a.IntersectionSize(b)
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// LegacyJoin is the original single-threaded implementation of Join: token
// sets as map[string]struct{} built fresh on every call, a string-keyed
// inverted index, and a hash-set PairSet for deduplication. It is retained
// as the baseline the cmd/bench runner measures speedups against, and as a
// second differential-testing oracle for Join. It shares prefixLen and
// passesLengthFilter with Join, so it carries the same floating-point
// correctness fixes; the data structures and costs are the seed's. Unlike
// Join it predates the empty-set convention: at tau > 0 it omits pairs of
// token-less records, so the oracle relationship holds on tables where
// every record has at least one token. New code should call Join.
func LegacyJoin(t *record.Table, opts Options) []ScoredPair {
	tokens := record.TableTokens(t)
	n := t.Len()

	// Global token frequencies for the prefix ordering: rare tokens first
	// minimizes index collisions.
	freq := make(map[string]int)
	for _, ts := range tokens {
		for tok := range ts {
			freq[tok]++
		}
	}
	sorted := make([][]string, n)
	for i, ts := range tokens {
		s := ts.Sorted()
		slices.SortStableFunc(s, func(a, b string) int {
			if c := cmp.Compare(freq[a], freq[b]); c != 0 {
				return c
			}
			return cmp.Compare(a, b)
		})
		sorted[i] = s
	}

	tau := opts.Threshold
	// Inverted index: token → record IDs that indexed it.
	index := make(map[string][]record.ID)
	seen := make(record.PairSet)
	var out []ScoredPair

	crossOK := func(a, b record.ID) bool {
		if !opts.CrossSourceOnly || len(t.Source) == 0 {
			return true
		}
		return t.Source[a] != t.Source[b]
	}

	for i := 0; i < n; i++ {
		toks := sorted[i]
		plen := prefixLen(len(toks), tau)
		for p := 0; p < plen && p < len(toks); p++ {
			for _, j := range index[toks[p]] {
				pr := record.MakePair(record.ID(i), j)
				if _, dup := seen[pr]; dup {
					continue
				}
				seen[pr] = struct{}{}
				if !crossOK(pr.A, pr.B) {
					continue
				}
				// Length filter: Jaccard ≥ τ requires τ·|x| ≤ |y| ≤ |x|/τ.
				if !passesLengthFilter(len(tokens[pr.A]), len(tokens[pr.B]), tau) {
					continue
				}
				sim := jaccardTokenSets(tokens[pr.A], tokens[pr.B])
				if sim >= tau {
					out = append(out, ScoredPair{Pair: pr, Likelihood: sim})
				}
			}
			index[toks[p]] = append(index[toks[p]], record.ID(i))
		}
	}

	if tau == 0 {
		// Threshold 0 means "all pairs" (Table 2's last row); token-disjoint
		// pairs have likelihood 0 and were never candidates above.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pr := record.Pair{A: record.ID(i), B: record.ID(j)}
				if _, dup := seen[pr]; dup {
					continue
				}
				if !crossOK(pr.A, pr.B) {
					continue
				}
				out = append(out, ScoredPair{Pair: pr, Likelihood: jaccardTokenSets(tokens[i], tokens[j])})
			}
		}
	}

	SortScored(out)
	return out
}
