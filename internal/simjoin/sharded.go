package simjoin

import (
	"cmp"
	"slices"
	"sync/atomic"

	"github.com/crowder/crowder/internal/engine"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/similarity"
)

// Sharded is the shared-nothing partition of Index: the postings are
// split across N shards keyed by a stable hash of each record's token
// set (its blocking signature), and one delta's index-then-probe runs
// concurrently with one goroutine per shard. Where Index.streamScan
// parallelizes probes but funnels every candidate through a single
// channel to one consumer, a Sharded delta gives each shard its own
// emission stream (UpdateScatter) feeding per-shard accumulators that
// are merged once at the end — the scaling bottleneck moves from the
// funnel to the merge, which is O(survivors), not O(candidates).
//
// Partitioning is by record, not by token: a record's full prefix is
// inserted into exactly one shard (its owner), and every probing record
// probes all shards. A qualifying pair {j, i} (j < i) therefore
// surfaces in exactly one shard — shard(j), where j's postings live —
// so the union of the shard streams is exactly the single-index
// candidate multiset with no cross-shard deduplication. The shard key
// hashes the record's sorted token IDs (content, not arrival order), so
// ownership is identical in a k-batch session and a from-scratch run.
//
// Exchange stage: probing is the exchange. Shards never copy postings
// to each other; a boundary probe — a record whose prefix tokens hit
// postings owned by another shard — is routed by running the probe loop
// of every record against every shard's own postings, each shard
// scanning only the slots it owns. The ordering weights and the prefix
// arena are shared read-only across shards, frozen per delta exactly as
// Index freezes them, so a record's prefix (and thus the candidate set)
// is bit-identical to the single-index path.
//
// Token slots are remapped densely per shard (tokIdx): a shard stores
// posting lists only for the tokens that actually own records in it,
// so N shards cost O(total prefix tokens) — not N× the token universe.
//
// A Sharded index is not safe for concurrent use; the owning resolver
// serializes Update calls, and the concurrency inside one update is
// managed here.
type Sharded struct {
	t    *record.Table
	opts Options

	// n is the number of records already indexed and probed.
	n int
	// weight is the frozen token order shared by every shard; identical
	// to Index.weight over the same append sequence.
	weight []int32
	shards []joinShard
	// empties lists the records with empty token sets (see Index).
	empties []int32

	// prefArena backs the delta's prefixes, shared read-only by all
	// shard goroutines and reused across updates.
	prefArena []int32
	prefOffs  []int32
}

// joinShard is one shard's owned state. Every field is touched by
// exactly one goroutine during an update, so shards need no locks.
type joinShard struct {
	// tokIdx remaps global token IDs to dense local posting slots; only
	// tokens appearing in an owned record's prefix get a slot.
	tokIdx   map[int32]int32
	postings []PostingList
	// members lists the shard's owned records, ascending.
	members []int32
	// stamp is the shard's probe-dedup array (see Index.probeScratch);
	// probe indices strictly increase across updates, so it is never
	// cleared.
	stamp []int32
	// dbuf is the shard's posting-block decode buffer.
	dbuf [PostingBlockSize]int32
}

// ShardOfTokens returns the shard owning a record whose sorted token-ID
// set is ids: an FNV-1a hash of the IDs modulo shards. The key is the
// record's blocking signature — pure content, independent of arrival
// order and of the frozen prefix weights — so a record lands on the
// same shard in every batching. shards ≤ 1 returns 0.
func ShardOfTokens(ids []int32, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range ids {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(uint8(id >> s))
			h *= prime64
		}
	}
	return int(h % uint64(shards))
}

// NewSharded creates an empty sharded join index over the table with
// the given shard count (values < 1 are treated as 1). No records are
// indexed until the first update.
func NewSharded(t *record.Table, shards int, opts Options) *Sharded {
	if shards < 1 {
		shards = 1
	}
	sx := &Sharded{t: t, opts: opts, shards: make([]joinShard, shards)}
	for s := range sx.shards {
		sx.shards[s].tokIdx = make(map[int32]int32)
	}
	return sx
}

// NumShards returns the shard count.
func (sx *Sharded) NumShards() int { return len(sx.shards) }

// Indexed returns the number of records absorbed so far.
func (sx *Sharded) Indexed() int { return sx.n }

// ShardSizes returns the number of records owned by each shard — the
// balance diagnostic for the hashed partition.
func (sx *Sharded) ShardSizes() []int {
	out := make([]int, len(sx.shards))
	for s := range sx.shards {
		out[s] = len(sx.shards[s].members)
	}
	return out
}

// PostingsBytes returns the compressed footprint of all shards'
// posting lists in bytes.
func (sx *Sharded) PostingsBytes() int {
	total := 0
	for s := range sx.shards {
		sh := &sx.shards[s]
		for i := range sh.postings {
			total += sh.postings[i].SizeBytes()
		}
	}
	return total
}

// PostingsEntries returns the total number of posting entries indexed
// across all shards.
func (sx *Sharded) PostingsEntries() int {
	total := 0
	for s := range sx.shards {
		sh := &sx.shards[s]
		for i := range sh.postings {
			total += sh.postings[i].Len()
		}
	}
	return total
}

// UpdateScatter indexes the records appended since the last update and
// streams every admissible candidate pair {old or new, new} at or above
// the threshold to sink, tagged with the shard that found it. The union
// over shards is exactly the candidate multiset Index.UpdateSeq would
// emit for the same delta, each pair exactly once.
//
// sink is called concurrently, but calls for one shard are always
// serial and from a single goroutine, so per-shard accumulators indexed
// by the shard tag need no synchronization; the token-less empty-set
// pairs are delivered for shard 0 after every shard goroutine has
// joined. Returning false stops the scan; like Index, the delta is
// still absorbed and its remaining candidates are discarded.
func (sx *Sharded) UpdateScatter(sink func(shard int, sp ScoredPair) bool) {
	t := sx.t
	n := t.Len()
	lo := sx.n
	if n <= lo {
		return
	}
	sx.n = n
	ids := t.TokenIDs()
	tau := sx.opts.Threshold
	ns := len(sx.shards)

	// Assign each new record to its owning shard by content hash.
	owner := make([]int32, n-lo)
	for i := lo; i < n; i++ {
		owner[i-lo] = int32(ShardOfTokens(ids[i], ns))
	}

	var stop atomic.Bool
	emitFor := func(s int) func(ScoredPair) bool {
		return func(sp ScoredPair) bool {
			if !sink(s, sp) {
				stop.Store(true)
				return false
			}
			return true
		}
	}

	if tau <= 0 {
		// Every pair survives a non-positive threshold (see
		// Index.deltaAllPairs): shard s scores its own members j < i
		// against every new record i, which over all shards is every
		// admissible pair with a new endpoint.
		sx.scanShards(func(s int) {
			sh := &sx.shards[s]
			for i := lo; i < n; i++ {
				if owner[i-lo] == int32(s) {
					sh.members = append(sh.members, int32(i))
				}
			}
			emit := emitFor(s)
			for i := lo; i < n; i++ {
				if stop.Load() {
					return
				}
				i32 := int32(i)
				for _, j32 := range sh.members {
					if j32 >= i32 {
						break
					}
					if !sx.opts.crossOK(t, record.ID(j32), record.ID(i)) {
						continue
					}
					if !emit(ScoredPair{
						Pair:       record.Pair{A: record.ID(j32), B: record.ID(i)},
						Likelihood: similarity.Jaccard(ids[i], ids[j32]),
					}) {
						return
					}
				}
			}
		})
		return
	}

	// Freeze ordering weights for tokens first seen in this delta,
	// exactly as Index.update does — the weights (and therefore every
	// prefix) must be bit-identical to the single-index path.
	universe := t.TokenUniverse()
	for len(sx.weight) < universe {
		sx.weight = append(sx.weight, -1)
	}
	fresh := make(map[int32]int32)
	for i := lo; i < n; i++ {
		for _, tok := range ids[i] {
			if sx.weight[tok] < 0 {
				fresh[tok]++
			}
		}
	}
	for tok, f := range fresh {
		sx.weight[tok] = f
	}

	// Compute the new records' prefixes into the shared arena under the
	// frozen order; shards read it concurrently but never write it.
	arena := sx.prefArena[:0]
	offs := append(sx.prefOffs[:0], 0)
	for i := lo; i < n; i++ {
		base := len(arena)
		arena = append(arena, ids[i]...)
		p := arena[base:]
		slices.SortFunc(p, func(a, b int32) int {
			if c := cmp.Compare(sx.weight[a], sx.weight[b]); c != 0 {
				return c
			}
			return cmp.Compare(a, b)
		})
		arena = arena[:base+prefixLen(len(p), tau)]
		offs = append(offs, int32(len(arena)))
	}
	sx.prefArena, sx.prefOffs = arena, offs
	pref := func(i int) []int32 { return arena[offs[i-lo]:offs[i-lo+1]] }

	// Each shard inserts its owned records' prefixes, then probes every
	// new record against its own postings. Inserts precede probes within
	// a shard, and the probe bound j < i excludes records inserted after
	// i, so the fused loop needs no cross-shard barrier: pair {j, i} is
	// found by shard(j) whether j predates the delta or arrived in it.
	sx.scanShards(func(s int) {
		sh := &sx.shards[s]
		for i := lo; i < n; i++ {
			if owner[i-lo] != int32(s) {
				continue
			}
			sh.members = append(sh.members, int32(i))
			for _, tok := range pref(i) {
				slot, ok := sh.tokIdx[tok]
				if !ok {
					slot = int32(len(sh.postings))
					sh.tokIdx[tok] = slot
					sh.postings = append(sh.postings, PostingList{})
				}
				sh.postings[slot].Append(int32(i))
			}
		}
		if len(sh.stamp) < n {
			grown := make([]int32, n)
			copy(grown, sh.stamp)
			sh.stamp = grown
		}
		emit := emitFor(s)
		for i := lo; i < n; i++ {
			if stop.Load() {
				return
			}
			if !sx.probeShard(sh, ids, i, pref(i), tau, emit) {
				return
			}
		}
	})
	if stop.Load() {
		return
	}

	// Token-less records pair with each other at likelihood 1 (the
	// empty-set convention), globally — they own no postings anywhere.
	if tau <= 1 {
		for i := lo; i < n; i++ {
			if len(ids[i]) != 0 {
				continue
			}
			for _, j32 := range sx.empties {
				a, b := record.ID(j32), record.ID(i)
				if sx.opts.crossOK(t, a, b) {
					if !sink(0, ScoredPair{Pair: record.Pair{A: a, B: b}, Likelihood: 1}) {
						return
					}
				}
			}
			sx.empties = append(sx.empties, int32(i))
		}
	}
}

// probeShard scans record i's prefix tokens against one shard's
// postings, emitting every verified pair — the same probe as
// Index.update restricted to the slots this shard owns.
func (sx *Sharded) probeShard(sh *joinShard, ids [][]int32, i int, pref []int32, tau float64, emit func(ScoredPair) bool) bool {
	t := sx.t
	li := len(ids[i])
	i32 := int32(i)
	ok := true
	for _, tok := range pref {
		slot, hit := sh.tokIdx[tok]
		if !hit {
			continue
		}
		sh.postings[slot].forEachLess(i32, &sh.dbuf, func(j32 int32) bool {
			j := int(j32)
			if sh.stamp[j] == i32 {
				return true
			}
			sh.stamp[j] = i32
			if !sx.opts.crossOK(t, record.ID(j), record.ID(i)) {
				return true
			}
			if !passesLengthFilter(li, len(ids[j]), tau) {
				return true
			}
			sim := similarity.Jaccard(ids[i], ids[j])
			if sim >= tau {
				if !emit(ScoredPair{
					Pair:       record.Pair{A: record.ID(j), B: record.ID(i)},
					Likelihood: sim,
				}) {
					ok = false
					return false
				}
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

// scanShards runs fn(s) for every shard, fanning across at most
// Options.Parallelism goroutines (0 = GOMAXPROCS). Each shard is
// handled by exactly one goroutine, preserving the single-writer
// invariant on shard state and sink calls.
func (sx *Sharded) scanShards(fn func(s int)) {
	ns := len(sx.shards)
	workers := engine.WorkerCount(sx.opts.Parallelism, ns)
	engine.Workers(workers, func(w int) {
		for s := w; s < ns; s += workers {
			fn(s)
		}
	})
}

// UpdateRanked absorbs the delta and returns its candidates ranked
// under CompareScored, truncated to the k best (k ≤ 0 keeps all):
// each shard's stream feeds its own bounded top-K heap, and the
// per-shard survivors are merged through one final heap. Because the
// heaps are pure functions of their input multisets and the shard
// streams union to the single-index candidate multiset, the result is
// bit-identical to ranking Index.UpdateSeq through one heap — at every
// shard count and parallelism level.
func (sx *Sharded) UpdateRanked(k int) []ScoredPair {
	ns := len(sx.shards)
	ranks := make([]*engine.TopK[ScoredPair], ns)
	for s := range ranks {
		ranks[s] = engine.NewTopK(k, CompareScored)
	}
	sx.UpdateScatter(func(s int, sp ScoredPair) bool {
		ranks[s].Push(sp)
		return true
	})
	lists := make([][]ScoredPair, ns)
	for s, r := range ranks {
		lists[s] = r.Ranked()
	}
	return engine.MergeRanked(k, CompareScored, lists...)
}
