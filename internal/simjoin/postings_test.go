package simjoin

import (
	"math/rand"
	"slices"
	"testing"
)

// randomAscending returns n strictly ascending int32s with geometric-ish
// gaps, crossing many block boundaries for n > PostingBlockSize.
func randomAscending(rng *rand.Rand, n, maxGap int) []int32 {
	out := make([]int32, n)
	v := int32(0)
	for i := range out {
		v += int32(1 + rng.Intn(maxGap))
		out[i] = v
	}
	return out
}

func buildPostingList(ids []int32) *PostingList {
	var p PostingList
	for _, id := range ids {
		p.Append(id)
	}
	return &p
}

func drainCursor(p *PostingList) []int32 {
	var out []int32
	c := p.Cursor()
	for {
		v, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, v)
	}
}

func TestPostingListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, PostingBlockSize - 1, PostingBlockSize, PostingBlockSize + 1, 5000} {
		ids := randomAscending(rng, n, 300)
		p := buildPostingList(ids)
		if p.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, p.Len())
		}
		wantMax := int32(-1)
		if n > 0 {
			wantMax = ids[n-1]
		}
		if p.Max() != wantMax {
			t.Fatalf("n=%d: Max=%d want %d", n, p.Max(), wantMax)
		}
		if got := drainCursor(p); !slices.Equal(got, ids) {
			t.Fatalf("n=%d: cursor drain mismatch", n)
		}
	}
}

func TestPostingListCompression(t *testing.T) {
	// Dense IDs (delta 1) must encode in ~1 byte each; the flat []int32
	// representation costs 4. Require at least a 2× win after block
	// metadata overhead.
	var p PostingList
	for i := int32(0); i < 10000; i++ {
		p.Append(i)
	}
	flat := 4 * p.Len()
	if p.SizeBytes()*2 > flat {
		t.Fatalf("compressed %dB vs flat %dB: less than 2x", p.SizeBytes(), flat)
	}
}

func TestPostingListAppendPanicsOnNonAscending(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending append")
		}
	}()
	var p PostingList
	p.Append(5)
	p.Append(5)
}

func TestForEachLessMatchesFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ids := randomAscending(rng, 3000, 50)
	p := buildPostingList(ids)
	for trial := 0; trial < 200; trial++ {
		bound := int32(rng.Intn(int(ids[len(ids)-1]) + 100))
		var got []int32
		p.ForEachLess(bound, func(v int32) bool {
			got = append(got, v)
			return true
		})
		var want []int32
		for _, v := range ids {
			if v < bound {
				want = append(want, v)
			}
		}
		if !slices.Equal(got, want) {
			t.Fatalf("bound=%d: got %d entries want %d", bound, len(got), len(want))
		}
	}
	// Early stop.
	var got []int32
	p.ForEachLess(ids[len(ids)-1]+1, func(v int32) bool {
		got = append(got, v)
		return len(got) < 7
	})
	if len(got) != 7 {
		t.Fatalf("early stop: %d entries", len(got))
	}
}

func TestSeekGEMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ids := randomAscending(rng, 4000, 40)
	p := buildPostingList(ids)
	// Fresh-cursor seeks at arbitrary targets.
	for trial := 0; trial < 300; trial++ {
		target := int32(rng.Intn(int(ids[len(ids)-1]) + 200))
		c := p.Cursor()
		got, ok := c.SeekGE(target)
		i, _ := slices.BinarySearch(ids, target)
		if i == len(ids) {
			if ok {
				t.Fatalf("target=%d: expected exhaustion, got %d", target, got)
			}
			continue
		}
		if !ok || got != ids[i] {
			t.Fatalf("target=%d: got (%d,%v) want %d", target, got, ok, ids[i])
		}
		// The seek consumes the returned entry; Next must continue after it.
		if next, nok := c.Next(); i+1 < len(ids) {
			if !nok || next != ids[i+1] {
				t.Fatalf("target=%d: Next after seek got (%d,%v) want %d", target, next, nok, ids[i+1])
			}
		} else if nok {
			t.Fatalf("target=%d: Next after final seek should exhaust", target)
		}
	}
	// Monotone seek sequence on one cursor (the intersection access pattern).
	c := p.Cursor()
	i := 0
	target := int32(0)
	for {
		target += int32(1 + rng.Intn(500))
		got, ok := c.SeekGE(target)
		for i < len(ids) && ids[i] < target {
			i++
		}
		if i == len(ids) {
			if ok {
				t.Fatalf("monotone: expected exhaustion at target=%d", target)
			}
			break
		}
		if !ok || got != ids[i] {
			t.Fatalf("monotone target=%d: got (%d,%v) want %d", target, got, ok, ids[i])
		}
		i++
	}
}

func intersectRef(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func TestIntersectPostingsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		na, nb := rng.Intn(2000), rng.Intn(2000)
		// Mix dense and sparse lists so gallops skip whole blocks.
		a := randomAscending(rng, na, 1+rng.Intn(8))
		b := randomAscending(rng, nb, 1+rng.Intn(200))
		var got []int32
		IntersectPostings(buildPostingList(a), buildPostingList(b), func(v int32) bool {
			got = append(got, v)
			return true
		})
		if want := intersectRef(a, b); !slices.Equal(got, want) {
			t.Fatalf("trial %d: got %d entries want %d", trial, len(got), len(want))
		}
	}
	// Early stop.
	ids := randomAscending(rng, 1000, 3)
	n := 0
	IntersectPostings(buildPostingList(ids), buildPostingList(ids), func(v int32) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop: yielded %d", n)
	}
}
