package simjoin

import (
	"sort"

	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/similarity"
)

// Index is a persistent, incrementally maintained prefix-filtered join
// index over a table. It turns the one-shot Join into a streaming
// operation: each Update call indexes and probes only the records appended
// to the table since the previous call, so resolving a delta of d records
// against a table of n costs O(d·candidates) instead of re-scanning all
// n·(n−1)/2 pairs. Calling Update on a fresh Index with the table fully
// loaded is exactly the batch join.
//
// Completeness across deltas relies on every record's prefix being taken
// under one immutable total token order. Batch prefix filtering orders
// tokens by global frequency, but global frequencies drift as records
// arrive, so the Index freezes each token's weight the first time the
// token is indexed (its frequency within that delta; the first delta —
// usually the whole initial table — reproduces the batch ordering
// exactly). Frozen weights keep every already-built prefix valid: a
// record's prefix depends only on the relative order of its own tokens,
// and that order never changes once assigned. Tokens first seen in later
// deltas carry their in-delta frequency, which is typically small, so new
// rare tokens still sort toward the front of prefixes where they prune
// best.
//
// An Index is not safe for concurrent use; the owning resolver serializes
// Update calls. The table must only grow (append-only), matching the
// contract of record.Table's token cache.
type Index struct {
	t    *record.Table
	opts Options

	// n is the number of records already indexed and probed.
	n int
	// weight[tok] is the token's frozen ordering weight, or -1 if the
	// token has not been indexed yet.
	weight []int32
	// postings[tok] lists, ascending, the records whose prefix contains
	// tok. Only prefix tokens are indexed (standard prefix filtering).
	postings [][]int32
	// empties lists the records with empty token sets, which pair with
	// each other at likelihood 1 under the empty-set convention.
	empties []int32
}

// NewIndex creates an empty join index over the table. No records are
// indexed until the first Update call.
func NewIndex(t *record.Table, opts Options) *Index {
	return &Index{t: t, opts: opts}
}

// Indexed returns the number of records the index has absorbed so far.
func (ix *Index) Indexed() int { return ix.n }

// Update indexes the records appended to the table since the last call
// and returns every admissible pair {old or new, new} whose likelihood is
// at least the threshold, sorted by likelihood descending. Pairs between
// two already-indexed records are never re-emitted: across a sequence of
// Updates every qualifying pair of the final table is returned exactly
// once, and the union of all Update results equals the batch Join of the
// final table.
func (ix *Index) Update() []ScoredPair {
	t := ix.t
	n := t.Len()
	lo := ix.n
	if n <= lo {
		return nil
	}
	ix.n = n
	ids := t.TokenIDs()
	tau := ix.opts.Threshold
	if tau <= 0 {
		// Every pair survives a non-positive threshold, so the prefix
		// index buys nothing: score new×all directly.
		return ix.deltaAllPairs(ids, lo, n)
	}

	// Freeze ordering weights for tokens first seen in this delta: their
	// frequency within the delta. On the first Update over a whole table
	// this is the global frequency ordering of the batch join.
	universe := t.TokenUniverse()
	for len(ix.weight) < universe {
		ix.weight = append(ix.weight, -1)
	}
	for len(ix.postings) < universe {
		ix.postings = append(ix.postings, nil)
	}
	fresh := make(map[int32]int32)
	for i := lo; i < n; i++ {
		for _, tok := range ids[i] {
			if ix.weight[tok] < 0 {
				fresh[tok]++
			}
		}
	}
	for tok, f := range fresh {
		ix.weight[tok] = f
	}

	// Compute the new records' prefixes under the frozen order and insert
	// them into the postings before any probing, so pairs between two
	// records of the same delta are found too (the probe of record i only
	// looks at postings entries j < i).
	prefs := make([][]int32, n-lo)
	for i := lo; i < n; i++ {
		p := append([]int32(nil), ids[i]...)
		sort.Slice(p, func(a, b int) bool {
			if ix.weight[p[a]] != ix.weight[p[b]] {
				return ix.weight[p[a]] < ix.weight[p[b]]
			}
			return p[a] < p[b]
		})
		pref := p[:prefixLen(len(p), tau)]
		prefs[i-lo] = pref
		for _, tok := range pref {
			ix.postings[tok] = append(ix.postings[tok], int32(i))
		}
	}

	out := shardedScan(lo, n, ix.opts.workers(n-lo), func() func(i int, out *[]ScoredPair) {
		// stamp[j] = latest probe i that already considered pair (j, i),
		// deduplicating multi-token collisions without a hash set.
		stamp := make([]int32, n)
		for i := range stamp {
			stamp[i] = -1
		}
		return func(i int, out *[]ScoredPair) {
			li := len(ids[i])
			for _, tok := range prefs[i-lo] {
				for _, j32 := range ix.postings[tok] {
					j := int(j32)
					if j >= i {
						break
					}
					if stamp[j] == int32(i) {
						continue
					}
					stamp[j] = int32(i)
					if !ix.opts.crossOK(t, record.ID(j), record.ID(i)) {
						continue
					}
					if !passesLengthFilter(li, len(ids[j]), tau) {
						continue
					}
					sim := similarity.Jaccard(ids[i], ids[j])
					if sim >= tau {
						*out = append(*out, ScoredPair{
							Pair:       record.Pair{A: record.ID(j), B: record.ID(i)},
							Likelihood: sim,
						})
					}
				}
			}
		}
	})

	// Token-less records never collide in the index, but the empty-set
	// convention gives them similarity 1 with each other.
	if tau <= 1 {
		for i := lo; i < n; i++ {
			if len(ids[i]) != 0 {
				continue
			}
			for _, j32 := range ix.empties {
				a, b := record.ID(j32), record.ID(i)
				if ix.opts.crossOK(t, a, b) {
					out = append(out, ScoredPair{Pair: record.Pair{A: a, B: b}, Likelihood: 1})
				}
			}
			ix.empties = append(ix.empties, int32(i))
		}
	}

	SortScored(out)
	return out
}

// deltaAllPairs scores every admissible pair with a new endpoint; at
// threshold ≤ 0 every pair survives, so prefix filtering buys nothing.
func (ix *Index) deltaAllPairs(ids [][]int32, lo, n int) []ScoredPair {
	t := ix.t
	out := shardedScan(lo, n, ix.opts.workers(n-lo), func() func(i int, out *[]ScoredPair) {
		return func(i int, out *[]ScoredPair) {
			for j := 0; j < i; j++ {
				if !ix.opts.crossOK(t, record.ID(j), record.ID(i)) {
					continue
				}
				*out = append(*out, ScoredPair{
					Pair:       record.Pair{A: record.ID(j), B: record.ID(i)},
					Likelihood: similarity.Jaccard(ids[i], ids[j]),
				})
			}
		}
	})
	SortScored(out)
	return out
}
