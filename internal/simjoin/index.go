package simjoin

import (
	"cmp"
	"iter"
	"slices"
	"sync"

	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/similarity"
)

// Index is a persistent, incrementally maintained prefix-filtered join
// index over a table. It turns the one-shot Join into a streaming
// operation: each Update call indexes and probes only the records appended
// to the table since the previous call, so resolving a delta of d records
// against a table of n costs O(d·candidates) instead of re-scanning all
// n·(n−1)/2 pairs. Calling Update on a fresh Index with the table fully
// loaded is exactly the batch join.
//
// Completeness across deltas relies on every record's prefix being taken
// under one immutable total token order. Batch prefix filtering orders
// tokens by global frequency, but global frequencies drift as records
// arrive, so the Index freezes each token's weight the first time the
// token is indexed (its frequency within that delta; the first delta —
// usually the whole initial table — reproduces the batch ordering
// exactly). Frozen weights keep every already-built prefix valid: a
// record's prefix depends only on the relative order of its own tokens,
// and that order never changes once assigned. Tokens first seen in later
// deltas carry their in-delta frequency, which is typically small, so new
// rare tokens still sort toward the front of prefixes where they prune
// best.
//
// Storage and access are built for scale: postings are block-compressed
// (delta-encoded uvarints with per-block max-ID skip pointers, see
// PostingList) instead of flat []int32 slices, probes terminate block
// scans through the skip pointers, and candidate verification gallops
// when token-set sizes are skewed. Candidates stream out of UpdateSeq
// one at a time — Update is the materializing wrapper — so a consumer
// such as a bounded top-K ranking heap never holds the full candidate
// set.
//
// An Index is not safe for concurrent use; the owning resolver serializes
// Update calls. The table must only grow (append-only), matching the
// contract of record.Table's token cache.
type Index struct {
	t    *record.Table
	opts Options

	// n is the number of records already indexed and probed.
	n int
	// weight[tok] is the token's frozen ordering weight, or -1 if the
	// token has not been indexed yet.
	weight []int32
	// postings[tok] lists, ascending and block-compressed, the records
	// whose prefix contains tok. Only prefix tokens are indexed
	// (standard prefix filtering).
	postings []PostingList
	// empties lists the records with empty token sets, which pair with
	// each other at likelihood 1 under the empty-set convention.
	empties []int32

	// prefArena backs the delta's prefixes as one flat allocation,
	// reused across Update calls.
	prefArena []int32
	prefOffs  []int32

	// scratch is the pool of per-worker probe state (dedup stamps and
	// block-decode buffers), reused across Update calls so the
	// steady-state delta path stops allocating per call. Stamp entries
	// record the probing record index that last considered a record;
	// probe indices strictly increase across a session's Updates, so a
	// stale entry can never collide with a live probe and the arrays
	// never need clearing.
	scratchMu sync.Mutex
	scratch   []*probeScratch
}

// probeScratch is one worker's reusable probe state.
type probeScratch struct {
	// stamp[j] = latest probe i that already considered pair (j, i),
	// deduplicating multi-token collisions without a hash set.
	stamp []int32
	// dbuf is the posting-block decode buffer.
	dbuf [PostingBlockSize]int32
}

// NewIndex creates an empty join index over the table. No records are
// indexed until the first Update call.
func NewIndex(t *record.Table, opts Options) *Index {
	return &Index{t: t, opts: opts}
}

// Indexed returns the number of records the index has absorbed so far.
func (ix *Index) Indexed() int { return ix.n }

// PostingsBytes returns the compressed footprint of the posting lists in
// bytes. The flat-slice representation this replaced would occupy
// 4·(total entries) before append slack.
func (ix *Index) PostingsBytes() int {
	total := 0
	for i := range ix.postings {
		total += ix.postings[i].SizeBytes()
	}
	return total
}

// PostingsEntries returns the total number of posting entries indexed.
func (ix *Index) PostingsEntries() int {
	total := 0
	for i := range ix.postings {
		total += ix.postings[i].Len()
	}
	return total
}

// getScratch pops (or creates) a probe scratch whose stamp covers n
// records. Stale stamp values need no clearing — see the scratch field.
func (ix *Index) getScratch(n int) *probeScratch {
	ix.scratchMu.Lock()
	var sc *probeScratch
	if k := len(ix.scratch); k > 0 {
		sc = ix.scratch[k-1]
		ix.scratch = ix.scratch[:k-1]
	}
	ix.scratchMu.Unlock()
	if sc == nil {
		sc = &probeScratch{}
	}
	if len(sc.stamp) < n {
		grown := make([]int32, n)
		copy(grown, sc.stamp)
		sc.stamp = grown
	}
	return sc
}

func (ix *Index) putScratch(sc *probeScratch) {
	ix.scratchMu.Lock()
	ix.scratch = append(ix.scratch, sc)
	ix.scratchMu.Unlock()
}

// Update indexes the records appended to the table since the last call
// and returns every admissible pair {old or new, new} whose likelihood is
// at least the threshold, sorted by likelihood descending. Pairs between
// two already-indexed records are never re-emitted: across a sequence of
// Updates every qualifying pair of the final table is returned exactly
// once, and the union of all Update results equals the batch Join of the
// final table.
//
// Update is the materializing wrapper around UpdateSeq: it drains the
// candidate stream and canonically sorts it. Callers that can rank or
// filter incrementally should consume UpdateSeq instead.
func (ix *Index) Update() []ScoredPair {
	var out []ScoredPair
	for sp := range ix.UpdateSeq() {
		out = append(out, sp)
	}
	SortScored(out)
	return out
}

// UpdateSeq indexes the records appended to the table since the last
// call and streams every admissible candidate pair {old or new, new}
// whose likelihood is at least the threshold, one at a time. The
// emission order is unspecified (shards may interleave); consumers
// needing the canonical likelihood ranking feed a collector with a total
// order — Update, or a bounded top-K heap — whose output is then
// deterministic at every parallelism level.
//
// The sequence is single-use and carries the index's side effects: the
// delta is absorbed when the sequence is iterated, so iterate it exactly
// once. Breaking early is safe (workers are cancelled) but discards the
// delta's remaining candidates — they will not reappear in later
// Updates.
func (ix *Index) UpdateSeq() iter.Seq[ScoredPair] {
	return func(yield func(ScoredPair) bool) {
		ix.update(yield)
	}
}

// update runs one delta: freeze token weights, compute and insert the
// new records' prefixes, then probe and stream candidates.
func (ix *Index) update(yield func(ScoredPair) bool) {
	t := ix.t
	n := t.Len()
	lo := ix.n
	if n <= lo {
		return
	}
	ix.n = n
	ids := t.TokenIDs()
	tau := ix.opts.Threshold
	if tau <= 0 {
		// Every pair survives a non-positive threshold, so the prefix
		// index buys nothing: score new×all directly.
		ix.deltaAllPairs(ids, lo, n, yield)
		return
	}

	// Freeze ordering weights for tokens first seen in this delta: their
	// frequency within the delta. On the first Update over a whole table
	// this is the global frequency ordering of the batch join.
	universe := t.TokenUniverse()
	for len(ix.weight) < universe {
		ix.weight = append(ix.weight, -1)
	}
	for len(ix.postings) < universe {
		ix.postings = append(ix.postings, PostingList{})
	}
	fresh := make(map[int32]int32)
	for i := lo; i < n; i++ {
		for _, tok := range ids[i] {
			if ix.weight[tok] < 0 {
				fresh[tok]++
			}
		}
	}
	for tok, f := range fresh {
		ix.weight[tok] = f
	}

	// Compute the new records' prefixes under the frozen order and insert
	// them into the postings before any probing, so pairs between two
	// records of the same delta are found too (the probe of record i only
	// looks at postings entries j < i). The prefixes live in one flat
	// arena reused across Updates.
	arena := ix.prefArena[:0]
	offs := append(ix.prefOffs[:0], 0)
	for i := lo; i < n; i++ {
		base := len(arena)
		arena = append(arena, ids[i]...)
		p := arena[base:]
		slices.SortFunc(p, func(a, b int32) int {
			if c := cmp.Compare(ix.weight[a], ix.weight[b]); c != 0 {
				return c
			}
			return cmp.Compare(a, b)
		})
		arena = arena[:base+prefixLen(len(p), tau)]
		offs = append(offs, int32(len(arena)))
		for _, tok := range arena[base:] {
			ix.postings[tok].Append(int32(i))
		}
	}
	ix.prefArena, ix.prefOffs = arena, offs
	pref := func(i int) []int32 { return arena[offs[i-lo]:offs[i-lo+1]] }

	// probe scans record i's prefix tokens' postings for candidates,
	// emitting every verified pair. Skip pointers bound each posting
	// scan to entries below i without decoding trailing blocks.
	probe := func(i int, sc *probeScratch, emit func(ScoredPair) bool) bool {
		li := len(ids[i])
		i32 := int32(i)
		ok := true
		for _, tok := range pref(i) {
			ix.postings[tok].forEachLess(i32, &sc.dbuf, func(j32 int32) bool {
				j := int(j32)
				if sc.stamp[j] == i32 {
					return true
				}
				sc.stamp[j] = i32
				if !ix.opts.crossOK(t, record.ID(j), record.ID(i)) {
					return true
				}
				if !passesLengthFilter(li, len(ids[j]), tau) {
					return true
				}
				sim := similarity.Jaccard(ids[i], ids[j])
				if sim >= tau {
					if !emit(ScoredPair{
						Pair:       record.Pair{A: record.ID(j), B: record.ID(i)},
						Likelihood: sim,
					}) {
						ok = false
						return false
					}
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}

	if !ix.streamScan(lo, n, yield, probe) {
		return
	}

	// Token-less records never collide in the index, but the empty-set
	// convention gives them similarity 1 with each other.
	if tau <= 1 {
		for i := lo; i < n; i++ {
			if len(ids[i]) != 0 {
				continue
			}
			for _, j32 := range ix.empties {
				a, b := record.ID(j32), record.ID(i)
				if ix.opts.crossOK(t, a, b) {
					if !yield(ScoredPair{Pair: record.Pair{A: a, B: b}, Likelihood: 1}) {
						return
					}
				}
			}
			ix.empties = append(ix.empties, int32(i))
		}
	}
}

// deltaAllPairs scores every admissible pair with a new endpoint; at
// threshold ≤ 0 every pair survives, so prefix filtering buys nothing.
func (ix *Index) deltaAllPairs(ids [][]int32, lo, n int, yield func(ScoredPair) bool) {
	t := ix.t
	probe := func(i int, _ *probeScratch, emit func(ScoredPair) bool) bool {
		for j := 0; j < i; j++ {
			if !ix.opts.crossOK(t, record.ID(j), record.ID(i)) {
				continue
			}
			if !emit(ScoredPair{
				Pair:       record.Pair{A: record.ID(j), B: record.ID(i)},
				Likelihood: similarity.Jaccard(ids[i], ids[j]),
			}) {
				return false
			}
		}
		return true
	}
	ix.streamScan(lo, n, yield, probe)
}

// streamScan fans the probe-record loop out across workers and funnels
// every emitted candidate to yield on the calling goroutine. With one
// worker the probes run inline and candidates pass straight through —
// zero buffering. With several, each worker scans a strided partition of
// [lo, n) with its own pooled scratch and ships candidates in small
// bounded batches over a channel, so memory stays O(workers·batch)
// regardless of how many candidates the delta produces. Returns false if
// yield stopped the scan.
func (ix *Index) streamScan(lo, n int, yield func(ScoredPair) bool, probe func(i int, sc *probeScratch, emit func(ScoredPair) bool) bool) bool {
	workers := ix.opts.workers(n - lo)
	if workers <= 1 {
		sc := ix.getScratch(n)
		defer ix.putScratch(sc)
		for i := lo; i < n; i++ {
			if !probe(i, sc, yield) {
				return false
			}
		}
		return true
	}

	const batchCap = 64
	ch := make(chan []ScoredPair, workers)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sc := ix.getScratch(n)
			defer ix.putScratch(sc)
			batch := make([]ScoredPair, 0, batchCap)
			flush := func() bool {
				if len(batch) == 0 {
					return true
				}
				select {
				case ch <- batch:
					batch = make([]ScoredPair, 0, batchCap)
					return true
				case <-done:
					return false
				}
			}
			emit := func(sp ScoredPair) bool {
				batch = append(batch, sp)
				if len(batch) == batchCap {
					return flush()
				}
				return true
			}
			for i := lo + w; i < n; i += workers {
				if !probe(i, sc, emit) {
					return
				}
			}
			flush()
		}(w)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	ok := true
	for batch := range ch {
		if !ok {
			continue // drain so workers unblock and exit
		}
		for _, sp := range batch {
			if !yield(sp) {
				ok = false
				close(done)
				break
			}
		}
	}
	return ok
}
