package simjoin

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

// paperTable builds Table 1 of the paper (nine product records).
func paperTable() *record.Table {
	t := record.NewTable("product_name", "price")
	t.Append("iPad Two 16GB WiFi White", "$490")               // r1 (ID 0)
	t.Append("iPad 2nd generation 16GB WiFi White", "$469")    // r2 (ID 1)
	t.Append("iPhone 4th generation White 16GB", "$545")       // r3 (ID 2)
	t.Append("Apple iPhone 4 16GB White", "$520")              // r4 (ID 3)
	t.Append("Apple iPhone 3rd generation Black 16GB", "$375") // r5 (ID 4)
	t.Append("iPhone 4 32GB White", "$599")                    // r6 (ID 5)
	t.Append("Apple iPad2 16GB WiFi White", "$499")            // r7 (ID 6)
	t.Append("Apple iPod shuffle 2GB Blue", "$49")             // r8 (ID 7)
	t.Append("Apple iPod shuffle USB Cable", "$19")            // r9 (ID 8)
	return t
}

func TestJoinMatchesBruteForce(t *testing.T) {
	tab := paperTable()
	for _, tau := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.8} {
		got := Join(tab, Options{Threshold: tau})
		want := BruteForce(tab, Options{Threshold: tau})
		if len(got) != len(want) {
			t.Fatalf("tau=%v: Join found %d pairs, BruteForce %d", tau, len(got), len(want))
		}
		for i := range want {
			if got[i].Pair != want[i].Pair || got[i].Likelihood != want[i].Likelihood {
				t.Fatalf("tau=%v: mismatch at %d: %v vs %v", tau, i, got[i], want[i])
			}
		}
	}
}

func TestJoinThresholdZeroIsAllPairs(t *testing.T) {
	tab := paperTable()
	got := Join(tab, Options{Threshold: 0})
	n := tab.Len()
	if len(got) != n*(n-1)/2 {
		t.Fatalf("threshold 0 should return all %d pairs; got %d", n*(n-1)/2, len(got))
	}
}

func TestJoinSortedByLikelihood(t *testing.T) {
	tab := paperTable()
	got := Join(tab, Options{Threshold: 0.1})
	for i := 1; i < len(got); i++ {
		if got[i-1].Likelihood < got[i].Likelihood {
			t.Fatal("results not sorted by likelihood descending")
		}
	}
}

func TestJoinPaperExamplePairKnown(t *testing.T) {
	// In the paper's workflow example (Example 1, threshold 0.3), (r1, r2)
	// survives. Note: the paper computes Jaccard on Product Name only; our
	// simjoin follows Section 7.1 and uses tokens from all attributes, so we
	// assert presence rather than the exact value.
	tab := paperTable()
	got := Join(tab, Options{Threshold: 0.3})
	found := false
	for _, sp := range got {
		if sp.Pair == record.MakePair(0, 1) {
			found = true
		}
	}
	if !found {
		t.Fatal("(r1, r2) should survive threshold 0.3")
	}
}

func TestCrossSourceOnly(t *testing.T) {
	tab := record.NewTable("name")
	tab.AppendFrom(0, "apple ipod touch 8gb")
	tab.AppendFrom(0, "apple ipod touch 8gb black")
	tab.AppendFrom(1, "apple ipod touch 8gb 2nd gen")
	all := Join(tab, Options{Threshold: 0.1})
	cross := Join(tab, Options{Threshold: 0.1, CrossSourceOnly: true})
	if len(all) != 3 {
		t.Fatalf("all-pairs join found %d pairs; want 3", len(all))
	}
	if len(cross) != 2 {
		t.Fatalf("cross-source join found %d pairs; want 2", len(cross))
	}
	for _, sp := range cross {
		if tab.Source[sp.Pair.A] == tab.Source[sp.Pair.B] {
			t.Fatal("cross-source join returned a same-source pair")
		}
	}
	bf := BruteForce(tab, Options{Threshold: 0.1, CrossSourceOnly: true})
	if len(bf) != len(cross) {
		t.Fatalf("brute force cross-source found %d; want %d", len(bf), len(cross))
	}
}

func TestFilterThreshold(t *testing.T) {
	sp := []ScoredPair{
		{Pair: record.Pair{A: 0, B: 1}, Likelihood: 0.9},
		{Pair: record.Pair{A: 0, B: 2}, Likelihood: 0.5},
		{Pair: record.Pair{A: 1, B: 2}, Likelihood: 0.2},
	}
	got := FilterThreshold(sp, 0.5)
	if len(got) != 2 {
		t.Fatalf("FilterThreshold(0.5) kept %d pairs; want 2", len(got))
	}
	if got[1].Likelihood != 0.5 {
		t.Error("threshold should be inclusive")
	}
}

func TestPairsExtraction(t *testing.T) {
	sp := []ScoredPair{
		{Pair: record.Pair{A: 3, B: 7}, Likelihood: 0.4},
		{Pair: record.Pair{A: 1, B: 2}, Likelihood: 0.3},
	}
	ps := Pairs(sp)
	if len(ps) != 2 || ps[0] != (record.Pair{A: 3, B: 7}) {
		t.Fatalf("Pairs = %v", ps)
	}
}

func TestSortScoredTieBreak(t *testing.T) {
	sp := []ScoredPair{
		{Pair: record.Pair{A: 2, B: 3}, Likelihood: 0.5},
		{Pair: record.Pair{A: 0, B: 1}, Likelihood: 0.5},
		{Pair: record.Pair{A: 0, B: 9}, Likelihood: 0.7},
	}
	SortScored(sp)
	if sp[0].Likelihood != 0.7 {
		t.Fatal("highest likelihood should come first")
	}
	if sp[1].Pair != (record.Pair{A: 0, B: 1}) {
		t.Fatal("ties should break on canonical pair order")
	}
}

// randomTable builds a table of records with random tokens drawn from a
// small vocabulary, so that pairs span the full similarity range.
func randomTable(seed int64, n int) *record.Table {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"apple", "ipad", "iphone", "ipod", "16gb", "32gb",
		"white", "black", "wifi", "generation", "shuffle", "cable", "usb"}
	tab := record.NewTable("name")
	for i := 0; i < n; i++ {
		k := 2 + rng.Intn(6)
		toks := make([]string, 0, k)
		for j := 0; j < k; j++ {
			toks = append(toks, vocab[rng.Intn(len(vocab))])
		}
		tab.Append(fmt.Sprint(toks))
	}
	return tab
}

// Property: prefix-filtered join ≡ brute force for random tables and
// random thresholds.
func TestJoinEquivalenceProperty(t *testing.T) {
	f := func(seed int64, tRaw uint8) bool {
		tau := float64(tRaw%11) / 10 // 0.0 .. 1.0
		tab := randomTable(seed, 25)
		got := Join(tab, Options{Threshold: tau})
		want := BruteForce(tab, Options{Threshold: tau})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Pair != want[i].Pair || got[i].Likelihood != want[i].Likelihood {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity — raising the threshold never adds pairs, and the
// retained set at a higher threshold is a subset of the lower one.
func TestJoinMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		tab := randomTable(seed, 20)
		lo := Join(tab, Options{Threshold: 0.2})
		hi := Join(tab, Options{Threshold: 0.6})
		if len(hi) > len(lo) {
			return false
		}
		loSet := make(map[record.Pair]bool, len(lo))
		for _, sp := range lo {
			loSet[sp.Pair] = true
		}
		for _, sp := range hi {
			if !loSet[sp.Pair] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// equalScored fails the test unless two scored slices are identical.
func equalScored(t *testing.T, label string, got, want []ScoredPair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: mismatch at %d: %v vs %v", label, i, got[i], want[i])
		}
	}
}

// Acceptance: parallel Join is deterministic and equal to BruteForce on
// the Restaurant and Product generators at thresholds {0, 0.3, 0.5, 0.8},
// at parallelism 1 and 8. Run with -race to catch sharding races.
func TestJoinParallelEquivalenceDatasets(t *testing.T) {
	cases := []struct {
		name  string
		table *record.Table
		cross bool
	}{
		{"Restaurant", dataset.RestaurantN(1, 200, 30).Table, false},
		{"Product", dataset.ProductN(1, 110, 110, 40).Table, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, tau := range []float64{0, 0.3, 0.5, 0.8} {
				opts := Options{Threshold: tau, CrossSourceOnly: c.cross}
				want := BruteForce(c.table, opts)
				for _, par := range []int{1, 2, 8} {
					opts.Parallelism = par
					got := Join(c.table, opts)
					equalScored(t, fmt.Sprintf("tau=%v par=%d", tau, par), got, want)
				}
			}
		})
	}
}

// The retained legacy implementation must agree with the interned one —
// it is only useful as a baseline if it computes the same join.
func TestJoinMatchesLegacy(t *testing.T) {
	tab := dataset.RestaurantN(7, 150, 25).Table
	for _, tau := range []float64{0, 0.3, 0.6} {
		got := Join(tab, Options{Threshold: tau})
		want := LegacyJoin(tab, Options{Threshold: tau})
		equalScored(t, fmt.Sprintf("tau=%v", tau), got, want)
	}
}

// Records with empty token sets follow the empty-set convention
// (similarity 1 with each other) on both the indexed and brute-force
// paths.
func TestJoinEmptyRecords(t *testing.T) {
	tab := record.NewTable("name")
	tab.Append("apple ipad")
	tab.Append("") // no tokens
	tab.Append("~~ ~~")
	tab.Append("apple ipad wifi")
	for _, tau := range []float64{0, 0.4, 1} {
		got := Join(tab, Options{Threshold: tau})
		want := BruteForce(tab, Options{Threshold: tau})
		equalScored(t, fmt.Sprintf("tau=%v", tau), got, want)
	}
	got := Join(tab, Options{Threshold: 0.5})
	found := false
	for _, sp := range got {
		if sp.Pair == record.MakePair(1, 2) {
			found = true
			if sp.Likelihood != 1 {
				t.Fatalf("empty-empty likelihood = %v; want 1", sp.Likelihood)
			}
		}
	}
	if !found {
		t.Fatal("empty-record pair missing from join output")
	}
}

// Regression: the seed computed the prefix length as ⌊(1−τ)·len⌋+1 in
// floating point, where 5·(1−0.8) evaluates to 0.99999… and truncates the
// prefix one short — silently dropping pairs whose Jaccard is exactly the
// threshold (here J = 4/5 = τ = 0.8 with token-set sizes 4 and 5).
func TestJoinPrefixLenFloatBoundary(t *testing.T) {
	tab := record.NewTable("name")
	tab.Append("a b c d")   // 4 tokens
	tab.Append("a b c d e") // 5 tokens, J = 4/5 with the first
	tab.Append("q r s t u v w")
	got := Join(tab, Options{Threshold: 0.8})
	want := BruteForce(tab, Options{Threshold: 0.8})
	equalScored(t, "tau=0.8 boundary", got, want)
	if len(got) != 1 || got[0].Pair != record.MakePair(0, 1) {
		t.Fatalf("boundary pair missing: %v", got)
	}
	if p := prefixLen(5, 0.8); p != 2 {
		t.Fatalf("prefixLen(5, 0.8) = %d; want 2", p)
	}
	if !passesLengthFilter(4, 5, 0.8) {
		t.Fatal("length filter pruned the exact-threshold pair")
	}
}

// Thresholds above 1 are unsatisfiable for non-empty records; they must
// return the same (near-empty) result as BruteForce, not panic on a
// negative prefix length.
func TestJoinThresholdAboveOne(t *testing.T) {
	tab := paperTable()
	got := Join(tab, Options{Threshold: 1.5})
	want := BruteForce(tab, Options{Threshold: 1.5})
	equalScored(t, "tau=1.5", got, want)
	if len(got) != 0 {
		t.Fatalf("tau=1.5 returned %d pairs; want none", len(got))
	}
	if p := prefixLen(4, 1.5); p != 0 {
		t.Fatalf("prefixLen(4, 1.5) = %d; want 0", p)
	}
}

func TestJoinParallelismDoesNotLeakGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	tab := randomTable(3, 100)
	for i := 0; i < 5; i++ {
		Join(tab, Options{Threshold: 0.3, Parallelism: 8})
	}
	// Workers signal completion from a defer, so a few may still be
	// unwinding when Join returns; poll briefly before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	after := runtime.NumGoroutine()
	for after > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		after = runtime.NumGoroutine()
	}
	if after > before+2 {
		t.Errorf("goroutines grew from %d to %d", before, after)
	}
}

func BenchmarkJoinPrefixFiltered(b *testing.B) {
	tab := randomTable(42, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(tab, Options{Threshold: 0.4})
	}
}

func BenchmarkJoinBruteForce(b *testing.B) {
	tab := randomTable(42, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForce(tab, Options{Threshold: 0.4})
	}
}

// BenchmarkJoinLegacySeed measures the seed repo's original map-of-strings
// implementation — the baseline BENCH_baseline.json records speedups
// against.
func BenchmarkJoinLegacySeed(b *testing.B) {
	tab := randomTable(42, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LegacyJoin(tab, Options{Threshold: 0.4})
	}
}

func BenchmarkJoinParallel(b *testing.B) {
	tab := randomTable(42, 500)
	tab.TokenIDs() // warm the cache outside the timing loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(tab, Options{Threshold: 0.4})
	}
}

func BenchmarkJoinRestaurantScales(b *testing.B) {
	for _, n := range []int{500, 1000, 2000} {
		tab := dataset.RestaurantN(1, n, n/8).Table
		tab.TokenIDs()
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Join(tab, Options{Threshold: 0.3})
			}
		})
	}
}

func TestScoreCandidatesMatchesJoin(t *testing.T) {
	// With the complete candidate set, ScoreCandidates ≡ Join.
	tab := paperTable()
	var all []record.Pair
	for i := 0; i < tab.Len(); i++ {
		for j := i + 1; j < tab.Len(); j++ {
			all = append(all, record.MakePair(record.ID(i), record.ID(j)))
		}
	}
	got := ScoreCandidates(tab, all, 0.3)
	want := Join(tab, Options{Threshold: 0.3})
	if len(got) != len(want) {
		t.Fatalf("ScoreCandidates found %d pairs; Join found %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestScoreCandidatesCanonicalizes(t *testing.T) {
	tab := paperTable()
	got := ScoreCandidates(tab, []record.Pair{{A: 1, B: 0}}, 0)
	if len(got) != 1 || got[0].Pair != record.MakePair(0, 1) {
		t.Fatalf("ScoreCandidates = %v; want canonical (0,1)", got)
	}
}
