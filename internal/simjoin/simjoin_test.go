package simjoin

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crowder/crowder/internal/record"
)

// paperTable builds Table 1 of the paper (nine product records).
func paperTable() *record.Table {
	t := record.NewTable("product_name", "price")
	t.Append("iPad Two 16GB WiFi White", "$490")               // r1 (ID 0)
	t.Append("iPad 2nd generation 16GB WiFi White", "$469")    // r2 (ID 1)
	t.Append("iPhone 4th generation White 16GB", "$545")       // r3 (ID 2)
	t.Append("Apple iPhone 4 16GB White", "$520")              // r4 (ID 3)
	t.Append("Apple iPhone 3rd generation Black 16GB", "$375") // r5 (ID 4)
	t.Append("iPhone 4 32GB White", "$599")                    // r6 (ID 5)
	t.Append("Apple iPad2 16GB WiFi White", "$499")            // r7 (ID 6)
	t.Append("Apple iPod shuffle 2GB Blue", "$49")             // r8 (ID 7)
	t.Append("Apple iPod shuffle USB Cable", "$19")            // r9 (ID 8)
	return t
}

func TestJoinMatchesBruteForce(t *testing.T) {
	tab := paperTable()
	for _, tau := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.8} {
		got := Join(tab, Options{Threshold: tau})
		want := BruteForce(tab, Options{Threshold: tau})
		if len(got) != len(want) {
			t.Fatalf("tau=%v: Join found %d pairs, BruteForce %d", tau, len(got), len(want))
		}
		for i := range want {
			if got[i].Pair != want[i].Pair || got[i].Likelihood != want[i].Likelihood {
				t.Fatalf("tau=%v: mismatch at %d: %v vs %v", tau, i, got[i], want[i])
			}
		}
	}
}

func TestJoinThresholdZeroIsAllPairs(t *testing.T) {
	tab := paperTable()
	got := Join(tab, Options{Threshold: 0})
	n := tab.Len()
	if len(got) != n*(n-1)/2 {
		t.Fatalf("threshold 0 should return all %d pairs; got %d", n*(n-1)/2, len(got))
	}
}

func TestJoinSortedByLikelihood(t *testing.T) {
	tab := paperTable()
	got := Join(tab, Options{Threshold: 0.1})
	for i := 1; i < len(got); i++ {
		if got[i-1].Likelihood < got[i].Likelihood {
			t.Fatal("results not sorted by likelihood descending")
		}
	}
}

func TestJoinPaperExamplePairKnown(t *testing.T) {
	// In the paper's workflow example (Example 1, threshold 0.3), (r1, r2)
	// survives. Note: the paper computes Jaccard on Product Name only; our
	// simjoin follows Section 7.1 and uses tokens from all attributes, so we
	// assert presence rather than the exact value.
	tab := paperTable()
	got := Join(tab, Options{Threshold: 0.3})
	found := false
	for _, sp := range got {
		if sp.Pair == record.MakePair(0, 1) {
			found = true
		}
	}
	if !found {
		t.Fatal("(r1, r2) should survive threshold 0.3")
	}
}

func TestCrossSourceOnly(t *testing.T) {
	tab := record.NewTable("name")
	tab.AppendFrom(0, "apple ipod touch 8gb")
	tab.AppendFrom(0, "apple ipod touch 8gb black")
	tab.AppendFrom(1, "apple ipod touch 8gb 2nd gen")
	all := Join(tab, Options{Threshold: 0.1})
	cross := Join(tab, Options{Threshold: 0.1, CrossSourceOnly: true})
	if len(all) != 3 {
		t.Fatalf("all-pairs join found %d pairs; want 3", len(all))
	}
	if len(cross) != 2 {
		t.Fatalf("cross-source join found %d pairs; want 2", len(cross))
	}
	for _, sp := range cross {
		if tab.Source[sp.Pair.A] == tab.Source[sp.Pair.B] {
			t.Fatal("cross-source join returned a same-source pair")
		}
	}
	bf := BruteForce(tab, Options{Threshold: 0.1, CrossSourceOnly: true})
	if len(bf) != len(cross) {
		t.Fatalf("brute force cross-source found %d; want %d", len(bf), len(cross))
	}
}

func TestFilterThreshold(t *testing.T) {
	sp := []ScoredPair{
		{Pair: record.Pair{A: 0, B: 1}, Likelihood: 0.9},
		{Pair: record.Pair{A: 0, B: 2}, Likelihood: 0.5},
		{Pair: record.Pair{A: 1, B: 2}, Likelihood: 0.2},
	}
	got := FilterThreshold(sp, 0.5)
	if len(got) != 2 {
		t.Fatalf("FilterThreshold(0.5) kept %d pairs; want 2", len(got))
	}
	if got[1].Likelihood != 0.5 {
		t.Error("threshold should be inclusive")
	}
}

func TestPairsExtraction(t *testing.T) {
	sp := []ScoredPair{
		{Pair: record.Pair{A: 3, B: 7}, Likelihood: 0.4},
		{Pair: record.Pair{A: 1, B: 2}, Likelihood: 0.3},
	}
	ps := Pairs(sp)
	if len(ps) != 2 || ps[0] != (record.Pair{A: 3, B: 7}) {
		t.Fatalf("Pairs = %v", ps)
	}
}

func TestSortScoredTieBreak(t *testing.T) {
	sp := []ScoredPair{
		{Pair: record.Pair{A: 2, B: 3}, Likelihood: 0.5},
		{Pair: record.Pair{A: 0, B: 1}, Likelihood: 0.5},
		{Pair: record.Pair{A: 0, B: 9}, Likelihood: 0.7},
	}
	SortScored(sp)
	if sp[0].Likelihood != 0.7 {
		t.Fatal("highest likelihood should come first")
	}
	if sp[1].Pair != (record.Pair{A: 0, B: 1}) {
		t.Fatal("ties should break on canonical pair order")
	}
}

// randomTable builds a table of records with random tokens drawn from a
// small vocabulary, so that pairs span the full similarity range.
func randomTable(seed int64, n int) *record.Table {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"apple", "ipad", "iphone", "ipod", "16gb", "32gb",
		"white", "black", "wifi", "generation", "shuffle", "cable", "usb"}
	tab := record.NewTable("name")
	for i := 0; i < n; i++ {
		k := 2 + rng.Intn(6)
		toks := make([]string, 0, k)
		for j := 0; j < k; j++ {
			toks = append(toks, vocab[rng.Intn(len(vocab))])
		}
		tab.Append(fmt.Sprint(toks))
	}
	return tab
}

// Property: prefix-filtered join ≡ brute force for random tables and
// random thresholds.
func TestJoinEquivalenceProperty(t *testing.T) {
	f := func(seed int64, tRaw uint8) bool {
		tau := float64(tRaw%11) / 10 // 0.0 .. 1.0
		tab := randomTable(seed, 25)
		got := Join(tab, Options{Threshold: tau})
		want := BruteForce(tab, Options{Threshold: tau})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].Pair != want[i].Pair || got[i].Likelihood != want[i].Likelihood {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity — raising the threshold never adds pairs, and the
// retained set at a higher threshold is a subset of the lower one.
func TestJoinMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		tab := randomTable(seed, 20)
		lo := Join(tab, Options{Threshold: 0.2})
		hi := Join(tab, Options{Threshold: 0.6})
		if len(hi) > len(lo) {
			return false
		}
		loSet := make(map[record.Pair]bool, len(lo))
		for _, sp := range lo {
			loSet[sp.Pair] = true
		}
		for _, sp := range hi {
			if !loSet[sp.Pair] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkJoinPrefixFiltered(b *testing.B) {
	tab := randomTable(42, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(tab, Options{Threshold: 0.4})
	}
}

func BenchmarkJoinBruteForce(b *testing.B) {
	tab := randomTable(42, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForce(tab, Options{Threshold: 0.4})
	}
}

func TestScoreCandidatesMatchesJoin(t *testing.T) {
	// With the complete candidate set, ScoreCandidates ≡ Join.
	tab := paperTable()
	var all []record.Pair
	for i := 0; i < tab.Len(); i++ {
		for j := i + 1; j < tab.Len(); j++ {
			all = append(all, record.MakePair(record.ID(i), record.ID(j)))
		}
	}
	got := ScoreCandidates(tab, all, 0.3)
	want := Join(tab, Options{Threshold: 0.3})
	if len(got) != len(want) {
		t.Fatalf("ScoreCandidates found %d pairs; Join found %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestScoreCandidatesCanonicalizes(t *testing.T) {
	tab := paperTable()
	got := ScoreCandidates(tab, []record.Pair{{A: 1, B: 0}}, 0)
	if len(got) != 1 || got[0].Pair != record.MakePair(0, 1) {
		t.Fatalf("ScoreCandidates = %v; want canonical (0,1)", got)
	}
}
