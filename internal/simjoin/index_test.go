package simjoin

import (
	"testing"

	"github.com/crowder/crowder/internal/record"
)

// indexTable builds a table with duplicates, near-duplicates, unrelated
// records and token-less records — the shapes that exercise the prefix
// filter, the length filter and the empty-set convention.
func indexTable() *record.Table {
	t := record.NewTable("name", "price")
	t.Append("iPad Two 16GB WiFi White", "$490")
	t.Append("iPad 2nd generation 16GB WiFi White", "$469")
	t.Append("iPhone 4th generation White 16GB", "$545")
	t.Append("Apple iPhone 4 16GB White", "$520")
	t.Append("", "")
	t.Append("Apple iPad2 16GB WiFi White", "$499")
	t.Append("Samsung Galaxy Tab 101 Wifi 16GB", "$480")
	t.Append("", "")
	t.Append("Apple iPod shuffle 2GB Blue", "$49")
	t.Append("iPad Two 16GB WiFi White", "$490")
	return t
}

func assertSamePairs(t *testing.T, label string, want, got []ScoredPair) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs vs %d (got %v, want %v)", label, len(got), len(want), got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d differs: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// The union of incremental Update results must equal the batch join of
// the final table, for any batch split, threshold and parallelism.
func TestIndexIncrementalEquivalentToBatch(t *testing.T) {
	full := indexTable()
	n := full.Len()
	for _, tau := range []float64{0, 0.3, 0.5, 0.8, 1.0} {
		for _, par := range []int{1, 3} {
			for _, split := range [][]int{{n}, {1, n - 1}, {4, 2, n - 6}, {2, 0, 3, n - 5}} {
				opts := Options{Threshold: tau, Parallelism: par}
				want := BruteForce(full, opts)

				inc := record.NewTable("name", "price")
				ix := NewIndex(inc, opts)
				var got []ScoredPair
				next := 0
				for _, size := range split {
					for k := 0; k < size; k++ {
						inc.Append(full.Records[next].Values...)
						next++
					}
					got = append(got, ix.Update()...)
				}
				SortScored(got)
				assertSamePairs(t, "incremental union", want, got)
				if ix.Indexed() != n {
					t.Fatalf("Indexed = %d; want %d", ix.Indexed(), n)
				}
			}
		}
	}
}

// Update must only emit pairs involving new records — never re-emit a
// pair between two already-indexed records.
func TestIndexUpdateEmitsOnlyDeltaPairs(t *testing.T) {
	full := indexTable()
	inc := record.NewTable("name", "price")
	ix := NewIndex(inc, Options{Threshold: 0.3})
	seen := record.NewPairSet()
	for i := 0; i < full.Len(); i++ {
		inc.Append(full.Records[i].Values...)
		for _, sp := range ix.Update() {
			if int(sp.Pair.B) != i {
				t.Fatalf("delta after record %d emitted pair %v with no new endpoint", i, sp.Pair)
			}
			if seen.Has(sp.Pair.A, sp.Pair.B) {
				t.Fatalf("pair %v emitted twice", sp.Pair)
			}
			seen.Add(sp.Pair.A, sp.Pair.B)
		}
	}
	if ix.Update() != nil {
		t.Error("Update with no new records should return nil")
	}
}

// Cross-source restriction applies to delta probes too.
func TestIndexCrossSourceOnly(t *testing.T) {
	tab := record.NewTable("name")
	ix := NewIndex(tab, Options{Threshold: 0.2, CrossSourceOnly: true})
	tab.AppendFrom(0, "apple ipod touch 8gb")
	tab.AppendFrom(0, "apple ipod touch 8gb black")
	if got := ix.Update(); len(got) != 0 {
		t.Fatalf("same-source pairs leaked: %v", got)
	}
	tab.AppendFrom(1, "apple ipod touch 8gb 2nd gen")
	got := ix.Update()
	want := BruteForce(tab, Options{Threshold: 0.2, CrossSourceOnly: true})
	assertSamePairs(t, "cross-source delta", want, got)
}

// Join must remain exactly the one-shot Index, including after the
// refactor onto the shared implementation.
func TestJoinMatchesOneShotIndex(t *testing.T) {
	tab := indexTable()
	for _, tau := range []float64{0, 0.4, 0.8} {
		opts := Options{Threshold: tau}
		assertSamePairs(t, "join vs index", NewIndex(tab, opts).Update(), Join(tab, opts))
	}
}
