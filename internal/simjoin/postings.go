package simjoin

import "encoding/binary"

// Block-compressed posting lists.
//
// The join index stores, per prefix token, the ascending list of record
// IDs whose prefix contains the token. The original representation was a
// flat []int32 per token: four bytes per entry plus append-doubling
// slack, which is what capped table sizes in RAM. A PostingList instead
// delta-encodes the IDs as uvarints in fixed-size blocks of
// PostingBlockSize entries. Record IDs arrive in strictly ascending
// order (the index inserts records as they are appended), so deltas are
// small positive integers and typically occupy one byte in dense lists —
// a 3–4× footprint reduction before accounting for slice slack.
//
// Each block boundary carries the largest ID of the finished block (its
// skip pointer) and the byte offset where the next block's deltas start.
// The first block needs neither (offset 0, and a single-block list's max
// is the list's last ID), so a list only pays metadata from its second
// block on — prefix postings are frequently short, and a short list is
// just its delta bytes. Skip pointers serve two access patterns:
//
//   - Bounded scans (ForEachLess): the probe phase enumerates entries
//     strictly below the probing record's ID; blocks whose first
//     possible entry is already at or past the bound are never decoded.
//   - Galloping seeks (Cursor.SeekGE, IntersectPostings): an
//     exponential probe over block skip pointers followed by a binary
//     search brackets the target block in O(log distance), then a short
//     scan inside the decoded block lands on the entry — the standard
//     galloping intersection primitive.
const (
	postingBlockShift = 7
	// PostingBlockSize is the number of IDs per compressed block.
	PostingBlockSize = 1 << postingBlockShift
	postingBlockMask = PostingBlockSize - 1
)

// postingBlock is the boundary metadata between block i and block i+1:
// the byte offset of block i+1's first delta and the largest ID of
// block i (block i's skip pointer, equivalently block i+1's delta base).
type postingBlock struct {
	off uint32
	max int32
}

// PostingList is an append-only block-compressed list of strictly
// ascending int32 IDs. The zero value is an empty list.
type PostingList struct {
	data []byte
	// meta[i] is the boundary between block i and block i+1; a list of
	// ≤ PostingBlockSize entries has none.
	meta []postingBlock
	last int32
	n    int
}

// Len returns the number of IDs in the list.
func (p *PostingList) Len() int { return p.n }

// Max returns the largest (last) ID, or -1 for an empty list.
func (p *PostingList) Max() int32 {
	if p.n == 0 {
		return -1
	}
	return p.last
}

// SizeBytes returns the list's compressed footprint: encoded deltas plus
// block metadata. The equivalent flat []int32 footprint is 4·Len.
func (p *PostingList) SizeBytes() int {
	return len(p.data) + len(p.meta)*8
}

// numBlocks returns the number of (possibly partial) blocks.
func (p *PostingList) numBlocks() int {
	return (p.n + postingBlockMask) >> postingBlockShift
}

// Append adds an ID, which must be strictly greater than every ID
// already in the list.
func (p *PostingList) Append(id int32) {
	prev := p.last
	if p.n == 0 {
		prev = -1
	} else if id <= prev {
		panic("simjoin: posting IDs must be strictly ascending")
	}
	if p.n > 0 && p.n&postingBlockMask == 0 {
		// Crossing into a new block: record the finished block's boundary.
		p.meta = append(p.meta, postingBlock{off: uint32(len(p.data)), max: prev})
	}
	p.data = binary.AppendUvarint(p.data, uint64(id-prev))
	p.last = id
	p.n++
}

// blockOff returns the byte offset of block b's first delta.
func (p *PostingList) blockOff(b int) uint32 {
	if b == 0 {
		return 0
	}
	return p.meta[b-1].off
}

// blockBase returns the ID every delta in block b accumulates from: the
// previous block's max, or -1 for the first block.
func (p *PostingList) blockBase(b int) int32 {
	if b == 0 {
		return -1
	}
	return p.meta[b-1].max
}

// blockMax returns the largest ID in block b (its skip pointer).
func (p *PostingList) blockMax(b int) int32 {
	if b == p.numBlocks()-1 {
		return p.last
	}
	return p.meta[b].max
}

// blockLen returns the number of entries stored in block b.
func (p *PostingList) blockLen(b int) int {
	cnt := p.n - b<<postingBlockShift
	if cnt > PostingBlockSize {
		cnt = PostingBlockSize
	}
	return cnt
}

// decodeBlock decodes block b into buf and returns the entry count.
func (p *PostingList) decodeBlock(b int, buf *[PostingBlockSize]int32) int {
	cnt := p.blockLen(b)
	acc := p.blockBase(b)
	data := p.data[p.blockOff(b):]
	for k := 0; k < cnt; k++ {
		// Inline uvarint decode: deltas are almost always one byte.
		d := uint32(data[0])
		if d < 0x80 {
			data = data[1:]
		} else {
			v, w := binary.Uvarint(data)
			d = uint32(v)
			data = data[w:]
		}
		acc += int32(d)
		buf[k] = acc
	}
	return cnt
}

// ForEachLess calls fn for every ID strictly below bound, in ascending
// order, stopping early if fn returns false. Blocks that cannot contain
// an entry below the bound are skipped without decoding.
func (p *PostingList) ForEachLess(bound int32, fn func(int32) bool) {
	var buf [PostingBlockSize]int32
	p.forEachLess(bound, &buf, fn)
}

// forEachLess is ForEachLess with a caller-supplied decode buffer, so
// the probe hot loop can reuse one buffer across every posting list it
// scans.
func (p *PostingList) forEachLess(bound int32, buf *[PostingBlockSize]int32, fn func(int32) bool) {
	nb := p.numBlocks()
	for b := 0; b < nb; b++ {
		// Entries of block b are strictly greater than the previous
		// block's max: once that reaches the bound, nothing below it can
		// follow (skip-pointer early termination).
		if base := p.blockBase(b); base+1 >= bound {
			return
		}
		cnt := p.decodeBlock(b, buf)
		for k := 0; k < cnt; k++ {
			id := buf[k]
			if id >= bound {
				return
			}
			if !fn(id) {
				return
			}
		}
	}
}

// Cursor returns a forward iterator positioned before the first ID.
func (p *PostingList) Cursor() PostingCursor {
	return PostingCursor{pl: p, b: -1}
}

// PostingCursor iterates a PostingList in ascending order with
// galloping skip support. Obtain one with Cursor; the zero value is not
// valid. A cursor decodes one block at a time into an internal buffer,
// so iteration allocates nothing.
type PostingCursor struct {
	pl  *PostingList
	b   int // decoded block index; -1 before the first Next/SeekGE
	cnt int // entries decoded in buf
	k   int // next undelivered index in buf
	buf [PostingBlockSize]int32
}

// load decodes block b into the cursor, returning false past the end.
func (c *PostingCursor) load(b int) bool {
	if b >= c.pl.numBlocks() {
		c.b = c.pl.numBlocks()
		c.cnt, c.k = 0, 0
		return false
	}
	c.b = b
	c.cnt = c.pl.decodeBlock(b, &c.buf)
	c.k = 0
	return true
}

// Next returns the next ID in ascending order.
func (c *PostingCursor) Next() (int32, bool) {
	if c.k >= c.cnt {
		if !c.load(c.b + 1) {
			return 0, false
		}
	}
	v := c.buf[c.k]
	c.k++
	return v, true
}

// SeekGE advances past every ID below target and returns the first ID
// at or above it, consuming it like Next. Skipped blocks are located by
// galloping over the block skip pointers — exponential probe then
// binary search — and are never decoded.
func (c *PostingCursor) SeekGE(target int32) (int32, bool) {
	pl := c.pl
	nb := pl.numBlocks()
	// Within the already-decoded block: a short forward scan.
	if c.b >= 0 && c.b < nb && pl.blockMax(c.b) >= target {
		for c.k < c.cnt && c.buf[c.k] < target {
			c.k++
		}
		if c.k < c.cnt {
			v := c.buf[c.k]
			c.k++
			return v, true
		}
		// cnt exhausted with blockMax ≥ target means every in-block entry
		// was already consumed; the next block holds the target.
		return c.Next()
	}
	// Gallop: double the step until a block's skip pointer reaches the
	// target, then binary-search the bracketed range.
	lo := c.b + 1
	if lo >= nb {
		return 0, false
	}
	if pl.last < target {
		c.load(nb)
		return 0, false
	}
	step := 1
	hi := lo
	for hi < nb && pl.blockMax(hi) < target {
		lo = hi + 1
		hi += step
		step <<= 1
	}
	if hi > nb-1 {
		hi = nb - 1
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pl.blockMax(mid) < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if !c.load(lo) {
		return 0, false
	}
	for c.k < c.cnt && c.buf[c.k] < target {
		c.k++
	}
	v := c.buf[c.k]
	c.k++
	return v, true
}

// IntersectPostings streams the IDs present in both lists to yield in
// ascending order, stopping early if yield returns false. It leapfrogs:
// each side galloping-seeks to the other's current ID, so the cost is
// O(min·log(max/min)) block probes rather than a full merge — the
// skip-pointer intersection the compressed layout exists for.
func IntersectPostings(a, b *PostingList, yield func(int32) bool) {
	if a.Len() == 0 || b.Len() == 0 {
		return
	}
	ca, cb := a.Cursor(), b.Cursor()
	x, okx := ca.Next()
	y, oky := cb.Next()
	for okx && oky {
		switch {
		case x == y:
			if !yield(x) {
				return
			}
			x, okx = ca.Next()
			y, oky = cb.Next()
		case x < y:
			x, okx = ca.SeekGE(y)
		default:
			y, oky = cb.SeekGE(x)
		}
	}
}
