// Package simjoin implements the machine pass of CrowdER's hybrid
// workflow: computing a likelihood (Jaccard similarity over record token
// sets) for every candidate pair and retaining pairs at or above a
// threshold (Section 7.1's "simjoin").
//
// Rather than comparing all O(n²) pairs, Join uses prefix filtering with an
// inverted index plus a length filter — the indexing the paper's footnote 1
// alludes to ("we can adopt some indexing techniques ... to avoid all-pairs
// comparison"). The implementation runs over the table's interned token IDs
// (record.Table.TokenIDs): the inverted index maps dense token IDs to
// block-compressed posting lists (PostingList: delta-encoded IDs with
// per-block skip pointers), similarities are merges — galloping when the
// set sizes are skewed — over sorted []int32, and the probe phase is
// sharded across Options.Parallelism workers. The Index type is the
// persistent, incrementally maintained form of the same join: new records
// probe the postings built by earlier batches and then insert themselves,
// so a delta of d records costs O(d·candidates) instead of a full
// re-join. Candidates stream out of Index.UpdateSeq one at a time, so a
// consumer ranking with a bounded top-K heap never materializes the full
// candidate set; Index.Update and the one-shot Join are the materializing
// wrappers, canonically sorted and bit-identical at every parallelism
// level. BruteForce provides the reference all-pairs
// implementation used for testing equivalence and for self-joins of tiny
// tables; LegacyJoin preserves the original single-threaded map-of-strings
// implementation as a benchmark baseline and differential-testing oracle.
package simjoin

import (
	"cmp"
	"math"
	"slices"

	"github.com/crowder/crowder/internal/engine"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/similarity"
)

// ScoredPair is a candidate pair with its machine likelihood.
type ScoredPair struct {
	Pair       record.Pair
	Likelihood float64
}

// CompareScored is the canonical total order over scored pairs:
// likelihood descending, then pair A ascending, then B ascending. It is
// the comparator behind SortScored and the one streaming consumers (the
// resolver's top-K ranking heap) use, which is what makes a ranked
// collection of the unordered UpdateSeq stream deterministic.
func CompareScored(a, b ScoredPair) int {
	if c := cmp.Compare(b.Likelihood, a.Likelihood); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Pair.A, b.Pair.A); c != 0 {
		return c
	}
	return cmp.Compare(a.Pair.B, b.Pair.B)
}

// SortScored orders pairs by CompareScored in place: likelihood
// descending, tie-breaking on the canonical pair order. The workflow's
// ranked output and the precision-recall evaluation both rely on this
// ordering.
func SortScored(ps []ScoredPair) {
	slices.SortFunc(ps, CompareScored)
}

// Options configures a join.
type Options struct {
	// Threshold is the minimum Jaccard likelihood to retain (inclusive).
	Threshold float64
	// CrossSourceOnly restricts the join to pairs whose records come from
	// different sources (Table.Source), matching the Product dataset where
	// only abt×buy pairs are candidates (1081 × 1092 pairs, Section 7.1).
	CrossSourceOnly bool
	// Parallelism is the number of worker goroutines the probe phase is
	// sharded across. 0 (the default) means GOMAXPROCS. The output is
	// bit-identical at every parallelism level: workers partition the
	// probing records, and the merged result is canonically sorted.
	Parallelism int
}

func (o Options) workers(n int) int {
	return engine.WorkerCount(o.Parallelism, n)
}

func (o Options) crossOK(t *record.Table, a, b record.ID) bool {
	return t.CrossOK(o.CrossSourceOnly, a, b)
}

// Join returns all pairs of distinct records in t whose Jaccard likelihood
// is at least opts.Threshold, sorted by likelihood descending. It uses
// prefix filtering: tokens are ordered by ascending global frequency, each
// record indexes only its first len−⌈τ·len⌉+1 tokens, and candidates are
// generated from index collisions, then confirmed with a length filter and
// an exact merge-intersection. Records with empty token sets pair with each
// other at likelihood 1 (the empty-set convention), keeping Join ≡
// BruteForce on every input. With τ = 0 the prefix degenerates to every
// token, so Join switches to a sharded all-pairs scan instead.
//
// Join is the one-shot form of the incremental Index: it builds a fresh
// Index over the table and absorbs every record in a single Update, so the
// batch and delta paths share one implementation.
func Join(t *record.Table, opts Options) []ScoredPair {
	if t.Len() == 0 {
		return nil
	}
	return NewIndex(t, opts).Update()
}

// prefixLen returns the number of tokens a record of the given size must
// index so that any pair with Jaccard ≥ tau shares an indexed token:
// len − ⌈τ·len⌉ + 1 (standard prefix-filtering bound). The ceiling is
// biased downward by an epsilon so floating-point noise can only lengthen
// the prefix, never shorten it: the seed computed ⌊(1−τ)·len⌋ + 1
// directly, and e.g. 5·(1−0.8) evaluates to 0.99999…, truncating the
// prefix one short and silently dropping pairs at exactly the threshold.
// Unsatisfiable thresholds (τ > 1) yield 0: nothing needs indexing
// because nothing can match.
func prefixLen(length int, tau float64) int {
	if length == 0 {
		return 0
	}
	if tau <= 0 {
		return length
	}
	ceil := int(math.Ceil(tau*float64(length) - 1e-9))
	if ceil < 0 {
		ceil = 0
	}
	p := length - ceil + 1
	if p > length {
		p = length
	}
	if p < 0 {
		p = 0
	}
	return p
}

// passesLengthFilter reports whether a pair with token-set sizes la, lb
// can reach Jaccard ≥ tau: τ·|x| ≤ |y| ≤ |x|/τ. The epsilon keeps
// floating-point noise in τ·hi from pruning pairs at exactly the bound.
func passesLengthFilter(la, lb int, tau float64) bool {
	if tau <= 0 {
		return true
	}
	lo, hi := la, lb
	if lo > hi {
		lo, hi = hi, lo
	}
	return float64(lo)+1e-9 >= tau*float64(hi)
}

// ScoreCandidates computes the Jaccard likelihood of each candidate pair
// (e.g. from a blocking scheme) and keeps those at or above the threshold,
// sorted by likelihood descending. Combined with a complete blocking
// scheme this is equivalent to Join on tables where every record has at
// least one token (blocking can never propose the token-less pairs that
// Join scores at likelihood 1 under the empty-set convention); with a
// lossy scheme (capped blocks, sorted neighborhood) it trades a little
// recall for scale.
func ScoreCandidates(t *record.Table, candidates []record.Pair, threshold float64) []ScoredPair {
	ids := t.TokenIDs()
	var out []ScoredPair
	for _, p := range candidates {
		cp := record.MakePair(p.A, p.B)
		sim := similarity.Jaccard(ids[cp.A], ids[cp.B])
		if sim >= threshold {
			out = append(out, ScoredPair{Pair: cp, Likelihood: sim})
		}
	}
	SortScored(out)
	return out
}

// BruteForce computes the join by comparing every pair of records,
// respecting the same options. It is the testing oracle for Join and is
// also convenient for tiny tables. It is deliberately sequential and
// straightforward — its value is being obviously correct.
func BruteForce(t *record.Table, opts Options) []ScoredPair {
	ids := t.TokenIDs()
	n := t.Len()
	var out []ScoredPair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !opts.crossOK(t, record.ID(i), record.ID(j)) {
				continue
			}
			sim := similarity.Jaccard(ids[i], ids[j])
			if sim >= opts.Threshold {
				out = append(out, ScoredPair{
					Pair:       record.Pair{A: record.ID(i), B: record.ID(j)},
					Likelihood: sim,
				})
			}
		}
	}
	SortScored(out)
	return out
}

// Pairs extracts just the pairs from a scored slice, preserving order.
func Pairs(sp []ScoredPair) []record.Pair {
	out := make([]record.Pair, len(sp))
	for i, s := range sp {
		out[i] = s.Pair
	}
	return out
}

// FilterThreshold returns the scored pairs with likelihood ≥ tau,
// preserving order. Useful for sweeping thresholds over a single
// low-threshold join result (Table 2's sweep reuses one join at the
// lowest threshold).
func FilterThreshold(sp []ScoredPair, tau float64) []ScoredPair {
	var out []ScoredPair
	for _, s := range sp {
		if s.Likelihood >= tau {
			out = append(out, s)
		}
	}
	return out
}
