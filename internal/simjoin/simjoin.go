// Package simjoin implements the machine pass of CrowdER's hybrid
// workflow: computing a likelihood (Jaccard similarity over record token
// sets) for every candidate pair and retaining pairs at or above a
// threshold (Section 7.1's "simjoin").
//
// Rather than comparing all O(n²) pairs, Join uses prefix filtering with an
// inverted index plus a length filter — the indexing the paper's footnote 1
// alludes to ("we can adopt some indexing techniques ... to avoid all-pairs
// comparison"). BruteForce provides the reference all-pairs implementation
// used for testing equivalence and for self-joins of tiny tables.
package simjoin

import (
	"sort"

	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/similarity"
)

// ScoredPair is a candidate pair with its machine likelihood.
type ScoredPair struct {
	Pair       record.Pair
	Likelihood float64
}

// SortScored orders pairs by likelihood descending, tie-breaking on the
// canonical pair order, in place. The workflow's ranked output and the
// precision-recall evaluation both rely on this ordering.
func SortScored(ps []ScoredPair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Likelihood != ps[j].Likelihood {
			return ps[i].Likelihood > ps[j].Likelihood
		}
		if ps[i].Pair.A != ps[j].Pair.A {
			return ps[i].Pair.A < ps[j].Pair.A
		}
		return ps[i].Pair.B < ps[j].Pair.B
	})
}

// Options configures a join.
type Options struct {
	// Threshold is the minimum Jaccard likelihood to retain (inclusive).
	Threshold float64
	// CrossSourceOnly restricts the join to pairs whose records come from
	// different sources (Table.Source), matching the Product dataset where
	// only abt×buy pairs are candidates (1081 × 1092 pairs, Section 7.1).
	CrossSourceOnly bool
}

// Join returns all pairs of distinct records in t whose Jaccard likelihood
// is at least opts.Threshold, sorted by likelihood descending. It uses
// prefix filtering: tokens are ordered by ascending global frequency, each
// record indexes only its first ⌊(1−τ)·|x|⌋+1 tokens, and candidates are
// generated from index collisions. With τ = 0 this degenerates to indexing
// every token, which still only compares records sharing at least one
// token; pairs of records with disjoint token sets (Jaccard 0) are then
// added in a final sweep only if the threshold is exactly 0.
func Join(t *record.Table, opts Options) []ScoredPair {
	tokens := record.TableTokens(t)
	n := t.Len()

	// Global token frequencies for the prefix ordering: rare tokens first
	// minimizes index collisions.
	freq := make(map[string]int)
	for _, ts := range tokens {
		for tok := range ts {
			freq[tok]++
		}
	}
	sorted := make([][]string, n)
	for i, ts := range tokens {
		s := ts.Sorted()
		sort.SliceStable(s, func(a, b int) bool {
			fa, fb := freq[s[a]], freq[s[b]]
			if fa != fb {
				return fa < fb
			}
			return s[a] < s[b]
		})
		sorted[i] = s
	}

	tau := opts.Threshold
	// Inverted index: token → record IDs that indexed it.
	index := make(map[string][]record.ID)
	seen := make(record.PairSet)
	var out []ScoredPair

	crossOK := func(a, b record.ID) bool {
		if !opts.CrossSourceOnly || len(t.Source) == 0 {
			return true
		}
		return t.Source[a] != t.Source[b]
	}

	for i := 0; i < n; i++ {
		toks := sorted[i]
		plen := prefixLen(len(toks), tau)
		for p := 0; p < plen && p < len(toks); p++ {
			for _, j := range index[toks[p]] {
				pr := record.MakePair(record.ID(i), j)
				if _, dup := seen[pr]; dup {
					continue
				}
				seen[pr] = struct{}{}
				if !crossOK(pr.A, pr.B) {
					continue
				}
				// Length filter: Jaccard ≥ τ requires τ·|x| ≤ |y| ≤ |x|/τ.
				la, lb := len(tokens[pr.A]), len(tokens[pr.B])
				if tau > 0 {
					lo, hi := la, lb
					if lo > hi {
						lo, hi = hi, lo
					}
					if float64(lo) < tau*float64(hi) {
						continue
					}
				}
				sim := similarity.Jaccard(tokens[pr.A], tokens[pr.B])
				if sim >= tau {
					out = append(out, ScoredPair{Pair: pr, Likelihood: sim})
				}
			}
			index[toks[p]] = append(index[toks[p]], record.ID(i))
		}
	}

	if tau == 0 {
		// Threshold 0 means "all pairs" (Table 2's last row); token-disjoint
		// pairs have likelihood 0 and were never candidates above.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				pr := record.Pair{A: record.ID(i), B: record.ID(j)}
				if _, dup := seen[pr]; dup {
					continue
				}
				if !crossOK(pr.A, pr.B) {
					continue
				}
				out = append(out, ScoredPair{Pair: pr, Likelihood: similarity.Jaccard(tokens[i], tokens[j])})
			}
		}
	}

	SortScored(out)
	return out
}

// prefixLen returns the number of tokens a record of the given size must
// index so that any pair with Jaccard ≥ tau shares an indexed token:
// ⌊(1−τ)·len⌋ + 1 (standard prefix-filtering bound).
func prefixLen(length int, tau float64) int {
	if length == 0 {
		return 0
	}
	p := int(float64(length)*(1-tau)) + 1
	if p > length {
		p = length
	}
	return p
}

// ScoreCandidates computes the Jaccard likelihood of each candidate pair
// (e.g. from a blocking scheme) and keeps those at or above the threshold,
// sorted by likelihood descending. Combined with a complete blocking
// scheme this is equivalent to Join; with a lossy scheme (capped blocks,
// sorted neighborhood) it trades a little recall for scale.
func ScoreCandidates(t *record.Table, candidates []record.Pair, threshold float64) []ScoredPair {
	tokens := record.TableTokens(t)
	var out []ScoredPair
	for _, p := range candidates {
		cp := record.MakePair(p.A, p.B)
		sim := similarity.Jaccard(tokens[cp.A], tokens[cp.B])
		if sim >= threshold {
			out = append(out, ScoredPair{Pair: cp, Likelihood: sim})
		}
	}
	SortScored(out)
	return out
}

// BruteForce computes the join by comparing every pair of records,
// respecting the same options. It is the testing oracle for Join and is
// also convenient for tiny tables.
func BruteForce(t *record.Table, opts Options) []ScoredPair {
	tokens := record.TableTokens(t)
	n := t.Len()
	var out []ScoredPair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if opts.CrossSourceOnly && len(t.Source) > 0 && t.Source[i] == t.Source[j] {
				continue
			}
			sim := similarity.Jaccard(tokens[i], tokens[j])
			if sim >= opts.Threshold {
				out = append(out, ScoredPair{
					Pair:       record.Pair{A: record.ID(i), B: record.ID(j)},
					Likelihood: sim,
				})
			}
		}
	}
	SortScored(out)
	return out
}

// Pairs extracts just the pairs from a scored slice, preserving order.
func Pairs(sp []ScoredPair) []record.Pair {
	out := make([]record.Pair, len(sp))
	for i, s := range sp {
		out[i] = s.Pair
	}
	return out
}

// FilterThreshold returns the scored pairs with likelihood ≥ tau,
// preserving order. Useful for sweeping thresholds over a single
// low-threshold join result (Table 2's sweep reuses one join at the
// lowest threshold).
func FilterThreshold(sp []ScoredPair, tau float64) []ScoredPair {
	var out []ScoredPair
	for _, s := range sp {
		if s.Likelihood >= tau {
			out = append(out, s)
		}
	}
	return out
}
