package simjoin

import (
	"cmp"
	"slices"
)

// Absorb indexes table records [Indexed(), upto) without probing or
// emitting candidates: it is update() minus the scan — the same frozen
// weight assignment, the same prefixes, the same postings — so a
// recovered session that replays its logged absorb boundaries in order
// rebuilds an index bit-identical to the crashed one. Frozen weights
// are per-delta frequencies, which is why recovery must replay the
// *original* boundaries rather than absorbing the whole table at once.
func (ix *Index) Absorb(upto int) {
	t := ix.t
	n := upto
	if m := t.Len(); n > m {
		n = m
	}
	lo := ix.n
	if n <= lo {
		return
	}
	ix.n = n
	ids := t.TokenIDs()
	tau := ix.opts.Threshold
	if tau <= 0 {
		// deltaAllPairs keeps no per-token state; the cursor is the index.
		return
	}

	universe := t.TokenUniverse()
	for len(ix.weight) < universe {
		ix.weight = append(ix.weight, -1)
	}
	for len(ix.postings) < universe {
		ix.postings = append(ix.postings, PostingList{})
	}
	fresh := make(map[int32]int32)
	for i := lo; i < n; i++ {
		for _, tok := range ids[i] {
			if ix.weight[tok] < 0 {
				fresh[tok]++
			}
		}
	}
	for tok, f := range fresh {
		ix.weight[tok] = f
	}

	arena := ix.prefArena[:0]
	offs := append(ix.prefOffs[:0], 0)
	for i := lo; i < n; i++ {
		base := len(arena)
		arena = append(arena, ids[i]...)
		p := arena[base:]
		slices.SortFunc(p, func(a, b int32) int {
			if c := cmp.Compare(ix.weight[a], ix.weight[b]); c != 0 {
				return c
			}
			return cmp.Compare(a, b)
		})
		arena = arena[:base+prefixLen(len(p), tau)]
		offs = append(offs, int32(len(arena)))
		for _, tok := range arena[base:] {
			ix.postings[tok].Append(int32(i))
		}
	}
	ix.prefArena, ix.prefOffs = arena, offs

	if tau <= 1 {
		for i := lo; i < n; i++ {
			if len(ids[i]) == 0 {
				ix.empties = append(ix.empties, int32(i))
			}
		}
	}
}

// Absorb is the sharded replay twin of Index.Absorb: UpdateScatter minus
// the probes. Shard ownership, frozen weights, per-shard posting-slot
// assignment and member order all replicate the live path exactly.
func (sx *Sharded) Absorb(upto int) {
	t := sx.t
	n := upto
	if m := t.Len(); n > m {
		n = m
	}
	lo := sx.n
	if n <= lo {
		return
	}
	sx.n = n
	ids := t.TokenIDs()
	tau := sx.opts.Threshold
	ns := len(sx.shards)

	owner := make([]int32, n-lo)
	for i := lo; i < n; i++ {
		owner[i-lo] = int32(ShardOfTokens(ids[i], ns))
	}

	if tau <= 0 {
		sx.scanShards(func(s int) {
			sh := &sx.shards[s]
			for i := lo; i < n; i++ {
				if owner[i-lo] == int32(s) {
					sh.members = append(sh.members, int32(i))
				}
			}
		})
		return
	}

	universe := t.TokenUniverse()
	for len(sx.weight) < universe {
		sx.weight = append(sx.weight, -1)
	}
	fresh := make(map[int32]int32)
	for i := lo; i < n; i++ {
		for _, tok := range ids[i] {
			if sx.weight[tok] < 0 {
				fresh[tok]++
			}
		}
	}
	for tok, f := range fresh {
		sx.weight[tok] = f
	}

	arena := sx.prefArena[:0]
	offs := append(sx.prefOffs[:0], 0)
	for i := lo; i < n; i++ {
		base := len(arena)
		arena = append(arena, ids[i]...)
		p := arena[base:]
		slices.SortFunc(p, func(a, b int32) int {
			if c := cmp.Compare(sx.weight[a], sx.weight[b]); c != 0 {
				return c
			}
			return cmp.Compare(a, b)
		})
		arena = arena[:base+prefixLen(len(p), tau)]
		offs = append(offs, int32(len(arena)))
	}
	sx.prefArena, sx.prefOffs = arena, offs
	pref := func(i int) []int32 { return arena[offs[i-lo]:offs[i-lo+1]] }

	sx.scanShards(func(s int) {
		sh := &sx.shards[s]
		for i := lo; i < n; i++ {
			if owner[i-lo] != int32(s) {
				continue
			}
			sh.members = append(sh.members, int32(i))
			for _, tok := range pref(i) {
				slot, ok := sh.tokIdx[tok]
				if !ok {
					slot = int32(len(sh.postings))
					sh.tokIdx[tok] = slot
					sh.postings = append(sh.postings, PostingList{})
				}
				sh.postings[slot].Append(int32(i))
			}
		}
	})

	if tau <= 1 {
		for i := lo; i < n; i++ {
			if len(ids[i]) == 0 {
				sx.empties = append(sx.empties, int32(i))
			}
		}
	}
}
