package simjoin

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/crowder/crowder/internal/record"
)

// FuzzIndexDeltaEquivalence fuzzes the incremental join index's core
// invariant: for any table, threshold and batch split, the union of
// Update() deltas equals the one-shot batch Join of the final table —
// every qualifying pair exactly once, with the same likelihood. It also
// pins the streaming path to the materialized one: a second index driven
// through UpdateSeq (at a parallelism level derived from the fuzz input)
// must, once drained and canonically ranked, be bit-identical to the
// Update() deltas. A sharded index (shard count also derived from the
// fuzz input) driven through UpdateScatter over the same batches must
// scatter exactly the same multiset of pairs across its shards.
//
// The fuzz inputs drive a deterministic generator (random tables over a
// small token vocabulary, so collisions, empty records, duplicate rows
// and source tags all occur) rather than being parsed as table content
// directly: every byte pattern is a valid case, and shrinking stays
// meaningful. Run the stored corpus as part of the normal test suite, or
// explore with
//
//	go test -fuzz FuzzIndexDeltaEquivalence ./internal/simjoin
func FuzzIndexDeltaEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(20), uint8(50), uint8(7), false)
	f.Add(int64(2), uint8(3), uint8(0), uint8(1), false)    // threshold 0: the all-pairs path
	f.Add(int64(3), uint8(40), uint8(100), uint8(13), true) // threshold 1 + cross-source
	f.Add(int64(4), uint8(9), uint8(80), uint8(128), false)
	f.Add(int64(5), uint8(2), uint8(33), uint8(255), true)
	f.Fuzz(func(t *testing.T, seed int64, n, tauByte, splitByte uint8, cross bool) {
		rng := rand.New(rand.NewSource(seed))
		nRec := int(n%48) + 2
		tau := float64(tauByte%101) / 100

		// Random rows over a tiny vocabulary: high collision rates stress
		// the prefix index, and k = 0 produces empty token sets (the
		// likelihood-1 empty-set convention).
		vocab := []string{"alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta"}
		rows := make([]string, nRec)
		sources := make([]int, nRec)
		for i := range rows {
			k := rng.Intn(7)
			toks := make([]string, k)
			for j := range toks {
				toks[j] = vocab[rng.Intn(len(vocab))]
			}
			rows[i] = strings.Join(toks, " ")
			sources[i] = rng.Intn(2)
		}
		opts := Options{Threshold: tau, CrossSourceOnly: cross, Parallelism: 1}
		appendRow := func(tab *record.Table, i int) {
			if cross {
				tab.AppendFrom(sources[i], rows[i])
			} else {
				tab.Append(rows[i])
			}
		}

		// Batch: one-shot join of the full table.
		batchTab := record.NewTable("text")
		for i := range rows {
			appendRow(batchTab, i)
		}
		batch := Join(batchTab, opts)

		// Incremental: the same rows in three batches split at positions
		// derived from splitByte, each followed by an Update.
		s1 := int(splitByte) % (nRec + 1)
		s2 := s1 + int(splitByte/3)%(nRec-s1+1)
		deltaTab := record.NewTable("text")
		ix := NewIndex(deltaTab, opts)
		var union []ScoredPair
		for _, hi := range []int{s1, s2, nRec} {
			for i := deltaTab.Len(); i < hi; i++ {
				appendRow(deltaTab, i)
			}
			union = append(union, ix.Update()...)
		}

		// Streaming: same deltas through UpdateSeq, possibly parallel.
		streamOpts := opts
		streamOpts.Parallelism = 1 + int(tauByte%3)
		streamTab := record.NewTable("text")
		six := NewIndex(streamTab, streamOpts)
		var streamed []ScoredPair
		for _, hi := range []int{s1, s2, nRec} {
			for i := streamTab.Len(); i < hi; i++ {
				appendRow(streamTab, i)
			}
			for sp := range six.UpdateSeq() {
				streamed = append(streamed, sp)
			}
		}

		// Sharded: same deltas scattered across per-shard indexes. The
		// sink runs concurrently but serially per shard, so per-shard
		// accumulators indexed by the tag need no locks.
		shards := 1 + int(splitByte)%4
		shardTab := record.NewTable("text")
		shx := NewSharded(shardTab, shards, streamOpts)
		perShard := make([][]ScoredPair, shards)
		for _, hi := range []int{s1, s2, nRec} {
			for i := shardTab.Len(); i < hi; i++ {
				appendRow(shardTab, i)
			}
			shx.UpdateScatter(func(shard int, sp ScoredPair) bool {
				perShard[shard] = append(perShard[shard], sp)
				return true
			})
		}
		var scattered []ScoredPair
		for _, list := range perShard {
			scattered = append(scattered, list...)
		}

		SortScored(batch)
		SortScored(union)
		SortScored(streamed)
		SortScored(scattered)
		if len(scattered) != len(union) {
			t.Fatalf("sharded deltas have %d pairs, materialized deltas %d (n=%d tau=%v splits=%d,%d cross=%v shards=%d)",
				len(scattered), len(union), nRec, tau, s1, s2, cross, shards)
		}
		for i := range union {
			if scattered[i] != union[i] {
				t.Fatalf("sharded pair %d differs: %+v vs %+v (n=%d tau=%v splits=%d,%d cross=%v shards=%d)",
					i, scattered[i], union[i], nRec, tau, s1, s2, cross, shards)
			}
		}
		if len(streamed) != len(union) {
			t.Fatalf("streamed deltas have %d pairs, materialized deltas %d (n=%d tau=%v splits=%d,%d cross=%v par=%d)",
				len(streamed), len(union), nRec, tau, s1, s2, cross, streamOpts.Parallelism)
		}
		for i := range union {
			if streamed[i] != union[i] {
				t.Fatalf("streamed pair %d differs: %+v vs %+v (n=%d tau=%v splits=%d,%d cross=%v par=%d)",
					i, streamed[i], union[i], nRec, tau, s1, s2, cross, streamOpts.Parallelism)
			}
		}
		if len(batch) != len(union) {
			t.Fatalf("union of deltas has %d pairs, batch join %d (n=%d tau=%v splits=%d,%d cross=%v)",
				len(union), len(batch), nRec, tau, s1, s2, cross)
		}
		for i := range batch {
			if batch[i] != union[i] {
				t.Fatalf("pair %d differs: delta %+v vs batch %+v (n=%d tau=%v splits=%d,%d cross=%v)",
					i, union[i], batch[i], nRec, tau, s1, s2, cross)
			}
		}
	})
}
