package simjoin

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/crowder/crowder/internal/engine"
	"github.com/crowder/crowder/internal/record"
)

// randomStreamTable builds a table of nRec rows over a small vocabulary
// (high collision rates, occasional empty rows) with optional source tags.
func randomStreamTable(rng *rand.Rand, nRec int, cross bool) *record.Table {
	vocab := []string{"alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta", "iota", "kappa"}
	t := record.NewTable("text")
	for i := 0; i < nRec; i++ {
		k := rng.Intn(8)
		toks := make([]string, k)
		for j := range toks {
			toks[j] = vocab[rng.Intn(len(vocab))]
		}
		row := strings.Join(toks, " ")
		if cross {
			t.AppendFrom(rng.Intn(2), row)
		} else {
			t.Append(row)
		}
	}
	return t
}

// TestUpdateSeqDrainedEqualsUpdate is the streaming-equivalence property
// test: across random tables, thresholds, parallelism levels and batch
// splits, draining UpdateSeq and canonically ranking the stream equals
// the materialized Update output bit-for-bit — same pairs, same
// likelihoods, same order.
func TestUpdateSeqDrainedEqualsUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	taus := []float64{0, 0.01, 0.3, 0.5, 0.8, 1}
	for trial := 0; trial < 60; trial++ {
		nRec := 2 + rng.Intn(60)
		tau := taus[rng.Intn(len(taus))]
		cross := rng.Intn(2) == 0
		par := 1 + rng.Intn(4)
		split := rng.Intn(nRec + 1)
		opts := Options{Threshold: tau, CrossSourceOnly: cross, Parallelism: par}
		name := fmt.Sprintf("trial=%d n=%d tau=%v cross=%v par=%d split=%d", trial, nRec, tau, cross, par, split)

		src := randomStreamTable(rng, nRec, cross)
		copyInto := func(dst *record.Table, lo, hi int) {
			for i := lo; i < hi; i++ {
				if cross {
					dst.AppendFrom(src.Source[i], src.Records[i].Values...)
				} else {
					dst.Append(src.Records[i].Values...)
				}
			}
		}

		// Materialized path: Update per delta.
		tabA := record.NewTable("text")
		ixA := NewIndex(tabA, opts)
		var wantAll [][]ScoredPair
		for _, hi := range []int{split, nRec} {
			copyInto(tabA, tabA.Len(), hi)
			wantAll = append(wantAll, ixA.Update())
		}

		// Streaming path: drain UpdateSeq per delta, rank with the same
		// total order the resolver's heap uses.
		tabB := record.NewTable("text")
		ixB := NewIndex(tabB, opts)
		for di, hi := range []int{split, nRec} {
			copyInto(tabB, tabB.Len(), hi)
			var got []ScoredPair
			for sp := range ixB.UpdateSeq() {
				got = append(got, sp)
			}
			SortScored(got)
			want := wantAll[di]
			if len(got) != len(want) {
				t.Fatalf("%s delta %d: stream %d pairs, materialized %d", name, di, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s delta %d pair %d: stream %+v vs materialized %+v", name, di, i, got[i], want[i])
				}
			}
		}
	}
}

// TestUpdateSeqTopKEqualsTruncatedUpdate checks the bounded consumer: a
// top-K heap fed from the stream must produce exactly the first K entries
// of the materialized, canonically sorted output — at every parallelism
// level, despite the stream's nondeterministic emission order.
func TestUpdateSeqTopKEqualsTruncatedUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		nRec := 10 + rng.Intn(80)
		k := 1 + rng.Intn(20)
		par := 1 + rng.Intn(4)
		opts := Options{Threshold: 0.2, Parallelism: par}

		src := randomStreamTable(rng, nRec, false)
		tabA := record.NewTable("text")
		ixA := NewIndex(tabA, opts)
		for i := 0; i < nRec; i++ {
			tabA.Append(src.Records[i].Values...)
		}
		want := ixA.Update()
		if len(want) > k {
			want = want[:k]
		}

		tabB := record.NewTable("text")
		ixB := NewIndex(tabB, opts)
		for i := 0; i < nRec; i++ {
			tabB.Append(src.Records[i].Values...)
		}
		rank := engine.NewTopK(k, CompareScored)
		for sp := range ixB.UpdateSeq() {
			rank.Push(sp)
		}
		got := rank.Ranked()
		if len(got) != len(want) {
			t.Fatalf("trial %d k=%d par=%d: heap %d pairs, truncated sort %d", trial, k, par, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d k=%d par=%d pair %d: heap %+v vs truncated %+v", trial, k, par, i, got[i], want[i])
			}
		}
	}
}

// TestUpdateSeqEarlyBreak verifies that abandoning the stream mid-delta
// is safe (parallel workers are cancelled, no goroutine leak blocks the
// next call) and absorbs the delta: a subsequent Update sees no new
// records and returns nil.
func TestUpdateSeqEarlyBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, par := range []int{1, 4} {
		tab := randomStreamTable(rng, 60, false)
		ix := NewIndex(tab, Options{Threshold: 0.1, Parallelism: par})
		n := 0
		for range ix.UpdateSeq() {
			n++
			if n == 3 {
				break
			}
		}
		if n != 3 {
			t.Fatalf("par=%d: yielded %d pairs before break", par, n)
		}
		if got := ix.Update(); got != nil {
			t.Fatalf("par=%d: Update after abandoned stream returned %d pairs, want nil", par, len(got))
		}
		if ix.Indexed() != tab.Len() {
			t.Fatalf("par=%d: Indexed=%d want %d", par, ix.Indexed(), tab.Len())
		}
	}
}

// TestIndexScratchReuseAcrossUpdates drives many small deltas through one
// index and checks correctness end-to-end: pooled stamp arrays carry
// stale values from earlier deltas, which must never suppress or
// duplicate a candidate.
func TestIndexScratchReuseAcrossUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, par := range []int{1, 3} {
		src := randomStreamTable(rng, 90, false)
		opts := Options{Threshold: 0.4, Parallelism: par}

		batchTab := record.NewTable("text")
		for i := 0; i < src.Len(); i++ {
			batchTab.Append(src.Records[i].Values...)
		}
		want := Join(batchTab, opts)

		deltaTab := record.NewTable("text")
		ix := NewIndex(deltaTab, opts)
		var union []ScoredPair
		for lo := 0; lo < src.Len(); lo += 10 {
			for i := lo; i < lo+10 && i < src.Len(); i++ {
				deltaTab.Append(src.Records[i].Values...)
			}
			union = append(union, ix.Update()...)
		}
		SortScored(union)
		if len(union) != len(want) {
			t.Fatalf("par=%d: union %d pairs, batch %d", par, len(union), len(want))
		}
		for i := range want {
			if union[i] != want[i] {
				t.Fatalf("par=%d pair %d: %+v vs %+v", par, i, union[i], want[i])
			}
		}
	}
}
