package simjoin

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/crowder/crowder/internal/record"
)

// randomTable builds a table of n rows over a tiny vocabulary, with
// source tags when cross is set — the same generator shape the fuzz
// harness uses, so the sharded tests stress collisions and empties.
func randomShardTable(rng *rand.Rand, n int, cross bool) *record.Table {
	vocab := []string{"alpha", "beta", "gamma", "delta", "eps", "zeta", "eta", "theta"}
	tab := record.NewTable("text")
	for i := 0; i < n; i++ {
		k := rng.Intn(7)
		toks := make([]string, k)
		for j := range toks {
			toks[j] = vocab[rng.Intn(len(vocab))]
		}
		row := strings.Join(toks, " ")
		if cross {
			tab.AppendFrom(rng.Intn(2), row)
		} else {
			tab.Append(row)
		}
	}
	return tab
}

// drainScatter collects one UpdateScatter pass into per-shard slices and
// returns their canonically sorted union.
func drainScatter(sx *Sharded) []ScoredPair {
	perShard := make([][]ScoredPair, sx.NumShards())
	sx.UpdateScatter(func(s int, sp ScoredPair) bool {
		perShard[s] = append(perShard[s], sp)
		return true
	})
	var out []ScoredPair
	for _, l := range perShard {
		out = append(out, l...)
	}
	SortScored(out)
	return out
}

// TestShardedMatchesIndex pins the tentpole invariant: at every shard
// count, parallelism level, threshold and batch split, the union of the
// sharded scatter streams is bit-identical to the single-index join.
func TestShardedMatchesIndex(t *testing.T) {
	cases := []struct {
		tau   float64
		cross bool
	}{
		{0, false},   // all-pairs path
		{0.3, false}, // prefix-filtered
		{0.3, true},  // cross-source only
		{0.7, false}, // aggressive pruning
		{1.0, false}, // exact-set matches and the empty-set convention
		{1.5, false}, // above 1: empties no longer pair
	}
	for _, tc := range cases {
		for _, shards := range []int{1, 2, 4, 8} {
			for _, par := range []int{1, 3} {
				name := fmt.Sprintf("tau=%v/cross=%v/shards=%d/par=%d", tc.tau, tc.cross, shards, par)
				t.Run(name, func(t *testing.T) {
					rng := rand.New(rand.NewSource(7))
					src := randomShardTable(rng, 60, tc.cross)
					opts := Options{Threshold: tc.tau, CrossSourceOnly: tc.cross, Parallelism: 1}

					want := Join(src, opts)

					// Same rows through the sharded index in three deltas.
					tab := record.NewTable("text")
					sopts := opts
					sopts.Parallelism = par
					sx := NewSharded(tab, shards, sopts)
					var got []ScoredPair
					for _, hi := range []int{17, 40, src.Len()} {
						for i := tab.Len(); i < hi; i++ {
							if tc.cross {
								tab.AppendFrom(src.Source[i], src.Records[i].Values...)
							} else {
								tab.Append(src.Records[i].Values...)
							}
						}
						got = append(got, drainScatter(sx)...)
					}
					SortScored(got)
					if len(got) != len(want) {
						t.Fatalf("sharded join found %d pairs, single-index %d", len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("pair %d: sharded %+v, single-index %+v", i, got[i], want[i])
						}
					}
					if sx.Indexed() != src.Len() {
						t.Fatalf("Indexed() = %d after %d records", sx.Indexed(), src.Len())
					}
				})
			}
		}
	}
}

// TestShardedRankedMatchesSingleHeap pins UpdateRanked: per-shard heaps
// merged deterministically equal one heap over the single-index stream,
// including the truncation boundary.
func TestShardedRankedMatchesSingleHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randomShardTable(rng, 80, false)
	opts := Options{Threshold: 0.2, Parallelism: 2}

	full := Join(src, Options{Threshold: 0.2, Parallelism: 1})
	for _, k := range []int{1, 7, 50, len(full), len(full) + 10, 0} {
		for _, shards := range []int{1, 2, 4, 8} {
			tab := record.NewTable("text")
			for i := range src.Records {
				tab.Append(src.Records[i].Values...)
			}
			got := NewSharded(tab, shards, opts).UpdateRanked(k)
			want := full
			if k > 0 && len(want) > k {
				want = want[:k]
			}
			if len(got) != len(want) {
				t.Fatalf("k=%d shards=%d: ranked %d pairs, want %d", k, shards, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("k=%d shards=%d pair %d: got %+v want %+v", k, shards, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardOfTokensStability pins the shard key to record content: the
// same token set lands on the same shard regardless of table position or
// batching, and the key spreads a diverse population across shards.
func TestShardOfTokensStability(t *testing.T) {
	ids := []int32{3, 17, 255, 1024}
	for _, shards := range []int{1, 2, 4, 8, 16} {
		s1 := ShardOfTokens(ids, shards)
		s2 := ShardOfTokens(append([]int32(nil), ids...), shards)
		if s1 != s2 {
			t.Fatalf("same tokens, different shards: %d vs %d", s1, s2)
		}
		if s1 < 0 || s1 >= shards {
			t.Fatalf("ShardOfTokens out of range: %d of %d", s1, shards)
		}
	}
	if got := ShardOfTokens(ids, 1); got != 0 {
		t.Fatalf("single shard must own everything, got %d", got)
	}
	if got := ShardOfTokens(ids, 0); got != 0 {
		t.Fatalf("shards=0 must map to 0, got %d", got)
	}
	// Distribution: 1000 distinct singleton token sets across 8 shards
	// should leave no shard empty (a degenerate hash would).
	counts := make([]int, 8)
	for i := int32(0); i < 1000; i++ {
		counts[ShardOfTokens([]int32{i}, 8)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d owns none of 1000 distinct token sets", s)
		}
	}
}

// TestShardedEarlyStop: a sink returning false stops the scan, but the
// delta is still absorbed — the next update only sees new records.
func TestShardedEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randomShardTable(rng, 40, false)
	tab := record.NewTable("text")
	for i := range src.Records {
		tab.Append(src.Records[i].Values...)
	}
	sx := NewSharded(tab, 4, Options{Threshold: 0.2, Parallelism: 2})
	var seen atomic.Int32
	sx.UpdateScatter(func(s int, sp ScoredPair) bool {
		seen.Add(1)
		return false
	})
	if n := seen.Load(); n == 0 || n > 4 {
		// At most one emission per shard before the stop flag propagates.
		t.Fatalf("early stop saw %d emissions, want 1..4", n)
	}
	if sx.Indexed() != tab.Len() {
		t.Fatalf("stopped delta not absorbed: Indexed() = %d of %d", sx.Indexed(), tab.Len())
	}
	// The next scatter must emit nothing: no new records.
	sx.UpdateScatter(func(s int, sp ScoredPair) bool {
		t.Error("scatter after absorbed delta emitted a pair")
		return true
	})
}

// TestShardedDiagnostics sanity-checks the footprint accessors against
// the single index.
func TestShardedDiagnostics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randomShardTable(rng, 50, false)
	opts := Options{Threshold: 0.4, Parallelism: 1}

	ix := NewIndex(src, opts)
	ix.Update()

	tab := record.NewTable("text")
	for i := range src.Records {
		tab.Append(src.Records[i].Values...)
	}
	sx := NewSharded(tab, 4, opts)
	drainScatter(sx)

	if got, want := sx.PostingsEntries(), ix.PostingsEntries(); got != want {
		t.Errorf("sharded postings hold %d entries, single index %d", got, want)
	}
	total := 0
	for _, c := range sx.ShardSizes() {
		total += c
	}
	// Only records with a non-empty prefix become members; empties are
	// tracked globally. Members must never exceed the table.
	if total > tab.Len() {
		t.Errorf("shard members total %d of %d records", total, tab.Len())
	}
	if sx.NumShards() != 4 {
		t.Errorf("NumShards = %d", sx.NumShards())
	}
}
