package verdicts

import (
	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/record"
)

// Dump serializes the cache: deep copies of every entry in canonical
// pair order, plus every partial-answer fragment flattened in canonical
// pair order (fragment order preserved within a pair). Dump and
// RestoreCache are the persistence layer's snapshot format — dumping the
// cache wholesale, rather than replaying the mutations that built it,
// is what makes a restored cache bit-identical regardless of the
// Put/PutDeduced/AddAnswers order the live session happened to use.
func (c *Cache) Dump() (entries []Entry, partials []aggregate.Answer) {
	var ptr []*Entry
	for i := range c.banks {
		for _, e := range c.banks[i].entries {
			ptr = append(ptr, e)
		}
	}
	sortEntries(ptr)
	entries = make([]Entry, len(ptr))
	for i, e := range ptr {
		entries[i] = copyEntry(e)
	}

	var pairs []record.Pair
	for i := range c.banks {
		for p := range c.banks[i].partial {
			pairs = append(pairs, p)
		}
	}
	record.SortPairs(pairs)
	for _, p := range pairs {
		partials = append(partials, c.bank(p).partial[p]...)
	}
	return entries, partials
}

// copyEntry deep-copies an entry so the dump shares no mutable state
// with the live cache.
func copyEntry(e *Entry) Entry {
	out := *e
	if e.Answers != nil {
		out.Answers = append([]aggregate.Answer(nil), e.Answers...)
	}
	if e.Deduction != nil {
		d := *e.Deduction
		if d.Path != nil {
			d.Path = append([]record.Pair(nil), d.Path...)
		}
		out.Deduction = &d
	}
	return out
}

// RestoreCache rebuilds a cache from a Dump. The result is unbound;
// callers bind the session aggregator afterwards.
func RestoreCache(entries []Entry, partials []aggregate.Answer) *Cache {
	c := NewCache()
	for i := range entries {
		e := copyEntry(&entries[i])
		c.bank(e.Pair).entries[e.Pair] = &e
	}
	for _, a := range partials {
		b := c.bank(a.Pair)
		b.partial[a.Pair] = append(b.partial[a.Pair], a)
	}
	return c
}
