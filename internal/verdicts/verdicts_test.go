package verdicts

import (
	"strings"
	"testing"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/transitivity"
)

func mk(a, b int) record.Pair { return record.MakePair(record.ID(a), record.ID(b)) }

func TestCachePutGetSplit(t *testing.T) {
	c := NewCache()
	p1, p2, p3 := mk(0, 1), mk(1, 2), mk(2, 3)
	e := c.Put(p1, 0.7)
	if e.Likelihood != 0.7 || c.Len() != 1 || !c.Has(p1) {
		t.Fatalf("Put/Has/Len broken: %+v", e)
	}
	// Put is idempotent: the first likelihood wins.
	if again := c.Put(p1, 0.2); again != e || again.Likelihood != 0.7 {
		t.Fatal("re-Put should return the existing entry unchanged")
	}
	c.Put(p2, 0.5)
	cached, fresh := c.Split([]record.Pair{p1, p3, p2})
	if len(cached) != 2 || len(fresh) != 1 || fresh[0] != p3 {
		t.Fatalf("Split = %v / %v", cached, fresh)
	}
	if c.Get(p3) != nil {
		t.Error("Get of unseen pair should be nil")
	}
}

// AllAnswers must depend only on the answer set, not on insertion order —
// the property that makes k-batch re-aggregation bit-identical to a
// from-scratch run.
func TestAllAnswersCanonicalOrder(t *testing.T) {
	answers := []aggregate.Answer{
		{Pair: mk(3, 4), Worker: 2, Match: true},
		{Pair: mk(0, 1), Worker: 9, Match: false},
		{Pair: mk(0, 1), Worker: 4, Match: true},
		{Pair: mk(1, 2), Worker: 1, Match: true},
	}
	a := NewCache()
	a.AddAnswers(answers)
	b := NewCache()
	for i := len(answers) - 1; i >= 0; i-- {
		b.AddAnswers(answers[i : i+1])
	}
	wa, wb := a.AllAnswers(), b.AllAnswers()
	if len(wa) != len(answers) || len(wb) != len(answers) {
		t.Fatalf("lost answers: %d / %d", len(wa), len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("order depends on insertion: %v vs %v", wa, wb)
		}
	}
	for i := 1; i < len(wa); i++ {
		prev, cur := wa[i-1], wa[i]
		if prev.Pair.A > cur.Pair.A || (prev.Pair == cur.Pair && prev.Worker > cur.Worker) {
			t.Fatalf("not canonically sorted: %v before %v", prev, cur)
		}
	}
}

func TestSetPosteriorsAndPairs(t *testing.T) {
	c := NewCache()
	c.Put(mk(1, 2), 0.6)
	c.Put(mk(0, 1), 0.4)
	c.SetPosteriors(aggregate.Posterior{mk(1, 2): 0.93, mk(5, 6): 0.2})
	if got := c.Get(mk(1, 2)).Posterior; got != 0.93 {
		t.Errorf("posterior = %v; want 0.93", got)
	}
	if c.Has(mk(5, 6)) {
		t.Error("SetPosteriors must not create entries")
	}
	ps := c.Pairs()
	if len(ps) != 2 || ps[0] != mk(0, 1) || ps[1] != mk(1, 2) {
		t.Errorf("Pairs = %v", ps)
	}
}

// Partial answer sets — the residue of a cancelled or failed resolution —
// must persist until the pair is judged in full, then be superseded.
func TestPartialAnswersLifecycle(t *testing.T) {
	c := NewCache()
	p1, p2 := mk(0, 1), mk(1, 2)
	c.AddPartialAnswers([]aggregate.Answer{
		{Pair: p1, Worker: 1, Match: true},
		{Pair: p1, Worker: 2, Match: false},
		{Pair: p2, Worker: 1, Match: true},
	})
	if c.PartialLen() != 2 {
		t.Fatalf("PartialLen = %d; want 2", c.PartialLen())
	}
	if got := c.PartialAnswers(p1); len(got) != 2 {
		t.Fatalf("PartialAnswers(p1) = %v", got)
	}
	// Partial answers never count as judged.
	if c.Has(p1) || c.Len() != 0 {
		t.Fatal("partial answers must not create verdict entries")
	}
	// Judging p1 in full supersedes its fragment; p2's remains.
	c.AddAnswers([]aggregate.Answer{
		{Pair: p1, Worker: 1, Match: true},
		{Pair: p1, Worker: 2, Match: false},
		{Pair: p1, Worker: 3, Match: true},
	})
	if c.PartialAnswers(p1) != nil {
		t.Error("full judgment should clear the pair's partial answers")
	}
	if c.PartialLen() != 1 || c.PartialAnswers(p2) == nil {
		t.Error("other pairs' partial answers must survive")
	}
	// Fragments arriving for an already-judged pair are moot.
	c.AddPartialAnswers([]aggregate.Answer{{Pair: p1, Worker: 9, Match: true}})
	if len(c.PartialAnswers(p1)) != 0 {
		t.Error("partial answers for a judged pair should be dropped")
	}
	// A retried-and-cancelled run's fragment replaces the previous one
	// instead of accumulating duplicates.
	c.AddPartialAnswers([]aggregate.Answer{{Pair: p2, Worker: 5, Match: true}})
	if got := c.PartialAnswers(p2); len(got) != 1 || got[0].Worker != 5 {
		t.Errorf("latest fragment should replace the old one; got %v", got)
	}
	// AllAnswers sees only full judgments.
	if got := len(c.AllAnswers()); got != 3 {
		t.Errorf("AllAnswers = %d answers; want 3", got)
	}
}

func TestProvenanceLifecycle(t *testing.T) {
	c := NewCache()
	asked := record.MakePair(0, 1)
	c.Put(asked, 0.8)
	if e := c.Get(asked); e.Provenance != Asked || e.Deduction != nil {
		t.Fatalf("Put produced %v/%v; want asked with no proof", e.Provenance, e.Deduction)
	}

	ded := transitivity.Deduction{
		Pair:  record.MakePair(0, 2),
		Match: true,
		Path:  []record.Pair{record.MakePair(0, 1), record.MakePair(1, 2)},
	}
	e := c.PutDeduced(0.7, ded)
	if e.Provenance != Deduced || e.Deduction == nil || !e.Deduction.Match {
		t.Fatalf("PutDeduced produced %+v", e)
	}
	if e.Posterior != 1 {
		t.Errorf("deduced match initial posterior = %v; want 1", e.Posterior)
	}
	if got := c.DeducedLen(); got != 1 {
		t.Errorf("DeducedLen = %d; want 1", got)
	}
	if !c.Has(ded.Pair) {
		t.Error("deduced pair not judged: the resolver would re-ask it")
	}

	// Asked entries never downgrade to deduced.
	c.PutDeduced(0, transitivity.Deduction{Pair: asked, Match: false})
	if e := c.Get(asked); e.Provenance != Asked {
		t.Error("PutDeduced downgraded an asked entry")
	}
	// A deduced entry later asked directly upgrades and sheds its proof.
	up := c.Put(ded.Pair, 0.9)
	if up.Provenance != Asked || up.Deduction != nil {
		t.Errorf("asked upgrade left %v/%v", up.Provenance, up.Deduction)
	}
	if up.Likelihood != 0.9 {
		t.Errorf("upgrade kept likelihood %v; want 0.9", up.Likelihood)
	}
}

func TestPutDeducedSupersedesPartialFragments(t *testing.T) {
	c := NewCache()
	p := record.MakePair(3, 4)
	c.AddPartialAnswers([]aggregate.Answer{{Pair: p, Worker: 1, Match: true}})
	if c.PartialLen() != 1 {
		t.Fatal("partial fragment not recorded")
	}
	c.PutDeduced(0.5, transitivity.Deduction{Pair: p, Match: false, Negative: true, Witness: record.MakePair(2, 3)})
	if c.PartialLen() != 0 {
		t.Error("deduced verdict left the partial fragment behind")
	}
	if e := c.Get(p); e.Posterior != 0 {
		t.Errorf("deduced non-match initial posterior = %v; want 0", e.Posterior)
	}
}

func TestAskedEntriesCanonicalOrder(t *testing.T) {
	c := NewCache()
	c.Put(record.MakePair(5, 6), 0.1)
	c.Put(record.MakePair(0, 9), 0.2)
	c.Put(record.MakePair(0, 3), 0.3)
	c.PutDeduced(0, transitivity.Deduction{Pair: record.MakePair(1, 2), Match: true})
	es := c.AskedEntries()
	if len(es) != 3 {
		t.Fatalf("AskedEntries returned %d entries; want 3 (deduced excluded)", len(es))
	}
	want := []record.Pair{record.MakePair(0, 3), record.MakePair(0, 9), record.MakePair(5, 6)}
	for i, e := range es {
		if e.Pair != want[i] {
			t.Errorf("entry %d = %v; want %v", i, e.Pair, want[i])
		}
	}
}

// BindAggregator pins the cache to one aggregation method: the first
// bind sets the identity, re-binding the same name is a no-op, and a
// different name is refused — the session-level guarantee that cached
// and fresh answers are never re-aggregated under mixed modes.
func TestBindAggregator(t *testing.T) {
	c := NewCache()
	if got := c.AggregatorName(); got != "" {
		t.Fatalf("fresh cache is bound to %q", got)
	}
	if err := c.BindAggregator(""); err == nil {
		t.Fatal("empty aggregator identity must be rejected")
	}
	if err := c.BindAggregator("dawid-skene-map"); err != nil {
		t.Fatalf("first bind failed: %v", err)
	}
	if got := c.AggregatorName(); got != "dawid-skene-map" {
		t.Fatalf("AggregatorName = %q after bind", got)
	}
	if err := c.BindAggregator("dawid-skene-map"); err != nil {
		t.Fatalf("re-binding the same aggregator failed: %v", err)
	}
	err := c.BindAggregator("majority-vote")
	if err == nil {
		t.Fatal("binding a different aggregator must fail")
	}
	for _, name := range []string{"dawid-skene-map", "majority-vote"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("mix-mode error %q does not name %q", err, name)
		}
	}
}

// Machine provenance: the hybrid router's verdicts enter the cache
// first-come, never overwrite crowd or deduced judgments, and upgrade
// to asked the moment the crowd weighs in directly.
func TestMachineProvenanceLifecycle(t *testing.T) {
	c := NewCache()
	p := mk(0, 1)
	e := c.PutMachine(p, 0.7, 0.95)
	if e.Provenance != Machine || e.Posterior != 0.95 || e.Likelihood != 0.7 {
		t.Fatalf("PutMachine produced %+v", e)
	}
	if Machine.String() != "machine" {
		t.Errorf("Machine.String() = %q", Machine.String())
	}
	if c.MachineLen() != 1 || c.Len() != 1 {
		t.Fatalf("MachineLen=%d Len=%d; want 1, 1", c.MachineLen(), c.Len())
	}
	// First verdict wins: a re-route of the same pair is a no-op.
	if again := c.PutMachine(p, 0.2, 0.1); again != e || e.Posterior != 0.95 {
		t.Error("re-PutMachine must keep the original verdict")
	}
	// An existing asked or deduced entry is never downgraded to machine.
	asked := mk(1, 2)
	c.Put(asked, 0.6)
	if got := c.PutMachine(asked, 0.1, 0.2); got.Provenance != Asked {
		t.Errorf("PutMachine over an asked entry changed provenance to %v", got.Provenance)
	}

	// The crowd's direct judgment supersedes the model's guess: Put and
	// AddAnswers both upgrade machine → asked.
	if up := c.Put(p, 0.8); up.Provenance != Asked || up.Likelihood != 0.8 {
		t.Errorf("Put over machine entry = %+v; want asked upgrade", up)
	}
	if c.MachineLen() != 0 {
		t.Errorf("MachineLen = %d after upgrade; want 0", c.MachineLen())
	}
	p2 := mk(2, 3)
	c.PutMachine(p2, 0.5, 0.1)
	c.AddAnswers([]aggregate.Answer{{Pair: p2, Worker: 1, Match: true}})
	e2 := c.Get(p2)
	if e2.Provenance != Asked || len(e2.Answers) != 1 {
		t.Errorf("AddAnswers over machine entry = %+v; want asked with the answer", e2)
	}
}

// GroundEntries is the hybrid deduction graph's observation stream:
// asked and machine entries in canonical order, never deduced ones —
// and exactly AskedEntries when no machine verdicts exist.
func TestGroundEntriesOrderAndFilter(t *testing.T) {
	c := NewCache()
	c.PutMachine(mk(4, 5), 0.5, 0.9)
	c.Put(mk(0, 1), 0.8)
	c.PutDeduced(0.6, transitivity.Deduction{Pair: mk(2, 3), Match: true, Path: []record.Pair{mk(0, 1)}})
	c.PutMachine(mk(1, 2), 0.4, 0.05)

	ground := c.GroundEntries()
	want := []record.Pair{mk(0, 1), mk(1, 2), mk(4, 5)}
	if len(ground) != len(want) {
		t.Fatalf("GroundEntries = %d entries; want %d", len(ground), len(want))
	}
	for i, e := range ground {
		if e.Pair != want[i] {
			t.Errorf("GroundEntries[%d] = %v; want %v", i, e.Pair, want[i])
		}
		if e.Provenance == Deduced {
			t.Errorf("deduced entry %v leaked into GroundEntries", e.Pair)
		}
	}

	plain := NewCache()
	plain.Put(mk(0, 1), 0.8)
	plain.Put(mk(3, 4), 0.3)
	ge, ae := plain.GroundEntries(), plain.AskedEntries()
	if len(ge) != len(ae) {
		t.Fatalf("machine-free GroundEntries has %d entries; AskedEntries %d", len(ge), len(ae))
	}
	for i := range ge {
		if ge[i] != ae[i] {
			t.Errorf("machine-free GroundEntries differs from AskedEntries at %d", i)
		}
	}
}

// PutMachine supersedes partial fragments (the pair is judged now) and
// machine entries survive a Dump/Restore round trip with provenance.
func TestMachineDumpRestoreAndPartials(t *testing.T) {
	c := NewCache()
	p := mk(0, 1)
	c.AddPartialAnswers([]aggregate.Answer{{Pair: p, Worker: 3, Match: true}})
	c.PutMachine(p, 0.7, 0.88)
	if len(c.PartialAnswers(p)) != 0 {
		t.Error("machine judgment should clear the pair's partial answers")
	}

	restored := RestoreCache(c.Dump())
	e := restored.Get(p)
	if e == nil || e.Provenance != Machine || e.Posterior != 0.88 || e.Likelihood != 0.7 {
		t.Fatalf("restored machine entry = %+v", e)
	}
	if restored.MachineLen() != 1 {
		t.Errorf("restored MachineLen = %d; want 1", restored.MachineLen())
	}
}
