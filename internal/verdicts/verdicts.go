// Package verdicts caches crowd judgments keyed by record pair, the
// persistence layer that lets the incremental resolver skip the
// generate/execute stages for pairs an earlier batch already paid the
// crowd to judge. A long-running resolution service appends records
// continuously; without this cache every delta would re-issue (and re-pay
// for) HITs covering pairs whose answers are already known.
//
// The cache stores the raw per-pair answers rather than only the
// aggregated posterior: Dawid–Skene jointly estimates worker confusion
// matrices from the full answer matrix, so each delta re-aggregates the
// union of cached and fresh answers — cheap relative to crowdsourcing —
// and the posteriors of old pairs keep improving as new evidence about
// the workers arrives. The last aggregated posterior is stored alongside
// for inspection.
package verdicts

import (
	"errors"
	"fmt"
	"sort"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/transitivity"
)

// Provenance records how a pair's verdict came to be known.
type Provenance int

const (
	// Asked: the crowd judged the pair directly (or, under machine-only
	// resolution, the machine likelihood stands in). The zero value, so
	// every pre-transitivity entry is asked by construction.
	Asked Provenance = iota
	// Deduced: the verdict follows from other pairs' crowd answers by
	// transitive closure or negative inference; no HIT was ever issued
	// for the pair. Entry.Deduction holds the proof.
	Deduced
	// Machine: the hybrid router's classifier — trained online from the
	// session's accumulated asked and deduced verdicts — resolved the
	// pair outside the band of uncertainty, so no HIT was issued. Like
	// asked verdicts, machine verdicts are first-hand observations (not
	// inferences over other pairs), so transitivity may deduce over them;
	// like every cache entry, they are never re-asked by later deltas.
	Machine
)

func (p Provenance) String() string {
	switch p {
	case Deduced:
		return "deduced-from"
	case Machine:
		return "machine"
	default:
		return "asked"
	}
}

// Entry is the cached state of one judged pair.
type Entry struct {
	// Pair is the canonical pair this entry describes.
	Pair record.Pair
	// Likelihood is the machine similarity computed when the pair first
	// became a candidate.
	Likelihood float64
	// Answers are the raw crowd judgments collected for the pair. Empty
	// for machine-only resolution and for deduced verdicts.
	Answers []aggregate.Answer
	// Posterior is the pair's match probability from the most recent
	// aggregation over the whole cache. For deduced entries it is derived
	// from the proof's supporting pairs, not from Dawid–Skene directly.
	Posterior float64
	// Provenance distinguishes crowd-judged pairs from deduced ones.
	Provenance Provenance
	// Deduction is the proof for a Deduced entry: the deduced verdict,
	// the chain of asked pairs implying it, and (for non-matches) the
	// witness pair separating the clusters. Nil for asked entries.
	Deduction *transitivity.Deduction
}

// cacheBanks is the number of hash banks the cache's maps are split
// into. The count is fixed (not tied to Options.Shards) so a cache's
// layout never depends on session options; 16 comfortably exceeds the
// resolver's supported shard counts.
const cacheBanks = 16

// cacheBank is one hash partition of the cache: the entries and partial
// fragments of every pair with the matching record.Pair.Shard.
type cacheBank struct {
	entries map[record.Pair]*Entry
	partial map[record.Pair][]aggregate.Answer
}

// Cache is a verdict store keyed by pair. Internally it is banked: the
// maps are partitioned by a stable hash of the pair (record.Pair.Shard),
// so the sharded resolver's per-shard goroutines each effectively own a
// disjoint slice of the cache — concurrent lookups during a sharded
// machine pass touch independent maps instead of contending on one. The
// cache is not safe for concurrent mutation; the owning resolver
// serializes mutating access, and concurrent reads are safe only while
// no mutation is in flight. Every iteration order is canonical, so the
// banked layout is observationally identical to a single map.
//
// Besides final verdicts, the cache persists partial assignment sets:
// answers collected by a resolution that was cancelled or failed before
// every HIT completed. Those answers are real, paid-for crowd work — a
// live deployment cannot un-ask a worker — so they survive the failure
// for inspection and accounting, and are dropped only when the pair is
// eventually judged in full (the complete answer set supersedes the
// fragment).
type Cache struct {
	banks [cacheBanks]cacheBank
	// aggregator is the identity of the method every posterior in the
	// cache was produced by, set by the first BindAggregator call.
	// Posteriors from different aggregators are not comparable — a
	// majority fraction and an EM posterior mean different things — so
	// the cache refuses to serve a session that would mix them.
	aggregator string
}

// NewCache creates an empty verdict cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.banks {
		c.banks[i] = cacheBank{
			entries: make(map[record.Pair]*Entry),
			partial: make(map[record.Pair][]aggregate.Answer),
		}
	}
	return c
}

// bank returns the hash bank owning the pair.
func (c *Cache) bank(p record.Pair) *cacheBank {
	return &c.banks[p.Shard(cacheBanks)]
}

// BindAggregator records the aggregator identity whose posteriors the
// cache holds. The first bind sets it; every later bind must name the
// same aggregator, so a cache whose answers were aggregated under one
// method can never be silently re-aggregated under another —
// ResolveDelta re-aggregates cached∪fresh answers with the *session's*
// aggregator, and this is the check that the session and the cache
// agree.
func (c *Cache) BindAggregator(name string) error {
	if name == "" {
		return errors.New("verdicts: empty aggregator identity")
	}
	if c.aggregator == "" {
		c.aggregator = name
		return nil
	}
	if c.aggregator != name {
		return fmt.Errorf("verdicts: cache is bound to aggregator %q; refusing to re-aggregate under %q (one session, one aggregation mode)", c.aggregator, name)
	}
	return nil
}

// AggregatorName returns the bound aggregator identity, or "" if the
// cache was never bound (session caches are bound at creation).
func (c *Cache) AggregatorName() string { return c.aggregator }

// Len returns the number of judged pairs.
func (c *Cache) Len() int {
	n := 0
	for i := range c.banks {
		n += len(c.banks[i].entries)
	}
	return n
}

// Has reports whether the pair already has a cache entry.
func (c *Cache) Has(p record.Pair) bool {
	_, ok := c.bank(p).entries[p]
	return ok
}

// Get returns the entry for the pair, or nil if the pair has never been
// judged.
func (c *Cache) Get(p record.Pair) *Entry {
	return c.bank(p).entries[p]
}

// Put creates (or returns) the entry for the pair, recording its machine
// likelihood on first insertion. A pair previously known only by
// deduction or by the machine classifier that is now asked directly
// upgrades to an asked entry: the crowd's own judgment supersedes the
// inference or the model's guess.
func (c *Cache) Put(p record.Pair, likelihood float64) *Entry {
	b := c.bank(p)
	if e, ok := b.entries[p]; ok {
		if e.Provenance == Deduced || e.Provenance == Machine {
			e.Provenance = Asked
			e.Deduction = nil
			if likelihood != 0 {
				e.Likelihood = likelihood
			}
		}
		return e
	}
	e := &Entry{Pair: p, Likelihood: likelihood}
	b.entries[p] = e
	return e
}

// PutMachine records a machine-resolved verdict: the hybrid router's
// classifier scored the pair outside its uncertainty band, so the pair
// is judged without a HIT. The posterior is the router's calibrated
// match confidence (> 0.5 accept, < 0.5 reject). An existing entry of
// any provenance wins — a pair the crowd judged, deduction proved, or
// an earlier delta machine-resolved is never re-judged.
func (c *Cache) PutMachine(p record.Pair, likelihood, posterior float64) *Entry {
	b := c.bank(p)
	if e, ok := b.entries[p]; ok {
		return e
	}
	e := &Entry{Pair: p, Likelihood: likelihood, Posterior: posterior, Provenance: Machine}
	b.entries[p] = e
	delete(b.partial, p)
	return e
}

// MachineLen returns the number of pairs resolved by the machine
// classifier rather than asked or deduced.
func (c *Cache) MachineLen() int {
	n := 0
	for i := range c.banks {
		for _, e := range c.banks[i].entries {
			if e.Provenance == Machine {
				n++
			}
		}
	}
	return n
}

// PutDeduced records a deduced verdict with its proof. An existing asked
// entry is never downgraded (the crowd's direct judgment wins); an
// existing deduced entry keeps its original proof. A machine entry is
// replaced: deduction only reaches a machine-resolved pair when the
// router has demoted that verdict for review, and a proof over
// independent evidence supersedes the contested classifier call. The
// initial posterior is the hard deduced verdict (1 or 0); each
// aggregation pass re-derives it from the proof's supporting pairs.
func (c *Cache) PutDeduced(likelihood float64, d transitivity.Deduction) *Entry {
	b := c.bank(d.Pair)
	if e, ok := b.entries[d.Pair]; ok && e.Provenance != Machine {
		return e
	}
	e := &Entry{Pair: d.Pair, Likelihood: likelihood, Provenance: Deduced}
	ded := d
	e.Deduction = &ded
	if d.Match {
		e.Posterior = 1
	}
	b.entries[d.Pair] = e
	delete(b.partial, d.Pair)
	return e
}

// DeducedLen returns the number of pairs whose verdicts were deduced
// rather than asked.
func (c *Cache) DeducedLen() int {
	n := 0
	for i := range c.banks {
		for _, e := range c.banks[i].entries {
			if e.Provenance == Deduced {
				n++
			}
		}
	}
	return n
}

// AskedEntries returns the asked entries in canonical pair order — the
// observation sequence for rebuilding a deduction graph.
func (c *Cache) AskedEntries() []*Entry {
	var out []*Entry
	for i := range c.banks {
		for _, e := range c.banks[i].entries {
			if e.Provenance == Asked {
				out = append(out, e)
			}
		}
	}
	sortEntries(out)
	return out
}

// GroundEntries returns the entries carrying first-hand verdicts —
// asked or machine-resolved, never deduced — in canonical pair order:
// the observation sequence for rebuilding a deduction graph in a
// hybrid session. With no machine verdicts in the cache it is exactly
// AskedEntries.
func (c *Cache) GroundEntries() []*Entry {
	var out []*Entry
	for i := range c.banks {
		for _, e := range c.banks[i].entries {
			if e.Provenance == Asked || e.Provenance == Machine {
				out = append(out, e)
			}
		}
	}
	sortEntries(out)
	return out
}

func sortEntries(es []*Entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Pair.A != es[j].Pair.A {
			return es[i].Pair.A < es[j].Pair.A
		}
		return es[i].Pair.B < es[j].Pair.B
	})
}

// AddAnswers appends crowd answers to their pairs' entries. Answers for
// pairs without an entry create one (with zero likelihood), so cluster
// HITs that incidentally cover extra pairs are still recorded. A pair
// judged in full sheds any partial answers an earlier aborted resolution
// left behind: the complete set supersedes the fragment.
func (c *Cache) AddAnswers(answers []aggregate.Answer) {
	for _, a := range answers {
		b := c.bank(a.Pair)
		e, ok := b.entries[a.Pair]
		if !ok {
			e = c.Put(a.Pair, 0)
		}
		if e.Provenance == Machine {
			// Real crowd evidence supersedes the classifier's guess: the
			// pair re-aggregates with the answer set from here on.
			e.Provenance = Asked
		}
		e.Answers = append(e.Answers, a)
		delete(b.partial, a.Pair)
	}
}

// AddPartialAnswers records answers from a resolution that ended before
// all of its HITs completed. Partial answers never feed aggregation (the
// retry re-issues the pair's HITs and commits the full set); they persist
// the crowd work already paid for across the failure. A pair's latest
// fragment replaces any earlier one — repeatedly cancelled retries
// re-collect overlapping answers, and keeping every attempt's copy would
// grow without bound and double-count the work.
func (c *Cache) AddPartialAnswers(answers []aggregate.Answer) {
	fresh := make(map[record.Pair]bool)
	for _, a := range answers {
		if c.Has(a.Pair) {
			continue // already judged in full; the fragment is moot
		}
		b := c.bank(a.Pair)
		if !fresh[a.Pair] {
			fresh[a.Pair] = true
			// A fresh slice, not a truncation: slices handed out by
			// PartialAnswers must not be mutated under their callers.
			b.partial[a.Pair] = nil
		}
		b.partial[a.Pair] = append(b.partial[a.Pair], a)
	}
}

// PartialAnswers returns the answers collected for a not-yet-judged pair
// by aborted resolutions, or nil.
func (c *Cache) PartialAnswers(p record.Pair) []aggregate.Answer {
	return c.bank(p).partial[p]
}

// PartialLen returns the number of pairs holding partial answer sets.
func (c *Cache) PartialLen() int {
	n := 0
	for i := range c.banks {
		n += len(c.banks[i].partial)
	}
	return n
}

// AllAnswers returns every cached answer in canonical order
// (aggregate.SortCanonical): a pure function of the answer *set*,
// independent of the batch sequence that produced it, which is what
// makes re-aggregation after k deltas bit-identical to aggregating a
// single from-scratch run.
func (c *Cache) AllAnswers() []aggregate.Answer {
	var out []aggregate.Answer
	for i := range c.banks {
		for _, e := range c.banks[i].entries {
			out = append(out, e.Answers...)
		}
	}
	aggregate.SortCanonical(out)
	return out
}

// Pairs returns every judged pair in canonical order.
func (c *Cache) Pairs() []record.Pair {
	out := make([]record.Pair, 0, c.Len())
	for i := range c.banks {
		for p := range c.banks[i].entries {
			out = append(out, p)
		}
	}
	record.SortPairs(out)
	return out
}

// SetPosteriors records the latest aggregation result on the entries.
func (c *Cache) SetPosteriors(post aggregate.Posterior) {
	for p, prob := range post {
		if e, ok := c.bank(p).entries[p]; ok {
			e.Posterior = prob
		}
	}
}

// Split partitions candidate pairs into those already judged (cached) and
// those genuinely new, preserving input order. Only the fresh pairs need
// HIT generation and crowd execution.
func (c *Cache) Split(pairs []record.Pair) (cached, fresh []record.Pair) {
	for _, p := range pairs {
		if c.Has(p) {
			cached = append(cached, p)
		} else {
			fresh = append(fresh, p)
		}
	}
	return cached, fresh
}
