// Package verdicts caches crowd judgments keyed by record pair, the
// persistence layer that lets the incremental resolver skip the
// generate/execute stages for pairs an earlier batch already paid the
// crowd to judge. A long-running resolution service appends records
// continuously; without this cache every delta would re-issue (and re-pay
// for) HITs covering pairs whose answers are already known.
//
// The cache stores the raw per-pair answers rather than only the
// aggregated posterior: Dawid–Skene jointly estimates worker confusion
// matrices from the full answer matrix, so each delta re-aggregates the
// union of cached and fresh answers — cheap relative to crowdsourcing —
// and the posteriors of old pairs keep improving as new evidence about
// the workers arrives. The last aggregated posterior is stored alongside
// for inspection.
package verdicts

import (
	"sort"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/record"
)

// Entry is the cached state of one judged pair.
type Entry struct {
	// Pair is the canonical pair this entry describes.
	Pair record.Pair
	// Likelihood is the machine similarity computed when the pair first
	// became a candidate.
	Likelihood float64
	// Answers are the raw crowd judgments collected for the pair. Empty
	// for machine-only resolution.
	Answers []aggregate.Answer
	// Posterior is the pair's match probability from the most recent
	// aggregation over the whole cache.
	Posterior float64
}

// Cache is a verdict store keyed by pair. It is not safe for concurrent
// mutation; the owning resolver serializes access.
type Cache struct {
	entries map[record.Pair]*Entry
}

// NewCache creates an empty verdict cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[record.Pair]*Entry)}
}

// Len returns the number of judged pairs.
func (c *Cache) Len() int { return len(c.entries) }

// Has reports whether the pair already has a cache entry.
func (c *Cache) Has(p record.Pair) bool {
	_, ok := c.entries[p]
	return ok
}

// Get returns the entry for the pair, or nil if the pair has never been
// judged.
func (c *Cache) Get(p record.Pair) *Entry {
	return c.entries[p]
}

// Put creates (or returns) the entry for the pair, recording its machine
// likelihood on first insertion.
func (c *Cache) Put(p record.Pair, likelihood float64) *Entry {
	if e, ok := c.entries[p]; ok {
		return e
	}
	e := &Entry{Pair: p, Likelihood: likelihood}
	c.entries[p] = e
	return e
}

// AddAnswers appends crowd answers to their pairs' entries. Answers for
// pairs without an entry create one (with zero likelihood), so cluster
// HITs that incidentally cover extra pairs are still recorded.
func (c *Cache) AddAnswers(answers []aggregate.Answer) {
	for _, a := range answers {
		e, ok := c.entries[a.Pair]
		if !ok {
			e = c.Put(a.Pair, 0)
		}
		e.Answers = append(e.Answers, a)
	}
}

// AllAnswers returns every cached answer in canonical order — sorted by
// (pair, worker, verdict). The order is a pure function of the answer
// *set*, independent of the batch sequence that produced it, which is
// what makes re-aggregation after k deltas bit-identical to aggregating a
// single from-scratch run: Dawid–Skene's floating-point accumulations see
// the same operands in the same order.
func (c *Cache) AllAnswers() []aggregate.Answer {
	var out []aggregate.Answer
	for _, e := range c.entries {
		out = append(out, e.Answers...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pair.A != out[j].Pair.A {
			return out[i].Pair.A < out[j].Pair.A
		}
		if out[i].Pair.B != out[j].Pair.B {
			return out[i].Pair.B < out[j].Pair.B
		}
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return !out[i].Match && out[j].Match
	})
	return out
}

// Pairs returns every judged pair in canonical order.
func (c *Cache) Pairs() []record.Pair {
	out := make([]record.Pair, 0, len(c.entries))
	for p := range c.entries {
		out = append(out, p)
	}
	record.SortPairs(out)
	return out
}

// SetPosteriors records the latest aggregation result on the entries.
func (c *Cache) SetPosteriors(post aggregate.Posterior) {
	for p, prob := range post {
		if e, ok := c.entries[p]; ok {
			e.Posterior = prob
		}
	}
}

// Split partitions candidate pairs into those already judged (cached) and
// those genuinely new, preserving input order. Only the fresh pairs need
// HIT generation and crowd execution.
func (c *Cache) Split(pairs []record.Pair) (cached, fresh []record.Pair) {
	for _, p := range pairs {
		if c.Has(p) {
			cached = append(cached, p)
		} else {
			fresh = append(fresh, p)
		}
	}
	return cached, fresh
}
