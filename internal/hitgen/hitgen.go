// Package hitgen implements CrowdER's HIT generation (Sections 3–5):
// batching a set of record pairs into Human Intelligence Tasks.
//
// Pair-based HITs batch k independent pairs per task (Section 3.1).
// Cluster-based HITs batch up to k records per task and ask the worker to
// find all matches inside the group (Section 3.2, Definition 1). Because
// minimizing the number of cluster-based HITs is NP-hard (Theorem 1), the
// package provides the paper's heuristics and baselines:
//
//   - Random    — merge random pairs until the HIT is full (Section 7.2)
//   - BFS/DFS   — fill HITs in graph-traversal order (Section 7.2)
//   - Approx    — the Goldschmidt et al. (k/2 + k/(k−1))-approximation for
//     k-clique edge covering (Section 4)
//   - TwoTiered — the paper's contribution: greedy LCC partitioning (top
//     tier, Algorithm 2) plus cutting-stock SCC packing (bottom tier,
//     Section 5.3)
package hitgen

import (
	"fmt"
	"sort"

	"github.com/crowder/crowder/internal/graph"
	"github.com/crowder/crowder/internal/record"
)

// PairHIT is a pair-based HIT: a batch of record pairs, each verified
// independently by the worker.
type PairHIT struct {
	Pairs []record.Pair
}

// ClusterHIT is a cluster-based HIT: a group of records among which the
// worker identifies all duplicates.
type ClusterHIT struct {
	Records []record.ID
}

// Size returns the number of records in the HIT.
func (h ClusterHIT) Size() int { return len(h.Records) }

// CoveredPairs returns the subset of pairs checkable by this HIT: those
// with both endpoints in the HIT (Section 3.2: "a cluster-based HIT allows
// a pair of records to be matched iff both records are in the HIT").
func (h ClusterHIT) CoveredPairs(pairs []record.Pair) []record.Pair {
	in := make(map[record.ID]bool, len(h.Records))
	for _, r := range h.Records {
		in[r] = true
	}
	var out []record.Pair
	for _, p := range pairs {
		if in[p.A] && in[p.B] {
			out = append(out, p)
		}
	}
	return out
}

// GeneratePairHITs batches the pairs into ⌈|P|/k⌉ pair-based HITs of at
// most k pairs each, preserving input order (Section 3.1).
func GeneratePairHITs(pairs []record.Pair, k int) ([]PairHIT, error) {
	if k < 1 {
		return nil, fmt.Errorf("hitgen: pair-based HIT size %d must be >= 1", k)
	}
	var hits []PairHIT
	for start := 0; start < len(pairs); start += k {
		end := start + k
		if end > len(pairs) {
			end = len(pairs)
		}
		batch := make([]record.Pair, end-start)
		copy(batch, pairs[start:end])
		hits = append(hits, PairHIT{Pairs: batch})
	}
	return hits, nil
}

// ClusterGenerator is a cluster-based HIT generation strategy: given the
// pairs to verify and the cluster-size threshold k, produce HITs
// satisfying Definition 1 (every HIT has ≤ k records; every pair is
// covered by some HIT).
type ClusterGenerator interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Generate produces the cluster-based HITs. k must be ≥ 2.
	Generate(pairs []record.Pair, k int) ([]ClusterHIT, error)
}

// ValidateCover checks Definition 1's two requirements against the
// generated HITs and returns a descriptive error on the first violation.
// It is used by tests and by the workflow's internal sanity checking.
// Pairs are indexed by endpoint so the check costs O(Σ_HIT Σ_member
// deg(member)) rather than O(#HITs × |P|).
func ValidateCover(pairs []record.Pair, hits []ClusterHIT, k int) error {
	remaining := make(map[record.Pair]bool, len(pairs))
	byEndpoint := make(map[record.ID][]record.Pair)
	for _, p := range pairs {
		cp := record.MakePair(p.A, p.B)
		if !remaining[cp] {
			remaining[cp] = true
			byEndpoint[cp.A] = append(byEndpoint[cp.A], cp)
			byEndpoint[cp.B] = append(byEndpoint[cp.B], cp)
		}
	}
	for i, h := range hits {
		if h.Size() > k {
			return fmt.Errorf("hitgen: HIT %d has %d records, exceeds k=%d", i, h.Size(), k)
		}
		members := make(map[record.ID]bool, h.Size())
		for _, r := range h.Records {
			if members[r] {
				return fmt.Errorf("hitgen: HIT %d contains duplicate record %d", i, r)
			}
			members[r] = true
		}
		for _, r := range h.Records {
			for _, p := range byEndpoint[r] {
				if members[p.A] && members[p.B] {
					delete(remaining, p)
				}
			}
		}
	}
	if len(remaining) > 0 {
		for p := range remaining {
			return fmt.Errorf("hitgen: pair %v not covered by any HIT (%d uncovered)", p, len(remaining))
		}
	}
	return nil
}

// sortHIT orders the records of a HIT ascending for deterministic output.
func sortHIT(rs []record.ID) []record.ID {
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	return rs
}

// checkK validates the cluster-size threshold shared by all generators. A
// threshold below 2 cannot cover any pair.
func checkK(k int) error {
	if k < 2 {
		return fmt.Errorf("hitgen: cluster-size threshold %d must be >= 2", k)
	}
	return nil
}

// buildGraph constructs the pair graph (Section 4: vertices are records,
// edges are pairs).
func buildGraph(pairs []record.Pair) *graph.Graph {
	return graph.FromPairs(pairs)
}
