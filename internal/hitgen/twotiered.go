package hitgen

import (
	"fmt"

	"github.com/crowder/crowder/internal/graph"
	"github.com/crowder/crowder/internal/packing"
	"github.com/crowder/crowder/internal/record"
)

// PackStrategy selects the bottom-tier packing algorithm.
type PackStrategy int

const (
	// PackExact uses the cutting-stock formulation solved with column
	// generation and branch-and-bound (Section 5.3, the paper's method).
	PackExact PackStrategy = iota
	// PackFFD uses First-Fit-Decreasing, the classic heuristic; provided
	// as an ablation of the exact packer.
	PackFFD
)

// SeedStrategy selects how the top tier seeds each small connected
// component (ablation of Algorithm 2's max-degree choice).
type SeedStrategy int

const (
	// SeedMaxDegree starts each SCC from the vertex with the maximum
	// degree (Algorithm 2, line 4 — the paper's choice).
	SeedMaxDegree SeedStrategy = iota
	// SeedMinID starts from the smallest-ID vertex, ignoring connectivity;
	// used to measure how much the max-degree seed matters.
	SeedMinID
)

// TwoTiered is the paper's cluster-based HIT generation algorithm
// (Section 5): the top tier partitions large connected components into
// highly connected small ones (Algorithm 2), and the bottom tier packs all
// small components into HITs by solving a cutting-stock problem.
type TwoTiered struct {
	// Pack selects the bottom-tier packer (default PackExact).
	Pack PackStrategy
	// Seed selects the top-tier seeding rule (default SeedMaxDegree).
	Seed SeedStrategy
	// DisableTieBreak drops Algorithm 2's min-outdegree tie-breaking rule
	// (vertices tied on indegree are then taken in ID order); used as an
	// ablation.
	DisableTieBreak bool
}

// Name implements ClusterGenerator.
func (t TwoTiered) Name() string {
	switch {
	case t.Pack == PackFFD:
		return "Two-tiered(FFD)"
	case t.Seed == SeedMinID:
		return "Two-tiered(minID)"
	case t.DisableTieBreak:
		return "Two-tiered(noTie)"
	default:
		return "Two-tiered"
	}
}

// Generate implements ClusterGenerator (Algorithm 1).
func (t TwoTiered) Generate(pairs []record.Pair, k int) ([]ClusterHIT, error) {
	if err := checkK(k); err != nil {
		return nil, err
	}
	g := buildGraph(pairs)

	// Lines 2–4: split connected components by size.
	var sccs [][]record.ID
	var lccs []graph.Component
	for _, cc := range g.ConnectedComponents() {
		if cc.Size() <= k {
			sccs = append(sccs, cc.Vertices)
		} else {
			lccs = append(lccs, cc)
		}
	}

	// Line 5 (top tier): partition each LCC into SCCs.
	for _, lcc := range lccs {
		parts := t.partition(g.Subgraph(lcc.Vertices), k)
		sccs = append(sccs, parts...)
	}

	// Line 6 (bottom tier): pack the SCCs into HITs.
	return t.pack(sccs, k)
}

// partition implements Algorithm 2 for a single large connected component:
// repeatedly grow a small component of maximal connectivity and peel off
// its covered edges until no edges remain. The indegree of each candidate
// (edges into the growing scc) is maintained incrementally, so selecting
// each vertex costs one scan of the candidate set rather than a full
// degree recomputation.
func (t TwoTiered) partition(lcc *graph.Graph, k int) [][]record.ID {
	var sccs [][]record.ID
	for lcc.NumEdges() > 0 {
		seed, ok := t.pickSeed(lcc)
		if !ok {
			break
		}
		scc := map[record.ID]bool{seed: true}
		// conn maps each vertex adjacent to the growing scc (Algorithm 2,
		// line 6) to its indegree w.r.t. scc; the outdegree is recovered as
		// Degree − indegree.
		conn := make(map[record.ID]int)
		for _, u := range lcc.Neighbors(seed) {
			conn[u] = 1
		}
		for len(scc) < k && len(conn) > 0 {
			rnew := t.pickNext(lcc, conn)
			delete(conn, rnew)
			scc[rnew] = true
			for _, u := range lcc.Neighbors(rnew) {
				if !scc[u] {
					conn[u]++
				}
			}
		}
		members := make([]record.ID, 0, len(scc))
		for r := range scc {
			members = append(members, r)
		}
		sortHIT(members)
		sccs = append(sccs, members)
		// Line 14: remove the edges covered by scc.
		for _, e := range lcc.EdgesCoveredBy(members) {
			lcc.RemoveEdge(e.A, e.B)
		}
	}
	return sccs
}

// pickSeed selects the starting vertex of a new SCC.
func (t TwoTiered) pickSeed(lcc *graph.Graph) (record.ID, bool) {
	if t.Seed == SeedMinID {
		vs := lcc.Vertices()
		if len(vs) == 0 {
			return 0, false
		}
		return vs[0], true
	}
	return lcc.MaxDegreeVertex()
}

// pickNext selects the vertex from conn with the maximum indegree w.r.t.
// scc, breaking ties by minimum outdegree (Algorithm 2, line 8). Remaining
// ties break by smallest ID for determinism.
func (t TwoTiered) pickNext(lcc *graph.Graph, conn map[record.ID]int) record.ID {
	var best record.ID
	bestIn, bestOut := -1, -1
	first := true
	for r, in := range conn {
		out := lcc.Degree(r) - in
		better := false
		switch {
		case first:
			better = true
		case in > bestIn:
			better = true
		case in < bestIn:
		case !t.DisableTieBreak && out < bestOut:
			better = true
		case !t.DisableTieBreak && out > bestOut:
		default:
			better = r < best // full tie: smallest ID
		}
		if better {
			best, bestIn, bestOut, first = r, in, out, false
		}
	}
	return best
}

// pack implements the bottom tier: pack the small components into HITs of
// capacity k, minimizing the HIT count. Components are grouped by size;
// the size-level packing comes from the cutting-stock solver (or FFD), and
// concrete components are then assigned to the size slots.
func (t TwoTiered) pack(sccs [][]record.ID, k int) ([]ClusterHIT, error) {
	if len(sccs) == 0 {
		return nil, nil
	}
	sizes := make([]int, len(sccs))
	for i, s := range sccs {
		sizes[i] = len(s)
	}

	var bins [][]int
	var err error
	if t.Pack == PackFFD {
		bins, err = packing.FirstFitDecreasing(sizes, k)
	} else {
		var res packing.Result
		res, err = packing.Solve(sizes, k)
		bins = res.Bins
	}
	if err != nil {
		return nil, fmt.Errorf("hitgen: bottom-tier packing: %w", err)
	}

	// Assign concrete components to the size slots of each bin.
	bySize := make(map[int][][]record.ID)
	for _, s := range sccs {
		bySize[len(s)] = append(bySize[len(s)], s)
	}
	var hits []ClusterHIT
	for _, bin := range bins {
		members := make(map[record.ID]bool)
		for _, sz := range bin {
			pool := bySize[sz]
			if len(pool) == 0 {
				return nil, fmt.Errorf("hitgen: packing produced a slot of size %d with no component left", sz)
			}
			comp := pool[len(pool)-1]
			bySize[sz] = pool[:len(pool)-1]
			for _, r := range comp {
				members[r] = true
			}
		}
		hit := ClusterHIT{}
		for r := range members {
			hit.Records = append(hit.Records, r)
		}
		sortHIT(hit.Records)
		hits = append(hits, hit)
	}
	for sz, pool := range bySize {
		if len(pool) > 0 {
			return nil, fmt.Errorf("hitgen: %d components of size %d left unpacked", len(pool), sz)
		}
	}
	return hits, nil
}
