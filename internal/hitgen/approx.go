package hitgen

import (
	"github.com/crowder/crowder/internal/record"
)

// Approx is the (k/2 + k/(k−1))-approximation algorithm for the k-clique
// edge covering problem from Goldschmidt et al., as described in Section 4.
//
// Phase 1 builds a sequence SEQ of all vertices and edges: it repeatedly
// selects a vertex, appends the vertex and its currently incident edges to
// SEQ, and removes them from the graph. Phase 2 splits SEQ into windows of
// k−1 consecutive elements; the edges inside a window touch at most k
// distinct vertices, so each window yields one cluster-based HIT.
//
// As the paper notes, the algorithm ignores connectivity entirely ("it
// simply adds a random vertex and its corresponding edges into SEQ"), which
// is why it underperforms even naive baselines on real data (Section 7.2).
type Approx struct{}

// Name implements ClusterGenerator.
func (Approx) Name() string { return "Approximation" }

// seqElem is one element of SEQ: either a vertex or an edge.
type seqElem struct {
	isEdge bool
	v      record.ID   // valid when !isEdge
	e      record.Pair // valid when isEdge
}

// Generate implements ClusterGenerator.
func (Approx) Generate(pairs []record.Pair, k int) ([]ClusterHIT, error) {
	if err := checkK(k); err != nil {
		return nil, err
	}
	g := buildGraph(pairs)

	// Phase 1: build SEQ. The paper's Phase 1 selects vertices in arbitrary
	// order; we take ascending ID order for determinism (the approximation
	// guarantee is order-independent).
	// Vertices whose edges were all consumed by earlier neighbors still
	// enter SEQ as bare vertex elements, matching the paper's "all the
	// vertices and edges" accounting (Example 2 counts nine vertex
	// elements alongside the ten edges).
	var seq []seqElem
	for _, v := range g.Vertices() {
		seq = append(seq, seqElem{v: v})
		for _, u := range g.Neighbors(v) {
			seq = append(seq, seqElem{isEdge: true, e: record.MakePair(v, u)})
		}
		for _, u := range g.Neighbors(v) {
			g.RemoveEdge(v, u)
		}
	}

	// Phase 2: windows of k−1 consecutive elements, one HIT per window.
	// Example 2: |SEQ| = 19 with k = 4 gives ⌈19/3⌉ = 7 HITs.
	var hits []ClusterHIT
	for start := 0; start < len(seq); start += k - 1 {
		end := start + k - 1
		if end > len(seq) {
			end = len(seq)
		}
		members := make(map[record.ID]bool)
		for _, el := range seq[start:end] {
			if el.isEdge {
				members[el.e.A] = true
				members[el.e.B] = true
			} else {
				members[el.v] = true
			}
		}
		hit := ClusterHIT{}
		for r := range members {
			hit.Records = append(hit.Records, r)
		}
		sortHIT(hit.Records)
		hits = append(hits, hit)
	}
	return hits, nil
}
