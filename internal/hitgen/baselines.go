package hitgen

import (
	"math/rand"

	"github.com/crowder/crowder/internal/record"
)

// Random is the naive baseline of Section 7.2: it repeatedly selects a
// random pair from P and merges its two records into the HIT under
// construction; when the HIT reaches k records it is emitted and all pairs
// it covers are removed from P.
type Random struct {
	// Seed makes runs reproducible; the same seed yields the same HITs.
	Seed int64
}

// Name implements ClusterGenerator.
func (Random) Name() string { return "Random" }

// Generate implements ClusterGenerator.
func (g Random) Generate(pairs []record.Pair, k int) ([]ClusterHIT, error) {
	if err := checkK(k); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(g.Seed))
	remaining := make([]record.Pair, len(pairs))
	copy(remaining, pairs)

	// Dense membership array: record IDs are small and dense, so a slice
	// beats a map in the O(|P|) per-HIT sweep below.
	maxID := record.ID(0)
	for _, p := range pairs {
		if p.B > maxID {
			maxID = p.B
		}
	}
	members := make([]bool, maxID+1)

	var hits []ClusterHIT
	for len(remaining) > 0 {
		// Fill the HIT by scanning a lazily generated random permutation of
		// the remaining pairs (Fisher–Yates as we go). A pair is merged
		// only if it fits within the k-record budget; pairs that do not fit
		// stay for later HITs, so termination is guaranteed (the first pair
		// examined always fits since k >= 2).
		var hitMembers []record.ID
		size := 0
		for i := 0; i < len(remaining) && size < k; i++ {
			j := i + rng.Intn(len(remaining)-i)
			remaining[i], remaining[j] = remaining[j], remaining[i]
			p := remaining[i]
			add := 0
			if !members[p.A] {
				add++
			}
			if !members[p.B] {
				add++
			}
			if size+add > k {
				continue
			}
			if !members[p.A] {
				members[p.A] = true
				hitMembers = append(hitMembers, p.A)
			}
			if !members[p.B] {
				members[p.B] = true
				hitMembers = append(hitMembers, p.B)
			}
			size += add
		}
		hits = append(hits, ClusterHIT{Records: sortHIT(hitMembers)})

		// Remove every pair covered by this HIT and reset membership.
		next := remaining[:0]
		for _, p := range remaining {
			if !(members[p.A] && members[p.B]) {
				next = append(next, p)
			}
		}
		remaining = next
		for _, r := range hitMembers {
			members[r] = false
		}
	}
	return hits, nil
}

// BFS is the breadth-first baseline of Section 7.2: it builds the pair
// graph and fills each HIT with the first k vertices of a BFS traversal of
// the remaining graph, then removes the covered edges and repeats.
type BFS struct{}

// Name implements ClusterGenerator.
func (BFS) Name() string { return "BFS-based" }

// Generate implements ClusterGenerator.
func (BFS) Generate(pairs []record.Pair, k int) ([]ClusterHIT, error) {
	if err := checkK(k); err != nil {
		return nil, err
	}
	return traversalGenerate(pairs, k, true)
}

// DFS is the depth-first baseline of Section 7.2, identical to BFS but
// using depth-first traversal order.
type DFS struct{}

// Name implements ClusterGenerator.
func (DFS) Name() string { return "DFS-based" }

// Generate implements ClusterGenerator.
func (DFS) Generate(pairs []record.Pair, k int) ([]ClusterHIT, error) {
	if err := checkK(k); err != nil {
		return nil, err
	}
	return traversalGenerate(pairs, k, false)
}

func traversalGenerate(pairs []record.Pair, k int, bfs bool) ([]ClusterHIT, error) {
	g := buildGraph(pairs)
	var hits []ClusterHIT
	for g.NumEdges() > 0 {
		var members []record.ID
		if bfs {
			members = g.BFSPrefix(k)
		} else {
			members = g.DFSPrefix(k)
		}
		hit := ClusterHIT{Records: sortHIT(members)}
		hits = append(hits, hit)
		for _, e := range g.EdgesCoveredBy(hit.Records) {
			g.RemoveEdge(e.A, e.B)
		}
	}
	return hits, nil
}
