package hitgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crowder/crowder/internal/record"
)

func TestClusterComparisonsExample4(t *testing.T) {
	// Example 4: HIT {r1,r2,r3,r7} with entities e1={r1,r2,r7}, e2={r3}.
	// Identifying e1 first takes 3 comparisons, then e2 needs none.
	if got := ClusterComparisons([]int{3, 1}); got != 3 {
		t.Fatalf("comparisons = %d; want 3", got)
	}
	// A pair-based HIT over the same four checkable pairs needs 4.
	ph := PairHIT{Pairs: []record.Pair{{A: 1, B: 2}, {A: 1, B: 7}, {A: 2, B: 3}, {A: 2, B: 7}}}
	if got := PairHITComparisons(ph); got != 4 {
		t.Fatalf("pair comparisons = %d; want 4", got)
	}
}

func TestClusterComparisonsExtremes(t *testing.T) {
	// Section 6, observation 1's extreme cases for n = 6.
	// No duplicates: n singletons → n(n−1)/2 comparisons.
	if got := ClusterComparisons([]int{1, 1, 1, 1, 1, 1}); got != 15 {
		t.Fatalf("all-singletons = %d; want 15", got)
	}
	// All duplicates: one entity of n records → n−1 comparisons.
	if got := ClusterComparisons([]int{6}); got != 5 {
		t.Fatalf("one-entity = %d; want 5", got)
	}
}

func TestClusterComparisonsOrderMatters(t *testing.T) {
	// Identifying large entities first minimizes the count (the order the
	// paper's Example 4 uses; see the package comment on the prose typo).
	sizes := []int{1, 2, 3}
	best := BestOrderComparisons(sizes)
	worst := WorstOrderComparisons(sizes)
	if best > worst {
		t.Fatalf("best (%d) > worst (%d)", best, worst)
	}
	// Descending [3,2,1], n=6: (5) + (5−3) + (5−5) = 7.
	if best != 7 {
		t.Fatalf("best = %d; want 7", best)
	}
	// Ascending [1,2,3]: (5) + (5−1) + (5−3) = 11.
	if worst != 11 {
		t.Fatalf("worst = %d; want 11", worst)
	}
}

func TestDescendingIsMinimumExhaustive(t *testing.T) {
	// Verify against all permutations that descending size order attains
	// the true minimum and ascending the true maximum.
	sizes := []int{1, 2, 3, 4}
	min, max := 1<<30, -1
	for _, p := range permutations(sizes) {
		c := ClusterComparisons(p)
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if best := BestOrderComparisons(sizes); best != min {
		t.Fatalf("BestOrderComparisons = %d; true min %d", best, min)
	}
	if worst := WorstOrderComparisons(sizes); worst != max {
		t.Fatalf("WorstOrderComparisons = %d; true max %d", worst, max)
	}
}

func permutations(xs []int) [][]int {
	if len(xs) <= 1 {
		return [][]int{append([]int(nil), xs...)}
	}
	var out [][]int
	for i := range xs {
		rest := make([]int, 0, len(xs)-1)
		rest = append(rest, xs[:i]...)
		rest = append(rest, xs[i+1:]...)
		for _, p := range permutations(rest) {
			out = append(out, append([]int{xs[i]}, p...))
		}
	}
	return out
}

// Property: Equation 1 and Equation 2 agree for every entity partition.
func TestEq1EqualsEq2Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		sizes := make([]int, m)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(5)
		}
		return ClusterComparisons(sizes) == ClusterComparisonsEq2(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: comparisons bounded between n−1 (single entity) and n(n−1)/2
// (all singletons), and more duplicates never increase the count.
func TestComparisonBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(6)
		sizes := make([]int, m)
		n := 0
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(4)
			n += sizes[i]
		}
		c := BestOrderComparisons(sizes)
		return c >= n-1 && c <= n*(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEntitySizes(t *testing.T) {
	matches := record.NewPairSet(
		record.MakePair(1, 2),
		record.MakePair(2, 7), // transitive: {1,2,7} one entity
	)
	h := ClusterHIT{Records: []record.ID{1, 2, 3, 7}}
	sizes := EntitySizes(h, matches)
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 3 {
		t.Fatalf("EntitySizes = %v; want [1 3]", sizes)
	}
}

func TestEntitySizesNoMatches(t *testing.T) {
	h := ClusterHIT{Records: []record.ID{1, 2, 3}}
	sizes := EntitySizes(h, record.NewPairSet())
	if len(sizes) != 3 {
		t.Fatalf("EntitySizes = %v; want three singletons", sizes)
	}
}

func TestEntitySizesIgnoresOutsideMatches(t *testing.T) {
	// Matches to records outside the HIT must not affect the partition.
	matches := record.NewPairSet(record.MakePair(1, 99))
	h := ClusterHIT{Records: []record.ID{1, 2}}
	sizes := EntitySizes(h, matches)
	if len(sizes) != 2 {
		t.Fatalf("EntitySizes = %v; want [1 1]", sizes)
	}
}

func TestHITSetComparisons(t *testing.T) {
	matches := record.NewPairSet(
		record.MakePair(1, 2), record.MakePair(1, 7), record.MakePair(2, 7),
	)
	hits := []ClusterHIT{
		{Records: []record.ID{1, 2, 3, 7}}, // Example 4: 3 comparisons
		{Records: []record.ID{4, 5}},       // two singletons: 1 comparison
	}
	if got := HITSetComparisons(hits, matches); got != 4 {
		t.Fatalf("HITSetComparisons = %d; want 4", got)
	}
}

// Property: a HIT with more internal matches never needs more comparisons
// than the same-size HIT with fewer matches (Section 6, observation 1).
func TestMoreMatchesFewerComparisonsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		ids := make([]record.ID, n)
		for i := range ids {
			ids[i] = record.ID(i)
		}
		h := ClusterHIT{Records: ids}
		// Build an increasing chain of match sets.
		matches := record.NewPairSet()
		prev := BestOrderComparisons(EntitySizes(h, matches))
		for step := 0; step < 5; step++ {
			a := record.ID(rng.Intn(n))
			b := record.ID(rng.Intn(n))
			if a == b {
				continue
			}
			matches.Add(a, b)
			cur := BestOrderComparisons(EntitySizes(h, matches))
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
