package hitgen

import (
	"sort"

	"github.com/crowder/crowder/internal/record"
)

// This file implements the back-of-the-envelope comparison model of
// Section 6: how many record comparisons a worker performs to complete a
// HIT.
//
// A pair-based HIT needs exactly one comparison per batched pair. For a
// cluster-based HIT with n records partitioned into entities e1..em
// (identified in that order), Equation 1 gives
//
//	Σ_{i=1..m} ( n − 1 − Σ_{j<i} |e_j| )
//
// comparisons, equivalently Equation 2: (n−1)·m − Σ_{i=1..m−1} (m−i)·|e_i|.
//
// Equation 2's weights (m−i) decrease with i, so by the rearrangement
// inequality the subtraction is maximized — and the comparison count
// minimized — when entities are identified in DESCENDING size order. This
// matches the paper's own Example 4 (the size-3 entity is identified first,
// yielding the minimum 3 comparisons; identifying the singleton first would
// need 5). The prose in Section 6 says "increasing order", which is
// inconsistent with its own equation and example; we follow the math.

// PairHITComparisons returns the comparisons needed for a pair-based HIT:
// one per pair (Section 6: "each pair in the HIT is treated separately").
func PairHITComparisons(h PairHIT) int { return len(h.Pairs) }

// ClusterComparisons evaluates Equation 1 for a cluster-based HIT with
// entity sizes given in identification order. n is the total number of
// records (must equal the sum of sizes).
func ClusterComparisons(entitySizes []int) int {
	n := 0
	for _, s := range entitySizes {
		n += s
	}
	total := 0
	identified := 0
	for _, s := range entitySizes {
		total += n - 1 - identified
		identified += s
	}
	return total
}

// ClusterComparisonsEq2 evaluates the equivalent Equation 2 form:
// (n−1)·m − Σ_{i=1..m−1} (m−i)·|e_i|. Exposed separately so tests can
// verify the paper's algebraic equivalence claim.
func ClusterComparisonsEq2(entitySizes []int) int {
	n, m := 0, len(entitySizes)
	for _, s := range entitySizes {
		n += s
	}
	total := (n - 1) * m
	for i := 0; i < m-1; i++ {
		total -= (m - 1 - i) * entitySizes[i]
	}
	return total
}

// BestOrderComparisons returns the minimum comparisons over entity
// identification orders: descending size (see the package comment on the
// direction; this is the order the paper's Example 4 uses).
func BestOrderComparisons(entitySizes []int) int {
	s := append([]int(nil), entitySizes...)
	sort.Sort(sort.Reverse(sort.IntSlice(s)))
	return ClusterComparisons(s)
}

// WorstOrderComparisons returns the maximum comparisons over entity
// identification orders: ascending size.
func WorstOrderComparisons(entitySizes []int) int {
	s := append([]int(nil), entitySizes...)
	sort.Ints(s)
	return ClusterComparisons(s)
}

// EntitySizes partitions the records of a cluster-based HIT into entities
// according to a ground-truth match set, returning the entity sizes in
// ascending order (the best identification order, which Section 6 argues a
// sensible worker approximates). Records not matching anything inside the
// HIT form singleton entities. Entities are the connected components of
// the match relation restricted to the HIT (matching is transitively
// closed within a HIT by the colour-labelling interface of Figure 4).
func EntitySizes(h ClusterHIT, matches record.PairSet) []int {
	idx := make(map[record.ID]int, len(h.Records))
	for i, r := range h.Records {
		idx[r] = i
	}
	// Union-find over the HIT's records.
	parent := make([]int, len(h.Records))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for i, a := range h.Records {
		for j := i + 1; j < len(h.Records); j++ {
			if matches.Has(a, h.Records[j]) {
				union(i, j)
			}
		}
	}
	counts := make(map[int]int)
	for i := range h.Records {
		counts[find(i)]++
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Ints(sizes)
	return sizes
}

// HITSetComparisons sums the best-order comparisons across a set of
// cluster-based HITs under the given ground truth; it quantifies total
// worker effort for a generation strategy.
func HITSetComparisons(hits []ClusterHIT, matches record.PairSet) int {
	total := 0
	for _, h := range hits {
		total += BestOrderComparisons(EntitySizes(h, matches))
	}
	return total
}
