package hitgen

import (
	"testing"

	"github.com/crowder/crowder/internal/record"
)

// paperPairs returns the ten above-threshold pairs of Figure 2(a)/Figure 5,
// using the paper's 1-based record numbering.
func paperPairs() []record.Pair {
	mk := record.MakePair
	return []record.Pair{
		mk(1, 2), mk(1, 7), mk(2, 7), mk(2, 3),
		mk(3, 4), mk(4, 5), mk(4, 6), mk(4, 7),
		mk(5, 6), mk(8, 9),
	}
}

func allGenerators() []ClusterGenerator {
	return []ClusterGenerator{
		Random{Seed: 1},
		BFS{},
		DFS{},
		Approx{},
		TwoTiered{},
		TwoTiered{Pack: PackFFD},
		TwoTiered{Seed: SeedMinID},
		TwoTiered{DisableTieBreak: true},
	}
}

func TestGeneratePairHITs(t *testing.T) {
	pairs := paperPairs()
	// Example in Section 3.1: ten pairs with k=2 need five pair-based HITs.
	hits, err := GeneratePairHITs(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("got %d pair-based HITs; want 5", len(hits))
	}
	total := 0
	for _, h := range hits {
		if len(h.Pairs) > 2 {
			t.Fatalf("HIT has %d pairs; want <= 2", len(h.Pairs))
		}
		total += len(h.Pairs)
	}
	if total != len(pairs) {
		t.Fatalf("HITs contain %d pairs; want %d", total, len(pairs))
	}
}

func TestGeneratePairHITsCeiling(t *testing.T) {
	// 7 pairs, k = 3 → ⌈7/3⌉ = 3 HITs with the last holding 1 pair.
	hits, err := GeneratePairHITs(paperPairs()[:7], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 || len(hits[2].Pairs) != 1 {
		t.Fatalf("HIT layout wrong: %d HITs, last has %d pairs", len(hits), len(hits[len(hits)-1].Pairs))
	}
}

func TestGeneratePairHITsErrors(t *testing.T) {
	if _, err := GeneratePairHITs(paperPairs(), 0); err == nil {
		t.Fatal("k=0 should error")
	}
	hits, err := GeneratePairHITs(nil, 5)
	if err != nil || len(hits) != 0 {
		t.Fatal("empty input should produce no HITs")
	}
}

func TestAllGeneratorsSatisfyDefinition1(t *testing.T) {
	pairs := paperPairs()
	for _, gen := range allGenerators() {
		for _, k := range []int{2, 3, 4, 5, 10} {
			hits, err := gen.Generate(pairs, k)
			if err != nil {
				t.Fatalf("%s k=%d: %v", gen.Name(), k, err)
			}
			if err := ValidateCover(pairs, hits, k); err != nil {
				t.Errorf("%s k=%d: %v", gen.Name(), k, err)
			}
		}
	}
}

func TestAllGeneratorsRejectTinyK(t *testing.T) {
	for _, gen := range allGenerators() {
		if _, err := gen.Generate(paperPairs(), 1); err == nil {
			t.Errorf("%s should reject k=1", gen.Name())
		}
	}
}

func TestAllGeneratorsEmptyInput(t *testing.T) {
	for _, gen := range allGenerators() {
		hits, err := gen.Generate(nil, 4)
		if err != nil {
			t.Errorf("%s on empty input: %v", gen.Name(), err)
		}
		if len(hits) != 0 {
			t.Errorf("%s emitted %d HITs for empty input", gen.Name(), len(hits))
		}
	}
}

func TestTwoTieredPaperOptimal(t *testing.T) {
	// Section 3.2/5.1: the optimal solution for the ten pairs with k=4 is
	// three cluster-based HITs; the two-tiered approach achieves it.
	hits, err := TwoTiered{}.Generate(paperPairs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateCover(paperPairs(), hits, 4); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		for _, h := range hits {
			t.Logf("HIT: %v", h.Records)
		}
		t.Fatalf("two-tiered generated %d HITs; want the optimal 3", len(hits))
	}
}

func TestTwoTieredPartitioningExample3(t *testing.T) {
	// Example 3: partitioning the LCC {r1..r7} with k=4 yields the SCCs
	// {r3,r4,r5,r6}, {r1,r2,r3,r7} and {r4,r7}. The first grows from the
	// max-degree seed r4 by adding r6, r5, r3 in that order.
	var lccPairs []record.Pair
	for _, p := range paperPairs() {
		if p.A <= 7 && p.B <= 7 {
			lccPairs = append(lccPairs, p)
		}
	}
	g := buildGraph(lccPairs)
	parts := TwoTiered{}.partition(g, 4)
	if len(parts) != 3 {
		t.Fatalf("partitioning produced %d SCCs; want 3: %v", len(parts), parts)
	}
	want := [][]record.ID{
		{3, 4, 5, 6},
		{1, 2, 3, 7},
		{4, 7},
	}
	for i, w := range want {
		if len(parts[i]) != len(w) {
			t.Fatalf("SCC %d = %v; want %v", i, parts[i], w)
		}
		for j := range w {
			if parts[i][j] != w[j] {
				t.Fatalf("SCC %d = %v; want %v", i, parts[i], w)
			}
		}
	}
}

func TestApproxExample2(t *testing.T) {
	// Example 2: SEQ has 19 elements (9 vertices + 10 edges); with k=4 the
	// algorithm makes ⌈19/3⌉ = 7 cluster-based HITs.
	hits, err := Approx{}.Generate(paperPairs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 7 {
		t.Fatalf("approximation generated %d HITs; want 7", len(hits))
	}
	if err := ValidateCover(paperPairs(), hits, 4); err != nil {
		t.Fatal(err)
	}
}

func TestTwoTieredBeatsApproximation(t *testing.T) {
	// Section 4: the approximation generates "many more" HITs than the
	// two-tiered approach (7 vs 3 on the worked example).
	two, err := TwoTiered{}.Generate(paperPairs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	app, err := Approx{}.Generate(paperPairs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(two) >= len(app) {
		t.Fatalf("two-tiered (%d) should beat approximation (%d)", len(two), len(app))
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a, _ := Random{Seed: 42}.Generate(paperPairs(), 4)
	b, _ := Random{Seed: 42}.Generate(paperPairs(), 4)
	if len(a) != len(b) {
		t.Fatal("same seed produced different HIT counts")
	}
	for i := range a {
		if len(a[i].Records) != len(b[i].Records) {
			t.Fatal("same seed produced different HITs")
		}
		for j := range a[i].Records {
			if a[i].Records[j] != b[i].Records[j] {
				t.Fatal("same seed produced different HITs")
			}
		}
	}
}

func TestClusterHITCoveredPairs(t *testing.T) {
	h := ClusterHIT{Records: []record.ID{1, 2, 3, 7}}
	cov := h.CoveredPairs(paperPairs())
	// Pairs inside {1,2,3,7}: (1,2), (1,7), (2,7), (2,3).
	if len(cov) != 4 {
		t.Fatalf("covered %d pairs; want 4", len(cov))
	}
}

func TestValidateCoverDetectsViolations(t *testing.T) {
	pairs := paperPairs()
	// Oversized HIT.
	big := []ClusterHIT{{Records: []record.ID{1, 2, 3, 4, 5, 6, 7, 8, 9}}}
	if err := ValidateCover(pairs, big, 4); err == nil {
		t.Error("oversized HIT should fail validation")
	}
	// Valid sizes but missing coverage.
	partial := []ClusterHIT{{Records: []record.ID{1, 2, 3, 7}}}
	if err := ValidateCover(pairs, partial, 4); err == nil {
		t.Error("uncovered pairs should fail validation")
	}
	// Duplicate record inside a HIT.
	dup := []ClusterHIT{{Records: []record.ID{1, 1}}}
	if err := ValidateCover(nil, dup, 4); err == nil {
		t.Error("duplicate record should fail validation")
	}
}

func TestBFSvsDFSBothValid(t *testing.T) {
	// A path graph: BFS and DFS differ in order but both must cover.
	var pairs []record.Pair
	for i := 0; i < 12; i++ {
		pairs = append(pairs, record.MakePair(record.ID(i), record.ID(i+1)))
	}
	for _, gen := range []ClusterGenerator{BFS{}, DFS{}} {
		hits, err := gen.Generate(pairs, 4)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateCover(pairs, hits, 4); err != nil {
			t.Errorf("%s: %v", gen.Name(), err)
		}
	}
}

func TestTwoTieredStarGraph(t *testing.T) {
	// A star with 20 leaves and k=5: each HIT holds the hub + 4 leaves, so
	// the optimum is ⌈20/4⌉ = 5 HITs.
	var pairs []record.Pair
	for i := 1; i <= 20; i++ {
		pairs = append(pairs, record.MakePair(0, record.ID(i)))
	}
	hits, err := TwoTiered{}.Generate(pairs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateCover(pairs, hits, 5); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 5 {
		t.Fatalf("star graph needed %d HITs; want 5", len(hits))
	}
}

func TestTwoTieredManySmallComponents(t *testing.T) {
	// 10 disjoint edges with k=6: each HIT can hold 3 edges → 4 HITs.
	var pairs []record.Pair
	for i := 0; i < 20; i += 2 {
		pairs = append(pairs, record.MakePair(record.ID(i), record.ID(i+1)))
	}
	hits, err := TwoTiered{}.Generate(pairs, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateCover(pairs, hits, 6); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 4 {
		t.Fatalf("needed %d HITs; want 4 (= ⌈10·2/6⌉)", len(hits))
	}
}
