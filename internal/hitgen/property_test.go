package hitgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/crowder/crowder/internal/record"
)

// randomPairs draws a random pair set over n records.
func randomPairs(rng *rand.Rand, n, m int) []record.Pair {
	seen := record.NewPairSet()
	for i := 0; i < m; i++ {
		a := record.ID(rng.Intn(n))
		b := record.ID(rng.Intn(n))
		if a != b {
			seen.Add(a, b)
		}
	}
	return seen.Slice()
}

// Property: every generator satisfies Definition 1 on random inputs for
// random k — HITs of size ≤ k covering every pair.
func TestGeneratorsDefinition1Property(t *testing.T) {
	gens := allGenerators()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		m := rng.Intn(80)
		k := 2 + rng.Intn(9)
		pairs := randomPairs(rng, n, m)
		for _, gen := range gens {
			hits, err := gen.Generate(pairs, k)
			if err != nil {
				t.Logf("%s: %v", gen.Name(), err)
				return false
			}
			if err := ValidateCover(pairs, hits, k); err != nil {
				t.Logf("%s on seed %d (n=%d m=%d k=%d): %v", gen.Name(), seed, n, m, k, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the two-tiered approach essentially never needs more HITs
// than Random. On dense random graphs (which the machine pass never
// produces — pruning keeps the pair graph sparse) the greedy peel can
// trail a lucky Random run by one HIT, so the property allows that slack;
// on the paper-scale sparse workloads the dominance is strict
// (TestFigure10TwoTieredWins).
func TestTwoTieredNotWorseThanRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		m := 4 + rng.Intn(100)
		k := 3 + rng.Intn(8)
		pairs := randomPairs(rng, n, m)
		two, err := TwoTiered{}.Generate(pairs, k)
		if err != nil {
			return false
		}
		rnd, err := Random{Seed: seed}.Generate(pairs, k)
		if err != nil {
			return false
		}
		return len(two) <= len(rnd)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: HIT counts never increase with k for the two-tiered approach
// (a larger cluster budget can only help).
func TestTwoTieredMonotoneInKProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := randomPairs(rng, 30, 60)
		prev := 1 << 30
		for _, k := range []int{3, 5, 8, 12} {
			hits, err := TwoTiered{}.Generate(pairs, k)
			if err != nil {
				return false
			}
			if len(hits) > prev {
				return false
			}
			prev = len(hits)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: every pair-based batching covers each input pair exactly once.
func TestPairHITPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pairs := randomPairs(rng, 25, rng.Intn(60))
		k := 1 + rng.Intn(10)
		hits, err := GeneratePairHITs(pairs, k)
		if err != nil {
			return false
		}
		seen := record.NewPairSet()
		total := 0
		for _, h := range hits {
			if len(h.Pairs) > k || len(h.Pairs) == 0 {
				return false
			}
			total += len(h.Pairs)
			for _, p := range h.Pairs {
				if seen.Has(p.A, p.B) {
					return false // duplicated across HITs
				}
				seen.Add(p.A, p.B)
			}
		}
		return total == len(pairs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Failure injection: a generator fed pairs with huge sparse IDs must still
// produce a valid cover (no dense-ID assumptions).
func TestGeneratorsSparseIDs(t *testing.T) {
	pairs := []record.Pair{
		record.MakePair(1_000_000, 2_000_000),
		record.MakePair(2_000_000, 3_000_000),
		record.MakePair(7, 1_000_000),
	}
	for _, gen := range allGenerators() {
		hits, err := gen.Generate(pairs, 4)
		if err != nil {
			t.Fatalf("%s: %v", gen.Name(), err)
		}
		if err := ValidateCover(pairs, hits, 4); err != nil {
			t.Errorf("%s: %v", gen.Name(), err)
		}
	}
}

// Failure injection: duplicate and non-canonical input pairs must not
// break covering or double-count.
func TestGeneratorsDuplicateInputPairs(t *testing.T) {
	pairs := []record.Pair{
		{A: 1, B: 2}, {A: 2, B: 1}, {A: 1, B: 2}, // same pair three ways
		{A: 3, B: 4},
	}
	for _, gen := range allGenerators() {
		hits, err := gen.Generate(pairs, 4)
		if err != nil {
			t.Fatalf("%s: %v", gen.Name(), err)
		}
		if err := ValidateCover(pairs, hits, 4); err != nil {
			t.Errorf("%s: %v", gen.Name(), err)
		}
	}
}
