package dispatch

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram resolution: durations are bucketed by octave (power of two
// microseconds) with linear sub-buckets inside each octave, bounding
// quantile error to ~1/subPerOctave. Recording is a single atomic add —
// the claim hot path never takes a lock for metrics.
const (
	histOctaves      = 40 // 1µs .. ~2^40µs (~12.7 days)
	histSubPerOctave = 16 // ≤ 6.25% relative quantization error
	histBuckets      = histOctaves * histSubPerOctave
)

// Histogram is a lock-free log-linear latency histogram. The claim
// dispatcher records every claim's queueing delay into one of these per
// session; /metrics and the tenant bench read the same p50/p99 from it.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumUs   atomic.Int64
}

func histBucketOf(us int64) int {
	if us < 1 {
		us = 1
	}
	oct := bits.Len64(uint64(us)) - 1
	if oct >= histOctaves {
		return histBuckets - 1
	}
	// Position within [2^oct, 2^(oct+1)) scaled to sub-bucket count.
	sub := int(((us - (1 << oct)) * histSubPerOctave) >> oct)
	if sub >= histSubPerOctave {
		sub = histSubPerOctave - 1
	}
	return oct*histSubPerOctave + sub
}

// histBucketMid returns a representative duration for bucket i: the
// midpoint of the bucket's range.
func histBucketMid(i int) time.Duration {
	oct := i / histSubPerOctave
	sub := i % histSubPerOctave
	lo := int64(1) << oct
	width := lo / histSubPerOctave
	if width < 1 {
		width = 1
	}
	us := lo + int64(sub)*lo/histSubPerOctave + width/2
	return time.Duration(us) * time.Microsecond
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	us := d.Microseconds()
	h.buckets[histBucketOf(us)].Add(1)
	h.count.Add(1)
	if us > 0 {
		h.sumUs.Add(us)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed duration.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUs.Load()/n) * time.Microsecond
}

// Quantile returns the approximate q-quantile (q in [0,1]) of the
// recorded durations, or 0 when empty. Concurrent writers make the
// snapshot approximate; for monitoring and bench gating that is fine.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen > target {
			return histBucketMid(i)
		}
	}
	return histBucketMid(histBuckets - 1)
}
