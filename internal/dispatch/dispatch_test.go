package dispatch

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/record"
)

func postPairs(t *testing.T, q *crowd.Queue, n, assignments int) []crowd.HIT {
	t.Helper()
	gen := make([][]record.Pair, n)
	for i := range gen {
		gen[i] = []record.Pair{record.MakePair(record.ID(2*i), record.ID(2*i+1))}
	}
	hits := crowd.PairHITsFromGen(gen, assignments)
	if err := q.Post(context.Background(), hits); err != nil {
		t.Fatal(err)
	}
	return hits
}

// TestDRRWeightedFairness: with weights 1 and 3 and both queues deep,
// a stream of claims lands 1:3 between the sessions.
func TestDRRWeightedFairness(t *testing.T) {
	d := NewDispatcher()
	qa := crowd.NewQueue(crowd.QueueOptions{})
	qb := crowd.NewQueue(crowd.QueueOptions{})
	postPairs(t, qa, 60, 1)
	postPairs(t, qb, 60, 1)
	if err := d.Register(Session{Tenant: "light", Table: "a", Queue: qa, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(Session{Tenant: "heavy", Table: "b", Queue: qb, Weight: 3}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		// A fresh worker per claim keeps the per-worker replication bar
		// out of the fairness measurement.
		_, s, ok, err := d.Claim(context.Background(), fmt.Sprintf("w%d", i), 0)
		if err != nil || !ok {
			t.Fatalf("claim %d failed: ok=%v err=%v", i, ok, err)
		}
		counts[s.Table]++
	}
	if counts["a"] != 10 || counts["b"] != 30 {
		t.Fatalf("weighted rotation gave %v; want a:10 b:30", counts)
	}
}

// TestDRRSkipsUnclaimable: a session with nothing claimable forfeits
// its turn instead of blocking the rotation; when its queue fills the
// rotation picks it back up.
func TestDRRSkipsUnclaimable(t *testing.T) {
	d := NewDispatcher()
	qa := crowd.NewQueue(crowd.QueueOptions{})
	qb := crowd.NewQueue(crowd.QueueOptions{})
	if err := d.Register(Session{Tenant: "t1", Table: "empty", Queue: qa, Weight: 5}); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(Session{Tenant: "t2", Table: "full", Queue: qb, Weight: 1}); err != nil {
		t.Fatal(err)
	}
	postPairs(t, qb, 4, 1)
	for i := 0; i < 4; i++ {
		_, s, ok, _ := d.Claim(context.Background(), fmt.Sprintf("w%d", i), 0)
		if !ok || s.Table != "full" {
			t.Fatalf("claim %d = (%v, %q); want from \"full\"", i, ok, s.Table)
		}
	}
	if _, _, ok, _ := d.Claim(context.Background(), "w9", 0); ok {
		t.Fatal("claim succeeded with both queues drained")
	}
}

// TestClaimBlocksAcrossSessions: a worker parked in a cross-session
// claim wakes when any registered queue receives a post.
func TestClaimBlocksAcrossSessions(t *testing.T) {
	d := NewDispatcher()
	qa := crowd.NewQueue(crowd.QueueOptions{})
	qb := crowd.NewQueue(crowd.QueueOptions{})
	if err := d.Register(Session{Tenant: "t1", Table: "a", Queue: qa}); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(Session{Tenant: "t2", Table: "b", Queue: qb}); err != nil {
		t.Fatal(err)
	}
	type got struct {
		table string
		ok    bool
	}
	done := make(chan got, 1)
	go func() {
		_, s, ok, _ := d.Claim(context.Background(), "w", 10*time.Second)
		done <- got{s.Table, ok}
	}()
	time.Sleep(20 * time.Millisecond)
	postPairs(t, qb, 1, 1)
	select {
	case g := <-done:
		if !g.ok || g.table != "b" {
			t.Fatalf("woken claim = %+v; want ok from \"b\"", g)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cross-session claim never woke on post")
	}

	// Bounded wait on empty queues times out false, and cancellation
	// surfaces as an error.
	if _, _, ok, err := d.Claim(context.Background(), "w2", 20*time.Millisecond); ok || err != nil {
		t.Fatalf("timed-out claim = (%v, %v); want (false, nil)", ok, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, _, _, err := d.Claim(ctx, "w3", 10*time.Second); err != context.Canceled {
		t.Fatalf("cancelled claim returned %v; want context.Canceled", err)
	}
}

// TestAnswerRoutesByToken: global answers land on the claiming
// session's queue; unknown tokens and double answers error.
func TestAnswerRoutesByToken(t *testing.T) {
	d := NewDispatcher()
	q := crowd.NewQueue(crowd.QueueOptions{})
	if err := d.Register(Session{Tenant: "t", Table: "a", Queue: q}); err != nil {
		t.Fatal(err)
	}
	hits := postPairs(t, q, 1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream := q.Collect(ctx)

	c, s, ok, err := d.Claim(context.Background(), "w", 0)
	if err != nil || !ok {
		t.Fatalf("claim: ok=%v err=%v", ok, err)
	}
	if s.Table != "a" || c.HIT.ID != hits[0].ID {
		t.Fatalf("claimed %d from %q; want HIT %d from \"a\"", c.HIT.ID, s.Table, hits[0].ID)
	}
	var vs []crowd.Verdict
	for _, p := range c.HIT.Pairs {
		vs = append(vs, crowd.Verdict{A: p.A, B: p.B, Match: true})
	}
	if _, err := d.Answer(c.Token, vs); err != nil {
		t.Fatalf("answer: %v", err)
	}
	select {
	case a := <-stream:
		if a.HIT != c.HIT.ID {
			t.Fatalf("assignment for HIT %d; want %d", a.HIT, c.HIT.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("answer never reached the session's stream")
	}
	if _, err := d.Answer(c.Token, vs); err == nil {
		t.Fatal("second answer on a consumed token succeeded")
	}
	if _, err := d.Answer("no-such-token", vs); err == nil {
		t.Fatal("answer with unknown token succeeded")
	}
}

// TestPurgeTokens: lapsed claims fall out of the token index.
func TestPurgeTokens(t *testing.T) {
	d := NewDispatcher()
	now := time.Now()
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	q := crowd.NewQueue(crowd.QueueOptions{Lease: time.Second, Now: clock})
	if err := d.Register(Session{Tenant: "t", Table: "a", Queue: q}); err != nil {
		t.Fatal(err)
	}
	postPairs(t, q, 1, 1)
	c, _, ok, _ := d.Claim(context.Background(), "w", 0)
	if !ok {
		t.Fatal("claim failed")
	}
	mu.Lock()
	now = now.Add(2 * time.Second) // lease lapses
	mu.Unlock()
	d.PurgeTokens()
	if _, err := d.Answer(c.Token, nil); err == nil {
		t.Fatal("answer on a purged token succeeded")
	}
}

// TestRegisterValidation: duplicate table names and nil queues reject.
func TestRegisterValidation(t *testing.T) {
	d := NewDispatcher()
	q := crowd.NewQueue(crowd.QueueOptions{})
	if err := d.Register(Session{Table: "a", Queue: q}); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(Session{Table: "a", Queue: q}); err == nil {
		t.Fatal("duplicate table registration succeeded")
	}
	if err := d.Register(Session{Table: "b"}); err == nil {
		t.Fatal("nil-queue registration succeeded")
	}
	st := d.Stats()
	if len(st) != 1 || st[0].Table != "a" || st[0].Weight != 1 {
		t.Fatalf("stats = %+v; want one session \"a\" with default weight 1", st)
	}
}

// TestAdmissionBoundsConcurrency: with 2 slots and 3 tenants × 3 jobs,
// at most 2 jobs run at once, every job runs, per-tenant order is FIFO,
// and freed slots rotate across tenants.
func TestAdmissionBoundsConcurrency(t *testing.T) {
	a := NewAdmission(2)
	var running, peak, done atomic.Int64
	var mu sync.Mutex
	ran := map[string][]int{}
	var wg sync.WaitGroup
	for _, tenant := range []string{"t1", "t2", "t3"} {
		for j := 0; j < 3; j++ {
			wg.Add(1)
			go func(tenant string, j int) {
				defer wg.Done()
				release, _, err := a.Acquire(context.Background(), tenant)
				if err != nil {
					t.Error(err)
					return
				}
				if r := running.Add(1); r > peak.Load() {
					peak.Store(r)
				}
				mu.Lock()
				ran[tenant] = append(ran[tenant], j)
				mu.Unlock()
				time.Sleep(2 * time.Millisecond)
				running.Add(-1)
				done.Add(1)
				release()
			}(tenant, j)
			time.Sleep(time.Millisecond) // stable enqueue order per tenant
		}
	}
	wg.Wait()
	if done.Load() != 9 {
		t.Fatalf("%d jobs finished; want 9", done.Load())
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeded the 2-slot bound", p)
	}
	mu.Lock()
	defer mu.Unlock()
	for tenant, seq := range ran {
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				t.Fatalf("tenant %s ran out of FIFO order: %v", tenant, seq)
			}
		}
	}
	if s := a.Stats(); s.InUse != 0 || s.Queued != 0 {
		t.Fatalf("post-drain stats = %+v; want idle", s)
	}
}

// TestAdmissionCancel: a queued job whose context is cancelled leaves
// the queue without consuming a slot.
func TestAdmissionCancel(t *testing.T) {
	a := NewAdmission(1)
	release, _, err := a.Acquire(context.Background(), "t1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := a.Acquire(ctx, "t2")
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v; want context.Canceled", err)
	}
	release()
	// The slot is free again for a fresh job.
	release2, waited, err := a.Acquire(context.Background(), "t3")
	if err != nil || waited != 0 {
		t.Fatalf("post-cancel acquire: waited=%v err=%v; want immediate", waited, err)
	}
	release2()
}

// TestBucketThrottles: a 100/s bucket with burst 1 spaces waits out;
// nil buckets and oversized bursts never block forever.
func TestBucketThrottles(t *testing.T) {
	var nilBucket *Bucket
	if err := nilBucket.Wait(context.Background(), 100); err != nil {
		t.Fatalf("nil bucket errored: %v", err)
	}
	if b := NewBucket(0, 5); b != nil {
		t.Fatal("rate 0 should mean unlimited (nil bucket)")
	}
	b := NewBucket(1000, 1)
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := b.Wait(context.Background(), 1); err != nil {
			t.Fatal(err)
		}
	}
	// Burst covers the first token; the remaining 4 must wait ~1ms each.
	if e := time.Since(start); e < 3*time.Millisecond {
		t.Fatalf("5 tokens at 1000/s burst 1 took %v; want >= ~4ms of pacing", e)
	}
	// A request far above burst goes into debt instead of deadlocking.
	if err := NewBucket(1e6, 1).Wait(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	// Cancellation interrupts a long wait.
	slow := NewBucket(0.1, 1)
	if err := slow.Wait(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := slow.Wait(ctx, 1); err != context.DeadlineExceeded {
		t.Fatalf("cancelled bucket wait returned %v; want deadline exceeded", err)
	}
}

// TestHistogramQuantiles: quantiles land within the histogram's
// documented ~6% resolution.
func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should read zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d; want 1000", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.99, 990 * time.Millisecond}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := time.Duration(float64(c.want) * 0.90)
		hi := time.Duration(float64(c.want) * 1.10)
		if got < lo || got > hi {
			t.Fatalf("p%v = %v; want within 10%% of %v", c.q*100, got, c.want)
		}
	}
	mean := h.Mean()
	if mean < 450*time.Millisecond || mean > 550*time.Millisecond {
		t.Fatalf("mean = %v; want ~500ms", mean)
	}
}

// TestDispatcherConcurrent hammers the claim plane from many workers
// across several sessions under -race: every posted assignment is
// answered exactly once and lands on its own session's stream.
func TestDispatcherConcurrent(t *testing.T) {
	d := NewDispatcher()
	const sessions = 4
	const hitsPer = 25
	type sess struct {
		q      *crowd.Queue
		stream <-chan crowd.Assignment
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ss := make([]*sess, sessions)
	for i := range ss {
		q := crowd.NewQueue(crowd.QueueOptions{})
		ss[i] = &sess{q: q, stream: q.Collect(ctx)}
		if err := d.Register(Session{
			Tenant: fmt.Sprintf("tenant%d", i),
			Table:  fmt.Sprintf("table%d", i),
			Queue:  q,
			Weight: 1 + i%2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Post from separate goroutines while workers are already claiming.
	var wg sync.WaitGroup
	for i, s := range ss {
		wg.Add(1)
		go func(i int, s *sess) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * time.Millisecond)
			postPairs(t, s.q, hitsPer, 1)
		}(i, s)
	}
	var answered atomic.Int64
	need := int64(sessions * hitsPer)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for answered.Load() < need {
				c, _, ok, err := d.Claim(ctx, name, 50*time.Millisecond)
				if err != nil {
					return
				}
				if !ok {
					continue
				}
				var vs []crowd.Verdict
				for _, p := range c.HIT.Pairs {
					vs = append(vs, crowd.Verdict{A: p.A, B: p.B, Match: p.A%2 == p.B%2})
				}
				if _, err := d.Answer(c.Token, vs); err != nil {
					t.Errorf("answer: %v", err)
					return
				}
				answered.Add(1)
			}
		}(w)
	}
	got := make([]int, sessions)
	deadline := time.After(30 * time.Second)
	for total := 0; total < sessions*hitsPer; {
		progressed := false
		for i, s := range ss {
			select {
			case <-s.stream:
				got[i]++
				total++
				progressed = true
			default:
			}
		}
		if !progressed {
			select {
			case <-deadline:
				t.Fatalf("streams stalled at %v of %d", got, sessions*hitsPer)
			case <-time.After(time.Millisecond):
			}
		}
	}
	wg.Wait()
	for i, n := range got {
		if n != hitsPer {
			t.Fatalf("session %d delivered %d assignments; want %d", i, n, hitsPer)
		}
	}
}
