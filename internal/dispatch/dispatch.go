// Package dispatch is crowderd's cross-session claim plane. It turns N
// independent per-table HIT queues into one multi-tenant service:
// workers call a single claim endpoint (no table in the path) and the
// dispatcher hands them the next assignment chosen by deficit-round-
// robin across sessions, weighted by per-tenant priority — so one
// tenant's 10k-HIT resolve cannot starve another tenant's 5-HIT delta.
// Workers are the scarce resource in CrowdER's cost model; this package
// decides whose work they see next.
//
// The package also owns the service's back-pressure primitives: a
// bounded resolve-job admission queue (Admission) and per-tenant
// token-bucket HIT budgets (Bucket), plus the lock-free latency
// histograms (Histogram) that /metrics and the tenant bench both read.
package dispatch

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/crowder/crowder/internal/crowd"
)

// Session describes one registered table's queue to the dispatcher.
type Session struct {
	// Tenant is the owning tenant; fairness and budgets are per tenant.
	Tenant string
	// Table is the table name (unique server-wide).
	Table string
	// Queue is the table's claim/answer queue backend.
	Queue *crowd.Queue
	// Weight is the session's deficit-round-robin weight (min 1): how
	// many consecutive claims the session may serve per rotation. Higher
	// priority tenants set a larger weight.
	Weight int
}

// entry is a registered session plus its hot-path bookkeeping. Counters
// are atomics: the claim and answer paths never take a lock to update
// stats, and /metrics reads them without stopping the world.
type entry struct {
	Session
	claims   atomic.Int64
	answers  atomic.Int64
	waitHist *Histogram // queueing delay (post → claim) per session
}

// Dispatcher multiplexes many session queues behind one claim plane.
// Membership and the DRR cursor live behind a single short-hold mutex;
// everything measured (claims, answers, latency) is per-session atomics.
type Dispatcher struct {
	mu      sync.Mutex
	ring    []*entry          // rotation order (registration order)
	byName  map[string]*entry // table name → entry
	cursor  int               // ring index currently being served
	credit  int               // remaining claims for ring[cursor] this rotation
	byToken sync.Map          // claim token → *entry, routes global answers

	// bmu guards only the wake broadcast. Queue wake hooks fire with the
	// queue's own lock held, and the claim path holds mu while probing
	// queues — a listener that needed mu would deadlock. bmu is leaf-only.
	bmu  sync.Mutex
	wake chan struct{}
}

// NewDispatcher builds an empty claim plane.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{
		byName: make(map[string]*entry),
		wake:   make(chan struct{}),
	}
}

// Register adds a session to the rotation and hooks its queue's wake
// signal so workers blocked in a cross-session Claim learn about posts
// to any table. Registering an existing table name is an error.
func (d *Dispatcher) Register(s Session) error {
	if s.Queue == nil {
		return fmt.Errorf("dispatch: session %q has no queue", s.Table)
	}
	if s.Weight < 1 {
		s.Weight = 1
	}
	e := &entry{Session: s, waitHist: &Histogram{}}
	d.mu.Lock()
	if _, dup := d.byName[s.Table]; dup {
		d.mu.Unlock()
		return fmt.Errorf("dispatch: table %q already registered", s.Table)
	}
	d.byName[s.Table] = e
	d.ring = append(d.ring, e)
	d.mu.Unlock()
	// The hook runs with the queue's lock held; it touches only bmu.
	s.Queue.Notify(d.broadcast)
	// A registered queue may already hold open HITs.
	d.broadcast()
	return nil
}

// broadcast wakes every worker blocked in Claim so they re-probe the
// rotation. Leaf lock only — safe to call from queue wake hooks.
func (d *Dispatcher) broadcast() {
	d.bmu.Lock()
	close(d.wake)
	d.wake = make(chan struct{})
	d.bmu.Unlock()
}

func (d *Dispatcher) wakeCh() <-chan struct{} {
	d.bmu.Lock()
	ch := d.wake
	d.bmu.Unlock()
	return ch
}

// tryClaim runs one deficit-round-robin pass: starting at the cursor,
// probe each session's queue until a claim lands. A session serves up
// to Weight consecutive claims before the cursor moves on — the weighted
// fairness that keeps a heavy tenant from monopolizing the pool — and an
// unclaimable session forfeits the rest of its turn.
func (d *Dispatcher) tryClaim(worker string) (*crowd.Claimed, *entry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.ring)
	if n == 0 {
		return nil, nil
	}
	if d.cursor >= n {
		d.cursor, d.credit = 0, 0
	}
	if d.credit <= 0 {
		d.credit = d.ring[d.cursor].Weight
	}
	for probed := 0; probed < n; probed++ {
		e := d.ring[d.cursor]
		if c, ok := e.Queue.Claim(worker); ok {
			d.credit--
			if d.credit <= 0 {
				d.advanceLocked()
			}
			return c, e
		}
		d.advanceLocked()
	}
	return nil, nil
}

// advanceLocked moves the cursor to the next session, refreshing credit.
func (d *Dispatcher) advanceLocked() {
	d.cursor++
	if d.cursor >= len(d.ring) {
		d.cursor = 0
	}
	d.credit = d.ring[d.cursor].Weight
}

// Claim hands the worker the next assignment across all sessions, long-
// polling up to maxWait when nothing is claimable (maxWait <= 0 is
// non-blocking). The chosen session is returned so the transport can
// tell the worker which table the HIT belongs to. The bool is false
// when the wait expired empty; the error reports ctx cancellation only.
func (d *Dispatcher) Claim(ctx context.Context, worker string, maxWait time.Duration) (*crowd.Claimed, Session, bool, error) {
	var timeout <-chan time.Time
	if maxWait > 0 {
		t := time.NewTimer(maxWait)
		defer t.Stop()
		timeout = t.C
	}
	for {
		// Snapshot the wake channel before probing: a post that lands
		// between the probe and the select closes this snapshot, so the
		// wakeup cannot be lost.
		wake := d.wakeCh()
		if c, e := d.tryClaim(worker); c != nil {
			e.claims.Add(1)
			e.waitHist.Record(c.Waited)
			d.byToken.Store(c.Token, e)
			return c, e.Session, true, nil
		}
		if maxWait <= 0 {
			return nil, Session{}, false, nil
		}
		select {
		case <-ctx.Done():
			return nil, Session{}, false, ctx.Err()
		case <-timeout:
			return nil, Session{}, false, nil
		case <-wake:
		}
	}
}

// Answer routes a globally-claimed token to its session's queue. Tokens
// issued by per-table claims are not known here; those answers go to
// the table's own answer endpoint, which stays supported.
func (d *Dispatcher) Answer(token string, verdicts []crowd.Verdict) (Session, error) {
	v, ok := d.byToken.Load(token)
	if !ok {
		return Session{}, fmt.Errorf("dispatch: unknown or expired claim token %q", token)
	}
	e := v.(*entry)
	if err := e.Queue.Answer(token, verdicts); err != nil {
		// Lease lapsed (or the run was retracted) between claim and
		// answer; the token is dead either way.
		d.byToken.Delete(token)
		return Session{}, err
	}
	d.byToken.Delete(token)
	e.answers.Add(1)
	return e.Session, nil
}

// PurgeTokens drops token routes whose claims lapsed without an answer.
// crowderd's sweep ticker calls it so the token index tracks the queues'
// own lease expiry instead of growing without bound.
func (d *Dispatcher) PurgeTokens() {
	d.byToken.Range(func(k, v any) bool {
		if !v.(*entry).Queue.ClaimLive(k.(string)) {
			d.byToken.Delete(k)
		}
		return true
	})
}

// SessionStats is one session's /metrics snapshot.
type SessionStats struct {
	Tenant          string  `json:"tenant"`
	Table           string  `json:"table"`
	Weight          int     `json:"weight"`
	Claims          int64   `json:"claims"`
	Answers         int64   `json:"answers"`
	OpenHITs        int     `json:"open_hits"`
	OpenAssignments int     `json:"open_assignments"`
	ClaimWaitP50Ms  float64 `json:"claim_wait_p50_ms"`
	ClaimWaitP99Ms  float64 `json:"claim_wait_p99_ms"`
	ClaimWaitMeanMs float64 `json:"claim_wait_mean_ms"`
}

// Stats snapshots every registered session, sorted by tenant then
// table for stable output.
func (d *Dispatcher) Stats() []SessionStats {
	d.mu.Lock()
	ring := make([]*entry, len(d.ring))
	copy(ring, d.ring)
	d.mu.Unlock()
	out := make([]SessionStats, 0, len(ring))
	for _, e := range ring {
		hits, asg := e.Queue.Depth()
		out = append(out, SessionStats{
			Tenant:          e.Tenant,
			Table:           e.Table,
			Weight:          e.Weight,
			Claims:          e.claims.Load(),
			Answers:         e.answers.Load(),
			OpenHITs:        hits,
			OpenAssignments: asg,
			ClaimWaitP50Ms:  float64(e.waitHist.Quantile(0.50)) / float64(time.Millisecond),
			ClaimWaitP99Ms:  float64(e.waitHist.Quantile(0.99)) / float64(time.Millisecond),
			ClaimWaitMeanMs: float64(e.waitHist.Mean()) / float64(time.Millisecond),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tenant != out[j].Tenant {
			return out[i].Tenant < out[j].Tenant
		}
		return out[i].Table < out[j].Table
	})
	return out
}
