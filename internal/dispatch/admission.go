package dispatch

import (
	"context"
	"sync"
	"time"
)

// Admission bounds how many resolve jobs run concurrently server-wide.
// Each tenant's waiting jobs form a FIFO; freed slots are granted
// round-robin across tenants with waiters, so a tenant that queued
// fifty resolves cannot monopolize the worker pool — its jobs interleave
// one-for-one with everyone else's while staying in order among
// themselves. This replaces the one-goroutine-per-job free-for-all: an
// over-budget tenant queues, it does not degrade neighbors.
type Admission struct {
	mu      sync.Mutex
	slots   int
	inUse   int
	waiters map[string][]*admWaiter // tenant → FIFO of queued jobs
	ring    []string                // tenants with waiters, grant rotation order
	cursor  int
	hist    *Histogram // admission-queue wait, served on /metrics
	now     func() time.Time
}

type admWaiter struct {
	ch       chan struct{} // closed on grant
	granted  bool
	enqueued time.Time
}

// NewAdmission builds an admission queue with the given number of
// concurrent-resolve slots (min 1).
func NewAdmission(slots int) *Admission {
	if slots < 1 {
		slots = 1
	}
	return &Admission{
		slots:   slots,
		waiters: make(map[string][]*admWaiter),
		hist:    &Histogram{},
		now:     time.Now,
	}
}

// Acquire blocks until the tenant's job may run or ctx is cancelled.
// On success it returns a release function that must be called exactly
// once when the job finishes (any terminal state), plus how long the
// job waited in the admission queue.
func (a *Admission) Acquire(ctx context.Context, tenant string) (release func(), waited time.Duration, err error) {
	a.mu.Lock()
	if a.inUse < a.slots && len(a.ring) == 0 {
		// Free slot and nobody queued ahead: run immediately.
		a.inUse++
		a.mu.Unlock()
		a.hist.Record(0)
		return a.release, 0, nil
	}
	w := &admWaiter{ch: make(chan struct{}), enqueued: a.now()}
	if len(a.waiters[tenant]) == 0 {
		a.ring = append(a.ring, tenant)
	}
	a.waiters[tenant] = append(a.waiters[tenant], w)
	a.mu.Unlock()

	select {
	case <-w.ch:
		waited = a.now().Sub(w.enqueued)
		a.hist.Record(waited)
		return a.release, waited, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// Grant raced the cancellation: the slot transferred to us
			// before we noticed ctx was done. Hand it onward.
			a.releaseLocked()
			a.mu.Unlock()
			return nil, 0, ctx.Err()
		}
		a.removeLocked(tenant, w)
		a.mu.Unlock()
		return nil, 0, ctx.Err()
	}
}

// release frees the caller's slot, transferring it to the next queued
// job (round-robin across tenants, FIFO within one).
func (a *Admission) release() {
	a.mu.Lock()
	a.releaseLocked()
	a.mu.Unlock()
}

func (a *Admission) releaseLocked() {
	if len(a.ring) == 0 {
		if a.inUse > 0 {
			a.inUse--
		}
		return
	}
	// Grant to the next tenant in rotation; the slot transfers without
	// touching inUse.
	if a.cursor >= len(a.ring) {
		a.cursor = 0
	}
	tenant := a.ring[a.cursor]
	q := a.waiters[tenant]
	w := q[0]
	if len(q) == 1 {
		delete(a.waiters, tenant)
		a.ring = append(a.ring[:a.cursor], a.ring[a.cursor+1:]...)
		// cursor now points at the next tenant already.
	} else {
		a.waiters[tenant] = q[1:]
		a.cursor++
	}
	if a.cursor >= len(a.ring) {
		a.cursor = 0
	}
	w.granted = true
	close(w.ch)
}

// removeLocked drops a cancelled waiter from its tenant's FIFO.
func (a *Admission) removeLocked(tenant string, w *admWaiter) {
	q := a.waiters[tenant]
	for i, x := range q {
		if x == w {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(a.waiters, tenant)
		for i, t := range a.ring {
			if t == tenant {
				a.ring = append(a.ring[:i], a.ring[i+1:]...)
				if a.cursor > i {
					a.cursor--
				}
				if a.cursor >= len(a.ring) {
					a.cursor = 0
				}
				break
			}
		}
	} else {
		a.waiters[tenant] = q
	}
}

// AdmissionStats is the admission queue's /metrics snapshot.
type AdmissionStats struct {
	Slots     int           `json:"slots"`
	InUse     int           `json:"in_use"`
	Queued    int           `json:"queued"`
	WaitP50   time.Duration `json:"-"`
	WaitP99   time.Duration `json:"-"`
	WaitP50Ms float64       `json:"wait_p50_ms"`
	WaitP99Ms float64       `json:"wait_p99_ms"`
}

// Stats snapshots slot usage and queue depth.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	queued := 0
	for _, q := range a.waiters {
		queued += len(q)
	}
	s := AdmissionStats{Slots: a.slots, InUse: a.inUse, Queued: queued}
	a.mu.Unlock()
	s.WaitP50 = a.hist.Quantile(0.50)
	s.WaitP99 = a.hist.Quantile(0.99)
	s.WaitP50Ms = float64(s.WaitP50) / float64(time.Millisecond)
	s.WaitP99Ms = float64(s.WaitP99) / float64(time.Millisecond)
	return s
}
