package dispatch

import (
	"context"
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter guarding a tenant's HIT
// issuance. Rates are HITs per second; Burst is how far a quiet tenant
// may run ahead of its steady rate. A nil *Bucket (or rate <= 0) means
// unlimited — every method is nil-safe so callers need no branching.
//
// Posting waits rather than fails: an over-budget tenant's resolve
// slows down to its paid rate, it does not error out, and — because the
// wait happens inside that tenant's own resolve goroutine — it degrades
// nobody else.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 means unlimited
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewBucket builds a limiter issuing rate tokens/second with the given
// burst (min 1). rate <= 0 returns nil: unlimited.
func NewBucket(rate float64, burst int) *Bucket {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &Bucket{
		rate:   rate,
		burst:  float64(burst),
		tokens: float64(burst),
		now:    time.Now,
	}
}

// refillLocked advances the bucket to now.
func (b *Bucket) refillLocked(now time.Time) {
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Wait blocks until n tokens are available (debiting them) or ctx is
// cancelled. Requests larger than the burst are allowed: the bucket
// simply goes into debt and the caller waits it out, so a single HIT
// batch bigger than the burst cannot deadlock.
func (b *Bucket) Wait(ctx context.Context, n int) error {
	if b == nil || n <= 0 {
		return nil
	}
	b.mu.Lock()
	now := b.now()
	b.refillLocked(now)
	b.tokens -= float64(n)
	deficit := -b.tokens
	b.mu.Unlock()
	if deficit <= 0 {
		return nil
	}
	delay := time.Duration(deficit / b.rate * float64(time.Second))
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-ctx.Done():
		// Refund what this caller will never use.
		b.mu.Lock()
		b.tokens += float64(n)
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.mu.Unlock()
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
