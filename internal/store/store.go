package store

// Store is the persistence hook the resolver and queue backend log state
// mutations to. Implementations must be safe for concurrent use; the
// engine calls Log while holding its own locks, so implementations must
// never call back into the engine.
type Store interface {
	// Log records one event. Durable events must be on stable storage
	// when Log returns. An error poisons the session: the in-memory state
	// has already advanced past what disk can prove, so callers surface
	// the error and stop accepting work rather than diverge silently.
	Log(ev Event) error
	// Close flushes and releases the store.
	Close() error
}

// Noop is the default in-memory store: every mutation is dropped and the
// engine behaves bit-identically to a build with no persistence layer.
type Noop struct{}

// Log implements Store.
func (Noop) Log(Event) error { return nil }

// Close implements Store.
func (Noop) Close() error { return nil }
