package store

import (
	"bytes"
	"testing"

	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
)

// seedPayloads returns valid encoded events covering every tag, used to
// seed both fuzzers (alongside the checked-in corpus in testdata/fuzz).
func seedPayloads(tb testing.TB) [][]byte {
	tb.Helper()
	events := []Event{
		&Meta{Schema: []string{"name"}, Aggregator: "dawid-skene"},
		&Append{Rows: []Row{{Src: -1, Values: []string{"a", "b"}}}},
		&Prune{Absorbed: 2, Blocked: 1, Discovered: []simjoin.ScoredPair{{Pair: record.MakePair(0, 1), Likelihood: 0.5}}},
		&Commit{Ops: []Op{{Put: &PutOp{Pair: record.MakePair(0, 1), Likelihood: 0.5}}, {ClearPending: true}}},
		&QueueRetracted{IDs: []int{3, 4}},
		&Pending{Scored: []simjoin.ScoredPair{{Pair: record.MakePair(1, 2), Likelihood: 0.25}}},
	}
	var out [][]byte
	for _, ev := range events {
		p, err := encodeEvent(ev)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, p)
	}
	return out
}

// FuzzDecodeEvent hammers the event decoder with arbitrary payloads: it
// must never panic, and any payload it accepts must re-encode to
// something it accepts again (decode is total on encode's range).
func FuzzDecodeEvent(f *testing.F) {
	for _, p := range seedPayloads(f) {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Add([]byte{tagCommit, '{'})
	f.Fuzz(func(t *testing.T, payload []byte) {
		ev, err := decodeEvent(payload)
		if err != nil {
			return
		}
		re, err := encodeEvent(ev)
		if err != nil {
			t.Fatalf("decoded event failed to re-encode: %v", err)
		}
		if re[0] != payload[0] {
			t.Fatalf("tag changed across decode/encode: 0x%02x -> 0x%02x", payload[0], re[0])
		}
		if _, err := decodeEvent(re); err != nil {
			t.Fatalf("re-encoded event failed to decode: %v", err)
		}
		// Replay must also never panic on a decodable event.
		st := newReplayState()
		if err := st.apply(ev); err != nil {
			t.Fatalf("replay of decodable event errored: %v", err)
		}
	})
}

// FuzzScanFrames hammers the WAL frame scanner with arbitrary bytes: no
// panics, the valid prefix never exceeds the input, and the prefix it
// reports always re-scans clean (recovery truncates to it and appends).
func FuzzScanFrames(f *testing.F) {
	var healthy []byte
	for _, p := range seedPayloads(f) {
		healthy = appendFrame(healthy, p)
	}
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-3])             // torn tail
	f.Add(append([]byte{frameMagic}, 0, 0, 0))  // short header
	f.Add(bytes.Repeat([]byte{frameMagic}, 64)) // garbage magic run
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		valid, torn, err := scanFrames("fuzz", data, nil)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d out of range [0,%d]", valid, len(data))
		}
		if err == nil && !torn && valid != int64(len(data)) {
			t.Fatalf("clean scan stopped early: %d of %d", valid, len(data))
		}
		revalid, retorn, reerr := scanFrames("fuzz", data[:valid], nil)
		if reerr != nil || retorn || revalid != valid {
			t.Fatalf("valid prefix did not re-scan clean: valid=%d retorn=%v reerr=%v", revalid, retorn, reerr)
		}
	})
}
