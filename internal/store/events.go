package store

import (
	"encoding/json"
	"fmt"
	"time"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
	"github.com/crowder/crowder/internal/transitivity"
	"github.com/crowder/crowder/internal/verdicts"
)

// Event is one logged state mutation. The concrete types below form the
// session's entire durable vocabulary; a snapshot is nothing but a
// compacted stream of the same events.
//
// Events are encoded as a one-byte type tag followed by the JSON of the
// struct, framed and CRC-checked by the WAL layer.
type Event interface {
	tag() byte
	// durable events are fsynced before Log returns: they record paid (or
	// payable) work — verdict commits and worker answers. Everything else
	// is buffered and rides the next durable sync; a torn tail of
	// non-durable events always replays to a state the engine can reach
	// by re-running unpaid work.
	durable() bool
}

// Event type tags. Append-only: a tag, once released, is never reused.
const (
	tagMeta byte = iota + 1
	tagAppend
	tagPrune
	tagCommit
	tagQueuePosted
	tagQueueClaimed
	tagQueueAnswered
	tagQueueExpired
	tagQueueRetracted
	tagPending
	tagCacheState
	tagQueueState
)

// Meta records session identity: the table schema, the aggregator bound
// to the verdict cache, and an opaque configuration blob (crowderd
// persists the table-creation request so recovery can rebuild the same
// Options). Fields merge: a later Meta overrides only the fields it sets.
// Spent is the session's cumulative crowd spend in dollars — the hybrid
// router's budget accounting — logged as a running total so the latest
// Meta alone restores it.
type Meta struct {
	Schema     []string        `json:"schema,omitempty"`
	Aggregator string          `json:"aggregator,omitempty"`
	Config     json.RawMessage `json:"config,omitempty"`
	Spent      float64         `json:"spent,omitempty"`
}

func (*Meta) tag() byte     { return tagMeta }
func (*Meta) durable() bool { return true }

// Row is one appended record. Src is the cross-source tag passed to
// AppendFrom, or -1 for an untagged Append — the distinction matters:
// a table where any row was ever source-tagged pads all rows with tag 0,
// and CrossSourceOnly filtering keys off that.
type Row struct {
	Src    int      `json:"src"`
	Values []string `json:"values"`
}

// Append records a batch of appended rows.
type Append struct {
	Rows []Row `json:"rows"`
}

func (*Append) tag() byte     { return tagAppend }
func (*Append) durable() bool { return true }

// Prune records one candidate-generation boundary: the prefix of the
// table the similarity index absorbed, the token-blocking cursor, and
// the candidate pairs newly discovered this prune (already-pending
// retries are not re-logged). Replaying the boundaries rebuilds the
// index incrementally exactly as the live session built it, which is
// what keeps frozen prefix weights — and therefore candidate sets —
// bit-identical after recovery.
type Prune struct {
	Absorbed   int                  `json:"absorbed"`
	Blocked    int                  `json:"blocked"`
	Discovered []simjoin.ScoredPair `json:"discovered,omitempty"`
}

func (*Prune) tag() byte     { return tagPrune }
func (*Prune) durable() bool { return false }

// PutOp records a cache Put: a pair judged by the crowd (or machine).
type PutOp struct {
	Pair       record.Pair `json:"pair"`
	Likelihood float64     `json:"lik"`
}

// DeduceOp records a cache PutDeduced: a verdict inferred by
// transitivity, with its full proof (path and witness) as provenance.
type DeduceOp struct {
	D          transitivity.Deduction `json:"d"`
	Likelihood float64                `json:"lik"`
}

// MachineOp records a cache PutMachine: a pair the hybrid router's
// classifier resolved outside its uncertainty band, with the calibrated
// match confidence the router assigned. No HIT was issued.
type MachineOp struct {
	Pair       record.Pair `json:"pair"`
	Likelihood float64     `json:"lik"`
	Posterior  float64     `json:"post"`
}

// PairVal carries one pair's posterior.
type PairVal struct {
	Pair record.Pair `json:"pair"`
	Val  float64     `json:"val"`
}

// Op is one step of an atomic Commit. Exactly one field group is set.
// Ops preserve the live mutation order — the transitive scheduler
// interleaves asked and deduced verdicts within one commit, and replay
// must observe the same first-insert semantics the cache applied live.
type Op struct {
	Put          *PutOp             `json:"put,omitempty"`
	Deduce       *DeduceOp          `json:"ded,omitempty"`
	Machine      *MachineOp         `json:"mach,omitempty"`
	Answers      []aggregate.Answer `json:"ans,omitempty"`
	Partial      []aggregate.Answer `json:"part,omitempty"`
	Posteriors   []PairVal          `json:"post,omitempty"`
	ClearPending bool               `json:"clear,omitempty"`
}

// Commit is one atomic verdict-cache transaction: everything a single
// lock-held commit section mutated, logged as one frame so a torn tail
// can never split a commit in half (judged pairs without their answers,
// or vice versa).
type Commit struct {
	Ops []Op `json:"ops"`
}

func (*Commit) tag() byte     { return tagCommit }
func (*Commit) durable() bool { return true }

// QueuePosted records HITs opened (or topped up) on the queue backend.
type QueuePosted struct {
	HITs []crowd.HIT `json:"hits"`
	At   time.Time   `json:"at"`
}

func (*QueuePosted) tag() byte     { return tagQueuePosted }
func (*QueuePosted) durable() bool { return false }

// QueueClaimed records a worker's lease on one assignment.
type QueueClaimed struct {
	Token    string    `json:"tok"`
	HIT      int       `json:"hit"`
	Worker   string    `json:"worker"`
	At       time.Time `json:"at"`
	Deadline time.Time `json:"deadline,omitempty"`
}

func (*QueueClaimed) tag() byte     { return tagQueueClaimed }
func (*QueueClaimed) durable() bool { return false }

// QueueAnswered records a completed (paid) assignment — durable: this is
// the money. Late marks a lapsed-lease answer credited before the top-up
// was claimed.
type QueueAnswered struct {
	Token  string           `json:"tok"`
	HIT    int              `json:"hit"`
	Worker string           `json:"worker"`
	A      crowd.Assignment `json:"a"`
	Late   bool             `json:"late,omitempty"`
}

func (*QueueAnswered) tag() byte     { return tagQueueAnswered }
func (*QueueAnswered) durable() bool { return true }

// QueueExpired records leases dropped by a sweep.
type QueueExpired struct {
	Claims []crowd.ExpiredClaim `json:"claims"`
}

func (*QueueExpired) tag() byte     { return tagQueueExpired }
func (*QueueExpired) durable() bool { return false }

// QueueRetracted records withdrawn HITs.
type QueueRetracted struct {
	IDs []int `json:"ids"`
}

func (*QueueRetracted) tag() byte     { return tagQueueRetracted }
func (*QueueRetracted) durable() bool { return false }

// Pending is snapshot-only: the carried-over candidate pairs awaiting
// crowdsourcing.
type Pending struct {
	Scored []simjoin.ScoredPair `json:"scored"`
}

func (*Pending) tag() byte     { return tagPending }
func (*Pending) durable() bool { return true }

// CacheState is snapshot-only: the verdict cache serialized wholesale —
// every entry with likelihood, answers, posterior, provenance and
// deduction proof, plus un-judged partial answers. Dumping the cache
// directly (rather than re-deriving per-method events) is what makes a
// snapshot bit-exact regardless of the mutation order that produced it.
type CacheState struct {
	Entries  []verdicts.Entry   `json:"entries"`
	Partials []aggregate.Answer `json:"partials,omitempty"`
}

func (*CacheState) tag() byte     { return tagCacheState }
func (*CacheState) durable() bool { return true }

// QueueState is snapshot-only: the queue backend's full claim/answer
// state, including in-flight collected assignments awaiting their run's
// completion and the HIT ID floor.
type QueueState struct {
	S crowd.QueueSnapshot `json:"s"`
}

func (*QueueState) tag() byte     { return tagQueueState }
func (*QueueState) durable() bool { return true }

// encodeEvent renders tag + JSON payload.
func encodeEvent(ev Event) ([]byte, error) {
	body, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("store: encoding event: %w", err)
	}
	out := make([]byte, 0, len(body)+1)
	out = append(out, ev.tag())
	return append(out, body...), nil
}

// decodeEvent parses one framed payload back into its event.
func decodeEvent(payload []byte) (Event, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("store: empty event payload")
	}
	var ev Event
	switch payload[0] {
	case tagMeta:
		ev = &Meta{}
	case tagAppend:
		ev = &Append{}
	case tagPrune:
		ev = &Prune{}
	case tagCommit:
		ev = &Commit{}
	case tagQueuePosted:
		ev = &QueuePosted{}
	case tagQueueClaimed:
		ev = &QueueClaimed{}
	case tagQueueAnswered:
		ev = &QueueAnswered{}
	case tagQueueExpired:
		ev = &QueueExpired{}
	case tagQueueRetracted:
		ev = &QueueRetracted{}
	case tagPending:
		ev = &Pending{}
	case tagCacheState:
		ev = &CacheState{}
	case tagQueueState:
		ev = &QueueState{}
	default:
		return nil, fmt.Errorf("store: unknown event tag 0x%02x", payload[0])
	}
	if err := json.Unmarshal(payload[1:], ev); err != nil {
		return nil, fmt.Errorf("store: decoding event tag 0x%02x: %w", payload[0], err)
	}
	return ev, nil
}
