package store

import "testing"

// TestEventVocabulary pins every event's wire tag and durability class.
// Tags are append-only wire format; durability decides which records are
// fsynced before Log returns (everything that represents paid work or
// the session's identity) versus buffered (state reconstructible from a
// replay that ends one sweep earlier).
func TestEventVocabulary(t *testing.T) {
	cases := []struct {
		ev      Event
		tag     byte
		durable bool
	}{
		{&Meta{}, tagMeta, true},
		{&Append{}, tagAppend, true},
		{&Prune{}, tagPrune, false},
		{&Commit{}, tagCommit, true},
		{&QueuePosted{}, tagQueuePosted, false},
		{&QueueClaimed{}, tagQueueClaimed, false},
		{&QueueAnswered{}, tagQueueAnswered, true},
		{&QueueExpired{}, tagQueueExpired, false},
		{&QueueRetracted{}, tagQueueRetracted, false},
		{&Pending{}, tagPending, true},
		{&CacheState{}, tagCacheState, true},
		{&QueueState{}, tagQueueState, true},
	}
	seen := map[byte]bool{}
	for _, c := range cases {
		if got := c.ev.tag(); got != c.tag {
			t.Errorf("%T tag = %d; want %d", c.ev, got, c.tag)
		}
		if got := c.ev.durable(); got != c.durable {
			t.Errorf("%T durable = %v; want %v", c.ev, got, c.durable)
		}
		if seen[c.tag] {
			t.Errorf("tag %d reused", c.tag)
		}
		seen[c.tag] = true
	}
}
