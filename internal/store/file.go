package store

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/crowder/crowder/internal/crowd"
)

// Options configures a FileLog.
type Options struct {
	// CompactBytes is the WAL size that triggers a compacting snapshot
	// after a durable write. Zero means the 1 MiB default; negative
	// disables compaction entirely.
	CompactBytes int64
}

const defaultCompactBytes = 1 << 20

// FileLog is the file-backed Store: an append-only WAL of session events
// plus periodic compacting snapshots. On disk a generation is the pair
// snapshot-<seq>.snap / wal-<seq>.log — the snapshot holds everything up
// to the moment of compaction, the WAL holds the tail. Recovery loads
// the highest complete snapshot and replays its WAL; a crash between the
// snapshot rename and the new WAL's creation leaves the previous
// generation's WAL fully contained in the new snapshot, so either
// generation recovers to the same state.
type FileLog struct {
	dir  string
	opts Options

	// mu serializes appends: the resolver's commit sites and the queue's
	// journal callbacks log from different goroutines. It is always the
	// innermost lock — callers may hold the resolver or queue lock.
	mu        sync.Mutex
	seq       int
	f         *os.File
	w         *bufio.Writer
	walBytes  int64
	snapBytes int64
	st        *replayState
	err       error // sticky: first write/sync failure poisons the log
}

// Open opens (or creates) the log in dir, replays whatever is on disk,
// and returns the log ready for appends plus the recovered state.
// A torn tail — an incomplete final record from a crash mid-write — is
// truncated silently; corruption anywhere earlier fails loudly with a
// *CorruptError.
func Open(dir string, opts Options) (*FileLog, *Recovered, error) {
	if opts.CompactBytes == 0 {
		opts.CompactBytes = defaultCompactBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	snaps, wals, tmps, err := scanDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, t := range tmps {
		os.Remove(filepath.Join(dir, t))
	}

	st := newReplayState()
	seq := 0
	var snapBytes int64
	if len(snaps) > 0 {
		seq = snaps[len(snaps)-1]
		name := snapName(seq)
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, fmt.Errorf("store: read snapshot: %w", err)
		}
		valid, torn, err := scanFrames(name, data, func(payload []byte) error {
			ev, err := decodeEvent(payload)
			if err != nil {
				return err
			}
			return st.apply(ev)
		})
		if err != nil {
			return nil, nil, err
		}
		if torn || valid != int64(len(data)) {
			// Snapshots are written to a temp file and renamed into place;
			// a short one is corruption, not a crash artifact.
			return nil, nil, &CorruptError{File: name, Offset: valid, Reason: "snapshot truncated"}
		}
		snapBytes = int64(len(data))
	}

	walPath := filepath.Join(dir, walName(seq))
	var walValid int64
	if data, err := os.ReadFile(walPath); err == nil {
		valid, _, err := scanFrames(walName(seq), data, func(payload []byte) error {
			ev, err := decodeEvent(payload)
			if err != nil {
				return err
			}
			return st.apply(ev)
		})
		if err != nil {
			return nil, nil, err
		}
		walValid = valid
	} else if !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("store: read wal: %w", err)
	}

	// Older generations are fully contained in the loaded snapshot.
	for _, s := range snaps {
		if s < seq {
			os.Remove(filepath.Join(dir, snapName(s)))
		}
	}
	for _, w := range wals {
		if w < seq {
			os.Remove(filepath.Join(dir, walName(w)))
		}
	}

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open wal: %w", err)
	}
	if err := f.Truncate(walValid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
	}
	if _, err := f.Seek(walValid, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: seek wal: %w", err)
	}

	fl := &FileLog{
		dir:       dir,
		opts:      opts,
		seq:       seq,
		f:         f,
		w:         bufio.NewWriter(f),
		walBytes:  walValid,
		snapBytes: snapBytes,
		st:        st,
	}
	rec := st.recovered()
	rec.WALBytes = walValid
	rec.SnapshotBytes = snapBytes
	return fl, rec, nil
}

// Log appends one event. Durable events are flushed and fsynced before
// returning — the single-writer append order means that sync also pins
// every buffered non-durable event before them.
func (fl *FileLog) Log(ev Event) error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.err != nil {
		return fl.err
	}
	payload, err := encodeEvent(ev)
	if err != nil {
		return fl.poison(err)
	}
	n, err := writeFrame(fl.w, payload)
	fl.walBytes += int64(n)
	if err != nil {
		return fl.poison(err)
	}
	// Mirror from the encoded bytes, not the caller's object: the mirror
	// then provably matches what a cold replay of the file would build.
	mev, err := decodeEvent(payload)
	if err != nil {
		return fl.poison(err)
	}
	if err := fl.st.apply(mev); err != nil {
		return fl.poison(err)
	}
	if !ev.durable() {
		return nil
	}
	if err := fl.w.Flush(); err != nil {
		return fl.poison(err)
	}
	if err := fl.f.Sync(); err != nil {
		return fl.poison(err)
	}
	if fl.opts.CompactBytes > 0 && fl.walBytes >= fl.opts.CompactBytes {
		if err := fl.compact(); err != nil {
			return fl.poison(err)
		}
	}
	return nil
}

// compact writes the mirror as snapshot-<seq+1>, atomically installs it,
// and starts a fresh WAL generation.
func (fl *FileLog) compact() error {
	next := fl.seq + 1
	tmp := filepath.Join(fl.dir, snapName(next)+".tmp")
	sf, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	sw := bufio.NewWriter(sf)
	var snapBytes int64
	for _, ev := range fl.st.snapshotEvents() {
		payload, err := encodeEvent(ev)
		if err != nil {
			sf.Close()
			return err
		}
		n, err := writeFrame(sw, payload)
		snapBytes += int64(n)
		if err != nil {
			sf.Close()
			return err
		}
	}
	if err := sw.Flush(); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Sync(); err != nil {
		sf.Close()
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(fl.dir, snapName(next))); err != nil {
		return err
	}
	syncDir(fl.dir)

	nf, err := os.OpenFile(filepath.Join(fl.dir, walName(next)), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	syncDir(fl.dir)

	old, oldSeq := fl.f, fl.seq
	fl.f, fl.w = nf, bufio.NewWriter(nf)
	fl.seq, fl.walBytes, fl.snapBytes = next, 0, snapBytes
	old.Close()
	os.Remove(filepath.Join(fl.dir, walName(oldSeq)))
	if oldSeq > 0 {
		os.Remove(filepath.Join(fl.dir, snapName(oldSeq)))
	}
	return nil
}

// Close flushes, syncs and closes the WAL.
func (fl *FileLog) Close() error {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.err != nil {
		fl.f.Close()
		return fl.err
	}
	if err := fl.w.Flush(); err != nil {
		fl.f.Close()
		return fl.poison(err)
	}
	if err := fl.f.Sync(); err != nil {
		fl.f.Close()
		return fl.poison(err)
	}
	return fl.f.Close()
}

// Stats reports current on-disk footprint: live WAL bytes and the size
// of the snapshot backing the current generation.
func (fl *FileLog) Stats() (walBytes, snapshotBytes int64) {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	return fl.walBytes, fl.snapBytes
}

func (fl *FileLog) poison(err error) error {
	if fl.err == nil {
		fl.err = fmt.Errorf("store: log failed, session poisoned: %w", err)
	}
	return fl.err
}

func snapName(seq int) string { return fmt.Sprintf("snapshot-%08d.snap", seq) }
func walName(seq int) string  { return fmt.Sprintf("wal-%08d.log", seq) }

// scanDir lists snapshot/WAL generations and leftover temp files.
func scanDir(dir string) (snaps, wals []int, tmps []string, err error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	for _, de := range des {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			tmps = append(tmps, name)
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".snap"):
			var seq int
			if _, err := fmt.Sscanf(name, "snapshot-%d.snap", &seq); err == nil {
				snaps = append(snaps, seq)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			var seq int
			if _, err := fmt.Sscanf(name, "wal-%d.log", &seq); err == nil {
				wals = append(wals, seq)
			}
		}
	}
	sort.Ints(snaps)
	sort.Ints(wals)
	return snaps, wals, tmps, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best-effort: some filesystems reject directory syncs.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// QueueJournal adapts a Store into the queue's journal interface. Log
// errors are swallowed here — the store is sticky-poisoned and the next
// resolver commit surfaces the failure — because journal callbacks run
// under the queue lock with no error path.
func QueueJournal(s Store) crowd.Journal {
	return queueJournal{s}
}

type queueJournal struct{ s Store }

func (j queueJournal) Posted(hits []crowd.HIT, at time.Time) {
	j.s.Log(&QueuePosted{HITs: hits, At: at})
}

func (j queueJournal) Claimed(token string, hit int, worker string, at, deadline time.Time) {
	j.s.Log(&QueueClaimed{Token: token, HIT: hit, Worker: worker, At: at, Deadline: deadline})
}

func (j queueJournal) Answered(token string, hit int, worker string, a crowd.Assignment, late bool) {
	j.s.Log(&QueueAnswered{Token: token, HIT: hit, Worker: worker, A: a, Late: late})
}

func (j queueJournal) Expired(claims []crowd.ExpiredClaim) {
	j.s.Log(&QueueExpired{Claims: claims})
}

func (j queueJournal) Retracted(ids []int) {
	j.s.Log(&QueueRetracted{IDs: ids})
}
