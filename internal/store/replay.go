package store

import (
	"fmt"
	"sort"
	"time"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/simjoin"
	"github.com/crowder/crowder/internal/verdicts"
)

// replayState is the session state a log replays into. FileLog keeps one
// as a live mirror — every event it writes is decoded back from its
// encoded bytes and applied here, so the mirror can never drift from
// what a cold recovery of the same bytes would produce — and compaction
// is just serializing the mirror as a fresh event stream.
type replayState struct {
	meta       Meta
	hasMeta    bool
	rows       []Row
	boundaries []int // absorb boundaries, strictly increasing
	blocked    int
	pending    []simjoin.ScoredPair
	cache      *verdicts.Cache
	q          queueMirror
	events     int
}

func newReplayState() *replayState {
	return &replayState{cache: verdicts.NewCache()}
}

// apply folds one event into the state.
func (st *replayState) apply(ev Event) error {
	st.events++
	switch e := ev.(type) {
	case *Meta:
		if e.Schema != nil {
			st.meta.Schema = e.Schema
		}
		if e.Aggregator != "" {
			st.meta.Aggregator = e.Aggregator
		}
		if e.Config != nil {
			st.meta.Config = e.Config
		}
		if e.Spent != 0 {
			st.meta.Spent = e.Spent
		}
		st.hasMeta = true
	case *Append:
		st.rows = append(st.rows, e.Rows...)
	case *Prune:
		last := 0
		if len(st.boundaries) > 0 {
			last = st.boundaries[len(st.boundaries)-1]
		}
		if e.Absorbed > last {
			st.boundaries = append(st.boundaries, e.Absorbed)
		}
		st.blocked = e.Blocked
		st.pending = append(st.pending, e.Discovered...)
	case *Commit:
		for _, op := range e.Ops {
			switch {
			case op.Put != nil:
				st.cache.Put(op.Put.Pair, op.Put.Likelihood)
			case op.Deduce != nil:
				st.cache.PutDeduced(op.Deduce.Likelihood, op.Deduce.D)
			case op.Machine != nil:
				st.cache.PutMachine(op.Machine.Pair, op.Machine.Likelihood, op.Machine.Posterior)
			case op.Answers != nil:
				st.cache.AddAnswers(op.Answers)
			case op.Partial != nil:
				st.cache.AddPartialAnswers(op.Partial)
			case op.Posteriors != nil:
				post := make(aggregate.Posterior, len(op.Posteriors))
				for _, pv := range op.Posteriors {
					post[pv.Pair] = pv.Val
				}
				st.cache.SetPosteriors(post)
			case op.ClearPending:
				st.pending = st.pending[:0]
			}
		}
	case *Pending:
		st.pending = append(st.pending[:0], e.Scored...)
	case *CacheState:
		st.cache = verdicts.RestoreCache(e.Entries, e.Partials)
	case *QueuePosted:
		st.q.applyPosted(e)
	case *QueueClaimed:
		st.q.applyClaimed(e)
	case *QueueAnswered:
		st.q.applyAnswered(e)
	case *QueueExpired:
		st.q.applyExpired(e)
	case *QueueRetracted:
		st.q.applyRetracted(e)
	case *QueueState:
		st.q.restore(&e.S)
	default:
		return fmt.Errorf("store: replay: unhandled event %T", ev)
	}
	return nil
}

// snapshotEvents serializes the state as a compacted event stream —
// replaying it reproduces the state exactly.
func (st *replayState) snapshotEvents() []Event {
	var evs []Event
	if st.hasMeta {
		m := st.meta
		evs = append(evs, &m)
	}
	// Chunk rows so no single frame grows unboundedly with table size.
	const rowChunk = 4096
	for lo := 0; lo < len(st.rows); lo += rowChunk {
		hi := lo + rowChunk
		if hi > len(st.rows) {
			hi = len(st.rows)
		}
		evs = append(evs, &Append{Rows: st.rows[lo:hi]})
	}
	for _, b := range st.boundaries {
		evs = append(evs, &Prune{Absorbed: b, Blocked: st.blocked})
	}
	if len(st.boundaries) == 0 && st.blocked > 0 {
		evs = append(evs, &Prune{Blocked: st.blocked})
	}
	if len(st.pending) > 0 {
		evs = append(evs, &Pending{Scored: append([]simjoin.ScoredPair(nil), st.pending...)})
	}
	if st.cache.Len() > 0 || st.cache.PartialLen() > 0 {
		entries, partials := st.cache.Dump()
		evs = append(evs, &CacheState{Entries: entries, Partials: partials})
	}
	if st.q.active {
		evs = append(evs, &QueueState{S: *st.q.snapshot()})
	}
	return evs
}

// Recovered is everything a session needs to resume after a restart.
type Recovered struct {
	// Meta is the merged session identity (schema, aggregator, config).
	Meta Meta
	// Rows are the appended records in order.
	Rows []Row
	// Boundaries are the similarity-index absorb points, in order.
	Boundaries []int
	// Blocked is the token-blocking cursor.
	Blocked int
	// Pending are the candidate pairs awaiting crowdsourcing.
	Pending []simjoin.ScoredPair
	// Cache is the verdict cache — paid answers, posteriors, provenance,
	// deduction proofs, partial fragments, plus the in-flight answers of
	// the crashed run folded in as partials.
	Cache *verdicts.Cache
	// Queue is the queue backend's state, or nil if the session never
	// posted to a queue.
	Queue *crowd.QueueSnapshot
	// Resume carries the crashed run's in-flight HITs for adoption by the
	// restarted resolve; nil when nothing was in flight.
	Resume *crowd.ResumeState
	// NextHITID is the floor for the process-wide HIT ID allocator.
	NextHITID int
	// Events is the number of events replayed (snapshot + WAL tail).
	Events int
	// WALBytes and SnapshotBytes report what recovery read.
	WALBytes      int64
	SnapshotBytes int64
}

// Empty reports a fresh session (no logged state at all).
func (r *Recovered) Empty() bool {
	return r == nil || (!r.hasState() && r.Events == 0)
}

func (r *Recovered) hasState() bool {
	return len(r.Rows) > 0 || r.Cache.Len() > 0 || r.Cache.PartialLen() > 0 ||
		len(r.Pending) > 0 || r.Queue != nil || len(r.Meta.Schema) > 0
}

// recovered builds the engine-facing view. Everything handed out is a
// copy: the mirror keeps tracking disk truth while the engine mutates
// its own state.
func (st *replayState) recovered() *Recovered {
	entries, partials := st.cache.Dump()
	rec := &Recovered{
		Meta:       st.meta,
		Rows:       append([]Row(nil), st.rows...),
		Boundaries: append([]int(nil), st.boundaries...),
		Blocked:    st.blocked,
		Pending:    append([]simjoin.ScoredPair(nil), st.pending...),
		Cache:      verdicts.RestoreCache(entries, partials),
		Events:     st.events,
	}
	if st.q.active {
		rec.Queue = st.q.snapshot()
		rec.NextHITID = st.q.nextHIT
		// In-flight HITs of the crashed run: content-indexed for adoption,
		// and their paid answers recorded as partial fragments so the work
		// is never invisible — the restarted run's completions supersede
		// them through the normal commit path.
		rs := &crowd.ResumeState{}
		var inflight []aggregate.Answer
		for _, id := range rec.Queue.Order {
			h, ok := st.q.hits[id]
			if !ok {
				continue
			}
			slots := append([]crowd.Assignment(nil), st.q.collected[id]...)
			sort.Slice(slots, func(i, j int) bool { return slots[i].Slot < slots[j].Slot })
			rs.Add(h, slots)
			for _, a := range slots {
				inflight = append(inflight, a.Answers...)
			}
		}
		if !rs.Empty() {
			rec.Resume = rs
		}
		if len(inflight) > 0 {
			rec.Cache.AddPartialAnswers(inflight)
		}
	}
	return rec
}

// mirrorClaim is one lease in the queue mirror.
type mirrorClaim struct {
	token     string
	hit       int
	worker    string
	claimedAt time.Time
	deadline  time.Time
}

// queueMirror replays queue events into the same state the live Queue
// holds, plus the collected in-flight assignments the live queue already
// streamed out.
type queueMirror struct {
	active    bool
	hits      map[int]crowd.HIT
	open      map[int]int
	order     []int
	answered  map[int]int
	touched   map[int]map[string]bool
	postedAt  map[int]time.Time
	workers   []string
	workerIdx map[string]int
	claims    map[string]mirrorClaim
	lapsed    map[string]mirrorClaim
	collected map[int][]crowd.Assignment
	nextHIT   int
}

func (m *queueMirror) init() {
	if m.active {
		return
	}
	m.active = true
	m.hits = make(map[int]crowd.HIT)
	m.open = make(map[int]int)
	m.answered = make(map[int]int)
	m.touched = make(map[int]map[string]bool)
	m.postedAt = make(map[int]time.Time)
	m.workerIdx = make(map[string]int)
	m.claims = make(map[string]mirrorClaim)
	m.lapsed = make(map[string]mirrorClaim)
	m.collected = make(map[int][]crowd.Assignment)
}

func (m *queueMirror) applyPosted(e *QueuePosted) {
	m.init()
	for _, h := range e.HITs {
		if _, known := m.hits[h.ID]; !known {
			m.hits[h.ID] = h
			m.order = append(m.order, h.ID)
			m.postedAt[h.ID] = e.At
		}
		m.open[h.ID] += h.Assignments
		if h.ID+1 > m.nextHIT {
			m.nextHIT = h.ID + 1
		}
	}
}

func (m *queueMirror) applyClaimed(e *QueueClaimed) {
	m.init()
	m.open[e.HIT]--
	if m.touched[e.HIT] == nil {
		m.touched[e.HIT] = make(map[string]bool)
	}
	m.touched[e.HIT][e.Worker] = true
	m.claims[e.Token] = mirrorClaim{
		token: e.Token, hit: e.HIT, worker: e.Worker,
		claimedAt: e.At, deadline: e.Deadline,
	}
}

func (m *queueMirror) applyAnswered(e *QueueAnswered) {
	m.init()
	if e.Late {
		// The live queue consumed the top-up slot and re-barred the worker.
		delete(m.lapsed, e.Token)
		m.open[e.HIT]--
		if m.touched[e.HIT] == nil {
			m.touched[e.HIT] = make(map[string]bool)
		}
		m.touched[e.HIT][e.Worker] = true
	} else {
		delete(m.claims, e.Token)
	}
	if _, ok := m.workerIdx[e.Worker]; !ok {
		// A live queue assigns worker ids densely in answer order, so a
		// new worker's id is exactly the next slot (or, after a snapshot
		// restore, an already-allocated one). Anything else is a mangled
		// event; dropping it beats growing an unbounded sparse table.
		if e.A.Worker == len(m.workers) {
			m.workers = append(m.workers, e.Worker)
			m.workerIdx[e.Worker] = e.A.Worker
		} else if e.A.Worker >= 0 && e.A.Worker < len(m.workers) {
			m.workers[e.A.Worker] = e.Worker
			m.workerIdx[e.Worker] = e.A.Worker
		}
	}
	if e.A.Slot+1 > m.answered[e.HIT] {
		m.answered[e.HIT] = e.A.Slot + 1
	}
	m.collected[e.HIT] = append(m.collected[e.HIT], e.A)
}

func (m *queueMirror) applyExpired(e *QueueExpired) {
	m.init()
	for _, c := range e.Claims {
		mc, ok := m.claims[c.Token]
		if !ok {
			mc = mirrorClaim{token: c.Token, hit: c.HIT, worker: c.Worker}
		}
		delete(m.claims, c.Token)
		m.lapsed[c.Token] = mc
		if t := m.touched[c.HIT]; t != nil {
			delete(t, c.Worker)
		}
	}
}

func (m *queueMirror) applyRetracted(e *QueueRetracted) {
	m.init()
	for _, id := range e.IDs {
		delete(m.hits, id)
		delete(m.open, id)
		delete(m.answered, id)
		delete(m.touched, id)
		delete(m.postedAt, id)
		delete(m.collected, id)
	}
	for tok, c := range m.claims {
		if _, live := m.hits[c.hit]; !live {
			delete(m.claims, tok)
		}
	}
	for tok, c := range m.lapsed {
		if _, live := m.hits[c.hit]; !live {
			delete(m.lapsed, tok)
		}
	}
	live := m.order[:0]
	for _, id := range m.order {
		if _, ok := m.hits[id]; ok {
			live = append(live, id)
		}
	}
	m.order = live
}

// restore wholesale-loads a snapshot.
func (m *queueMirror) restore(s *crowd.QueueSnapshot) {
	*m = queueMirror{}
	m.init()
	for _, h := range s.HITs {
		m.hits[h.ID] = h
	}
	for id, n := range s.Open {
		m.open[id] = n
	}
	m.order = append(m.order, s.Order...)
	for id, n := range s.Answered {
		m.answered[id] = n
	}
	for id, ws := range s.Touched {
		t := make(map[string]bool, len(ws))
		for _, w := range ws {
			t[w] = true
		}
		m.touched[id] = t
	}
	for id, at := range s.PostedAt {
		m.postedAt[id] = at
	}
	m.workers = append(m.workers, s.Workers...)
	for i, w := range s.Workers {
		m.workerIdx[w] = i
	}
	for _, c := range s.Claims {
		m.claims[c.Token] = mirrorClaim{token: c.Token, hit: c.HIT, worker: c.Worker, claimedAt: c.ClaimedAt, deadline: c.Deadline}
	}
	for _, c := range s.Lapsed {
		m.lapsed[c.Token] = mirrorClaim{token: c.Token, hit: c.HIT, worker: c.Worker, claimedAt: c.ClaimedAt, deadline: c.Deadline}
	}
	for id, as := range s.Collected {
		m.collected[id] = append([]crowd.Assignment(nil), as...)
	}
	m.nextHIT = s.NextHITID
}

// snapshot renders the mirror as a crowd.QueueSnapshot (fresh copies,
// deterministic ordering).
func (m *queueMirror) snapshot() *crowd.QueueSnapshot {
	s := &crowd.QueueSnapshot{
		Open:      make(map[int]int, len(m.open)),
		Order:     append([]int(nil), m.order...),
		Answered:  make(map[int]int, len(m.answered)),
		Touched:   make(map[int][]string, len(m.touched)),
		PostedAt:  make(map[int]time.Time, len(m.postedAt)),
		Workers:   append([]string(nil), m.workers...),
		Collected: make(map[int][]crowd.Assignment, len(m.collected)),
		NextHITID: m.nextHIT,
	}
	for _, id := range m.order {
		s.HITs = append(s.HITs, m.hits[id])
	}
	for id, n := range m.open {
		s.Open[id] = n
	}
	for id, n := range m.answered {
		s.Answered[id] = n
	}
	for id, t := range m.touched {
		ws := make([]string, 0, len(t))
		for w := range t {
			ws = append(ws, w)
		}
		sort.Strings(ws)
		s.Touched[id] = ws
	}
	for id, at := range m.postedAt {
		s.PostedAt[id] = at
	}
	var toks []string
	for tok := range m.claims {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		c := m.claims[tok]
		s.Claims = append(s.Claims, crowd.ClaimSnapshot{Token: c.token, HIT: c.hit, Worker: c.worker, ClaimedAt: c.claimedAt, Deadline: c.deadline})
	}
	toks = toks[:0]
	for tok := range m.lapsed {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		c := m.lapsed[tok]
		s.Lapsed = append(s.Lapsed, crowd.ClaimSnapshot{Token: c.token, HIT: c.hit, Worker: c.worker, ClaimedAt: c.claimedAt, Deadline: c.deadline})
	}
	for id, as := range m.collected {
		cp := append([]crowd.Assignment(nil), as...)
		sort.Slice(cp, func(i, j int) bool { return cp[i].Slot < cp[j].Slot })
		s.Collected[id] = cp
	}
	return s
}
