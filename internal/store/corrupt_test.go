package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, path string, data []byte) error {
	t.Helper()
	return os.WriteFile(path, data, 0o644)
}

// buildSampleWAL returns the bytes of a healthy WAL plus the start
// offset of its final frame.
func buildSampleWAL(t *testing.T) (data []byte, lastFrameStart int64) {
	t.Helper()
	dir := t.TempDir()
	fl, _, err := Open(dir, Options{CompactBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	logSampleSession(t, fl)
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(filepath.Join(dir, walName(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty wal")
	}
	// Walk the frames to find where the final one begins.
	off := int64(0)
	for {
		sz := frameAt(t, data, off)
		if off+sz >= int64(len(data)) {
			return data, off
		}
		off += sz
	}
}

// frameAt returns the size of the frame starting at off.
func frameAt(t *testing.T, data []byte, off int64) int64 {
	t.Helper()
	if int(off)+frameHdrSize > len(data) {
		t.Fatalf("no frame at %d", off)
	}
	n := int64(uint32(data[off+1]) | uint32(data[off+2])<<8 | uint32(data[off+3])<<16 | uint32(data[off+4])<<24)
	return frameHdrSize + n
}

// TestWALTruncationProperty: a crash can leave any prefix of the WAL on
// disk. For EVERY truncation point, recovery must succeed, keep exactly
// the complete frames, and lose at most the torn final record.
func TestWALTruncationProperty(t *testing.T) {
	full, _ := buildSampleWAL(t)

	// Count events per prefix length so each truncation's expectation is
	// exact: the number of whole frames that fit.
	wholeFrames := func(n int) int {
		count := 0
		off := int64(0)
		for off < int64(n) {
			if int(off)+frameHdrSize > n {
				break
			}
			sz := frameAt(t, full, off)
			if off+sz > int64(n) {
				break
			}
			count++
			off += sz
		}
		return count
	}

	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		if err := writeFile(t, filepath.Join(dir, walName(0)), full[:cut]); err != nil {
			t.Fatal(err)
		}
		fl, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if want := wholeFrames(cut); rec.Events != want {
			t.Fatalf("cut %d: recovered %d events; want %d", cut, rec.Events, want)
		}
		// The torn tail must be gone from disk: appending resumes from the
		// last whole frame.
		if err := fl.Log(&Meta{Aggregator: "majority-vote"}); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		if err := fl.Close(); err != nil {
			t.Fatal(err)
		}
		if _, rec2, err := Open(dir, Options{}); err != nil {
			t.Fatalf("cut %d: second recovery: %v", cut, err)
		} else if rec2.Events != wholeFrames(cut)+1 {
			t.Fatalf("cut %d: second recovery saw %d events; want %d", cut, rec2.Events, wholeFrames(cut)+1)
		}
	}
}

// TestWALCorruptionProperty: flipping a byte anywhere before the final
// record must fail recovery loudly with a *CorruptError — silently
// skipping a mid-log hole would resurrect a session with paid verdicts
// missing. Damage confined to the final record is indistinguishable from
// a torn tail and is tolerated.
func TestWALCorruptionProperty(t *testing.T) {
	full, lastFrameStart := buildSampleWAL(t)
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 200; trial++ {
		off := rng.Intn(len(full))
		bit := byte(1) << rng.Intn(8)
		data := append([]byte(nil), full...)
		data[off] ^= bit

		dir := t.TempDir()
		if err := writeFile(t, filepath.Join(dir, walName(0)), data); err != nil {
			t.Fatal(err)
		}
		fl, rec, err := Open(dir, Options{})
		// A flip before the final record, or inside the final record's
		// protected header bytes (magic+length+their CRC), must be loud: a
		// crash cannot produce it, only real damage can. Flips in the final
		// record's payload (or its payload-CRC field) are indistinguishable
		// from a torn tail and are tolerated.
		inFinalHeaderIntegrity := int64(off) >= lastFrameStart && int64(off) < lastFrameStart+9
		if int64(off) < lastFrameStart || inFinalHeaderIntegrity {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("trial %d: flip at %d (mid-log) recovered silently (err=%v)", trial, off, err)
			}
			continue
		}
		// Final record: tolerated as a torn tail — recovery succeeds with
		// every earlier event intact.
		if err != nil {
			t.Fatalf("trial %d: flip at %d (final record) failed recovery: %v", trial, off, err)
		}
		total := 0
		for o := int64(0); o < int64(len(full)); o += frameAt(t, full, o) {
			total++
		}
		if rec.Events != total-1 {
			t.Fatalf("trial %d: flip at %d recovered %d events; want %d", trial, off, rec.Events, total-1)
		}
		fl.Close()
	}
}

// TestSnapshotCorruptionLoud: snapshots are renamed into place whole, so
// any damage — including truncation — is corruption, never a torn tail.
func TestSnapshotCorruptionLoud(t *testing.T) {
	dir := t.TempDir()
	fl, _, err := Open(dir, Options{CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	logSampleSession(t, fl)
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, _, _, err := scanDir(dir)
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshot on disk (err=%v)", err)
	}
	path := filepath.Join(dir, snapName(snaps[len(snaps)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncated snapshot.
	if err := writeFile(t, path, data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("truncated snapshot recovered silently")
	}

	// Bit-flipped snapshot.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/3] ^= 0x40
	if err := writeFile(t, path, flipped); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, _, err := Open(dir, Options{}); !errors.As(err, &ce) {
		t.Fatalf("corrupt snapshot error = %v; want *CorruptError", err)
	} else if ce.Error() == "" {
		t.Fatal("CorruptError renders empty")
	}
}
