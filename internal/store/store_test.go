package store

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
	"github.com/crowder/crowder/internal/transitivity"
)

// logSampleSession writes a representative event stream — appends,
// prunes, an atomic commit with asked and deduced verdicts — and returns
// what the recovered state must look like.
func logSampleSession(t *testing.T, fl *FileLog) {
	t.Helper()
	events := []Event{
		&Meta{Schema: []string{"name", "price"}, Aggregator: "dawid-skene"},
		&Append{Rows: []Row{
			{Src: -1, Values: []string{"iPad 2 16GB", "$490"}},
			{Src: -1, Values: []string{"iPad 2nd gen 16 GB", "$469"}},
			{Src: -1, Values: []string{"iPhone 4 16GB", "$520"}},
		}},
		&Prune{Absorbed: 3, Blocked: 1, Discovered: []simjoin.ScoredPair{
			{Pair: record.MakePair(0, 1), Likelihood: 0.8},
			{Pair: record.MakePair(0, 2), Likelihood: 0.4},
		}},
		&Commit{Ops: []Op{
			{Put: &PutOp{Pair: record.MakePair(0, 1), Likelihood: 0.8}},
			{Deduce: &DeduceOp{
				D: transitivity.Deduction{
					Pair:  record.MakePair(0, 2),
					Match: false,
					Path:  []record.Pair{record.MakePair(0, 1)},
				},
				Likelihood: 0.4,
			}},
			{Answers: []aggregate.Answer{
				{Pair: record.MakePair(0, 1), Worker: 0, Match: true},
				{Pair: record.MakePair(0, 1), Worker: 1, Match: true},
			}},
			{Posteriors: []PairVal{{Pair: record.MakePair(0, 1), Val: 0.97}}},
			{ClearPending: true},
		}},
		&Prune{Absorbed: 3, Blocked: 1, Discovered: []simjoin.ScoredPair{
			{Pair: record.MakePair(1, 2), Likelihood: 0.3},
		}},
	}
	for _, ev := range events {
		if err := fl.Log(ev); err != nil {
			t.Fatalf("Log(%T): %v", ev, err)
		}
	}
}

func checkSampleRecovered(t *testing.T, rec *Recovered) {
	t.Helper()
	if got, want := rec.Meta.Schema, []string{"name", "price"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Schema = %v; want %v", got, want)
	}
	if rec.Meta.Aggregator != "dawid-skene" {
		t.Errorf("Aggregator = %q", rec.Meta.Aggregator)
	}
	if len(rec.Rows) != 3 || rec.Rows[1].Values[0] != "iPad 2nd gen 16 GB" {
		t.Errorf("Rows = %+v", rec.Rows)
	}
	if got, want := rec.Boundaries, []int{3}; !reflect.DeepEqual(got, want) {
		t.Errorf("Boundaries = %v; want %v", got, want)
	}
	if rec.Blocked != 1 {
		t.Errorf("Blocked = %d; want 1", rec.Blocked)
	}
	// The commit cleared the first prune's pending; the second prune's
	// discovery is carried over.
	if len(rec.Pending) != 1 || rec.Pending[0].Pair != record.MakePair(1, 2) {
		t.Errorf("Pending = %+v", rec.Pending)
	}
	if rec.Cache.Len() != 2 {
		t.Fatalf("Cache.Len = %d; want 2", rec.Cache.Len())
	}
	asked := rec.Cache.Get(record.MakePair(0, 1))
	if asked == nil || len(asked.Answers) != 2 || asked.Posterior != 0.97 {
		t.Errorf("asked entry = %+v", asked)
	}
	ded := rec.Cache.Get(record.MakePair(0, 2))
	if ded == nil || ded.Deduction == nil || ded.Deduction.Match {
		t.Errorf("deduced entry = %+v", ded)
	}
}

func TestFileLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fl, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh dir recovered state: %+v", rec)
	}
	logSampleSession(t, fl)
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	fl2, rec2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	checkSampleRecovered(t, rec2)
	if rec2.WALBytes <= 0 {
		t.Errorf("WALBytes = %d; want > 0", rec2.WALBytes)
	}
}

// TestFileLogCompaction: with an aggressive compaction threshold the log
// collapses into a snapshot after every durable write, and recovery from
// snapshot+tail is identical to recovery from the pure WAL.
func TestFileLogCompaction(t *testing.T) {
	dir := t.TempDir()
	fl, _, err := Open(dir, Options{CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	logSampleSession(t, fl)
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, wals, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || len(wals) != 1 {
		t.Fatalf("generations on disk: snaps %v wals %v; want exactly one each", snaps, wals)
	}
	if snaps[0] == 0 {
		t.Fatal("compaction never ran")
	}

	fl2, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	checkSampleRecovered(t, rec)
	if rec.SnapshotBytes <= 0 {
		t.Errorf("SnapshotBytes = %d; want > 0", rec.SnapshotBytes)
	}
}

// TestFileLogQueueRoundTrip drives a real queue through the journal and
// checks the recovered snapshot restores an equivalent queue: same open
// work, same live leases, and in-flight collected answers surfaced for
// the resolver to adopt.
func TestFileLogQueueRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fl, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}

	base := time.Unix(5000, 0)
	q := crowd.NewQueue(crowd.QueueOptions{
		Lease:   time.Minute,
		Now:     func() time.Time { return base },
		Journal: QueueJournal(fl),
	})
	pairs := []record.Pair{record.MakePair(0, 1), record.MakePair(2, 3)}
	hits := crowd.PairHITsFromGen([][]record.Pair{pairs[:1], pairs[1:]}, 2)
	if err := q.Post(context.Background(), hits); err != nil {
		t.Fatal(err)
	}
	// One answered assignment (in-flight: its run hasn't completed), one
	// outstanding claim, one slot still open.
	c1, ok := q.Claim("alice")
	if !ok {
		t.Fatal("claim 1 failed")
	}
	var vs []crowd.Verdict
	for _, p := range c1.HIT.Pairs {
		vs = append(vs, crowd.Verdict{A: p.A, B: p.B, Match: true})
	}
	if err := q.Answer(c1.Token, vs); err != nil {
		t.Fatal(err)
	}
	c2, ok := q.Claim("bob")
	if !ok {
		t.Fatal("claim 2 failed")
	}
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Queue == nil {
		t.Fatal("no queue snapshot recovered")
	}
	q2 := crowd.RestoreQueue(crowd.QueueOptions{
		Lease: time.Minute,
		Now:   func() time.Time { return base },
	}, rec.Queue)

	if got, want := q2.Open(), q.Open(); !reflect.DeepEqual(got, want) {
		t.Errorf("Open() after restore = %+v; want %+v", got, want)
	}
	gh, ga := q.Depth()
	rh, ra := q2.Depth()
	if gh != rh || ga != ra {
		t.Errorf("Depth after restore = (%d,%d); want (%d,%d)", rh, ra, gh, ga)
	}
	if !q2.ClaimLive(c2.Token) {
		t.Error("bob's outstanding lease did not survive recovery")
	}
	if rec.Resume == nil || rec.Resume.Empty() {
		t.Fatal("in-flight answered assignment not surfaced for resume")
	}
	if rec.NextHITID <= hits[1].ID {
		t.Errorf("NextHITID = %d; want > %d", rec.NextHITID, hits[1].ID)
	}
	// alice's judged pairs travel to the resolver as partial answers.
	if rec.Cache.PartialLen() == 0 {
		t.Error("in-flight answers missing from recovered cache partials")
	}
}

// TestNoopStore: the default store accepts everything and owns nothing.
func TestNoopStore(t *testing.T) {
	var s Store = Noop{}
	if err := s.Log(&Meta{Schema: []string{"a"}}); err != nil {
		t.Fatalf("Noop.Log: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Noop.Close: %v", err)
	}
}

// TestFileLogQueueLifecycleCompaction drives the full queue event
// vocabulary — posts, claims, answers, a sweep expiry, a retraction —
// through an aggressively compacting log, so the recovered state is
// rebuilt from a snapshot (queue + cache sections included) rather than
// a raw WAL replay.
func TestFileLogQueueLifecycleCompaction(t *testing.T) {
	dir := t.TempDir()
	fl, _, err := Open(dir, Options{CompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(7000, 0)
	q := crowd.NewQueue(crowd.QueueOptions{
		Lease:   time.Minute,
		Now:     func() time.Time { return now },
		Journal: QueueJournal(fl),
	})
	hits := crowd.PairHITsFromGen([][]record.Pair{
		{record.MakePair(0, 1)},
		{record.MakePair(2, 3)},
		{record.MakePair(4, 5)},
	}, 1)
	if err := q.Post(context.Background(), hits); err != nil {
		t.Fatal(err)
	}
	// One answered, one claim expired by a sweep, one retracted.
	c, ok := q.Claim("alice")
	if !ok {
		t.Fatal("claim failed")
	}
	var vs []crowd.Verdict
	for _, p := range c.HIT.Pairs {
		vs = append(vs, crowd.Verdict{A: p.A, B: p.B, Match: true})
	}
	if err := q.Answer(c.Token, vs); err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Claim("bob"); !ok {
		t.Fatal("bob's claim failed")
	}
	now = now.Add(2 * time.Minute)
	q.Sweep() // bob's lease lapses -> QueueExpired
	q.Retract([]int{hits[2].ID})
	if err := fl.Close(); err != nil {
		t.Fatal(err)
	}

	// The aggressive threshold forces every durable write to compact:
	// recovery must come from a snapshot carrying the queue section.
	snaps, _, _, err := scanDir(dir)
	if err != nil || len(snaps) != 1 || snaps[0] == 0 {
		t.Fatalf("no compacted snapshot on disk (snaps %v, err %v)", snaps, err)
	}
	_, rec, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Queue == nil {
		t.Fatal("no queue snapshot recovered")
	}
	q2 := crowd.RestoreQueue(crowd.QueueOptions{
		Lease: time.Minute,
		Now:   func() time.Time { return now },
	}, rec.Queue)
	gh, ga := q.Depth()
	rh, ra := q2.Depth()
	if gh != rh || ga != ra {
		t.Errorf("Depth after snapshot restore = (%d,%d); want (%d,%d)", rh, ra, gh, ga)
	}
	if got, want := q2.Open(), q.Open(); !reflect.DeepEqual(got, want) {
		t.Errorf("Open() after snapshot restore = %+v; want %+v", got, want)
	}
	// alice's completed assignment survives as resumable in-flight state;
	// the retracted HIT must not resurface.
	if rec.Resume == nil || rec.Resume.Empty() {
		t.Error("answered assignment not surfaced for resume")
	}
	for _, oh := range q2.Open() {
		if oh.HIT.ID == hits[2].ID {
			t.Error("retracted HIT resurrected by recovery")
		}
	}
	if fl2, _ := fl.Stats(); fl2 < 0 {
		t.Errorf("Stats() wal bytes = %d", fl2)
	}
}

// TestFileLogSticky: a poisoned log keeps failing and never half-applies.
func TestFileLogSticky(t *testing.T) {
	dir := t.TempDir()
	fl, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Close the backing file out from under the writer to force a sync
	// failure on the next durable event.
	fl.f.Close()
	if err := fl.Log(&Meta{Schema: []string{"a"}}); err == nil {
		t.Fatal("Log after losing the file should fail")
	}
	if err := fl.Log(&Meta{Schema: []string{"a"}}); err == nil {
		t.Fatal("poisoned log must stay failed")
	}
}

func TestScanDirIgnoresJunk(t *testing.T) {
	dir := t.TempDir()
	for _, n := range []string{"snapshot-00000002.snap", "wal-00000002.log", "notes.txt", "snapshot-x.snap"} {
		if err := writeFile(t, filepath.Join(dir, n), nil); err != nil {
			t.Fatal(err)
		}
	}
	snaps, wals, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snaps, []int{2}) || !reflect.DeepEqual(wals, []int{2}) {
		t.Errorf("snaps %v wals %v", snaps, wals)
	}
}

// Machine verdicts and the hybrid spend counter survive both recovery
// paths: WAL replay and snapshot+tail (compaction forces the snapshot).
func TestMachineOpAndSpentRoundTrip(t *testing.T) {
	for name, opts := range map[string]Options{
		"wal":      {},
		"snapshot": {CompactBytes: 1},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			fl, _, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			events := []Event{
				&Meta{Schema: []string{"name"}},
				&Commit{Ops: []Op{
					{Machine: &MachineOp{Pair: record.MakePair(0, 1), Likelihood: 0.8, Posterior: 0.96}},
					{Machine: &MachineOp{Pair: record.MakePair(1, 2), Likelihood: 0.4, Posterior: 0.03}},
				}},
				&Meta{Spent: 1.25},
				&Meta{Spent: 2.5}, // the running total: the last write wins
			}
			for _, ev := range events {
				if err := fl.Log(ev); err != nil {
					t.Fatalf("Log(%T): %v", ev, err)
				}
			}
			if err := fl.Close(); err != nil {
				t.Fatal(err)
			}

			fl2, rec, err := Open(dir, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer fl2.Close()
			if rec.Meta.Spent != 2.5 {
				t.Errorf("Spent = %v; want 2.5", rec.Meta.Spent)
			}
			if rec.Cache.MachineLen() != 2 {
				t.Fatalf("MachineLen = %d; want 2", rec.Cache.MachineLen())
			}
			e := rec.Cache.Get(record.MakePair(0, 1))
			if e == nil || e.Posterior != 0.96 || e.Likelihood != 0.8 {
				t.Errorf("machine entry = %+v", e)
			}
			// A Spent-free Meta (e.g. a later config write) must not zero
			// the recovered total.
			if err := fl2.Log(&Meta{Aggregator: "dawid-skene"}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
