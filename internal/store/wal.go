// Package store is the durable session storage behind the resolver: a
// write-ahead log of every state mutation — record appends, candidate
// prunes, verdict commits (asked and deduced, with provenance), posted
// HITs, claim leases, raw answers, retractions — plus periodic
// compacting snapshots, so recovering a session is "load snapshot, replay
// WAL tail" rather than re-running (and re-paying) any crowd work.
//
// The Store interface is pluggable: the zero-cost Noop keeps the
// engine's default in-memory behaviour bit-identical to a build without
// this package, and FileLog is the file-backed implementation crowderd
// mounts under -data-dir. Both the log and the snapshot share one frame
// format and one event vocabulary; a snapshot is literally a compacted
// event stream, so the replayer that recovers a session is the same code
// that compacts one.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame layout: every record on disk — WAL and snapshot alike — is
//
//	magic (1) | payload length (4, LE) | header CRC (4, LE) | payload CRC (4, LE) | payload
//
// The header CRC covers magic+length, so a corrupted length field can
// never send the reader off into the weeds; the payload CRC catches torn
// or bit-rotted payloads. CRC32-Castagnoli on both (hardware-accelerated
// on every platform Go targets).
const (
	frameMagic   = 0xC7
	frameHdrSize = 13
	// maxFramePayload bounds a single frame. Nothing the engine logs
	// comes near this; a "valid" header asking for more is corruption.
	maxFramePayload = 256 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends one framed payload to dst and returns the result.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameHdrSize]byte
	hdr[0] = frameMagic
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(hdr[:5], castagnoli))
	binary.LittleEndian.PutUint32(hdr[9:13], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// CorruptError reports unrecoverable log damage: a frame whose header or
// payload checksum fails somewhere other than the file's torn tail.
// Recovery fails loudly on it — silently skipping a mid-log hole would
// resurrect a session with paid verdicts missing.
type CorruptError struct {
	File   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: corrupt log %s at offset %d: %s", e.File, e.Offset, e.Reason)
}

// scanFrames walks the framed records in data, calling fn with each
// payload. It returns the byte offset of the end of the last whole frame
// (the point to truncate to before appending) and whether the file ends
// in a torn record.
//
// Torn vs corrupt: a crash can only leave a *prefix* of the last buffered
// write, so damage confined to the final record is tolerated (the record
// is dropped); anything before it must checksum clean or the scan fails
// with a CorruptError.
//
//   - fewer than frameHdrSize bytes remain → torn header, tolerated
//   - header CRC mismatch → corrupt (loud), wherever it happens
//   - header clean but the payload runs past EOF → torn payload, tolerated
//   - payload CRC mismatch on the frame that ends exactly at EOF → torn
//     payload (out-of-order page writes), tolerated
//   - payload CRC mismatch anywhere earlier → corrupt (loud)
func scanFrames(file string, data []byte, fn func(payload []byte) error) (valid int64, torn bool, err error) {
	off := 0
	for off < len(data) {
		rem := len(data) - off
		if rem < frameHdrSize {
			return int64(off), true, nil
		}
		hdr := data[off : off+frameHdrSize]
		wantHdr := binary.LittleEndian.Uint32(hdr[5:9])
		if crc32.Checksum(hdr[:5], castagnoli) != wantHdr {
			return int64(off), false, &CorruptError{File: file, Offset: int64(off), Reason: "header checksum mismatch"}
		}
		if hdr[0] != frameMagic {
			return int64(off), false, &CorruptError{File: file, Offset: int64(off), Reason: fmt.Sprintf("bad magic 0x%02x", hdr[0])}
		}
		n := int(binary.LittleEndian.Uint32(hdr[1:5]))
		if n > maxFramePayload {
			return int64(off), false, &CorruptError{File: file, Offset: int64(off), Reason: fmt.Sprintf("frame length %d exceeds limit", n)}
		}
		if off+frameHdrSize+n > len(data) {
			return int64(off), true, nil
		}
		payload := data[off+frameHdrSize : off+frameHdrSize+n]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[9:13]) {
			if off+frameHdrSize+n == len(data) {
				return int64(off), true, nil
			}
			return int64(off), false, &CorruptError{File: file, Offset: int64(off), Reason: "payload checksum mismatch"}
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return int64(off), false, err
			}
		}
		off += frameHdrSize + n
	}
	return int64(off), false, nil
}

// writeFrame writes one framed payload to w.
func writeFrame(w io.Writer, payload []byte) (int, error) {
	return w.Write(appendFrame(nil, payload))
}
