package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/crowder/crowder/internal/record"
)

func mk(a, b int) record.Pair { return record.MakePair(record.ID(a), record.ID(b)) }

func TestF1(t *testing.T) {
	if got := F1(1, 1); got != 1 {
		t.Errorf("F1(1,1) = %v; want 1", got)
	}
	if got := F1(0, 0); got != 0 {
		t.Errorf("F1(0,0) = %v; want 0", got)
	}
	if got := F1(0.5, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("F1(0.5,1) = %v; want 2/3", got)
	}
}

func TestPrecisionRecallAt(t *testing.T) {
	truth := record.NewPairSet(mk(0, 1), mk(2, 3), mk(4, 5))
	ranked := []record.Pair{mk(0, 1), mk(0, 2), mk(2, 3), mk(1, 3)}
	p, r := PrecisionRecallAt(ranked, truth, truth.Len(), 3)
	if math.Abs(p-2.0/3.0) > 1e-12 {
		t.Errorf("precision = %v; want 2/3", p)
	}
	if math.Abs(r-2.0/3.0) > 1e-12 {
		t.Errorf("recall = %v; want 2/3", r)
	}
	// n beyond list length clamps.
	p, r = PrecisionRecallAt(ranked, truth, truth.Len(), 100)
	if math.Abs(p-0.5) > 1e-12 || math.Abs(r-2.0/3.0) > 1e-12 {
		t.Errorf("clamped p, r = %v, %v", p, r)
	}
	// Degenerate inputs.
	if p, r := PrecisionRecallAt(nil, truth, 3, 5); p != 0 || r != 0 {
		t.Error("empty ranked list should give 0, 0")
	}
}

func TestPRCurve(t *testing.T) {
	truth := record.NewPairSet(mk(0, 1), mk(2, 3))
	ranked := []record.Pair{mk(0, 1), mk(9, 8), mk(2, 3)}
	pts := PRCurve(ranked, truth, 2)
	// Points at each true match (n=1, n=3) plus the terminal point (n=3).
	if len(pts) != 3 {
		t.Fatalf("got %d points; want 3", len(pts))
	}
	if pts[0].Precision != 1 || pts[0].Recall != 0.5 {
		t.Errorf("first point = %+v", pts[0])
	}
	if math.Abs(pts[1].Precision-2.0/3.0) > 1e-12 || pts[1].Recall != 1 {
		t.Errorf("second point = %+v", pts[1])
	}
}

func TestPRCurveEmpty(t *testing.T) {
	if pts := PRCurve(nil, record.NewPairSet(), 0); len(pts) != 0 {
		t.Errorf("empty inputs should give no points; got %v", pts)
	}
}

func TestAUCPRPerfect(t *testing.T) {
	// Perfect ranking: all matches first → AUC = 1.
	truth := record.NewPairSet(mk(0, 1), mk(2, 3))
	ranked := []record.Pair{mk(0, 1), mk(2, 3), mk(5, 6)}
	pts := PRCurve(ranked, truth, 2)
	if auc := AUCPR(pts); auc < 0.99 {
		t.Errorf("perfect AUC = %v; want ~1", auc)
	}
}

func TestAUCPRWorseRankingScoresLower(t *testing.T) {
	truth := record.NewPairSet(mk(0, 1), mk(2, 3))
	good := []record.Pair{mk(0, 1), mk(2, 3), mk(5, 6), mk(7, 8)}
	bad := []record.Pair{mk(5, 6), mk(7, 8), mk(0, 1), mk(2, 3)}
	if AUCPR(PRCurve(good, truth, 2)) <= AUCPR(PRCurve(bad, truth, 2)) {
		t.Error("better ranking should have higher AUC")
	}
}

func TestPrecisionAtRecall(t *testing.T) {
	pts := []PRPoint{
		{N: 1, Precision: 1.0, Recall: 0.25},
		{N: 5, Precision: 0.8, Recall: 0.75},
		{N: 20, Precision: 0.4, Recall: 1.0},
	}
	if got := PrecisionAtRecall(pts, 0.5); got != 0.8 {
		t.Errorf("P@R(0.5) = %v; want 0.8", got)
	}
	if got := PrecisionAtRecall(pts, 0.9); got != 0.4 {
		t.Errorf("P@R(0.9) = %v; want 0.4", got)
	}
	if got := PrecisionAtRecall(pts, 1.1); got != 0 {
		t.Errorf("P@R beyond max = %v; want 0", got)
	}
}

func TestMaxRecall(t *testing.T) {
	pts := []PRPoint{{Recall: 0.3}, {Recall: 0.92}, {Recall: 0.7}}
	if got := MaxRecall(pts); got != 0.92 {
		t.Errorf("MaxRecall = %v; want 0.92", got)
	}
}

func TestFormatCurve(t *testing.T) {
	pts := []PRPoint{{N: 1, Precision: 1, Recall: 0.5}, {N: 4, Precision: 0.5, Recall: 1}}
	s := FormatCurve(pts, []float64{0.5, 1.0})
	if !strings.Contains(s, "50%") || !strings.Contains(s, "100") {
		t.Errorf("FormatCurve output missing grid rows:\n%s", s)
	}
}

// Property: precision and recall stay in [0,1]; recall is monotone
// non-decreasing along the curve.
func TestPRCurveProperty(t *testing.T) {
	f := func(seedTruth, seedRank []uint8) bool {
		truth := record.NewPairSet()
		for i := 0; i+1 < len(seedTruth); i += 2 {
			truth.Add(record.ID(seedTruth[i]%16), record.ID(seedTruth[i+1]%16))
		}
		var ranked []record.Pair
		seen := record.NewPairSet()
		for i := 0; i+1 < len(seedRank); i += 2 {
			a, b := record.ID(seedRank[i]%16), record.ID(seedRank[i+1]%16)
			if a == b || seen.Has(a, b) {
				continue
			}
			seen.Add(a, b)
			ranked = append(ranked, record.MakePair(a, b))
		}
		total := truth.Len()
		if total == 0 {
			return true
		}
		pts := PRCurve(ranked, truth, total)
		prevR := 0.0
		for _, pt := range pts {
			if pt.Precision < 0 || pt.Precision > 1 || pt.Recall < 0 || pt.Recall > 1 {
				return false
			}
			if pt.Recall < prevR {
				return false
			}
			prevR = pt.Recall
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
