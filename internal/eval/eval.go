// Package eval computes the quality metrics of Section 7.3: precision,
// recall, F1, and precision-recall curves over ranked lists of record
// pairs ("the first n pairs are identified as matching pairs; to plot the
// precision-recall curve, we vary n").
package eval

import (
	"fmt"
	"strings"

	"github.com/crowder/crowder/internal/record"
)

// PRPoint is one point of a precision-recall curve.
type PRPoint struct {
	// N is the cutoff: the first N ranked pairs are declared matches.
	N int
	// Precision is the fraction of declared matches that are correct.
	Precision float64
	// Recall is the fraction of all true matches that were declared.
	Recall float64
}

// F1 returns the harmonic mean of precision and recall.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// PrecisionRecallAt evaluates precision and recall when the first n pairs
// of the ranked list are declared matches. totalMatches is the number of
// true matching pairs in the dataset (the recall denominator).
func PrecisionRecallAt(ranked []record.Pair, truth record.PairSet, totalMatches, n int) (precision, recall float64) {
	if n > len(ranked) {
		n = len(ranked)
	}
	if n == 0 || totalMatches == 0 {
		return 0, 0
	}
	correct := 0
	for _, p := range ranked[:n] {
		if truth.Has(p.A, p.B) {
			correct++
		}
	}
	return float64(correct) / float64(n), float64(correct) / float64(totalMatches)
}

// PRCurve sweeps the cutoff n over the ranked list and returns the curve.
// Points are emitted at every position where a true match is encountered
// (the standard construction: precision is recorded at each recall step),
// plus the final point at n = len(ranked).
func PRCurve(ranked []record.Pair, truth record.PairSet, totalMatches int) []PRPoint {
	var points []PRPoint
	correct := 0
	for i, p := range ranked {
		if truth.Has(p.A, p.B) {
			correct++
			points = append(points, PRPoint{
				N:         i + 1,
				Precision: float64(correct) / float64(i+1),
				Recall:    float64(correct) / float64(totalMatches),
			})
		}
	}
	if len(ranked) > 0 {
		points = append(points, PRPoint{
			N:         len(ranked),
			Precision: float64(correct) / float64(len(ranked)),
			Recall:    float64(correct) / float64(totalMatches),
		})
	}
	return points
}

// AUCPR returns the area under the precision-recall curve by trapezoidal
// integration over recall, a single-number summary used to compare
// techniques in tests and ablations.
func AUCPR(points []PRPoint) float64 {
	var auc, prevR, prevP float64
	first := true
	for _, pt := range points {
		if first {
			auc += pt.Recall * pt.Precision
			first = false
		} else if pt.Recall > prevR {
			auc += (pt.Recall - prevR) * (pt.Precision + prevP) / 2
		}
		prevR, prevP = pt.Recall, pt.Precision
	}
	return auc
}

// PrecisionAtRecall interpolates the maximum precision achieved at or
// beyond the given recall level, or 0 if the curve never reaches it.
func PrecisionAtRecall(points []PRPoint, recall float64) float64 {
	best := 0.0
	for _, pt := range points {
		if pt.Recall >= recall && pt.Precision > best {
			best = pt.Precision
		}
	}
	return best
}

// FormatCurve renders a PR curve as the "recall% precision%" rows the
// paper's Figure 12/15 plots, sampled at the given recall grid.
func FormatCurve(points []PRPoint, grid []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %12s\n", "Recall", "Precision")
	for _, r := range grid {
		p := PrecisionAtRecall(points, r)
		fmt.Fprintf(&b, "%7.0f%% %11.1f%%\n", r*100, p*100)
	}
	return b.String()
}

// MaxRecall returns the highest recall the curve attains.
func MaxRecall(points []PRPoint) float64 {
	best := 0.0
	for _, pt := range points {
		if pt.Recall > best {
			best = pt.Recall
		}
	}
	return best
}
