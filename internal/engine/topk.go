package engine

import "slices"

// TopK is a bounded ranking collector: it consumes a stream of items and
// retains the k best under a total-order comparator, using O(k) memory
// regardless of stream length. It is the consumer half of a streaming
// producer such as simjoin.Index.UpdateSeq — the producer never
// materializes its output and the collector never holds more than k items,
// so the pair never allocates proportionally to the candidate count.
//
// The retained items form a worst-at-root heap: admitting an item into a
// full collector is O(log k) and items worse than the current root are
// rejected in O(1). Because cmp is a total order, the retained set — and
// therefore Ranked's output — is a pure function of the multiset of
// pushed items, independent of push order; a nondeterministically
// interleaved parallel stream still ranks deterministically.
//
// k ≤ 0 means unbounded: every item is retained and Ranked sorts them,
// which is exactly the materializing path the bound generalizes.
type TopK[T any] struct {
	k     int
	cmp   func(a, b T) int
	items []T
	// heaped is whether items is heap-ordered yet; the collector
	// accumulates plainly until it first exceeds k.
	heaped bool
}

// NewTopK creates a collector retaining the k smallest items under cmp
// (cmp orders best first, so "smallest" is "best"; pass the ranking
// comparator directly). k ≤ 0 retains everything.
func NewTopK[T any](k int, cmp func(a, b T) int) *TopK[T] {
	return &TopK[T]{k: k, cmp: cmp}
}

// Len returns the number of items currently retained (≤ k when bounded).
func (t *TopK[T]) Len() int { return len(t.items) }

// Push offers an item to the collector.
func (t *TopK[T]) Push(v T) {
	if t.k <= 0 || len(t.items) < t.k {
		t.items = append(t.items, v)
		if t.heaped {
			t.up(len(t.items) - 1)
		}
		return
	}
	if !t.heaped {
		t.heapify()
	}
	// Root is the worst retained item; replace it if v ranks better.
	if t.cmp(v, t.items[0]) >= 0 {
		return
	}
	t.items[0] = v
	t.down(0)
}

// Ranked returns the retained items best-first and resets the collector.
// The result is sorted by cmp, so for a bounded collector it is the first
// k items of the fully sorted stream — bit-identical to sorting a
// materialized slice and truncating.
func (t *TopK[T]) Ranked() []T {
	out := t.items
	t.items = nil
	t.heaped = false
	slices.SortFunc(out, t.cmp)
	return out
}

// MergeRanked merges several independently collected lists into one
// ranked top-k result under cmp (k ≤ 0 keeps everything). The inputs
// need not be sorted; the output is the k best items of the combined
// multiset, sorted best-first. Because a bounded collector only ever
// discards items worse than k retained ones, merging per-shard top-k
// survivors through another top-k collector is bit-identical to ranking
// the union stream through a single collector — the deterministic-merge
// step of the sharded machine pass.
func MergeRanked[T any](k int, cmp func(a, b T) int, lists ...[]T) []T {
	t := NewTopK(k, cmp)
	for _, l := range lists {
		for _, v := range l {
			t.Push(v)
		}
	}
	return t.Ranked()
}

// worse reports whether item i ranks strictly worse than item j.
func (t *TopK[T]) worse(i, j int) bool { return t.cmp(t.items[i], t.items[j]) > 0 }

func (t *TopK[T]) heapify() {
	for i := len(t.items)/2 - 1; i >= 0; i-- {
		t.down(i)
	}
	t.heaped = true
}

func (t *TopK[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(i, parent) {
			break
		}
		t.items[i], t.items[parent] = t.items[parent], t.items[i]
		i = parent
	}
}

func (t *TopK[T]) down(i int) {
	n := len(t.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && t.worse(l, worst) {
			worst = l
		}
		if r := 2*i + 2; r < n && t.worse(r, worst) {
			worst = r
		}
		if worst == i {
			return
		}
		t.items[i], t.items[worst] = t.items[worst], t.items[i]
		i = worst
	}
}
