package engine

import (
	"cmp"
	"math/rand"
	"slices"
	"testing"
)

func TestTopKUnboundedEqualsSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int, 500)
	for i := range vals {
		vals[i] = rng.Intn(100)
	}
	tk := NewTopK(0, cmp.Compare[int])
	for _, v := range vals {
		tk.Push(v)
	}
	want := slices.Clone(vals)
	slices.Sort(want)
	if got := tk.Ranked(); !slices.Equal(got, want) {
		t.Fatalf("unbounded TopK != sort: got %v want %v", got, want)
	}
}

func TestTopKBoundedEqualsSortTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		k := 1 + rng.Intn(50)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(40) // plenty of duplicates
		}
		tk := NewTopK(k, cmp.Compare[int])
		for _, v := range vals {
			tk.Push(v)
		}
		want := slices.Clone(vals)
		slices.Sort(want)
		if len(want) > k {
			want = want[:k]
		}
		if got := tk.Ranked(); !slices.Equal(got, want) {
			t.Fatalf("n=%d k=%d: got %v want %v", n, k, got, want)
		}
	}
}

func TestTopKOrderIndependent(t *testing.T) {
	// A total-order comparator must make the result a pure function of the
	// pushed multiset, whatever the interleaving.
	rng := rand.New(rand.NewSource(3))
	vals := make([]int, 300)
	for i := range vals {
		vals[i] = i // distinct: total order
	}
	collect := func(order []int) []int {
		tk := NewTopK(25, cmp.Compare[int])
		for _, v := range order {
			tk.Push(v)
		}
		return tk.Ranked()
	}
	want := collect(vals)
	for trial := 0; trial < 10; trial++ {
		shuffled := slices.Clone(vals)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := collect(shuffled); !slices.Equal(got, want) {
			t.Fatalf("order-dependent result: got %v want %v", got, want)
		}
	}
}

func TestMergeRankedEqualsSingleCollector(t *testing.T) {
	// The deterministic-merge property the sharded join relies on: any
	// partition of the stream into per-shard bounded collectors, merged
	// through MergeRanked, equals one collector over the whole stream.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(300)
		k := rng.Intn(40) // 0 = unbounded
		shards := 1 + rng.Intn(8)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = rng.Intn(60)
		}
		single := NewTopK(k, cmp.Compare[int])
		parts := make([]*TopK[int], shards)
		for s := range parts {
			parts[s] = NewTopK(k, cmp.Compare[int])
		}
		for _, v := range vals {
			single.Push(v)
			parts[rng.Intn(shards)].Push(v)
		}
		lists := make([][]int, shards)
		for s, p := range parts {
			lists[s] = p.Ranked()
		}
		want := single.Ranked()
		if got := MergeRanked(k, cmp.Compare[int], lists...); !slices.Equal(got, want) {
			t.Fatalf("n=%d k=%d shards=%d: merged %v, single %v", n, k, shards, got, want)
		}
	}
}

func TestTopKRankedResets(t *testing.T) {
	tk := NewTopK(3, cmp.Compare[int])
	for _, v := range []int{5, 1, 4, 2, 3} {
		tk.Push(v)
	}
	if got := tk.Ranked(); !slices.Equal(got, []int{1, 2, 3}) {
		t.Fatalf("first Ranked: %v", got)
	}
	if tk.Len() != 0 {
		t.Fatalf("Len after Ranked = %d", tk.Len())
	}
	tk.Push(9)
	if got := tk.Ranked(); !slices.Equal(got, []int{9}) {
		t.Fatalf("reuse after Ranked: %v", got)
	}
}
