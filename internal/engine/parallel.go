package engine

import (
	"runtime"
	"sync"
)

// WorkerCount resolves a requested parallelism level against n work
// items: non-positive means GOMAXPROCS, and the result is clamped to
// [1, n]. Every data-parallel fan-out in the repository (the sharded
// similarity join, concurrent HIT execution) sizes itself with this so
// the scheduling policy lives in one place.
func WorkerCount(requested, n int) int {
	p := requested
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Workers runs fn(w) for every w in [0, workers) concurrently and waits
// for all of them. With workers <= 1 it calls fn inline, avoiding
// goroutine overhead on the sequential path.
func Workers(workers int, fn func(w int)) {
	if workers <= 1 {
		if workers == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
