// Package engine provides the staged execution framework behind
// crowder.Resolve: a pipeline of named stages connected by channels, with
// per-stage wall-clock accounting.
//
// Each stage runs in its own goroutine and receives work from its
// predecessor over a buffered channel, so when several states stream
// through a pipeline (RunAll), stage N processes state k while stage N−1
// is already working on state k+1 — classic pipeline parallelism. A
// single-state Run degenerates to sequential execution but keeps the
// uniform timing and error plumbing.
//
// The pipeline is generic over the state type S; crowder threads one
// resolve-state struct through prune → generate → execute → aggregate.
//
// Every run is bound to a context.Context: stages receive it and are
// expected to honour cancellation mid-stage (long-running stages such as
// asynchronous crowd execution select on ctx.Done), and the pipeline
// itself stops dispatching further stages to a state once the context is
// cancelled. A cancelled run returns ctx's error.
package engine

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"
)

// StageStat is the measured wall-clock time a stage spent processing, as
// reported by Run/RunAll. For RunAll it is cumulative across states.
type StageStat struct {
	Name     string
	Duration time.Duration
}

// Stage is one step of a pipeline: a named transformation of the state.
// Run receives the run's context and the state produced by the previous
// stage and returns the state handed to the next one. Stages that block —
// waiting on crowd answers, network calls — must select on ctx.Done so
// in-flight runs cancel cleanly.
type Stage[S any] struct {
	Name string
	Run  func(context.Context, S) (S, error)
}

// Pipeline chains stages over a state type S.
type Pipeline[S any] struct {
	stages []Stage[S]
}

// New builds a pipeline from the given stages, executed in order.
func New[S any](stages ...Stage[S]) *Pipeline[S] {
	return &Pipeline[S]{stages: stages}
}

// Upto returns the sub-pipeline consisting of the stages up to and
// including the first stage with the given name, sharing the underlying
// stage definitions. Callers that only need a prefix of a workflow — cost
// estimation runs prune→generate without ever executing the crowd —
// derive it from the canonical pipeline instead of duplicating stage
// wiring. If no stage has the name, the whole pipeline is returned.
func (p *Pipeline[S]) Upto(name string) *Pipeline[S] {
	for i, st := range p.stages {
		if st.Name == name {
			return &Pipeline[S]{stages: p.stages[:i+1]}
		}
	}
	return p
}

// item carries one state through the channel chain. A state whose stage
// errored keeps flowing (so ordering and stats stay intact) but skips all
// remaining stages.
type item[S any] struct {
	state S
	err   error
}

// runStage invokes one stage, converting a panic into an error. Stages
// execute on pipeline goroutines, so without this a stage panic would
// bypass any recover() the pipeline's caller installed and kill the
// process.
func runStage[S any](st Stage[S], ctx context.Context, s S) (out S, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return st.Run(ctx, s)
}

// Run sends a single state through the pipeline and returns the final
// state plus per-stage timings. On stage error the remaining stages are
// skipped and the error is returned.
func (p *Pipeline[S]) Run(ctx context.Context, s S) (S, []StageStat, error) {
	out, stats, err := p.RunAll(ctx, []S{s})
	if err != nil {
		var zero S
		return zero, stats, err
	}
	return out[0], stats, nil
}

// RunAll streams every state through the pipeline, preserving input
// order in the output. Each stage runs in its own goroutine connected to
// its neighbours by buffered channels, so distinct states overlap across
// stages. The returned error is the first one any stage produced (in
// input order); states that errored carry their zero value in the output
// slice. Once ctx is cancelled, states reaching a stage are failed with
// ctx's error instead of being processed.
func (p *Pipeline[S]) RunAll(ctx context.Context, states []S) ([]S, []StageStat, error) {
	stats := make([]StageStat, len(p.stages))
	for i, st := range p.stages {
		stats[i].Name = st.Name
	}
	if len(p.stages) == 0 {
		out := append([]S(nil), states...)
		return out, stats, nil
	}

	// Small buffers decouple neighbouring stages without letting a fast
	// producer run arbitrarily far ahead of a slow consumer.
	const stageBuffer = 4
	in := make(chan item[S], stageBuffer)
	ch := in
	for i, st := range p.stages {
		out := make(chan item[S], stageBuffer)
		go func(st Stage[S], idx int, in <-chan item[S], out chan<- item[S]) {
			var elapsed time.Duration
			for it := range in {
				if it.err == nil {
					if cerr := ctx.Err(); cerr != nil {
						it.err = cerr
						var zero S
						it.state = zero
					}
				}
				if it.err == nil {
					start := time.Now()
					var next S
					var err error
					// Label the stage's goroutines (and everything it
					// spawns) so mutex/block/CPU profiles attribute
					// contention to pipeline stages by name.
					pprof.Do(ctx, pprof.Labels("stage", st.Name), func(ctx context.Context) {
						next, err = runStage(st, ctx, it.state)
					})
					elapsed += time.Since(start)
					if err != nil {
						it.err = fmt.Errorf("%s stage: %w", st.Name, err)
						var zero S
						it.state = zero
					} else {
						it.state = next
					}
				}
				out <- it
			}
			stats[idx].Duration = elapsed // write after in closes; read after out drains
			close(out)
		}(st, i, ch, out)
		ch = out
	}

	go func() {
		for _, s := range states {
			in <- item[S]{state: s}
		}
		close(in)
	}()

	outs := make([]S, 0, len(states))
	var firstErr error
	for it := range ch {
		if it.err != nil && firstErr == nil {
			firstErr = it.err
		}
		outs = append(outs, it.state)
	}
	return outs, stats, firstErr
}
