package engine

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// pure adapts a context-free transformation to the Stage signature; most
// tests don't care about cancellation.
func pure[S any](f func(S) (S, error)) func(context.Context, S) (S, error) {
	return func(_ context.Context, s S) (S, error) { return f(s) }
}

func TestRunSingleState(t *testing.T) {
	p := New(
		Stage[int]{Name: "double", Run: pure(func(x int) (int, error) { return 2 * x, nil })},
		Stage[int]{Name: "inc", Run: pure(func(x int) (int, error) { return x + 1, nil })},
	)
	out, stats, err := p.Run(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if out != 21 {
		t.Fatalf("out = %d; want 21", out)
	}
	if len(stats) != 2 || stats[0].Name != "double" || stats[1].Name != "inc" {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRunAllPreservesOrder(t *testing.T) {
	p := New(
		Stage[int]{Name: "square", Run: pure(func(x int) (int, error) { return x * x, nil })},
	)
	in := []int{3, 1, 4, 1, 5, 9, 2, 6}
	out, _, err := p.RunAll(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d outputs; want %d", len(out), len(in))
	}
	for i, x := range in {
		if out[i] != x*x {
			t.Fatalf("out[%d] = %d; want %d", i, out[i], x*x)
		}
	}
}

func TestStageErrorSkipsRemaining(t *testing.T) {
	boom := errors.New("boom")
	ran := false
	p := New(
		Stage[int]{Name: "fail", Run: pure(func(x int) (int, error) {
			if x == 2 {
				return 0, boom
			}
			return x, nil
		})},
		Stage[int]{Name: "after", Run: pure(func(x int) (int, error) {
			if x == 0 {
				ran = true // would only see 0 if the failed state leaked through
			}
			return x + 100, nil
		})},
	)
	out, _, err := p.RunAll(context.Background(), []int{1, 2, 3})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want wrapped boom", err)
	}
	if err == nil || !strings.Contains(err.Error(), "fail stage") {
		t.Fatalf("error should name the failing stage: %v", err)
	}
	if ran {
		t.Error("downstream stage ran on an errored state")
	}
	// Healthy states still complete.
	if out[0] != 101 || out[2] != 103 {
		t.Fatalf("healthy states mangled: %v", out)
	}
}

func TestRunErrorReturnsZeroState(t *testing.T) {
	p := New(
		Stage[string]{Name: "fail", Run: pure(func(string) (string, error) { return "x", errors.New("no") })},
	)
	out, _, err := p.Run(context.Background(), "in")
	if err == nil {
		t.Fatal("expected error")
	}
	if out != "" {
		t.Fatalf("errored Run should return the zero state, got %q", out)
	}
}

// Stages must overlap: with buffered channels, stage A can finish all
// items while stage B is still holding the first — if execution were
// stage-by-stage with a barrier, the signal below would never arrive and
// the pipeline would deadlock instead of completing.
func TestStagesOverlap(t *testing.T) {
	aDone := make(chan struct{})
	p := New(
		Stage[int]{Name: "a", Run: pure(func(x int) (int, error) {
			if x == 3 { // last item: stage A has seen everything
				close(aDone)
			}
			return x, nil
		})},
		Stage[int]{Name: "b", Run: pure(func(x int) (int, error) {
			if x == 0 {
				<-aDone // block the first item until A has drained its input
			}
			return x, nil
		})},
	)
	out, _, err := p.RunAll(context.Background(), []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d outputs", len(out))
	}
}

// A stage panic must surface as an error on the caller's goroutine, not
// kill the process from a pipeline goroutine.
func TestStagePanicBecomesError(t *testing.T) {
	p := New(
		Stage[int]{Name: "boomy", Run: pure(func(x int) (int, error) {
			var s []int
			return s[5], nil // index out of range
		})},
	)
	_, _, err := p.Run(context.Background(), 1)
	if err == nil {
		t.Fatal("stage panic should surface as an error")
	}
	if !strings.Contains(err.Error(), "boomy stage") || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("error should name the stage and the panic: %v", err)
	}
}

func TestEmptyPipeline(t *testing.T) {
	p := New[int]()
	out, stats, err := p.RunAll(context.Background(), []int{7, 8})
	if err != nil || len(stats) != 0 {
		t.Fatalf("empty pipeline: %v, %v", err, stats)
	}
	if out[0] != 7 || out[1] != 8 {
		t.Fatalf("empty pipeline should pass states through: %v", out)
	}
}

func TestUpto(t *testing.T) {
	trace := ""
	stage := func(name string) Stage[int] {
		return Stage[int]{Name: name, Run: pure(func(x int) (int, error) {
			trace += name + ";"
			return x + 1, nil
		})}
	}
	p := New(stage("prune"), stage("generate"), stage("execute"))
	out, stats, err := p.Upto("generate").Run(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if out != 2 || trace != "prune;generate;" {
		t.Fatalf("Upto ran the wrong stages: out=%d trace=%q", out, trace)
	}
	if len(stats) != 2 || stats[0].Name != "prune" || stats[1].Name != "generate" {
		t.Fatalf("stats = %+v", stats)
	}
	// Unknown names fall back to the whole pipeline.
	trace = ""
	if out, _, _ := p.Upto("nope").Run(context.Background(), 0); out != 3 || trace != "prune;generate;execute;" {
		t.Fatalf("Upto(unknown) should run everything: out=%d trace=%q", out, trace)
	}
}

// A context cancelled before the run starts fails every state with the
// context's error and never invokes a stage.
func TestRunAllPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	p := New(
		Stage[int]{Name: "never", Run: pure(func(x int) (int, error) { ran = true; return x, nil })},
	)
	_, _, err := p.Run(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	if ran {
		t.Error("stage ran under a cancelled context")
	}
}

// A stage that blocks must observe cancellation through the ctx it is
// handed, and downstream stages must not run for the cancelled state.
func TestRunCancelMidStage(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	downstream := false
	p := New(
		Stage[int]{Name: "block", Run: func(ctx context.Context, x int) (int, error) {
			cancel()
			<-ctx.Done()
			return 0, ctx.Err()
		}},
		Stage[int]{Name: "after", Run: pure(func(x int) (int, error) { downstream = true; return x, nil })},
	)
	_, _, err := p.Run(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	if downstream {
		t.Error("downstream stage ran after cancellation")
	}
}

func TestWorkerCount(t *testing.T) {
	cases := []struct{ requested, n, want int }{
		{4, 10, 4},
		{4, 2, 2},   // clamped to the work items
		{0, 0, 1},   // never below 1
		{-3, 5, -1}, // GOMAXPROCS-resolved: checked below
	}
	for _, tc := range cases {
		got := WorkerCount(tc.requested, tc.n)
		if tc.want > 0 && got != tc.want {
			t.Errorf("WorkerCount(%d, %d) = %d; want %d", tc.requested, tc.n, got, tc.want)
		}
		if got < 1 {
			t.Errorf("WorkerCount(%d, %d) = %d; must be >= 1", tc.requested, tc.n, got)
		}
	}
	if got := WorkerCount(0, 1<<30); got != runtime.GOMAXPROCS(0) {
		t.Errorf("WorkerCount(0, big) = %d; want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
}

func TestWorkers(t *testing.T) {
	for _, workers := range []int{0, 1, 4} {
		var ran [8]atomic.Bool
		Workers(workers, func(w int) { ran[w].Store(true) })
		for w := 0; w < 8; w++ {
			if want := w < workers; ran[w].Load() != want {
				t.Errorf("Workers(%d): fn(%d) ran=%v want %v", workers, w, ran[w].Load(), want)
			}
		}
	}
}
