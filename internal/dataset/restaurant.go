package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/crowder/crowder/internal/record"
)

// Restaurant scale constants matching the paper's Fodor's/Zagat dataset.
const (
	restaurantRecords = 858
	restaurantDups    = 106
)

var (
	nameWords = []string{
		"golden", "dragon", "palace", "oceana", "blue", "ribbon", "union",
		"pacific", "river", "grand", "little", "royal", "silver", "lotus",
		"jade", "villa", "casa", "bella", "luna", "sole", "mare", "monte",
		"verde", "rosa", "prima", "vista", "stella", "fontana", "capri",
		"roma", "milano", "napoli", "sorrento", "toscana", "gusto", "sapori",
		"harbor", "bay", "cliff", "garden", "terrace", "plaza", "corner",
		"olive", "cedar", "maple", "willow", "magnolia", "juniper", "sage",
		"ember", "flame", "hearth", "stone", "brick", "copper", "iron",
		"empress", "mandarin", "canton", "szechuan", "peking", "shanghai",
		"sakura", "fuji", "kyoto", "zen", "bamboo", "koi", "hana", "umi",
		"taqueria", "cantina", "hacienda", "mariachi", "azteca", "sol",
		"bistro", "brasserie", "chez", "maison", "petit", "jardin",
		"saffron", "tandoor", "curry", "masala", "bombay", "delhi",
		"athena", "olympus", "santorini", "mykonos", "aegean", "poseidon",
	}
	venueWords = []string{
		"cafe", "grill", "restaurant", "kitchen", "diner", "house",
		"tavern", "bar", "room", "club", "inn", "eatery",
	}
	streetNames = []string{
		"main", "oak", "pine", "maple", "cedar", "elm", "washington",
		"lincoln", "jefferson", "madison", "franklin", "broadway",
		"market", "church", "spring", "park", "lake", "hill", "sunset",
		"ocean", "valley", "canyon", "mission", "harbor", "bay",
		"1st", "2nd", "3rd", "4th", "5th", "54th", "42nd", "melrose",
		"wilshire", "ventura", "olympic", "pico", "vermont", "western",
	}
	streetSuffixFull = []string{"street", "avenue", "boulevard", "road", "drive", "place"}
	streetSuffixAbbr = []string{"st.", "ave.", "blvd.", "rd.", "dr.", "pl."}
	cities           = []string{
		"new york", "los angeles", "san francisco", "chicago", "atlanta",
		"boston", "seattle", "houston", "miami", "denver", "philadelphia",
		"new orleans",
	}
	cuisines = []string{
		"american", "american (new)", "italian", "french", "chinese",
		"japanese", "mexican", "seafood", "steakhouses", "pizza",
		"delis", "coffee shops", "greek", "indian", "thai", "bbq",
		"cajun", "vegetarian", "continental", "mediterranean",
	}
)

// restaurantEntity is the latent truth a record is drawn from.
type restaurantEntity struct {
	nameToks []string
	venue    string // may be ""
	number   int
	street   string
	suffix   int // index into streetSuffix tables
	city     string
	cuisine  string
}

func (e *restaurantEntity) render(abbrSuffix bool) []string {
	name := strings.Join(e.nameToks, " ")
	if e.venue != "" {
		name += " " + e.venue
	}
	suffix := streetSuffixFull[e.suffix]
	if abbrSuffix {
		suffix = streetSuffixAbbr[e.suffix]
	}
	addr := fmt.Sprintf("%d %s %s", e.number, e.street, suffix)
	return []string{name, addr, e.city, e.cuisine}
}

// Restaurant generates the synthetic Restaurant dataset: 858 records over
// [name, address, city, type] with 106 duplicate pairs. Duplicates are
// formatting variants of the same establishment (abbreviations, dropped
// venue words, typos), so matching pairs mostly have high Jaccard
// similarity — reproducing Table 2(a)'s behaviour where a 0.4 threshold
// already achieves >90% recall.
func Restaurant(seed int64) *Dataset {
	return RestaurantN(seed, restaurantRecords, restaurantDups)
}

// RestaurantN generates a Restaurant-style dataset with the given total
// record count and duplicate-pair count (records − dups base entities, of
// which dups are emitted twice). Use for scaling experiments.
func RestaurantN(seed int64, records, dups int) *Dataset {
	if dups*2 > records {
		panic(fmt.Sprintf("dataset: %d dups need at least %d records", dups, dups*2))
	}
	rng := rand.New(rand.NewSource(seed))
	nEntities := records - dups

	entities := make([]*restaurantEntity, nEntities)
	for i := range entities {
		entities[i] = randomRestaurant(rng)
	}

	t := record.NewTable("name", "address", "city", "type")
	m := record.NewPairSet()
	for _, e := range entities {
		t.Append(e.render(rng.Intn(2) == 0)...)
	}
	// Duplicate the first `dups` entities (the slice is already random).
	for i := 0; i < dups; i++ {
		e := entities[i]
		vals := perturbRestaurant(e, rng)
		id := t.Append(vals...)
		m.Add(record.ID(i), id)
	}
	return &Dataset{Name: "Restaurant", Table: t, Matches: m}
}

// zipfIdx returns a index in [0, n) biased towards small values, modelling
// the skewed popularity of real-world vocabulary (big cities, common
// cuisines and street names dominate). The skew is what gives the dataset
// its large mass of moderately similar non-matching pairs — the
// Table 2(a) behaviour where dropping the threshold from 0.3 to 0.1
// explodes the candidate count.
func zipfIdx(rng *rand.Rand, n int) int {
	return rng.Intn(rng.Intn(n) + 1)
}

func randomRestaurant(rng *rand.Rand) *restaurantEntity {
	e := &restaurantEntity{
		number:  1 + rng.Intn(999),
		street:  streetNames[zipfIdx(rng, len(streetNames))],
		suffix:  zipfIdx(rng, len(streetSuffixFull)),
		city:    cities[zipfIdx(rng, len(cities))],
		cuisine: cuisines[zipfIdx(rng, len(cuisines))],
	}
	n := 1 + rng.Intn(2)
	for i := 0; i < n; i++ {
		e.nameToks = append(e.nameToks, nameWords[zipfIdx(rng, len(nameWords))])
	}
	if rng.Intn(100) < 35 {
		e.nameToks = append([]string{"the"}, e.nameToks...)
	}
	if rng.Intn(100) < 70 {
		e.venue = venueWords[zipfIdx(rng, len(venueWords))]
	}
	return e
}

// perturbRestaurant renders a duplicate of e with realistic formatting
// noise. The perturbation count is skewed towards light edits so most
// matching pairs keep Jaccard ≥ 0.5, a minority land in [0.3, 0.5), and a
// few fall below 0.3 — the Table 2(a) recall profile.
func perturbRestaurant(e *restaurantEntity, rng *rand.Rand) []string {
	dup := *e
	dup.nameToks = append([]string(nil), e.nameToks...)

	nPert := 1
	switch r := rng.Intn(100); {
	case r < 20:
		nPert = 1
	case r < 45:
		nPert = 2
	case r < 72:
		nPert = 3
	case r < 88:
		nPert = 4
	case r < 97:
		nPert = 5
	default:
		nPert = 6
	}
	for i := 0; i < nPert; i++ {
		switch rng.Intn(6) {
		case 0: // toggle venue word
			if dup.venue == "" {
				dup.venue = venueWords[rng.Intn(len(venueWords))]
			} else {
				dup.venue = ""
			}
		case 1: // typo in a name token (swap two adjacent letters)
			j := rng.Intn(len(dup.nameToks))
			dup.nameToks[j] = typo(dup.nameToks[j], rng)
		case 2: // cuisine variant
			dup.cuisine = cuisineVariant(dup.cuisine, rng)
		case 3: // street number glitch (digit transposition)
			dup.number = numberGlitch(dup.number, rng)
		case 4: // add a filler name token
			dup.nameToks = append(dup.nameToks, nameWords[rng.Intn(len(nameWords))])
		case 5: // drop a name token if more than one remains
			if len(dup.nameToks) > 1 {
				j := rng.Intn(len(dup.nameToks))
				dup.nameToks = append(dup.nameToks[:j], dup.nameToks[j+1:]...)
			}
		}
	}
	// The suffix form (abbreviated vs full) flips independently, as the two
	// directories disagreed on it pervasively.
	return dup.render(rng.Intn(2) == 0)
}

// typo swaps two adjacent letters of a token (min length 3).
func typo(tok string, rng *rand.Rand) string {
	if len(tok) < 3 {
		return tok
	}
	b := []byte(tok)
	i := rng.Intn(len(b) - 1)
	b[i], b[i+1] = b[i+1], b[i]
	return string(b)
}

// cuisineVariant returns a related cuisine label, modelling the two
// directories' different taxonomies.
func cuisineVariant(c string, rng *rand.Rand) string {
	variants := map[string][]string{
		"american":       {"american (new)", "american (traditional)"},
		"american (new)": {"american"},
		"italian":        {"pizza", "italian (northern)"},
		"french":         {"french (new)", "french bistro"},
		"seafood":        {"fish", "seafood grill"},
		"bbq":            {"barbecue"},
		"delis":          {"deli", "sandwiches"},
		"coffee shops":   {"coffee", "cafes"},
	}
	if vs, ok := variants[c]; ok {
		return vs[rng.Intn(len(vs))]
	}
	return c
}

// numberGlitch transposes the last two digits of a street number or
// returns it unchanged for single-digit numbers.
func numberGlitch(n int, rng *rand.Rand) int {
	if n < 10 || rng.Intn(2) == 0 {
		return n
	}
	tens := (n / 10) % 10
	ones := n % 10
	return n - tens*10 - ones + ones*10 + tens
}
