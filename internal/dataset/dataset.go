// Package dataset provides the evaluation datasets of Section 7.1.
//
// The paper used two real datasets — Restaurant (Fodor's/Zagat, 858
// records, 106 duplicate pairs) and Product (Abt–Buy, 1081 + 1092 records,
// 1097 matching pairs) — plus a derived Product+Dup set. The originals are
// not redistributable offline, so this package generates synthetic
// equivalents at the same scale with the same structure: Restaurant
// duplicates are near-identical formatting variants (high Jaccard between
// matches, so machine similarity works well, Table 2(a)), while Product
// matches come from two sources with divergent naming conventions (low
// Jaccard between matches, so machine similarity struggles, Table 2(b)).
// ProductDup implements the paper's Product+Dup construction verbatim:
// 100 random base records, each with x ~ U[0, 9] extra duplicates created
// by randomly swapping two tokens (Section 7.4).
//
// All generation is deterministic in the seed.
package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/crowder/crowder/internal/record"
)

// Dataset bundles a table with its ground-truth matching pairs.
type Dataset struct {
	// Name identifies the dataset in experiment output.
	Name string
	// Table holds the records.
	Table *record.Table
	// Matches is the ground truth: the set of record pairs that refer to
	// the same real-world entity.
	Matches record.PairSet
}

// NumPairs returns the number of candidate pairs the dataset defines:
// cross-source pairs for multi-source datasets (Product: 1081 × 1092),
// all distinct pairs otherwise (Restaurant: n·(n−1)/2).
func (d *Dataset) NumPairs() int {
	return d.Table.PairUniverse(len(d.Table.Source) > 0)
}

// PaperTable1 returns the nine-record product table of Table 1 with its
// ground truth (r1=r2=r7 are the same iPad; everything else is distinct),
// using 0-based IDs r1→0 … r9→8.
func PaperTable1() *Dataset {
	t := record.NewTable("product_name", "price")
	t.Append("iPad Two 16GB WiFi White", "$490")
	t.Append("iPad 2nd generation 16GB WiFi White", "$469")
	t.Append("iPhone 4th generation White 16GB", "$545")
	t.Append("Apple iPhone 4 16GB White", "$520")
	t.Append("Apple iPhone 3rd generation Black 16GB", "$375")
	t.Append("iPhone 4 32GB White", "$599")
	t.Append("Apple iPad2 16GB WiFi White", "$499")
	t.Append("Apple iPod shuffle 2GB Blue", "$49")
	t.Append("Apple iPod shuffle USB Cable", "$19")
	m := record.NewPairSet()
	m.Add(0, 1) // r1 = r2
	m.Add(0, 6) // r1 = r7
	m.Add(1, 6) // r2 = r7
	// The paper's Figure 2(c) also reports (r3, r4) as a crowd-identified
	// match: "iPhone 4th generation White 16GB" = "Apple iPhone 4 16GB
	// White".
	m.Add(2, 3)
	return &Dataset{Name: "Table1", Table: t, Matches: m}
}

// swapTwoTokens returns s with two random token positions exchanged — the
// Product+Dup perturbation ("randomly swapping two tokens", Section 7.4).
// Strings with fewer than two tokens are returned unchanged.
func swapTwoTokens(s string, rng *rand.Rand) string {
	toks := strings.Fields(s)
	if len(toks) < 2 {
		return s
	}
	i := rng.Intn(len(toks))
	j := rng.Intn(len(toks) - 1)
	if j >= i {
		j++
	}
	toks[i], toks[j] = toks[j], toks[i]
	return strings.Join(toks, " ")
}

// ProductDup implements the Product+Dup construction of Section 7.4:
// randomly select 100 records from the given Product dataset, then for
// each base record add x matching records (x uniform on [0, 9]) generated
// by randomly swapping two tokens of the base record. The ground truth is
// the union of all within-clique pairs plus any inherited matches between
// selected base records.
func ProductDup(seed int64, product *Dataset) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	const nBase = 100

	perm := rng.Perm(product.Table.Len())[:nBase]
	t := record.NewTable(product.Table.Schema...)
	m := record.NewPairSet()

	// baseOf maps each new record to its clique root (index into perm).
	var cliques [][]record.ID
	origID := make([]record.ID, nBase)
	for bi, pi := range perm {
		orig := product.Table.Get(record.ID(pi))
		origID[bi] = record.ID(pi)
		id := t.Append(orig.Values...)
		clique := []record.ID{id}
		x := rng.Intn(10)
		for d := 0; d < x; d++ {
			vals := make([]string, len(orig.Values))
			copy(vals, orig.Values)
			// Swap tokens inside the name attribute (the only multi-token
			// attribute in the Product schema).
			vals[0] = swapTwoTokens(vals[0], rng)
			clique = append(clique, t.Append(vals...))
		}
		cliques = append(cliques, clique)
	}
	for _, clique := range cliques {
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				m.Add(clique[i], clique[j])
			}
		}
	}
	// Inherited matches: if two selected base records matched in Product,
	// every cross-clique pair matches too.
	for i := 0; i < nBase; i++ {
		for j := i + 1; j < nBase; j++ {
			if product.Matches.Has(origID[i], origID[j]) {
				for _, a := range cliques[i] {
					for _, b := range cliques[j] {
						m.Add(a, b)
					}
				}
			}
		}
	}
	return &Dataset{Name: "Product+Dup", Table: t, Matches: m}
}

// Stats summarizes a dataset for experiment headers.
func (d *Dataset) Stats() string {
	return fmt.Sprintf("%s: %d records, %d candidate pairs, %d matching pairs",
		d.Name, d.Table.Len(), d.NumPairs(), d.Matches.Len())
}
