package dataset

import (
	"strings"
	"testing"

	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
)

func TestPaperTable1(t *testing.T) {
	d := PaperTable1()
	if d.Table.Len() != 9 {
		t.Fatalf("Table 1 has %d records; want 9", d.Table.Len())
	}
	// Figure 2(c): four matching pairs.
	if d.Matches.Len() != 4 {
		t.Fatalf("Table 1 ground truth has %d pairs; want 4", d.Matches.Len())
	}
	if !d.Matches.Has(0, 1) || !d.Matches.Has(0, 6) || !d.Matches.Has(1, 6) || !d.Matches.Has(2, 3) {
		t.Fatal("Table 1 ground truth missing expected pairs")
	}
	if d.NumPairs() != 36 {
		t.Fatalf("NumPairs = %d; want 36", d.NumPairs())
	}
}

func TestRestaurantScale(t *testing.T) {
	d := Restaurant(1)
	if d.Table.Len() != 858 {
		t.Fatalf("Restaurant has %d records; want 858", d.Table.Len())
	}
	if d.Matches.Len() != 106 {
		t.Fatalf("Restaurant has %d matching pairs; want 106", d.Matches.Len())
	}
	if d.NumPairs() != 858*857/2 {
		t.Fatalf("NumPairs = %d; want %d", d.NumPairs(), 858*857/2)
	}
	if len(d.Table.Schema) != 4 {
		t.Fatalf("schema = %v; want 4 attributes", d.Table.Schema)
	}
}

func TestRestaurantDeterministic(t *testing.T) {
	a, b := Restaurant(7), Restaurant(7)
	for i := 0; i < a.Table.Len(); i++ {
		ra, rb := a.Table.Get(record.ID(i)), b.Table.Get(record.ID(i))
		for j := range ra.Values {
			if ra.Values[j] != rb.Values[j] {
				t.Fatal("same seed produced different records")
			}
		}
	}
	c := Restaurant(8)
	diff := false
	for i := 0; i < a.Table.Len() && !diff; i++ {
		if a.Table.Get(record.ID(i)).Values[0] != c.Table.Get(record.ID(i)).Values[0] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestRestaurantTable2aShape(t *testing.T) {
	// The synthetic dataset must reproduce the qualitative profile of
	// Table 2(a): recall already high at threshold 0.4 and complete by
	// 0.2, with candidate counts growing by orders of magnitude as the
	// threshold drops.
	d := Restaurant(1)
	all := simjoin.Join(d.Table, simjoin.Options{Threshold: 0.1})
	recallAt := func(tau float64) (int, float64) {
		kept := simjoin.FilterThreshold(all, tau)
		m := 0
		for _, sp := range kept {
			if d.Matches.Has(sp.Pair.A, sp.Pair.B) {
				m++
			}
		}
		return len(kept), float64(m) / float64(d.Matches.Len())
	}
	n5, r5 := recallAt(0.5)
	n3, r3 := recallAt(0.3)
	n2, r2 := recallAt(0.2)
	n1, r1 := recallAt(0.1)
	if r5 < 0.6 || r5 > 0.99 {
		t.Errorf("recall@0.5 = %.2f; want the Table 2(a) regime (0.6–0.99)", r5)
	}
	if r3 < 0.95 {
		t.Errorf("recall@0.3 = %.2f; want >= 0.95", r3)
	}
	if r2 < 0.999 || r1 < 0.999 {
		t.Errorf("recall@0.2 = %.2f, recall@0.1 = %.2f; want 1.0", r2, r1)
	}
	if !(n5 < n3 && n3 < n2 && n2 < n1) {
		t.Errorf("candidate counts not monotone: %d, %d, %d, %d", n5, n3, n2, n1)
	}
	if n1 < 20*n3 {
		t.Errorf("candidates should explode at low thresholds: n(0.1)=%d vs n(0.3)=%d", n1, n3)
	}
}

func TestProductScale(t *testing.T) {
	d := Product(1)
	if d.Table.Len() != 1081+1092 {
		t.Fatalf("Product has %d records; want %d", d.Table.Len(), 1081+1092)
	}
	abt, buy := 0, 0
	for _, s := range d.Table.Source {
		if s == 0 {
			abt++
		} else {
			buy++
		}
	}
	if abt != 1081 || buy != 1092 {
		t.Fatalf("sources = %d abt, %d buy; want 1081, 1092", abt, buy)
	}
	if d.Matches.Len() != 1097 {
		t.Fatalf("Product has %d matching pairs; want 1097", d.Matches.Len())
	}
	if d.NumPairs() != 1081*1092 {
		t.Fatalf("NumPairs = %d; want %d", d.NumPairs(), 1081*1092)
	}
}

func TestProductMatchesAreCrossSource(t *testing.T) {
	d := Product(1)
	for p := range d.Matches {
		if d.Table.Source[p.A] == d.Table.Source[p.B] {
			t.Fatalf("match %v is same-source", p)
		}
	}
}

func TestProductTable2bShape(t *testing.T) {
	// Table 2(b)'s profile: machine similarity is weak on Product — recall
	// well below 50% at threshold 0.5, and still meaningfully incomplete
	// at 0.3.
	d := Product(1)
	all := simjoin.Join(d.Table, simjoin.Options{Threshold: 0.1, CrossSourceOnly: true})
	recallAt := func(tau float64) float64 {
		kept := simjoin.FilterThreshold(all, tau)
		m := 0
		for _, sp := range kept {
			if d.Matches.Has(sp.Pair.A, sp.Pair.B) {
				m++
			}
		}
		return float64(m) / float64(d.Matches.Len())
	}
	if r := recallAt(0.5); r > 0.5 {
		t.Errorf("recall@0.5 = %.2f; Product must be hard (< 0.5)", r)
	}
	if r := recallAt(0.4); r < 0.3 || r > 0.8 {
		t.Errorf("recall@0.4 = %.2f; want mid-range", r)
	}
	if r := recallAt(0.2); r < 0.85 {
		t.Errorf("recall@0.2 = %.2f; want >= 0.85 (paper: 92.2%%)", r)
	}
	if r := recallAt(0.1); r < 0.97 {
		t.Errorf("recall@0.1 = %.2f; want >= 0.97 (paper: 99.4%%)", r)
	}
}

func TestProductHarderThanRestaurant(t *testing.T) {
	// The core contrast driving Section 7.3: at the same threshold,
	// machine similarity separates Restaurant matches far better than
	// Product matches.
	rest, prod := Restaurant(1), Product(1)
	recall := func(d *Dataset, cross bool) float64 {
		kept := simjoin.Join(d.Table, simjoin.Options{Threshold: 0.5, CrossSourceOnly: cross})
		m := 0
		for _, sp := range kept {
			if d.Matches.Has(sp.Pair.A, sp.Pair.B) {
				m++
			}
		}
		return float64(m) / float64(d.Matches.Len())
	}
	if rr, pr := recall(rest, false), recall(prod, true); rr <= pr {
		t.Errorf("Restaurant recall (%.2f) should exceed Product recall (%.2f)", rr, pr)
	}
}

func TestProductDupConstruction(t *testing.T) {
	prod := Product(1)
	d := ProductDup(2, prod)
	n := d.Table.Len()
	if n < 100 || n > 100+9*100 {
		t.Fatalf("Product+Dup has %d records; want 100 base + up to 900 dups", n)
	}
	// Paper scale: 157,641 total pairs → 562 records; with a different RNG
	// the count varies but must stay in the same regime (E[n] = 550).
	if n < 400 || n > 700 {
		t.Errorf("Product+Dup has %d records; expected ≈ 550", n)
	}
	// Matching pairs: E ≈ 1650 (Σ x(x+1)/2 for x ~ U[0,9] over 100 bases).
	if m := d.Matches.Len(); m < 900 || m > 2600 {
		t.Errorf("Product+Dup has %d matching pairs; expected ≈ 1700 (paper: 1713)", m)
	}
}

func TestProductDupSwappedTokensStaySimilar(t *testing.T) {
	// Token swapping preserves the token SET, so every dup pair built from
	// single swaps of the same base should have Jaccard 1 on the name —
	// making Product+Dup rich in easy matches (the point of Section 7.4:
	// "more matching pairs than the datasets used in the previous
	// experiments").
	prod := Product(1)
	d := ProductDup(2, prod)
	found := 0
	for p := range d.Matches {
		a := record.RecordTokens(d.Table.Get(p.A))
		b := record.RecordTokens(d.Table.Get(p.B))
		inter := a.IntersectionSize(b)
		union := a.UnionSize(b)
		if union > 0 && float64(inter)/float64(union) >= 0.9 {
			found++
		}
	}
	if found < d.Matches.Len()/2 {
		t.Errorf("only %d/%d Product+Dup matches are near-identical; expected most", found, d.Matches.Len())
	}
}

func TestSwapTwoTokens(t *testing.T) {
	got := swapTwoTokens("single", nil)
	if got != "single" {
		t.Errorf("single token should be unchanged; got %q", got)
	}
}

func TestProductDupMoreMatchDensity(t *testing.T) {
	// Section 7.4's motivation: Product+Dup has a much higher ratio of
	// matching pairs to total pairs than Product.
	prod := Product(1)
	dup := ProductDup(2, prod)
	prodDensity := float64(prod.Matches.Len()) / float64(prod.NumPairs())
	dupDensity := float64(dup.Matches.Len()) / float64(dup.NumPairs())
	if dupDensity < 5*prodDensity {
		t.Errorf("dup density %.5f should dwarf product density %.5f", dupDensity, prodDensity)
	}
}

func TestStatsString(t *testing.T) {
	d := PaperTable1()
	s := d.Stats()
	if !strings.Contains(s, "9 records") || !strings.Contains(s, "4 matching") {
		t.Errorf("Stats = %q", s)
	}
}

func TestRestaurantNScaling(t *testing.T) {
	d := RestaurantN(3, 200, 30)
	if d.Table.Len() != 200 || d.Matches.Len() != 30 {
		t.Fatalf("RestaurantN produced %d records, %d matches", d.Table.Len(), d.Matches.Len())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("infeasible dup count should panic")
		}
	}()
	RestaurantN(3, 10, 6)
}

func TestProductNScaling(t *testing.T) {
	d := ProductN(3, 300, 310, 250)
	if d.Matches.Len() != 250 {
		t.Fatalf("ProductN produced %d matches; want 250", d.Matches.Len())
	}
	abt, buy := 0, 0
	for _, s := range d.Table.Source {
		if s == 0 {
			abt++
		} else {
			buy++
		}
	}
	if abt != 300 || buy != 310 {
		t.Fatalf("ProductN sources = %d, %d; want 300, 310", abt, buy)
	}
}
