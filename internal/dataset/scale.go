package dataset

import (
	"fmt"
	"math/rand"
	"slices"
	"strings"

	"github.com/crowder/crowder/internal/record"
)

// Scale generates the million-record synthetic workload the `-scale`
// benchmark runs: records at web-catalog scale whose vocabulary grows
// with the table, so prefix postings stay short and candidate generation
// stays tractable. See ScaleN.
func Scale(seed int64) *Dataset {
	return ScaleN(seed, 1_000_000, 50_000)
}

// ScaleN generates a scale-test dataset with the given total record count
// and duplicate-pair count. Each base record carries ~8 tokens with a
// realistic frequency profile:
//
//   - two "category" tokens from a small Zipf-skewed vocabulary (the
//     common words every catalog shares — these produce the long posting
//     lists that block compression and skip pointers exist for);
//   - five "descriptor" tokens drawn uniformly from a vocabulary that
//     grows with the table (≈ records/2 distinct tokens, average
//     frequency ~10 — the short postings prefix filtering probes);
//   - one near-unique SKU token.
//
// Duplicates perturb one or two descriptor tokens and keep the SKU, so a
// matching pair shares at least 6 of at most 10 distinct tokens: Jaccard
// ≥ 0.6, making 0.6 the natural threshold for this workload. Because
// prefix filtering indexes the rarest tokens first, the frozen-frequency
// prefix of every record is dominated by descriptors and the SKU, and a
// probe touches a few dozen posting entries rather than the million-long
// category lists — candidate generation is O(records), which is what
// lets the 1M-row benchmark finish.
//
// Generation is deterministic in the seed.
func ScaleN(seed int64, records, dups int) *Dataset {
	if dups*2 > records {
		panic(fmt.Sprintf("dataset: %d dups need at least %d records", dups, dups*2))
	}
	rng := rand.New(rand.NewSource(seed))
	nEntities := records - dups

	catVocab := make([]string, 2000)
	for i := range catVocab {
		catVocab[i] = fmt.Sprintf("cat%d", i)
	}
	descVocabSize := records / 2
	if descVocabSize < 64 {
		descVocabSize = 64
	}

	type scaleEntity struct {
		toks []string
	}
	renderRow := func(toks []string) string { return strings.Join(toks, " ") }

	// distinctAdd appends a freshly drawn token, redrawing on collision
	// with the record's existing tokens: every record holds exactly 8
	// distinct tokens, so a 2-token perturbation lands at Jaccard exactly
	// 6/10 = 0.6 and never below (an in-record collision would shrink the
	// set and push a matching pair under the threshold).
	distinctAdd := func(toks []string, draw func() string) []string {
	redraw:
		for {
			tok := draw()
			for _, t := range toks {
				if t == tok {
					continue redraw
				}
			}
			return append(toks, tok)
		}
	}
	drawCat := func() string { return catVocab[zipfIdx(rng, len(catVocab))] }
	drawDesc := func() string { return fmt.Sprintf("d%d", rng.Intn(descVocabSize)) }

	entities := make([]scaleEntity, nEntities)
	for i := range entities {
		toks := make([]string, 0, 8)
		toks = distinctAdd(toks, drawCat)
		toks = distinctAdd(toks, drawCat)
		for j := 0; j < 5; j++ {
			toks = distinctAdd(toks, drawDesc)
		}
		toks = append(toks, fmt.Sprintf("sku%d", i))
		entities[i] = scaleEntity{toks: toks}
	}

	t := record.NewTable("text")
	m := record.NewPairSet()
	for i := range entities {
		t.Append(renderRow(entities[i].toks))
	}
	for i := 0; i < dups; i++ {
		dup := append([]string(nil), entities[i].toks...)
		// Perturb one or two descriptor tokens (positions 2–6); the
		// categories and SKU survive, keeping the pair's Jaccard ≥ 0.6.
		// Replacements are distinct from every token of the record for
		// the same reason the base tokens are.
		for p := 0; p < 1+rng.Intn(2); p++ {
			j := 2 + rng.Intn(5)
			for {
				tok := drawDesc()
				if !slices.Contains(dup, tok) {
					dup[j] = tok
					break
				}
			}
		}
		id := t.Append(renderRow(dup))
		m.Add(record.ID(i), id)
	}
	return &Dataset{Name: "Scale", Table: t, Matches: m}
}
