package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/crowder/crowder/internal/record"
)

// Product scale constants matching the paper's Abt–Buy dataset.
const (
	productAbt     = 1081
	productBuy     = 1092
	productMatches = 1097
)

var (
	brands = []string{
		"apple", "sony", "samsung", "panasonic", "canon", "nikon", "lg",
		"toshiba", "philips", "jvc", "garmin", "bose", "denon", "yamaha",
		"sharp", "sanyo", "pioneer", "kenwood", "olympus", "casio",
	}
	families = []string{
		"ipod touch", "ipod nano", "ipod shuffle", "bravia lcd tv",
		"viera plasma tv", "cybershot camera", "powershot camera",
		"coolpix camera", "handycam camcorder", "home theater system",
		"blu ray player", "dvd recorder", "bookshelf speakers",
		"soundbar speaker", "av receiver", "nav gps", "alarm clock radio",
		"portable dvd player", "digital photo frame", "micro hifi system",
		"noise cancelling headphones", "wireless headphones",
		"compact stereo", "mini camcorder", "flash camcorder",
		"slr lens", "zoom lens", "point shoot camera", "lcd monitor",
		"plasma monitor", "car amplifier", "subwoofer", "tower speakers",
		"in ear headphones", "clock radio", "cd boombox", "turntable",
		"cassette deck", "hd radio tuner", "satellite radio", "media dock",
		"wireless router", "cordless phone", "answering machine",
		"fax machine", "label printer", "photo printer", "laser printer",
	}
	colors     = []string{"black", "white", "silver", "blue", "red", "pink", "gray"}
	capacities = []string{"2", "4", "8", "16", "32", "64", "120", "160", "250", "320", "500"}
	capUnits   = []string{"gb", "mb", "tb"}
	genWords   = []string{"1st", "2nd", "3rd", "4th", "5th"}
	abtExtras  = []string{"refurbished", "oem", "retail", "bundle"}
	buyExtras  = []string{"player", "system", "kit", "edition", "series", "new"}
)

// productEntity is the latent product a record describes.
type productEntity struct {
	brand    string
	family   string
	color    string
	capacity string // "" if not applicable
	gen      string // "" if not applicable
	code     string // manufacturer model code, e.g. mb528lla
	price    int    // cents-free dollar price
}

func randomProduct(rng *rand.Rand) *productEntity {
	e := &productEntity{
		brand:  brands[rng.Intn(len(brands))],
		family: families[rng.Intn(len(families))],
		color:  colors[rng.Intn(len(colors))],
		price:  20 + rng.Intn(2000),
	}
	if rng.Intn(100) < 60 {
		e.capacity = capacities[rng.Intn(len(capacities))] + capUnits[rng.Intn(2)]
	}
	if rng.Intn(100) < 40 {
		e.gen = genWords[rng.Intn(len(genWords))] + " generation"
	}
	// Model code: two letters + 3 digits + 2-3 letters, e.g. "mb528lla".
	letters := "abcdefghijklmnopqrstuvwxyz"
	var sb strings.Builder
	for i := 0; i < 2; i++ {
		sb.WriteByte(letters[rng.Intn(26)])
	}
	fmt.Fprintf(&sb, "%03d", rng.Intn(1000))
	for i := 0; i < 2+rng.Intn(2); i++ {
		sb.WriteByte(letters[rng.Intn(26)])
	}
	e.code = sb.String()
	return e
}

// renderAbt renders the entity in the abt.com style: brand, capacity,
// color, generation, family, then " - " plus the model code — e.g.
// "apple 8gb black 2nd generation ipod touch - mb528lla".
func (e *productEntity) renderAbt(rng *rand.Rand) []string {
	parts := []string{e.brand}
	if e.capacity != "" {
		parts = append(parts, e.capacity)
	}
	parts = append(parts, e.color)
	if e.gen != "" {
		parts = append(parts, e.gen)
	}
	parts = append(parts, e.family)
	if rng.Intn(100) < 25 {
		parts = append(parts, abtExtras[rng.Intn(len(abtExtras))])
	}
	name := strings.Join(parts, " ") + " - " + e.code
	price := fmt.Sprintf("$%d.00", e.price)
	return []string{name, price}
}

// renderBuy renders the entity in the buy.com style: family first, brand,
// split capacity ("8 gb" rather than "8gb"), possibly no model code, no
// generation phrase, and marketing filler — deliberately sharing only a
// fraction of the abt rendering's tokens, which is what makes Product the
// "hard" dataset (Table 2(b): a matching pair's Jaccard is usually below
// 0.5).
func (e *productEntity) renderBuy(rng *rand.Rand) []string {
	parts := []string{e.brand}
	parts = append(parts, strings.Fields(e.family)...)
	if e.capacity != "" {
		if rng.Intn(2) == 0 {
			// Split "8gb" → "8 gb": different tokens after normalization.
			for i, r := range e.capacity {
				if r < '0' || r > '9' {
					parts = append(parts, e.capacity[:i], e.capacity[i:])
					break
				}
			}
		} else {
			parts = append(parts, e.capacity)
		}
	}
	if rng.Intn(100) < 75 {
		parts = append(parts, e.color)
	}
	if rng.Intn(100) < 40 {
		parts = append(parts, e.code)
	}
	if e.gen != "" && rng.Intn(100) < 40 {
		parts = append(parts, strings.Fields(e.gen)...)
	}
	if rng.Intn(100) < 40 {
		parts = append(parts, buyExtras[rng.Intn(len(buyExtras))])
	}
	// A "terse" minority of buy listings omit most descriptors, producing
	// the very dissimilar matching pairs that keep recall below 100% even
	// at threshold 0.2 (Table 2(b): 92.2%).
	if rng.Intn(100) < 14 {
		terse := []string{e.brand}
		fam := strings.Fields(e.family)
		terse = append(terse, fam[:1+rng.Intn(len(fam))]...)
		terse = append(terse, buyExtras[rng.Intn(len(buyExtras))])
		parts = terse
	}
	name := strings.Join(parts, " ")
	// Prices differ between retailers.
	price := fmt.Sprintf("$%d.99", e.price-1-rng.Intn(30))
	return []string{name, price}
}

// Product generates the synthetic two-source Product dataset: 1081 "abt"
// records and 1092 "buy" records with 1097 cross-source matching pairs.
// The two renderings of an entity intentionally share few tokens, so
// machine similarity alone cannot separate matches (Table 2(b)'s profile:
// 30.5% recall at threshold 0.5, 92.2% at 0.2).
func Product(seed int64) *Dataset {
	return ProductN(seed, productAbt, productBuy, productMatches)
}

// ProductN generates a Product-style dataset with the given source sizes
// and match-pair count. The entity layout is a matched entities with one
// record per source, b entities with one abt and two buy records, and c
// entities with two abt and one buy record, chosen so that
// a + 2b + 2c = matches; remaining records are unmatched fillers.
func ProductN(seed int64, nAbt, nBuy, matches int) *Dataset {
	rng := rand.New(rand.NewSource(seed))

	// Solve the layout: use b = c = spare/4 where spare = matches − base.
	// Pick b = c = min(22, matches/50) to mirror the paper's mild
	// many-to-many structure, then a = matches − 2b − 2c.
	bc := matches / 50
	if bc > 22 {
		bc = 22
	}
	a := matches - 4*bc
	if a < 0 {
		a, bc = matches, 0
	}
	abtMatched := a + bc + 2*bc
	buyMatched := a + 2*bc + bc
	if abtMatched > nAbt || buyMatched > nBuy {
		panic(fmt.Sprintf("dataset: product layout infeasible: need %d abt, %d buy", abtMatched, buyMatched))
	}

	t := record.NewTable("name", "price")
	m := record.NewPairSet()

	addMatched := func(nAbtCopies, nBuyCopies int) {
		e := randomProduct(rng)
		var abtIDs, buyIDs []record.ID
		for i := 0; i < nAbtCopies; i++ {
			abtIDs = append(abtIDs, t.AppendFrom(0, e.renderAbt(rng)...))
		}
		for i := 0; i < nBuyCopies; i++ {
			buyIDs = append(buyIDs, t.AppendFrom(1, e.renderBuy(rng)...))
		}
		for _, x := range abtIDs {
			for _, y := range buyIDs {
				m.Add(x, y)
			}
		}
	}

	for i := 0; i < a; i++ {
		addMatched(1, 1)
	}
	for i := 0; i < bc; i++ {
		addMatched(1, 2)
	}
	for i := 0; i < bc; i++ {
		addMatched(2, 1)
	}
	for i := abtMatched; i < nAbt; i++ {
		e := randomProduct(rng)
		t.AppendFrom(0, e.renderAbt(rng)...)
	}
	for i := buyMatched; i < nBuy; i++ {
		e := randomProduct(rng)
		t.AppendFrom(1, e.renderBuy(rng)...)
	}
	return &Dataset{Name: "Product", Table: t, Matches: m}
}
