package dataset

import (
	"testing"

	"github.com/crowder/crowder/internal/similarity"
	"github.com/crowder/crowder/internal/simjoin"
)

func TestScaleNDeterministic(t *testing.T) {
	a := ScaleN(7, 2000, 100)
	b := ScaleN(7, 2000, 100)
	if a.Table.Len() != 2000 || b.Table.Len() != 2000 {
		t.Fatalf("lens %d, %d", a.Table.Len(), b.Table.Len())
	}
	for i := 0; i < a.Table.Len(); i++ {
		if a.Table.Records[i].Values[0] != b.Table.Records[i].Values[0] {
			t.Fatalf("record %d differs across same-seed generations", i)
		}
	}
	if a.Matches.Len() != 100 {
		t.Fatalf("matches = %d, want 100", a.Matches.Len())
	}
}

func TestScaleNMatchesAboveThreshold(t *testing.T) {
	d := ScaleN(3, 5000, 250)
	ids := d.Table.TokenIDs()
	for _, p := range d.Matches.Slice() {
		if sim := similarity.Jaccard(ids[p.A], ids[p.B]); sim < 0.6 {
			t.Fatalf("match %v has Jaccard %v < 0.6", p, sim)
		}
	}
}

func TestScaleNJoinRecall(t *testing.T) {
	// The 0.6-threshold join must find every planted duplicate; the
	// candidate count must stay near-linear in the table (the property
	// that makes the 1M workload runnable).
	d := ScaleN(5, 10000, 500)
	scored := simjoin.Join(d.Table, simjoin.Options{Threshold: 0.6})
	found := 0
	for _, sp := range scored {
		if d.Matches.Has(sp.Pair.A, sp.Pair.B) {
			found++
		}
	}
	if found != d.Matches.Len() {
		t.Fatalf("join found %d of %d planted matches", found, d.Matches.Len())
	}
	if len(scored) > 20*d.Table.Len() {
		t.Fatalf("join emitted %d pairs for %d records: candidate growth is superlinear", len(scored), d.Table.Len())
	}
}
