package aggregate

import "fmt"

// Method enumerates the built-in answer aggregators.
type Method int

const (
	// MethodDawidSkene is plain Dawid–Skene EM with additive smoothing —
	// the zero value and the default, bit-identical to the historical
	// aggregation path.
	MethodDawidSkene Method = iota
	// MethodMajorityVote is the per-pair match fraction, the baseline
	// the paper argues against ("susceptible to spammers").
	MethodMajorityVote
	// MethodDawidSkeneMAP is Dawid–Skene with MAP M-steps: informative
	// diagonal confusion priors plus pool-mean anchoring of workers who
	// have not covered both classes. It fixes the sparse-coverage
	// degeneracy (see DawidSkeneMAP) at the price of changed outputs, so
	// it ships behind its own acceptance gate.
	MethodDawidSkeneMAP
)

// String returns the method's wire name — the identity persisted by the
// verdict cache and accepted by the service API.
func (m Method) String() string {
	switch m {
	case MethodDawidSkene:
		return "dawid-skene"
	case MethodMajorityVote:
		return "majority-vote"
	case MethodDawidSkeneMAP:
		return "dawid-skene-map"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ParseMethod maps a wire name back to its Method. The empty string
// selects the default.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "", "dawid-skene":
		return MethodDawidSkene, nil
	case "majority-vote":
		return MethodMajorityVote, nil
	case "dawid-skene-map":
		return MethodDawidSkeneMAP, nil
	default:
		return 0, fmt.Errorf(`aggregate: unknown method %q (want "dawid-skene", "majority-vote" or "dawid-skene-map")`, s)
	}
}

// Aggregator combines an answer set into per-pair match posteriors. An
// aggregator must be a pure function of the answer *set*: callers hand
// it canonically ordered answers (SortCanonical) and rely on identical
// output for identical input, batch sequence notwithstanding.
type Aggregator interface {
	// Name is the aggregator's stable identity — persisted alongside
	// cached verdicts so a session never re-aggregates one cache under
	// two different methods.
	Name() string
	// Aggregate maps the answers to each judged pair's match posterior.
	Aggregate(answers []Answer) Posterior
}

// New returns the Aggregator for a method, with that method's default
// options.
func New(m Method) (Aggregator, error) {
	switch m {
	case MethodDawidSkene:
		return dawidSkeneAggregator{}, nil
	case MethodMajorityVote:
		return majorityVoteAggregator{}, nil
	case MethodDawidSkeneMAP:
		return dawidSkeneMAPAggregator{}, nil
	default:
		return nil, fmt.Errorf("aggregate: unknown method %d", int(m))
	}
}

type dawidSkeneAggregator struct{}

func (dawidSkeneAggregator) Name() string { return MethodDawidSkene.String() }
func (dawidSkeneAggregator) Aggregate(answers []Answer) Posterior {
	return DawidSkene(answers, DawidSkeneOptions{})
}

type majorityVoteAggregator struct{}

func (majorityVoteAggregator) Name() string { return MethodMajorityVote.String() }
func (majorityVoteAggregator) Aggregate(answers []Answer) Posterior {
	return MajorityVote(answers)
}

type dawidSkeneMAPAggregator struct{}

func (dawidSkeneMAPAggregator) Name() string { return MethodDawidSkeneMAP.String() }
func (dawidSkeneMAPAggregator) Aggregate(answers []Answer) Posterior {
	return DawidSkeneMAP(answers, MAPOptions{})
}
