package aggregate

import "math"

// MAPOptions configures DawidSkeneMAP. The defaults encode the two
// pieces of prior knowledge that plain Dawid–Skene EM lacks and whose
// absence causes the sparse-coverage degeneracy: crowd workers are
// better than random (the diagonal confusion prior), and a worker whose
// history covers only one class tells you nothing about the other (the
// pool-mean anchor).
type MAPOptions struct {
	// MaxIterations bounds the EM loop (default 100).
	MaxIterations int
	// Tolerance stops EM when the max posterior change falls below it
	// (default 1e-6).
	Tolerance float64
	// ConfAlpha and ConfBeta are the diagonal Beta(α, β) prior on every
	// confusion row: α pseudo-correct and β pseudo-incorrect answers per
	// worker per class. Defaults 4, 1 — a worker is presumed 80%
	// accurate on a class until their history says otherwise, so a class
	// never observed yields a row near (0.8, 0.2) instead of the
	// additive-smoothing (0.5, 0.5) that lets a high learned prevalence
	// flip unanimous rejections.
	ConfAlpha, ConfBeta float64
	// PriorAlpha and PriorBeta are the Beta prior on the match
	// prevalence (see DawidSkeneOptions). Defaults 2, 2: the MAP
	// estimate is pulled toward 1/2 by one pseudo-pair of each class and
	// can never reach the 0/1 boundary.
	PriorAlpha, PriorBeta float64
	// Anchor is the weight, in pseudo-answers per confusion row, with
	// which a worker who has not yet covered both classes is shrunk
	// toward the pool-mean confusion matrix. Default 8; a negative value
	// disables anchoring. Workers with both classes in their history are
	// left entirely to their own data; for a single-class worker the
	// anchor dominates the unseen row, so their implied accuracy tracks
	// the pool mean until real coverage arrives.
	Anchor float64
}

func (o *MAPOptions) defaults() {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
	if o.ConfAlpha <= 0 {
		o.ConfAlpha = 4
	}
	if o.ConfBeta <= 0 {
		o.ConfBeta = 1
	}
	if o.PriorAlpha <= 0 {
		o.PriorAlpha = 2
	}
	if o.PriorBeta <= 0 {
		o.PriorBeta = 2
	}
	if o.Anchor < 0 {
		o.Anchor = 0
	} else if o.Anchor == 0 {
		o.Anchor = 8
	}
}

// coverageUnit is the posterior mass (in pairs) a worker's history must
// assign to a class before the class counts as covered. One pair's worth
// is the smallest history that measures the class at all.
const coverageUnit = 1.0

// DawidSkeneMAP is Dawid–Skene EM with maximum-a-posteriori M-steps: the
// class prevalence carries a Beta prior, every confusion row carries an
// informative diagonal Beta prior, and workers who have not covered both
// classes are additionally anchored toward the pool-mean confusion row.
//
// It exists to fix a real degeneracy of the plain estimator (see the
// repository ROADMAP): with additive smoothing, a worker whose history
// covers only one class gets a near-uniform confusion row for the unseen
// class. Such rows make the worker's answers almost uninformative, so a
// high learned prevalence can override them — a pair unanimously judged
// a non-match by three single-class workers can come out with posterior
// 0.9, and transitive deduction then propagates the confident wrong
// verdict. Under the MAP estimate the unseen row stays near the prior
// diagonal (workers presumed better than random) and the worker is
// anchored to the pool, so unanimous verdicts are never inverted.
//
// In the dense-coverage limit — long per-worker histories over both
// classes, weak priors — the MAP estimate converges to plain DawidSkene:
// every prior term is O(1/n) against the data. The default aggregation
// path does not use this estimator; it ships as its own Aggregator
// behind cmd/bench -aggregate acceptance gates.
func DawidSkeneMAP(answers []Answer, opts MAPOptions) Posterior {
	opts.defaults()
	if len(answers) == 0 {
		return Posterior{}
	}

	ix := indexAnswers(answers)
	byPair, post := ix.byPair, ix.post
	nPairs, nWorkers := len(ix.pairs), ix.nWorkers

	conf := make([][2][2]float64, nWorkers)
	prior := 0.5

	for iter := 0; iter < opts.MaxIterations; iter++ {
		// M-step: MAP prevalence under Beta(αp, βp).
		var priorSum float64
		for i := range post {
			priorSum += post[i]
		}
		prior = mapClassPrior(priorSum, nPairs, opts.PriorAlpha, opts.PriorBeta)

		// Expected per-worker confusion counts given the posteriors.
		counts := make([][2][2]float64, nWorkers)
		for i, vs := range byPair {
			for _, v := range vs {
				l := 0
				if v.yes {
					l = 1
				}
				counts[v.w][1][l] += post[i]
				counts[v.w][0][l] += 1 - post[i]
			}
		}

		// Pool-mean confusion rows: the whole crowd's expected counts
		// under the same diagonal prior — the anchor target for workers
		// whose own history cannot support a row of their own.
		var pool [2][2]float64
		for c := 0; c < 2; c++ {
			var tot [2]float64
			for w := range counts {
				tot[0] += counts[w][c][0]
				tot[1] += counts[w][c][1]
			}
			den := tot[0] + tot[1] + opts.ConfAlpha + opts.ConfBeta
			for l := 0; l < 2; l++ {
				pc := opts.ConfBeta
				if l == c {
					pc = opts.ConfAlpha
				}
				pool[c][l] = (tot[l] + pc) / den
			}
		}

		// Per-worker MAP confusion rows, anchored while underspecified: a
		// worker covers a class once their history carries at least one
		// pair's worth of posterior mass for it; until both classes are
		// covered, every row is shrunk toward the pool mean with Anchor
		// pseudo-answers.
		for w := range conf {
			covered := counts[w][0][0]+counts[w][0][1] >= coverageUnit &&
				counts[w][1][0]+counts[w][1][1] >= coverageUnit
			for c := 0; c < 2; c++ {
				den := counts[w][c][0] + counts[w][c][1] + opts.ConfAlpha + opts.ConfBeta
				for l := 0; l < 2; l++ {
					pc := opts.ConfBeta
					if l == c {
						pc = opts.ConfAlpha
					}
					num := counts[w][c][l] + pc
					if !covered && opts.Anchor > 0 {
						num += opts.Anchor * pool[c][l]
					}
					d := den
					if !covered && opts.Anchor > 0 {
						d += opts.Anchor
					}
					conf[w][c][l] = num / d
				}
			}
		}

		// E-step: identical to plain Dawid–Skene.
		maxDelta := 0.0
		for i, vs := range byPair {
			logP1 := math.Log(prior)
			logP0 := math.Log(1 - prior)
			for _, v := range vs {
				l := 0
				if v.yes {
					l = 1
				}
				logP1 += math.Log(conf[v.w][1][l])
				logP0 += math.Log(conf[v.w][0][l])
			}
			m := logP1
			if logP0 > m {
				m = logP0
			}
			p1 := math.Exp(logP1 - m)
			p0 := math.Exp(logP0 - m)
			newPost := p1 / (p1 + p0)
			if d := math.Abs(newPost - post[i]); d > maxDelta {
				maxDelta = d
			}
			post[i] = newPost
		}
		if maxDelta < opts.Tolerance {
			break
		}
	}

	return ix.posterior()
}
