package aggregate

import (
	"math/rand"
	"testing"

	"github.com/crowder/crowder/internal/record"
)

func mk(a, b int) record.Pair { return record.MakePair(record.ID(a), record.ID(b)) }

func TestMajorityVote(t *testing.T) {
	answers := []Answer{
		{Pair: mk(0, 1), Worker: 1, Match: true},
		{Pair: mk(0, 1), Worker: 2, Match: true},
		{Pair: mk(0, 1), Worker: 3, Match: false},
		{Pair: mk(2, 3), Worker: 1, Match: false},
		{Pair: mk(2, 3), Worker: 2, Match: false},
		{Pair: mk(2, 3), Worker: 3, Match: false},
	}
	post := MajorityVote(answers)
	if got := post[mk(0, 1)]; got < 0.66 || got > 0.67 {
		t.Errorf("post(0,1) = %v; want 2/3", got)
	}
	if got := post[mk(2, 3)]; got != 0 {
		t.Errorf("post(2,3) = %v; want 0", got)
	}
}

func TestPosteriorRankedAndMatches(t *testing.T) {
	post := Posterior{mk(0, 1): 0.9, mk(2, 3): 0.1, mk(4, 5): 0.6}
	ranked := post.Ranked()
	if ranked[0] != mk(0, 1) || ranked[1] != mk(4, 5) || ranked[2] != mk(2, 3) {
		t.Fatalf("Ranked = %v", ranked)
	}
	m := post.Matches(0.5)
	if m.Len() != 2 || !m.Has(0, 1) || !m.Has(4, 5) {
		t.Fatalf("Matches = %v", m)
	}
}

func TestDawidSkenePerfectWorkers(t *testing.T) {
	// With three perfect workers, EM must recover the ground truth.
	truth := map[record.Pair]bool{
		mk(0, 1): true, mk(2, 3): false, mk(4, 5): true,
		mk(6, 7): false, mk(8, 9): false,
	}
	var answers []Answer
	for p, isMatch := range truth {
		for w := 1; w <= 3; w++ {
			answers = append(answers, Answer{Pair: p, Worker: w, Match: isMatch})
		}
	}
	post := DawidSkene(answers, DawidSkeneOptions{})
	for p, isMatch := range truth {
		if isMatch && post[p] < 0.9 {
			t.Errorf("post(%v) = %v; want ~1 for a match", p, post[p])
		}
		if !isMatch && post[p] > 0.1 {
			t.Errorf("post(%v) = %v; want ~0 for a non-match", p, post[p])
		}
	}
}

func TestDawidSkeneEmpty(t *testing.T) {
	if post := DawidSkene(nil, DawidSkeneOptions{}); len(post) != 0 {
		t.Errorf("empty answers should give empty posterior; got %v", post)
	}
}

// buildNoisyAnswers simulates nGood reliable workers (accuracy acc) and
// nSpam spammers (random answers) over nPairs pairs where every third pair
// is a true match.
func buildNoisyAnswers(seed int64, nPairs, nGood, nSpam int, acc float64) ([]Answer, map[record.Pair]bool) {
	rng := rand.New(rand.NewSource(seed))
	truth := make(map[record.Pair]bool)
	var answers []Answer
	for i := 0; i < nPairs; i++ {
		p := mk(2*i, 2*i+1)
		isMatch := i%3 == 0
		truth[p] = isMatch
		w := 0
		for g := 0; g < nGood; g++ {
			ans := isMatch
			if rng.Float64() > acc {
				ans = !ans
			}
			answers = append(answers, Answer{Pair: p, Worker: w, Match: ans})
			w++
		}
		for s := 0; s < nSpam; s++ {
			answers = append(answers, Answer{Pair: p, Worker: w, Match: rng.Intn(2) == 0})
			w++
		}
	}
	return answers, truth
}

func TestDawidSkeneBeatsMajorityWithSpammers(t *testing.T) {
	// 2 good workers + 3 spammers per pair: majority is dominated by
	// spam, EM should learn to discount the spammers. (Workers are
	// consistent across pairs, which is what EM exploits.)
	rng := rand.New(rand.NewSource(5))
	nPairs := 400
	truth := make(map[record.Pair]bool)
	var answers []Answer
	for i := 0; i < nPairs; i++ {
		p := mk(2*i, 2*i+1)
		isMatch := i%3 == 0
		truth[p] = isMatch
		// Workers 0-1: 95% accurate. Workers 2-4: pure coin flips.
		for w := 0; w < 2; w++ {
			ans := isMatch
			if rng.Float64() > 0.95 {
				ans = !ans
			}
			answers = append(answers, Answer{Pair: p, Worker: w, Match: ans})
		}
		for w := 2; w < 5; w++ {
			answers = append(answers, Answer{Pair: p, Worker: w, Match: rng.Intn(2) == 0})
		}
	}
	ds := DawidSkene(answers, DawidSkeneOptions{})
	mv := MajorityVote(answers)
	errCount := func(post Posterior) int {
		e := 0
		for p, isMatch := range truth {
			if (post[p] >= 0.5) != isMatch {
				e++
			}
		}
		return e
	}
	dsErr, mvErr := errCount(ds), errCount(mv)
	if dsErr >= mvErr {
		t.Errorf("Dawid-Skene errors (%d) should be below majority vote (%d)", dsErr, mvErr)
	}
	if dsErr > nPairs/10 {
		t.Errorf("Dawid-Skene errors = %d; want < %d", dsErr, nPairs/10)
	}
}

func TestDawidSkeneNoisyRecovers(t *testing.T) {
	answers, truth := buildNoisyAnswers(7, 300, 3, 0, 0.9)
	post := DawidSkene(answers, DawidSkeneOptions{})
	errs := 0
	for p, isMatch := range truth {
		if (post[p] >= 0.5) != isMatch {
			errs++
		}
	}
	if errs > 15 {
		t.Errorf("EM with 3 x 90%% workers made %d/300 errors; want <= 15", errs)
	}
}

func TestDawidSkenePosteriorBounds(t *testing.T) {
	answers, _ := buildNoisyAnswers(11, 100, 2, 2, 0.8)
	post := DawidSkene(answers, DawidSkeneOptions{})
	for p, v := range post {
		if v < 0 || v > 1 {
			t.Fatalf("posterior(%v) = %v outside [0,1]", p, v)
		}
	}
}

// Satellite: WorkerAccuracy's bare number reads ≈0.5 single-class
// workers as spammers. WorkerReport carries the coverage that
// disambiguates: a worker who answered only decided-non-match pairs has
// ClassesSeen 1, so their accuracy is known to be unanchored.
func TestWorkerReportSparseCoverage(t *testing.T) {
	answers := []Answer{
		// Worker 1: full coverage, perfect.
		{Pair: mk(0, 1), Worker: 1, Match: true},
		{Pair: mk(2, 3), Worker: 1, Match: false},
		// Worker 2: only ever saw (decided) non-matches, and judged them
		// with a coin flip — accuracy 0.5 that means "no data", not
		// "spammer".
		{Pair: mk(2, 3), Worker: 2, Match: false},
		{Pair: mk(4, 5), Worker: 2, Match: true},
		// Worker 3: answered a pair with no posterior; excluded entirely.
		{Pair: mk(8, 9), Worker: 3, Match: true},
	}
	post := Posterior{mk(0, 1): 0.9, mk(2, 3): 0.1, mk(4, 5): 0.2}
	rep := WorkerReport(answers, post)
	if len(rep) != 2 {
		t.Fatalf("report covers %d workers; want 2 (worker 3 has no judged pairs): %+v", len(rep), rep)
	}
	w1 := rep[1]
	if w1.Accuracy != 1 || w1.Answers != 2 || w1.MatchesSeen != 1 || w1.NonMatchesSeen != 1 || w1.ClassesSeen() != 2 {
		t.Errorf("worker 1 = %+v; want perfect accuracy over both classes", w1)
	}
	w2 := rep[2]
	if w2.Accuracy != 0.5 || w2.Answers != 2 {
		t.Errorf("worker 2 = %+v; want accuracy 0.5 over 2 answers", w2)
	}
	if w2.MatchesSeen != 0 || w2.NonMatchesSeen != 2 || w2.ClassesSeen() != 1 {
		t.Errorf("worker 2 coverage = %+v; want single-class (2 non-matches, 0 matches)", w2)
	}
	// The wrapper agrees with the report, so existing accuracy consumers
	// see unchanged numbers.
	acc := WorkerAccuracy(answers, post)
	if len(acc) != len(rep) {
		t.Fatalf("WorkerAccuracy covers %d workers; WorkerReport %d", len(acc), len(rep))
	}
	for w, s := range rep {
		if acc[w] != s.Accuracy {
			t.Errorf("WorkerAccuracy[%d] = %v; WorkerReport says %v", w, acc[w], s.Accuracy)
		}
	}
}

func TestWorkerAccuracy(t *testing.T) {
	answers := []Answer{
		{Pair: mk(0, 1), Worker: 1, Match: true},
		{Pair: mk(0, 1), Worker: 2, Match: false},
		{Pair: mk(2, 3), Worker: 1, Match: false},
		{Pair: mk(2, 3), Worker: 2, Match: false},
	}
	post := Posterior{mk(0, 1): 0.9, mk(2, 3): 0.1}
	acc := WorkerAccuracy(answers, post)
	if acc[1] != 1.0 {
		t.Errorf("worker 1 accuracy = %v; want 1", acc[1])
	}
	if acc[2] != 0.5 {
		t.Errorf("worker 2 accuracy = %v; want 0.5", acc[2])
	}
}

// Satellite: incremental Dawid–Skene re-aggregation under partial answer
// sets — the async execute stage re-aggregates the answers collected so
// far each time a HIT completes. Re-aggregating the growing union after
// each batch must (a) stay well-formed at every step, (b) agree with the
// one-shot aggregation on decisively judged pairs once a pair's answers
// are all in, and (c) converge bit-identically to the one-shot posterior
// of the full set when the last batch lands.
func TestDawidSkeneIncrementalReaggregationConverges(t *testing.T) {
	answers, _ := buildNoisyAnswers(17, 120, 3, 1, 0.9)
	canonical := func(as []Answer) []Answer {
		out := append([]Answer(nil), as...)
		SortCanonical(out)
		return out
	}
	oneShot := DawidSkene(canonical(answers), DawidSkeneOptions{})

	// Answers land HIT by HIT: each batch is the complete answer set of a
	// group of pairs (4 answers per pair × 10 pairs per batch).
	const perPair, pairsPerBatch = 4, 10
	batch := perPair * pairsPerBatch
	var sofar []Answer
	var final Posterior
	for start := 0; start < len(answers); start += batch {
		end := start + batch
		if end > len(answers) {
			end = len(answers)
		}
		sofar = append(sofar, answers[start:end]...)
		final = DawidSkene(canonical(sofar), DawidSkeneOptions{})
		if len(final) != len(sofar)/perPair {
			t.Fatalf("partial aggregation covers %d pairs; want %d", len(final), len(sofar)/perPair)
		}
		for p, v := range final {
			if v < 0 || v > 1 {
				t.Fatalf("partial posterior(%v) = %v outside [0,1]", p, v)
			}
			// Decisively judged pairs keep their decision as more
			// evidence about the workers accumulates.
			if ref := oneShot[p]; ref > 0.9 || ref < 0.1 {
				if (v >= 0.5) != (ref >= 0.5) {
					t.Errorf("pair %v flips decision under partial evidence: %v vs one-shot %v", p, v, ref)
				}
			}
		}
	}

	// The last re-aggregation saw exactly the full canonical answer set,
	// so it must equal the one-shot posterior bit-for-bit.
	if len(final) != len(oneShot) {
		t.Fatalf("final incremental aggregation covers %d pairs; one-shot %d", len(final), len(oneShot))
	}
	for p, v := range oneShot {
		if got := final[p]; got != v {
			t.Fatalf("incremental posterior(%v) = %v; one-shot %v — re-aggregation is not order-invariant", p, got, v)
		}
	}
}
