package aggregate

import "github.com/crowder/crowder/internal/record"

// CalibrationBucket is one posterior bin of a calibration report: the
// pairs whose posterior fell in [Lo, Hi), the mean posterior the
// aggregator claimed for them, and the fraction that are true matches
// under the reference truth. A calibrated aggregator has MeanPosterior ≈
// EmpiricalPrecision in every populated bucket; the sparse-coverage
// degeneracy shows up as a high-posterior bucket with near-zero
// empirical precision.
type CalibrationBucket struct {
	Lo                 float64 `json:"lo"`
	Hi                 float64 `json:"hi"`
	Pairs              int     `json:"pairs"`
	MeanPosterior      float64 `json:"mean_posterior"`
	EmpiricalPrecision float64 `json:"empirical_precision"`
}

// Calibration buckets a posterior into n equal-width bins against a
// reference truth — the posterior-vs-empirical-precision report the
// aggregation bench publishes. The top bucket is closed ([1−1/n, 1]) so
// posterior 1.0 lands in it. Empty buckets are reported with zero
// counts, keeping the layout fixed for diffing across runs.
func Calibration(post Posterior, truth func(record.Pair) bool, n int) []CalibrationBucket {
	if n <= 0 {
		n = 10
	}
	buckets := make([]CalibrationBucket, n)
	width := 1.0 / float64(n)
	for i := range buckets {
		buckets[i].Lo = float64(i) * width
		buckets[i].Hi = float64(i+1) * width
	}
	sums := make([]float64, n)
	hits := make([]int, n)
	for pr, p := range post {
		i := int(p / width)
		if i >= n {
			i = n - 1
		}
		if i < 0 {
			i = 0
		}
		buckets[i].Pairs++
		sums[i] += p
		if truth(pr) {
			hits[i]++
		}
	}
	for i := range buckets {
		if buckets[i].Pairs > 0 {
			buckets[i].MeanPosterior = sums[i] / float64(buckets[i].Pairs)
			buckets[i].EmpiricalPrecision = float64(hits[i]) / float64(buckets[i].Pairs)
		}
	}
	return buckets
}
