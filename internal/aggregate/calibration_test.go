package aggregate

import (
	"math"
	"testing"

	"github.com/crowder/crowder/internal/record"
)

func TestCalibrationBuckets(t *testing.T) {
	post := Posterior{
		mk(0, 1): 0.95, mk(2, 3): 0.97, // top bucket: one true, one false
		mk(4, 5): 1.0,  // boundary posterior must land in the top bucket
		mk(6, 7): 0.05, // bottom bucket, not a match
		mk(8, 9): 0.55,
	}
	truth := func(p record.Pair) bool {
		return p == mk(0, 1) || p == mk(4, 5) || p == mk(8, 9)
	}
	buckets := Calibration(post, truth, 10)
	if len(buckets) != 10 {
		t.Fatalf("got %d buckets; want 10", len(buckets))
	}
	top := buckets[9]
	if top.Pairs != 3 {
		t.Fatalf("top bucket holds %d pairs; want 3 (incl. posterior 1.0): %+v", top.Pairs, top)
	}
	if want := (0.95 + 0.97 + 1.0) / 3; math.Abs(top.MeanPosterior-want) > 1e-12 {
		t.Errorf("top bucket mean posterior = %v; want %v", top.MeanPosterior, want)
	}
	if want := 2.0 / 3; math.Abs(top.EmpiricalPrecision-want) > 1e-12 {
		t.Errorf("top bucket empirical precision = %v; want %v", top.EmpiricalPrecision, want)
	}
	if b := buckets[0]; b.Pairs != 1 || b.EmpiricalPrecision != 0 {
		t.Errorf("bottom bucket = %+v; want exactly the 0.05 non-match", b)
	}
	if b := buckets[5]; b.Pairs != 1 || b.EmpiricalPrecision != 1 {
		t.Errorf("bucket [0.5,0.6) = %+v; want exactly the 0.55 match", b)
	}
	// Empty buckets keep the layout with zero counts.
	if b := buckets[3]; b.Pairs != 0 || b.MeanPosterior != 0 || b.EmpiricalPrecision != 0 {
		t.Errorf("empty bucket = %+v; want zeros", b)
	}
	for i, b := range buckets {
		if want := float64(i) / 10; math.Abs(b.Lo-want) > 1e-12 {
			t.Errorf("bucket %d Lo = %v; want %v", i, b.Lo, want)
		}
	}
}

func TestCalibrationDefaultsBucketCount(t *testing.T) {
	post := Posterior{mk(0, 1): 0.2}
	if got := len(Calibration(post, func(record.Pair) bool { return false }, 0)); got != 10 {
		t.Errorf("n<=0 should default to 10 buckets; got %d", got)
	}
}

// The degeneracy is visible in the calibration report before it is
// visible in F1: the plain estimator publishes the inverted pair in a
// high-posterior bucket with broken empirical precision, the MAP
// aggregator keeps every populated high bucket clean.
func TestCalibrationExposesDegeneracy(t *testing.T) {
	answers, falsePair, _ := sparseDegeneracyAnswers()
	truth := func(p record.Pair) bool { return p != falsePair }

	dsTop := Calibration(DawidSkene(answers, DawidSkeneOptions{}), truth, 10)[9]
	if dsTop.EmpiricalPrecision >= 1 {
		t.Errorf("plain DS top bucket precision = %v; the pinned degeneracy should pollute it", dsTop.EmpiricalPrecision)
	}
	for i, b := range Calibration(DawidSkeneMAP(answers, MAPOptions{}), truth, 10) {
		if b.Lo >= 0.5 && b.Pairs > 0 && b.EmpiricalPrecision < 1 {
			t.Errorf("MAP bucket %d (%+v) holds non-matches above the decision boundary", i, b)
		}
	}
}
