// Package aggregate combines the multiple crowd assignments of each HIT
// into final match decisions. Following Section 7.3, the primary method is
// the EM algorithm of Dawid & Skene (1979), which jointly estimates
// per-worker confusion matrices and per-pair match posteriors and is
// robust to spammers; simple majority voting is provided as the baseline
// the paper argues against ("susceptible to spammers").
package aggregate

import (
	"math"
	"sort"

	"github.com/crowder/crowder/internal/record"
)

// Answer is one worker's verdict on one record pair.
type Answer struct {
	Pair   record.Pair
	Worker int
	Match  bool
}

// SortCanonical orders answers by (pair, worker, verdict), in place. The
// order is a pure function of the answer *set*, independent of the
// sequence that produced it — the invariant that makes re-aggregating
// after k incremental batches bit-identical to aggregating a one-shot
// run: Dawid–Skene's floating-point accumulations see the same operands
// in the same order. Every caller that aggregates a union of answer
// sources sorts through this one helper.
func SortCanonical(answers []Answer) {
	sort.Slice(answers, func(i, j int) bool {
		if answers[i].Pair.A != answers[j].Pair.A {
			return answers[i].Pair.A < answers[j].Pair.A
		}
		if answers[i].Pair.B != answers[j].Pair.B {
			return answers[i].Pair.B < answers[j].Pair.B
		}
		if answers[i].Worker != answers[j].Worker {
			return answers[i].Worker < answers[j].Worker
		}
		return !answers[i].Match && answers[j].Match
	})
}

// Posterior maps each judged pair to its estimated probability of being a
// true match.
type Posterior map[record.Pair]float64

// Ranked returns the judged pairs sorted by posterior descending
// (tie-break on canonical pair order), the ranked list that feeds
// precision-recall evaluation.
func (p Posterior) Ranked() []record.Pair {
	pairs := make([]record.Pair, 0, len(p))
	for pr := range p {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		pi, pj := p[pairs[i]], p[pairs[j]]
		if pi != pj {
			return pi > pj
		}
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return pairs
}

// Matches returns the pairs whose posterior is at least the threshold
// (0.5 for maximum-a-posteriori decisions).
func (p Posterior) Matches(threshold float64) record.PairSet {
	out := record.NewPairSet()
	for pr, prob := range p {
		if prob >= threshold {
			out.Add(pr.A, pr.B)
		}
	}
	return out
}

// MajorityVote returns, for each pair, the fraction of its answers that
// say "match".
func MajorityVote(answers []Answer) Posterior {
	yes := make(map[record.Pair]int)
	total := make(map[record.Pair]int)
	for _, a := range answers {
		total[a.Pair]++
		if a.Match {
			yes[a.Pair]++
		}
	}
	post := make(Posterior, len(total))
	for pr, t := range total {
		post[pr] = float64(yes[pr]) / float64(t)
	}
	return post
}

// DawidSkeneOptions configures the EM run.
type DawidSkeneOptions struct {
	// MaxIterations bounds the EM loop (default 100).
	MaxIterations int
	// Tolerance stops EM when the max posterior change falls below it
	// (default 1e-6).
	Tolerance float64
	// Smoothing is the additive pseudocount protecting confusion-matrix
	// estimates from zeros (default 0.01).
	Smoothing float64
	// PriorAlpha and PriorBeta are the Beta(α, β) prior on the match
	// prevalence: the M-step estimates the class prior as the MAP value
	// (Σposterior + α − 1) / (n + α + β − 2) instead of the bare
	// maximum-likelihood ratio. An informative prior (α, β > 1) keeps
	// the learned prevalence off the 0/1 boundary by construction — the
	// principled replacement for clipping at a bare ε. The defaults are
	// 1, 1 (the uniform prior): the estimate reduces to Σposterior/n,
	// bit-identical to the historical behavior, and the ε guard below
	// remains only for that uniform case.
	PriorAlpha, PriorBeta float64
}

func (o *DawidSkeneOptions) defaults() {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 100
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
	if o.Smoothing <= 0 {
		o.Smoothing = 0.01
	}
	if o.PriorAlpha <= 0 {
		o.PriorAlpha = 1
	}
	if o.PriorBeta <= 0 {
		o.PriorBeta = 1
	}
}

// mapClassPrior is the shared M-step prevalence estimate: the MAP value
// of a Beta(α, β) posterior over priorSum "match" observations out of n,
// guarded against the degenerate log(0) boundary. With the uniform
// α = β = 1 every correction term is exactly 0.0, so the arithmetic —
// and therefore the output bits — match the historical Σposterior/n.
func mapClassPrior(priorSum float64, nPairs int, alpha, beta float64) float64 {
	prior := (priorSum + (alpha - 1)) / (float64(nPairs) + (alpha + beta - 2))
	if prior < 1e-9 {
		prior = 1e-9
	}
	if prior > 1-1e-9 {
		prior = 1 - 1e-9
	}
	return prior
}

// vote is one worker's dense-indexed verdict on a pair.
type vote struct {
	w   int
	yes bool
}

// answerIndex is the dense view of an answer set shared by the EM
// aggregators: pairs and workers renumbered to contiguous indices, the
// votes grouped per pair, and the majority-fraction initial posterior.
// All of it is integer bookkeeping plus the same float divisions the
// aggregators always performed, so sharing it cannot perturb a single
// output bit.
type answerIndex struct {
	pairs    []record.Pair
	byPair   [][]vote
	nWorkers int
	post     []float64 // majority-vote initialization, mutated by EM
}

func indexAnswers(answers []Answer) *answerIndex {
	pairIdx := make(map[record.Pair]int)
	var pairs []record.Pair
	workerIdx := make(map[int]int)
	nWorkers := 0
	for _, a := range answers {
		if _, ok := pairIdx[a.Pair]; !ok {
			pairIdx[a.Pair] = len(pairs)
			pairs = append(pairs, a.Pair)
		}
		if _, ok := workerIdx[a.Worker]; !ok {
			workerIdx[a.Worker] = nWorkers
			nWorkers++
		}
	}
	byPair := make([][]vote, len(pairs))
	for _, a := range answers {
		i := pairIdx[a.Pair]
		byPair[i] = append(byPair[i], vote{w: workerIdx[a.Worker], yes: a.Match})
	}
	post := make([]float64, len(pairs))
	for i, vs := range byPair {
		yes := 0
		for _, v := range vs {
			if v.yes {
				yes++
			}
		}
		post[i] = float64(yes) / float64(len(vs))
	}
	return &answerIndex{pairs: pairs, byPair: byPair, nWorkers: nWorkers, post: post}
}

// posterior copies the dense posterior back out under its pair keys.
func (ix *answerIndex) posterior() Posterior {
	out := make(Posterior, len(ix.pairs))
	for i, pr := range ix.pairs {
		out[pr] = ix.post[i]
	}
	return out
}

// DawidSkene runs the EM algorithm: it alternates estimating each pair's
// match posterior given worker confusion matrices (E-step) with
// re-estimating worker confusion matrices and the class prior given the
// posteriors (M-step), initialized from majority vote.
func DawidSkene(answers []Answer, opts DawidSkeneOptions) Posterior {
	opts.defaults()
	if len(answers) == 0 {
		return Posterior{}
	}

	ix := indexAnswers(answers)
	byPair, post := ix.byPair, ix.post
	nPairs, nWorkers := len(ix.pairs), ix.nWorkers

	// Worker confusion: conf[w][c][l] = P(worker answers l | class c),
	// classes/labels: 0 = non-match, 1 = match.
	conf := make([][2][2]float64, nWorkers)
	prior := 0.5

	for iter := 0; iter < opts.MaxIterations; iter++ {
		// M-step: estimate prior and confusion matrices from posteriors.
		var priorSum float64
		for i := range post {
			priorSum += post[i]
		}
		prior = mapClassPrior(priorSum, nPairs, opts.PriorAlpha, opts.PriorBeta)
		counts := make([][2][2]float64, nWorkers)
		for i, vs := range byPair {
			for _, v := range vs {
				l := 0
				if v.yes {
					l = 1
				}
				counts[v.w][1][l] += post[i]
				counts[v.w][0][l] += 1 - post[i]
			}
		}
		for w := range conf {
			for c := 0; c < 2; c++ {
				den := counts[w][c][0] + counts[w][c][1] + 2*opts.Smoothing
				for l := 0; l < 2; l++ {
					conf[w][c][l] = (counts[w][c][l] + opts.Smoothing) / den
				}
			}
		}

		// E-step: recompute posteriors in log space.
		maxDelta := 0.0
		for i, vs := range byPair {
			logP1 := math.Log(prior)
			logP0 := math.Log(1 - prior)
			for _, v := range vs {
				l := 0
				if v.yes {
					l = 1
				}
				logP1 += math.Log(conf[v.w][1][l])
				logP0 += math.Log(conf[v.w][0][l])
			}
			m := logP1
			if logP0 > m {
				m = logP0
			}
			p1 := math.Exp(logP1 - m)
			p0 := math.Exp(logP0 - m)
			newPost := p1 / (p1 + p0)
			if d := math.Abs(newPost - post[i]); d > maxDelta {
				maxDelta = d
			}
			post[i] = newPost
		}
		if maxDelta < opts.Tolerance {
			break
		}
	}

	return ix.posterior()
}

// WorkerStats is one worker's session diagnostic: empirical agreement
// with the aggregated decisions plus the coverage that tells you whether
// the agreement number means anything. A worker whose history covers
// only one class (ClassesSeen < 2) has a statistically unanchored
// confusion row — their accuracy is not comparable to the pool's, and
// the MAP aggregator anchors them toward the pool mean until coverage
// arrives.
type WorkerStats struct {
	// Accuracy is the fraction of the worker's answers agreeing with the
	// aggregated decision of the pair they judged.
	Accuracy float64
	// Answers counts the worker's judgments over pairs with a posterior.
	Answers int
	// MatchesSeen / NonMatchesSeen count the worker's answers on pairs
	// the aggregation decided as matches / non-matches.
	MatchesSeen, NonMatchesSeen int
}

// ClassesSeen is the number of distinct decided classes (0–2) in the
// worker's answer history. Below 2 the worker's accuracy on the unseen
// class is unmeasurable, not ≈0.5.
func (s WorkerStats) ClassesSeen() int {
	n := 0
	if s.MatchesSeen > 0 {
		n++
	}
	if s.NonMatchesSeen > 0 {
		n++
	}
	return n
}

// WorkerReport computes each worker's WorkerStats against the aggregated
// decisions — the spammer-detection diagnostic (workers far below the
// population are likely answering randomly), now with the coverage
// needed to tell a spammer from a worker who simply never saw a match.
func WorkerReport(answers []Answer, post Posterior) map[int]WorkerStats {
	agree := make(map[int]int)
	stats := make(map[int]WorkerStats)
	for _, a := range answers {
		p, ok := post[a.Pair]
		if !ok {
			continue
		}
		s := stats[a.Worker]
		s.Answers++
		decided := p >= 0.5
		if decided {
			s.MatchesSeen++
		} else {
			s.NonMatchesSeen++
		}
		if a.Match == decided {
			agree[a.Worker]++
		}
		stats[a.Worker] = s
	}
	for w, s := range stats {
		s.Accuracy = float64(agree[w]) / float64(s.Answers)
		stats[w] = s
	}
	return stats
}

// WorkerAccuracy estimates each worker's empirical agreement with the
// aggregated decisions. The bare number is misleading for single-class
// workers (≈0.5 reads as "spammer" when it only means "never saw the
// other class") — prefer WorkerReport, which carries the coverage.
func WorkerAccuracy(answers []Answer, post Posterior) map[int]float64 {
	out := make(map[int]float64)
	for w, s := range WorkerReport(answers, post) {
		out[w] = s.Accuracy
	}
	return out
}
