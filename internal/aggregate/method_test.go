package aggregate

import (
	"strings"
	"testing"
)

func TestMethodRoundTrip(t *testing.T) {
	for _, m := range []Method{MethodDawidSkene, MethodMajorityVote, MethodDawidSkeneMAP} {
		got, err := ParseMethod(m.String())
		if err != nil {
			t.Fatalf("ParseMethod(%q): %v", m, err)
		}
		if got != m {
			t.Errorf("ParseMethod(%q) = %v; want %v", m.String(), got, m)
		}
		agg, err := New(m)
		if err != nil {
			t.Fatalf("New(%v): %v", m, err)
		}
		if agg.Name() != m.String() {
			t.Errorf("New(%v).Name() = %q; want %q", m, agg.Name(), m.String())
		}
	}
}

func TestMethodDefaults(t *testing.T) {
	if MethodDawidSkene != 0 {
		t.Fatal("MethodDawidSkene must be the zero value: the default aggregation path is pinned bit-identical")
	}
	if m, err := ParseMethod(""); err != nil || m != MethodDawidSkene {
		t.Errorf("ParseMethod(\"\") = %v, %v; the empty string selects the default", m, err)
	}
}

func TestMethodUnknown(t *testing.T) {
	if _, err := ParseMethod("em"); err == nil || !strings.Contains(err.Error(), `"em"`) {
		t.Errorf("ParseMethod of an unknown name should fail naming it; got %v", err)
	}
	if _, err := New(Method(42)); err == nil {
		t.Error("New of an unknown method should fail")
	}
	if s := Method(42).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown Method.String() = %q; should carry the raw value", s)
	}
}

// The three built-in aggregators are pure functions of the canonical
// answer set and agree on an unambiguous workload.
func TestAggregatorsAgreeOnUnanimousAnswers(t *testing.T) {
	var answers []Answer
	truth := map[int]bool{0: true, 1: false, 2: true, 3: false}
	for i, isMatch := range truth {
		for w := 1; w <= 3; w++ {
			answers = append(answers, Answer{Pair: mk(2*i, 2*i+1), Worker: w, Match: isMatch})
		}
	}
	SortCanonical(answers)
	for _, m := range []Method{MethodDawidSkene, MethodMajorityVote, MethodDawidSkeneMAP} {
		agg, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		post := agg.Aggregate(answers)
		for i, isMatch := range truth {
			if got := post[mk(2*i, 2*i+1)] >= 0.5; got != isMatch {
				t.Errorf("%s decided pair %d as %v; unanimous answers say %v", agg.Name(), i, got, isMatch)
			}
		}
	}
}
