package aggregate

import (
	"math"
	"testing"

	"github.com/crowder/crowder/internal/record"
)

// sparseDegeneracyAnswers reconstructs the PR 4 stress-test degeneracy
// in its minimal form: 24 single-round workers — 7 cohorts of 3 whose
// whole history is 10 true-match pairs each, plus one cohort of 3 whose
// whole history is a single pair unanimously judged a non-match. The
// learned prevalence is ~70/71, the last cohort's match-class confusion
// rows are unsupported by any data, and plain Dawid–Skene flips the
// false 3-0 pair to a confident match.
func sparseDegeneracyAnswers() (answers []Answer, falsePair record.Pair, workers int) {
	var out []Answer
	worker, pid := 0, 0
	for c := 0; c < 7; c++ {
		ws := []int{worker, worker + 1, worker + 2}
		worker += 3
		for i := 0; i < 10; i++ {
			p := mk(2*pid, 2*pid+1)
			pid++
			for _, w := range ws {
				out = append(out, Answer{Pair: p, Worker: w, Match: true})
			}
		}
	}
	falsePair = mk(2*pid, 2*pid+1)
	for _, w := range []int{worker, worker + 1, worker + 2} {
		out = append(out, Answer{Pair: falsePair, Worker: w, Match: false})
	}
	SortCanonical(out)
	return out, falsePair, worker + 3
}

// Satellite regression: the exact ROADMAP degeneracy. 24 single-round
// workers; a pair judged false 3-0 must not exceed posterior 0.5 under
// the MAP aggregator. The test also pins the bug it fixes: plain
// Dawid–Skene (bit-identical by contract, so this cannot drift) does
// invert the unanimous rejection.
func TestSparseCoverageDegeneracyRegression(t *testing.T) {
	answers, falsePair, workers := sparseDegeneracyAnswers()
	if workers != 24 {
		t.Fatalf("repro built %d workers; the ROADMAP scenario has 24", workers)
	}

	ds := DawidSkene(answers, DawidSkeneOptions{})
	if ds[falsePair] <= 0.5 {
		t.Fatalf("plain Dawid–Skene gave the false 3-0 pair posterior %v; the pinned degeneracy should invert it — did the default path change?", ds[falsePair])
	}

	mp := DawidSkeneMAP(answers, MAPOptions{})
	if mp[falsePair] > 0.5 {
		t.Errorf("MAP aggregator gave the unanimously rejected pair posterior %v; must stay ≤ 0.5", mp[falsePair])
	}
	// The fix must not cost the true matches: every unanimous 3-0 match
	// keeps a confident posterior.
	for p, v := range mp {
		if p == falsePair {
			continue
		}
		if v < 0.9 {
			t.Errorf("MAP posterior(%v) = %v; unanimous true matches should stay ≥ 0.9", p, v)
		}
	}
}

// No unanimous-verdict inversion, the general property: whatever the
// coverage pattern, a pair whose answers are unanimous must not be
// decided against them by the MAP aggregator.
func TestDawidSkeneMAPNeverInvertsUnanimous(t *testing.T) {
	answers, _, _ := sparseDegeneracyAnswers()
	post := DawidSkeneMAP(answers, MAPOptions{})
	assertNoUnanimousInversions(t, answers, post, "MAP")
}

// assertNoUnanimousInversions fails if any unanimously judged pair's
// posterior decision contradicts its unanimous verdict.
func assertNoUnanimousInversions(t *testing.T, answers []Answer, post Posterior, label string) {
	t.Helper()
	yes := make(map[record.Pair]int)
	total := make(map[record.Pair]int)
	for _, a := range answers {
		total[a.Pair]++
		if a.Match {
			yes[a.Pair]++
		}
	}
	for p, tot := range total {
		unanimousYes := yes[p] == tot
		unanimousNo := yes[p] == 0
		if !unanimousYes && !unanimousNo {
			continue
		}
		if unanimousYes && post[p] < 0.5 {
			t.Errorf("%s inverted unanimous match %v to posterior %v", label, p, post[p])
		}
		if unanimousNo && post[p] >= 0.5 {
			t.Errorf("%s inverted unanimous non-match %v to posterior %v", label, p, post[p])
		}
	}
}

// Property: in the dense-coverage limit — long per-worker histories over
// both classes — DawidSkeneMAP with weak priors degenerates to plain
// DawidSkene, and even the default informative priors change no
// decision: every prior term is O(1/n) against the data.
func TestDawidSkeneMAPDenseLimitEquivalence(t *testing.T) {
	for _, seed := range []int64{3, 23, 71} {
		answers, _ := buildNoisyAnswers(seed, 800, 5, 1, 0.9)
		SortCanonical(answers)
		ds := DawidSkene(answers, DawidSkeneOptions{})

		// Weak prior ≙ the additive smoothing of the plain estimator,
		// anchoring disabled: the two EM fixed points coincide.
		weak := DawidSkeneMAP(answers, MAPOptions{
			ConfAlpha: 0.01, ConfBeta: 0.01,
			PriorAlpha: 1, PriorBeta: 1,
			Anchor: -1,
		})
		if len(weak) != len(ds) {
			t.Fatalf("seed %d: weak MAP covers %d pairs, DS %d", seed, len(weak), len(ds))
		}
		for p, v := range ds {
			if d := math.Abs(v - weak[p]); d > 1e-9 {
				t.Fatalf("seed %d: weak-prior MAP diverges from DawidSkene on %v: %v vs %v (Δ %v)", seed, p, weak[p], v, d)
			}
		}

		// Default priors: numerically close, decisions identical.
		def := DawidSkeneMAP(answers, MAPOptions{})
		for p, v := range ds {
			if (v >= 0.5) != (def[p] >= 0.5) {
				t.Errorf("seed %d: default MAP flips dense-coverage decision on %v: %v vs %v", seed, p, def[p], v)
			}
			if d := math.Abs(v - def[p]); d > 0.05 {
				t.Errorf("seed %d: default MAP drifts %v from DawidSkene on %v", seed, d, p)
			}
		}
	}
}

// Table-driven convergence and edge cases shared across both EM
// aggregators: tiny inputs, ties, conflict, and determinism (aggregating
// the same canonical set twice is bit-identical).
func TestEMAggregatorsTable(t *testing.T) {
	one := []Answer{{Pair: mk(0, 1), Worker: 1, Match: true}}
	tie := []Answer{
		{Pair: mk(0, 1), Worker: 1, Match: true},
		{Pair: mk(0, 1), Worker: 2, Match: false},
	}
	conflict := []Answer{
		{Pair: mk(0, 1), Worker: 1, Match: true},
		{Pair: mk(0, 1), Worker: 2, Match: true},
		{Pair: mk(0, 1), Worker: 3, Match: false},
		{Pair: mk(2, 3), Worker: 1, Match: false},
		{Pair: mk(2, 3), Worker: 2, Match: false},
		{Pair: mk(2, 3), Worker: 3, Match: false},
	}
	aggs := []struct {
		name string
		run  func([]Answer) Posterior
	}{
		{"dawid-skene", func(as []Answer) Posterior { return DawidSkene(as, DawidSkeneOptions{}) }},
		{"dawid-skene-map", func(as []Answer) Posterior { return DawidSkeneMAP(as, MAPOptions{}) }},
	}
	cases := []struct {
		name    string
		answers []Answer
		want    map[record.Pair]bool // expected decision per pair
	}{
		{"empty", nil, map[record.Pair]bool{}},
		{"one answer", one, map[record.Pair]bool{mk(0, 1): true}},
		{"tie stays undecided-as-match-boundary", tie, nil}, // bounds-only: the tie posterior is checked below
		{"majority conflict", conflict, map[record.Pair]bool{mk(0, 1): true, mk(2, 3): false}},
	}
	for _, agg := range aggs {
		for _, tc := range cases {
			t.Run(agg.name+"/"+tc.name, func(t *testing.T) {
				post := agg.run(tc.answers)
				again := agg.run(tc.answers)
				if len(post) != len(again) {
					t.Fatal("same input, different pair coverage")
				}
				for p, v := range post {
					if v < 0 || v > 1 {
						t.Fatalf("posterior(%v) = %v outside [0,1]", p, v)
					}
					if again[p] != v {
						t.Fatalf("aggregation is not deterministic on %v: %v vs %v", p, v, again[p])
					}
				}
				if tc.want != nil {
					if len(post) != len(tc.want) {
						t.Fatalf("covered %d pairs; want %d", len(post), len(tc.want))
					}
					for p, match := range tc.want {
						if got := post[p] >= 0.5; got != match {
							t.Errorf("decision(%v) = %v (posterior %v); want %v", p, got, post[p], match)
						}
					}
				}
			})
		}
	}
}

// Tie-breaking: a 1-1 split between two otherwise indistinguishable
// workers must stay at the 0.5 boundary (symmetry), and Matches(0.5)
// resolves the boundary toward "match" by its ≥ convention.
func TestTieBreaking(t *testing.T) {
	tie := []Answer{
		{Pair: mk(0, 1), Worker: 1, Match: true},
		{Pair: mk(0, 1), Worker: 2, Match: false},
	}
	mv := MajorityVote(tie)
	if mv[mk(0, 1)] != 0.5 {
		t.Errorf("majority vote on a 1-1 tie = %v; want 0.5", mv[mk(0, 1)])
	}
	if !mv.Matches(0.5).Has(0, 1) {
		t.Error("Matches(0.5) must include the 0.5 boundary (≥ convention)")
	}
	for name, post := range map[string]Posterior{
		"dawid-skene":     DawidSkene(tie, DawidSkeneOptions{}),
		"dawid-skene-map": DawidSkeneMAP(tie, MAPOptions{}),
	} {
		if d := math.Abs(post[mk(0, 1)] - 0.5); d > 1e-6 {
			t.Errorf("%s broke the 1-1 symmetry: posterior %v", name, post[mk(0, 1)])
		}
	}
}

func TestDawidSkeneMAPEmpty(t *testing.T) {
	if post := DawidSkeneMAP(nil, MAPOptions{}); len(post) != 0 {
		t.Errorf("empty answers should give empty posterior; got %v", post)
	}
}

// The MAP aggregator must behave on the spammer workload at least as
// well as the plain estimator: consistency across pairs is still what
// identifies the spammers.
func TestDawidSkeneMAPBeatsMajorityWithSpammers(t *testing.T) {
	answers, truth := buildNoisyAnswers(5, 400, 2, 3, 0.95)
	SortCanonical(answers)
	mp := DawidSkeneMAP(answers, MAPOptions{})
	mv := MajorityVote(answers)
	errCount := func(post Posterior) int {
		e := 0
		for p, isMatch := range truth {
			if (post[p] >= 0.5) != isMatch {
				e++
			}
		}
		return e
	}
	if mpErr, mvErr := errCount(mp), errCount(mv); mpErr >= mvErr {
		t.Errorf("MAP errors (%d) should be below majority vote (%d)", mpErr, mvErr)
	}
}
