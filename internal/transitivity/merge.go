package transitivity

import (
	"slices"

	"github.com/crowder/crowder/internal/record"
)

// Observation is one asked verdict that still shapes a Graph: a forest
// (match) edge, or a surviving separation witness. Verdicts the graph
// absorbed but dropped — matches inside an already-connected cluster,
// rejections conflicting with the positive closure, weak rejections —
// have no structural effect and are not reported.
type Observation struct {
	Pair  record.Pair
	Match bool
	// Strong is the evidentiary weight the verdict was observed with.
	// Surviving witnesses are strong by construction.
	Strong bool
}

// Observations returns the graph's surviving observations in canonical
// pair order. Replaying them into a fresh graph in that order reproduces
// the same clusters, proof forest and witnesses (see Merge); they are
// the cross-shard exchange format for composing per-shard graphs.
func (g *Graph) Observations() []Observation {
	var out []Observation
	// Each forest edge is stored from both endpoints with the same via;
	// keeping the via.A-keyed copy takes each asked pair exactly once.
	for node, edges := range g.forest {
		for _, e := range edges {
			if node == e.via.A {
				out = append(out, Observation{Pair: e.via, Match: true, Strong: e.strong})
			}
		}
	}
	// Each negative edge is stored symmetrically under both roots; a
	// witness pair sits on at most one edge, so r1 < r2 dedupes.
	for r1, m := range g.neg {
		for r2, witness := range m {
			if r1 < r2 {
				out = append(out, Observation{Pair: witness, Match: false, Strong: true})
			}
		}
	}
	slices.SortFunc(out, func(a, b Observation) int {
		if a.Pair.A != b.Pair.A {
			if a.Pair.A < b.Pair.A {
				return -1
			}
			return 1
		}
		if a.Pair.B != b.Pair.B {
			if a.Pair.B < b.Pair.B {
				return -1
			}
			return 1
		}
		return 0
	})
	return out
}

// Merge composes per-shard deduction graphs into one. The parts must
// have been built over disjoint observation subsets — each asked pair
// observed in exactly one part, every part observing its subset in
// canonical pair order — which is how the sharded resolver partitions
// the verdict cache (by record.Pair.Shard).
//
// The merged graph is bit-identical to observing the union sequentially
// in canonical pair order: an observation a part dropped is dropped by
// the sequential build too (a part's connectivity at any canonical
// prefix is a subgraph of the union's, so a match redundant or a
// rejection conflicting within its part is redundant/conflicting
// globally), and replaying the surviving union in canonical order
// reproduces the sequential build's forest, union sequence and witness
// competition exactly. Witness and proof provenance therefore survive
// the exchange: Deduce returns the same proofs the unsharded graph
// would.
func Merge(maxProof int, parts ...*Graph) *Graph {
	g := New()
	g.MaxProof = maxProof
	var all []Observation
	observed := 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		all = append(all, p.Observations()...)
		observed += p.Observed()
	}
	slices.SortFunc(all, func(a, b Observation) int {
		if a.Pair.A != b.Pair.A {
			if a.Pair.A < b.Pair.A {
				return -1
			}
			return 1
		}
		if a.Pair.B != b.Pair.B {
			if a.Pair.B < b.Pair.B {
				return -1
			}
			return 1
		}
		return 0
	})
	for _, o := range all {
		g.ObserveStrength(o.Pair, o.Match, o.Strong)
	}
	// Dropped observations count toward Observed in the parts but were
	// not replayed; the merged graph accounts for the union.
	g.observed = observed
	return g
}
