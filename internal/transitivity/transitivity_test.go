package transitivity

import (
	"math/rand"
	"testing"

	"github.com/crowder/crowder/internal/record"
)

func pair(a, b int) record.Pair { return record.MakePair(record.ID(a), record.ID(b)) }

func TestPositiveClosure(t *testing.T) {
	g := New()
	g.Observe(pair(0, 1), true)
	g.Observe(pair(1, 2), true)

	d, ok := g.Deduce(pair(0, 2))
	if !ok || !d.Match {
		t.Fatalf("A=B, B=C must deduce A=C; got ok=%v d=%+v", ok, d)
	}
	if len(d.Path) != 2 || d.Path[0] != pair(0, 1) || d.Path[1] != pair(1, 2) {
		t.Errorf("proof path = %v, want [(0,1) (1,2)]", d.Path)
	}
	if d.Negative {
		t.Error("positive deduction flagged negative")
	}
}

func TestNegativeInference(t *testing.T) {
	g := New()
	g.Observe(pair(0, 1), true)
	g.Observe(pair(2, 3), true)
	g.Observe(pair(1, 2), false) // cluster {0,1} ≠ cluster {2,3}

	d, ok := g.Deduce(pair(0, 3))
	if !ok || d.Match {
		t.Fatalf("A=B, C=D, B≠C must deduce A≠D; got ok=%v d=%+v", ok, d)
	}
	if !d.Negative || d.Witness != pair(1, 2) {
		t.Errorf("witness = %+v, want (1,2)", d)
	}
	// Proof: path 0→1 (witness side A) plus path 3→2 (witness side B).
	want := map[record.Pair]bool{pair(0, 1): true, pair(2, 3): true}
	if len(d.Path) != 2 || !want[d.Path[0]] || !want[d.Path[1]] {
		t.Errorf("proof path = %v, want {(0,1),(2,3)}", d.Path)
	}
}

func TestUnknownPairsNotDeduced(t *testing.T) {
	g := New()
	g.Observe(pair(0, 1), true)
	if _, ok := g.Deduce(pair(0, 2)); ok {
		t.Error("pair with an unobserved endpoint deduced")
	}
	if _, ok := g.Deduce(pair(2, 3)); ok {
		t.Error("pair between two unobserved records deduced")
	}
	g.Observe(pair(2, 3), true)
	if _, ok := g.Deduce(pair(0, 2)); ok {
		t.Error("pair between two clusters with no negative edge deduced")
	}
}

func TestAskedNonMatchInsideClusterIsIgnored(t *testing.T) {
	g := New()
	g.Observe(pair(0, 1), true)
	g.Observe(pair(1, 2), true)
	// Conflicting rejection inside the cluster: positive closure wins,
	// the deduced verdict for (0,2) stays a match.
	g.Observe(pair(0, 2), false)
	d, ok := g.Deduce(pair(0, 2))
	if !ok || !d.Match {
		t.Fatalf("conflicting in-cluster rejection flipped the closure: ok=%v d=%+v", ok, d)
	}
}

func TestAcceptedMatchDropsConflictingNegativeEdge(t *testing.T) {
	g := New()
	g.Observe(pair(0, 1), false) // {0} ≠ {1}
	g.Observe(pair(0, 1), true)  // positive evidence wins; clusters merge
	if !g.SameCluster(0, 1) {
		t.Fatal("accepted match did not merge the clusters")
	}
	g.Observe(pair(1, 2), true)
	d, ok := g.Deduce(pair(0, 2))
	if !ok || !d.Match {
		t.Fatalf("stale negative edge survived the merge: ok=%v d=%+v", ok, d)
	}
}

func TestNegativeEdgesSurviveUnions(t *testing.T) {
	g := New()
	g.Observe(pair(0, 5), false) // {0} ≠ {5}
	g.Observe(pair(0, 1), true)
	g.Observe(pair(5, 6), true)
	// The negative edge must have followed both unions.
	d, ok := g.Deduce(pair(1, 6))
	if !ok || d.Match {
		t.Fatalf("negative edge lost across unions: ok=%v d=%+v", ok, d)
	}
	if d.Witness != pair(0, 5) {
		t.Errorf("witness = %v, want (0,5)", d.Witness)
	}
}

// TestDeductionsConsistentWithEquivalence drives the graph with the full
// pairwise truth of a random partition and checks every deduced verdict
// against the partition: with consistent input, deduction must never
// invent a wrong verdict, and within fully-asked clusters it must find
// every implied pair.
func TestDeductionsConsistentWithEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 40
	entity := make([]int, n)
	for i := range entity {
		entity[i] = rng.Intn(8)
	}
	g := New()
	var held []record.Pair // pairs withheld from the graph, every third
	k := 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			p := pair(a, b)
			k++
			if k%3 == 0 {
				held = append(held, p)
				continue
			}
			g.Observe(p, entity[a] == entity[b])
		}
	}
	deduced := 0
	for _, p := range held {
		d, ok := g.Deduce(p)
		if !ok {
			continue
		}
		deduced++
		if want := entity[p.A] == entity[p.B]; d.Match != want {
			t.Fatalf("deduced %v=%v, truth %v", p, d.Match, want)
		}
		if d.Match && len(d.Path) == 0 {
			t.Errorf("positive deduction for %v has empty proof", p)
		}
		if !d.Match && !d.Negative {
			t.Errorf("negative deduction for %v carries no witness", p)
		}
	}
	if deduced == 0 {
		t.Fatal("no withheld pair was deducible — the test exercises nothing")
	}
	if deduced < len(held)*9/10 {
		// With 2/3 of a complete pair set observed, nearly every held pair
		// is implied. (Not all: a pair between two singleton clusters whose
		// only connecting evidence was the held pair itself stays unknown.)
		t.Errorf("deduced only %d of %d withheld pairs", deduced, len(held))
	}
}

// TestDeterministicAcrossRuns replays one observation sequence twice and
// requires identical deductions, including proofs — the graph must be a
// pure function of the sequence.
func TestDeterministicAcrossRuns(t *testing.T) {
	build := func() *Graph {
		g := New()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 300; i++ {
			a, b := rng.Intn(30), rng.Intn(30)
			if a == b {
				continue
			}
			g.Observe(pair(a, b), rng.Intn(2) == 0)
		}
		return g
	}
	g1, g2 := build(), build()
	for a := 0; a < 30; a++ {
		for b := a + 1; b < 30; b++ {
			d1, ok1 := g1.Deduce(pair(a, b))
			d2, ok2 := g2.Deduce(pair(a, b))
			if ok1 != ok2 || d1.Match != d2.Match || d1.Witness != d2.Witness || len(d1.Path) != len(d2.Path) {
				t.Fatalf("non-deterministic deduction for (%d,%d): %+v vs %+v", a, b, d1, d2)
			}
			for i := range d1.Path {
				if d1.Path[i] != d2.Path[i] {
					t.Fatalf("non-deterministic proof for (%d,%d)", a, b)
				}
			}
		}
	}
}

func TestObservedCount(t *testing.T) {
	g := New()
	g.Observe(pair(0, 1), true)
	g.Observe(pair(1, 2), false)
	if g.Observed() != 2 {
		t.Errorf("Observed() = %d, want 2", g.Observed())
	}
}

// Weak (contested) verdicts shape clusters but must never carry proofs —
// in either direction. A match chain through a weak link is not
// deducible, and neither is a non-match whose endpoint reaches the
// witness only through a weak link (regression: the negative branch
// used to silently drop the nil path half and deduce anyway, with the
// contested link invisible to MaxProof and confidence scoring).
func TestWeakEdgesCarryNoProofs(t *testing.T) {
	g := New()
	g.ObserveStrength(pair(0, 1), true, false) // contested match
	g.Observe(pair(1, 2), true)
	if _, ok := g.Deduce(pair(0, 2)); ok {
		t.Error("positive deduction crossed a weak link")
	}
	if !g.SameCluster(0, 2) {
		t.Error("weak match did not merge the clusters")
	}

	g2 := New()
	g2.ObserveStrength(pair(1, 2), true, false) // contested: 1=2
	g2.Observe(pair(2, 3), false)               // strong: 2≠3
	if d, ok := g2.Deduce(pair(1, 3)); ok {
		t.Errorf("negative deduction rested on a contested link: %+v", d)
	}
	// The direct witness pair itself is still fine.
	if d, ok := g2.Deduce(pair(2, 3)); ok && d.Match {
		t.Error("witness pair deduced as a match")
	}

	// Weak non-matches never become separation witnesses at all.
	g3 := New()
	g3.Observe(pair(0, 1), true)
	g3.Observe(pair(2, 3), true)
	g3.ObserveStrength(pair(1, 2), false, false)
	if _, ok := g3.Deduce(pair(0, 3)); ok {
		t.Error("negative edge created from a contested rejection")
	}
}

// Deducible is the allocation-light twin of Deduce used on hot paths;
// the two must agree exactly — over random graphs with mixed verdict
// strengths, and at every MaxProof setting.
func TestDeducibleAgreesWithDeduce(t *testing.T) {
	for _, maxProof := range []int{0, 1, 2, 3} {
		g := New()
		g.MaxProof = maxProof
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 400; i++ {
			a, b := rng.Intn(25), rng.Intn(25)
			if a == b {
				continue
			}
			g.ObserveStrength(pair(a, b), rng.Intn(3) > 0, rng.Intn(4) > 0)
		}
		for a := 0; a < 25; a++ {
			for b := a + 1; b < 25; b++ {
				_, ok := g.Deduce(pair(a, b))
				if got := g.Deducible(pair(a, b)); got != ok {
					t.Fatalf("MaxProof=%d: Deducible(%d,%d)=%v but Deduce ok=%v", maxProof, a, b, got, ok)
				}
			}
		}
	}
}
