package transitivity

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/crowder/crowder/internal/record"
)

// randomObservations generates a canonical-order observation sequence
// over nIDs records: random pairs, random match/strength, deduplicated
// by pair (a pair is asked once), sorted canonically — the shape of
// Cache.AskedEntries.
func randomObservations(rng *rand.Rand, nIDs, nObs int) []Observation {
	if max := nIDs * (nIDs - 1) / 2; nObs > max {
		nObs = max
	}
	seen := make(map[record.Pair]bool)
	var out []Observation
	for len(out) < nObs {
		a := record.ID(rng.Intn(nIDs))
		b := record.ID(rng.Intn(nIDs))
		if a == b {
			continue
		}
		p := record.MakePair(a, b)
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, Observation{
			Pair:  p,
			Match: rng.Intn(3) != 0, // bias toward matches: deeper forests
			// Weak rejections exercise the no-op path; weak matches
			// still union but carry no proof edge strength.
			Strong: rng.Intn(4) != 0,
		})
	}
	sortObs(out)
	return out
}

func sortObs(obs []Observation) {
	for i := 1; i < len(obs); i++ {
		for j := i; j > 0 && pairBefore(obs[j].Pair, obs[j-1].Pair); j-- {
			obs[j], obs[j-1] = obs[j-1], obs[j]
		}
	}
}

func pairBefore(a, b record.Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

func buildSequential(obs []Observation, maxProof int) *Graph {
	g := New()
	g.MaxProof = maxProof
	for _, o := range obs {
		g.ObserveStrength(o.Pair, o.Match, o.Strong)
	}
	return g
}

// TestMergeEqualsSequential is the tentpole's correctness theorem: for
// random observation sequences, partitioning the observations by pair
// hash, building per-shard graphs (each in canonical order) and merging
// them reproduces the sequential canonical-order build exactly —
// clusters, deductions, proofs, witnesses and counters.
func TestMergeEqualsSequential(t *testing.T) {
	const maxProof = 3
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nIDs := 8 + rng.Intn(40)
		nObs := 5 + rng.Intn(80)
		obs := randomObservations(rng, nIDs, nObs)
		want := buildSequential(obs, maxProof)

		for _, shards := range []int{1, 2, 4, 8} {
			parts := make([]*Graph, shards)
			for s := range parts {
				parts[s] = New()
				parts[s].MaxProof = maxProof
			}
			// Partition by pair hash; each part sees its subset in
			// canonical order because obs is canonical.
			for _, o := range obs {
				pg := parts[o.Pair.Shard(shards)]
				pg.ObserveStrength(o.Pair, o.Match, o.Strong)
			}
			got := Merge(maxProof, parts...)

			if got.Observed() != want.Observed() {
				t.Fatalf("seed %d shards %d: merged Observed %d, sequential %d",
					seed, shards, got.Observed(), want.Observed())
			}
			if !reflect.DeepEqual(got.Observations(), want.Observations()) {
				t.Fatalf("seed %d shards %d: merged surviving observations differ\n got: %+v\nwant: %+v",
					seed, shards, got.Observations(), want.Observations())
			}
			// Exhaustive behavioral equality over every pair.
			for a := 0; a < nIDs; a++ {
				for b := a + 1; b < nIDs; b++ {
					p := record.MakePair(record.ID(a), record.ID(b))
					if got.SameCluster(p.A, p.B) != want.SameCluster(p.A, p.B) {
						t.Fatalf("seed %d shards %d: SameCluster(%v) differs", seed, shards, p)
					}
					if got.Deducible(p) != want.Deducible(p) {
						t.Fatalf("seed %d shards %d: Deducible(%v) differs", seed, shards, p)
					}
					gd, gok := got.Deduce(p)
					wd, wok := want.Deduce(p)
					if gok != wok || !reflect.DeepEqual(gd, wd) {
						t.Fatalf("seed %d shards %d: Deduce(%v) differs\n got: %v %+v\nwant: %v %+v",
							seed, shards, p, gok, gd, wok, wd)
					}
				}
			}
		}
	}
}

// TestObservationsRoundTrip: replaying a graph's own surviving
// observations into a fresh graph reproduces it — the exchange format is
// lossless for structure.
func TestObservationsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	obs := randomObservations(rng, 30, 60)
	g := buildSequential(obs, 3)

	replayed := New()
	replayed.MaxProof = 3
	for _, o := range g.Observations() {
		replayed.ObserveStrength(o.Pair, o.Match, o.Strong)
	}
	if !reflect.DeepEqual(replayed.Observations(), g.Observations()) {
		t.Fatalf("round-trip changed the surviving observations")
	}
	for a := record.ID(0); a < 30; a++ {
		for b := a + 1; b < 30; b++ {
			p := record.MakePair(a, b)
			gd, gok := g.Deduce(p)
			rd, rok := replayed.Deduce(p)
			if gok != rok || !reflect.DeepEqual(gd, rd) {
				t.Fatalf("Deduce(%v) differs after round-trip", p)
			}
		}
	}
}

// TestMergeEmptyAndNilParts: Merge tolerates nil and empty parts.
func TestMergeEmptyAndNilParts(t *testing.T) {
	g := Merge(3, nil, New(), nil)
	if g.Observed() != 0 {
		t.Fatalf("empty merge observed %d", g.Observed())
	}
	part := New()
	part.MaxProof = 3
	part.Observe(record.MakePair(1, 2), true)
	merged := Merge(3, nil, part)
	if !merged.SameCluster(1, 2) {
		t.Fatal("single-part merge lost the cluster")
	}
	if merged.Observed() != 1 {
		t.Fatalf("single-part merge observed %d", merged.Observed())
	}
}
