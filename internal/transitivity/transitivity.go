// Package transitivity implements the deduction graph that lets the
// hybrid workflow skip crowdsourcing pairs whose verdict is already
// implied by earlier crowd answers. Entity resolution is an equivalence
// relation: once the crowd accepts A=B and B=C, A=C follows by
// transitivity, and once it additionally rejects B=D, A≠D follows by
// negative inference (a record cannot be in two entities at once). The
// paper's cluster-based HITs exploit this *within* one task — the
// colour-labelling interface transitively closes each worker's answers —
// and this package extends the same relation *across* tasks, so an
// adaptive scheduler can deduce verdicts instead of paying for them.
//
// The graph maintains
//
//   - the positive closure as a union-find over record IDs, with a
//     spanning forest of the accepted asked pairs kept alongside as the
//     proof structure: the forest path between two records is the chain
//     of crowd verdicts that implies their match;
//   - negative edges between clusters, each carrying the asked non-match
//     pair that witnessed the separation.
//
// Crowd answers are noisy, so the observed relation is not always a
// consistent equivalence. Conflicts resolve deterministically in favour
// of the positive evidence: an accepted match merges its two clusters
// even if a negative edge separated them (the edge is dropped), and a
// rejected match inside an already-connected cluster adds nothing. Asked
// pairs always keep their own crowd verdict — deduction only ever speaks
// for pairs nobody asked.
//
// A Graph is not safe for concurrent use; the owning scheduler
// serializes access. All iteration orders are canonical, so a graph's
// state is a pure function of the observation sequence.
package transitivity

import (
	"github.com/crowder/crowder/internal/record"
)

// Deduction is one deduced verdict with its provenance: the asked pairs
// whose verdicts imply it.
type Deduction struct {
	// Pair is the deduced pair.
	Pair record.Pair
	// Match is the deduced verdict.
	Match bool
	// Path lists the accepted asked pairs forming the proof chain. For a
	// positive deduction it connects Pair.A to Pair.B; for a negative one
	// it connects Pair.A and Pair.B to the two sides of Witness.
	Path []record.Pair
	// Witness is the asked non-match pair separating the two clusters
	// (negative deductions only; zero otherwise).
	Witness record.Pair
	// Negative reports whether Witness is meaningful.
	Negative bool
}

// forestEdge is one accepted asked pair seen from one endpoint. Weak
// edges (non-unanimous crowd majorities) merge clusters but cannot
// carry proofs: deductions built on contested links would compound the
// noise they rest on.
type forestEdge struct {
	to     record.ID
	via    record.Pair
	strong bool
}

// Graph is the deduction graph over crowd verdicts.
type Graph struct {
	parent map[record.ID]record.ID
	rank   map[record.ID]int
	// forest is the spanning forest of accepted asked pairs: acyclic by
	// construction (an edge is added only when it merges two clusters),
	// it spans every cluster and provides proof paths.
	forest map[record.ID][]forestEdge
	// neg[r1][r2] is the asked non-match pair that witnessed cluster r1
	// and cluster r2 being distinct entities (symmetric). Only strong
	// (unanimous) rejections become witnesses: a contested non-match is
	// too thin a base for inferring other pairs apart.
	neg map[record.ID]map[record.ID]record.Pair

	// MaxProof, when positive, bounds the number of asked pairs a
	// deduction may rest on (path edges, plus the witness for negative
	// deductions). Crowd answers are noisy and chains compound error —
	// a ten-link chain of 95%-confident matches is only ~60% confident —
	// so schedulers cap the proof length and ask the crowd directly for
	// anything that would need a longer one. 0 means unlimited.
	MaxProof int

	observed int
}

// New creates an empty deduction graph.
func New() *Graph {
	return &Graph{
		parent: make(map[record.ID]record.ID),
		rank:   make(map[record.ID]int),
		forest: make(map[record.ID][]forestEdge),
		neg:    make(map[record.ID]map[record.ID]record.Pair),
	}
}

// Observed returns the number of asked verdicts absorbed so far.
func (g *Graph) Observed() int { return g.observed }

// find returns the cluster root of v with path compression. Records
// never observed are their own singleton cluster.
func (g *Graph) find(v record.ID) record.ID {
	p, ok := g.parent[v]
	if !ok {
		return v
	}
	if p == v {
		return v
	}
	root := g.find(p)
	g.parent[v] = root
	return root
}

// SameCluster reports whether a and b are in one positive-closure
// cluster.
func (g *Graph) SameCluster(a, b record.ID) bool {
	return a == b || g.find(a) == g.find(b)
}

// Root returns the canonical representative of v's positive-closure
// cluster (v itself when unobserved). Schedulers use it to reason about
// clusters without touching union-find internals.
func (g *Graph) Root(v record.ID) record.ID { return g.find(v) }

// Observe absorbs one asked crowd verdict with full evidentiary weight:
// ObserveStrength with strong = true.
func (g *Graph) Observe(p record.Pair, match bool) {
	g.ObserveStrength(p, match, true)
}

// ObserveStrength absorbs one asked crowd verdict. Accepted matches
// merge the endpoints' clusters (dropping any negative edge that
// separated them — positive evidence wins deterministically); rejected
// matches add a negative edge between the clusters unless the endpoints
// are already connected, in which case the rejection conflicts with the
// positive closure and contributes nothing beyond the pair's own
// verdict.
//
// strong marks the verdict as unanimous (or otherwise high-confidence)
// crowd evidence. Weak verdicts still shape the clusters — they are the
// crowd's best answer for their own pair — but never carry proofs: a
// weak match is a forest edge deductions cannot traverse, and a weak
// non-match never becomes a separation witness. Contested links
// therefore stop deduction chains cold instead of silently compounding
// their noise into pairs nobody asked about.
func (g *Graph) ObserveStrength(p record.Pair, match, strong bool) {
	g.observed++
	if !match {
		ra, rb := g.find(p.A), g.find(p.B)
		if ra == rb {
			return // conflicts with the positive closure; positive wins
		}
		if !strong {
			return // a contested rejection is too thin to separate clusters
		}
		g.ensure(p.A)
		g.ensure(p.B)
		g.addNegative(ra, rb, p)
		return
	}
	ra, rb := g.find(p.A), g.find(p.B)
	if ra == rb {
		return // already connected; the forest keeps its existing proof
	}
	g.ensure(p.A)
	g.ensure(p.B)
	// The accepted pair becomes a forest edge — it merges two trees, so
	// the forest stays acyclic and spanning.
	g.forest[p.A] = append(g.forest[p.A], forestEdge{to: p.B, via: p, strong: strong})
	g.forest[p.B] = append(g.forest[p.B], forestEdge{to: p.A, via: p, strong: strong})
	g.union(ra, rb)
}

// ensure registers v as its own cluster if unseen.
func (g *Graph) ensure(v record.ID) {
	if _, ok := g.parent[v]; !ok {
		g.parent[v] = v
	}
}

// union merges the clusters rooted at ra and rb (by rank) and re-keys
// their negative edges onto the surviving root. A negative edge between
// the two merging clusters — conflicting evidence — is dropped: the
// accepted match that triggered the union wins.
func (g *Graph) union(ra, rb record.ID) {
	if g.rank[ra] < g.rank[rb] {
		ra, rb = rb, ra
	}
	g.parent[rb] = ra
	if g.rank[ra] == g.rank[rb] {
		g.rank[ra]++
	}
	// Fold rb's negative edges into ra's.
	delete(g.neg[ra], rb)
	for other, witness := range g.neg[rb] {
		delete(g.neg[other], rb)
		if other == ra {
			continue // the dropped conflicting edge, seen from the far side
		}
		g.addNegative(ra, other, witness)
	}
	delete(g.neg, rb)
}

// addNegative records a negative edge between two cluster roots. When
// both merging clusters were distinct from the same third cluster, two
// witnesses compete for one edge; the canonically smaller pair wins so
// the surviving witness is independent of map iteration order.
func (g *Graph) addNegative(ra, rb record.ID, witness record.Pair) {
	if existing, ok := g.neg[ra][rb]; ok && !pairLess(witness, existing) {
		return
	}
	g.setNegative(ra, rb, witness)
	g.setNegative(rb, ra, witness)
}

func (g *Graph) setNegative(from, to record.ID, witness record.Pair) {
	m, ok := g.neg[from]
	if !ok {
		m = make(map[record.ID]record.Pair)
		g.neg[from] = m
	}
	m[to] = witness
}

func pairLess(a, b record.Pair) bool {
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// Deduce reports whether the pair's verdict follows from the verdicts
// observed so far, and if so returns it with its proof. A pair deduces
// to a match when its endpoints share a cluster (proof: the forest path
// of asked pairs between them) and to a non-match when a negative edge
// separates its endpoints' clusters (proof: the forest paths from each
// endpoint to its side of the witness pair, plus the witness itself).
func (g *Graph) Deduce(p record.Pair) (Deduction, bool) {
	ra, rb := g.find(p.A), g.find(p.B)
	if ra == rb && p.A != p.B {
		path := g.forestPath(p.A, p.B)
		if path == nil {
			return Deduction{}, false // singleton self-root edge case
		}
		if g.MaxProof > 0 && len(path) > g.MaxProof {
			return Deduction{}, false
		}
		return Deduction{Pair: p, Match: true, Path: path}, true
	}
	witness, ok := g.neg[ra][rb]
	if !ok {
		return Deduction{}, false
	}
	// Orient the witness: wa is the witness endpoint on A's side.
	wa, wb := witness.A, witness.B
	if g.find(wa) != ra {
		wa, wb = wb, wa
	}
	// Both halves of the proof must exist as strong paths: an endpoint
	// connected to its witness side only through a weak, contested link
	// has no admissible chain, exactly like the positive branch.
	pathA := g.forestPath(p.A, wa)
	pathB := g.forestPath(p.B, wb)
	if pathA == nil || pathB == nil {
		return Deduction{}, false
	}
	path := append(pathA, pathB...)
	if g.MaxProof > 0 && len(path)+1 > g.MaxProof {
		return Deduction{}, false
	}
	return Deduction{Pair: p, Match: false, Path: path, Witness: witness, Negative: true}, true
}

// Deducible reports whether Deduce would succeed for p, without
// materializing the proof. Schedulers poll it on hot paths — mid-flight
// retraction checks every in-flight HIT after every completion — where
// building hop records and path slices per probe would dominate the
// collector loop. It must agree with Deduce exactly; both sides
// traverse only strong edges and apply the same MaxProof arithmetic.
func (g *Graph) Deducible(p record.Pair) bool {
	ra, rb := g.find(p.A), g.find(p.B)
	if ra == rb && p.A != p.B {
		d, ok := g.strongDist(p.A, p.B)
		return ok && (g.MaxProof <= 0 || d <= g.MaxProof)
	}
	witness, ok := g.neg[ra][rb]
	if !ok {
		return false
	}
	wa, wb := witness.A, witness.B
	if g.find(wa) != ra {
		wa, wb = wb, wa
	}
	da, okA := g.strongDist(p.A, wa)
	if !okA {
		return false
	}
	db, okB := g.strongDist(p.B, wb)
	if !okB {
		return false
	}
	return g.MaxProof <= 0 || da+db+1 <= g.MaxProof
}

// strongDist returns the length of the strong-edge forest path from a
// to b. Paths in a forest are unique, so BFS depth is the path length.
func (g *Graph) strongDist(a, b record.ID) (int, bool) {
	if a == b {
		return 0, true
	}
	type at struct {
		node record.ID
		dist int
	}
	queue := []at{{node: a}}
	seen := map[record.ID]bool{a: true}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, e := range g.forest[h.node] {
			if seen[e.to] || !e.strong {
				continue
			}
			if e.to == b {
				return h.dist + 1, true
			}
			seen[e.to] = true
			queue = append(queue, at{node: e.to, dist: h.dist + 1})
		}
	}
	return 0, false
}

// forestPath returns the asked pairs along the strong-edge forest path
// from a to b, or nil when no such path exists (including when the only
// connection runs through a weak, contested link). a == b yields an
// empty (non-nil) path.
func (g *Graph) forestPath(a, b record.ID) []record.Pair {
	if a == b {
		return []record.Pair{}
	}
	// BFS over the proof forest; cluster trees are small relative to the
	// candidate set, and paths are unique in a forest.
	type hop struct {
		node record.ID
		prev int // index into hops, -1 at the start
		via  record.Pair
	}
	hops := []hop{{node: a, prev: -1}}
	seen := map[record.ID]bool{a: true}
	for i := 0; i < len(hops); i++ {
		h := hops[i]
		for _, e := range g.forest[h.node] {
			if seen[e.to] || !e.strong {
				continue
			}
			seen[e.to] = true
			hops = append(hops, hop{node: e.to, prev: i, via: e.via})
			if e.to == b {
				var path []record.Pair
				for j := len(hops) - 1; hops[j].prev >= 0; j = hops[j].prev {
					path = append(path, hops[j].via)
				}
				// Reverse into a-to-b order.
				for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
					path[l], path[r] = path[r], path[l]
				}
				return path
			}
		}
	}
	return nil
}
