package blocking

import (
	"testing"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/similarity"
)

func smallTable() *record.Table {
	t := record.NewTable("name")
	t.Append("apple ipad two 16gb") // 0
	t.Append("apple ipad 2nd 16gb") // 1
	t.Append("sony bravia tv")      // 2
	t.Append("sony bravia lcd tv")  // 3
	t.Append("zzz unrelated qqq")   // 4
	return t
}

func TestTokenBlockingBasics(t *testing.T) {
	tab := smallTable()
	pairs := TokenBlocking(tab, Options{})
	set := record.NewPairSet(pairs...)
	if !set.Has(0, 1) {
		t.Error("ipad pair should be a candidate")
	}
	if !set.Has(2, 3) {
		t.Error("sony pair should be a candidate")
	}
	if set.Has(0, 4) || set.Has(2, 4) {
		t.Error("token-disjoint pairs should not be candidates")
	}
	// records 0..3 all share tokens pairwise via "apple"/"sony"? No:
	// (0,2) share nothing → excluded.
	if set.Has(0, 2) {
		t.Error("(0,2) share no token")
	}
}

// Token blocking is complete for Jaccard > 0: every pair with non-zero
// similarity shares a token and must appear among the candidates.
func TestTokenBlockingCompleteness(t *testing.T) {
	d := dataset.RestaurantN(3, 120, 15)
	pairs := TokenBlocking(d.Table, Options{})
	set := record.NewPairSet(pairs...)
	ids := d.Table.TokenIDs()
	n := d.Table.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if similarity.Jaccard(ids[i], ids[j]) > 0 {
				if !set.Has(record.ID(i), record.ID(j)) {
					t.Fatalf("pair (%d,%d) has positive similarity but is not a candidate", i, j)
				}
			}
		}
	}
}

func TestTokenBlockingMaxBlock(t *testing.T) {
	tab := record.NewTable("name")
	// "common" appears in every record; "rare" in two.
	tab.Append("common rare a")
	tab.Append("common rare b")
	tab.Append("common c")
	tab.Append("common d")
	all := TokenBlocking(tab, Options{})
	capped := TokenBlocking(tab, Options{MaxBlock: 2})
	if len(capped) >= len(all) {
		t.Fatalf("MaxBlock should reduce candidates: %d vs %d", len(capped), len(all))
	}
	set := record.NewPairSet(capped...)
	if !set.Has(0, 1) {
		t.Error("rare block should survive the cap")
	}
	if set.Has(2, 3) {
		t.Error("pairs only sharing the capped stop token should be dropped")
	}
}

func TestQGramBlockingCatchesTypos(t *testing.T) {
	tab := record.NewTable("name")
	tab.Append("oceana")
	tab.Append("oceanaa") // typo: extra letter, still shares q-grams
	tab.Append("zzzzzz")
	pairs := QGramBlocking(tab, 0, 3, Options{})
	set := record.NewPairSet(pairs...)
	if !set.Has(0, 1) {
		t.Error("typo variants should share q-grams")
	}
	if set.Has(0, 2) {
		t.Error("disjoint strings should not be candidates")
	}
}

func TestSortedNeighborhood(t *testing.T) {
	tab := record.NewTable("name")
	tab.Append("aaa restaurant") // 0
	tab.Append("aab restaurant") // 1 — adjacent to 0 in sort order
	tab.Append("mmm diner")      // 2
	tab.Append("zzz cafe")       // 3
	pairs := SortedNeighborhood(tab, 2, Options{})
	set := record.NewPairSet(pairs...)
	if !set.Has(0, 1) {
		t.Error("adjacent keys should be candidates")
	}
	if set.Has(0, 3) {
		t.Error("window 2 should not pair distant keys")
	}
	// Window size n covers all pairs.
	all := SortedNeighborhood(tab, 4, Options{})
	if len(all) != 6 {
		t.Errorf("window=n should give all %d pairs; got %d", 6, len(all))
	}
}

func TestCrossSourceOnly(t *testing.T) {
	tab := record.NewTable("name")
	tab.AppendFrom(0, "apple ipod nano")
	tab.AppendFrom(0, "apple ipod touch")
	tab.AppendFrom(1, "apple ipod classic")
	for name, pairs := range map[string][]record.Pair{
		"token":  TokenBlocking(tab, Options{CrossSourceOnly: true}),
		"qgram":  QGramBlocking(tab, 0, 2, Options{CrossSourceOnly: true}),
		"sorted": SortedNeighborhood(tab, 3, Options{CrossSourceOnly: true}),
	} {
		for _, p := range pairs {
			if tab.Source[p.A] == tab.Source[p.B] {
				t.Errorf("%s: same-source pair %v leaked", name, p)
			}
		}
	}
}

func TestEvaluateMetrics(t *testing.T) {
	d := dataset.RestaurantN(5, 200, 25)
	cands := TokenBlocking(d.Table, Options{MaxBlock: 50})
	stats := Evaluate(d.Table, cands, d.Matches, false)
	if stats.Candidates != len(cands) {
		t.Errorf("Candidates = %d; want %d", stats.Candidates, len(cands))
	}
	if stats.ReductionRatio <= 0.5 {
		t.Errorf("reduction ratio = %.3f; blocking should cut most pairs", stats.ReductionRatio)
	}
	if stats.PairsCompleteness < 0.9 {
		t.Errorf("pairs completeness = %.3f; token blocking should keep nearly all matches", stats.PairsCompleteness)
	}
}

func TestEvaluateCrossSource(t *testing.T) {
	d := dataset.ProductN(5, 60, 70, 40)
	cands := TokenBlocking(d.Table, Options{CrossSourceOnly: true})
	stats := Evaluate(d.Table, cands, d.Matches, true)
	if stats.Candidates > 60*70 {
		t.Errorf("more candidates (%d) than cross pairs (%d)", stats.Candidates, 60*70)
	}
	if stats.PairsCompleteness < 0.9 {
		t.Errorf("pairs completeness = %.3f", stats.PairsCompleteness)
	}
}

func BenchmarkTokenBlockingRestaurant(b *testing.B) {
	d := dataset.Restaurant(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TokenBlocking(d.Table, Options{MaxBlock: 200})
	}
}

func BenchmarkSortedNeighborhoodRestaurant(b *testing.B) {
	d := dataset.Restaurant(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SortedNeighborhood(d.Table, 10, Options{})
	}
}

// The union of TokenBlockingSince deltas over a sequence of appends must
// equal the full TokenBlocking of the final table, and each delta must
// only contain pairs touching the new records.
func TestTokenBlockingSinceEquivalence(t *testing.T) {
	d := dataset.RestaurantN(7, 120, 25)
	full := TokenBlocking(d.Table, Options{})

	inc := record.NewTable(d.Table.Schema...)
	union := record.NewPairSet()
	for _, cut := range []int{40, 41, 90, d.Table.Len()} {
		since := inc.Len()
		for i := inc.Len(); i < cut; i++ {
			inc.Append(d.Table.Records[i].Values...)
		}
		for _, p := range TokenBlockingSince(inc, Options{}, since) {
			if int(p.B) < since {
				t.Fatalf("delta since %d emitted old-only pair %v", since, p)
			}
			if union.Has(p.A, p.B) {
				t.Fatalf("pair %v emitted by two deltas", p)
			}
			union.Add(p.A, p.B)
		}
	}
	if union.Len() != len(full) {
		t.Fatalf("delta union has %d pairs; full blocking %d", union.Len(), len(full))
	}
	for _, p := range full {
		if !union.Has(p.A, p.B) {
			t.Fatalf("full pair %v missing from delta union", p)
		}
	}
}

// PairUniverse-based Evaluate totals: arbitrary source tags and 3+
// sources no longer zero out the reduction ratio.
func TestEvaluateArbitrarySourceTags(t *testing.T) {
	tab := record.NewTable("name")
	tab.AppendFrom(5, "alpha beta")
	tab.AppendFrom(5, "alpha beta gamma")
	tab.AppendFrom(8, "alpha delta")
	tab.AppendFrom(2, "epsilon zeta")
	cands := TokenBlocking(tab, Options{CrossSourceOnly: true})
	stats := Evaluate(tab, cands, record.NewPairSet(), true)
	// Cross universe: 2·1 + 2·1 + 1·1 = 5; "alpha" links records 0,1,2 but
	// only the cross-source pairs (0,2) and (1,2) qualify.
	if stats.Candidates != 2 {
		t.Fatalf("candidates = %d; want 2", stats.Candidates)
	}
	if want := 1 - 2.0/5.0; stats.ReductionRatio != want {
		t.Errorf("reduction ratio = %v; want %v", stats.ReductionRatio, want)
	}
}
