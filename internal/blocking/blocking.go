// Package blocking implements the candidate-generation indexing the paper
// points to in footnote 1 ("we can adopt some indexing techniques such as
// blocking and Q-gram based indexing [7] to avoid all-pairs comparison")
// and discusses in Section 8's related work: ways of producing a candidate
// pair set far smaller than n·(n−1)/2 before any similarity is computed.
//
// Three classic schemes from Christen's survey (the paper's [7]):
//
//   - Token blocking: records sharing at least one token are candidates.
//     Complete for any Jaccard threshold > 0 (a pair with no shared token
//     has similarity 0), so it pairs safely with the machine pass.
//   - Q-gram blocking: records sharing at least one q-gram of a key
//     attribute are candidates; catches token-level typos that token
//     blocking misses at the cost of larger blocks.
//   - Sorted neighborhood: records are sorted by a key and candidates are
//     drawn from a sliding window; bounded output but incomplete.
//
// All schemes support a MaxBlock cap: blocks bigger than the cap (stop
// tokens like "the" or a ubiquitous brand) are dropped, trading a little
// recall for a large candidate reduction.
package blocking

import (
	"sort"
	"strings"

	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/similarity"
)

// Options configures candidate generation.
type Options struct {
	// MaxBlock drops blocks with more than this many records (0 = no cap).
	MaxBlock int
	// CrossSourceOnly keeps only pairs spanning different sources.
	CrossSourceOnly bool
}

func (o Options) crossOK(t *record.Table, a, b record.ID) bool {
	return t.CrossOK(o.CrossSourceOnly, a, b)
}

// TokenBlocking returns all pairs of records sharing at least one token,
// in canonical order. Blocks are read from the table's live inverted index
// (record.Table.Postings — incrementally maintained and shared with the
// resolver's delta machinery), so the blocking index is a flat slice
// rather than a string-keyed map and records are never re-tokenized or
// re-indexed across calls.
func TokenBlocking(t *record.Table, opts Options) []record.Pair {
	return TokenBlockingSince(t, opts, 0)
}

// TokenBlockingSince returns the token-blocking pairs with at least one
// endpoint ≥ since: the delta candidates introduced by the records
// appended after the first `since` records. TokenBlockingSince(t, opts, 0)
// is the full TokenBlocking; across a sequence of appends the union of the
// deltas equals the full blocking of the final table (for uncapped
// blocking — a MaxBlock cap is evaluated against the block size at call
// time, so a block crossing the cap between deltas stops contributing new
// pairs from then on, while a batch run would drop the block wholesale).
func TokenBlockingSince(t *record.Table, opts Options, since int) []record.Pair {
	out := record.NewPairSet()
	for _, ids := range t.Postings() {
		if opts.MaxBlock > 0 && len(ids) > opts.MaxBlock {
			continue
		}
		// Postings ascend by record ID: pair every in-delta record with
		// all earlier records of the block.
		for j := len(ids) - 1; j >= 0 && int(ids[j]) >= since; j-- {
			for i := 0; i < j; i++ {
				a, b := record.ID(ids[i]), record.ID(ids[j])
				if t.CrossOK(opts.CrossSourceOnly, a, b) {
					out.Add(a, b)
				}
			}
		}
	}
	return out.Slice()
}

// QGramBlocking returns all pairs of records sharing at least one padded
// q-gram of the given attribute.
func QGramBlocking(t *record.Table, attr, q int, opts Options) []record.Pair {
	blocks := make(map[string][]record.ID)
	for i := range t.Records {
		seen := map[string]bool{}
		norm := record.Normalize(t.Records[i].Attr(attr))
		for _, g := range similarity.QGrams(norm, q) {
			if !seen[g] {
				seen[g] = true
				blocks[g] = append(blocks[g], record.ID(i))
			}
		}
	}
	return pairsFromBlocks(t, blocks, opts)
}

// SortedNeighborhood sorts records by the normalized concatenation of
// their attribute values and emits every pair within a sliding window of
// the given size (window ≥ 2).
func SortedNeighborhood(t *record.Table, window int, opts Options) []record.Pair {
	if window < 2 {
		window = 2
	}
	type keyed struct {
		key string
		id  record.ID
	}
	ks := make([]keyed, t.Len())
	for i := range t.Records {
		ks[i] = keyed{
			key: record.Normalize(strings.Join(t.Records[i].Values, " ")),
			id:  record.ID(i),
		}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].key != ks[j].key {
			return ks[i].key < ks[j].key
		}
		return ks[i].id < ks[j].id
	})
	out := record.NewPairSet()
	for i := range ks {
		for j := i + 1; j < len(ks) && j < i+window; j++ {
			if opts.crossOK(t, ks[i].id, ks[j].id) {
				out.Add(ks[i].id, ks[j].id)
			}
		}
	}
	return out.Slice()
}

// pairsFromBlocks expands blocks into a deduplicated canonical pair list,
// honoring the MaxBlock cap.
func pairsFromBlocks(t *record.Table, blocks map[string][]record.ID, opts Options) []record.Pair {
	out := record.NewPairSet()
	for _, ids := range blocks {
		expandBlock(t, ids, opts, out)
	}
	return out.Slice()
}

// expandBlock adds every admissible pair within one block to out.
func expandBlock(t *record.Table, ids []record.ID, opts Options, out record.PairSet) {
	if opts.MaxBlock > 0 && len(ids) > opts.MaxBlock {
		return
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if opts.crossOK(t, ids[i], ids[j]) {
				out.Add(ids[i], ids[j])
			}
		}
	}
}

// Stats summarizes a blocking result against ground truth: the candidate
// count, the reduction ratio vs all pairs, and pairs completeness (the
// fraction of true matches retained) — the standard blocking quality
// metrics from the paper's [7].
type Stats struct {
	Candidates        int
	ReductionRatio    float64
	PairsCompleteness float64
}

// Evaluate computes blocking quality metrics for a candidate set.
func Evaluate(t *record.Table, candidates []record.Pair, truth record.PairSet, crossSourceOnly bool) Stats {
	total := t.PairUniverse(crossSourceOnly)
	found := 0
	for _, p := range candidates {
		if truth.Has(p.A, p.B) {
			found++
		}
	}
	s := Stats{Candidates: len(candidates)}
	if total > 0 {
		s.ReductionRatio = 1 - float64(len(candidates))/float64(total)
	}
	if truth.Len() > 0 {
		s.PairsCompleteness = float64(found) / float64(truth.Len())
	}
	return s
}
