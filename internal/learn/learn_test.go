package learn

import (
	"fmt"
	"math"
	"testing"

	"github.com/crowder/crowder/internal/record"
)

// routerFixture builds a separable training workload: n item families,
// each contributing a duplicate pair (a match: near-identical strings)
// and a cross-family pair (a non-match: unrelated strings).
func routerFixture(n int) (*record.Table, []Label) {
	t := record.NewTable("name")
	var labels []Label
	for i := 0; i < n; i++ {
		a := t.Append(fmt.Sprintf("apple ipad model %d 16gb wifi black", i))
		b := t.Append(fmt.Sprintf("apple ipad model %d 16 gb wifi black", i))
		c := t.Append(fmt.Sprintf("nikon coolpix camera s%d red zoom", i))
		labels = append(labels,
			Label{Pair: record.MakePair(a, b), Match: true},
			Label{Pair: record.MakePair(a, c), Match: false},
		)
	}
	return t, labels
}

// Training is a pure function of the label *set*: reversing the input
// order must yield a bit-identical model, margins and band — the
// property that keeps delta retraining equal to from-scratch.
func TestTrainOrderInvariant(t *testing.T) {
	tab, labels := routerFixture(20)
	reversed := make([]Label, len(labels))
	for i, l := range labels {
		reversed[len(labels)-1-i] = l
	}
	a, err := Train(tab, labels, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(tab, reversed, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Ready() || !b.Ready() {
		t.Fatal("fixture should train a ready learner")
	}
	for _, l := range labels {
		ma, mb := a.Margin(tab, l.Pair), b.Margin(tab, l.Pair)
		if ma != mb {
			t.Fatalf("margin for %v differs across label order: %v vs %v", l.Pair, ma, mb)
		}
	}
	for _, risk := range []float64{0, 0.02, 0.1, MaxRisk} {
		if a.Band(risk) != b.Band(risk) {
			t.Fatalf("band at risk %v differs: %+v vs %+v", risk, a.Band(risk), b.Band(risk))
		}
	}
}

// Below the label floor — or with either class missing — the learner is
// returned non-ready (never an error) and still reports its counts.
func TestTrainFloors(t *testing.T) {
	tab, labels := routerFixture(20)

	few, err := Train(tab, labels[:6], Options{MinLabels: 24})
	if err != nil {
		t.Fatal(err)
	}
	if few.Ready() {
		t.Error("6 labels under a floor of 24 must not be ready")
	}
	if pos, neg := few.Labels(); pos != 3 || neg != 3 {
		t.Errorf("Labels() = %d, %d; want 3, 3", pos, neg)
	}

	var oneClass []Label
	for _, l := range labels {
		if l.Match {
			oneClass = append(oneClass, l)
		}
	}
	single, err := Train(tab, oneClass, Options{MinLabels: 8})
	if err != nil {
		t.Fatal(err)
	}
	if single.Ready() {
		t.Error("a single-class training set must not be ready")
	}

	if (&Learner{}).Ready() || (*Learner)(nil).Ready() {
		t.Error("zero and nil learners must report not ready")
	}
	if _, err := Train(nil, labels, Options{}); err == nil {
		t.Error("nil table must error")
	}
}

// The band always keeps Hi ≥ marginGap and a crowd band at least
// marginGap wide, routes margins on the correct side, and larger risk
// never raises the accept bar.
func TestBandDecideAndRiskMonotone(t *testing.T) {
	tab, labels := routerFixture(30)
	l, err := Train(tab, labels, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	prev := Band{Lo: math.Inf(-1), Hi: math.Inf(1)}
	for _, risk := range []float64{0, 0.01, 0.05, 0.1, MaxRisk, 1.5} {
		b := l.Band(risk)
		if b.Hi < marginGap {
			t.Fatalf("risk %v: band %+v violates the accept floor %v", risk, b, marginGap)
		}
		if b.Lo > b.Hi-marginGap {
			t.Fatalf("risk %v: band %+v narrower than the %v crowd-band floor", risk, b, marginGap)
		}
		if b.Hi > prev.Hi {
			t.Fatalf("risk %v raised the accept bar: %+v after %+v", risk, b, prev)
		}
		prev = b

		if got := b.Decide(b.Hi + 0.1); got != DecideMatch {
			t.Errorf("above Hi: Decide = %v; want DecideMatch", got)
		}
		if got := b.Decide(b.Lo - 0.1); got != DecideNonMatch {
			t.Errorf("below Lo: Decide = %v; want DecideNonMatch", got)
		}
		if got := b.Decide((b.Lo + b.Hi) / 2); got != DecideCrowd {
			t.Errorf("inside band: Decide = %v; want DecideCrowd", got)
		}
	}
}

// Confidence is the posterior recorded on machine verdicts: monotone in
// the margin, above 0.5 for machine-accepts, below for machine-rejects.
func TestConfidenceCalibration(t *testing.T) {
	b := Band{Lo: -1.2, Hi: 0.8}
	if c := b.Confidence(b.Hi + 0.01); c <= 0.5 {
		t.Errorf("accept confidence %v not above 0.5", c)
	}
	if c := b.Confidence(b.Lo - 0.01); c >= 0.5 {
		t.Errorf("reject confidence %v not below 0.5", c)
	}
	last := -1.0
	for m := -3.0; m <= 3.0; m += 0.25 {
		c := b.Confidence(m)
		if c <= last {
			t.Fatalf("confidence not strictly increasing at margin %v", m)
		}
		if c <= 0 || c >= 1 {
			t.Fatalf("confidence %v outside (0, 1)", c)
		}
		last = c
	}
	// A degenerate band saturates but stays finite and on the right side.
	if c := (Band{}).Confidence(0.1); !(c > 0.5 && c <= 1) || math.IsNaN(c) {
		t.Errorf("degenerate band confidence = %v", c)
	}
}

func TestAdaptRisk(t *testing.T) {
	cases := []struct {
		base, acc, want float64
	}{
		{0.02, 0, 0.02},  // no evidence: unchanged
		{0.02, 1, 0.02},  // perfect pool: unchanged
		{0.02, -1, 0.02}, // garbage in: unchanged
		{0.02, 0.9, 0.02 * 1.2},
		{0.02, 0.5, 0.02 * 2},
		{0.2, 0.5, MaxRisk}, // capped
	}
	for _, c := range cases {
		if got := AdaptRisk(c.base, c.acc); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("AdaptRisk(%v, %v) = %v; want %v", c.base, c.acc, got, c.want)
		}
	}
}
