// Package learn is the hybrid router's online classifier: the learning
// subsystem that closes CrowdER's human–machine loop. The verdict cache
// a session accumulates — crowd-judged and transitively deduced pairs —
// is a free labeled set that grows with every delta; this package trains
// a linear SVM (internal/svm, Pegasos) over it after each aggregation
// commit and derives a margin band of uncertainty from the training
// distribution. Scored candidates outside the band are resolved by
// machine (accept above, reject below); only the band itself is sent to
// the crowd, so crowd cost falls over the session's lifetime.
//
// Everything here is deterministic: labels are consumed in canonical
// pair order, the SVM's stochastic example order is driven by the
// session seed, and the band is a pure function of (labels, risk). A
// learner retrained from the same cache is bit-identical at every
// parallelism level and shard count, which is what preserves the
// resolver's delta ≡ scratch and shard-identity guarantees.
package learn

import (
	"fmt"
	"math"
	"slices"

	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/similarity"
	"github.com/crowder/crowder/internal/svm"
)

// MaxRisk caps the per-class machine-error budget a band may be derived
// from: even under extreme budget pressure the router never accepts a
// training quantile looser than this.
const MaxRisk = 0.25

// DefaultRisk is the machine-error budget when the caller sets none.
// It reads tight — one observed training error in a thousand tolerated
// outside the band — because the band already absorbs model risk in
// two other places: the accept bar extrapolates past the worst observed
// negative by the extreme-tail spread, and the reject bar is floored at
// RejectRisk. Session-level adaptation (pool quality, budget pressure)
// loosens it from here.
const DefaultRisk = 0.001

// RejectRisk floors the reject side's quantile. The two machine errors
// are not symmetric: a false accept merges two different entities (a
// precision error that poisons transitive deduction), while a false
// reject loses a single pair of recall — the same loss the likelihood
// threshold already trades on wholesale. The reject cut therefore
// tolerates a higher fraction of training positives below it than the
// configured risk, which matters because the *worst* training-positive
// margins are dominated by label noise and heavily corrupted duplicates:
// anchoring Lo on them parks the reject threshold beneath the entire
// negative mass and disables machine rejection outright.
const RejectRisk = 0.05

// tailQuantile is the start of the negative distribution's upper tail
// used to extrapolate beyond the observed maximum: the accept bar adds
// the spread of the top (1 − tailQuantile) of training-negative margins
// on top of the risk quantile. The observed negatives are a finite
// sample — unseen confusables will overshoot their maximum by roughly
// the width of the sampled extreme tail, and the most damaging false
// accepts land exactly in that just-above-the-max zone.
const tailQuantile = 0.99

// DefaultMinLabels is the training-set floor below which the learner
// reports not ready and everything routes to the crowd.
const DefaultMinLabels = 24

// minPerClass is the per-class floor: a classifier that has seen fewer
// than this many examples of either class has no measurable band.
const minPerClass = 4

// marginGap is the band's half-width floor in margin units: the band
// never collapses below |margin| < marginGap even when the training
// classes separate perfectly (a perfectly separated training set says
// nothing about pairs the model has not seen).
const marginGap = 0.5

// Label is one training observation: a pair with its current session
// verdict (posterior ≥ 0.5). Synthetic marks a presumed label — a
// machine-pruned pair assumed non-matching under the workflow's
// threshold assumption rather than judged by the crowd. Synthetic
// negatives anchor the accept side of the band (a candidate must score
// above even these to be machine-accepted) but are too easy to define a
// reject boundary: a learner whose negatives are mostly synthetic never
// machine-rejects.
type Label struct {
	Pair      record.Pair
	Match     bool
	Synthetic bool
}

// Options configures Train.
type Options struct {
	// Attrs selects the feature attributes (indices into the table
	// schema). Empty selects all.
	Attrs []int
	// Seed drives the SVM's stochastic example order. Training is
	// deterministic in (labels, Options).
	Seed int64
	// MinLabels is the training-set floor (default DefaultMinLabels).
	MinLabels int
}

// Learner is a trained router classifier plus the per-class training
// margin distributions its uncertainty bands are cut from. A Learner is
// immutable after Train; concurrent Margin/Band calls are safe.
type Learner struct {
	attrs    []int
	model    *svm.Model
	pos, neg int
	// realNeg counts the non-synthetic negatives: the crowd-observed
	// evidence that decides whether the learner may machine-reject.
	realNeg int
	// posMargins and negMargins are the training margins per class,
	// sorted ascending: the empirical distributions Band quantiles.
	posMargins, negMargins []float64
}

// Train fits a learner from the labeled pairs. Labels are re-sorted
// into canonical pair order internally, so the result is a pure
// function of the label *set* — callers may pass cache iterations in
// any order. A learner below the label or per-class floors is returned
// non-ready (never an error): routing simply sends everything to the
// crowd until the session has paid for enough verdicts.
func Train(t *record.Table, labels []Label, opts Options) (*Learner, error) {
	if t == nil {
		return nil, fmt.Errorf("learn: nil table")
	}
	attrs := opts.Attrs
	if len(attrs) == 0 {
		attrs = make([]int, len(t.Schema))
		for i := range attrs {
			attrs[i] = i
		}
	}
	minLabels := opts.MinLabels
	if minLabels <= 0 {
		minLabels = DefaultMinLabels
	}

	sorted := append([]Label(nil), labels...)
	slices.SortFunc(sorted, func(a, b Label) int {
		if a.Pair.A != b.Pair.A {
			return int(a.Pair.A) - int(b.Pair.A)
		}
		return int(a.Pair.B) - int(b.Pair.B)
	})

	l := &Learner{attrs: attrs}
	for _, lb := range sorted {
		if lb.Match {
			l.pos++
		} else {
			l.neg++
			if !lb.Synthetic {
				l.realNeg++
			}
		}
	}
	if len(sorted) < minLabels || l.pos < minPerClass || l.neg < minPerClass {
		return l, nil
	}

	examples := make([]svm.Example, len(sorted))
	for i, lb := range sorted {
		y := -1.0
		if lb.Match {
			y = 1.0
		}
		examples[i] = svm.Example{X: featureVector(t, lb.Pair, attrs), Label: y}
	}
	model, err := svm.Train(examples, svm.TrainOptions{Seed: opts.Seed, BalanceClasses: true})
	if err != nil {
		return nil, fmt.Errorf("learn: %w", err)
	}
	l.model = model
	for i, e := range examples {
		m := model.Score(e.X)
		if sorted[i].Match {
			l.posMargins = append(l.posMargins, m)
		} else {
			l.negMargins = append(l.negMargins, m)
		}
	}
	slices.Sort(l.posMargins)
	slices.Sort(l.negMargins)
	return l, nil
}

// Ready reports whether the learner has a trained model: enough labels,
// both classes represented. A non-ready learner routes everything to
// the crowd.
func (l *Learner) Ready() bool { return l != nil && l.model != nil }

// Labels returns the per-class training counts the learner was built
// from (counted even when not ready, for observability).
func (l *Learner) Labels() (pos, neg int) {
	if l == nil {
		return 0, 0
	}
	return l.pos, l.neg
}

// Margin returns the model's signed margin for the pair; positive means
// match-like. Only valid when Ready.
func (l *Learner) Margin(t *record.Table, p record.Pair) float64 {
	return l.model.Score(featureVector(t, p, l.attrs))
}

// featureVector is the router's feature map: the per-attribute
// Levenshtein and cosine similarities (svm.FeatureVector), extended
// with the minimum and mean per-attribute similarity and the
// whole-record Jaccard (the same likelihood the pruning pass ranks
// candidates by). The aggregates let a *linear* model express "one
// attribute strongly disagrees" — the failure mode of surface-similar
// non-matches (identical name, different city), which per-attribute
// features alone cannot separate without feature crosses — and the
// Jaccard ties the model to the machine pass's global evidence.
func featureVector(t *record.Table, p record.Pair, attrs []int) []float64 {
	base := svm.FeatureVector(t, p, attrs)
	minSim, meanSim := 1.0, 0.0
	n := 0
	for i := 0; i+1 < len(base); i += 2 {
		sim := max(base[i], base[i+1])
		if sim < minSim {
			minSim = sim
		}
		meanSim += sim
		n++
	}
	if n > 0 {
		meanSim /= float64(n)
	} else {
		minSim = 0
	}
	ids := t.TokenIDs()
	jac := similarity.Jaccard(ids[p.A], ids[p.B])
	return append(base, minSim, meanSim, jac)
}

// Band derives the uncertainty band for a per-class risk: the margin
// interval outside which at most a bounded fraction of either training
// class falls on the machine's side. Hi is the accept threshold — at
// most risk·|neg| training negatives score above it, floored at
// marginGap so the accept side always stays on the positive slope even
// when the classes separate perfectly. Lo is the reject threshold — at
// most max(risk, RejectRisk)·|pos| training positives score below it
// (see RejectRisk for why the reject quantile is floored), clamped to
// leave at least a marginGap-wide crowd band below Hi. Larger risk
// never widens the band (more machine, fewer HITs, more model errors
// tolerated).
func (l *Learner) Band(risk float64) Band {
	if risk < 0 {
		risk = 0
	}
	if risk > MaxRisk {
		risk = MaxRisk
	}
	hi := marginGap
	if n := len(l.negMargins); n > 0 {
		k := int(risk * float64(n)) // negatives tolerated above hi
		// The risk quantile plus the observed extreme-tail spread: unseen
		// negatives overshoot the sampled maximum by about the width of
		// the sampled tail (see tailQuantile).
		spread := l.negMargins[n-1] - l.negMargins[int(tailQuantile*float64(n-1))]
		if v := l.negMargins[n-1-k] + spread; v > hi {
			hi = v
		}
	}
	lo := hi - marginGap
	if n := len(l.posMargins); n > 0 {
		k := int(max(risk, RejectRisk) * float64(n)) // positives tolerated below lo
		if v := l.posMargins[k]; v < lo {
			lo = v
		}
	}
	// A learner that has barely seen a crowd-judged negative has no
	// empirical reject boundary — its negatives are presumed, not
	// observed — so the band only accepts.
	return Band{Lo: lo, Hi: hi, NoReject: l.realNeg < minPerClass}
}

// Band is a margin interval of uncertainty: pairs scoring strictly
// above Hi are machine-accepted, strictly below Lo machine-rejected,
// and inside the band crowdsourced. Hi ≥ marginGap and Lo ≤ Hi −
// marginGap always hold; Lo may sit above zero — rejection is quantile
// logic over the training positives, not sign logic, because a weakly
// regularized model compresses the easy-negative mass near its bias.
// With NoReject set the reject side is disabled — everything at or
// below Hi is crowdsourced — because the learner's negatives are
// presumed (synthetic) rather than crowd-observed.
type Band struct {
	Lo, Hi   float64
	NoReject bool
}

// Decision is a routing verdict for one scored pair.
type Decision int

const (
	// DecideCrowd: the pair is inside the uncertainty band and must be
	// crowdsourced.
	DecideCrowd Decision = iota
	// DecideMatch: machine-accept, no HIT.
	DecideMatch
	// DecideNonMatch: machine-reject, no HIT.
	DecideNonMatch
)

// Decide routes a margin.
func (b Band) Decide(margin float64) Decision {
	switch {
	case margin > b.Hi:
		return DecideMatch
	case margin < b.Lo && !b.NoReject:
		return DecideNonMatch
	default:
		return DecideCrowd
	}
}

// Confidence maps a margin to a calibrated match probability: a
// sigmoid centered on the band's midpoint and scaled to its width, so
// machine-accepted margins always land above 0.5 and machine-rejected
// ones below — the posterior recorded on machine-resolved cache
// entries, rank-consistent with the margin ordering.
func (b Band) Confidence(margin float64) float64 {
	mid := (b.Hi + b.Lo) / 2
	width := b.Hi - b.Lo
	if width < 1e-9 {
		width = 1e-9
	}
	kappa := 4 / width
	return 1 / (1 + math.Exp(-kappa*(margin-mid)))
}

// AdaptRisk scales a base risk by the measured crowd pool accuracy:
// when the pool itself errs often, buying more HITs purchases less
// certainty, so the machine is allowed a proportionally looser band.
// poolAccuracy is the answer-weighted mean worker accuracy in [0, 1];
// values outside (0, 1) (including the "no evidence yet" zero) leave
// the base risk unchanged. The result is capped at MaxRisk.
func AdaptRisk(base, poolAccuracy float64) float64 {
	if poolAccuracy <= 0 || poolAccuracy >= 1 {
		return base
	}
	r := base * (1 + 2*(1-poolAccuracy))
	if r > MaxRisk {
		r = MaxRisk
	}
	return r
}
