package svm

import (
	"math/rand"
	"testing"

	"github.com/crowder/crowder/internal/record"
)

func TestTrainSeparable(t *testing.T) {
	// Linearly separable in 2D: matches cluster near (1,1), non-matches
	// near (0,0).
	rng := rand.New(rand.NewSource(1))
	var ex []Example
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			ex = append(ex, Example{X: []float64{0.8 + 0.2*rng.Float64(), 0.8 + 0.2*rng.Float64()}, Label: 1})
		} else {
			ex = append(ex, Example{X: []float64{0.2 * rng.Float64(), 0.2 * rng.Float64()}, Label: -1})
		}
	}
	m, err := Train(ex, TrainOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, e := range ex {
		if m.Predict(e.X) == e.Label {
			correct++
		}
	}
	if correct < 195 {
		t.Fatalf("separable accuracy %d/200; want >= 195", correct)
	}
}

func TestTrainScoreOrdersClasses(t *testing.T) {
	var ex []Example
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		x := rng.Float64()
		label := -1.0
		if x > 0.5 {
			label = 1
		}
		// 10% label noise.
		if rng.Intn(10) == 0 {
			label = -label
		}
		ex = append(ex, Example{X: []float64{x}, Label: label})
	}
	m, err := Train(ex, TrainOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Score([]float64{0.95}) <= m.Score([]float64{0.05}) {
		t.Fatal("score should increase with the informative feature")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); err == nil {
		t.Fatal("empty training set should error")
	}
	bad := []Example{{X: []float64{1}, Label: 0.5}}
	if _, err := Train(bad, TrainOptions{}); err == nil {
		t.Fatal("invalid label should error")
	}
	dims := []Example{{X: []float64{1}, Label: 1}, {X: []float64{1, 2}, Label: -1}}
	if _, err := Train(dims, TrainOptions{}); err == nil {
		t.Fatal("inconsistent dimensions should error")
	}
}

func TestTrainBalanced(t *testing.T) {
	// 10:1 imbalance: without balancing, the classifier can degenerate to
	// all-negative; with balancing it must recover positives.
	rng := rand.New(rand.NewSource(3))
	var ex []Example
	for i := 0; i < 40; i++ {
		ex = append(ex, Example{X: []float64{0.7 + 0.3*rng.Float64()}, Label: 1})
	}
	for i := 0; i < 400; i++ {
		ex = append(ex, Example{X: []float64{0.5 * rng.Float64()}, Label: -1})
	}
	m, err := Train(ex, TrainOptions{Seed: 3, BalanceClasses: true})
	if err != nil {
		t.Fatal(err)
	}
	tp := 0
	for _, e := range ex[:40] {
		if m.Predict(e.X) == 1 {
			tp++
		}
	}
	if tp < 30 {
		t.Fatalf("balanced training recovered %d/40 positives; want >= 30", tp)
	}
}

func TestTrainDeterministic(t *testing.T) {
	ex := []Example{
		{X: []float64{1, 0}, Label: 1},
		{X: []float64{0, 1}, Label: -1},
		{X: []float64{0.9, 0.1}, Label: 1},
		{X: []float64{0.1, 0.9}, Label: -1},
	}
	m1, _ := Train(ex, TrainOptions{Seed: 9})
	m2, _ := Train(ex, TrainOptions{Seed: 9})
	for j := range m1.W {
		if m1.W[j] != m2.W[j] {
			t.Fatal("same seed produced different weights")
		}
	}
	if m1.B != m2.B {
		t.Fatal("same seed produced different bias")
	}
}

func TestFeatureVectorDimensions(t *testing.T) {
	tab := record.NewTable("name", "address", "city", "type")
	a := tab.Append("oceana", "55 e. 54th st.", "new york", "seafood")
	b := tab.Append("oceana restaurant", "55 east 54th street", "new york", "seafood")
	p := record.MakePair(a, b)
	// Restaurant: 2 similarity functions × 4 attributes = 8 dims.
	fv := FeatureVector(tab, p, []int{0, 1, 2, 3})
	if len(fv) != 8 {
		t.Fatalf("feature dims = %d; want 8", len(fv))
	}
	for i, v := range fv {
		if v < 0 || v > 1 {
			t.Fatalf("feature %d = %v outside [0,1]", i, v)
		}
	}
	// Identical city/type attributes → perfect similarity features.
	if fv[4] != 1 || fv[5] != 1 || fv[6] != 1 || fv[7] != 1 {
		t.Errorf("identical attribute features should be 1: %v", fv)
	}
}

func TestFeatureVectorSingleAttr(t *testing.T) {
	tab := record.NewTable("name", "price")
	a := tab.Append("apple ipod touch 8gb", "$229")
	b := tab.Append("apple ipod touch 8 gb black", "$199")
	fv := FeatureVector(tab, record.MakePair(a, b), []int{0})
	// Product: 2 similarity functions × 1 attribute = 2 dims.
	if len(fv) != 2 {
		t.Fatalf("feature dims = %d; want 2", len(fv))
	}
}

func TestBuildExamples(t *testing.T) {
	tab := record.NewTable("name")
	a := tab.Append("alpha beta")
	b := tab.Append("alpha beta gamma")
	c := tab.Append("unrelated words")
	truth := record.NewPairSet(record.MakePair(a, b))
	pairs := []record.Pair{record.MakePair(a, b), record.MakePair(a, c)}
	ex := BuildExamples(tab, pairs, truth, []int{0})
	if len(ex) != 2 {
		t.Fatalf("got %d examples", len(ex))
	}
	if ex[0].Label != 1 || ex[1].Label != -1 {
		t.Fatalf("labels = %v, %v; want +1, -1", ex[0].Label, ex[1].Label)
	}
}
