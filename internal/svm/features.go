package svm

import (
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/similarity"
)

// FeatureVector computes the Section 7.3 feature representation of a
// record pair: for each listed attribute, the normalized edit-distance
// similarity and the cosine similarity of the attribute values. With the
// Restaurant dataset's four attributes this yields the paper's
// 8-dimensional vector; with Product's name attribute only, the
// 2-dimensional one.
func FeatureVector(t *record.Table, p record.Pair, attrs []int) []float64 {
	a, b := t.Get(p.A), t.Get(p.B)
	out := make([]float64, 0, 2*len(attrs))
	for _, ai := range attrs {
		va := record.Normalize(a.Attr(ai))
		vb := record.Normalize(b.Attr(ai))
		out = append(out, similarity.LevenshteinSim(va, vb))
		out = append(out, similarity.CosineStrings(va, vb))
	}
	return out
}

// BuildExamples converts labelled pairs into training examples using
// FeatureVector, with +1 labels for pairs present in truth.
func BuildExamples(t *record.Table, pairs []record.Pair, truth record.PairSet, attrs []int) []Example {
	out := make([]Example, len(pairs))
	for i, p := range pairs {
		label := -1.0
		if truth.Has(p.A, p.B) {
			label = 1.0
		}
		out[i] = Example{X: FeatureVector(t, p, attrs), Label: label}
	}
	return out
}
