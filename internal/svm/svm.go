// Package svm implements the learning-based entity-resolution baseline of
// Section 7.3: record pairs are represented as similarity feature vectors
// (edit distance and cosine similarity per attribute, following Köpcke et
// al.) and classified by a linear soft-margin SVM trained with the Pegasos
// stochastic sub-gradient algorithm. The classifier's margin score ranks
// pairs by match likelihood, producing the ranked list that precision-
// recall evaluation consumes.
package svm

import (
	"errors"
	"math"
	"math/rand"
)

// Example is a labelled training instance. Label is +1 for a matching pair
// and −1 for a non-matching pair.
type Example struct {
	X     []float64
	Label float64
}

// Model is a trained linear SVM: Score(x) = W·x + B.
type Model struct {
	W []float64
	B float64
}

// TrainOptions configures Pegasos training.
type TrainOptions struct {
	// Lambda is the regularization strength (default 1e-4).
	Lambda float64
	// Epochs is the number of passes over the training set (default 50).
	Epochs int
	// Seed drives the stochastic example order.
	Seed int64
	// BalanceClasses scales the loss of the minority class up by the class
	// ratio, compensating for heavily skewed ER training sets where
	// non-matches dominate.
	BalanceClasses bool
}

func (o *TrainOptions) defaults() {
	if o.Lambda <= 0 {
		o.Lambda = 1e-4
	}
	if o.Epochs <= 0 {
		o.Epochs = 50
	}
}

// Train fits a linear SVM with the Pegasos algorithm: at step t it samples
// an example, uses learning rate 1/(λt), applies the hinge-loss
// sub-gradient, shrinks the weights and projects them onto the 1/√λ ball.
// The bias is learned as an augmented constant-1 feature so it shares the
// regularization and projection — leaving it free lets the enormous early
// learning rates (η = 1/(λt) with t small) blow it up irrecoverably on
// class-imbalanced data.
func Train(examples []Example, opts TrainOptions) (*Model, error) {
	if len(examples) == 0 {
		return nil, errors.New("svm: no training examples")
	}
	opts.defaults()
	dim := len(examples[0].X)
	for _, e := range examples {
		if len(e.X) != dim {
			return nil, errors.New("svm: inconsistent feature dimensions")
		}
		if e.Label != 1 && e.Label != -1 {
			return nil, errors.New("svm: labels must be +1 or -1")
		}
	}

	var posW, negW float64 = 1, 1
	if opts.BalanceClasses {
		pos, neg := 0, 0
		for _, e := range examples {
			if e.Label > 0 {
				pos++
			} else {
				neg++
			}
		}
		if pos > 0 && neg > 0 {
			if neg > pos {
				posW = float64(neg) / float64(pos)
			} else {
				negW = float64(pos) / float64(neg)
			}
		}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	// w has dim weights plus the bias in the last slot.
	w := make([]float64, dim+1)
	bound := 1 / math.Sqrt(opts.Lambda)
	t := 0
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		perm := rng.Perm(len(examples))
		for _, idx := range perm {
			t++
			e := examples[idx]
			eta := 1 / (opts.Lambda * float64(t))
			margin := e.Label * (dot(w[:dim], e.X) + w[dim])
			// Regularization shrink (applies to the bias slot too).
			shrink := 1 - eta*opts.Lambda
			if shrink < 0 {
				shrink = 0
			}
			for j := range w {
				w[j] *= shrink
			}
			if margin < 1 {
				cw := posW
				if e.Label < 0 {
					cw = negW
				}
				step := eta * cw * e.Label
				for j := 0; j < dim; j++ {
					w[j] += step * e.X[j]
				}
				w[dim] += step
			}
			// Projection onto the 1/sqrt(λ) ball (Pegasos).
			norm := math.Sqrt(dot(w, w))
			if norm > bound {
				scale := bound / norm
				for j := range w {
					w[j] *= scale
				}
			}
		}
	}
	return &Model{W: w[:dim], B: w[dim]}, nil
}

// Score returns the signed margin W·x + B; larger means more likely a
// match. The magnitude orders pairs for precision-recall curves.
func (m *Model) Score(x []float64) float64 { return dot(m.W, x) + m.B }

// Predict returns +1 if the score is non-negative, else −1.
func (m *Model) Predict(x []float64) float64 {
	if m.Score(x) >= 0 {
		return 1
	}
	return -1
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
