package service

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/record"
)

// resolveAndWait kicks a resolve over HTTP and polls it to completion,
// returning the finished job status.
func resolveAndWait(t *testing.T, c *http.Client, base, table string) map[string]any {
	t.Helper()
	var kicked struct {
		Job int `json:"job"`
	}
	if code := call(t, c, "POST", base+"/tables/"+table+"/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
		t.Fatalf("resolve returned %d", code)
	}
	status := pollJob(t, c, base, table, kicked.Job)
	if status["state"] != "done" {
		t.Fatalf("job finished in state %v: %v", status["state"], status)
	}
	return status
}

func sortedMatches(ms []matchJSON) []matchJSON {
	out := append([]matchJSON(nil), ms...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// TestServiceDurableSimulatedRecovery: a simulated-backend session
// created with -data-dir survives a server restart — Recover rebuilds it
// from the table's own persisted config, the pre-crash matches are still
// resolvable without paying for a single judged pair again, and the
// session continues bit-identically to a server that never went down.
// Creating the same table on a server that skipped Recover must refuse
// with 409 rather than silently shadowing the durable state.
func TestServiceDurableSimulatedRecovery(t *testing.T) {
	schema, rows, oracle, _ := serviceDataset(t)
	dataDir := t.TempDir()
	req := tableRequest{
		Schema: schema,
		Options: optionsRequest{
			Threshold: 0.4, HITType: "pair", ClusterSize: 5, Seed: 7,
			Oracle: oracle,
		},
	}

	// Phase 1: first server, first delta.
	srv1 := httptest.NewServer(New(Options{DataDir: dataDir}))
	c := srv1.Client()
	if code := call(t, c, "POST", srv1.URL+"/tables/products", req, nil); code != http.StatusCreated {
		t.Fatalf("create table returned %d", code)
	}
	if code := call(t, c, "POST", srv1.URL+"/tables/products/records",
		map[string]any{"rows": rows[:60]}, nil); code != http.StatusOK {
		t.Fatalf("append returned %d", code)
	}
	resolveAndWait(t, c, srv1.URL, "products")
	preCrash := getMatches(t, c, srv1.URL, "products")
	// Crash: the server goes away without any graceful shutdown. Every
	// paid verdict was fsynced at its commit point.
	srv1.Close()

	// A server pointed at the same data dir that did NOT run Recover must
	// not let a new table trample the durable session.
	stale := httptest.NewServer(New(Options{DataDir: dataDir}))
	if code := call(t, stale.Client(), "POST", stale.URL+"/tables/products", req, nil); code != http.StatusConflict {
		t.Fatalf("create over durable state returned %d; want 409", code)
	}
	stale.Close()

	// Phase 2: restart, recover, continue with the second delta.
	s2 := New(Options{DataDir: dataDir})
	n, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Recover() = %d sessions; want 1", n)
	}
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	c2 := srv2.Client()

	var tables struct {
		Tables []string `json:"tables"`
	}
	if code := call(t, c2, "GET", srv2.URL+"/tables", nil, &tables); code != http.StatusOK {
		t.Fatalf("list tables returned %d", code)
	}
	if len(tables.Tables) != 1 || tables.Tables[0] != "products" {
		t.Fatalf("recovered tables = %v; want [products]", tables.Tables)
	}

	// A no-new-rows resolve must serve the pre-crash matches from the
	// recovered cache without issuing any HITs.
	status := resolveAndWait(t, c2, srv2.URL, "products")
	if res, ok := status["result"].(map[string]any); !ok || res["hits"].(float64) != 0 {
		t.Fatalf("recovered re-resolve paid for HITs: %v", status["result"])
	}
	if got := getMatches(t, c2, srv2.URL, "products"); len(got) != len(preCrash) {
		t.Fatalf("recovered matches = %d; want %d", len(got), len(preCrash))
	}

	if code := call(t, c2, "POST", srv2.URL+"/tables/products/records",
		map[string]any{"rows": rows[60:]}, nil); code != http.StatusOK {
		t.Fatalf("append after recovery returned %d", code)
	}
	resolveAndWait(t, c2, srv2.URL, "products")
	got := getMatches(t, c2, srv2.URL, "products")

	// Control: the same two deltas on a server that never restarted.
	ctl := httptest.NewServer(New(Options{}))
	defer ctl.Close()
	cc := ctl.Client()
	if code := call(t, cc, "POST", ctl.URL+"/tables/products", req, nil); code != http.StatusCreated {
		t.Fatalf("control create returned %d", code)
	}
	for _, batch := range [][][]string{rows[:60], rows[60:]} {
		if code := call(t, cc, "POST", ctl.URL+"/tables/products/records",
			map[string]any{"rows": batch}, nil); code != http.StatusOK {
			t.Fatalf("control append returned %d", code)
		}
		resolveAndWait(t, cc, ctl.URL, "products")
	}
	want := getMatches(t, cc, ctl.URL, "products")

	if len(got) != len(want) {
		t.Fatalf("recovered session found %d matches; control %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d differs after recovery: %+v vs control %+v", i, got[i], want[i])
		}
	}
}

// TestServiceDurableQueueRecovery: a queue-backend session is killed
// mid-resolve after real workers answered part of the posting. The
// restarted server recovers the open HITs and live answers, never
// re-serves a pair that was answered (and paid) before the crash, and
// the finished job's matches equal a run that never crashed.
func TestServiceDurableQueueRecovery(t *testing.T) {
	schema, rows, _, libOracle := serviceDataset(t)
	// all 80 rows, one pair per HIT: enough open HITs that the crash lands mid-flight
	truth := record.NewPairSet()
	for _, p := range libOracle {
		truth.Add(record.ID(p.A), record.ID(p.B))
	}
	dataDir := t.TempDir()
	// Majority vote with one truthful assignment per pair keeps the final
	// matches independent of which worker judged which pair, so the
	// crashed-and-recovered run is comparable to the control even though
	// the claim schedule differs across the crash boundary.
	req := tableRequest{
		Schema: schema,
		Options: optionsRequest{
			Threshold: 0.4, HITType: "pair", ClusterSize: 1, Seed: 7,
			Backend: "queue", Assignments: 1, Aggregation: "majority-vote",
		},
	}

	srv1 := httptest.NewServer(New(Options{DataDir: dataDir}))
	c := srv1.Client()
	if code := call(t, c, "POST", srv1.URL+"/tables/hotels", req, nil); code != http.StatusCreated {
		t.Fatalf("create table returned %d", code)
	}
	if code := call(t, c, "POST", srv1.URL+"/tables/hotels/records",
		map[string]any{"rows": rows}, nil); code != http.StatusOK {
		t.Fatalf("append returned %d", code)
	}
	var kicked struct {
		Job int `json:"job"`
	}
	if code := call(t, c, "POST", srv1.URL+"/tables/hotels/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
		t.Fatalf("resolve returned %d", code)
	}

	// Wait for the posting, then answer roughly half of it.
	openHITs := func(c *http.Client, base string) []hitJSON {
		var body struct {
			Hits []hitJSON `json:"hits"`
		}
		if code := call(t, c, "GET", base+"/tables/hotels/hits", nil, &body); code != http.StatusOK {
			t.Fatalf("open hits returned %d", code)
		}
		return body.Hits
	}
	var open []hitJSON
	deadline := time.Now().Add(10 * time.Second)
	for len(open) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("HITs never posted")
		}
		open = openHITs(c, srv1.URL)
		time.Sleep(time.Millisecond)
	}
	answered := make(map[[2]int]bool)
	for i := 0; i < (len(open)+1)/2; i++ {
		var claim struct {
			Token string  `json:"token"`
			HIT   hitJSON `json:"hit"`
		}
		if code := call(t, c, "POST", srv1.URL+"/tables/hotels/hits/claim",
			map[string]any{"worker": "w"}, &claim); code != http.StatusOK {
			t.Fatalf("claim %d returned %d", i, code)
		}
		var answers []map[string]any
		for _, p := range claim.HIT.Pairs {
			answers = append(answers, map[string]any{
				"a": p.A, "b": p.B,
				"match": truth.Has(record.ID(p.A), record.ID(p.B)),
			})
			answered[[2]int{p.A, p.B}] = true
		}
		if code := call(t, c, "POST", srv1.URL+"/tables/hotels/hits/answer",
			map[string]any{"token": claim.Token, "answers": answers}, nil); code != http.StatusOK {
			t.Fatalf("answer returned %d", code)
		}
	}
	if len(answered) == 0 {
		t.Fatal("nothing answered before the crash")
	}
	// Crash mid-resolve: the job is still blocked on the remaining HITs.
	// Every answer above was fsynced before its HTTP 200.
	srv1.Close()

	s2 := New(Options{DataDir: dataDir})
	n, err := s2.Recover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Recover() = %d sessions; want 1", n)
	}
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	c2 := srv2.Client()

	// The recovered posting is exactly the unanswered remainder.
	remaining := openHITs(c2, srv2.URL)
	if len(remaining) == 0 {
		t.Fatal("no open HITs recovered")
	}
	for _, h := range remaining {
		for _, p := range h.Pairs {
			if answered[[2]int{p.A, p.B}] {
				t.Fatalf("pair (%d,%d) was answered before the crash and re-posted after recovery", p.A, p.B)
			}
		}
	}

	// A fresh resolve adopts the in-flight HITs; draining what is left
	// must never surface a pre-crash pair.
	if code := call(t, c2, "POST", srv2.URL+"/tables/hotels/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
		t.Fatalf("resolve after recovery returned %d", code)
	}
	jobDone := func() bool {
		var status map[string]any
		call(t, c2, "GET", fmt.Sprintf("%s/tables/hotels/jobs/%d", srv2.URL, kicked.Job), nil, &status)
		return status["state"] != "running" && status["state"] != "queued"
	}
	reclaimed := 0
	deadline = time.Now().Add(30 * time.Second)
	for !jobDone() {
		if time.Now().After(deadline) {
			t.Fatal("recovered queue never drained")
		}
		var claim struct {
			Token string  `json:"token"`
			HIT   hitJSON `json:"hit"`
		}
		if code := call(t, c2, "POST", srv2.URL+"/tables/hotels/hits/claim",
			map[string]any{"worker": "w"}, &claim); code != http.StatusOK {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		reclaimed++
		var answers []map[string]any
		for _, p := range claim.HIT.Pairs {
			if answered[[2]int{p.A, p.B}] {
				t.Fatalf("pair (%d,%d) was answered before the crash and re-claimed after recovery", p.A, p.B)
			}
			answers = append(answers, map[string]any{
				"a": p.A, "b": p.B,
				"match": truth.Has(record.ID(p.A), record.ID(p.B)),
			})
		}
		if code := call(t, c2, "POST", srv2.URL+"/tables/hotels/hits/answer",
			map[string]any{"token": claim.Token, "answers": answers}, nil); code != http.StatusOK {
			t.Fatalf("answer after recovery returned %d", code)
		}
	}
	if reclaimed == 0 {
		t.Fatal("nothing left to answer after recovery — crash was not mid-flight")
	}
	status := pollJob(t, c2, srv2.URL, "hotels", kicked.Job)
	if status["state"] != "done" {
		t.Fatalf("recovered job finished in state %v: %v", status["state"], status)
	}
	got := sortedMatches(getMatches(t, c2, srv2.URL, "hotels"))

	// Control: same table, never crashed, drained by the same worker.
	ctl := httptest.NewServer(New(Options{}))
	defer ctl.Close()
	cc := ctl.Client()
	if code := call(t, cc, "POST", ctl.URL+"/tables/hotels", req, nil); code != http.StatusCreated {
		t.Fatalf("control create returned %d", code)
	}
	if code := call(t, cc, "POST", ctl.URL+"/tables/hotels/records",
		map[string]any{"rows": rows}, nil); code != http.StatusOK {
		t.Fatalf("control append returned %d", code)
	}
	var ctlKicked struct {
		Job int `json:"job"`
	}
	if code := call(t, cc, "POST", ctl.URL+"/tables/hotels/resolve", map[string]any{}, &ctlKicked); code != http.StatusAccepted {
		t.Fatalf("control resolve returned %d", code)
	}
	ctlDone := func() bool {
		var status map[string]any
		call(t, cc, "GET", fmt.Sprintf("%s/tables/hotels/jobs/%d", ctl.URL, ctlKicked.Job), nil, &status)
		return status["state"] != "running" && status["state"] != "queued"
	}
	drainOverHTTP(t, cc, ctl.URL, "hotels", truth, ctlDone)
	if status := pollJob(t, cc, ctl.URL, "hotels", ctlKicked.Job); status["state"] != "done" {
		t.Fatalf("control job finished in state %v", status["state"])
	}
	want := sortedMatches(getMatches(t, cc, ctl.URL, "hotels"))

	if len(got) != len(want) {
		t.Fatalf("recovered session found %d matches; control %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d differs after recovery: %+v vs control %+v", i, got[i], want[i])
		}
	}
}
