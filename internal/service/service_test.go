package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

// call issues one JSON request and decodes the JSON response.
func call(t *testing.T, client *http.Client, method, url string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// pollJob polls a job until it leaves the in-flight ("queued" or
// "running") states.
func pollJob(t *testing.T, client *http.Client, base, table string, id int) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var status map[string]any
		code := call(t, client, "GET", fmt.Sprintf("%s/tables/%s/jobs/%d", base, table, id), nil, &status)
		if code != http.StatusOK {
			t.Fatalf("job status returned %d: %v", code, status)
		}
		if status["state"] != "running" && status["state"] != "queued" {
			return status
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d still in flight: %v", id, status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getMatches(t *testing.T, client *http.Client, base, table string) []matchJSON {
	t.Helper()
	var body struct {
		Matches []matchJSON `json:"matches"`
	}
	if code := call(t, client, "GET", base+"/tables/"+table+"/matches", nil, &body); code != http.StatusOK {
		t.Fatalf("matches returned %d", code)
	}
	return body.Matches
}

// serviceDataset returns a small crowdable dataset in wire format.
func serviceDataset(t *testing.T) (schema []string, rows [][]string, oracle [][2]int, libOracle []crowder.Pair) {
	t.Helper()
	d := dataset.RestaurantN(4, 80, 15)
	for i := range d.Table.Records {
		rows = append(rows, d.Table.Records[i].Values)
	}
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, [2]int{int(p.A), int(p.B)})
		libOracle = append(libOracle, crowder.Pair{A: int(p.A), B: int(p.B)})
	}
	return d.Table.Schema, rows, oracle, libOracle
}

// TestServiceSimulatedRoundTrip is the CI smoke: create a simulated-
// backend table over HTTP, append, resolve, poll, and assert the
// returned matches are bit-identical to a library-mode Resolve of the
// same table with the same options.
func TestServiceSimulatedRoundTrip(t *testing.T) {
	schema, rows, oracle, libOracle := serviceDataset(t)
	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	c := srv.Client()

	if code := call(t, c, "POST", srv.URL+"/tables/products", tableRequest{
		Schema: schema,
		Options: optionsRequest{
			Threshold: 0.4, HITType: "pair", ClusterSize: 5, Seed: 7,
			Oracle: oracle,
		},
	}, nil); code != http.StatusCreated {
		t.Fatalf("create table returned %d", code)
	}
	if code := call(t, c, "POST", srv.URL+"/tables/products/records",
		map[string]any{"rows": rows}, nil); code != http.StatusOK {
		t.Fatalf("append returned %d", code)
	}
	var kicked struct {
		Job int `json:"job"`
	}
	if code := call(t, c, "POST", srv.URL+"/tables/products/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
		t.Fatalf("resolve returned %d", code)
	}
	status := pollJob(t, c, srv.URL, "products", kicked.Job)
	if status["state"] != "done" {
		t.Fatalf("job finished in state %v: %v", status["state"], status)
	}
	got := getMatches(t, c, srv.URL, "products")

	// Library-mode reference: same table, same options.
	tab := crowder.NewTable(schema...)
	for _, row := range rows {
		tab.Append(row...)
	}
	want, err := crowder.Resolve(tab, crowder.Options{
		Threshold: 0.4, HITType: crowder.PairHITs, ClusterSize: 5, Seed: 7,
		Oracle: libOracle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Matches) {
		t.Fatalf("service returned %d matches; library %d", len(got), len(want.Matches))
	}
	for i, m := range want.Matches {
		if got[i].A != m.Pair.A || got[i].B != m.Pair.B || got[i].Confidence != m.Confidence {
			t.Fatalf("match %d differs: service %+v vs library %+v", i, got[i], m)
		}
	}
}

// drainOverHTTP claims and answers every open assignment through the
// worker API, answering per ground truth with a deterministic worker
// rotation, until the job completes.
func drainOverHTTP(t *testing.T, c *http.Client, base, table string, truth record.PairSet, done func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	worker := 0
	for !done() {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		var claim struct {
			Token string  `json:"token"`
			HIT   hitJSON `json:"hit"`
		}
		code := call(t, c, "POST", base+"/tables/"+table+"/hits/claim",
			map[string]any{"worker": fmt.Sprintf("w%d", worker%3)}, &claim)
		if code != http.StatusOK {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		worker++
		var answers []map[string]any
		for _, p := range claim.HIT.Pairs {
			answers = append(answers, map[string]any{
				"a": p.A, "b": p.B,
				"match": truth.Has(record.ID(p.A), record.ID(p.B)),
			})
		}
		if code := call(t, c, "POST", base+"/tables/"+table+"/hits/answer",
			map[string]any{"token": claim.Token, "answers": answers}, nil); code != http.StatusOK {
			t.Fatalf("answer returned %d", code)
		}
	}
}

// TestServiceQueueRoundTrip is the acceptance round-trip: records
// appended over HTTP, HITs answered by external workers through the
// queue-backend worker API, and the returned matches equal library-mode
// resolution of the same table (a Resolver on an in-process queue
// backend, driven by the identical worker schedule).
func TestServiceQueueRoundTrip(t *testing.T) {
	schema, rows, _, libOracle := serviceDataset(t)
	truth := record.NewPairSet()
	for _, p := range libOracle {
		truth.Add(record.ID(p.A), record.ID(p.B))
	}

	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	c := srv.Client()

	if code := call(t, c, "POST", srv.URL+"/tables/hotels", tableRequest{
		Schema: schema,
		Options: optionsRequest{
			Threshold: 0.4, HITType: "pair", ClusterSize: 5, Seed: 7,
			Backend: "queue", Interim: true,
		},
	}, nil); code != http.StatusCreated {
		t.Fatalf("create table returned %d", code)
	}
	if code := call(t, c, "POST", srv.URL+"/tables/hotels/records",
		map[string]any{"rows": rows}, nil); code != http.StatusOK {
		t.Fatalf("append returned %d", code)
	}
	var kicked struct {
		Job int `json:"job"`
	}
	if code := call(t, c, "POST", srv.URL+"/tables/hotels/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
		t.Fatalf("resolve returned %d", code)
	}

	jobDone := func() bool {
		var status map[string]any
		call(t, c, "GET", fmt.Sprintf("%s/tables/hotels/jobs/%d", srv.URL, kicked.Job), nil, &status)
		return status["state"] != "running" && status["state"] != "queued"
	}
	drainOverHTTP(t, c, srv.URL, "hotels", truth, jobDone)
	status := pollJob(t, c, srv.URL, "hotels", kicked.Job)
	if status["state"] != "done" {
		t.Fatalf("job finished in state %v: %v", status["state"], status)
	}
	got := getMatches(t, c, srv.URL, "hotels")

	// Library-mode reference: an in-process queue backend driven by the
	// same worker schedule (same claim order, same worker rotation, same
	// truthful answers), so the answer sets are identical.
	q := crowder.NewQueueBackend(crowder.QueueOptions{})
	rv, err := crowder.NewResolver(crowder.NewTable(schema...), crowder.Options{
		Threshold: 0.4, HITType: crowder.PairHITs, ClusterSize: 5, Seed: 7,
		Backend: q,
	})
	if err != nil {
		t.Fatal(err)
	}
	rv.AppendBatch(rows...)
	resCh := make(chan *crowder.Result, 1)
	go func() {
		res, err := rv.ResolveDelta()
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()
	var want *crowder.Result
	worker := 0
	deadline := time.Now().Add(30 * time.Second)
	for want == nil {
		if time.Now().After(deadline) {
			t.Fatal("library-mode queue never drained")
		}
		claim, ok := q.Claim(fmt.Sprintf("w%d", worker%3))
		if ok {
			worker++
			var vs []crowder.Verdict
			for _, p := range claim.HIT.Pairs {
				vs = append(vs, crowder.Verdict{A: p.A, B: p.B, Match: truth.Has(p.A, p.B)})
			}
			if err := q.Answer(claim.Token, vs); err != nil {
				t.Fatal(err)
			}
		} else {
			time.Sleep(time.Millisecond)
		}
		select {
		case want = <-resCh:
		default:
		}
	}

	if len(got) != len(want.Matches) {
		t.Fatalf("service returned %d matches; library %d", len(got), len(want.Matches))
	}
	for i, m := range want.Matches {
		if got[i].A != m.Pair.A || got[i].B != m.Pair.B || got[i].Confidence != m.Confidence {
			t.Fatalf("match %d differs: service %+v vs library %+v", i, got[i], m)
		}
	}
}

// TestServiceJobCancel: cancelling a queue-backend job over HTTP stops
// the resolution; the table reports no matches yet and a later resolve
// retries the pending candidates.
func TestServiceJobCancel(t *testing.T) {
	schema, rows, _, _ := serviceDataset(t)
	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	c := srv.Client()

	call(t, c, "POST", srv.URL+"/tables/slow", tableRequest{
		Schema:  schema,
		Options: optionsRequest{Threshold: 0.4, HITType: "pair", ClusterSize: 5, Seed: 7, Backend: "queue"},
	}, nil)
	call(t, c, "POST", srv.URL+"/tables/slow/records", map[string]any{"rows": rows}, nil)
	var kicked struct {
		Job int `json:"job"`
	}
	call(t, c, "POST", srv.URL+"/tables/slow/resolve", map[string]any{}, &kicked)

	// Nobody answers; cancel the job.
	if code := call(t, c, "DELETE", fmt.Sprintf("%s/tables/slow/jobs/%d", srv.URL, kicked.Job), nil, nil); code != http.StatusOK {
		t.Fatalf("cancel returned %d", code)
	}
	status := pollJob(t, c, srv.URL, "slow", kicked.Job)
	if status["state"] != "cancelled" {
		t.Fatalf("job state = %v; want cancelled", status["state"])
	}
	// No completed resolution → no matches.
	if code := call(t, c, "GET", srv.URL+"/tables/slow/matches", nil, &map[string]any{}); code != http.StatusNotFound {
		t.Fatalf("matches after cancel returned %d; want 404", code)
	}
	// A fresh resolve job can start (the candidates stayed pending).
	if code := call(t, c, "POST", srv.URL+"/tables/slow/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
		t.Fatalf("retry resolve returned %d", code)
	}
}

// TestServiceConcurrentJobRejected: one job per table at a time.
func TestServiceConcurrentJobRejected(t *testing.T) {
	schema, rows, _, _ := serviceDataset(t)
	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	c := srv.Client()

	call(t, c, "POST", srv.URL+"/tables/busy", tableRequest{
		Schema:  schema,
		Options: optionsRequest{Threshold: 0.4, HITType: "pair", Seed: 7, Backend: "queue"},
	}, nil)
	call(t, c, "POST", srv.URL+"/tables/busy/records", map[string]any{"rows": rows}, nil)
	var kicked struct {
		Job int `json:"job"`
	}
	call(t, c, "POST", srv.URL+"/tables/busy/resolve", map[string]any{}, &kicked)
	if code := call(t, c, "POST", srv.URL+"/tables/busy/resolve", map[string]any{}, nil); code != http.StatusConflict {
		t.Fatalf("second resolve returned %d; want 409", code)
	}
	call(t, c, "DELETE", fmt.Sprintf("%s/tables/busy/jobs/%d", srv.URL, kicked.Job), nil, nil)
	pollJob(t, c, srv.URL, "busy", kicked.Job)
}

// TestServiceErrors covers the API's failure envelope.
func TestServiceErrors(t *testing.T) {
	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	c := srv.Client()

	if code := call(t, c, "GET", srv.URL+"/tables/nope/matches", nil, &map[string]any{}); code != http.StatusNotFound {
		t.Errorf("unknown table returned %d", code)
	}
	if code := call(t, c, "POST", srv.URL+"/tables/bad", tableRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("missing schema returned %d", code)
	}
	if code := call(t, c, "POST", srv.URL+"/tables/bad2", tableRequest{
		Schema:  []string{"name"},
		Options: optionsRequest{Workers: -1},
	}, nil); code != http.StatusBadRequest {
		t.Errorf("invalid options returned %d (validation must reach the API)", code)
	}
	if code := call(t, c, "POST", srv.URL+"/tables/bad3", tableRequest{
		Schema:  []string{"name"},
		Options: optionsRequest{Backend: "mturk"},
	}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown backend returned %d", code)
	}
	// Duplicate table names conflict.
	call(t, c, "POST", srv.URL+"/tables/dup", tableRequest{Schema: []string{"name"}, Options: optionsRequest{MachineOnly: true}}, nil)
	if code := call(t, c, "POST", srv.URL+"/tables/dup", tableRequest{Schema: []string{"name"}, Options: optionsRequest{MachineOnly: true}}, nil); code != http.StatusConflict {
		t.Errorf("duplicate table returned %d", code)
	}
	// Worker endpoints require a queue backend.
	if code := call(t, c, "GET", srv.URL+"/tables/dup/hits", nil, &map[string]any{}); code != http.StatusConflict {
		t.Errorf("hits on simulated table returned %d", code)
	}
	var health map[string]any
	if code := call(t, c, "GET", srv.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Errorf("healthz returned %d", code)
	}
}

// TestServiceTransitivity: a table created with transitivity enabled
// resolves with the adaptive scheduler and the job result surfaces the
// savings (deduced pairs, HITs saved) next to the HIT count.
func TestServiceTransitivity(t *testing.T) {
	d := dataset.ProductDup(2, dataset.Product(1))
	var rows [][]string
	for i := range d.Table.Records {
		rows = append(rows, d.Table.Records[i].Values)
	}
	var oracle [][2]int
	for _, p := range d.Matches.Slice() {
		oracle = append(oracle, [2]int{int(p.A), int(p.B)})
	}

	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	client := srv.Client()

	if code := call(t, client, "POST", srv.URL+"/tables/t", map[string]any{
		"schema": d.Table.Schema,
		"options": map[string]any{
			"threshold": 0.5, "hit_type": "pair", "cluster_size": 10,
			"seed": 1, "oracle": oracle, "transitivity": true,
		},
	}, nil); code != http.StatusCreated {
		t.Fatalf("create table returned %d", code)
	}
	if code := call(t, client, "POST", srv.URL+"/tables/t/records", map[string]any{"rows": rows}, nil); code != http.StatusOK {
		t.Fatalf("append returned %d", code)
	}
	var kicked struct {
		Job int `json:"job"`
	}
	if code := call(t, client, "POST", srv.URL+"/tables/t/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
		t.Fatalf("resolve returned %d", code)
	}
	status := pollJob(t, client, srv.URL, "t", kicked.Job)
	if status["state"] != "done" {
		t.Fatalf("job ended %v: %v", status["state"], status["error"])
	}
	res, ok := status["result"].(map[string]any)
	if !ok {
		t.Fatalf("no result in %v", status)
	}
	deduced := int(res["deduced_pairs"].(float64))
	saved := int(res["hits_saved"].(float64))
	hits := int(res["hits"].(float64))
	if _, ok := res["retracted_hits"]; !ok {
		t.Error("result does not surface retracted_hits")
	}
	if deduced == 0 || saved <= 0 {
		t.Errorf("transitive job reports deduced=%d saved=%d (hits=%d); want positive savings", deduced, saved, hits)
	}
	if prog, ok := status["progress"].(map[string]any); !ok {
		t.Error("no progress in job status")
	} else if _, ok := prog["retracted"]; !ok {
		t.Error("job progress does not surface retracted")
	}
}

// TestServiceAggregation: a table created with the MAP aggregator
// resolves under it, job status echoes options.aggregation, and the
// finished job carries the per-worker accuracy/coverage report. An
// unknown aggregator name is rejected at table creation.
func TestServiceAggregation(t *testing.T) {
	schema, rows, oracle, libOracle := serviceDataset(t)
	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	c := srv.Client()

	if code := call(t, c, "POST", srv.URL+"/tables/agg", tableRequest{
		Schema: schema,
		Options: optionsRequest{
			Threshold: 0.4, HITType: "pair", ClusterSize: 5, Seed: 7,
			Oracle: oracle, Aggregation: "dawid-skene-map",
		},
	}, nil); code != http.StatusCreated {
		t.Fatalf("create table returned %d", code)
	}
	if code := call(t, c, "POST", srv.URL+"/tables/agg/records",
		map[string]any{"rows": rows}, nil); code != http.StatusOK {
		t.Fatalf("append returned %d", code)
	}
	var kicked struct {
		Job int `json:"job"`
	}
	if code := call(t, c, "POST", srv.URL+"/tables/agg/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
		t.Fatalf("resolve returned %d", code)
	}
	status := pollJob(t, c, srv.URL, "agg", kicked.Job)
	if status["state"] != "done" {
		t.Fatalf("job ended %v: %v", status["state"], status["error"])
	}
	opts, ok := status["options"].(map[string]any)
	if !ok {
		t.Fatalf("job status carries no options: %v", status)
	}
	if opts["aggregation"] != "dawid-skene-map" {
		t.Errorf("options.aggregation = %v; want dawid-skene-map", opts["aggregation"])
	}
	if opts["transitivity"] != false {
		t.Errorf("options.transitivity = %v; want false", opts["transitivity"])
	}

	workers, ok := status["workers"].([]any)
	if !ok || len(workers) == 0 {
		t.Fatalf("finished job carries no worker report: %v", status["workers"])
	}
	for _, raw := range workers {
		ws := raw.(map[string]any)
		for _, key := range []string{"worker", "accuracy", "answers", "matches_seen", "non_matches_seen", "classes_seen"} {
			if _, ok := ws[key]; !ok {
				t.Fatalf("worker report entry %v lacks %q", ws, key)
			}
		}
		if acc := ws["accuracy"].(float64); acc < 0 || acc > 1 {
			t.Errorf("worker %v accuracy %v outside [0,1]", ws["worker"], acc)
		}
		if int(ws["matches_seen"].(float64))+int(ws["non_matches_seen"].(float64)) != int(ws["answers"].(float64)) {
			t.Errorf("worker %v coverage does not add up: %v", ws["worker"], ws)
		}
	}

	// The service's MAP matches must equal a library-mode MAP resolve.
	got := getMatches(t, c, srv.URL, "agg")
	union := crowder.NewTable(schema...)
	for _, row := range rows {
		union.Append(row...)
	}
	want, err := crowder.Resolve(union, crowder.Options{
		Threshold: 0.4, HITType: crowder.PairHITs, ClusterSize: 5, Seed: 7,
		Oracle: libOracle, Aggregation: crowder.AggregationDawidSkeneMAP,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Matches) {
		t.Fatalf("service returned %d matches; library %d", len(got), len(want.Matches))
	}
	for i, m := range want.Matches {
		if got[i].A != m.Pair.A || got[i].B != m.Pair.B || got[i].Confidence != m.Confidence {
			t.Fatalf("match %d differs: service %+v vs library %+v", i, got[i], m)
		}
	}

	// Default tables echo the default aggregator.
	call(t, c, "POST", srv.URL+"/tables/defagg", tableRequest{Schema: schema, Options: optionsRequest{MachineOnly: true}}, nil)
	call(t, c, "POST", srv.URL+"/tables/defagg/records", map[string]any{"rows": rows[:2]}, nil)
	var kicked2 struct {
		Job int `json:"job"`
	}
	call(t, c, "POST", srv.URL+"/tables/defagg/resolve", map[string]any{}, &kicked2)
	st2 := pollJob(t, c, srv.URL, "defagg", kicked2.Job)
	if opts2, ok := st2["options"].(map[string]any); !ok || opts2["aggregation"] != "dawid-skene" {
		t.Errorf("default table options = %v; want aggregation dawid-skene", st2["options"])
	}

	// Unknown aggregator names fail at creation, naming the value.
	var errBody map[string]any
	if code := call(t, c, "POST", srv.URL+"/tables/badagg", tableRequest{
		Schema:  schema,
		Options: optionsRequest{Aggregation: "em"},
	}, &errBody); code != http.StatusBadRequest {
		t.Errorf("unknown aggregation returned %d", code)
	}
}
