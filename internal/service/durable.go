// Durable sessions: when Options.DataDir is set, every table logs its
// state mutations to a per-session WAL (with compacting snapshots)
// under DataDir/<tenant>/<table>/, and Recover rebuilds all sessions
// from disk before the daemon starts serving — a crowderd restart never
// loses a paid verdict. The session-construction path is shared between
// POST /tables/{table} (fresh session, empty store) and Recover
// (session rebuilt from its replayed log).
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"time"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dispatch"
	"github.com/crowder/crowder/internal/store"
)

// errStaleSessionDir means a create found existing on-disk state for the
// table it was about to make. That state belongs to a crashed session
// that was never recovered (crowderd runs Recover before serving, so a
// recovered table would have 409'd on the registry instead); silently
// appending a new session's events to it would corrupt both.
var errStaleSessionDir = errors.New("data directory already holds state for this table; restart the daemon to recover it")

// optionsFromRequest translates the API options body into engine
// options. Backend wiring (simulated vs queue) happens in buildSession;
// the backend name is validated there.
func optionsFromRequest(req optionsRequest) (crowder.Options, error) {
	opts := crowder.Options{
		Threshold:          req.Threshold,
		ClusterSize:        req.ClusterSize,
		Assignments:        req.Assignments,
		Seed:               req.Seed,
		Workers:            req.Workers,
		SpammerRate:        req.SpammerRate,
		MachineOnly:        req.MachineOnly,
		Parallelism:        req.Parallelism,
		InterimAggregation: req.Interim,
	}
	if req.Transitivity {
		opts.Transitivity = crowder.TransitivityOn
	}
	if req.Hybrid {
		opts.Hybrid = crowder.HybridOn
		opts.HybridRisk = req.HybridRisk
		opts.HybridMinLabels = req.HybridMinLabels
		opts.HybridBudgetDollars = req.HybridBudgetDollars
	}
	agg, err := crowder.ParseAggregationMode(req.Aggregation)
	if err != nil {
		return crowder.Options{}, err
	}
	opts.Aggregation = agg
	switch req.HITType {
	case "", "cluster":
		opts.HITType = crowder.ClusterHITs
	case "pair":
		opts.HITType = crowder.PairHITs
	default:
		return crowder.Options{}, fmt.Errorf("unknown hit_type %q (want \"pair\" or \"cluster\")", req.HITType)
	}
	if req.Oracle != nil {
		opts.Oracle = make([]crowder.Pair, len(req.Oracle))
		for i, p := range req.Oracle {
			opts.Oracle[i] = crowder.Pair{A: p[0], B: p[1]}
		}
	}
	return opts, nil
}

// sessionDir is where one table's WAL and snapshots live. Tenant and
// table names are path-escaped so arbitrary API names (slashes, dots)
// cannot traverse outside the data directory.
func sessionDir(dataDir, tenant, name string) string {
	return filepath.Join(dataDir, url.PathEscape(tenant), url.PathEscape(name))
}

// openSessionStore opens the durable store for a table being created and
// persists the creation request itself (as the session's config event),
// so recovery can rebuild the session without any out-of-band state.
// Returns (nil, nil) when the server is not running with a data dir.
func (s *Server) openSessionStore(name, tenant string, req tableRequest) (crowder.Store, error) {
	if s.opts.DataDir == "" {
		return nil, nil
	}
	dir := sessionDir(s.opts.DataDir, tenant, name)
	fl, rec, err := crowder.OpenStore(dir, crowder.StoreOptions{})
	if err != nil {
		return nil, fmt.Errorf("opening session store: %w", err)
	}
	if !rec.Empty() {
		fl.Close()
		return nil, fmt.Errorf("table %q: %w", name, errStaleSessionDir)
	}
	cfg, err := json.Marshal(req)
	if err == nil {
		err = fl.Log(&store.Meta{Config: cfg})
	}
	if err != nil {
		fl.Close()
		return nil, fmt.Errorf("persisting session config: %w", err)
	}
	return fl, nil
}

// discardSessionStore tears down the store of a create that failed after
// the store was opened. The caller holds createMu and never registered
// the name, so the directory is exclusively ours to remove.
func (s *Server) discardSessionStore(name, tenant string, st crowder.Store) {
	fl, ok := st.(*crowder.FileStore)
	if !ok || fl == nil {
		return
	}
	fl.Close()
	os.RemoveAll(sessionDir(s.opts.DataDir, tenant, name))
}

// buildSession constructs a table session from its creation request —
// either a fresh one (rec nil) or one resumed from recovered state. st
// is nil for in-memory sessions.
func (s *Server) buildSession(name, tenant string, req tableRequest, opts crowder.Options, st crowder.Store, rec *crowder.Recovered) (*session, error) {
	sess := &session{
		name: name, tenant: tenant, schema: req.Schema, jobs: make(map[int]*job),
		aggregation:  opts.Aggregation.String(),
		transitivity: req.Options.Transitivity,
		hybrid:       req.Options.Hybrid,
	}
	switch req.Options.Backend {
	case "", "simulated":
		// Oracle-driven reference simulator; nothing to wire.
	case "queue":
		lease := s.opts.Lease
		if req.Options.LeaseSeconds > 0 {
			lease = time.Duration(req.Options.LeaseSeconds) * time.Second
		}
		qopts := crowder.QueueOptions{Lease: lease}
		if st != nil {
			qopts.Journal = crowder.NewQueueJournal(st)
		}
		if rec != nil && rec.Queue != nil {
			sess.queue = crowder.RestoreQueue(qopts, rec.Queue)
		} else {
			sess.queue = crowder.NewQueueBackend(qopts)
		}
		// The tenant's HIT budget meters postings on their way in; nil
		// bucket (hit_rate 0) means unlimited and costs nothing.
		opts.Backend = &meteredBackend{
			q:      sess.queue,
			bucket: dispatch.NewBucket(req.Options.HITRate, req.Options.HITBurst),
		}
	default:
		return nil, fmt.Errorf("unknown backend %q (want \"simulated\" or \"queue\")", req.Options.Backend)
	}
	opts.Progress = func(p crowder.Progress) {
		if j := sess.current.Load(); j != nil {
			j.update(p)
		}
	}
	if st != nil {
		opts.Store = st
	}

	var rv *crowder.Resolver
	var err error
	if rec != nil {
		rv, err = crowder.RestoreResolver(rec, opts)
	} else {
		rv, err = crowder.NewResolver(crowder.NewTable(req.Schema...), opts)
	}
	if err != nil {
		return nil, err
	}
	sess.rv = rv
	return sess, nil
}

// Recover rebuilds every session found under the server's data directory
// and registers it, exactly as if the original POST /tables had just
// happened and all the logged work had been done in this process. Call
// it once, before the listener opens: recovered queue sessions re-expose
// their open HITs, outstanding claim leases resume with their original
// deadlines, and the next resolve adopts in-flight HITs instead of
// re-posting (zero re-issued HITs for pairs the crowd already judged).
// Returns the number of sessions recovered.
func (s *Server) Recover(ctx context.Context) (int, error) {
	if s.opts.DataDir == "" {
		return 0, nil
	}
	tenants, err := os.ReadDir(s.opts.DataDir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("reading data dir: %w", err)
	}
	n := 0
	maxHITID := 0
	for _, td := range tenants {
		if !td.IsDir() {
			continue
		}
		tables, err := os.ReadDir(filepath.Join(s.opts.DataDir, td.Name()))
		if err != nil {
			return n, fmt.Errorf("reading tenant dir %s: %w", td.Name(), err)
		}
		for _, tb := range tables {
			if err := ctx.Err(); err != nil {
				return n, err
			}
			if !tb.IsDir() {
				continue
			}
			dir := filepath.Join(s.opts.DataDir, td.Name(), tb.Name())
			name, err := url.PathUnescape(tb.Name())
			if err != nil {
				name = tb.Name()
			}
			got, hitID, err := s.recoverSession(dir, name)
			if err != nil {
				return n, fmt.Errorf("recovering %s: %w", dir, err)
			}
			if got {
				n++
			}
			if hitID > maxHITID {
				maxHITID = hitID
			}
		}
	}
	// Raise the HIT ID floor once, after every session's high-water mark
	// is known, so post-recovery HITs never collide with recovered ones.
	if maxHITID > 0 {
		crowder.EnsureHITIDFloor(maxHITID)
	}
	return n, nil
}

// recoverSession replays one session directory and registers the rebuilt
// session. A directory whose log never got its config event (a crash a
// few instructions after create) holds no state worth keeping and is
// skipped.
func (s *Server) recoverSession(dir, name string) (bool, int, error) {
	fl, rec, err := crowder.OpenStore(dir, crowder.StoreOptions{})
	if err != nil {
		return false, 0, err
	}
	if len(rec.Meta.Config) == 0 {
		fl.Close()
		return false, 0, nil
	}
	var req tableRequest
	if err := json.Unmarshal(rec.Meta.Config, &req); err != nil {
		fl.Close()
		return false, 0, fmt.Errorf("decoding persisted session config: %w", err)
	}
	opts, err := optionsFromRequest(req.Options)
	if err != nil {
		fl.Close()
		return false, 0, err
	}
	tenant := req.Options.Tenant
	if tenant == "" {
		tenant = name
	}

	s.createMu.Lock()
	defer s.createMu.Unlock()
	sess, err := s.buildSession(name, tenant, req, opts, fl, rec)
	if err != nil {
		fl.Close()
		return false, 0, err
	}
	if !s.reg.put(name, sess) {
		fl.Close()
		return false, 0, fmt.Errorf("table %q already registered", name)
	}
	if sess.queue != nil {
		if err := s.dispatcher.Register(dispatch.Session{
			Tenant: tenant,
			Table:  name,
			Queue:  sess.queue,
			Weight: req.Options.Priority,
		}); err != nil {
			return false, 0, err
		}
	}
	return true, rec.NextHITID, nil
}
