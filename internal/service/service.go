// Package service implements crowderd: the crowder engine packaged as a
// long-running HTTP daemon. Each table is an incremental resolution
// session (crowder.Resolver) owned by the server; clients append records,
// kick off delta resolutions as asynchronous jobs, poll job status and
// matches, and — for tables on the queue backend — external workers claim
// and answer the open HITs over the same API. This is the layer where
// service traffic lands: the engine below it already guarantees that
// resolutions are incremental (only new pairs are crowdsourced), that
// in-flight jobs are cancellable, and that simulated-backend runs are
// deterministic.
//
// API overview (all bodies JSON):
//
//	POST   /tables/{table}              create a session (schema + options)
//	GET    /tables                      list sessions
//	POST   /tables/{table}/records      append rows
//	POST   /tables/{table}/resolve      start an async delta resolution job
//	GET    /tables/{table}/jobs/{id}    poll job state and progress
//	DELETE /tables/{table}/jobs/{id}    cancel a running job
//	GET    /tables/{table}/matches      ranked matches of the last finished job
//	GET    /tables/{table}/hits         open HITs (queue backend)
//	POST   /tables/{table}/hits/claim   claim one assignment (worker API)
//	POST   /tables/{table}/hits/answer  answer a claimed assignment
//	POST   /claim                       claim across ALL tables (shared pool)
//	POST   /answer                      answer a cross-table claim
//	GET    /metrics                     per-tenant gauges and latency quantiles
//	GET    /debug/pprof/                runtime profiles
//	GET    /healthz                     liveness
//
// Multi-tenancy: every table belongs to a tenant (options.tenant,
// defaulting to the table name). Workers in a shared pool claim through
// POST /claim with no table in the path; the dispatcher picks the next
// assignment by deficit-round-robin across sessions weighted by
// options.priority, so one tenant's huge resolve cannot starve another's
// small delta. Per-tenant budgets (options.hit_rate / hit_burst)
// token-bucket HIT issuance, and resolve jobs pass a bounded admission
// queue (Options.MaxResolves concurrent server-wide, FIFO per tenant,
// round-robin across tenants) — jobs report state "queued" until
// admitted. Claims long-poll: both claim endpoints accept max_wait_ms
// and block until work arrives (wake-on-post) or the wait expires.
//
// Concurrency: resolution jobs run on their own goroutine once admitted.
// One job per table at a time (409 otherwise). The resolver's session
// lock is a read/write lock held exclusively only inside its short
// mutation windows, so worker endpoints render HIT content straight from
// the resolver's table — no row mirror — and stay responsive while a
// resolution is waiting on the crowd. The table registry is sharded with
// per-shard RWMutexes, so the claim/answer hot path never serializes on
// table creation.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/dispatch"
	"github.com/crowder/crowder/internal/record"
)

// Options configures the server.
type Options struct {
	// Lease is the claim lease for queue-backend tables (default 5m).
	Lease time.Duration
	// MaxResolves bounds how many resolve jobs run concurrently across
	// all tenants (default 4). Excess jobs queue FIFO per tenant with
	// round-robin admission across tenants.
	MaxResolves int
	// DataDir, when non-empty, makes every session durable: each table
	// logs its state mutations to a WAL (with periodic compacting
	// snapshots) under DataDir/<tenant>/<table>/, and Recover rebuilds
	// all sessions from disk at boot — a restart never loses a paid
	// verdict. Empty (the default) keeps sessions purely in memory.
	DataDir string
}

// Server is the crowderd HTTP handler.
type Server struct {
	opts       Options
	reg        *registry
	dispatcher *dispatch.Dispatcher
	admission  *dispatch.Admission
	start      time.Time
	mux        *http.ServeMux
	// createMu serializes table creation: the registry reservation and
	// the session's data-directory creation must agree on a winner.
	createMu sync.Mutex
}

// New creates an empty server.
func New(opts Options) *Server {
	if opts.Lease <= 0 {
		opts.Lease = 5 * time.Minute
	}
	if opts.MaxResolves <= 0 {
		opts.MaxResolves = 4
	}
	s := &Server{
		opts:       opts,
		reg:        newRegistry(),
		dispatcher: dispatch.NewDispatcher(),
		admission:  dispatch.NewAdmission(opts.MaxResolves),
		start:      time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /tables", s.handleListTables)
	mux.HandleFunc("POST /tables/{table}", s.handleCreateTable)
	mux.HandleFunc("POST /tables/{table}/records", s.withSession(handleAppend))
	mux.HandleFunc("POST /tables/{table}/resolve", s.withSession(s.handleResolve))
	mux.HandleFunc("GET /tables/{table}/jobs/{id}", s.withSession(handleJobStatus))
	mux.HandleFunc("DELETE /tables/{table}/jobs/{id}", s.withSession(handleJobCancel))
	mux.HandleFunc("GET /tables/{table}/matches", s.withSession(handleMatches))
	mux.HandleFunc("GET /tables/{table}/hits", s.withSession(handleOpenHITs))
	mux.HandleFunc("POST /tables/{table}/hits/claim", s.withSession(handleClaim))
	mux.HandleFunc("POST /tables/{table}/hits/answer", s.withSession(handleAnswer))
	mux.HandleFunc("POST /claim", s.handleGlobalClaim)
	mux.HandleFunc("POST /answer", s.handleGlobalAnswer)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SweepQueues expires lapsed claims on every queue-backend table so
// lifecycle managers hear about expiries even with no worker traffic,
// and drops the dispatcher's routes for tokens that lapsed unanswered.
// crowderd calls this on a ticker.
func (s *Server) SweepQueues() {
	for _, sess := range s.reg.all() {
		if sess.queue != nil {
			sess.queue.Sweep()
		}
	}
	s.dispatcher.PurgeTokens()
}

// session is one table's long-lived resolution state.
type session struct {
	name   string
	tenant string
	rv     *crowder.Resolver
	queue  *crowder.QueueBackend // nil for the simulated backend

	// current is the running job, observed lock-free by the engine's
	// progress callback (which fires while the resolver lock is held).
	current atomic.Pointer[job]

	// aggregation, transitivity and hybrid echo the session's fixed
	// options in job status, so a client auditing a verdict can see which
	// aggregator produced it without holding the resolver lock.
	aggregation  string
	transitivity bool
	hybrid       bool

	mu       sync.Mutex
	schema   []string
	jobs     map[int]*job
	jobOrder []int // job IDs oldest-first, for bounded retention
	nextJob  int
	last     *crowder.Result // last successfully completed resolution
	running  bool
}

// maxRetainedJobs bounds the finished-job history kept per table: each
// done job retains its full Result (including the ranked match list), so
// a daemon absorbing jobs for hours must not keep them all. The running
// job is never evicted.
const maxRetainedJobs = 50

// pruneJobsLocked evicts the oldest finished jobs beyond the retention
// cap; the caller holds sess.mu.
func (sess *session) pruneJobsLocked() {
	for len(sess.jobOrder) > maxRetainedJobs {
		evicted := false
		for i, id := range sess.jobOrder {
			j := sess.jobs[id]
			j.mu.Lock()
			done := j.state != "running" && j.state != "queued"
			j.mu.Unlock()
			if done {
				delete(sess.jobs, id)
				sess.jobOrder = append(sess.jobOrder[:i], sess.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// job is one asynchronous delta resolution.
type job struct {
	id int

	mu       sync.Mutex
	state    string // "queued", "running", "done", "failed", "cancelled"
	progress crowder.Progress
	// admissionWait is how long the job sat in the admission queue
	// before it was allowed to run — the back-pressure a busy server
	// applies to new resolves, echoed in job status.
	admissionWait time.Duration
	interim       int // matches ≥ 0.5 in the latest interim aggregation
	result        *crowder.Result
	// workers is the per-worker accuracy/coverage report computed when
	// the job completes (the resolver lock is free by then) — the
	// session-wide diagnostic a dashboard reads to spot spammers and
	// statistically unanchored single-class workers.
	workers []crowder.WorkerStat
	errMsg  string
	cancel  context.CancelFunc
}

func (j *job) update(p crowder.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = p
	if p.Interim != nil {
		n := 0
		for _, prob := range p.Interim {
			if prob >= 0.5 {
				n++
			}
		}
		j.interim = n
	}
}

// tableRequest is the POST /tables/{table} body.
type tableRequest struct {
	Schema  []string       `json:"schema"`
	Options optionsRequest `json:"options"`
}

// optionsRequest is the JSON form of crowder.Options accepted by the API.
type optionsRequest struct {
	Threshold    float64  `json:"threshold,omitempty"`
	HITType      string   `json:"hit_type,omitempty"` // "cluster" (default) or "pair"
	ClusterSize  int      `json:"cluster_size,omitempty"`
	Assignments  int      `json:"assignments,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
	Workers      int      `json:"workers,omitempty"`
	SpammerRate  float64  `json:"spammer_rate,omitempty"`
	MachineOnly  bool     `json:"machine_only,omitempty"`
	Parallelism  int      `json:"parallelism,omitempty"`
	Backend      string   `json:"backend,omitempty"` // "simulated" (default) or "queue"
	Oracle       [][2]int `json:"oracle,omitempty"`
	Interim      bool     `json:"interim,omitempty"`
	LeaseSeconds int      `json:"lease_seconds,omitempty"`
	// Transitivity enables the adaptive deduce-instead-of-ask scheduler
	// (crowder.TransitivityOn): fewer HITs posted, savings reported on
	// every finished job as deduced_pairs / hits_saved / retracted_hits.
	Transitivity bool `json:"transitivity,omitempty"`
	// Aggregation selects the answer aggregator: "dawid-skene" (the
	// default), "majority-vote", or "dawid-skene-map" (the
	// sparse-coverage-robust MAP estimator). Fixed for the session; job
	// status echoes it under options.aggregation.
	Aggregation string `json:"aggregation,omitempty"`
	// Tenant names the owning tenant (default: the table name).
	// Fairness, budgets and admission are all per tenant.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the table's deficit-round-robin weight on the shared
	// claim plane (default 1, min 1): how many consecutive assignments
	// the table may serve per dispatcher rotation.
	Priority int `json:"priority,omitempty"`
	// HITRate caps the tenant's HIT issuance in HITs/second (0 =
	// unlimited). An over-budget resolve slows to its paid rate instead
	// of flooding the shared pool.
	HITRate float64 `json:"hit_rate,omitempty"`
	// HITBurst is the token-bucket burst for HITRate (default 1).
	HITBurst int `json:"hit_burst,omitempty"`
	// Hybrid enables the learning router (crowder.HybridOn): a classifier
	// trained online from the session's own verdicts resolves confident
	// pairs by machine and sends only the uncertain band to the crowd.
	// Machine/crowd/deduced splits surface on job status and /metrics.
	Hybrid bool `json:"hybrid,omitempty"`
	// HybridRisk is the router's per-side training-margin risk quantile
	// (default crowder default; 0 means default).
	HybridRisk float64 `json:"hybrid_risk,omitempty"`
	// HybridMinLabels is the training floor before the router activates.
	HybridMinLabels int `json:"hybrid_min_labels,omitempty"`
	// HybridBudgetDollars caps per-delta crowd spend: the router widens
	// its machine band until the projected crowd cost of the uncertain
	// remainder fits what is left of the budget.
	HybridBudgetDollars float64 `json:"hybrid_budget_dollars,omitempty"`
}

// meteredBackend debits the tenant's token bucket before each HIT
// posting reaches workers. Waiting happens inside the posting resolve's
// own goroutine with that job's context, so an over-budget tenant slows
// itself down and nobody else. Retract must forward for the lifecycle
// manager's end-of-run cleanup to reach the queue.
type meteredBackend struct {
	q      *crowder.QueueBackend
	bucket *dispatch.Bucket
}

func (m *meteredBackend) Post(ctx context.Context, hits []crowder.HIT) error {
	if err := m.bucket.Wait(ctx, len(hits)); err != nil {
		return err
	}
	return m.q.Post(ctx, hits)
}

func (m *meteredBackend) Collect(ctx context.Context) <-chan crowder.Assignment {
	return m.q.Collect(ctx)
}

func (m *meteredBackend) Retract(ids []int) { m.q.Retract(ids) }

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("table")
	var req tableRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Schema) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("schema is required"))
		return
	}
	opts, err := optionsFromRequest(req.Options)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	tenant := req.Options.Tenant
	if tenant == "" {
		tenant = name
	}

	s.createMu.Lock()
	defer s.createMu.Unlock()
	if s.reg.get(name) != nil {
		writeError(w, http.StatusConflict, fmt.Errorf("table %q already exists", name))
		return
	}

	st, err := s.openSessionStore(name, tenant, req)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, errStaleSessionDir) {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}

	sess, err := s.buildSession(name, tenant, req, opts, st, nil)
	if err != nil {
		s.discardSessionStore(name, tenant, st)
		writeError(w, http.StatusBadRequest, err)
		return
	}

	if !s.reg.put(name, sess) {
		s.discardSessionStore(name, tenant, st)
		writeError(w, http.StatusConflict, fmt.Errorf("table %q already exists", name))
		return
	}
	if sess.queue != nil {
		// Join the shared claim plane. The name was just reserved in the
		// registry, so registration cannot collide.
		if err := s.dispatcher.Register(dispatch.Session{
			Tenant: tenant,
			Table:  name,
			Queue:  sess.queue,
			Weight: req.Options.Priority,
		}); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]any{"table": name, "schema": req.Schema, "tenant": tenant})
}

func (s *Server) handleListTables(w http.ResponseWriter, r *http.Request) {
	names := s.reg.names()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"tables": names})
}

// withSession resolves the {table} path segment to its session.
func (s *Server) withSession(h func(*session, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("table")
		sess := s.reg.get(name)
		if sess == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
			return
		}
		h(sess, w, r)
	}
}

func handleAppend(sess *session, w http.ResponseWriter, r *http.Request) {
	var req struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("rows is required"))
		return
	}
	// AppendBatch assigns IDs under the resolver's write lock, so the
	// rows are fully visible to HIT rendering (which reads under the
	// shared lock) before the first ID is returned — no mirror needed.
	first := sess.rv.AppendBatch(req.Rows...)
	writeJSON(w, http.StatusOK, map[string]any{"first_id": first, "count": len(req.Rows)})
}

func (s *Server) handleResolve(sess *session, w http.ResponseWriter, r *http.Request) {
	sess.mu.Lock()
	if sess.running {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, errors.New("a resolution job is already running for this table"))
		return
	}
	sess.nextJob++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{id: sess.nextJob, state: "queued", cancel: cancel}
	sess.jobs[j.id] = j
	sess.jobOrder = append(sess.jobOrder, j.id)
	sess.pruneJobsLocked()
	sess.running = true
	sess.mu.Unlock()

	go func() {
		// Admission: at most Options.MaxResolves jobs run concurrently
		// server-wide; a busy server queues this job (FIFO within the
		// tenant, round-robin across tenants) instead of oversubscribing
		// the worker pool. Cancellation works while queued.
		release, waited, aerr := s.admission.Acquire(ctx, sess.tenant)
		if aerr != nil {
			cancel()
			j.mu.Lock()
			j.state = "cancelled"
			j.errMsg = aerr.Error()
			j.mu.Unlock()
			sess.mu.Lock()
			sess.running = false
			sess.mu.Unlock()
			return
		}
		defer release()
		j.mu.Lock()
		j.state = "running"
		j.admissionWait = waited
		j.mu.Unlock()
		sess.current.Store(j)

		res, err := sess.rv.ResolveDeltaContext(ctx)
		cancel()
		sess.current.Store(nil)
		var workers []crowder.WorkerStat
		if err == nil {
			// Computed after the delta releases the resolver lock; the
			// job is still "running" to pollers, so the stats land before
			// anyone can observe "done".
			workers = sess.rv.WorkerStats()
		}
		j.mu.Lock()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				j.state = "cancelled"
			} else {
				j.state = "failed"
			}
			j.errMsg = err.Error()
		} else {
			j.state = "done"
			j.result = res
			j.workers = workers
		}
		j.mu.Unlock()
		sess.mu.Lock()
		sess.running = false
		if err == nil {
			sess.last = res
		}
		sess.mu.Unlock()
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{"job": j.id})
}

func findJob(sess *session, r *http.Request) (*job, error) {
	var id int
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &id); err != nil {
		return nil, fmt.Errorf("bad job id %q", r.PathValue("id"))
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	j := sess.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("no job %d", id)
	}
	return j, nil
}

func handleJobStatus(sess *session, w http.ResponseWriter, r *http.Request) {
	j, err := findJob(sess, r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	body := map[string]any{
		"job":   j.id,
		"state": j.state,
		"options": map[string]any{
			"aggregation":  sess.aggregation,
			"transitivity": sess.transitivity,
			"hybrid":       sess.hybrid,
		},
		"progress": map[string]any{
			"total_hits":      j.progress.TotalHITs,
			"completed_hits":  j.progress.CompletedHITs,
			"answers":         j.progress.Answers,
			"top_ups":         j.progress.TopUps,
			"retracted":       j.progress.Retracted,
			"interim_matches": j.interim,
		},
		"admission_wait_ms": float64(j.admissionWait) / float64(time.Millisecond),
	}
	if j.errMsg != "" {
		body["error"] = j.errMsg
	}
	if j.result != nil {
		body["result"] = map[string]any{
			"total_pairs":       j.result.TotalPairs,
			"candidates":        j.result.Candidates,
			"new_candidates":    j.result.NewCandidates,
			"cached_candidates": j.result.CachedCandidates,
			"hits":              j.result.HITs,
			"machine_pairs":     j.result.MachinePairs,
			"deduced_pairs":     j.result.DeducedPairs,
			"hits_saved":        j.result.HITsSaved,
			"retracted_hits":    j.result.RetractedHITs,
			"cost_dollars":      j.result.CostDollars,
			"elapsed_seconds":   j.result.ElapsedSeconds,
			"matches":           len(j.result.Matches),
		}
		workers := make([]map[string]any, 0, len(j.workers))
		for _, ws := range j.workers {
			workers = append(workers, map[string]any{
				"worker":           ws.Worker,
				"accuracy":         ws.Accuracy,
				"answers":          ws.Answers,
				"matches_seen":     ws.MatchesSeen,
				"non_matches_seen": ws.NonMatchesSeen,
				"classes_seen":     ws.ClassesSeen,
			})
		}
		body["workers"] = workers
	}
	writeJSON(w, http.StatusOK, body)
}

func handleJobCancel(sess *session, w http.ResponseWriter, r *http.Request) {
	j, err := findJob(sess, r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	j.mu.Lock()
	state := j.state
	cancel := j.cancel
	j.mu.Unlock()
	if state != "running" && state != "queued" {
		// Cancelling a finished job is a no-op; saying "cancelling" would
		// send pollers waiting for state "cancelled" into a spin.
		writeJSON(w, http.StatusConflict, map[string]any{"job": j.id, "state": state})
		return
	}
	cancel()
	writeJSON(w, http.StatusOK, map[string]any{"job": j.id, "cancelling": true})
}

type matchJSON struct {
	A          int     `json:"a"`
	B          int     `json:"b"`
	Confidence float64 `json:"confidence"`
}

func handleMatches(sess *session, w http.ResponseWriter, r *http.Request) {
	min := 0.0
	if q := r.URL.Query().Get("min"); q != "" {
		if _, err := fmt.Sscanf(q, "%g", &min); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad min %q", q))
			return
		}
	}
	sess.mu.Lock()
	last := sess.last
	sess.mu.Unlock()
	if last == nil {
		writeError(w, http.StatusNotFound, errors.New("no completed resolution yet"))
		return
	}
	var ms []matchJSON
	for _, m := range last.Matches {
		if m.Confidence >= min {
			ms = append(ms, matchJSON{A: m.Pair.A, B: m.Pair.B, Confidence: m.Confidence})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": ms, "total": len(ms)})
}

// hitJSON renders a HIT with enough content for a worker to judge it.
type hitJSON struct {
	ID      int          `json:"id"`
	Kind    string       `json:"kind"`
	Open    int          `json:"open,omitempty"`
	Pairs   []pairJSON   `json:"pairs"`
	Records []recordJSON `json:"records,omitempty"`
}

type pairJSON struct {
	A     int      `json:"a"`
	B     int      `json:"b"`
	Left  []string `json:"left,omitempty"`
	Right []string `json:"right,omitempty"`
}

type recordJSON struct {
	ID     int      `json:"id"`
	Values []string `json:"values"`
}

// row reads a record's values from the resolver's table. Resolver reads
// take the session lock shared, so this works mid-resolve: a resolution
// waiting on the crowd holds no lock at all.
func (sess *session) row(id int) []string {
	return sess.rv.Record(id)
}

func (sess *session) renderHIT(h crowder.HIT, open int) hitJSON {
	out := hitJSON{ID: h.ID, Open: open}
	if h.Kind == crowder.ClusterKind {
		out.Kind = "cluster"
		for _, id := range h.Records {
			out.Records = append(out.Records, recordJSON{ID: int(id), Values: sess.row(int(id))})
		}
	} else {
		out.Kind = "pair"
	}
	for _, p := range h.Pairs {
		out.Pairs = append(out.Pairs, pairJSON{
			A: int(p.A), B: int(p.B),
			Left: sess.row(int(p.A)), Right: sess.row(int(p.B)),
		})
	}
	return out
}

func requireQueue(sess *session, w http.ResponseWriter) bool {
	if sess.queue == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("table %q uses the simulated backend; it has no worker-facing HITs", sess.name))
		return false
	}
	return true
}

func handleOpenHITs(sess *session, w http.ResponseWriter, r *http.Request) {
	if !requireQueue(sess, w) {
		return
	}
	var hits []hitJSON
	for _, oh := range sess.queue.Open() {
		hits = append(hits, sess.renderHIT(oh.HIT, oh.Open))
	}
	writeJSON(w, http.StatusOK, map[string]any{"hits": hits, "total": len(hits)})
}

// claimRequest is the body of both claim endpoints. MaxWaitMs turns the
// claim into a long-poll: the request blocks until an assignment opens
// (wake-on-post), the wait expires, or the client goes away. maxClaimWait
// caps it so a dead client cannot pin a handler goroutine for hours.
type claimRequest struct {
	Worker    string `json:"worker"`
	MaxWaitMs int    `json:"max_wait_ms,omitempty"`
}

const maxClaimWait = 60 * time.Second

func (cr claimRequest) wait() time.Duration {
	d := time.Duration(cr.MaxWaitMs) * time.Millisecond
	if d > maxClaimWait {
		d = maxClaimWait
	}
	return d
}

func handleClaim(sess *session, w http.ResponseWriter, r *http.Request) {
	if !requireQueue(sess, w) {
		return
	}
	var req claimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, errors.New("worker is required"))
		return
	}
	c, ok, err := sess.queue.ClaimWait(r.Context(), req.Worker, req.wait())
	if err != nil {
		// The client hung up mid-wait; nobody is reading the response.
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no open HITs"))
		return
	}
	body := map[string]any{"token": c.Token, "hit": sess.renderHIT(c.HIT, 0)}
	if !c.Deadline.IsZero() {
		body["deadline"] = c.Deadline.Format(time.RFC3339)
	}
	writeJSON(w, http.StatusOK, body)
}

// handleGlobalClaim is the shared-pool worker API: claim the next
// assignment across every table, chosen by weighted deficit-round-robin
// over sessions — the endpoint a multi-tenant worker pool drains.
func (s *Server) handleGlobalClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, errors.New("worker is required"))
		return
	}
	c, from, ok, err := s.dispatcher.Claim(r.Context(), req.Worker, req.wait())
	if err != nil {
		return // client hung up mid-wait
	}
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no open HITs"))
		return
	}
	sess := s.reg.get(from.Table)
	if sess == nil {
		// Unreachable: sessions are never removed. Guard anyway.
		writeError(w, http.StatusInternalServerError, fmt.Errorf("claimed from unknown table %q", from.Table))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"token":     c.Token,
		"table":     from.Table,
		"tenant":    from.Tenant,
		"hit":       sess.renderHIT(c.HIT, 0),
		"deadline":  deadlineJSON(c.Deadline),
		"waited_ms": float64(c.Waited) / float64(time.Millisecond),
	})
}

func deadlineJSON(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format(time.RFC3339)
}

// handleGlobalAnswer answers a cross-table claim: the token routes to
// the session that issued it, so the worker needs no table name.
func (s *Server) handleGlobalAnswer(w http.ResponseWriter, r *http.Request) {
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	from, err := s.dispatcher.Answer(req.Token, req.verdicts())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "table": from.Table, "tenant": from.Tenant})
}

// tenantMetrics is one tenant's rollup in the /metrics response.
type tenantMetrics struct {
	Tenant          string `json:"tenant"`
	Tables          int    `json:"tables"`
	Claims          int64  `json:"claims"`
	Answers         int64  `json:"answers"`
	OpenHITs        int    `json:"open_hits"`
	OpenAssignments int    `json:"open_assignments"`
	// Worst-table quantiles: conservative for a tenant with many tables,
	// exact for the common one-table tenant.
	ClaimWaitP50Ms float64 `json:"claim_wait_p50_ms"`
	ClaimWaitP99Ms float64 `json:"claim_wait_p99_ms"`
}

// resolutionMetrics is one table's hybrid-router rollup in /metrics:
// how the session's judged pairs split across machine, crowd and
// transitive deduction, and the router's current band — the numbers an
// operator watches to confirm crowd cost is actually falling over the
// session's lifetime.
type resolutionMetrics struct {
	Table         string  `json:"table"`
	Tenant        string  `json:"tenant"`
	Hybrid        bool    `json:"hybrid"`
	MachinePairs  int     `json:"machine_pairs"`
	CrowdPairs    int     `json:"crowd_pairs"`
	DeducedPairs  int     `json:"deduced_pairs"`
	TrainingPos   int     `json:"training_pos"`
	TrainingNeg   int     `json:"training_neg"`
	RouterReady   bool    `json:"router_ready"`
	BandLo        float64 `json:"band_lo"`
	BandHi        float64 `json:"band_hi"`
	Risk          float64 `json:"risk"`
	SpentDollars  float64 `json:"spent_dollars"`
	BudgetDollars float64 `json:"budget_dollars"`
}

// handleMetrics serves the numbers the tenant bench gates on and an
// operator dashboard graphs: per-session and per-tenant open HITs,
// queue depths, claim-wait quantiles, admission-queue pressure, and
// each table's machine/crowd/deduced resolution split.
// One source of truth — the bench reads the same gauges operators do.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sessions := s.dispatcher.Stats()
	byTenant := make(map[string]*tenantMetrics)
	var order []string
	for _, st := range sessions {
		tm := byTenant[st.Tenant]
		if tm == nil {
			tm = &tenantMetrics{Tenant: st.Tenant}
			byTenant[st.Tenant] = tm
			order = append(order, st.Tenant)
		}
		tm.Tables++
		tm.Claims += st.Claims
		tm.Answers += st.Answers
		tm.OpenHITs += st.OpenHITs
		tm.OpenAssignments += st.OpenAssignments
		if st.ClaimWaitP50Ms > tm.ClaimWaitP50Ms {
			tm.ClaimWaitP50Ms = st.ClaimWaitP50Ms
		}
		if st.ClaimWaitP99Ms > tm.ClaimWaitP99Ms {
			tm.ClaimWaitP99Ms = st.ClaimWaitP99Ms
		}
	}
	sort.Strings(order)
	tenants := make([]tenantMetrics, 0, len(order))
	for _, t := range order {
		tenants = append(tenants, *byTenant[t])
	}
	all := s.reg.all()
	resolution := make([]resolutionMetrics, 0, len(all))
	for _, sess := range all {
		hs := sess.rv.HybridStats()
		resolution = append(resolution, resolutionMetrics{
			Table:         sess.name,
			Tenant:        sess.tenant,
			Hybrid:        hs.Enabled,
			MachinePairs:  hs.MachinePairs,
			CrowdPairs:    hs.CrowdPairs,
			DeducedPairs:  hs.DeducedPairs,
			TrainingPos:   hs.TrainingPos,
			TrainingNeg:   hs.TrainingNeg,
			RouterReady:   hs.Ready,
			BandLo:        hs.BandLo,
			BandHi:        hs.BandHi,
			Risk:          hs.Risk,
			SpentDollars:  hs.SpentDollars,
			BudgetDollars: hs.BudgetDollars,
		})
	}
	sort.Slice(resolution, func(a, b int) bool { return resolution[a].Table < resolution[b].Table })
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds": time.Since(s.start).Seconds(),
		"goroutines":     runtime.NumGoroutine(),
		"tables":         len(sessions),
		"sessions":       sessions,
		"tenants":        tenants,
		"resolution":     resolution,
		"admission":      s.admission.Stats(),
	})
}

// answerRequest is the body of both answer endpoints.
type answerRequest struct {
	Token   string `json:"token"`
	Answers []struct {
		A     int  `json:"a"`
		B     int  `json:"b"`
		Match bool `json:"match"`
	} `json:"answers"`
}

func (ar answerRequest) verdicts() []crowder.Verdict {
	verdicts := make([]crowder.Verdict, len(ar.Answers))
	for i, a := range ar.Answers {
		verdicts[i] = crowder.Verdict{A: record.ID(a.A), B: record.ID(a.B), Match: a.Match}
	}
	return verdicts
}

func handleAnswer(sess *session, w http.ResponseWriter, r *http.Request) {
	if !requireQueue(sess, w) {
		return
	}
	var req answerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if err := sess.queue.Answer(req.Token, req.verdicts()); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
