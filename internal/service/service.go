// Package service implements crowderd: the crowder engine packaged as a
// long-running HTTP daemon. Each table is an incremental resolution
// session (crowder.Resolver) owned by the server; clients append records,
// kick off delta resolutions as asynchronous jobs, poll job status and
// matches, and — for tables on the queue backend — external workers claim
// and answer the open HITs over the same API. This is the layer where
// service traffic lands: the engine below it already guarantees that
// resolutions are incremental (only new pairs are crowdsourced), that
// in-flight jobs are cancellable, and that simulated-backend runs are
// deterministic.
//
// API overview (all bodies JSON):
//
//	POST   /tables/{table}              create a session (schema + options)
//	GET    /tables                      list sessions
//	POST   /tables/{table}/records      append rows
//	POST   /tables/{table}/resolve      start an async delta resolution job
//	GET    /tables/{table}/jobs/{id}    poll job state and progress
//	DELETE /tables/{table}/jobs/{id}    cancel a running job
//	GET    /tables/{table}/matches      ranked matches of the last finished job
//	GET    /tables/{table}/hits         open HITs (queue backend)
//	POST   /tables/{table}/hits/claim   claim one assignment (worker API)
//	POST   /tables/{table}/hits/answer  answer a claimed assignment
//	GET    /healthz                     liveness
//
// Concurrency: resolution jobs run on their own goroutine; one job per
// table at a time (409 otherwise). The resolver's session lock is a
// read/write lock held exclusively only inside its short mutation
// windows, so worker endpoints render HIT content straight from the
// resolver's table — no row mirror — and stay responsive while a
// resolution is waiting on the crowd. Appends to a table whose job is in
// flight block only for those mutation windows, not for the whole job.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	crowder "github.com/crowder/crowder"
	"github.com/crowder/crowder/internal/record"
)

// Options configures the server.
type Options struct {
	// Lease is the claim lease for queue-backend tables (default 5m).
	Lease time.Duration
}

// Server is the crowderd HTTP handler.
type Server struct {
	mu     sync.Mutex
	opts   Options
	tables map[string]*session
	mux    *http.ServeMux
}

// New creates an empty server.
func New(opts Options) *Server {
	if opts.Lease <= 0 {
		opts.Lease = 5 * time.Minute
	}
	s := &Server{opts: opts, tables: make(map[string]*session)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	mux.HandleFunc("GET /tables", s.handleListTables)
	mux.HandleFunc("POST /tables/{table}", s.handleCreateTable)
	mux.HandleFunc("POST /tables/{table}/records", s.withSession(handleAppend))
	mux.HandleFunc("POST /tables/{table}/resolve", s.withSession(handleResolve))
	mux.HandleFunc("GET /tables/{table}/jobs/{id}", s.withSession(handleJobStatus))
	mux.HandleFunc("DELETE /tables/{table}/jobs/{id}", s.withSession(handleJobCancel))
	mux.HandleFunc("GET /tables/{table}/matches", s.withSession(handleMatches))
	mux.HandleFunc("GET /tables/{table}/hits", s.withSession(handleOpenHITs))
	mux.HandleFunc("POST /tables/{table}/hits/claim", s.withSession(handleClaim))
	mux.HandleFunc("POST /tables/{table}/hits/answer", s.withSession(handleAnswer))
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SweepQueues expires lapsed claims on every queue-backend table so
// lifecycle managers hear about expiries even with no worker traffic.
// crowderd calls this on a ticker.
func (s *Server) SweepQueues() {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.tables))
	for _, sess := range s.tables {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		if sess.queue != nil {
			sess.queue.Sweep()
		}
	}
}

// session is one table's long-lived resolution state.
type session struct {
	name  string
	rv    *crowder.Resolver
	queue *crowder.QueueBackend // nil for the simulated backend

	// current is the running job, observed lock-free by the engine's
	// progress callback (which fires while the resolver lock is held).
	current atomic.Pointer[job]

	// aggregation and transitivity echo the session's fixed options in
	// job status, so a client auditing a verdict can see which
	// aggregator produced it without holding the resolver lock.
	aggregation  string
	transitivity bool

	mu       sync.Mutex
	schema   []string
	jobs     map[int]*job
	jobOrder []int // job IDs oldest-first, for bounded retention
	nextJob  int
	last     *crowder.Result // last successfully completed resolution
	running  bool
}

// maxRetainedJobs bounds the finished-job history kept per table: each
// done job retains its full Result (including the ranked match list), so
// a daemon absorbing jobs for hours must not keep them all. The running
// job is never evicted.
const maxRetainedJobs = 50

// pruneJobsLocked evicts the oldest finished jobs beyond the retention
// cap; the caller holds sess.mu.
func (sess *session) pruneJobsLocked() {
	for len(sess.jobOrder) > maxRetainedJobs {
		evicted := false
		for i, id := range sess.jobOrder {
			j := sess.jobs[id]
			j.mu.Lock()
			done := j.state != "running"
			j.mu.Unlock()
			if done {
				delete(sess.jobs, id)
				sess.jobOrder = append(sess.jobOrder[:i], sess.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// job is one asynchronous delta resolution.
type job struct {
	id int

	mu       sync.Mutex
	state    string // "running", "done", "failed", "cancelled"
	progress crowder.Progress
	interim  int // matches ≥ 0.5 in the latest interim aggregation
	result   *crowder.Result
	// workers is the per-worker accuracy/coverage report computed when
	// the job completes (the resolver lock is free by then) — the
	// session-wide diagnostic a dashboard reads to spot spammers and
	// statistically unanchored single-class workers.
	workers []crowder.WorkerStat
	errMsg  string
	cancel  context.CancelFunc
}

func (j *job) update(p crowder.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.progress = p
	if p.Interim != nil {
		n := 0
		for _, prob := range p.Interim {
			if prob >= 0.5 {
				n++
			}
		}
		j.interim = n
	}
}

// tableRequest is the POST /tables/{table} body.
type tableRequest struct {
	Schema  []string       `json:"schema"`
	Options optionsRequest `json:"options"`
}

// optionsRequest is the JSON form of crowder.Options accepted by the API.
type optionsRequest struct {
	Threshold    float64  `json:"threshold,omitempty"`
	HITType      string   `json:"hit_type,omitempty"` // "cluster" (default) or "pair"
	ClusterSize  int      `json:"cluster_size,omitempty"`
	Assignments  int      `json:"assignments,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
	Workers      int      `json:"workers,omitempty"`
	SpammerRate  float64  `json:"spammer_rate,omitempty"`
	MachineOnly  bool     `json:"machine_only,omitempty"`
	Parallelism  int      `json:"parallelism,omitempty"`
	Backend      string   `json:"backend,omitempty"` // "simulated" (default) or "queue"
	Oracle       [][2]int `json:"oracle,omitempty"`
	Interim      bool     `json:"interim,omitempty"`
	LeaseSeconds int      `json:"lease_seconds,omitempty"`
	// Transitivity enables the adaptive deduce-instead-of-ask scheduler
	// (crowder.TransitivityOn): fewer HITs posted, savings reported on
	// every finished job as deduced_pairs / hits_saved / retracted_hits.
	Transitivity bool `json:"transitivity,omitempty"`
	// Aggregation selects the answer aggregator: "dawid-skene" (the
	// default), "majority-vote", or "dawid-skene-map" (the
	// sparse-coverage-robust MAP estimator). Fixed for the session; job
	// status echoes it under options.aggregation.
	Aggregation string `json:"aggregation,omitempty"`
}

func (s *Server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("table")
	var req tableRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Schema) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("schema is required"))
		return
	}

	opts := crowder.Options{
		Threshold:          req.Options.Threshold,
		ClusterSize:        req.Options.ClusterSize,
		Assignments:        req.Options.Assignments,
		Seed:               req.Options.Seed,
		Workers:            req.Options.Workers,
		SpammerRate:        req.Options.SpammerRate,
		MachineOnly:        req.Options.MachineOnly,
		Parallelism:        req.Options.Parallelism,
		InterimAggregation: req.Options.Interim,
	}
	if req.Options.Transitivity {
		opts.Transitivity = crowder.TransitivityOn
	}
	agg, err := crowder.ParseAggregationMode(req.Options.Aggregation)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts.Aggregation = agg
	switch req.Options.HITType {
	case "", "cluster":
		opts.HITType = crowder.ClusterHITs
	case "pair":
		opts.HITType = crowder.PairHITs
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown hit_type %q (want \"pair\" or \"cluster\")", req.Options.HITType))
		return
	}
	if req.Options.Oracle != nil {
		opts.Oracle = make([]crowder.Pair, len(req.Options.Oracle))
		for i, p := range req.Options.Oracle {
			opts.Oracle[i] = crowder.Pair{A: p[0], B: p[1]}
		}
	}

	sess := &session{
		name: name, schema: req.Schema, jobs: make(map[int]*job),
		aggregation:  agg.String(),
		transitivity: req.Options.Transitivity,
	}
	switch req.Options.Backend {
	case "", "simulated":
		// Oracle-driven reference simulator; nothing to wire.
	case "queue":
		lease := s.opts.Lease
		if req.Options.LeaseSeconds > 0 {
			lease = time.Duration(req.Options.LeaseSeconds) * time.Second
		}
		sess.queue = crowder.NewQueueBackend(crowder.QueueOptions{Lease: lease})
		opts.Backend = sess.queue
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown backend %q (want \"simulated\" or \"queue\")", req.Options.Backend))
		return
	}
	opts.Progress = func(p crowder.Progress) {
		if j := sess.current.Load(); j != nil {
			j.update(p)
		}
	}

	rv, err := crowder.NewResolver(crowder.NewTable(req.Schema...), opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess.rv = rv

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[name]; exists {
		writeError(w, http.StatusConflict, fmt.Errorf("table %q already exists", name))
		return
	}
	s.tables[name] = sess
	writeJSON(w, http.StatusCreated, map[string]any{"table": name, "schema": req.Schema})
}

func (s *Server) handleListTables(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"tables": names})
}

// withSession resolves the {table} path segment to its session.
func (s *Server) withSession(h func(*session, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("table")
		s.mu.Lock()
		sess := s.tables[name]
		s.mu.Unlock()
		if sess == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("no table %q", name))
			return
		}
		h(sess, w, r)
	}
}

func handleAppend(sess *session, w http.ResponseWriter, r *http.Request) {
	var req struct {
		Rows [][]string `json:"rows"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("rows is required"))
		return
	}
	// AppendBatch assigns IDs under the resolver's write lock, so the
	// rows are fully visible to HIT rendering (which reads under the
	// shared lock) before the first ID is returned — no mirror needed.
	first := sess.rv.AppendBatch(req.Rows...)
	writeJSON(w, http.StatusOK, map[string]any{"first_id": first, "count": len(req.Rows)})
}

func handleResolve(sess *session, w http.ResponseWriter, r *http.Request) {
	sess.mu.Lock()
	if sess.running {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, errors.New("a resolution job is already running for this table"))
		return
	}
	sess.nextJob++
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{id: sess.nextJob, state: "running", cancel: cancel}
	sess.jobs[j.id] = j
	sess.jobOrder = append(sess.jobOrder, j.id)
	sess.pruneJobsLocked()
	sess.running = true
	sess.mu.Unlock()
	sess.current.Store(j)

	go func() {
		res, err := sess.rv.ResolveDeltaContext(ctx)
		cancel()
		sess.current.Store(nil)
		var workers []crowder.WorkerStat
		if err == nil {
			// Computed after the delta releases the resolver lock; the
			// job is still "running" to pollers, so the stats land before
			// anyone can observe "done".
			workers = sess.rv.WorkerStats()
		}
		j.mu.Lock()
		if err != nil {
			if errors.Is(err, context.Canceled) {
				j.state = "cancelled"
			} else {
				j.state = "failed"
			}
			j.errMsg = err.Error()
		} else {
			j.state = "done"
			j.result = res
			j.workers = workers
		}
		j.mu.Unlock()
		sess.mu.Lock()
		sess.running = false
		if err == nil {
			sess.last = res
		}
		sess.mu.Unlock()
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{"job": j.id})
}

func findJob(sess *session, r *http.Request) (*job, error) {
	var id int
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &id); err != nil {
		return nil, fmt.Errorf("bad job id %q", r.PathValue("id"))
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	j := sess.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("no job %d", id)
	}
	return j, nil
}

func handleJobStatus(sess *session, w http.ResponseWriter, r *http.Request) {
	j, err := findJob(sess, r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	body := map[string]any{
		"job":   j.id,
		"state": j.state,
		"options": map[string]any{
			"aggregation":  sess.aggregation,
			"transitivity": sess.transitivity,
		},
		"progress": map[string]any{
			"total_hits":      j.progress.TotalHITs,
			"completed_hits":  j.progress.CompletedHITs,
			"answers":         j.progress.Answers,
			"top_ups":         j.progress.TopUps,
			"retracted":       j.progress.Retracted,
			"interim_matches": j.interim,
		},
	}
	if j.errMsg != "" {
		body["error"] = j.errMsg
	}
	if j.result != nil {
		body["result"] = map[string]any{
			"total_pairs":       j.result.TotalPairs,
			"candidates":        j.result.Candidates,
			"new_candidates":    j.result.NewCandidates,
			"cached_candidates": j.result.CachedCandidates,
			"hits":              j.result.HITs,
			"deduced_pairs":     j.result.DeducedPairs,
			"hits_saved":        j.result.HITsSaved,
			"retracted_hits":    j.result.RetractedHITs,
			"cost_dollars":      j.result.CostDollars,
			"elapsed_seconds":   j.result.ElapsedSeconds,
			"matches":           len(j.result.Matches),
		}
		workers := make([]map[string]any, 0, len(j.workers))
		for _, ws := range j.workers {
			workers = append(workers, map[string]any{
				"worker":           ws.Worker,
				"accuracy":         ws.Accuracy,
				"answers":          ws.Answers,
				"matches_seen":     ws.MatchesSeen,
				"non_matches_seen": ws.NonMatchesSeen,
				"classes_seen":     ws.ClassesSeen,
			})
		}
		body["workers"] = workers
	}
	writeJSON(w, http.StatusOK, body)
}

func handleJobCancel(sess *session, w http.ResponseWriter, r *http.Request) {
	j, err := findJob(sess, r)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	j.mu.Lock()
	state := j.state
	cancel := j.cancel
	j.mu.Unlock()
	if state != "running" {
		// Cancelling a finished job is a no-op; saying "cancelling" would
		// send pollers waiting for state "cancelled" into a spin.
		writeJSON(w, http.StatusConflict, map[string]any{"job": j.id, "state": state})
		return
	}
	cancel()
	writeJSON(w, http.StatusOK, map[string]any{"job": j.id, "cancelling": true})
}

type matchJSON struct {
	A          int     `json:"a"`
	B          int     `json:"b"`
	Confidence float64 `json:"confidence"`
}

func handleMatches(sess *session, w http.ResponseWriter, r *http.Request) {
	min := 0.0
	if q := r.URL.Query().Get("min"); q != "" {
		if _, err := fmt.Sscanf(q, "%g", &min); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad min %q", q))
			return
		}
	}
	sess.mu.Lock()
	last := sess.last
	sess.mu.Unlock()
	if last == nil {
		writeError(w, http.StatusNotFound, errors.New("no completed resolution yet"))
		return
	}
	var ms []matchJSON
	for _, m := range last.Matches {
		if m.Confidence >= min {
			ms = append(ms, matchJSON{A: m.Pair.A, B: m.Pair.B, Confidence: m.Confidence})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": ms, "total": len(ms)})
}

// hitJSON renders a HIT with enough content for a worker to judge it.
type hitJSON struct {
	ID      int          `json:"id"`
	Kind    string       `json:"kind"`
	Open    int          `json:"open,omitempty"`
	Pairs   []pairJSON   `json:"pairs"`
	Records []recordJSON `json:"records,omitempty"`
}

type pairJSON struct {
	A     int      `json:"a"`
	B     int      `json:"b"`
	Left  []string `json:"left,omitempty"`
	Right []string `json:"right,omitempty"`
}

type recordJSON struct {
	ID     int      `json:"id"`
	Values []string `json:"values"`
}

// row reads a record's values from the resolver's table. Resolver reads
// take the session lock shared, so this works mid-resolve: a resolution
// waiting on the crowd holds no lock at all.
func (sess *session) row(id int) []string {
	return sess.rv.Record(id)
}

func (sess *session) renderHIT(h crowder.HIT, open int) hitJSON {
	out := hitJSON{ID: h.ID, Open: open}
	if h.Kind == crowder.ClusterKind {
		out.Kind = "cluster"
		for _, id := range h.Records {
			out.Records = append(out.Records, recordJSON{ID: int(id), Values: sess.row(int(id))})
		}
	} else {
		out.Kind = "pair"
	}
	for _, p := range h.Pairs {
		out.Pairs = append(out.Pairs, pairJSON{
			A: int(p.A), B: int(p.B),
			Left: sess.row(int(p.A)), Right: sess.row(int(p.B)),
		})
	}
	return out
}

func requireQueue(sess *session, w http.ResponseWriter) bool {
	if sess.queue == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("table %q uses the simulated backend; it has no worker-facing HITs", sess.name))
		return false
	}
	return true
}

func handleOpenHITs(sess *session, w http.ResponseWriter, r *http.Request) {
	if !requireQueue(sess, w) {
		return
	}
	var hits []hitJSON
	for _, oh := range sess.queue.Open() {
		hits = append(hits, sess.renderHIT(oh.HIT, oh.Open))
	}
	writeJSON(w, http.StatusOK, map[string]any{"hits": hits, "total": len(hits)})
}

func handleClaim(sess *session, w http.ResponseWriter, r *http.Request) {
	if !requireQueue(sess, w) {
		return
	}
	var req struct {
		Worker string `json:"worker"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, errors.New("worker is required"))
		return
	}
	c, ok := sess.queue.Claim(req.Worker)
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no open HITs"))
		return
	}
	body := map[string]any{"token": c.Token, "hit": sess.renderHIT(c.HIT, 0)}
	if !c.Deadline.IsZero() {
		body["deadline"] = c.Deadline.Format(time.RFC3339)
	}
	writeJSON(w, http.StatusOK, body)
}

func handleAnswer(sess *session, w http.ResponseWriter, r *http.Request) {
	if !requireQueue(sess, w) {
		return
	}
	var req struct {
		Token   string `json:"token"`
		Answers []struct {
			A     int  `json:"a"`
			B     int  `json:"b"`
			Match bool `json:"match"`
		} `json:"answers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding body: %w", err))
		return
	}
	verdicts := make([]crowder.Verdict, len(req.Answers))
	for i, a := range req.Answers {
		verdicts[i] = crowder.Verdict{A: record.ID(a.A), B: record.ID(a.B), Match: a.Match}
	}
	if err := sess.queue.Answer(req.Token, verdicts); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
