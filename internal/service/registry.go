package service

import "sync"

// registryShards is the table-registry shard count. Table lookup is on
// every request path; creation is rare. Sharding plus RWMutexes means a
// claim burst never serializes on one lock, and a table being created
// blocks only the 1/16th of lookups that hash to its shard — the
// cross-session claim plane touches no registry lock at all.
const registryShards = 16

type registryShard struct {
	mu     sync.RWMutex
	tables map[string]*session
}

// registry is the server's read-mostly table map: FNV-1a-sharded with
// per-shard read/write locks, replacing the single server-wide mutex
// that made every claim wait behind every table creation.
type registry struct {
	shards [registryShards]registryShard
}

func newRegistry() *registry {
	r := &registry{}
	for i := range r.shards {
		r.shards[i].tables = make(map[string]*session)
	}
	return r
}

// shardOf hashes a table name to its shard (FNV-1a).
func (r *registry) shardOf(name string) *registryShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return &r.shards[h%registryShards]
}

// get returns the named session, or nil.
func (r *registry) get(name string) *session {
	sh := r.shardOf(name)
	sh.mu.RLock()
	sess := sh.tables[name]
	sh.mu.RUnlock()
	return sess
}

// put registers a session under name; false if the name is taken.
func (r *registry) put(name string, sess *session) bool {
	sh := r.shardOf(name)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, exists := sh.tables[name]; exists {
		return false
	}
	sh.tables[name] = sess
	return true
}

// names lists every table name (unsorted).
func (r *registry) names() []string {
	var out []string
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for name := range sh.tables {
			out = append(out, name)
		}
		sh.mu.RUnlock()
	}
	return out
}

// all lists every session (unsorted).
func (r *registry) all() []*session {
	var out []*session
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, sess := range sh.tables {
			out = append(out, sess)
		}
		sh.mu.RUnlock()
	}
	return out
}
