package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

// globalClaimResponse is the POST /claim body workers read.
type globalClaimResponse struct {
	Token    string  `json:"token"`
	Table    string  `json:"table"`
	Tenant   string  `json:"tenant"`
	HIT      hitJSON `json:"hit"`
	WaitedMs float64 `json:"waited_ms"`
}

// startQueueResolve creates a queue-backend table, appends rows and
// kicks a resolve, returning the job ID.
func startQueueResolve(t *testing.T, c *http.Client, base, table string, opts optionsRequest, schema []string, rows [][]string) int {
	t.Helper()
	if code := call(t, c, "POST", base+"/tables/"+table, tableRequest{Schema: schema, Options: opts}, nil); code != http.StatusCreated {
		t.Fatalf("create %s returned %d", table, code)
	}
	if code := call(t, c, "POST", base+"/tables/"+table+"/records",
		map[string]any{"rows": rows}, nil); code != http.StatusOK {
		t.Fatalf("append to %s returned %d", table, code)
	}
	var kicked struct {
		Job int `json:"job"`
	}
	if code := call(t, c, "POST", base+"/tables/"+table+"/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
		t.Fatalf("resolve on %s returned %d", table, code)
	}
	return kicked.Job
}

// TestClaimsProceedDuringTableCreation is the Server.mu regression test:
// with the old single server mutex, a table creation in flight blocked
// every claim. Now the registry is sharded — we hold the write lock of
// every shard except the served table's (a creation stuck in any other
// shard) and claims on both the per-table and the cross-table endpoint
// must still complete.
func TestClaimsProceedDuringTableCreation(t *testing.T) {
	schema, rows, _, _ := serviceDataset(t)
	s := New(Options{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	c := srv.Client()

	job := startQueueResolve(t, c, srv.URL, "t1", optionsRequest{
		Threshold: 0.4, HITType: "pair", ClusterSize: 5, Seed: 7, Backend: "queue",
	}, schema, rows)
	_ = job
	// Wait for the resolve to post its HITs.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var body struct {
			Total int `json:"total"`
		}
		call(t, c, "GET", srv.URL+"/tables/t1/hits", nil, &body)
		if body.Total > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resolve never posted HITs")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Simulate stuck creations in every other shard.
	mine := s.reg.shardOf("t1")
	for i := range s.reg.shards {
		if sh := &s.reg.shards[i]; sh != mine {
			sh.mu.Lock()
			defer sh.mu.Unlock()
		}
	}

	type result struct {
		code  int
		claim globalClaimResponse
	}
	results := make(chan result, 2)
	go func() {
		var cl globalClaimResponse
		code := call(t, c, "POST", srv.URL+"/claim", map[string]any{"worker": "global-w"}, &cl)
		results <- result{code, cl}
	}()
	go func() {
		var cl globalClaimResponse
		code := call(t, c, "POST", srv.URL+"/tables/t1/hits/claim", map[string]any{"worker": "table-w"}, &cl)
		results <- result{code, cl}
	}()
	for i := 0; i < 2; i++ {
		select {
		case res := <-results:
			if res.code != http.StatusOK {
				t.Fatalf("claim returned %d while creations held other shards", res.code)
			}
			if res.claim.Token == "" {
				t.Fatal("claim returned no token")
			}
		case <-time.After(10 * time.Second):
			t.Fatal("claim blocked behind a table creation in another shard")
		}
	}
}

// TestGlobalClaimAnswerRoundTrip drains two tenants' resolves through
// the shared-pool endpoints only, then checks the answers landed on the
// right tables and /metrics reports the traffic per tenant.
func TestGlobalClaimAnswerRoundTrip(t *testing.T) {
	schema, rows, _, _ := serviceDataset(t)
	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	c := srv.Client()

	truth := record.NewPairSet()
	d := dataset.RestaurantN(4, 80, 15)
	for _, p := range d.Matches.Slice() {
		truth.Add(p.A, p.B)
	}

	jobs := map[string]int{}
	for i, table := range []string{"a", "b"} {
		jobs[table] = startQueueResolve(t, c, srv.URL, table, optionsRequest{
			Threshold: 0.4, HITType: "pair", ClusterSize: 5, Seed: 7,
			Backend: "queue", Tenant: "tenant-" + table, Priority: 1 + i,
		}, schema, rows)
	}

	var done atomic.Bool
	acks := map[string]*atomic.Int64{"a": {}, "b": {}}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !done.Load() {
				var cl globalClaimResponse
				code := call(t, c, "POST", srv.URL+"/claim",
					map[string]any{"worker": fmt.Sprintf("w%d", w), "max_wait_ms": 100}, &cl)
				if code != http.StatusOK {
					continue
				}
				if cl.Table != "a" && cl.Table != "b" {
					t.Errorf("claim came from unknown table %q", cl.Table)
					return
				}
				var answers []map[string]any
				for _, p := range cl.HIT.Pairs {
					if len(p.Left) == 0 || len(p.Right) == 0 {
						t.Errorf("global claim rendered pair (%d,%d) without record values", p.A, p.B)
					}
					answers = append(answers, map[string]any{
						"a": p.A, "b": p.B, "match": truth.Has(record.ID(p.A), record.ID(p.B)),
					})
				}
				var ack struct {
					Table string `json:"table"`
				}
				if code := call(t, c, "POST", srv.URL+"/answer",
					map[string]any{"token": cl.Token, "answers": answers}, &ack); code == http.StatusOK {
					if ack.Table != cl.Table {
						t.Errorf("answer landed on %q; claimed from %q", ack.Table, cl.Table)
					}
					acks[cl.Table].Add(1)
				}
			}
		}(w)
	}

	paid := map[string]int64{}
	for table, id := range jobs {
		status := pollJob(t, c, srv.URL, table, id)
		if status["state"] != "done" {
			t.Fatalf("table %s job ended %v: %v", table, status["state"], status["error"])
		}
		res := status["result"].(map[string]any)
		paid[table] = int64(res["hits"].(float64)) * 3
	}
	done.Store(true)
	wg.Wait()

	for table, n := range paid {
		if got := acks[table].Load(); got != n {
			t.Errorf("table %s: %d answers acked, job consumed %d assignments", table, got, n)
		}
	}

	// Both tenants' accepted matches are truthful (and identical input ⇒
	// identical truth subset); no verdicts leaked across tables.
	for _, table := range []string{"a", "b"} {
		for _, m := range getMatches(t, c, srv.URL, table) {
			if m.Confidence >= 0.5 && !truth.Has(record.ID(m.A), record.ID(m.B)) {
				t.Errorf("table %s accepted untrue pair (%d,%d)", table, m.A, m.B)
			}
		}
	}

	var metrics struct {
		Tables  int `json:"tables"`
		Tenants []struct {
			Tenant  string `json:"tenant"`
			Claims  int64  `json:"claims"`
			Answers int64  `json:"answers"`
		} `json:"tenants"`
		Admission struct {
			Slots int `json:"slots"`
		} `json:"admission"`
	}
	if code := call(t, c, "GET", srv.URL+"/metrics", nil, &metrics); code != http.StatusOK {
		t.Fatalf("metrics returned %d", code)
	}
	if metrics.Tables != 2 || len(metrics.Tenants) != 2 {
		t.Fatalf("metrics reported %d tables / %d tenants; want 2/2", metrics.Tables, len(metrics.Tenants))
	}
	for _, tm := range metrics.Tenants {
		if tm.Claims == 0 || tm.Answers == 0 {
			t.Errorf("tenant %s shows no traffic in /metrics: %+v", tm.Tenant, tm)
		}
	}
	if metrics.Admission.Slots == 0 {
		t.Error("metrics reported no admission slots")
	}

	// pprof is mounted.
	if code := call(t, c, "GET", srv.URL+"/debug/pprof/cmdline", nil, nil); code != http.StatusOK {
		t.Errorf("pprof returned %d", code)
	}
}

// TestResolveAdmissionQueue: with one resolve slot, a second tenant's
// job reports "queued", can be cancelled while queued, and admission
// pressure shows up in /metrics; freeing the slot lets a queued job run.
func TestResolveAdmissionQueue(t *testing.T) {
	schema, rows, oracle, _ := serviceDataset(t)
	srv := httptest.NewServer(New(Options{MaxResolves: 1}))
	defer srv.Close()
	c := srv.Client()

	// Tenant A: queue backend with no workers — holds its slot until
	// cancelled.
	jobA := startQueueResolve(t, c, srv.URL, "a", optionsRequest{
		Threshold: 0.4, HITType: "pair", ClusterSize: 5, Seed: 7, Backend: "queue",
	}, schema, rows)

	// Wait until A is actually running (admitted), not just accepted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var status map[string]any
		call(t, c, "GET", fmt.Sprintf("%s/tables/a/jobs/%d", srv.URL, jobA), nil, &status)
		if status["state"] == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job A never started running: %v", status)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Tenant B: simulated backend; would finish instantly if admitted.
	if code := call(t, c, "POST", srv.URL+"/tables/b", tableRequest{
		Schema:  schema,
		Options: optionsRequest{Threshold: 0.4, HITType: "pair", ClusterSize: 5, Seed: 7, Oracle: oracle},
	}, nil); code != http.StatusCreated {
		t.Fatalf("create b returned %d", code)
	}
	if code := call(t, c, "POST", srv.URL+"/tables/b/records",
		map[string]any{"rows": rows}, nil); code != http.StatusOK {
		t.Fatalf("append b returned %d", code)
	}
	var kickedB struct {
		Job int `json:"job"`
	}
	if code := call(t, c, "POST", srv.URL+"/tables/b/resolve", map[string]any{}, &kickedB); code != http.StatusAccepted {
		t.Fatalf("resolve b returned %d", code)
	}
	var statusB map[string]any
	call(t, c, "GET", fmt.Sprintf("%s/tables/b/jobs/%d", srv.URL, kickedB.Job), nil, &statusB)
	if statusB["state"] != "queued" {
		t.Fatalf("job B state = %v with the slot held; want \"queued\"", statusB["state"])
	}

	var metrics struct {
		Admission struct {
			InUse  int `json:"in_use"`
			Queued int `json:"queued"`
		} `json:"admission"`
	}
	call(t, c, "GET", srv.URL+"/metrics", nil, &metrics)
	if metrics.Admission.InUse != 1 || metrics.Admission.Queued != 1 {
		t.Fatalf("admission = %+v; want in_use 1, queued 1", metrics.Admission)
	}

	// Cancel B while queued.
	if code := call(t, c, "DELETE", fmt.Sprintf("%s/tables/b/jobs/%d", srv.URL, kickedB.Job), nil, nil); code != http.StatusOK {
		t.Fatalf("cancel of queued job returned %d", code)
	}
	if status := pollJob(t, c, srv.URL, "b", kickedB.Job); status["state"] != "cancelled" {
		t.Fatalf("queued job ended %v; want cancelled", status["state"])
	}

	// Cancel A, freeing the slot; a fresh B resolve then completes.
	if code := call(t, c, "DELETE", fmt.Sprintf("%s/tables/a/jobs/%d", srv.URL, jobA), nil, nil); code != http.StatusOK {
		t.Fatalf("cancel of running job returned %d", code)
	}
	if status := pollJob(t, c, srv.URL, "a", jobA); status["state"] != "cancelled" {
		t.Fatalf("job A ended %v; want cancelled", status["state"])
	}
	var kickedB2 struct {
		Job int `json:"job"`
	}
	if code := call(t, c, "POST", srv.URL+"/tables/b/resolve", map[string]any{}, &kickedB2); code != http.StatusAccepted {
		t.Fatalf("second resolve b returned %d", code)
	}
	if status := pollJob(t, c, srv.URL, "b", kickedB2.Job); status["state"] != "done" {
		t.Fatalf("job B2 ended %v: %v", status["state"], status["error"])
	}
}

// TestMultiTenantStress is the shared-pool stress tier: several tenants
// resolve concurrently over several rounds while one worker pool drains
// them all through the cross-table claim plane, under -race in CI. It
// asserts no lost answers (per tenant, acked answers == assignments the
// jobs consumed) and no cross-tenant verdict leakage (each tenant's
// accepted matches are a subset of that tenant's own truth).
func TestMultiTenantStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		tenants = 3
		rounds  = 2
		workers = 8
	)
	srv := httptest.NewServer(New(Options{MaxResolves: 2}))
	defer srv.Close()
	c := srv.Client()

	type tenant struct {
		table string
		rows  [][]string
		truth record.PairSet
		paid  atomic.Int64
		acked atomic.Int64
	}
	ts := make([]*tenant, tenants)
	for i := range ts {
		// Different sizes ⇒ different truths: a verdict leaking across
		// tenants shows up as an untrue accepted pair.
		d := dataset.RestaurantN(4, 60+30*i, 10+5*i)
		tn := &tenant{table: fmt.Sprintf("t%d", i), truth: d.Matches}
		for j := range d.Table.Records {
			tn.rows = append(tn.rows, d.Table.Records[j].Values)
		}
		ts[i] = tn
		if code := call(t, c, "POST", srv.URL+"/tables/"+tn.table, tableRequest{
			Schema: d.Table.Schema,
			Options: optionsRequest{
				Threshold: 0.4, HITType: "pair", ClusterSize: 5, Seed: int64(11 + i),
				Backend: "queue", Tenant: "tenant" + tn.table, Priority: 1 + i%2,
				// Majority vote keeps unanimous truthful answers exactly
				// truthful. The default Dawid–Skene can invert verdicts for
				// workers with sparse per-table coverage (see ROADMAP), and
				// a shared pool spread across tenants makes coverage sparse
				// by construction — that degeneracy would masquerade as
				// cross-tenant leakage here.
				Aggregation: "majority-vote",
			},
		}, nil); code != http.StatusCreated {
			t.Fatalf("create %s returned %d", tn.table, code)
		}
	}
	byTable := map[string]*tenant{}
	for _, tn := range ts {
		byTable[tn.table] = tn
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	// The shared pool: workers see all tenants through one endpoint.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !done.Load() {
				var cl globalClaimResponse
				code := call(t, c, "POST", srv.URL+"/claim",
					map[string]any{"worker": fmt.Sprintf("w%d", w), "max_wait_ms": 50}, &cl)
				if code != http.StatusOK {
					continue
				}
				tn := byTable[cl.Table]
				if tn == nil {
					t.Errorf("claim from unknown table %q", cl.Table)
					return
				}
				var answers []map[string]any
				for _, p := range cl.HIT.Pairs {
					answers = append(answers, map[string]any{
						"a": p.A, "b": p.B, "match": tn.truth.Has(record.ID(p.A), record.ID(p.B)),
					})
				}
				if call(t, c, "POST", srv.URL+"/answer",
					map[string]any{"token": cl.Token, "answers": answers}, nil) == http.StatusOK {
					tn.acked.Add(1)
				}
			}
		}(w)
	}

	// Each tenant drives its own append→resolve→poll rounds concurrently.
	var terr atomic.Bool
	var tenantWG sync.WaitGroup
	for _, tn := range ts {
		tenantWG.Add(1)
		go func(tn *tenant) {
			defer tenantWG.Done()
			batch := (len(tn.rows) + rounds - 1) / rounds
			for r := 0; r < rounds; r++ {
				lo, hi := r*batch, (r+1)*batch
				if hi > len(tn.rows) {
					hi = len(tn.rows)
				}
				if code := call(t, c, "POST", srv.URL+"/tables/"+tn.table+"/records",
					map[string]any{"rows": tn.rows[lo:hi]}, nil); code != http.StatusOK {
					t.Errorf("%s round %d append returned %d", tn.table, r, code)
					terr.Store(true)
					return
				}
				var kicked struct {
					Job int `json:"job"`
				}
				if code := call(t, c, "POST", srv.URL+"/tables/"+tn.table+"/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
					t.Errorf("%s round %d resolve returned %d", tn.table, r, code)
					terr.Store(true)
					return
				}
				status := pollJob(t, c, srv.URL, tn.table, kicked.Job)
				if status["state"] != "done" {
					t.Errorf("%s round %d job ended %v: %v", tn.table, r, status["state"], status["error"])
					terr.Store(true)
					return
				}
				res := status["result"].(map[string]any)
				tn.paid.Add(int64(res["hits"].(float64)) * 3)
			}
		}(tn)
	}
	tenantWG.Wait()
	done.Store(true)
	wg.Wait()
	if terr.Load() {
		t.FailNow()
	}

	for _, tn := range ts {
		// No lost answers: each tenant's jobs consumed exactly the
		// assignments its acked answers delivered.
		if tn.acked.Load() != tn.paid.Load() {
			t.Errorf("%s: %d answers acked, jobs consumed %d", tn.table, tn.acked.Load(), tn.paid.Load())
		}
		// No cross-tenant leakage: truthful workers answered from THIS
		// tenant's truth, so an accepted pair outside it means another
		// tenant's verdicts bled in.
		accepted := 0
		for _, m := range getMatches(t, c, srv.URL, tn.table) {
			if m.Confidence >= 0.5 {
				accepted++
				if !tn.truth.Has(record.ID(m.A), record.ID(m.B)) {
					t.Errorf("%s accepted pair (%d,%d) outside its own truth", tn.table, m.A, m.B)
				}
			}
		}
		if accepted == 0 {
			t.Errorf("%s accepted no matches", tn.table)
		}
	}
}
