package service

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/dataset"
	"github.com/crowder/crowder/internal/record"
)

// TestServiceStressConcurrent hammers one queue-backend session from
// many goroutines at once — appenders, resolvers, claiming-and-answering
// workers, and read-path pollers — across several append→resolve rounds.
// Run with -race (CI does). It asserts that
//
//   - every answer a worker submitted was accepted exactly once and none
//     were lost: each round's job completes, and the number of accepted
//     answer submissions equals the number of assignments the jobs paid
//     for;
//   - worker and read endpoints stay responsive while a resolution holds
//     the session lock (claims, answers, open-HIT listings, job polls
//     and health checks all return while the job is in flight);
//   - the final match set is exactly the truthful workers' verdicts:
//     every true candidate pair accepted, nothing else.
func TestServiceStressConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	d := dataset.RestaurantN(8, 240, 50)
	var rows [][]string
	for i := range d.Table.Records {
		rows = append(rows, d.Table.Records[i].Values)
	}
	truth := d.Matches

	srv := httptest.NewServer(New(Options{}))
	defer srv.Close()
	c := srv.Client()

	const (
		tau     = 0.4
		rounds  = 3
		workers = 8
		pollers = 4
	)
	if code := call(t, c, "POST", srv.URL+"/tables/s", tableRequest{
		Schema: d.Table.Schema,
		Options: optionsRequest{
			Threshold: tau, HITType: "pair", ClusterSize: 5, Seed: 3,
			Backend: "queue",
		},
	}, nil); code != http.StatusCreated {
		t.Fatalf("create table returned %d", code)
	}

	var (
		answersAccepted atomic.Int64 // worker answer POSTs acked 200
		assignmentsPaid atomic.Int64 // hits × assignments across done jobs
		readChecks      atomic.Int64 // successful reads during in-flight jobs
	)

	batch := (len(rows) + rounds - 1) / rounds
	for r := 0; r < rounds; r++ {
		lo, hi := r*batch, (r+1)*batch
		if hi > len(rows) {
			hi = len(rows)
		}
		if code := call(t, c, "POST", srv.URL+"/tables/s/records",
			map[string]any{"rows": rows[lo:hi]}, nil); code != http.StatusOK {
			t.Fatalf("append returned %d", code)
		}
		var kicked struct {
			Job int `json:"job"`
		}
		if code := call(t, c, "POST", srv.URL+"/tables/s/resolve", map[string]any{}, &kicked); code != http.StatusAccepted {
			t.Fatalf("resolve returned %d", code)
		}

		var done atomic.Bool
		var wg sync.WaitGroup

		// Workers: claim and answer truthfully until the job finishes.
		// Worker identities persist across rounds (as real crowd workers
		// do): Dawid–Skene anchors each worker's confusion matrix on
		// their whole answer history, and a pool of single-round workers
		// who only ever saw non-matches is statistically unanchored — a
		// known sparse-coverage degeneracy of the aggregator, not a
		// service concurrency bug (see ROADMAP).
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for !done.Load() {
					var claim struct {
						Token string  `json:"token"`
						HIT   hitJSON `json:"hit"`
					}
					code := call(t, c, "POST", srv.URL+"/tables/s/hits/claim",
						map[string]any{"worker": fmt.Sprintf("w%d", w)}, &claim)
					if code != http.StatusOK {
						time.Sleep(time.Millisecond)
						continue
					}
					var answers []map[string]any
					for _, p := range claim.HIT.Pairs {
						if len(p.Left) == 0 || len(p.Right) == 0 {
							t.Errorf("HIT rendered without record values for pair (%d,%d)", p.A, p.B)
						}
						answers = append(answers, map[string]any{
							"a": p.A, "b": p.B,
							"match": truth.Has(record.ID(p.A), record.ID(p.B)),
						})
					}
					if code := call(t, c, "POST", srv.URL+"/tables/s/hits/answer",
						map[string]any{"token": claim.Token, "answers": answers}, nil); code == http.StatusOK {
						answersAccepted.Add(1)
					} else if !done.Load() {
						t.Errorf("answer rejected with %d while the job was in flight", code)
					}
				}
			}(w)
		}

		// Pollers: the read path must answer while the resolver lock is
		// held by the in-flight job.
		for p := 0; p < pollers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for !done.Load() {
					var ok bool
					switch p % 3 {
					case 0:
						ok = call(t, c, "GET", srv.URL+"/tables/s/hits", nil, &map[string]any{}) == http.StatusOK
					case 1:
						ok = call(t, c, "GET", srv.URL+"/healthz", nil, &map[string]any{}) == http.StatusOK
					default:
						ok = call(t, c, "GET",
							fmt.Sprintf("%s/tables/s/jobs/%d", srv.URL, kicked.Job), nil, &map[string]any{}) == http.StatusOK
					}
					if !ok {
						t.Error("read endpoint failed during an in-flight resolve")
					}
					readChecks.Add(1)
					time.Sleep(time.Millisecond)
				}
			}(p)
		}

		status := pollJob(t, c, srv.URL, "s", kicked.Job)
		done.Store(true)
		wg.Wait()
		if status["state"] != "done" {
			t.Fatalf("round %d job ended %v: %v", r, status["state"], status["error"])
		}
		res := status["result"].(map[string]any)
		assignmentsPaid.Add(int64(res["hits"].(float64)) * 3) // default replication
	}

	// No lost answers: the jobs completed, and they completed by
	// collecting exactly the assignments the workers' accepted
	// submissions delivered.
	if answersAccepted.Load() != assignmentsPaid.Load() {
		t.Errorf("workers had %d answers accepted; the jobs consumed %d assignments",
			answersAccepted.Load(), assignmentsPaid.Load())
	}
	if readChecks.Load() == 0 {
		t.Error("no read-path checks ran during the in-flight jobs")
	}

	// Truthful workers ⇒ the accepted set is exactly the true candidate
	// pairs (every answer unanimous, Dawid–Skene can only agree).
	got := record.NewPairSet()
	for _, m := range getMatches(t, c, srv.URL, "s") {
		if m.Confidence >= 0.5 {
			got.Add(record.ID(m.A), record.ID(m.B))
		}
	}
	if got.Len() == 0 {
		t.Error("stress run accepted no matches")
	}
	for _, p := range got.Slice() {
		if !truth.Has(p.A, p.B) {
			t.Errorf("accepted pair %v is not a true match despite truthful workers", p)
		}
	}
}
