package crowd

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/record"
)

// waitHITs builds n one-pair HITs with the given replication.
func waitHITs(n, assignments int) []HIT {
	hits := make([]HIT, n)
	base := nextHITID(n)
	for i := range hits {
		hits[i] = HIT{
			ID:          base + i,
			Ord:         i,
			Kind:        PairKind,
			Pairs:       []record.Pair{record.MakePair(record.ID(2*i), record.ID(2*i+1))},
			Assignments: assignments,
		}
	}
	return hits
}

// TestClaimWaitWakesOnPost: a worker blocked in ClaimWait is woken by a
// post instead of spinning until the deadline.
func TestClaimWaitWakesOnPost(t *testing.T) {
	q := NewQueue(QueueOptions{})
	type got struct {
		c  *Claimed
		ok bool
	}
	done := make(chan got, 1)
	go func() {
		c, ok, err := q.ClaimWait(context.Background(), "w", 10*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- got{c, ok}
	}()
	// Let the claimer park. A sleep cannot prove it blocked, but the
	// wall-clock assertion below proves it did not wait out the 10s.
	time.Sleep(20 * time.Millisecond)
	start := time.Now()
	if err := q.Post(context.Background(), waitHITs(1, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-done:
		if !g.ok || g.c == nil {
			t.Fatal("woken claim returned no assignment")
		}
		if waited := time.Since(start); waited > 5*time.Second {
			t.Fatalf("claim took %v after the post; want wakeup-bound", waited)
		}
		if g.c.Waited < 0 {
			t.Errorf("negative claim wait %v", g.c.Waited)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ClaimWait never woke on post")
	}
}

// TestClaimWaitTimeoutAndCancel: a bounded wait with nothing claimable
// returns (nil, false, nil) at the deadline; a cancelled context
// surfaces its error promptly.
func TestClaimWaitTimeoutAndCancel(t *testing.T) {
	q := NewQueue(QueueOptions{})
	start := time.Now()
	c, ok, err := q.ClaimWait(context.Background(), "w", 30*time.Millisecond)
	if c != nil || ok || err != nil {
		t.Fatalf("timed-out wait = (%v, %v, %v); want (nil, false, nil)", c, ok, err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("wait returned before the deadline with nothing claimable")
	}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := q.ClaimWait(ctx, "w", 10*time.Second)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if err != context.Canceled {
			t.Fatalf("cancelled wait returned %v; want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ClaimWait ignored context cancellation")
	}

	// maxWait <= 0 degenerates to the non-blocking Claim.
	if _, ok, err := q.ClaimWait(context.Background(), "w", 0); ok || err != nil {
		t.Fatalf("zero-wait claim on empty queue = (%v, %v); want (false, nil)", ok, err)
	}
}

// TestClaimRacesLeaseExpiry hammers a short-lease queue from concurrent
// claimers while leases lapse underneath them, under -race in CI. The
// invariants: every accepted answer is accepted exactly once (a token
// voided by expiry is rejected, never double-counted), completed
// assignments never exceed what was posted plus top-ups, and the run
// drains — expiries re-open work rather than wedging it.
func TestClaimRacesLeaseExpiry(t *testing.T) {
	const (
		nHITs    = 8
		replicas = 2
		workers  = 6
	)
	q := NewQueue(QueueOptions{Lease: 2 * time.Millisecond})
	hits := waitHITs(nHITs, replicas)
	if err := q.Post(context.Background(), hits); err != nil {
		t.Fatal(err)
	}

	// Collector: count completions and answer top-up posts for expiries,
	// as the lifecycle manager would.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream := q.Collect(ctx)
	var completed atomic.Int64
	var topUps atomic.Int64
	byID := make(map[int]HIT, len(hits))
	for _, h := range hits {
		byID[h.ID] = h
	}
	need := int64(nHITs * replicas)
	collectorDone := make(chan struct{})
	go func() {
		defer close(collectorDone)
		for {
			select {
			case <-ctx.Done():
				return
			case a := <-stream:
				if a.Expired {
					topUps.Add(1)
					h := byID[a.HIT]
					h.Assignments = 1
					if err := q.Post(context.Background(), []HIT{h}); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if completed.Add(1) == need {
					return
				}
			}
		}
	}()

	var accepted atomic.Int64
	var rejected atomic.Int64
	var wg sync.WaitGroup
	deadline := time.Now().Add(20 * time.Second)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for completed.Load() < need && time.Now().Before(deadline) {
				c, ok, err := q.ClaimWait(ctx, name, 5*time.Millisecond)
				if err != nil {
					return // run cancelled
				}
				if !ok {
					continue
				}
				// Half the workers dawdle past the lease to force expiry
				// races between Answer and the sweep.
				if w%2 == 0 {
					time.Sleep(3 * time.Millisecond)
				}
				var vs []Verdict
				for _, p := range c.HIT.Pairs {
					vs = append(vs, Verdict{A: p.A, B: p.B, Match: true})
				}
				if err := q.Answer(c.Token, vs); err != nil {
					rejected.Add(1) // lease lapsed first: token voided
				} else {
					accepted.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-collectorDone:
	case <-time.After(5 * time.Second):
		t.Fatalf("collector never finished: %d/%d completions (top-ups %d)", completed.Load(), need, topUps.Load())
	}

	if completed.Load() != need {
		t.Fatalf("completed %d assignments; want %d (top-ups %d, rejected %d)",
			completed.Load(), need, topUps.Load(), rejected.Load())
	}
	// Exactly the accepted answers became completions: none lost, none
	// double-delivered.
	if accepted.Load() != need {
		t.Fatalf("workers had %d answers accepted; completions consumed %d", accepted.Load(), need)
	}
}
