package crowd

import (
	"context"
	"errors"
	"math/rand"
	"sort"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/engine"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/record"
)

// Pricing constants from Section 7.1: $0.02 per HIT to the worker plus
// $0.005 platform fee, and 3 assignments per HIT.
const (
	DollarsPerAssignment = 0.025
	DefaultAssignments   = 3
)

// Config parameterizes a crowd run.
type Config struct {
	// Assignments is the replication factor per HIT (default 3).
	Assignments int
	// QualificationTest gates workers through the three-pair screen.
	QualificationTest bool
	// Seed drives all stochastic choices (worker selection, answers).
	Seed int64
	// Parallelism bounds the goroutines executing HITs concurrently.
	// 0 (the default) means GOMAXPROCS. Every HIT draws from its own RNG
	// stream seeded by (Seed, HIT index), so the answers are bit-identical
	// at every parallelism level.
	Parallelism int

	// BaseSeconds is the fixed per-assignment overhead: reading the
	// instructions, loading the page, submitting (default 20).
	BaseSeconds float64
	// SecondsPerPairComparison is the time to tick one pair in a
	// pair-based HIT (default 5).
	SecondsPerPairComparison float64
	// SecondsPerClusterComparison is the time for one implicit comparison
	// in a cluster-based HIT; lower than the pair cost because sorting and
	// colour labels let workers scan records on one screen (default 1.5).
	SecondsPerClusterComparison float64

	// PairAttraction and ClusterAttraction scale how much of the worker
	// pool each interface draws. The paper found pair-based HITs
	// "attracted more workers ... due to the unfamiliar interface of
	// cluster-based HITs" (defaults 1.0 and 0.6).
	PairAttraction    float64
	ClusterAttraction float64
	// FairComparisons is the per-HIT effort workers consider fair at the
	// fixed price; HITs demanding more deter workers proportionally
	// (default 20). This drives Figure 14(b), where 28-pair HITs at $0.02
	// attracted few workers.
	FairComparisons float64

	// Difficulty optionally maps each pair to a judgment difficulty in
	// [0, 1] (0 = trivially obvious, 1 = genuinely ambiguous). Workers'
	// error rates scale with it. When nil every pair has difficulty 1.
	// A natural choice derives difficulty from machine similarity: pairs
	// near the decision boundary are hard, near-identical or clearly
	// unrelated ones are easy.
	Difficulty func(record.Pair) float64
}

// difficultyOf resolves the difficulty of a pair under the config.
func (c *Config) difficultyOf(p record.Pair) float64 {
	if c.Difficulty == nil {
		return 1
	}
	return c.Difficulty(p)
}

// DifficultyFromLikelihood builds a difficulty function from machine
// similarity scores: pairs with similarity near 0.5 are ambiguous even for
// people (difficulty → 1), while near-identical or clearly unrelated pairs
// are obvious (difficulty → 0). Pairs absent from the map get 0.5.
func DifficultyFromLikelihood(likelihood map[record.Pair]float64) func(record.Pair) float64 {
	return func(p record.Pair) float64 {
		s, ok := likelihood[p]
		if !ok {
			return 0.5
		}
		d := 1 - 2*(s-0.5)
		if s < 0.5 {
			d = 1 - 2*(0.5-s)
		}
		if d < 0 {
			return 0
		}
		if d > 1 {
			return 1
		}
		return d
	}
}

func (c *Config) defaults() {
	if c.Assignments <= 0 {
		c.Assignments = DefaultAssignments
	}
	if c.BaseSeconds <= 0 {
		c.BaseSeconds = 20
	}
	if c.SecondsPerPairComparison <= 0 {
		c.SecondsPerPairComparison = 5
	}
	if c.SecondsPerClusterComparison <= 0 {
		c.SecondsPerClusterComparison = 1.5
	}
	if c.PairAttraction <= 0 {
		c.PairAttraction = 1.0
	}
	if c.ClusterAttraction <= 0 {
		c.ClusterAttraction = 0.45
	}
	if c.FairComparisons <= 0 {
		c.FairComparisons = 20
	}
}

// Result is the outcome of crowdsourcing a batch of HITs.
type Result struct {
	// Answers holds every (pair, worker, verdict) triple across all
	// assignments, ready for aggregation.
	Answers []aggregate.Answer
	// AssignmentSeconds lists each assignment's completion time.
	AssignmentSeconds []float64
	// TotalSeconds is the makespan: when the last assignment finished
	// under the worker-scheduling model.
	TotalSeconds float64
	// CostDollars is the total payment (assignments × $0.025).
	CostDollars float64
	// WorkersUsed is the number of distinct workers who completed at
	// least one assignment.
	WorkersUsed int
	// TopUps counts replication top-ups posted for expired assignments
	// (always 0 under the simulated backend).
	TopUps int
	// RetractedHITs counts the HITs withdrawn mid-flight because their
	// verdicts became deducible (ExecuteOptions.Retractable). Their
	// collected assignments are paid for — and counted in CostDollars —
	// but excluded from Answers.
	RetractedHITs int
}

// MedianAssignmentSeconds returns the median per-assignment completion
// time (Figure 13's metric).
func (r *Result) MedianAssignmentSeconds() float64 {
	if len(r.AssignmentSeconds) == 0 {
		return 0
	}
	s := append([]float64(nil), r.AssignmentSeconds...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// RNG stream tags keeping the pair- and cluster-based answer streams
// distinct for the same base seed (the legacy code used Seed+1 / Seed+2).
const (
	streamPairHITs    = 1
	streamClusterHITs = 2
)

// pairSeed derives the RNG seed for one pair's judgments from the base
// seed and the pair's endpoints, with a splitmix64-style finalizer.
// Seeding per pair — rather than per HIT — makes a pair's verdicts a pure
// function of (seed, pair): re-batching the same pairs into different
// HITs, or judging them in a later delta batch, yields bit-identical
// answers. The incremental resolver's verdict cache relies on exactly
// this property to make k-batch resolution reproduce a from-scratch run.
func pairSeed(base int64, p record.Pair) int64 {
	z := uint64(base) ^ 0x9e3779b97f4a7c15*(uint64(p.A)+1) ^ 0xbf58476d1ce4e5b9*(uint64(p.B)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// hitSeed derives the RNG seed for one HIT from the base seed, the stream
// tag, and the HIT's index, with a splitmix64-style finalizer so adjacent
// indexes yield decorrelated streams. Seeding per HIT — rather than
// advancing one shared RNG — is what makes concurrent execution
// bit-identical to sequential: a HIT's randomness no longer depends on how
// many draws earlier HITs consumed.
func hitSeed(base int64, stream, hit int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(hit+1) + 0xbf58476d1ce4e5b9*uint64(stream)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// hitOutcome is one HIT's simulated result, produced independently of
// every other HIT so HITs can execute on any goroutine in any order.
type hitOutcome struct {
	answers []aggregate.Answer
	seconds []float64
	workers []int
	effort  float64
}

// forEachHIT executes fn(h) for every HIT index across min(parallelism,
// len) worker goroutines. fn must only write state owned by index h.
func forEachHIT(n, parallelism int, fn func(h int)) {
	if n == 0 {
		return
	}
	workers := engine.WorkerCount(parallelism, n)
	engine.Workers(workers, func(w int) {
		for h := w; h < n; h += workers {
			fn(h)
		}
	})
}

// RunPairHITs crowdsources pair-based HITs through the asynchronous
// lifecycle against the reference simulated backend: every pair in a HIT
// is replicated to Assignments distinct workers, each answering through
// their confusion matrix. Worker selection and answers draw from a
// per-pair RNG stream (pairSeed), so a pair's verdicts depend only on
// (Config.Seed, pair) — never on which HIT the pair was batched into or
// when that HIT ran. Re-batching the same candidate set therefore
// reproduces the same answers bit-for-bit, the invariant behind the
// incremental resolver's verdict cache. HITs simulate concurrently
// (Config.Parallelism) with deterministic output.
//
// The scheduling model stays at HIT granularity: each HIT still reports
// Assignments completion times (the per-pair workers' mean speed applied
// to the HIT's comparison load) and costs Assignments × $0.025.
func RunPairHITs(hits []hitgen.PairHIT, truth record.PairSet, pop *Population, cfg Config) (*Result, error) {
	cfg.defaults()
	sim, err := NewSimulator(truth, pop, cfg)
	if err != nil {
		return nil, err
	}
	pairLists := make([][]record.Pair, len(hits))
	for i, h := range hits {
		pairLists[i] = h.Pairs
	}
	return ExecuteHITs(context.Background(), sim, PairHITsFromGen(pairLists, cfg.Assignments), ExecuteOptions{})
}

// RunClusterHITs crowdsources cluster-based HITs through the asynchronous
// lifecycle against the reference simulated backend. Each worker labels
// the records of the HIT: the simulator draws noisy pairwise judgments on
// the covered pairs and then transitively closes them (the
// colour-labelling interface of Figure 4 forces records with the same
// label into one entity). The worker's completion time follows the
// Section 6 comparison model applied to their own inferred partition.
func RunClusterHITs(hits []hitgen.ClusterHIT, pairs []record.Pair, truth record.PairSet, pop *Population, cfg Config) (*Result, error) {
	cfg.defaults()
	sim, err := NewSimulator(truth, pop, cfg)
	if err != nil {
		return nil, err
	}
	records := make([][]record.ID, len(hits))
	covered := make([][]record.Pair, len(hits))
	for i, h := range hits {
		records[i] = h.Records
		covered[i] = h.CoveredPairs(pairs)
	}
	return ExecuteHITs(context.Background(), sim, ClusterHITsFromGen(records, covered, cfg.Assignments), ExecuteOptions{})
}

// clusterAnswers simulates one worker completing one cluster-based HIT:
// noisy pairwise judgments on the covered pairs, transitively closed by
// union-find (same label ⇒ same entity), then re-read as per-pair answers.
func clusterAnswers(h hitgen.ClusterHIT, covered []record.Pair, truth record.PairSet, w *Worker, cfg *Config, rng *rand.Rand) []aggregate.Answer {
	idx := make(map[record.ID]int, len(h.Records))
	for i, r := range h.Records {
		idx[r] = i
	}
	parent := make([]int, len(h.Records))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range covered {
		if w.AnswerWithDifficulty(truth.Has(p.A, p.B), cfg.difficultyOf(p), rng) {
			a, b := find(idx[p.A]), find(idx[p.B])
			if a != b {
				parent[a] = b
			}
		}
	}
	out := make([]aggregate.Answer, len(covered))
	for i, p := range covered {
		out[i] = aggregate.Answer{
			Pair:   p,
			Worker: w.ID,
			Match:  find(idx[p.A]) == find(idx[p.B]),
		}
	}
	return out
}

// preparePool applies the qualification test if configured and validates
// pool size against the replication factor.
func preparePool(pop *Population, cfg Config) (*Population, error) {
	pool := pop
	if cfg.QualificationTest {
		pool = pop.QualificationTest(cfg.Seed + 99)
	}
	if pool.Size() < cfg.Assignments {
		return nil, errors.New("crowd: not enough (qualified) workers for the replication factor")
	}
	return pool, nil
}

// pickDistinct samples n distinct workers uniformly.
func pickDistinct(pop *Population, n int, rng *rand.Rand) []*Worker {
	perm := rng.Perm(pop.Size())
	out := make([]*Worker, n)
	for i := 0; i < n; i++ {
		out[i] = pop.Workers[perm[i]]
	}
	return out
}

// effortDiscount models price fairness: HITs demanding more than the fair
// effort at the fixed price deter workers proportionally.
func effortDiscount(avgEffort, fair float64) float64 {
	if avgEffort <= fair || avgEffort <= 0 {
		return 1
	}
	return fair / avgEffort
}

// makespan estimates when all assignments finish: the active worker count
// is the pool scaled by the interface's attraction, and assignments are
// list-scheduled greedily (longest first) onto those workers — the
// classic LPT bound on parallel makespan.
func makespan(assignments []float64, pool *Population, attraction float64) float64 {
	if len(assignments) == 0 {
		return 0
	}
	active := int(float64(pool.Size()) * attraction)
	if active < 1 {
		active = 1
	}
	if active > len(assignments) {
		active = len(assignments)
	}
	sorted := append([]float64(nil), assignments...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	loads := make([]float64, active)
	for _, a := range sorted {
		// Assign to the least-loaded worker.
		min := 0
		for i := 1; i < active; i++ {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += a
	}
	max := loads[0]
	for _, l := range loads[1:] {
		if l > max {
			max = l
		}
	}
	return max
}
