package crowd

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/record"
)

// QueueOptions configures a queue backend.
type QueueOptions struct {
	// Lease is how long a claimed assignment stays reserved for its
	// worker before it expires and is reported for a replication top-up.
	// 0 means claims never expire.
	Lease time.Duration
	// Now overrides the clock (tests inject a fake one). nil = time.Now.
	Now func() time.Time
	// Journal, when non-nil, observes every queue mutation for durable
	// session storage. Callbacks run with the queue lock held.
	Journal Journal
}

// Verdict is one worker-submitted judgment on a pair of a claimed HIT.
type Verdict struct {
	A, B  record.ID
	Match bool
}

// Claimed is a worker's hold on one assignment of an open HIT.
type Claimed struct {
	// Token authenticates the eventual Answer call.
	Token string
	// HIT is the claimed task's content.
	HIT HIT
	// Worker is the claiming worker's name.
	Worker string
	// Deadline is when the claim expires (zero when leases are disabled).
	Deadline time.Time
	// Waited is how long the HIT sat open before this claim, measured
	// from its first posting — the queueing-delay half of claim latency,
	// the number the multi-tenant fairness gate watches per tenant.
	Waited time.Duration

	claimedAt time.Time
}

// OpenHIT describes a claimable task: its content plus how many
// assignments are still open.
type OpenHIT struct {
	HIT
	Open int
}

// Queue is the in-memory crowd backend for live deployments: HITs posted
// by the lifecycle manager are held open for external workers — typically
// talking to the crowderd HTTP API — to claim and answer. Claims carry a
// lease; a lapsed lease surfaces as an expired assignment on the Collect
// stream, which the lifecycle manager answers with a replication top-up.
// A Queue is safe for concurrent use.
type Queue struct {
	mu       sync.Mutex
	opts     QueueOptions
	st       *stream
	hits     map[int]HIT
	open     map[int]int // HIT ID → open (unclaimed) assignments
	order    []int       // HIT IDs in first-post order, for deterministic claims
	claims   map[string]*Claimed
	answered map[int]int             // HIT ID → completed assignments (next slot)
	touched  map[int]map[string]bool // HIT ID → workers who claimed it
	workers  map[string]int          // worker name → interned worker ID
	postedAt map[int]time.Time       // HIT ID → first-post time (claim-wait metric)
	// lapsed remembers expired claims of still-live HITs so an answer
	// racing the sweep — the lease lapsed between the sweep tick and the
	// HTTP handler — can still be credited instead of re-paid: as long as
	// the HIT is live, the replication top-up is unclaimed, and the worker
	// hasn't re-claimed, the late answer takes the top-up's slot.
	lapsed map[string]*Claimed
	// wake is the claimability broadcast: closed and replaced whenever
	// work may have become claimable (a post, or a lapsed lease lifting a
	// worker's bar), so ClaimWait blocks on a channel instead of polling.
	wake chan struct{}
	// listeners are external wake hooks (the cross-session dispatcher)
	// invoked on the same claimability edges. Called with q.mu held —
	// they must be fast and must not call back into the queue.
	listeners []func()
}

// NewQueue creates an empty queue backend.
func NewQueue(opts QueueOptions) *Queue {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Queue{
		opts:     opts,
		st:       newStream(),
		hits:     make(map[int]HIT),
		open:     make(map[int]int),
		claims:   make(map[string]*Claimed),
		answered: make(map[int]int),
		touched:  make(map[int]map[string]bool),
		workers:  make(map[string]int),
		postedAt: make(map[int]time.Time),
		lapsed:   make(map[string]*Claimed),
		wake:     make(chan struct{}),
	}
}

// Notify registers fn to be invoked whenever HITs may have become
// claimable (a post, or a lease expiry lifting a worker's bar). The
// cross-session dispatcher uses it to wake workers blocked in a claim
// that spans queues. fn runs with the queue's lock held: keep it to a
// channel signal or similar, and never call back into the queue.
func (q *Queue) Notify(fn func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.listeners = append(q.listeners, fn)
}

// wakeLocked broadcasts a claimability edge to blocked ClaimWait calls
// and external listeners; the caller holds q.mu.
func (q *Queue) wakeLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
	for _, fn := range q.listeners {
		fn()
	}
}

// Post opens the HITs' assignments for claiming. Re-posting a known HIT
// ID (a replication top-up) adds assignments to the existing task.
func (q *Queue) Post(ctx context.Context, hits []HIT) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.Now()
	for _, h := range hits {
		if _, known := q.hits[h.ID]; !known {
			q.hits[h.ID] = h
			q.order = append(q.order, h.ID)
			q.postedAt[h.ID] = now
		}
		q.open[h.ID] += h.Assignments
	}
	if len(hits) > 0 {
		if j := q.opts.Journal; j != nil {
			j.Posted(hits, now)
		}
		q.wakeLocked()
	}
	return nil
}

// Collect returns the answered-assignment stream.
func (q *Queue) Collect(ctx context.Context) <-chan Assignment {
	return q.st.channel(ctx)
}

// Retract withdraws the given HITs: open assignments close, outstanding
// claims are voided, and all per-HIT bookkeeping is freed. The lifecycle
// manager retracts a run's HITs — answered or not — when the run ends,
// so a long-lived queue absorbing run after run holds state only for the
// HITs currently in flight.
func (q *Queue) Retract(ids []int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, id := range ids {
		delete(q.open, id)
		delete(q.hits, id)
		delete(q.answered, id)
		delete(q.touched, id)
		delete(q.postedAt, id)
	}
	for tok, c := range q.claims {
		if _, live := q.hits[c.HIT.ID]; !live {
			delete(q.claims, tok)
		}
	}
	for tok, c := range q.lapsed {
		if _, live := q.hits[c.HIT.ID]; !live {
			delete(q.lapsed, tok)
		}
	}
	if j := q.opts.Journal; j != nil && len(ids) > 0 {
		j.Retracted(ids)
	}
	live := q.order[:0]
	for _, id := range q.order {
		if _, ok := q.hits[id]; ok {
			live = append(live, id)
		}
	}
	q.order = live
}

// Open lists the claimable HITs in first-post order.
func (q *Queue) Open() []OpenHIT {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweepLocked(q.opts.Now())
	var out []OpenHIT
	for _, id := range q.order {
		if n := q.open[id]; n > 0 {
			out = append(out, OpenHIT{HIT: q.hits[id], Open: n})
		}
	}
	return out
}

// Claim reserves one assignment of the oldest open HIT the worker is
// eligible for, starting its lease. Replicated assignments exist to
// collect *independent* judgments — Dawid–Skene's spammer resistance
// rests on it — so a worker holding a live claim on a HIT, or who has
// already answered it, never gets another of its assignments. A lapsed
// claim lifts the bar again: barring deserters forever could leave a
// topped-up slot no worker may take and hang the resolution, and a
// deserter who returns still contributes at most one answer. The second
// return is false when nothing is claimable by this worker.
func (q *Queue) Claim(worker string) (*Claimed, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.Now()
	q.sweepLocked(now)
	c := q.claimLocked(worker, now)
	return c, c != nil
}

// claimLocked is Claim's core; the caller holds q.mu and has swept.
func (q *Queue) claimLocked(worker string, now time.Time) *Claimed {
	for _, id := range q.order {
		if q.open[id] <= 0 || q.touched[id][worker] {
			continue
		}
		q.open[id]--
		if q.touched[id] == nil {
			q.touched[id] = make(map[string]bool)
		}
		q.touched[id][worker] = true
		c := &Claimed{
			Token:     newToken(),
			HIT:       q.hits[id],
			Worker:    worker,
			Waited:    now.Sub(q.postedAt[id]),
			claimedAt: now,
		}
		if q.opts.Lease > 0 {
			c.Deadline = now.Add(q.opts.Lease)
		}
		q.claims[c.Token] = c
		if j := q.opts.Journal; j != nil {
			j.Claimed(c.Token, id, worker, now, c.Deadline)
		}
		return c
	}
	return nil
}

// ClaimWait is Claim with a bounded long-poll: when nothing is claimable
// by this worker it blocks — on the queue's wake broadcast, not a poll
// loop — until a post or a lapsed lease makes work available, maxWait
// elapses, or ctx is cancelled. maxWait <= 0 degenerates to the
// non-blocking Claim. The second return is false when the wait expired
// with nothing claimable; the error is non-nil only for ctx
// cancellation. An idle worker parked here costs zero requests and is
// woken within channel-close latency of the next post, so claim latency
// is wakeup-bound instead of poll-interval-bound.
func (q *Queue) ClaimWait(ctx context.Context, worker string, maxWait time.Duration) (*Claimed, bool, error) {
	var timeout <-chan time.Time
	if maxWait > 0 {
		t := time.NewTimer(maxWait)
		defer t.Stop()
		timeout = t.C
	}
	for {
		q.mu.Lock()
		now := q.opts.Now()
		q.sweepLocked(now)
		c := q.claimLocked(worker, now)
		wake := q.wake
		q.mu.Unlock()
		if c != nil {
			return c, true, nil
		}
		if maxWait <= 0 {
			return nil, false, nil
		}
		select {
		case <-ctx.Done():
			return nil, false, ctx.Err()
		case <-timeout:
			return nil, false, nil
		case <-wake:
		}
	}
}

// Depth reports the queue's open backlog: claimable HITs and the open
// (unclaimed) assignments across them — the per-tenant queue-depth
// gauges the metrics endpoint serves.
func (q *Queue) Depth() (hits, assignments int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweepLocked(q.opts.Now())
	for _, n := range q.open {
		if n > 0 {
			hits++
			assignments += n
		}
	}
	return hits, assignments
}

// ClaimLive reports whether the token still names an outstanding claim.
// The cross-session dispatcher uses it to purge its token→session index
// of claims that lapsed without an Answer.
func (q *Queue) ClaimLive(token string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweepLocked(q.opts.Now())
	_, ok := q.claims[token]
	return ok
}

// Answer submits a claimed assignment's verdicts. Every pair of the HIT
// must be judged; for cluster HITs the verdicts are transitively closed
// over the HIT's records (same-entity labels are an equivalence), exactly
// as the simulator treats a worker's colour labelling. The completed
// assignment is delivered on the Collect stream.
func (q *Queue) Answer(token string, verdicts []Verdict) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.Now()
	q.sweepLocked(now)
	c, ok := q.claims[token]
	late := false
	if !ok {
		// The lease may have lapsed between the sweep and this call — the
		// worker did the judging work; dropping the answer would re-pay
		// another worker for the same pair via the replication top-up.
		// Credit it as long as the HIT is still live, the top-up slot is
		// posted but unclaimed (open > 0), and the worker hasn't re-claimed
		// the HIT (a live re-claim means this token's work is superseded).
		// Crediting with open == 0 would add a slot beyond the replication
		// target and pay one extra assignment, so that window stays closed.
		if lc, lok := q.lapsed[token]; lok {
			id := lc.HIT.ID
			if _, liveHIT := q.hits[id]; liveHIT && q.open[id] > 0 && !q.touched[id][lc.Worker] {
				c, ok, late = lc, true, true
			}
		}
		if !ok {
			return fmt.Errorf("crowd: unknown or expired claim token %q", token)
		}
	}
	byPair := make(map[record.Pair]bool, len(verdicts))
	for _, v := range verdicts {
		byPair[record.MakePair(v.A, v.B)] = v.Match
	}
	h := c.HIT
	for _, p := range h.Pairs {
		if _, ok := byPair[p]; !ok {
			return fmt.Errorf("crowd: answer is missing a verdict for pair (%d,%d)", p.A, p.B)
		}
	}
	if h.Kind == ClusterKind {
		byPair = closeOverRecords(h, byPair)
	}
	if late {
		// Commit the late credit only now that the answer validated: an
		// invalid late answer must not consume the top-up slot — the
		// lapsed entry stays, and the worker may retry with a full answer.
		q.open[h.ID]--
		if q.touched[h.ID] == nil {
			q.touched[h.ID] = make(map[string]bool)
		}
		q.touched[h.ID][c.Worker] = true
		delete(q.lapsed, token)
	}
	wid, ok := q.workers[c.Worker]
	if !ok {
		wid = len(q.workers)
		q.workers[c.Worker] = wid
	}
	a := Assignment{
		HIT:     h.ID,
		Slot:    q.answered[h.ID],
		Worker:  wid,
		Seconds: now.Sub(c.claimedAt).Seconds(),
	}
	q.answered[h.ID]++
	a.Answers = make([]aggregate.Answer, len(h.Pairs))
	for i, p := range h.Pairs {
		a.Answers[i] = aggregate.Answer{Pair: p, Worker: wid, Match: byPair[p]}
	}
	delete(q.claims, token)
	if j := q.opts.Journal; j != nil {
		j.Answered(token, h.ID, c.Worker, a, late)
	}
	q.st.push(a)
	return nil
}

// Sweep expires lapsed claims now; also invoked implicitly by every
// Open/Claim/Answer. A long-idle queue with no worker traffic should be
// swept periodically (crowderd runs a ticker) so the lifecycle manager
// hears about expiries promptly.
func (q *Queue) Sweep() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweepLocked(q.opts.Now())
}

// sweepLocked drops claims past their deadline and reports each as an
// expired assignment. The slot is not silently re-opened: the lifecycle
// manager owns replication policy and responds with a top-up Post.
func (q *Queue) sweepLocked(now time.Time) {
	if q.opts.Lease <= 0 {
		return
	}
	var lapsed []string
	for tok, c := range q.claims {
		if now.After(c.Deadline) {
			lapsed = append(lapsed, tok)
		}
	}
	sort.Strings(lapsed)
	var expired []ExpiredClaim
	for _, tok := range lapsed {
		c := q.claims[tok]
		delete(q.claims, tok)
		// The deserter may claim this HIT again later (they still hold no
		// answer on it); keeping the bar could make the slot permanently
		// unclaimable once every worker has lapsed on it.
		delete(q.touched[c.HIT.ID], c.Worker)
		// Keep the dead claim around: an answer already in flight when the
		// lease lapsed can still be credited against the top-up slot.
		q.lapsed[tok] = c
		expired = append(expired, ExpiredClaim{Token: tok, HIT: c.HIT.ID, Worker: c.Worker})
		q.st.push(Assignment{HIT: c.HIT.ID, Worker: -1, Expired: true})
	}
	if j := q.opts.Journal; j != nil && len(expired) > 0 {
		j.Expired(expired)
	}
	if len(lapsed) > 0 {
		// A lifted bar can make an already-open slot claimable by the
		// lapsed worker; blocked claimers must re-check.
		q.wakeLocked()
	}
}

// WorkerID returns the interned numeric ID for a worker name, interning
// it on first use. Answers aggregate per numeric worker ID, so a worker's
// confusion matrix spans every assignment they answered.
func (q *Queue) WorkerID(worker string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	wid, ok := q.workers[worker]
	if !ok {
		wid = len(q.workers)
		q.workers[worker] = wid
	}
	return wid
}

// newToken returns an unguessable claim token. The token is the only
// credential authenticating an Answer call — over the crowderd HTTP API
// a predictable token would let any client hijack another worker's
// claimed assignment and forge its verdicts.
func newToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("crowd: claim token entropy unavailable: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// closeOverRecords applies the cluster-interface semantics to raw pair
// verdicts: union-find over the HIT's records joins every matched pair,
// then each covered pair is re-read from the closure.
func closeOverRecords(h HIT, byPair map[record.Pair]bool) map[record.Pair]bool {
	idx := make(map[record.ID]int, len(h.Records))
	for i, r := range h.Records {
		idx[r] = i
	}
	parent := make([]int, len(h.Records))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, p := range h.Pairs {
		if byPair[p] {
			ia, okA := idx[p.A]
			ib, okB := idx[p.B]
			if okA && okB {
				a, b := find(ia), find(ib)
				if a != b {
					parent[a] = b
				}
			}
		}
	}
	out := make(map[record.Pair]bool, len(h.Pairs))
	for _, p := range h.Pairs {
		ia, okA := idx[p.A]
		ib, okB := idx[p.B]
		out[p] = okA && okB && find(ia) == find(ib)
	}
	return out
}
