// Package crowd simulates the Amazon Mechanical Turk marketplace of
// Section 7.1: a population of workers with heterogeneous reliability
// (including spammers), an optional qualification test, replicated
// assignments (each HIT done by multiple distinct workers), per-assignment
// completion-time modelling based on the Section 6 comparison counts, and
// a list-scheduling makespan model capturing worker attraction (pair-based
// interfaces draw more workers than the unfamiliar cluster-based one —
// the effect behind Figure 14).
//
// The paper's experiments ran on live AMT; this simulator exposes the same
// knobs (qualification test on/off, HIT type, assignment replication) so
// every Section 7.3/7.4 figure can be regenerated with the mechanisms the
// paper identifies producing the same qualitative shapes.
package crowd

import (
	"math/rand"
)

// WorkerClass categorizes simulated workers.
type WorkerClass int

const (
	// Reliable workers answer carefully (accuracy ≈ 0.9–0.98).
	Reliable WorkerClass = iota
	// Sloppy workers rush (accuracy ≈ 0.75–0.9).
	Sloppy
	// Spammer workers answer randomly or with a fixed bias, the malicious
	// behaviour Section 7.1's qualification test exists to weed out.
	Spammer
)

func (c WorkerClass) String() string {
	switch c {
	case Reliable:
		return "reliable"
	case Sloppy:
		return "sloppy"
	case Spammer:
		return "spammer"
	default:
		return "unknown"
	}
}

// Worker is one simulated crowd worker.
type Worker struct {
	ID    int
	Class WorkerClass
	// TPR is P(answers "match" | pair is a true match).
	TPR float64
	// TNR is P(answers "non-match" | pair is a true non-match).
	TNR float64
	// Speed scales task completion time (1.0 = average; higher is slower).
	Speed float64
}

// Answer returns the worker's (noisy) verdict for a pair whose true status
// is isMatch.
func (w *Worker) Answer(isMatch bool, rng *rand.Rand) bool {
	return w.AnswerWithDifficulty(isMatch, 1, rng)
}

// AnswerWithDifficulty returns the worker's verdict for a pair with the
// given difficulty in [0, 1]. Difficulty scales a conscientious worker's
// error probability: obvious pairs (near-identical duplicates, or clearly
// unrelated records) are rarely misjudged, while borderline pairs carry
// the worker's full error rate. Spammers ignore content, so their answer
// distribution is unaffected by difficulty — which is exactly why the
// qualification test and EM aggregation are needed.
func (w *Worker) AnswerWithDifficulty(isMatch bool, difficulty float64, rng *rand.Rand) bool {
	if difficulty < 0 {
		difficulty = 0
	}
	if difficulty > 1 {
		difficulty = 1
	}
	scale := difficulty
	if w.Class == Spammer {
		scale = 1
	} else {
		// Even trivial pairs suffer residual slips (misclicks, fatigue).
		scale = 0.1 + 0.9*difficulty
	}
	if isMatch {
		errProb := (1 - w.TPR) * scale
		return rng.Float64() >= errProb
	}
	errProb := (1 - w.TNR) * scale
	return rng.Float64() < errProb
}

// NoSpammers is the SpammerRate sentinel for an explicitly clean,
// spammer-free pool. The zero value keeps the 0.12 default (so the empty
// options literal behaves as before); any negative value means exactly
// zero spammers.
const NoSpammers = -1.0

// PopulationOptions configures worker-pool generation.
type PopulationOptions struct {
	// Size is the number of workers (default 120).
	Size int
	// SpammerRate is the fraction of spammers. 0 means the default 0.12;
	// a negative value (NoSpammers) means a clean pool with no spammers.
	SpammerRate float64
	// SloppyRate is the fraction of sloppy workers (default 0.20).
	SloppyRate float64
}

func (o *PopulationOptions) defaults() {
	if o.Size <= 0 {
		o.Size = 120
	}
	if o.SpammerRate < 0 {
		o.SpammerRate = 0
	} else if o.SpammerRate == 0 {
		o.SpammerRate = 0.12
	}
	if o.SloppyRate == 0 {
		o.SloppyRate = 0.20
	}
}

// Population is a pool of simulated workers.
type Population struct {
	Workers []*Worker
}

// NewPopulation generates a deterministic worker pool: SpammerRate
// spammers, SloppyRate sloppy workers, the rest reliable.
func NewPopulation(seed int64, opts PopulationOptions) *Population {
	opts.defaults()
	rng := rand.New(rand.NewSource(seed))
	p := &Population{}
	for i := 0; i < opts.Size; i++ {
		w := &Worker{ID: i, Speed: 0.7 + 0.6*rng.Float64()}
		r := rng.Float64()
		switch {
		case r < opts.SpammerRate:
			w.Class = Spammer
			switch rng.Intn(3) {
			case 0: // coin-flipper
				w.TPR, w.TNR = 0.5, 0.5
			case 1: // always answers "match"
				w.TPR, w.TNR = 0.95, 0.05
			default: // always answers "non-match"
				w.TPR, w.TNR = 0.05, 0.95
			}
		case r < opts.SpammerRate+opts.SloppyRate:
			w.Class = Sloppy
			w.TPR = 0.75 + 0.15*rng.Float64()
			w.TNR = 0.75 + 0.15*rng.Float64()
			w.Speed *= 0.8 // sloppy workers are fast
		default:
			w.Class = Reliable
			w.TPR = 0.90 + 0.08*rng.Float64()
			w.TNR = 0.90 + 0.08*rng.Float64()
		}
		p.Workers = append(p.Workers, w)
	}
	return p
}

// QualificationTest simulates Section 7.1's screening: each worker answers
// three record pairs; only workers getting all three right may work.
// A worker's chance per question is their average accuracy, so spammers
// pass with probability ≈ 0.5³ while reliable workers pass with ≈ 0.85.
func (p *Population) QualificationTest(seed int64) *Population {
	rng := rand.New(rand.NewSource(seed))
	qualified := &Population{}
	// The three test pairs: one match, two non-matches (a typical mix).
	testTruth := []bool{true, false, false}
	for _, w := range p.Workers {
		pass := true
		for _, isMatch := range testTruth {
			if w.Answer(isMatch, rng) != isMatch {
				pass = false
				break
			}
		}
		if pass {
			qualified.Workers = append(qualified.Workers, w)
		}
	}
	return qualified
}

// Size returns the number of workers in the pool.
func (p *Population) Size() int { return len(p.Workers) }

// CountClass returns the number of workers of the given class.
func (p *Population) CountClass(c WorkerClass) int {
	n := 0
	for _, w := range p.Workers {
		if w.Class == c {
			n++
		}
	}
	return n
}
