package crowd

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/record"
)

// verdictsFor builds a truthful answer for a claimed HIT without the
// t.Fatal of truthfulAnswer, so goroutines can submit it.
func verdictsFor(c *Claimed, truth record.PairSet) []Verdict {
	var vs []Verdict
	for _, p := range c.HIT.Pairs {
		vs = append(vs, Verdict{A: p.A, B: p.B, Match: truth.Has(p.A, p.B)})
	}
	return vs
}

// TestQueueLateAnswerCredited: a worker whose lease lapsed between the
// sweep and their POST /answer did the judging work; as long as the
// replication top-up is posted but unclaimed, the late answer takes the
// top-up's slot instead of being dropped (which would pay a second
// worker for the same pairs).
func TestQueueLateAnswerCredited(t *testing.T) {
	pairs := testPairs()[:2]
	truth := testTruth()

	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	q := NewQueue(QueueOptions{Lease: time.Minute, Now: clock})
	hits := PairHITsFromGen([][]record.Pair{pairs}, 1)

	var res *Result
	var execErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, execErr = ExecuteHITs(context.Background(), q, hits, ExecuteOptions{})
	}()

	var slow *Claimed
	waitFor(t, func() bool { var ok bool; slow, ok = q.Claim("slow"); return ok })

	// The lease lapses; the sweep reports the expiry and the lifecycle
	// manager posts a replication top-up.
	advance(2 * time.Minute)
	q.Sweep()
	waitFor(t, func() bool { return len(q.Open()) > 0 })

	// An incomplete late answer must NOT consume the top-up slot.
	if err := q.Answer(slow.Token, nil); err == nil {
		t.Fatal("incomplete late answer should be rejected")
	}
	if len(q.Open()) == 0 {
		t.Fatal("rejected late answer consumed the top-up slot")
	}

	// The complete late answer is credited against the top-up.
	if err := q.Answer(slow.Token, verdictsFor(slow, truth)); err != nil {
		t.Fatalf("late answer rejected: %v", err)
	}

	<-done
	if execErr != nil {
		t.Fatal(execErr)
	}
	if res.TopUps != 1 {
		t.Errorf("TopUps = %d; want 1", res.TopUps)
	}
	// Exactly one paid assignment: the late answer filled the top-up, so
	// nobody else was paid for the same pairs.
	if want := len(pairs); len(res.Answers) != want {
		t.Fatalf("got %d answers; want %d (single payment)", len(res.Answers), want)
	}
	if res.CostDollars != DollarsPerAssignment {
		t.Errorf("CostDollars = %v; want one assignment's pay", res.CostDollars)
	}
}

// TestQueueLateAnswerRaceSinglePayment races the lapsed worker's late
// answer against a replacement worker claiming (and answering) the
// replication top-up. Exactly one of them may be paid — run under -race,
// this pins both the data-race freedom and the no-double-payment
// invariant of the late-credit window.
func TestQueueLateAnswerRaceSinglePayment(t *testing.T) {
	pairs := testPairs()[:2]
	truth := testTruth()

	for round := 0; round < 20; round++ {
		var mu sync.Mutex
		now := time.Unix(1000, 0)
		clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
		advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

		q := NewQueue(QueueOptions{Lease: time.Minute, Now: clock})
		hits := PairHITsFromGen([][]record.Pair{pairs}, 1)

		var res *Result
		var execErr error
		done := make(chan struct{})
		go func() {
			defer close(done)
			res, execErr = ExecuteHITs(context.Background(), q, hits, ExecuteOptions{})
		}()

		var slow *Claimed
		waitFor(t, func() bool { var ok bool; slow, ok = q.Claim("slow"); return ok })
		advance(2 * time.Minute)
		q.Sweep()
		waitFor(t, func() bool { return len(q.Open()) > 0 })

		var wg sync.WaitGroup
		var lateErr, replErr error
		var replacementClaimed bool
		wg.Add(2)
		go func() {
			defer wg.Done()
			lateErr = q.Answer(slow.Token, verdictsFor(slow, truth))
		}()
		go func() {
			defer wg.Done()
			if c, ok := q.Claim("replacement"); ok {
				replacementClaimed = true
				replErr = q.Answer(c.Token, verdictsFor(c, truth))
			}
		}()
		wg.Wait()

		// Whichever path won, the loser must have been turned away: a
		// credited late answer leaves nothing to claim; a faster
		// replacement claim closes the late-credit window.
		if lateErr == nil && replacementClaimed {
			t.Fatalf("round %d: both the late answer and the replacement were paid", round)
		}
		if lateErr != nil && !replacementClaimed {
			t.Fatalf("round %d: late answer rejected (%v) but nobody claimed the top-up", round, lateErr)
		}
		if replErr != nil {
			t.Fatalf("round %d: replacement's answer rejected: %v", round, replErr)
		}

		<-done
		if execErr != nil {
			t.Fatalf("round %d: %v", round, execErr)
		}
		if want := len(pairs); len(res.Answers) != want {
			t.Fatalf("round %d: got %d answers; want %d (single payment)", round, len(res.Answers), want)
		}
		if res.CostDollars != DollarsPerAssignment {
			t.Fatalf("round %d: CostDollars = %v; want one assignment's pay", round, res.CostDollars)
		}
	}
}
