package crowd

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/record"
)

// truthfulAnswer answers a claimed HIT's pairs according to ground truth.
func truthfulAnswer(t *testing.T, q *Queue, c *Claimed, truth record.PairSet) {
	t.Helper()
	var vs []Verdict
	for _, p := range c.HIT.Pairs {
		vs = append(vs, Verdict{A: p.A, B: p.B, Match: truth.Has(p.A, p.B)})
	}
	if err := q.Answer(c.Token, vs); err != nil {
		t.Fatalf("Answer(%s): %v", c.Token, err)
	}
}

// drainQueue answers every open assignment with the given worker pool,
// round-robin, until nothing is claimable.
func drainQueue(t *testing.T, q *Queue, truth record.PairSet, workers []string) {
	t.Helper()
	w := 0
	for {
		c, ok := q.Claim(workers[w%len(workers)])
		if !ok {
			return
		}
		w++
		truthfulAnswer(t, q, c, truth)
	}
}

// TestQueueBackendRoundTrip drives the full async lifecycle against the
// queue backend: the manager posts, external workers claim and answer
// with ground truth, and the assembled result contains every replica.
func TestQueueBackendRoundTrip(t *testing.T) {
	pairs := testPairs()
	truth := testTruth()
	q := NewQueue(QueueOptions{})

	hits := PairHITsFromGen([][]record.Pair{pairs[:3], pairs[3:]}, 2)

	var res *Result
	var execErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, execErr = ExecuteHITs(context.Background(), q, hits, ExecuteOptions{})
	}()

	// Workers drain the queue; claims may race the Post, so poll.
	deadline := time.After(5 * time.Second)
	answered := 0
	for answered < 4 { // 2 HITs × 2 assignments
		select {
		case <-deadline:
			t.Fatal("timed out answering HITs")
		default:
		}
		c, ok := q.Claim("w" + string(rune('0'+answered)))
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		truthfulAnswer(t, q, c, truth)
		answered++
	}
	<-done
	if execErr != nil {
		t.Fatal(execErr)
	}
	if want := 2 * len(pairs); len(res.Answers) != want {
		t.Fatalf("got %d answers; want %d", len(res.Answers), want)
	}
	for _, a := range res.Answers {
		if a.Match != truth.Has(a.Pair.A, a.Pair.B) {
			t.Errorf("truthful worker's answer for %v recorded wrong", a.Pair)
		}
	}
	if res.WorkersUsed != 4 {
		t.Errorf("WorkersUsed = %d; want 4", res.WorkersUsed)
	}
	if res.CostDollars != 4*DollarsPerAssignment {
		t.Errorf("CostDollars = %v", res.CostDollars)
	}
}

// TestQueueLeaseExpiryTopUp: a claim whose lease lapses surfaces as an
// expired assignment, and the lifecycle manager re-posts a replication
// top-up that another worker then completes.
func TestQueueLeaseExpiryTopUp(t *testing.T) {
	pairs := testPairs()[:2]
	truth := testTruth()

	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	q := NewQueue(QueueOptions{Lease: time.Minute, Now: clock})
	hits := PairHITsFromGen([][]record.Pair{pairs}, 2)

	var res *Result
	var execErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, execErr = ExecuteHITs(context.Background(), q, hits, ExecuteOptions{})
	}()

	// First worker claims and walks away.
	var lazy *Claimed
	waitFor(t, func() bool { var ok bool; lazy, ok = q.Claim("lazy"); return ok })

	// Second worker claims the other slot and answers.
	var c *Claimed
	waitFor(t, func() bool { var ok bool; c, ok = q.Claim("diligent"); return ok })
	truthfulAnswer(t, q, c, truth)

	// The lease lapses; the sweep reports it and the manager tops up.
	advance(2 * time.Minute)
	q.Sweep()

	// The lazy worker's token is now dead.
	if err := q.Answer(lazy.Token, nil); err == nil {
		t.Error("expired claim token should be rejected")
	}

	// A replacement worker picks up the topped-up assignment.
	var c2 *Claimed
	waitFor(t, func() bool { var ok bool; c2, ok = q.Claim("replacement"); return ok })
	truthfulAnswer(t, q, c2, truth)

	<-done
	if execErr != nil {
		t.Fatal(execErr)
	}
	if res.TopUps != 1 {
		t.Errorf("TopUps = %d; want 1", res.TopUps)
	}
	if want := 2 * len(pairs); len(res.Answers) != want {
		t.Fatalf("got %d answers; want %d", len(res.Answers), want)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestExecuteHITsCancellation: cancelling the context mid-run returns the
// context error plus the partial result of everything collected so far,
// and retracts what is still open from the queue.
func TestExecuteHITsCancellation(t *testing.T) {
	pairs := testPairs()
	truth := testTruth()
	q := NewQueue(QueueOptions{})
	hits := PairHITsFromGen([][]record.Pair{pairs[:3], pairs[3:]}, 1)

	ctx, cancel := context.WithCancel(context.Background())
	var res *Result
	var execErr error
	done := make(chan struct{})
	firstComplete := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(done)
		res, execErr = ExecuteHITs(ctx, q, hits, ExecuteOptions{
			OnProgress: func(p Progress) {
				if p.CompletedHITs == 1 {
					once.Do(func() { close(firstComplete) })
				}
			},
		})
	}()

	// Answer the first HIT only; cancel once the manager absorbed it.
	var c *Claimed
	waitFor(t, func() bool { var ok bool; c, ok = q.Claim("w0"); return ok })
	truthfulAnswer(t, q, c, truth)
	<-firstComplete
	cancel()
	<-done

	if !errors.Is(execErr, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", execErr)
	}
	if res == nil {
		t.Fatal("cancelled run should still return the partial result")
	}
	if len(res.Answers) != 3 {
		t.Errorf("partial result has %d answers; want 3 (the completed HIT)", len(res.Answers))
	}
	// The unfinished HIT was retracted: nothing is claimable.
	if _, ok := q.Claim("w1"); ok {
		t.Error("cancelled run left HITs claimable in the queue")
	}
}

// answeredCount reports how many assignments have been answered (test
// hook).
func (q *Queue) answeredCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, c := range q.answered {
		n += c
	}
	return n
}

// TestLifecycleStateMachine traces one HIT through posted → answering →
// complete via the progress hook.
func TestLifecycleStateMachine(t *testing.T) {
	pairs := testPairs()[:2]
	truth := testTruth()
	q := NewQueue(QueueOptions{})
	hits := PairHITsFromGen([][]record.Pair{pairs}, 2)

	var mu sync.Mutex
	var states []HITState
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := ExecuteHITs(context.Background(), q, hits, ExecuteOptions{
			OnProgress: func(p Progress) {
				mu.Lock()
				states = append(states, p.State)
				mu.Unlock()
			},
			Interim: true,
		})
		if err != nil {
			t.Error(err)
		}
	}()
	for i := 0; i < 2; i++ {
		worker := fmt.Sprintf("w%d", i)
		var c *Claimed
		waitFor(t, func() bool { var ok bool; c, ok = q.Claim(worker); return ok })
		truthfulAnswer(t, q, c, truth)
	}
	<-done

	want := []HITState{HITPosted, HITAnswering, HITComplete}
	if len(states) != len(want) {
		t.Fatalf("state trace = %v; want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state trace = %v; want %v", states, want)
		}
	}
}

// TestInterimAggregation: the interim posterior over a completed HIT's
// truthful answers already decides its pairs correctly while the batch is
// still in flight.
func TestInterimAggregation(t *testing.T) {
	pairs := testPairs()
	truth := testTruth()
	q := NewQueue(QueueOptions{})
	hits := PairHITsFromGen([][]record.Pair{pairs[:3], pairs[3:]}, 3)

	var mu sync.Mutex
	interimSeen := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := ExecuteHITs(context.Background(), q, hits, ExecuteOptions{
			Interim: true,
			OnProgress: func(p Progress) {
				if p.State != HITComplete || p.CompletedHITs == p.TotalHITs {
					return
				}
				mu.Lock()
				defer mu.Unlock()
				interimSeen = true
				for pr, prob := range p.Interim {
					if (prob >= 0.5) != truth.Has(pr.A, pr.B) {
						t.Errorf("interim posterior misjudges %v: %v", pr, prob)
					}
				}
			},
		})
		if err != nil {
			t.Error(err)
		}
	}()
	drainWorkers := []string{"a", "b", "c"}
	waitFor(t, func() bool {
		drainQueue(t, q, truth, drainWorkers)
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
	mu.Lock()
	defer mu.Unlock()
	if !interimSeen {
		t.Error("no interim aggregation event observed")
	}
}

// TestSimulatorVirtualClock: the simulator's Collect stream is ordered by
// simulated completion time — the virtual clock — not by HIT index.
func TestSimulatorVirtualClock(t *testing.T) {
	pairs := testPairs()
	truth := testTruth()
	pop := NewPopulation(1, PopulationOptions{Size: 60})
	sim, err := NewSimulator(truth, pop, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	hits := PairHITsFromGen([][]record.Pair{pairs[:2], pairs[2:4], pairs[4:]}, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := sim.Collect(ctx)
	if err := sim.Post(ctx, hits); err != nil {
		t.Fatal(err)
	}
	last := -1.0
	for i := 0; i < 9; i++ { // 3 HITs × 3 assignments
		a := <-ch
		if a.Seconds < last {
			t.Fatalf("assignment %d out of virtual-clock order: %v after %v", i, a.Seconds, last)
		}
		last = a.Seconds
	}
}

// TestClusterKindQueueClosure: answering a cluster HIT through the queue
// transitively closes the verdicts over the HIT's records.
func TestClusterKindQueueClosure(t *testing.T) {
	recs := []record.ID{0, 1, 2}
	covered := []record.Pair{mk(0, 1), mk(1, 2), mk(0, 2)}
	q := NewQueue(QueueOptions{})
	hits := ClusterHITsFromGen([][]record.ID{recs}, [][]record.Pair{covered}, 1)

	var res *Result
	done := make(chan struct{})
	go func() {
		defer close(done)
		var err error
		res, err = ExecuteHITs(context.Background(), q, hits, ExecuteOptions{})
		if err != nil {
			t.Error(err)
		}
	}()
	var c *Claimed
	waitFor(t, func() bool { var ok bool; c, ok = q.Claim("w"); return ok })
	// Worker says (0,1) and (1,2) match but (0,2) does not — transitivity
	// must overrule the inconsistency.
	err := q.Answer(c.Token, []Verdict{
		{A: 0, B: 1, Match: true},
		{A: 1, B: 2, Match: true},
		{A: 0, B: 2, Match: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	got := map[record.Pair]bool{}
	for _, a := range res.Answers {
		got[a.Pair] = a.Match
	}
	if !got[mk(0, 2)] {
		t.Error("transitive closure should force (0,2) to match")
	}
}

// TestQueueWorkerDistinctness: replicated assignments collect independent
// judgments — a worker never holds two live claims on the same HIT and
// never answers it twice. A lapsed claim lifts the bar (otherwise a
// topped-up slot could become permanently unclaimable), but an answered
// HIT stays barred to its answerer.
func TestQueueWorkerDistinctness(t *testing.T) {
	pairs := testPairs()[:2]
	truth := testTruth()
	q := NewQueue(QueueOptions{})
	if err := q.Post(context.Background(), PairHITsFromGen([][]record.Pair{pairs}, 3)); err != nil {
		t.Fatal(err)
	}
	c1, ok := q.Claim("alice")
	if !ok {
		t.Fatal("first claim failed")
	}
	if _, ok := q.Claim("alice"); ok {
		t.Fatal("alice claimed a second assignment of the same HIT")
	}
	if _, ok := q.Claim("bob"); !ok {
		t.Fatal("a different worker should claim the next slot")
	}
	// Once alice has answered, she stays barred from the HIT.
	truthfulAnswer(t, q, c1, truth)
	if _, ok := q.Claim("alice"); ok {
		t.Fatal("alice claimed a HIT she already answered")
	}

	// Expiry lifts the bar: the only available worker lapsing must not
	// leave the topped-up slot unclaimable forever.
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	q2 := NewQueue(QueueOptions{Lease: time.Minute, Now: func() time.Time { mu.Lock(); defer mu.Unlock(); return now }})
	if err := q2.Post(context.Background(), PairHITsFromGen([][]record.Pair{pairs}, 1)); err != nil {
		t.Fatal(err)
	}
	if _, ok := q2.Claim("lazy"); !ok {
		t.Fatal("claim failed")
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	q2.Sweep()
	if oh := q2.Open(); len(oh) != 0 {
		t.Fatal("expired slot should not silently re-open")
	}
	// The manager would top up; simulate it.
	var hits []HIT
	for _, h := range q2.hits {
		h.Assignments = 1
		hits = append(hits, h)
	}
	if err := q2.Post(context.Background(), hits); err != nil {
		t.Fatal(err)
	}
	if _, ok := q2.Claim("lazy"); !ok {
		t.Fatal("the returned deserter should be able to serve the topped-up slot")
	}
}

// TestQueueAnswerValidation: incomplete verdicts and unknown tokens are
// rejected.
func TestQueueAnswerValidation(t *testing.T) {
	pairs := testPairs()[:2]
	q := NewQueue(QueueOptions{})
	if err := q.Post(context.Background(), PairHITsFromGen([][]record.Pair{pairs}, 1)); err != nil {
		t.Fatal(err)
	}
	c, ok := q.Claim("w")
	if !ok {
		t.Fatal("claim failed")
	}
	if err := q.Answer(c.Token, []Verdict{{A: pairs[0].A, B: pairs[0].B, Match: true}}); err == nil {
		t.Error("partial verdicts should be rejected")
	}
	if err := q.Answer("bogus", nil); err == nil {
		t.Error("unknown token should be rejected")
	}
}

// TestRunPairHITsMatchesLegacySnapshot pins the refactor: the async
// lifecycle over the simulated backend must reproduce the exact answer
// stream the synchronous executor produced (the pre-refactor snapshot is
// re-derived from the per-pair RNG construction, which did not change).
func TestRunPairHITsMatchesLegacySnapshot(t *testing.T) {
	pairs := testPairs()
	truth := testTruth()
	pop := NewPopulation(1, PopulationOptions{Size: 60})
	cfg := Config{Seed: 11}
	cfg.defaults()
	pool, err := preparePool(pop, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := hitgen.GeneratePairHITs(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPairHITs(hits, truth, pop, Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the legacy inline computation, pair-major per HIT.
	var i int
	for _, h := range hits {
		for _, p := range h.Pairs {
			rng := rand.New(rand.NewSource(pairSeed(cfg.Seed, p)))
			isMatch := truth.Has(p.A, p.B)
			for _, w := range pickDistinct(pool, cfg.Assignments, rng) {
				want := w.AnswerWithDifficulty(isMatch, cfg.difficultyOf(p), rng)
				a := res.Answers[i]
				if a.Pair != p || a.Worker != w.ID || a.Match != want {
					t.Fatalf("answer %d = %+v; want pair %v worker %d match %v", i, a, p, w.ID, want)
				}
				i++
			}
		}
	}
	if i != len(res.Answers) {
		t.Fatalf("answer count %d; reference %d", len(res.Answers), i)
	}
}
