package crowd

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Journal observes queue-backend state mutations for durable session
// storage. Callbacks fire with the queue's lock held — implementations
// must be fast, must not call back into the queue, and must not block on
// the queue's other methods. Errors are the journal's problem: a durable
// store surfaces write failures from its own Log path, not through the
// queue.
type Journal interface {
	// Posted reports HITs opened (or topped up) at time at.
	Posted(hits []HIT, at time.Time)
	// Claimed reports a new lease.
	Claimed(token string, hit int, worker string, at, deadline time.Time)
	// Answered reports a completed assignment. late marks a lapsed-lease
	// answer credited before its replication top-up was claimed.
	Answered(token string, hit int, worker string, a Assignment, late bool)
	// Expired reports leases dropped by a sweep.
	Expired(claims []ExpiredClaim)
	// Retracted reports withdrawn HITs.
	Retracted(ids []int)
}

// ExpiredClaim identifies one lapsed lease.
type ExpiredClaim struct {
	Token  string `json:"tok"`
	HIT    int    `json:"hit"`
	Worker string `json:"worker"`
}

// ClaimSnapshot is one lease's persisted form.
type ClaimSnapshot struct {
	Token     string    `json:"tok"`
	HIT       int       `json:"hit"`
	Worker    string    `json:"worker"`
	ClaimedAt time.Time `json:"claimed_at"`
	Deadline  time.Time `json:"deadline,omitempty"`
}

// QueueSnapshot is a queue backend's full persisted state. Claims whose
// deadlines passed while the process was down restore as-is: the first
// sweep after recovery expires them through the normal lifecycle, so a
// crash surfaces to the engine exactly like a lease lapse.
type QueueSnapshot struct {
	HITs     []HIT             `json:"hits"`
	Open     map[int]int       `json:"open"`
	Order    []int             `json:"order"`
	Answered map[int]int       `json:"answered,omitempty"`
	Touched  map[int][]string  `json:"touched,omitempty"`
	PostedAt map[int]time.Time `json:"posted_at,omitempty"`
	Workers  []string          `json:"workers,omitempty"` // index = interned worker ID
	Claims   []ClaimSnapshot   `json:"claims,omitempty"`
	Lapsed   []ClaimSnapshot   `json:"lapsed,omitempty"`
	// Collected holds completed assignments of HITs whose run had not
	// finished at the crash, keyed by HIT ID. The queue itself does not
	// consume these — they seed the ResumeState the restarted run adopts.
	Collected map[int][]Assignment `json:"collected,omitempty"`
	// NextHITID is the lowest HIT ID the process may allocate after
	// recovery; adopting recovered IDs must never collide with new ones.
	NextHITID int `json:"next_hit_id,omitempty"`
}

// RestoreQueue rebuilds a queue backend from its snapshot. The stream of
// collected assignments starts empty — pre-crash completions live in
// snapshot.Collected and reach the engine through run adoption, not the
// stream.
func RestoreQueue(opts QueueOptions, s *QueueSnapshot) *Queue {
	q := NewQueue(opts)
	if s == nil {
		return q
	}
	for _, h := range s.HITs {
		q.hits[h.ID] = h
	}
	for id, n := range s.Open {
		q.open[id] = n
	}
	q.order = append(q.order, s.Order...)
	for id, n := range s.Answered {
		q.answered[id] = n
	}
	for id, workers := range s.Touched {
		m := make(map[string]bool, len(workers))
		for _, w := range workers {
			m[w] = true
		}
		q.touched[id] = m
	}
	for id, t := range s.PostedAt {
		q.postedAt[id] = t
	}
	for i, w := range s.Workers {
		q.workers[w] = i
	}
	for _, c := range s.Claims {
		q.claims[c.Token] = &Claimed{
			Token:     c.Token,
			HIT:       q.hits[c.HIT],
			Worker:    c.Worker,
			Deadline:  c.Deadline,
			Waited:    c.ClaimedAt.Sub(q.postedAt[c.HIT]),
			claimedAt: c.ClaimedAt,
		}
	}
	for _, c := range s.Lapsed {
		q.lapsed[c.Token] = &Claimed{
			Token:     c.Token,
			HIT:       q.hits[c.HIT],
			Worker:    c.Worker,
			Deadline:  c.Deadline,
			claimedAt: c.ClaimedAt,
		}
	}
	return q
}

// ResumedHIT is one in-flight HIT recovered from a crashed run: its
// original posting (ID included) and the assignment slots already paid.
type ResumedHIT struct {
	HIT   HIT
	Slots []Assignment
}

// ResumeState carries a crashed run's in-flight HITs into the restarted
// run. HIT generation is deterministic in (pending pairs, options), so
// the restart regenerates the same task contents under fresh IDs; the
// lifecycle manager matches regenerated HITs to recovered ones by
// content and adopts the old IDs — keeping every outstanding claim,
// answer and top-up valid — instead of posting duplicates. Consumed
// single-threaded by one resolve; not safe for concurrent use.
type ResumeState struct {
	ByKey map[string]ResumedHIT
}

// Add indexes a recovered HIT by content. Slots must be sorted by Slot.
func (rs *ResumeState) Add(h HIT, slots []Assignment) {
	if rs.ByKey == nil {
		rs.ByKey = make(map[string]ResumedHIT)
	}
	rs.ByKey[ResumeKey(h)] = ResumedHIT{HIT: h, Slots: slots}
}

// Empty reports whether nothing is left to adopt.
func (rs *ResumeState) Empty() bool { return rs == nil || len(rs.ByKey) == 0 }

// take claims the recovered HIT matching h's content, if any.
func (rs *ResumeState) take(h HIT) (ResumedHIT, bool) {
	if rs == nil || rs.ByKey == nil {
		return ResumedHIT{}, false
	}
	k := ResumeKey(h)
	rh, ok := rs.ByKey[k]
	if ok {
		delete(rs.ByKey, k)
	}
	return rh, ok
}

// Leftovers drains the HITs no restarted run adopted — orphans whose
// pairs were judged (or deduced) before they completed. The caller
// retracts them to finish the crashed run's cleanup.
func (rs *ResumeState) Leftovers() []int {
	if rs == nil || len(rs.ByKey) == 0 {
		return nil
	}
	ids := make([]int, 0, len(rs.ByKey))
	for k, rh := range rs.ByKey {
		ids = append(ids, rh.HIT.ID)
		delete(rs.ByKey, k)
	}
	sort.Ints(ids)
	return ids
}

// ResumeKey renders a HIT's content — kind, pairs, records, everything
// except the ID and Ord — as a match key for adoption.
func ResumeKey(h HIT) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k%d", h.Kind)
	for _, p := range h.Pairs {
		fmt.Fprintf(&b, "|%d,%d", p.A, p.B)
	}
	b.WriteByte(';')
	for _, r := range h.Records {
		fmt.Fprintf(&b, "|%d", r)
	}
	return b.String()
}

// EnsureHITIDFloor raises the process-wide HIT ID allocator to at least
// n, so IDs adopted from a recovered session can never collide with IDs
// minted after recovery.
func EnsureHITIDFloor(n int) {
	hitIDMu.Lock()
	defer hitIDMu.Unlock()
	if hitIDCounter < n {
		hitIDCounter = n
	}
}
