package crowd

import (
	"math/rand"
	"testing"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/record"
)

func mk(a, b int) record.Pair { return record.MakePair(record.ID(a), record.ID(b)) }

func TestNewPopulationComposition(t *testing.T) {
	pop := NewPopulation(1, PopulationOptions{Size: 1000})
	if pop.Size() != 1000 {
		t.Fatalf("Size = %d; want 1000", pop.Size())
	}
	spam := pop.CountClass(Spammer)
	sloppy := pop.CountClass(Sloppy)
	reliable := pop.CountClass(Reliable)
	if spam+sloppy+reliable != 1000 {
		t.Fatal("classes do not partition the population")
	}
	// Defaults: 12% spammers, 20% sloppy (± sampling noise).
	if spam < 80 || spam > 160 {
		t.Errorf("spammers = %d; want ≈ 120", spam)
	}
	if sloppy < 150 || sloppy > 260 {
		t.Errorf("sloppy = %d; want ≈ 200", sloppy)
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a := NewPopulation(5, PopulationOptions{Size: 50})
	b := NewPopulation(5, PopulationOptions{Size: 50})
	for i := range a.Workers {
		if a.Workers[i].TPR != b.Workers[i].TPR || a.Workers[i].Class != b.Workers[i].Class {
			t.Fatal("same seed produced different populations")
		}
	}
}

func TestWorkerAnswerAccuracy(t *testing.T) {
	w := &Worker{TPR: 0.9, TNR: 0.8}
	rng := rand.New(rand.NewSource(3))
	nTrials := 20000
	yesOnMatch, yesOnNonMatch := 0, 0
	for i := 0; i < nTrials; i++ {
		if w.Answer(true, rng) {
			yesOnMatch++
		}
		if w.Answer(false, rng) {
			yesOnNonMatch++
		}
	}
	if f := float64(yesOnMatch) / float64(nTrials); f < 0.88 || f > 0.92 {
		t.Errorf("empirical TPR = %v; want ≈ 0.9", f)
	}
	if f := float64(yesOnNonMatch) / float64(nTrials); f < 0.18 || f > 0.22 {
		t.Errorf("empirical FPR = %v; want ≈ 0.2", f)
	}
}

func TestQualificationTestWeedsSpammers(t *testing.T) {
	pop := NewPopulation(2, PopulationOptions{Size: 2000})
	q := pop.QualificationTest(7)
	if q.Size() >= pop.Size() {
		t.Fatal("qualification test should remove some workers")
	}
	spamBefore := float64(pop.CountClass(Spammer)) / float64(pop.Size())
	spamAfter := float64(q.CountClass(Spammer)) / float64(q.Size())
	if spamAfter >= spamBefore/2 {
		t.Errorf("spammer rate %.3f → %.3f; test should cut it at least in half", spamBefore, spamAfter)
	}
	relBefore := float64(pop.CountClass(Reliable)) / float64(pop.Size())
	relAfter := float64(q.CountClass(Reliable)) / float64(q.Size())
	if relAfter <= relBefore {
		t.Errorf("reliable share should rise: %.3f → %.3f", relBefore, relAfter)
	}
}

func testTruth() record.PairSet {
	return record.NewPairSet(mk(0, 1), mk(0, 2), mk(1, 2), mk(5, 6))
}

func testPairs() []record.Pair {
	return []record.Pair{mk(0, 1), mk(0, 2), mk(1, 2), mk(3, 4), mk(5, 6), mk(7, 8)}
}

func TestRunPairHITsBasics(t *testing.T) {
	pairs := testPairs()
	hits, err := hitgen.GeneratePairHITs(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	pop := NewPopulation(1, PopulationOptions{Size: 60})
	res, err := RunPairHITs(hits, testTruth(), pop, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 3 HITs × 3 assignments × 2 pairs = 18 answers.
	if len(res.Answers) != 18 {
		t.Fatalf("got %d answers; want 18", len(res.Answers))
	}
	if len(res.AssignmentSeconds) != 9 {
		t.Fatalf("got %d assignment durations; want 9", len(res.AssignmentSeconds))
	}
	wantCost := float64(9) * DollarsPerAssignment
	if res.CostDollars != wantCost {
		t.Errorf("cost = %v; want %v", res.CostDollars, wantCost)
	}
	if res.TotalSeconds <= 0 {
		t.Error("makespan must be positive")
	}
	if res.WorkersUsed < 3 {
		t.Errorf("workers used = %d; want >= 3", res.WorkersUsed)
	}
}

func TestRunClusterHITsBasics(t *testing.T) {
	pairs := testPairs()
	gen := hitgen.TwoTiered{}
	hits, err := gen.Generate(pairs, 4)
	if err != nil {
		t.Fatal(err)
	}
	pop := NewPopulation(1, PopulationOptions{Size: 60})
	res, err := RunClusterHITs(hits, pairs, testTruth(), pop, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers collected")
	}
	// Every covered pair must be answered by every assignment.
	counts := map[record.Pair]int{}
	for _, a := range res.Answers {
		counts[a.Pair]++
	}
	for _, p := range pairs {
		if counts[p] == 0 {
			t.Errorf("pair %v got no answers", p)
		}
		if counts[p]%3 != 0 {
			t.Errorf("pair %v got %d answers; want a multiple of 3", p, counts[p])
		}
	}
}

func TestClusterAnswersTransitivity(t *testing.T) {
	// A perfect worker must produce transitively consistent answers; an
	// (impossible) intransitive configuration cannot survive union-find.
	h := hitgen.ClusterHIT{Records: []record.ID{0, 1, 2}}
	covered := []record.Pair{mk(0, 1), mk(1, 2), mk(0, 2)}
	truth := record.NewPairSet(mk(0, 1), mk(1, 2), mk(0, 2))
	w := &Worker{TPR: 1, TNR: 1}
	rng := rand.New(rand.NewSource(1))
	cfg := Config{}
	cfg.defaults()
	answers := clusterAnswers(h, covered, truth, w, &cfg, rng)
	for _, a := range answers {
		if !a.Match {
			t.Errorf("perfect worker answered %v as non-match", a.Pair)
		}
	}
	// If a worker says (0,1) and (1,2) match, transitivity forces (0,2).
	biased := &Worker{TPR: 1, TNR: 0} // answers yes to everything
	answers = clusterAnswers(h, covered[:2], record.NewPairSet(), biased, &cfg, rng)
	um := map[record.Pair]bool{}
	for _, a := range answers {
		um[a.Pair] = a.Match
	}
	if !um[mk(0, 1)] || !um[mk(1, 2)] {
		t.Fatal("biased worker should have matched both pairs")
	}
}

func TestPerfectCrowdRecoversGroundTruth(t *testing.T) {
	pairs := testPairs()
	truth := testTruth()
	hits, _ := hitgen.GeneratePairHITs(pairs, 3)
	// All-reliable population with perfect accuracy.
	pop := &Population{}
	for i := 0; i < 10; i++ {
		pop.Workers = append(pop.Workers, &Worker{ID: i, TPR: 1, TNR: 1, Speed: 1})
	}
	res, err := RunPairHITs(hits, truth, pop, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	post := aggregate.DawidSkene(res.Answers, aggregate.DawidSkeneOptions{})
	for _, p := range pairs {
		want := truth.Has(p.A, p.B)
		if got := post[p] >= 0.5; got != want {
			t.Errorf("pair %v decided %v; want %v", p, got, want)
		}
	}
}

func TestQualificationTestImprovesAnswerQuality(t *testing.T) {
	// Build a spammy population; QT should raise agreement with truth.
	pop := NewPopulation(3, PopulationOptions{Size: 300, SpammerRate: 0.4})
	var pairs []record.Pair
	truth := record.NewPairSet()
	for i := 0; i < 120; i++ {
		p := mk(2*i, 2*i+1)
		pairs = append(pairs, p)
		if i%3 == 0 {
			truth.Add(p.A, p.B)
		}
	}
	hits, _ := hitgen.GeneratePairHITs(pairs, 10)
	accuracy := func(qt bool) float64 {
		res, err := RunPairHITs(hits, truth, pop, Config{Seed: 5, QualificationTest: qt})
		if err != nil {
			t.Fatal(err)
		}
		post := aggregate.DawidSkene(res.Answers, aggregate.DawidSkeneOptions{})
		ok := 0
		for _, p := range pairs {
			if (post[p] >= 0.5) == truth.Has(p.A, p.B) {
				ok++
			}
		}
		return float64(ok) / float64(len(pairs))
	}
	if aQT, a := accuracy(true), accuracy(false); aQT < a-0.02 {
		t.Errorf("QT accuracy %.3f should not trail no-QT accuracy %.3f", aQT, a)
	}
}

func TestMedianAssignmentSeconds(t *testing.T) {
	r := &Result{AssignmentSeconds: []float64{10, 30, 20}}
	if got := r.MedianAssignmentSeconds(); got != 20 {
		t.Errorf("median = %v; want 20", got)
	}
	r = &Result{AssignmentSeconds: []float64{10, 20, 30, 40}}
	if got := r.MedianAssignmentSeconds(); got != 25 {
		t.Errorf("even median = %v; want 25", got)
	}
	r = &Result{}
	if got := r.MedianAssignmentSeconds(); got != 0 {
		t.Errorf("empty median = %v; want 0", got)
	}
}

func TestMakespanScalesWithAttraction(t *testing.T) {
	pop := NewPopulation(1, PopulationOptions{Size: 100})
	assignments := make([]float64, 400)
	for i := range assignments {
		assignments[i] = 60
	}
	full := makespan(assignments, pop, 1.0)
	half := makespan(assignments, pop, 0.5)
	if half <= full {
		t.Errorf("lower attraction should lengthen makespan: full=%v half=%v", full, half)
	}
}

func TestEffortDiscount(t *testing.T) {
	if got := effortDiscount(10, 20); got != 1 {
		t.Errorf("under fair effort should not discount; got %v", got)
	}
	if got := effortDiscount(40, 20); got != 0.5 {
		t.Errorf("double effort should halve attraction; got %v", got)
	}
}

func TestPreparePoolErrors(t *testing.T) {
	pop := &Population{Workers: []*Worker{{ID: 0, TPR: 1, TNR: 1}}}
	cfg := Config{}
	cfg.defaults()
	if _, err := preparePool(pop, cfg); err == nil {
		t.Fatal("pool smaller than replication factor should error")
	}
}

// Acceptance: concurrent crowd execution is bit-identical to the
// sequential path at every parallelism level, for both HIT formats. Run
// with -race to catch unsynchronized writes in the per-HIT executor.
func TestRunParallelismEquivalence(t *testing.T) {
	pairs := testPairs()
	truth := testTruth()
	pop := NewPopulation(1, PopulationOptions{Size: 60})

	pairHITs, err := hitgen.GeneratePairHITs(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	clusterHITs, err := hitgen.TwoTiered{}.Generate(pairs, 4)
	if err != nil {
		t.Fatal(err)
	}

	assertSame := func(t *testing.T, base, got *Result, par int) {
		t.Helper()
		if len(got.Answers) != len(base.Answers) {
			t.Fatalf("parallelism %d: %d answers vs %d", par, len(got.Answers), len(base.Answers))
		}
		for i := range base.Answers {
			if got.Answers[i] != base.Answers[i] {
				t.Fatalf("parallelism %d: answer %d differs: %v vs %v", par, i, got.Answers[i], base.Answers[i])
			}
		}
		if len(got.AssignmentSeconds) != len(base.AssignmentSeconds) {
			t.Fatalf("parallelism %d: assignment count differs", par)
		}
		for i := range base.AssignmentSeconds {
			if got.AssignmentSeconds[i] != base.AssignmentSeconds[i] {
				t.Fatalf("parallelism %d: assignment %d seconds differ", par, i)
			}
		}
		if got.TotalSeconds != base.TotalSeconds || got.CostDollars != base.CostDollars ||
			got.WorkersUsed != base.WorkersUsed {
			t.Fatalf("parallelism %d: aggregate figures differ", par)
		}
	}

	t.Run("PairHITs", func(t *testing.T) {
		base, err := RunPairHITs(pairHITs, truth, pop, Config{Seed: 11, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 8} {
			got, err := RunPairHITs(pairHITs, truth, pop, Config{Seed: 11, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			assertSame(t, base, got, par)
		}
	})
	t.Run("ClusterHITs", func(t *testing.T) {
		base, err := RunClusterHITs(clusterHITs, pairs, truth, pop, Config{Seed: 11, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 8} {
			got, err := RunClusterHITs(clusterHITs, pairs, truth, pop, Config{Seed: 11, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			assertSame(t, base, got, par)
		}
	})
}

func TestHitSeedDecorrelates(t *testing.T) {
	seen := map[int64]bool{}
	for stream := 1; stream <= 2; stream++ {
		for h := 0; h < 1000; h++ {
			s := hitSeed(42, stream, h)
			if seen[s] {
				t.Fatalf("duplicate seed for stream=%d hit=%d", stream, h)
			}
			seen[s] = true
		}
	}
	if hitSeed(1, streamPairHITs, 0) == hitSeed(2, streamPairHITs, 0) {
		t.Error("different base seeds should give different HIT seeds")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	pairs := testPairs()
	hits, _ := hitgen.GeneratePairHITs(pairs, 2)
	pop := NewPopulation(1, PopulationOptions{Size: 50})
	r1, _ := RunPairHITs(hits, testTruth(), pop, Config{Seed: 11})
	r2, _ := RunPairHITs(hits, testTruth(), pop, Config{Seed: 11})
	if len(r1.Answers) != len(r2.Answers) {
		t.Fatal("same seed gave different answer counts")
	}
	for i := range r1.Answers {
		if r1.Answers[i] != r2.Answers[i] {
			t.Fatal("same seed gave different answers")
		}
	}
}

// Acceptance: a pair's verdicts are a pure function of (seed, pair) —
// re-batching the same candidate set into different HIT sizes, or
// presenting the pairs in a different order, changes no answer. This is
// the invariant the incremental resolver's verdict cache relies on.
func TestPairAnswersInvariantUnderBatching(t *testing.T) {
	pairs := testPairs()
	truth := testTruth()
	pop := NewPopulation(1, PopulationOptions{Size: 60})

	canonical := func(hits []hitgen.PairHIT) map[record.Pair][]aggregate.Answer {
		res, err := RunPairHITs(hits, truth, pop, Config{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		byPair := map[record.Pair][]aggregate.Answer{}
		for _, a := range res.Answers {
			byPair[a.Pair] = append(byPair[a.Pair], a)
		}
		return byPair
	}

	base, err := hitgen.GeneratePairHITs(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := canonical(base)

	reversed := make([]record.Pair, len(pairs))
	for i, p := range pairs {
		reversed[len(pairs)-1-i] = p
	}
	for name, alt := range map[string][]record.Pair{"one-per-hit": pairs, "reversed": reversed, "single-hit": pairs} {
		k := map[string]int{"one-per-hit": 1, "reversed": 3, "single-hit": len(pairs)}[name]
		hits, err := hitgen.GeneratePairHITs(alt, k)
		if err != nil {
			t.Fatal(err)
		}
		got := canonical(hits)
		if len(got) != len(want) {
			t.Fatalf("%s: %d judged pairs vs %d", name, len(got), len(want))
		}
		for p, wa := range want {
			ga := got[p]
			if len(ga) != len(wa) {
				t.Fatalf("%s: pair %v has %d answers vs %d", name, p, len(ga), len(wa))
			}
			for i := range wa {
				if ga[i] != wa[i] {
					t.Fatalf("%s: pair %v answer %d differs: %v vs %v", name, p, i, ga[i], wa[i])
				}
			}
		}
	}
}

// The NoSpammers sentinel must produce a genuinely clean pool, while the
// zero value keeps the 0.12 default.
func TestNoSpammersSentinel(t *testing.T) {
	clean := NewPopulation(1, PopulationOptions{Size: 800, SpammerRate: NoSpammers})
	if got := clean.CountClass(Spammer); got != 0 {
		t.Errorf("NoSpammers pool has %d spammers", got)
	}
	def := NewPopulation(1, PopulationOptions{Size: 800})
	if got := def.CountClass(Spammer); got == 0 {
		t.Error("zero-value options should keep the default spammer rate")
	}
}
