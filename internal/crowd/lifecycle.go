package crowd

import (
	"context"
	"errors"
	"fmt"

	"github.com/crowder/crowder/internal/aggregate"
)

// HITState is one task's position in the asynchronous lifecycle:
// posted → answering (k of r assignments in) → complete. Aggregation
// happens once per batch, over every completed HIT's answers.
type HITState int

const (
	// HITPosted: the task is live on the backend, no assignments yet.
	HITPosted HITState = iota
	// HITAnswering: between 1 and r−1 assignments have arrived.
	HITAnswering
	// HITComplete: all r assignments are in; the HIT's answers are final.
	HITComplete
	// HITRetracted: the run withdrew the task before completion because
	// its verdicts became deducible from other HITs' answers (adaptive
	// transitivity scheduling). Assignments already collected are still
	// paid for; outstanding ones are cancelled and never arrive.
	HITRetracted
)

func (s HITState) String() string {
	switch s {
	case HITPosted:
		return "posted"
	case HITAnswering:
		return "answering"
	case HITComplete:
		return "complete"
	case HITRetracted:
		return "retracted"
	default:
		return "unknown"
	}
}

// Progress is one lifecycle event, reported after every HIT state
// transition.
type Progress struct {
	// HIT is the ID of the task whose state changed; State its new state.
	HIT   int
	State HITState
	// TotalHITs / CompletedHITs track batch completion.
	TotalHITs     int
	CompletedHITs int
	// Answers counts the individual pair verdicts collected so far.
	Answers int
	// TopUps counts replication top-ups posted for expired assignments.
	TopUps int
	// Retracted counts the HITs withdrawn mid-flight because their
	// verdicts became deducible (adaptive transitivity scheduling).
	Retracted int
	// Interim is the Dawid–Skene posterior over the answers collected so
	// far, recomputed at each HIT completion when ExecuteOptions.Interim
	// is set; nil otherwise. It lets a long-running service report
	// tentative matches while the crowd is still working; the final
	// posterior is always recomputed over the full canonical answer set.
	Interim aggregate.Posterior
}

// ExecuteOptions tunes the lifecycle manager.
type ExecuteOptions struct {
	// OnProgress, when non-nil, receives an event after every HIT state
	// transition. Called from the manager's goroutine; keep it fast.
	OnProgress func(Progress)
	// Interim enables incremental Dawid–Skene re-aggregation as answers
	// land: the posterior over the answers collected so far is recomputed
	// at HIT completions and attached to the progress event. Each
	// recompute is a full EM pass, so it runs on a stride — at most ~32
	// evenly spaced completions per batch, plus the last — keeping the
	// collector loop responsive on large batches.
	Interim bool
	// OnHITComplete, when non-nil, receives each HIT with its full answer
	// set the moment it completes — before the batch finishes — so an
	// adaptive scheduler can fold verdicts into its deduction graph while
	// sibling HITs are still in flight. Called from the manager's
	// goroutine; keep it fast.
	OnHITComplete func(hit HIT, answers []aggregate.Answer)
	// Retractable, when non-nil, is polled for every in-flight HIT after
	// each completion: returning true withdraws the task mid-flight (its
	// verdicts have become deducible, so finishing it would waste crowd
	// work). Collected assignments stay paid for; outstanding ones are
	// cancelled, the HIT ends in HITRetracted, and its answers are
	// excluded from the batch result.
	Retractable func(hit HIT) bool
	// Aggregator, when non-nil, replaces the default Dawid–Skene
	// aggregation used for the interim posteriors: callers pass their
	// session's aggregator so the tentative numbers a client polls
	// mid-run mean the same thing as the final ones.
	Aggregator aggregate.Aggregator
	// Resume, when non-nil, carries a crashed run's recovered in-flight
	// HITs. Generated HITs matching a recovered one by content adopt the
	// recovered posting — original ID, original open/claimed lifecycle on
	// the backend, already-paid assignment slots pre-filled — instead of
	// being posted again, so a restarted resolve re-issues zero HITs for
	// work the crowd already holds or has already answered.
	Resume *ResumeState
}

// hitRun is one HIT's mutable lifecycle state inside the manager.
type hitRun struct {
	hit     HIT
	state   HITState
	slots   []Assignment // completed assignments, arrival order
	needed  int
	adopted bool // recovered posting: already live on the backend
}

// ExecuteHITs drives a batch of HITs through the asynchronous lifecycle
// against a Backend: post every task, collect assignments as workers
// complete them, top up the replication of assignments whose leases
// expired, and assemble the completed outcomes — in HIT order, with the
// exact per-kind answer layout of the synchronous executor, so a
// simulated-backend run is bit-identical to the legacy in-process path.
//
// On error (including ctx cancellation) the returned Result is still
// non-nil and carries every answer collected before the failure — paid-for
// crowd work the caller can persist as partial assignment sets — alongside
// the error. Unfinished HITs are retracted from backends that support it.
func ExecuteHITs(ctx context.Context, b Backend, hits []HIT, opts ExecuteOptions) (*Result, error) {
	if len(hits) == 0 {
		return &Result{}, nil
	}

	runs := make([]*hitRun, len(hits))
	byID := make(map[int]*hitRun, len(hits))
	adopted := 0
	for i, h := range hits {
		hr := &hitRun{hit: h, state: HITPosted, needed: h.Assignments}
		if rh, ok := opts.Resume.take(h); ok {
			// Adopt the crashed run's posting: keeping its ID keeps every
			// outstanding claim, buffered answer and expiry top-up on the
			// backend valid, and the slots already paid for count here
			// instead of being asked again.
			hr.hit = rh.HIT
			hr.needed = rh.HIT.Assignments
			hr.slots = append(hr.slots, rh.Slots...)
			hr.adopted = true
			adopted++
		}
		runs[i] = hr
		byID[hr.hit.ID] = hr
	}

	// A cancel scoped to this run stops the backend's pump goroutine as
	// soon as the run ends, however it ends.
	collectCtx, cancelCollect := context.WithCancel(ctx)
	defer cancelCollect()
	stream := b.Collect(collectCtx)

	// Withdraw the run's HITs when it ends, completed ones included: the
	// backend has no further use for their bookkeeping once the manager
	// has collected the assignments, and a long-lived backend absorbing
	// run after run must not accumulate them.
	defer func() {
		if rt, ok := b.(Retractor); ok {
			ids := make([]int, len(runs))
			for i, hr := range runs {
				ids[i] = hr.hit.ID
			}
			rt.Retract(ids)
		}
	}()

	completed, retracted, answers, topUps := 0, 0, 0, 0

	// partial assembles the result of an aborted run: every collected
	// assignment, regardless of HIT completion.
	partial := func() *Result {
		res := assembleResult(b, runs, false)
		res.TopUps = topUps
		res.RetractedHITs = retracted
		return res
	}

	interimStride := 1
	if s := len(hits) / 32; s > 1 {
		interimStride = s
	}
	report := func(hr *hitRun) {
		if opts.OnProgress == nil {
			return
		}
		ev := Progress{
			HIT:           hr.hit.ID,
			State:         hr.state,
			TotalHITs:     len(hits),
			CompletedHITs: completed,
			Answers:       answers,
			TopUps:        topUps,
			Retracted:     retracted,
		}
		if opts.Interim && hr.state == HITComplete &&
			(completed == len(hits) || completed%interimStride == 0) {
			ev.Interim = interimPosterior(runs, opts.Aggregator)
		}
		opts.OnProgress(ev)
	}

	// sweepRetractable polls the in-flight HITs after a completion and
	// withdraws those whose verdicts have become deducible. Sweep order is
	// the posting order, so retraction is deterministic.
	sweepRetractable := func() {
		if opts.Retractable == nil {
			return
		}
		var ids []int
		for _, hr := range runs {
			if hr.state == HITComplete || hr.state == HITRetracted {
				continue
			}
			if opts.Retractable(hr.hit) {
				hr.state = HITRetracted
				retracted++
				ids = append(ids, hr.hit.ID)
				report(hr)
			}
		}
		if len(ids) > 0 {
			if rt, ok := b.(Retractor); ok {
				rt.Retract(ids)
			}
		}
	}

	toPost := hits
	if adopted > 0 {
		// Adopted HITs are already live on the backend — re-posting them
		// would open duplicate assignments and pay twice.
		toPost = make([]HIT, 0, len(hits)-adopted)
		for _, hr := range runs {
			if !hr.adopted {
				toPost = append(toPost, hr.hit)
			}
		}
	}
	if len(toPost) > 0 {
		if err := b.Post(ctx, toPost); err != nil {
			return partial(), fmt.Errorf("crowd: posting HITs: %w", err)
		}
	}
	if opts.OnProgress != nil {
		for _, hr := range runs {
			report(hr)
		}
	}
	if adopted > 0 {
		// Fold the recovered assignments in after the posted reports, in
		// run order, firing the same per-completion hooks a live arrival
		// would have.
		anyComplete := false
		for _, hr := range runs {
			if len(hr.slots) == 0 {
				continue
			}
			for _, a := range hr.slots {
				answers += len(a.Answers)
			}
			if len(hr.slots) >= hr.needed {
				hr.state = HITComplete
				completed++
			} else {
				hr.state = HITAnswering
			}
			report(hr)
			if hr.state == HITComplete {
				anyComplete = true
				if opts.OnHITComplete != nil {
					opts.OnHITComplete(hr.hit, hitAnswers(hr))
				}
			}
		}
		if anyComplete {
			sweepRetractable()
		}
	}

	for completed+retracted < len(hits) {
		select {
		case <-ctx.Done():
			return partial(), ctx.Err()
		case a, ok := <-stream:
			if !ok {
				// The pump also closes the stream on cancellation, and the
				// select may pick this case over ctx.Done — report the
				// cancellation, not a backend failure.
				if err := ctx.Err(); err != nil {
					return partial(), err
				}
				return partial(), errors.New("crowd: backend closed the assignment stream before all HITs completed")
			}
			hr := byID[a.HIT]
			if hr == nil || hr.state == HITComplete || hr.state == HITRetracted {
				continue // stale: another run's task, a late extra answer, or
				// an assignment of a withdrawn task still in the pipe
			}
			if a.Expired {
				// Replication top-up: re-post the same task asking for one
				// more assignment to replace the lapsed one.
				topUps++
				topUp := hr.hit
				topUp.Assignments = 1
				if err := b.Post(ctx, []HIT{topUp}); err != nil {
					return partial(), fmt.Errorf("crowd: re-posting expired assignment: %w", err)
				}
				continue
			}
			if hr.adopted && duplicateSlot(hr.slots, a.Slot) {
				// A recovered assignment can arrive again on the live
				// stream (journaled before the crash and re-delivered by a
				// backend that buffered it); count it once.
				continue
			}
			hr.slots = append(hr.slots, a)
			// Keep slots in replication-slot order regardless of arrival
			// order, so the assembled layout matches the synchronous
			// executor's bit-for-bit.
			for i := len(hr.slots) - 1; i > 0 && hr.slots[i].Slot < hr.slots[i-1].Slot; i-- {
				hr.slots[i], hr.slots[i-1] = hr.slots[i-1], hr.slots[i]
			}
			answers += len(a.Answers)
			if len(hr.slots) >= hr.needed {
				hr.state = HITComplete
				completed++
			} else {
				hr.state = HITAnswering
			}
			report(hr)
			if hr.state == HITComplete {
				if opts.OnHITComplete != nil {
					opts.OnHITComplete(hr.hit, hitAnswers(hr))
				}
				sweepRetractable()
			}
		}
	}

	res := assembleResult(b, runs, true)
	res.TopUps = topUps
	res.RetractedHITs = retracted
	return res, nil
}

// duplicateSlot reports whether a replication slot is already collected.
func duplicateSlot(slots []Assignment, slot int) bool {
	for _, s := range slots {
		if s.Slot == slot {
			return true
		}
	}
	return false
}

// hitAnswers flattens one completed HIT's collected answers (all
// replication slots, slot order).
func hitAnswers(hr *hitRun) []aggregate.Answer {
	var all []aggregate.Answer
	for _, a := range hr.slots {
		all = append(all, a.Answers...)
	}
	return all
}

// interimPosterior aggregates the answers collected so far — with the
// caller's aggregator, or plain Dawid–Skene when none was supplied — in
// canonical order so the result is a pure function of the answer set.
// Retracted HITs' fragments are excluded, matching the final
// aggregation.
func interimPosterior(runs []*hitRun, agg aggregate.Aggregator) aggregate.Posterior {
	var all []aggregate.Answer
	for _, hr := range runs {
		if hr.state == HITRetracted {
			continue
		}
		for _, a := range hr.slots {
			all = append(all, a.Answers...)
		}
	}
	if len(all) == 0 {
		return aggregate.Posterior{}
	}
	aggregate.SortCanonical(all)
	if agg != nil {
		return agg.Aggregate(all)
	}
	return aggregate.DawidSkene(all, aggregate.DawidSkeneOptions{})
}

// assembleResult flattens runs into a Result in HIT order. For a
// complete run it reconstructs the synchronous executor's exact answer
// layout — pair HITs interleave answers pair-major (each pair's replicas
// adjacent), cluster HITs concatenate assignment-major (each worker's
// pass over the group adjacent) — and asks a Scheduler backend for the
// makespan. For an aborted run the layout is loose concatenation and the
// makespan model does not apply (the batch never finished), so the
// longest collected assignment stands in. Cost and worker accounting are
// shared: both paths pay per collected assignment — including the
// assignments of retracted HITs, whose answers are otherwise excluded
// (their pairs were resolved by deduction, not by these fragments).
func assembleResult(b Backend, runs []*hitRun, complete bool) *Result {
	res := &Result{}
	used := make(map[int]bool)
	total := 0
	for _, hr := range runs {
		total += len(hr.slots)
		if hr.state == HITRetracted {
			for _, a := range hr.slots {
				res.AssignmentSeconds = append(res.AssignmentSeconds, a.Seconds)
				if a.Worker >= 0 {
					used[a.Worker] = true
				}
				for _, it := range a.Answers {
					used[it.Worker] = true
				}
			}
			continue
		}
		if complete && hr.hit.Kind == PairKind {
			for p := range hr.hit.Pairs {
				for _, a := range hr.slots {
					if p < len(a.Answers) {
						res.Answers = append(res.Answers, a.Answers[p])
					}
				}
			}
		} else {
			for _, a := range hr.slots {
				res.Answers = append(res.Answers, a.Answers...)
			}
		}
		for _, a := range hr.slots {
			res.AssignmentSeconds = append(res.AssignmentSeconds, a.Seconds)
			if a.Worker >= 0 {
				used[a.Worker] = true
			}
			for _, it := range a.Answers {
				used[it.Worker] = true
			}
		}
	}
	res.WorkersUsed = len(used)
	res.CostDollars = float64(total) * DollarsPerAssignment
	sch, ok := b.(Scheduler)
	if complete && ok {
		res.TotalSeconds = sch.TotalSeconds(res.AssignmentSeconds)
	} else {
		for _, s := range res.AssignmentSeconds {
			if s > res.TotalSeconds {
				res.TotalSeconds = s
			}
		}
	}
	return res
}
