package crowd

import (
	"context"
	"sync"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/record"
)

// HITKind distinguishes the two task formats a backend can host.
type HITKind int

const (
	// PairKind is a pair-based HIT: each listed pair is verified
	// independently by the worker.
	PairKind HITKind = iota
	// ClusterKind is a cluster-based HIT: the worker partitions the
	// listed records into entities; the verdicts cover the listed pairs.
	ClusterKind
)

// HIT is one crowdsourcing task as posted to a Backend.
type HIT struct {
	// ID identifies the HIT across the backend: assignments carry it back
	// so the lifecycle manager can correlate answers with tasks. IDs are
	// unique across every run sharing a backend (a requeued or retried
	// resolution never collides with tasks left over from a cancelled one).
	ID int
	// Ord is the HIT's ordinal within its run (0-based, dense). The
	// simulated backend derives its per-HIT RNG stream from Ord, so a
	// run's randomness is independent of how many runs preceded it.
	Ord int
	// Kind selects the task format.
	Kind HITKind
	// Pairs lists the pairs the HIT verifies. For PairKind these are the
	// task itself; for ClusterKind they are the candidate pairs covered by
	// the record group (both endpoints in Records).
	Pairs []record.Pair
	// Records lists the records shown to the worker (ClusterKind only).
	Records []record.ID
	// Assignments is the number of replicated assignments requested by
	// this Post. The initial posting asks for the full replication factor;
	// top-ups for expired assignments re-post the same HIT with 1.
	Assignments int
}

// Assignment is one worker's completed (or expired) assignment of one HIT,
// delivered on a Backend's Collect stream.
type Assignment struct {
	// HIT is the ID of the task this assignment belongs to.
	HIT int
	// Slot is the assignment's replication slot within its HIT. The
	// lifecycle manager assembles a HIT's answers in slot order, so the
	// final layout is independent of the order assignments arrived in —
	// the property that keeps simulated runs bit-identical to the
	// synchronous executor they replaced.
	Slot int
	// Worker identifies the worker who completed the assignment, where a
	// single worker did (cluster tasks, queue-backend tasks). -1 when the
	// assignment aggregates per-pair workers (the simulator's pair-based
	// tasks replicate each pair to its own worker set).
	Worker int
	// Answers holds the per-pair verdicts, ordered like the HIT's Pairs.
	Answers []aggregate.Answer
	// Seconds is the assignment's completion time: simulated seconds under
	// the reference backend's virtual clock, wall-clock seconds from claim
	// to answer under the queue backend.
	Seconds float64
	// Expired marks a lease that lapsed before the worker answered; the
	// assignment carries no answers and the lifecycle manager responds by
	// posting a replication top-up.
	Expired bool
}

// Backend hosts HITs and streams back assignments as workers complete
// them. The reference implementation is the simulator (NewSimulator),
// which replays the Section 7.1 worker model on a virtual clock; the
// queue backend (NewQueue) holds HITs open for external workers to claim
// and answer, e.g. over the crowderd HTTP API.
//
// Post may be called repeatedly — the lifecycle manager posts top-ups for
// expired assignments — and must be safe to call while Collect is being
// consumed. Collect supports a single consumer per backend; the returned
// channel delivers assignments until ctx is cancelled.
type Backend interface {
	Post(ctx context.Context, hits []HIT) error
	Collect(ctx context.Context) <-chan Assignment
}

// Scheduler is an optional Backend refinement: backends that model worker
// scheduling (the simulator's attraction-scaled makespan) report the
// batch completion time from the per-assignment durations. Backends
// without a model fall back to the maximum assignment duration.
type Scheduler interface {
	TotalSeconds(assignmentSeconds []float64) float64
}

// Retractor is an optional Backend refinement: backends holding tasks
// open for external workers withdraw a run's HITs when the run ends
// (completion, cancellation, failure) so neither stale open tasks nor
// finished-task bookkeeping accumulate across runs. The simulator has
// nothing to retract.
type Retractor interface {
	Retract(ids []int)
}

// stream is the delivery half shared by the built-in backends: an
// unbounded buffer of assignments pumped to a single consumer channel.
type stream struct {
	mu     sync.Mutex
	buf    []Assignment
	notify chan struct{}
}

func newStream() *stream {
	return &stream{notify: make(chan struct{}, 1)}
}

// push appends assignments for delivery and wakes the pump.
func (s *stream) push(as ...Assignment) {
	if len(as) == 0 {
		return
	}
	s.mu.Lock()
	s.buf = append(s.buf, as...)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// channel starts the pump goroutine delivering buffered assignments in
// push order until ctx is cancelled. An assignment popped but not yet
// delivered when ctx fires is pushed back to the front of the buffer: a
// backend shared across runs (the queue, between a cancelled job and its
// retry) may briefly have an old run's pump alive alongside the new
// run's, and the stale pump must never swallow an assignment the live
// consumer is waiting for.
func (s *stream) channel(ctx context.Context) <-chan Assignment {
	out := make(chan Assignment)
	go func() {
		defer close(out)
		for {
			s.mu.Lock()
			var next Assignment
			have := len(s.buf) > 0
			if have {
				next = s.buf[0]
				s.buf = s.buf[1:]
			}
			s.mu.Unlock()
			if !have {
				select {
				case <-ctx.Done():
					return
				case <-s.notify:
					continue
				}
			}
			select {
			case <-ctx.Done():
				s.unpop(next)
				return
			case out <- next:
			}
		}
	}()
	return out
}

// unpop returns an undelivered assignment to the front of the buffer and
// wakes any other pump.
func (s *stream) unpop(a Assignment) {
	s.mu.Lock()
	s.buf = append([]Assignment{a}, s.buf...)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// PairHITsFromGen converts generated pair-based HITs into backend tasks,
// assigning run-unique IDs and dense ordinals.
func PairHITsFromGen(pairs [][]record.Pair, assignments int) []HIT {
	hits := make([]HIT, len(pairs))
	base := nextHITID(len(pairs))
	for i, ps := range pairs {
		hits[i] = HIT{
			ID:          base + i,
			Ord:         i,
			Kind:        PairKind,
			Pairs:       ps,
			Assignments: assignments,
		}
	}
	return hits
}

// ClusterHITsFromGen converts generated cluster-based HITs into backend
// tasks. covered[i] must list the candidate pairs covered by records[i].
func ClusterHITsFromGen(records [][]record.ID, covered [][]record.Pair, assignments int) []HIT {
	hits := make([]HIT, len(records))
	base := nextHITID(len(records))
	for i := range records {
		hits[i] = HIT{
			ID:          base + i,
			Ord:         i,
			Kind:        ClusterKind,
			Pairs:       covered[i],
			Records:     records[i],
			Assignments: assignments,
		}
	}
	return hits
}

// OffsetOrds shifts the HITs' ordinals by base. An adaptive scheduler
// posting a delta's HITs over several rounds uses it to keep ordinals
// dense across the whole delta, so each round's cluster HITs draw from
// fresh RNG streams instead of replaying round one's.
func OffsetOrds(hits []HIT, base int) {
	for i := range hits {
		hits[i].Ord += base
	}
}

// hitIDCounter hands out globally unique HIT IDs so runs sharing a
// backend (e.g. a retried delta posting to the same queue) never collide.
var (
	hitIDMu      sync.Mutex
	hitIDCounter int
)

func nextHITID(n int) int {
	hitIDMu.Lock()
	defer hitIDMu.Unlock()
	base := hitIDCounter
	hitIDCounter += n
	return base
}
