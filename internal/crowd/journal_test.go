package crowd

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/record"
)

// TestRestoreQueueFromSnapshot: a queue rebuilt from a snapshot serves
// the same open work, honors restored leases (live ones stay claimable
// targets, answered ones count), and keeps per-HIT worker exclusion.
func TestRestoreQueueFromSnapshot(t *testing.T) {
	base := time.Unix(9000, 0)
	hits := PairHITsFromGen([][]record.Pair{
		{record.MakePair(0, 1)},
		{record.MakePair(2, 3)},
	}, 2)
	snap := &QueueSnapshot{
		HITs:     hits,
		Open:     map[int]int{hits[0].ID: 1, hits[1].ID: 2},
		Order:    []int{hits[0].ID, hits[1].ID},
		Answered: map[int]int{hits[0].ID: 1},
		Touched:  map[int][]string{hits[0].ID: {"alice"}},
		PostedAt: map[int]time.Time{hits[0].ID: base.Add(-time.Minute), hits[1].ID: base.Add(-time.Minute)},
		Workers:  []string{"alice"},
		Claims: []ClaimSnapshot{{
			Token: "live-token", HIT: hits[1].ID, Worker: "bob",
			ClaimedAt: base.Add(-10 * time.Second), Deadline: base.Add(50 * time.Second),
		}},
		Lapsed: []ClaimSnapshot{{
			Token: "lapsed-token", HIT: hits[0].ID, Worker: "carol",
			ClaimedAt: base.Add(-2 * time.Minute), Deadline: base.Add(-time.Minute),
		}},
		NextHITID: hits[1].ID + 1,
	}

	q := RestoreQueue(QueueOptions{
		Lease: time.Minute,
		Now:   func() time.Time { return base },
	}, snap)

	open := q.Open()
	if len(open) != 2 || open[0].HIT.ID != hits[0].ID || open[0].Open != 1 || open[1].Open != 2 {
		t.Fatalf("Open() after restore = %+v", open)
	}
	gh, ga := q.Depth()
	if gh != 2 || ga != 3 {
		t.Fatalf("Depth() = (%d,%d); want (2,3)", gh, ga)
	}
	if !q.ClaimLive("live-token") {
		t.Error("restored live lease not claimable")
	}
	if q.ClaimLive("lapsed-token") {
		t.Error("restored lapsed lease reported live")
	}
	if q.WorkerID("alice") != 0 {
		t.Errorf("WorkerID(alice) = %d; want 0 (restored intern table)", q.WorkerID("alice"))
	}

	// alice already touched hits[0], so her claim must route to hits[1].
	c, ok := q.Claim("alice")
	if !ok || c.HIT.ID != hits[1].ID {
		t.Fatalf("alice's claim = %+v, %v; want HIT %d", c, ok, hits[1].ID)
	}
	// Answering bob's restored lease completes hits[1]'s other slot.
	if err := q.Answer("live-token", []Verdict{{A: 2, B: 3, Match: true}}); err != nil {
		t.Fatalf("answering restored lease: %v", err)
	}

	// A nil snapshot restores an empty queue.
	empty := RestoreQueue(QueueOptions{}, nil)
	if h, a := empty.Depth(); h != 0 || a != 0 {
		t.Errorf("RestoreQueue(nil) depth = (%d,%d)", h, a)
	}
}

// TestResumeStateAdoption: recovered HITs are adopted by content key
// regardless of the regenerated ID; unmatched ones drain as leftovers.
func TestResumeStateAdoption(t *testing.T) {
	var rs *ResumeState
	if !rs.Empty() {
		t.Fatal("nil ResumeState should be empty")
	}
	if _, ok := rs.take(HIT{}); ok {
		t.Fatal("take on nil ResumeState succeeded")
	}
	if rs.Leftovers() != nil {
		t.Fatal("Leftovers on nil ResumeState")
	}

	old := PairHITsFromGen([][]record.Pair{
		{record.MakePair(0, 1), record.MakePair(1, 2)},
		{record.MakePair(3, 4)},
	}, 1)
	rs = &ResumeState{}
	rs.Add(old[0], []Assignment{{HIT: old[0].ID, Slot: 0}})
	rs.Add(old[1], nil)
	if rs.Empty() {
		t.Fatal("populated ResumeState reported empty")
	}

	// Regenerated HIT: same content, different ID — must adopt old[0].
	regen := PairHITsFromGen([][]record.Pair{{record.MakePair(0, 1), record.MakePair(1, 2)}}, 1)[0]
	if regen.ID == old[0].ID {
		t.Fatal("test needs distinct IDs")
	}
	if ResumeKey(regen) != ResumeKey(old[0]) {
		t.Fatalf("content keys differ: %q vs %q", ResumeKey(regen), ResumeKey(old[0]))
	}
	rh, ok := rs.take(regen)
	if !ok || rh.HIT.ID != old[0].ID || len(rh.Slots) != 1 {
		t.Fatalf("take = %+v, %v; want old HIT %d with 1 slot", rh, ok, old[0].ID)
	}
	if _, ok := rs.take(regen); ok {
		t.Fatal("second take of the same content succeeded")
	}

	// The unadopted HIT drains as a leftover; afterwards the state is dry.
	left := rs.Leftovers()
	if !reflect.DeepEqual(left, []int{old[1].ID}) {
		t.Fatalf("Leftovers = %v; want [%d]", left, old[1].ID)
	}
	if !rs.Empty() || rs.Leftovers() != nil {
		t.Fatal("ResumeState not dry after Leftovers")
	}

	// Keys separate pair content from record content.
	cluster := HIT{Kind: ClusterKind, Records: []record.ID{0, 1, 2}}
	if ResumeKey(cluster) == ResumeKey(regen) {
		t.Fatal("cluster and pair HITs share a resume key")
	}
}

// TestEnsureHITIDFloor: after raising the floor, newly minted HIT IDs
// never collide with adopted recovered IDs below it.
func TestEnsureHITIDFloor(t *testing.T) {
	before := PairHITsFromGen([][]record.Pair{{record.MakePair(0, 1)}}, 1)[0].ID
	floor := before + 1000
	EnsureHITIDFloor(floor)
	EnsureHITIDFloor(floor - 500) // lowering is a no-op
	after := PairHITsFromGen([][]record.Pair{{record.MakePair(0, 1)}}, 1)[0].ID
	if after < floor {
		t.Fatalf("HIT ID %d minted below the floor %d", after, floor)
	}
	ids := []int{before, floor, after}
	if !sort.IntsAreSorted(ids) {
		t.Fatalf("ids out of order: %v", ids)
	}
}
