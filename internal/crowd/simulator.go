package crowd

import (
	"context"
	"math/rand"
	"sort"
	"sync"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/record"
)

// Simulator is the reference Backend: the Section 7.1 worker-model
// simulator repackaged behind the asynchronous HIT lifecycle. Posting
// simulates every assignment immediately (concurrently across HITs,
// deterministic per-HIT/per-pair RNG streams) and delivers the results on
// the Collect stream ordered by a virtual clock — each assignment's
// simulated completion time — so the lifecycle manager observes the same
// answers-arrive-over-time shape a live crowd produces, without wall-clock
// delay and bit-identically at every parallelism level.
type Simulator struct {
	truth record.PairSet
	pool  *Population
	cfg   Config
	st    *stream

	mu          sync.Mutex
	kind        HITKind
	kindSet     bool
	totalEffort float64
	hitCount    int
}

// NewSimulator builds the reference backend from the ground truth the
// simulated workers perturb, the worker population, and the run
// configuration (qualification test applied here, as in the synchronous
// path).
func NewSimulator(truth record.PairSet, pop *Population, cfg Config) (*Simulator, error) {
	cfg.defaults()
	pool, err := preparePool(pop, cfg)
	if err != nil {
		return nil, err
	}
	return &Simulator{truth: truth, pool: pool, cfg: cfg, st: newStream()}, nil
}

// Post simulates every assignment of the posted HITs and schedules their
// delivery in virtual-completion-time order.
func (s *Simulator) Post(ctx context.Context, hits []HIT) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	outcomes := make([]hitOutcome, len(hits))
	forEachHIT(len(hits), s.cfg.Parallelism, func(i int) {
		h := hits[i]
		if h.Kind == ClusterKind {
			outcomes[i] = s.simulateClusterHIT(h)
		} else {
			outcomes[i] = s.simulatePairHIT(h)
		}
	})

	var asgs []Assignment
	for i, o := range outcomes {
		h := hits[i]
		r := h.Assignments
		n := len(h.Pairs)
		for slot := 0; slot < r; slot++ {
			a := Assignment{HIT: h.ID, Slot: slot, Worker: -1, Seconds: o.seconds[slot]}
			if h.Kind == ClusterKind {
				// Cluster assignments are one worker's pass over the whole
				// group: answers are stored assignment-major.
				a.Answers = append([]aggregate.Answer(nil), o.answers[slot*n:(slot+1)*n]...)
				a.Worker = o.workers[slot]
			} else {
				// Pair assignments replicate each pair to its own worker
				// set: answers are stored pair-major, so slot s holds every
				// pair's s-th replica.
				a.Answers = make([]aggregate.Answer, n)
				for p := 0; p < n; p++ {
					a.Answers[p] = o.answers[p*r+slot]
				}
			}
			asgs = append(asgs, a)
		}
	}
	// The virtual clock: deliver in simulated completion order. The sort
	// is stable over (Ord, slot) construction order, so ties — and thus
	// the whole stream — are deterministic.
	sort.SliceStable(asgs, func(i, j int) bool { return asgs[i].Seconds < asgs[j].Seconds })

	s.mu.Lock()
	for i, o := range outcomes {
		s.totalEffort += o.effort
		s.hitCount++
		if !s.kindSet {
			s.kind = hits[i].Kind
			s.kindSet = true
		}
	}
	s.mu.Unlock()

	s.st.push(asgs...)
	return nil
}

// Collect returns the virtual-clock-ordered assignment stream.
func (s *Simulator) Collect(ctx context.Context) <-chan Assignment {
	return s.st.channel(ctx)
}

// TotalSeconds implements Scheduler: the batch makespan under the
// attraction-scaled list-scheduling model (workers drawn by the interface
// kind, deterred by over-fair effort).
func (s *Simulator) TotalSeconds(assignmentSeconds []float64) float64 {
	s.mu.Lock()
	attractionBase := s.cfg.PairAttraction
	if s.kindSet && s.kind == ClusterKind {
		attractionBase = s.cfg.ClusterAttraction
	}
	avgEffort := 0.0
	if s.hitCount > 0 {
		avgEffort = s.totalEffort / float64(s.hitCount)
	}
	s.mu.Unlock()
	attraction := attractionBase * effortDiscount(avgEffort, s.cfg.FairComparisons)
	return makespan(assignmentSeconds, s.pool, attraction)
}

// simulatePairHIT simulates one pair-based HIT: every pair is replicated
// to Assignments distinct workers drawn from the pair's own RNG stream
// (pairSeed), so a pair's verdicts depend only on (Config.Seed, pair) —
// never on which HIT the pair was batched into or when that HIT ran.
func (s *Simulator) simulatePairHIT(h HIT) hitOutcome {
	cfg := &s.cfg
	r := h.Assignments
	var o hitOutcome
	slotSpeed := make([]float64, r)
	for _, p := range h.Pairs {
		rng := rand.New(rand.NewSource(pairSeed(cfg.Seed, p)))
		isMatch := s.truth.Has(p.A, p.B)
		difficulty := cfg.difficultyOf(p)
		for slot, w := range pickDistinct(s.pool, r, rng) {
			o.workers = append(o.workers, w.ID)
			o.answers = append(o.answers, aggregate.Answer{
				Pair:   p,
				Worker: w.ID,
				Match:  w.AnswerWithDifficulty(isMatch, difficulty, rng),
			})
			slotSpeed[slot] += w.Speed
		}
	}
	hitSeconds := cfg.BaseSeconds + cfg.SecondsPerPairComparison*float64(len(h.Pairs))
	for slot := 0; slot < r; slot++ {
		speed := 1.0
		if len(h.Pairs) > 0 {
			speed = slotSpeed[slot] / float64(len(h.Pairs))
		}
		o.seconds = append(o.seconds, hitSeconds*speed)
	}
	o.effort = float64(len(h.Pairs))
	return o
}

// simulateClusterHIT simulates one cluster-based HIT: each assigned
// worker produces noisy pairwise judgments on the covered pairs,
// transitively closed by union-find (the colour-labelling interface
// forces records with the same label into one entity). The worker's
// completion time follows the Section 6 comparison model applied to
// their own inferred partition. Randomness comes from the HIT's ordinal
// stream (hitSeed), keeping concurrent execution bit-identical.
func (s *Simulator) simulateClusterHIT(h HIT) hitOutcome {
	cfg := &s.cfg
	ch := hitgen.ClusterHIT{Records: h.Records}
	rng := rand.New(rand.NewSource(hitSeed(cfg.Seed, streamClusterHITs, h.Ord)))
	var o hitOutcome
	for _, w := range pickDistinct(s.pool, h.Assignments, rng) {
		o.workers = append(o.workers, w.ID)
		answers := clusterAnswers(ch, h.Pairs, s.truth, w, cfg, rng)
		o.answers = append(o.answers, answers...)
		// Worker's own partition determines their comparison count.
		own := record.NewPairSet()
		for _, a := range answers {
			if a.Match {
				own.Add(a.Pair.A, a.Pair.B)
			}
		}
		comparisons := hitgen.BestOrderComparisons(hitgen.EntitySizes(ch, own))
		o.seconds = append(o.seconds, (cfg.BaseSeconds+cfg.SecondsPerClusterComparison*float64(comparisons))*w.Speed)
	}
	o.effort = float64(hitgen.BestOrderComparisons(hitgen.EntitySizes(ch, s.truth))) *
		cfg.SecondsPerClusterComparison / cfg.SecondsPerPairComparison
	return o
}
