package crowd

import (
	"context"
	"testing"
	"time"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/record"
)

// TestRetractionMidFlight: after the first HIT completes, the scheduler
// declares the second HIT's verdicts deducible; the manager withdraws it
// mid-flight, the run ends without its answers, and the queue backend no
// longer offers it to workers.
func TestRetractionMidFlight(t *testing.T) {
	pairs := testPairs()
	truth := testTruth()
	q := NewQueue(QueueOptions{})

	hits := PairHITsFromGen([][]record.Pair{pairs[:2], pairs[2:]}, 1)

	var completed []int
	retractSecond := false
	opts := ExecuteOptions{
		OnHITComplete: func(h HIT, answers []aggregate.Answer) {
			completed = append(completed, h.ID)
			if len(answers) != len(h.Pairs) {
				t.Errorf("OnHITComplete(%d): %d answers for %d pairs", h.ID, len(answers), len(h.Pairs))
			}
			retractSecond = true
		},
		Retractable: func(h HIT) bool { return retractSecond && h.ID == hits[1].ID },
	}

	var res *Result
	var execErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, execErr = ExecuteHITs(context.Background(), q, hits, opts)
	}()

	// One worker answers only the first HIT; the second is never touched.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case <-deadline:
			t.Fatal("timed out answering the first HIT")
		default:
		}
		c, ok := q.Claim("w0")
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		if c.HIT.ID != hits[0].ID {
			t.Fatalf("claimed HIT %d; want the first (%d)", c.HIT.ID, hits[0].ID)
		}
		truthfulAnswer(t, q, c, truth)
		break
	}

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run did not end after the second HIT was retracted")
	}
	if execErr != nil {
		t.Fatal(execErr)
	}
	if res.RetractedHITs != 1 {
		t.Errorf("RetractedHITs = %d; want 1", res.RetractedHITs)
	}
	if len(completed) != 1 || completed[0] != hits[0].ID {
		t.Errorf("OnHITComplete fired for %v; want exactly the first HIT", completed)
	}
	// Only the completed HIT's answers are in the result.
	if len(res.Answers) != len(pairs[:2]) {
		t.Fatalf("got %d answers; want %d (first HIT only)", len(res.Answers), 2)
	}
	got := record.NewPairSet()
	for _, a := range res.Answers {
		got.Add(a.Pair.A, a.Pair.B)
	}
	for _, p := range pairs[:2] {
		if !got.Has(p.A, p.B) {
			t.Errorf("answer for %v missing from the result", p)
		}
	}
	// Cost covers only the one collected assignment.
	if res.CostDollars != 1*DollarsPerAssignment {
		t.Errorf("CostDollars = %v; want one assignment", res.CostDollars)
	}
	// The backend dropped the withdrawn task: nothing is claimable.
	if _, ok := q.Claim("w1"); ok {
		t.Error("retracted HIT still claimable on the queue")
	}
}

// TestRetractionPaysCollectedAssignments: a HIT retracted after some of
// its replicas arrived still pays for those replicas, and its fragment
// answers stay out of the result.
func TestRetractionPaysCollectedAssignments(t *testing.T) {
	pairs := testPairs()
	truth := testTruth()
	q := NewQueue(QueueOptions{})

	// Two HITs: the first needs 1 assignment, the second needs 2.
	h1 := PairHITsFromGen([][]record.Pair{pairs[:2]}, 1)
	h2 := PairHITsFromGen([][]record.Pair{pairs[2:]}, 2)
	hits := []HIT{h1[0], h2[0]}

	firstDone := false
	opts := ExecuteOptions{
		OnHITComplete: func(h HIT, _ []aggregate.Answer) {
			if h.ID == hits[0].ID {
				firstDone = true
			}
		},
		Retractable: func(h HIT) bool { return firstDone && h.ID == hits[1].ID },
	}

	var res *Result
	var execErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, execErr = ExecuteHITs(context.Background(), q, hits, opts)
	}()

	// Claim both HITs, then answer in a forced order: the second HIT's
	// first replica lands while the first HIT's claim is still held, and
	// only then does the first HIT complete — so the manager retracts the
	// second with one replica already collected.
	deadline := time.After(5 * time.Second)
	claims := map[int]*Claimed{}
	for w := 0; len(claims) < 2; w++ {
		select {
		case <-deadline:
			t.Fatal("timed out claiming both HITs")
		default:
		}
		c, ok := q.Claim([]string{"w-a", "w-b", "w-c"}[w%3])
		if !ok {
			time.Sleep(time.Millisecond)
			continue
		}
		claims[c.HIT.ID] = c
	}
	truthfulAnswer(t, q, claims[hits[1].ID], truth) // replica 1 of 2
	time.Sleep(10 * time.Millisecond)               // let the manager collect it
	truthfulAnswer(t, q, claims[hits[0].ID], truth) // completes HIT 1 → retract HIT 2

	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("run did not end after retraction")
	}
	if execErr != nil {
		t.Fatal(execErr)
	}
	if res.RetractedHITs != 1 {
		t.Fatalf("RetractedHITs = %d; want 1", res.RetractedHITs)
	}
	// Paid: the first HIT's single assignment plus the second's collected
	// replica — the crowd work already done cannot be un-paid.
	if want := 2 * DollarsPerAssignment; res.CostDollars != want {
		t.Errorf("CostDollars = %v; want %v", res.CostDollars, want)
	}
	// The retracted HIT's fragment answers are excluded.
	for _, a := range res.Answers {
		for _, p := range pairs[2:] {
			if a.Pair == p {
				t.Errorf("fragment answer for retracted pair %v leaked into the result", p)
			}
		}
	}
}
