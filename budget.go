package crowder

import (
	"errors"
	"fmt"
	"sort"
)

// BudgetOptions configures ResolveWithBudget: the base workflow options
// plus a dollar budget and the thresholds to consider.
type BudgetOptions struct {
	// Options carries the workflow configuration. Its Threshold field is
	// ignored — the budget search chooses it.
	Options
	// BudgetDollars is the maximum crowd spend.
	BudgetDollars float64
	// Thresholds are the candidate likelihood thresholds, any order
	// (default {0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5}).
	Thresholds []float64
}

// BudgetPlan describes the threshold the budget search selected.
type BudgetPlan struct {
	// Threshold is the chosen likelihood threshold (the lowest affordable
	// one — lower thresholds retain more true matches, Section 9's
	// cost/quality trade-off).
	Threshold float64
	// Estimate is the projected footprint at that threshold.
	Estimate Estimate
	// Considered lists every candidate threshold with its estimate, in
	// ascending threshold order, for reporting.
	Considered []ConsideredThreshold
}

// ConsideredThreshold is one budget-search candidate.
type ConsideredThreshold struct {
	Threshold float64
	Estimate  Estimate
	Fits      bool
}

// ErrBudgetTooSmall reports that no candidate threshold fits the budget.
var ErrBudgetTooSmall = errors.New("crowder: no threshold fits the budget")

// PlanBudget estimates every candidate threshold and selects the lowest
// one whose projected cost fits the budget. It runs no crowd work.
func PlanBudget(t *Table, opts BudgetOptions) (*BudgetPlan, error) {
	if opts.BudgetDollars <= 0 {
		return nil, errors.New("crowder: budget must be positive")
	}
	thresholds := opts.Thresholds
	if len(thresholds) == 0 {
		thresholds = []float64{0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.5}
	}
	sorted := append([]float64(nil), thresholds...)
	sort.Float64s(sorted)

	plan := &BudgetPlan{Threshold: -1}
	anyWork := false
	for _, tau := range sorted {
		if tau <= 0 || tau > 1 {
			return nil, fmt.Errorf("crowder: threshold %v outside (0, 1]", tau)
		}
		o := opts.Options
		o.Threshold = tau
		est, err := EstimateCost(t, o)
		if err != nil {
			return nil, err
		}
		fits := est.CostDollars <= opts.BudgetDollars
		plan.Considered = append(plan.Considered, ConsideredThreshold{
			Threshold: tau,
			Estimate:  *est,
			Fits:      fits,
		})
		if est.HITs > 0 {
			anyWork = true
		}
		// Prefer the lowest affordable threshold that actually sends work
		// to the crowd; a zero-HIT plan is free but achieves nothing.
		if fits && est.HITs > 0 && plan.Threshold < 0 {
			plan.Threshold = tau
			plan.Estimate = *est
		}
	}
	if plan.Threshold < 0 {
		if anyWork {
			return plan, ErrBudgetTooSmall
		}
		// No threshold produces crowd work at all: the trivial plan (the
		// most permissive threshold) is correct — there is nothing to
		// verify.
		plan.Threshold = sorted[0]
		plan.Estimate = plan.Considered[0].Estimate
	}
	return plan, nil
}

// ResolveWithBudget plans the cheapest threshold that maximizes attainable
// recall within the budget (Section 9's future-work direction: "users may
// wish to trade off cost, quality and latency"), then runs the hybrid
// workflow there. The returned plan records every considered threshold.
//
// With Options.Hybrid on, the budget search and the resolution consume
// the same learner state by construction: both PlanBudget's estimates
// (throwaway sessions) and the one-shot run start from an untrained
// learner — a fresh session has no verdicts to train from — so the
// projection and the actual first delta route identically (everything
// to the crowd) and the estimates stay faithful. The dollar budget is
// additionally threaded into HybridBudgetDollars (when the caller left
// it unset) so an incremental session grown from the returned
// resolver-style options keeps its band adaptation anchored to the same
// budget. For budget projections of a *live* session whose learner is
// already trained, use Resolver.EstimateDelta instead of PlanBudget.
func ResolveWithBudget(t *Table, opts BudgetOptions) (*Result, *BudgetPlan, error) {
	plan, err := PlanBudget(t, opts)
	if err != nil {
		return nil, plan, err
	}
	o := opts.Options
	o.Threshold = plan.Threshold
	if o.Hybrid == HybridOn && o.HybridBudgetDollars == 0 {
		o.HybridBudgetDollars = opts.BudgetDollars
	}
	res, err := Resolve(t, o)
	if err != nil {
		return nil, plan, err
	}
	return res, plan, nil
}
