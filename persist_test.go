package crowder

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openTestStore opens a FileStore in a fresh temp dir and returns it
// with its recovered (empty) state.
func openTestStore(t *testing.T, dir string) *FileStore {
	t.Helper()
	fl, rec, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Empty() {
		t.Fatalf("fresh store dir not empty: %+v", rec)
	}
	return fl
}

// TestRestoreResolverBitIdentical: a session logged to disk, reloaded
// with RestoreResolver, must continue bit-identically to one that never
// went down — same matches, same candidates, and zero re-issued HITs for
// pairs already judged. Covered for the single-index path and the
// sharded (Shards=4) session, whose frozen per-delta index weights are
// the hard part of replay.
func TestRestoreResolverBitIdentical(t *testing.T) {
	rows, schema, oracle := resolverDataset(11, 160, 30)
	batches := [][][]string{rows[:70], rows[70:110], rows[110:140]}
	extra := rows[140:]

	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := Options{
				Threshold: 0.4,
				HITType:   PairHITs,
				Oracle:    oracle,
				Seed:      7,
				Shards:    shards,
			}

			// Control: the session that never crashes.
			control, err := NewResolver(NewTable(schema...), opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				control.AppendBatch(b...)
				if _, err := control.ResolveDelta(); err != nil {
					t.Fatal(err)
				}
			}

			// Durable twin: same deltas, logged to disk, then "crashed"
			// (dropped without Close — every paid verdict is fsynced).
			dir := t.TempDir()
			dopts := opts
			dopts.Store = openTestStore(t, dir)
			durable, err := NewResolver(NewTable(schema...), dopts)
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				durable.AppendBatch(b...)
				if _, err := durable.ResolveDelta(); err != nil {
					t.Fatal(err)
				}
			}

			// Recover from disk into a fresh resolver.
			fl2, rec, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer fl2.Close()
			ropts := opts
			ropts.Store = fl2
			restored, err := RestoreResolver(rec, ropts)
			if err != nil {
				t.Fatal(err)
			}

			// Continuing both sessions with one more delta must agree
			// bit-for-bit, and the restored session must pay for exactly
			// what the control pays for — nothing re-issued.
			control.AppendBatch(extra...)
			want, err := control.ResolveDelta()
			if err != nil {
				t.Fatal(err)
			}
			restored.AppendBatch(extra...)
			got, err := restored.ResolveDelta()
			if err != nil {
				t.Fatal(err)
			}
			assertSameMatches(t, "restored", want.Matches, got.Matches)
			if got.HITs != want.HITs {
				t.Errorf("restored delta issued %d HITs; control issued %d", got.HITs, want.HITs)
			}
			if got.Candidates != want.Candidates || got.TotalPairs != want.TotalPairs {
				t.Errorf("restored accounting (%d cand, %d pairs) vs control (%d, %d)",
					got.Candidates, got.TotalPairs, want.Candidates, want.TotalPairs)
			}
			if got.CostDollars != want.CostDollars {
				t.Errorf("restored CostDollars %v vs control %v", got.CostDollars, want.CostDollars)
			}
		})
	}
}

// TestRestoreResolverAggregatorMismatch: a session must be recovered
// under the aggregation mode that produced its verdicts.
func TestRestoreResolverAggregatorMismatch(t *testing.T) {
	rows, schema, oracle := resolverDataset(3, 40, 8)
	dir := t.TempDir()
	opts := Options{Threshold: 0.4, HITType: PairHITs, Oracle: oracle, Seed: 1, Store: openTestStore(t, dir)}
	rv, err := NewResolver(NewTable(schema...), opts)
	if err != nil {
		t.Fatal(err)
	}
	rv.AppendBatch(rows...)
	if _, err := rv.ResolveDelta(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := Options{Threshold: 0.4, HITType: PairHITs, Oracle: oracle, Seed: 1, Aggregation: AggregationMajorityVote}
	if _, err := RestoreResolver(rec, bad); err == nil {
		t.Fatal("recovering a dawid-skene session as majority-vote should fail")
	}
}

// copyDir snapshots a session directory mid-run — a crash-consistent
// copy, exactly what a SIGKILL leaves behind (a possibly-torn WAL tail).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	des, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		data, err := os.ReadFile(filepath.Join(src, de.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, de.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRestoreResolverAdoptsInFlight kills a resolve mid-crowd (by
// snapshotting the session dir after half the HITs are answered — every
// answer is fsynced before the queue acks it) and restarts from the
// copy: the recovered session must adopt the in-flight HITs, re-issue
// nothing for the already-answered pairs, and finish with matches
// bit-identical to the run that never crashed.
func TestRestoreResolverAdoptsInFlight(t *testing.T) {
	rows, schema, oracle := resolverDataset(9, 36, 9)
	truth := make(map[Pair]bool, len(oracle))
	for _, p := range oracle {
		truth[p] = true
	}
	isMatch := func(a, b int) bool {
		if a > b {
			a, b = b, a
		}
		return truth[Pair{A: a, B: b}]
	}

	dir := t.TempDir()
	fl := openTestStore(t, dir)
	queue := NewQueueBackend(QueueOptions{Lease: time.Minute, Journal: NewQueueJournal(fl)})
	opts := Options{
		Threshold:   0.4,
		HITType:     PairHITs,
		ClusterSize: 2, // split the posting across several HITs so the crash lands mid-flight
		Assignments: 1,
		Backend:     queue,
		Store:       fl,
	}
	rv, err := NewResolver(NewTable(schema...), opts)
	if err != nil {
		t.Fatal(err)
	}
	rv.AppendBatch(rows...)

	resCh := make(chan *Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := rv.ResolveDelta()
		resCh <- res
		errCh <- err
	}()

	// Wait for the full posting, then answer half the open HITs; each
	// Answer fsyncs its QueueAnswered event before returning.
	var open []OpenHIT
	deadline := time.Now().Add(10 * time.Second)
	for {
		open = queue.Open()
		if len(open) > 0 {
			// Pair HITs post in a single atomic batch, so the first
			// non-empty view is the complete posting.
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("HITs never posted")
		}
		time.Sleep(time.Millisecond)
	}
	answered := make(map[Pair]bool)
	half := (len(open) + 1) / 2
	for i := 0; i < half; i++ {
		c, ok := queue.Claim("w")
		if !ok {
			t.Fatalf("claim %d/%d failed", i, half)
		}
		var vs []Verdict
		for _, p := range c.HIT.Pairs {
			vs = append(vs, Verdict{A: p.A, B: p.B, Match: isMatch(int(p.A), int(p.B))})
			answered[Pair{A: int(p.A), B: int(p.B)}] = true
		}
		if err := queue.Answer(c.Token, vs); err != nil {
			t.Fatal(err)
		}
	}

	// SIGKILL: snapshot the dir as the crash would leave it. The original
	// session keeps running and finishes as the never-crashed control.
	crashDir := t.TempDir()
	copyDir(t, dir, crashDir)

	for {
		c, ok := queue.Claim("w")
		if !ok {
			break
		}
		var vs []Verdict
		for _, p := range c.HIT.Pairs {
			vs = append(vs, Verdict{A: p.A, B: p.B, Match: isMatch(int(p.A), int(p.B))})
		}
		if err := queue.Answer(c.Token, vs); err != nil {
			t.Fatal(err)
		}
	}
	want := <-resCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}

	// Restart from the crash copy.
	fl2, rec, err := OpenStore(crashDir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fl2.Close()
	if rec.Resume == nil || rec.Resume.Empty() {
		t.Fatal("crashed session has no in-flight HITs to adopt")
	}
	queue2 := RestoreQueue(QueueOptions{Lease: time.Minute, Journal: NewQueueJournal(fl2)}, rec.Queue)
	EnsureHITIDFloor(rec.NextHITID)
	ropts := opts
	ropts.Backend = queue2
	ropts.Store = fl2
	restored, err := RestoreResolver(rec, ropts)
	if err != nil {
		t.Fatal(err)
	}

	resCh2 := make(chan *Result, 1)
	errCh2 := make(chan error, 1)
	go func() {
		res, err := restored.ResolveDelta()
		resCh2 <- res
		errCh2 <- err
	}()

	// Drain the restored queue: only the unanswered HITs may surface.
	reclaimed := 0
	deadline = time.Now().Add(10 * time.Second)
	for {
		c, ok := queue2.Claim("w")
		if !ok {
			select {
			case res := <-resCh2:
				if err := <-errCh2; err != nil {
					t.Fatal(err)
				}
				if reclaimed == 0 {
					t.Fatal("nothing left to answer after recovery — crash state was not mid-flight")
				}
				assertSameMatches(t, "crash-recovered", want.Matches, res.Matches)
				return
			default:
				if time.Now().After(deadline) {
					t.Fatal("restored resolve never finished")
				}
				time.Sleep(time.Millisecond)
				continue
			}
		}
		for _, p := range c.HIT.Pairs {
			if answered[Pair{A: int(p.A), B: int(p.B)}] {
				t.Fatalf("pair (%d,%d) was answered before the crash and re-issued after recovery", p.A, p.B)
			}
		}
		reclaimed++
		var vs []Verdict
		for _, p := range c.HIT.Pairs {
			vs = append(vs, Verdict{A: p.A, B: p.B, Match: isMatch(int(p.A), int(p.B))})
		}
		if err := queue2.Answer(c.Token, vs); err != nil {
			t.Fatal(err)
		}
	}
}
