package crowder

import (
	"strconv"
	"strings"
	"testing"
)

func TestReadCSVWithHeader(t *testing.T) {
	in := "name,price\niPad 2 16GB,$490\niPhone 4 16GB,$520\n"
	tab, err := ReadCSV(strings.NewReader(in), CSVOptions{Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d; want 2", tab.Len())
	}
	if got := tab.Record(0); got[0] != "iPad 2 16GB" || got[1] != "$490" {
		t.Errorf("Record(0) = %v", got)
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	in := "a,b\nc,d\n"
	tab, err := ReadCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d; want 2", tab.Len())
	}
}

func TestReadCSVSourceColumnByName(t *testing.T) {
	in := "name,src\nabt item,0\nbuy item,1\n"
	tab, err := ReadCSV(strings.NewReader(in), CSVOptions{Header: true, SourceColumn: "src"})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Record(0); len(got) != 1 || got[0] != "abt item" {
		t.Errorf("Record(0) = %v; source column should be consumed", got)
	}
	// Verify the sources landed by running a cross-source machine join.
	res, err := Resolve(tab, Options{Threshold: 0, CrossSourceOnly: true, MachineOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalPairs != 1 {
		t.Errorf("TotalPairs = %d; want 1 cross-source pair", res.TotalPairs)
	}
}

func TestReadCSVSourceColumnByIndex(t *testing.T) {
	in := "0,first\n1,second\n"
	tab, err := ReadCSV(strings.NewReader(in), CSVOptions{SourceColumn: "0"})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Record(1); len(got) != 1 || got[0] != "second" {
		t.Errorf("Record(1) = %v", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		opts CSVOptions
	}{
		{"empty", "", CSVOptions{}},
		{"header only", "a,b\n", CSVOptions{Header: true}},
		{"ragged", "a,b\nc\n", CSVOptions{Header: true}},
		{"missing source col", "a,b\nc,d\n", CSVOptions{Header: true, SourceColumn: "zzz"}},
		{"bad source index", "a,b\n", CSVOptions{SourceColumn: "9"}},
		{"non-integer source", "name,src\nx,notanint\n", CSVOptions{Header: true, SourceColumn: "src"}},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), c.opts); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// A header that names the source column more than once is ambiguous —
// silently consuming the first match used to keep the duplicate's data
// as an attribute. The reader must reject it, and say why.
func TestReadCSVDuplicateSourceColumn(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		opts    CSVOptions
		wantErr string
	}{
		{
			name:    "duplicated source column",
			in:      "src,name,src\n0,a,1\n",
			opts:    CSVOptions{Header: true, SourceColumn: "src"},
			wantErr: `source column "src" appears 2 times`,
		},
		{
			name:    "triplicated source column",
			in:      "s,s,s\n0,1,2\n",
			opts:    CSVOptions{Header: true, SourceColumn: "s"},
			wantErr: `source column "s" appears 3 times`,
		},
		{
			name: "duplicate header but unique source column",
			in:   "name,name,src\na,b,0\n",
			opts: CSVOptions{Header: true, SourceColumn: "src"},
		},
		{
			name: "duplicate header without source column",
			in:   "name,name\na,b\n",
			opts: CSVOptions{Header: true},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(c.in), c.opts)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestReadCSVCustomComma(t *testing.T) {
	in := "a;b\nc;d\n"
	tab, err := ReadCSV(strings.NewReader(in), CSVOptions{Comma: ';'})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Record(0); got[1] != "b" {
		t.Errorf("Record(0) = %v", got)
	}
}

func TestWriteMatchesCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteMatchesCSV(&sb, []Match{
		{Pair: Pair{1, 2}, Confidence: 0.93},
		{Pair: Pair{3, 4}, Confidence: 0.51},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "record_a,record_b,confidence") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "1,2,0.93\n") {
		t.Errorf("missing row: %q", out)
	}
}

// Confidence values must survive an export/import cycle exactly: the
// old fixed 4-decimal format collapsed nearby posteriors (and mangled
// tiny ones to 0.0000).
func TestWriteMatchesCSVRoundTrip(t *testing.T) {
	confs := []float64{
		1.0 / 3.0,
		0.93000049999,  // would collide with 0.9300 at 4 decimals
		0.930004999949, // distinct from the one above
		1e-9,           // would round to 0.0000
		0.5,
		1,
	}
	matches := make([]Match, len(confs))
	for i, c := range confs {
		matches[i] = Match{Pair: Pair{A: i, B: i + 100}, Confidence: c}
	}
	var sb strings.Builder
	if err := WriteMatchesCSV(&sb, matches); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != len(matches)+1 {
		t.Fatalf("got %d lines; want %d", len(lines), len(matches)+1)
	}
	for i, c := range confs {
		fields := strings.Split(lines[i+1], ",")
		if len(fields) != 3 {
			t.Fatalf("row %d: %q", i, lines[i+1])
		}
		got, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			t.Fatalf("row %d: parsing %q: %v", i, fields[2], err)
		}
		if got != c {
			t.Errorf("row %d: confidence %v round-tripped to %v", i, c, got)
		}
	}
}

func TestEntities(t *testing.T) {
	res := &Result{Matches: []Match{
		{Pair: Pair{0, 1}, Confidence: 0.9},
		{Pair: Pair{1, 6}, Confidence: 0.8}, // transitively joins {0,1,6}
		{Pair: Pair{2, 3}, Confidence: 0.7},
		{Pair: Pair{4, 5}, Confidence: 0.2}, // below threshold: ignored
	}}
	ents := res.Entities()
	if len(ents) != 2 {
		t.Fatalf("got %d entities; want 2: %v", len(ents), ents)
	}
	if len(ents[0]) != 3 || ents[0][0] != 0 || ents[0][1] != 1 || ents[0][2] != 6 {
		t.Errorf("first entity = %v; want [0 1 6]", ents[0])
	}
	if len(ents[1]) != 2 || ents[1][0] != 2 {
		t.Errorf("second entity = %v; want [2 3]", ents[1])
	}
}

func TestEntitiesEmpty(t *testing.T) {
	res := &Result{}
	if ents := res.Entities(); len(ents) != 0 {
		t.Errorf("Entities = %v; want none", ents)
	}
}

func TestEntitiesEndToEnd(t *testing.T) {
	tab, oracle := paperTable()
	res, err := Resolve(tab, Options{
		Threshold:         0.3,
		ClusterSize:       4,
		Oracle:            oracle,
		QualificationTest: true,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ents := res.Entities()
	// The iPad trio {0, 1, 6} must appear as (part of) one entity.
	found := false
	for _, e := range ents {
		has := map[int]bool{}
		for _, r := range e {
			has[r] = true
		}
		if has[0] && has[1] && has[6] {
			found = true
		}
	}
	if !found {
		t.Errorf("iPad trio not clustered: %v", ents)
	}
}
