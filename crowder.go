// Package crowder implements the hybrid human–machine entity-resolution
// workflow of "CrowdER: Crowdsourcing Entity Resolution" (Wang, Kraska,
// Franklin, Feng — PVLDB 5(11), 2012).
//
// The workflow (Figure 1 of the paper) runs in three stages:
//
//  1. A machine pass computes a likelihood for every candidate record pair
//     (Jaccard similarity over the records' token sets) and discards pairs
//     below a threshold.
//  2. The surviving pairs are batched into HITs — pair-based (independent
//     pairs per task) or cluster-based (groups of records in which the
//     crowd finds all matches). Cluster-based HIT generation minimizes the
//     number of tasks with the paper's two-tiered algorithm: greedy
//     partitioning of large connected components plus cutting-stock
//     packing of the small ones.
//  3. The HITs are executed by a crowd (simulated here: this repository
//     substitutes a worker-model simulator for Amazon Mechanical Turk),
//     each HIT replicated across multiple workers, and the answers are
//     combined with the Dawid–Skene EM algorithm into ranked match
//     decisions.
//
// Internally Resolve runs as a staged engine (internal/engine): four named
// stages — prune (the machine pass), generate (HIT batching), execute
// (simulated crowd) and aggregate (Dawid–Skene EM) — connected by
// channels, with per-stage wall-clock timings surfaced on Result.Stages.
// The machine pass operates on interned token IDs cached on the table and
// shards its prefix-filtered join across Options.Parallelism goroutines;
// the crowd stage executes HITs concurrently with a deterministic per-HIT
// RNG stream. Results are bit-identical at every parallelism level: runs
// are deterministic in (table, Options) alone.
//
// The minimal entry point is Resolve:
//
//	table := crowder.NewTable("name", "price")
//	table.Append("iPad Two 16GB WiFi White", "$490")
//	table.Append("iPad 2nd generation 16GB WiFi White", "$469")
//	res, err := crowder.Resolve(table, crowder.Options{
//		Threshold: 0.3,
//		Oracle:    reference, // simulated-crowd ground truth
//	})
//
// Because the crowd is simulated, callers provide an Oracle: the reference
// labels the simulated workers perturb. In a live deployment the oracle is
// replaced by real crowd answers; everything upstream (pruning, HIT
// generation, aggregation) is unchanged.
package crowder

import (
	"errors"
	"fmt"
	"sort"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/blocking"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/engine"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
)

// Table is a collection of records to de-duplicate. Records are dense
// integer IDs in insertion order.
type Table struct {
	inner *record.Table
}

// NewTable creates a table with the given attribute names.
func NewTable(schema ...string) *Table {
	return &Table{inner: record.NewTable(schema...)}
}

// Append adds a record and returns its ID.
func (t *Table) Append(values ...string) int {
	return int(t.inner.Append(values...))
}

// AppendFrom adds a record tagged with a source index. When records come
// from two sources (e.g. integrating two catalogs), set CrossSourceOnly in
// Options so only cross-source pairs are considered.
func (t *Table) AppendFrom(source int, values ...string) int {
	return int(t.inner.AppendFrom(source, values...))
}

// Len returns the number of records.
func (t *Table) Len() int { return t.inner.Len() }

// Record returns the attribute values of the record with the given ID.
func (t *Table) Record(id int) []string {
	r := t.inner.Get(record.ID(id))
	if r == nil {
		return nil
	}
	out := make([]string, len(r.Values))
	copy(out, r.Values)
	return out
}

// Pair is an unordered pair of record IDs (A < B).
type Pair struct {
	A, B int
}

// HITType selects the task format sent to the crowd.
type HITType int

const (
	// ClusterHITs batch up to ClusterSize records per task; workers find
	// all matches within the group. This is the paper's preferred format.
	ClusterHITs HITType = iota
	// PairHITs batch ClusterSize individual pairs per task, each verified
	// independently.
	PairHITs
)

// Generator selects the cluster-based HIT generation strategy.
type Generator int

const (
	// GenTwoTiered is the paper's contribution (Section 5) and the default.
	GenTwoTiered Generator = iota
	// GenRandom fills HITs with random pairs.
	GenRandom
	// GenBFS fills HITs in breadth-first graph order.
	GenBFS
	// GenDFS fills HITs in depth-first graph order.
	GenDFS
	// GenApprox is the k-clique-cover approximation algorithm (Section 4).
	GenApprox
)

// CandidateSource selects how candidate pairs are generated before the
// likelihood threshold is applied.
type CandidateSource int

const (
	// SourceSimJoin uses the prefix-filtered similarity join (default).
	SourceSimJoin CandidateSource = iota
	// SourceTokenBlocking uses token blocking: records sharing at least
	// one token become candidates, then candidates are Jaccard-scored.
	// Complete for thresholds > 0; combined with MaxBlock it trades a
	// little recall for scale (the paper's footnote 1 and the Section 9
	// scaling direction).
	SourceTokenBlocking
)

// Options configures Resolve.
type Options struct {
	// Threshold is the minimum machine likelihood (Jaccard similarity) for
	// a pair to be sent to the crowd. Default 0.3.
	Threshold float64
	// Candidates selects the candidate-generation scheme (default
	// SourceSimJoin).
	Candidates CandidateSource
	// MaxBlock, with SourceTokenBlocking, drops blocks larger than this
	// many records (0 = no cap). Capping ubiquitous-token blocks is the
	// standard blocking lever for very large tables.
	MaxBlock int
	// ClusterSize is k: the maximum records per cluster-based HIT, or
	// pairs per pair-based HIT. Default 10.
	ClusterSize int
	// HITType selects cluster-based (default) or pair-based tasks.
	HITType HITType
	// Generator selects the cluster-based generation strategy
	// (default GenTwoTiered). Ignored for pair-based HITs.
	Generator Generator
	// Assignments is the replication factor per HIT. Default 3.
	Assignments int
	// QualificationTest screens simulated workers through a three-pair
	// test before they may work (Section 7.1).
	QualificationTest bool
	// CrossSourceOnly restricts candidates to pairs from different sources.
	CrossSourceOnly bool
	// Seed drives all simulation randomness. Runs are deterministic in
	// (table, Options).
	Seed int64
	// Workers is the simulated crowd pool size. Default 120.
	Workers int
	// SpammerRate is the fraction of spammers in the pool. Default 0.12.
	SpammerRate float64
	// Oracle is the reference truth the simulated crowd perturbs: the set
	// of genuinely matching pairs. Required (the simulator cannot invent
	// human judgment). Pairs absent from the oracle are treated as
	// non-matches.
	Oracle []Pair
	// MachineOnly skips the crowd entirely and returns the machine
	// likelihood ranking (the "simjoin" baseline of Section 7.3).
	MachineOnly bool
	// Parallelism bounds the worker goroutines used by the machine pass
	// (sharded similarity join) and the simulated crowd (concurrent HIT
	// execution). 0 means GOMAXPROCS. Results are bit-identical at every
	// parallelism level.
	Parallelism int
}

func (o *Options) defaults() {
	if o.Threshold <= 0 {
		o.Threshold = 0.3
	}
	if o.ClusterSize <= 0 {
		o.ClusterSize = 10
	}
	if o.Assignments <= 0 {
		o.Assignments = 3
	}
	if o.Workers <= 0 {
		o.Workers = 120
	}
	if o.SpammerRate <= 0 {
		o.SpammerRate = 0.12
	}
}

// Match is one output pair with the workflow's confidence that it is a
// true match (crowd posterior, or machine likelihood under MachineOnly).
type Match struct {
	Pair       Pair
	Confidence float64
}

// StageStat is the measured wall-clock time of one engine stage.
type StageStat struct {
	// Name is the stage: "prune", "generate", "execute" or "aggregate".
	Name string
	// Seconds is the stage's wall-clock processing time.
	Seconds float64
}

// Result is the outcome of the hybrid workflow.
type Result struct {
	// TotalPairs is the number of candidate pairs before pruning.
	TotalPairs int
	// Candidates is the number of pairs whose likelihood passed the
	// threshold and were sent to the crowd.
	Candidates int
	// HITs is the number of tasks generated.
	HITs int
	// CostDollars is the simulated crowd cost (HITs × assignments ×
	// $0.025, Section 7.1's AMT pricing).
	CostDollars float64
	// ElapsedSeconds is the simulated crowd completion time (makespan).
	ElapsedSeconds float64
	// Matches lists all judged pairs ranked by confidence descending.
	// Callers typically keep those with Confidence ≥ 0.5.
	Matches []Match
	// Stages reports the engine's per-stage wall-clock timings, in
	// execution order (prune, generate, execute, aggregate).
	Stages []StageStat
}

// Accepted returns the matches with confidence at least 0.5.
func (r *Result) Accepted() []Match {
	var out []Match
	for _, m := range r.Matches {
		if m.Confidence >= 0.5 {
			out = append(out, m)
		}
	}
	return out
}

// resolveState is the value threaded through the engine stages. Each
// stage reads what its predecessors produced and fills in its own slice
// of the state.
type resolveState struct {
	table *Table
	opts  Options

	// prune →
	scored []simjoin.ScoredPair
	pairs  []record.Pair
	// generate →
	pairHITs    []hitgen.PairHIT
	clusterHITs []hitgen.ClusterHIT
	// execute →
	run *crowd.Result

	res *Result
}

// skipCrowd reports whether the crowd stages have nothing to do: the
// machine-only baseline, or an empty candidate set.
func (st *resolveState) skipCrowd() bool {
	return st.opts.MachineOnly || len(st.scored) == 0
}

// stagePrune is the machine pass: generate candidate pairs, score them,
// and drop everything below the likelihood threshold.
func stagePrune(st *resolveState) (*resolveState, error) {
	scored, err := machinePass(st.table, st.opts)
	if err != nil {
		return nil, err
	}
	st.scored = scored
	st.res.TotalPairs = totalPairs(st.table, st.opts.CrossSourceOnly)
	st.res.Candidates = len(scored)
	if st.opts.MachineOnly {
		for _, sp := range scored {
			st.res.Matches = append(st.res.Matches, Match{
				Pair:       Pair{A: int(sp.Pair.A), B: int(sp.Pair.B)},
				Confidence: sp.Likelihood,
			})
		}
		return st, nil
	}
	st.pairs = simjoin.Pairs(scored)
	return st, nil
}

// stageGenerate batches the surviving pairs into HITs.
func stageGenerate(st *resolveState) (*resolveState, error) {
	if st.skipCrowd() {
		return st, nil
	}
	switch st.opts.HITType {
	case PairHITs:
		hits, err := hitgen.GeneratePairHITs(st.pairs, st.opts.ClusterSize)
		if err != nil {
			return nil, err
		}
		st.pairHITs = hits
		st.res.HITs = len(hits)
	case ClusterHITs:
		gen := generatorFor(st.opts.Generator, st.opts.Seed)
		hits, err := gen.Generate(st.pairs, st.opts.ClusterSize)
		if err != nil {
			return nil, err
		}
		if verr := hitgen.ValidateCover(st.pairs, hits, st.opts.ClusterSize); verr != nil {
			return nil, fmt.Errorf("crowder: generated HITs violate the covering invariant: %w", verr)
		}
		st.clusterHITs = hits
		st.res.HITs = len(hits)
	default:
		return nil, fmt.Errorf("crowder: unknown HIT type %d", st.opts.HITType)
	}
	return st, nil
}

// stageExecute runs the HITs through the simulated crowd.
func stageExecute(st *resolveState) (*resolveState, error) {
	if st.skipCrowd() {
		return st, nil
	}
	truth := record.NewPairSet()
	for _, p := range st.opts.Oracle {
		truth.Add(record.ID(p.A), record.ID(p.B))
	}
	pop := crowd.NewPopulation(st.opts.Seed, crowd.PopulationOptions{
		Size:        st.opts.Workers,
		SpammerRate: st.opts.SpammerRate,
	})
	// Simulated workers err most on genuinely ambiguous pairs; the machine
	// likelihoods from the prune stage calibrate that per-pair difficulty.
	likelihood := make(map[record.Pair]float64, len(st.scored))
	for _, sp := range st.scored {
		likelihood[sp.Pair] = sp.Likelihood
	}
	cfg := crowd.Config{
		Assignments:       st.opts.Assignments,
		QualificationTest: st.opts.QualificationTest,
		Seed:              st.opts.Seed,
		Parallelism:       st.opts.Parallelism,
		Difficulty:        crowd.DifficultyFromLikelihood(likelihood),
	}
	var (
		run *crowd.Result
		err error
	)
	if st.opts.HITType == PairHITs {
		run, err = crowd.RunPairHITs(st.pairHITs, truth, pop, cfg)
	} else {
		run, err = crowd.RunClusterHITs(st.clusterHITs, st.pairs, truth, pop, cfg)
	}
	if err != nil {
		return nil, err
	}
	st.run = run
	st.res.CostDollars = run.CostDollars
	st.res.ElapsedSeconds = run.TotalSeconds
	return st, nil
}

// stageAggregate combines the replicated answers with Dawid–Skene EM into
// ranked match decisions.
func stageAggregate(st *resolveState) (*resolveState, error) {
	if st.skipCrowd() {
		return st, nil
	}
	post := aggregate.DawidSkene(st.run.Answers, aggregate.DawidSkeneOptions{})
	for _, pr := range post.Ranked() {
		st.res.Matches = append(st.res.Matches, Match{
			Pair:       Pair{A: int(pr.A), B: int(pr.B)},
			Confidence: post[pr],
		})
	}
	return st, nil
}

// resolvePipeline builds the four-stage engine Resolve runs.
func resolvePipeline() *engine.Pipeline[*resolveState] {
	return engine.New(
		engine.Stage[*resolveState]{Name: "prune", Run: stagePrune},
		engine.Stage[*resolveState]{Name: "generate", Run: stageGenerate},
		engine.Stage[*resolveState]{Name: "execute", Run: stageExecute},
		engine.Stage[*resolveState]{Name: "aggregate", Run: stageAggregate},
	)
}

// Resolve runs the hybrid human–machine workflow on the table.
func Resolve(t *Table, opts Options) (*Result, error) {
	opts.defaults()
	if t == nil || t.Len() == 0 {
		return nil, errors.New("crowder: empty table")
	}
	if !opts.MachineOnly && opts.Oracle == nil {
		return nil, errors.New("crowder: Options.Oracle is required (the simulated crowd needs reference labels); set MachineOnly for the pure machine baseline")
	}
	st := &resolveState{table: t, opts: opts, res: &Result{}}
	final, stats, err := resolvePipeline().Run(st)
	if err != nil {
		return nil, err
	}
	for _, s := range stats {
		final.res.Stages = append(final.res.Stages, StageStat{Name: s.Name, Seconds: s.Duration.Seconds()})
	}
	return final.res, nil
}

// machinePass generates and scores candidate pairs per the configured
// candidate source and threshold.
func machinePass(t *Table, opts Options) ([]simjoin.ScoredPair, error) {
	switch opts.Candidates {
	case SourceSimJoin:
		return simjoin.Join(t.inner, simjoin.Options{
			Threshold:       opts.Threshold,
			CrossSourceOnly: opts.CrossSourceOnly,
			Parallelism:     opts.Parallelism,
		}), nil
	case SourceTokenBlocking:
		cands := blocking.TokenBlocking(t.inner, blocking.Options{
			MaxBlock:        opts.MaxBlock,
			CrossSourceOnly: opts.CrossSourceOnly,
		})
		return simjoin.ScoreCandidates(t.inner, cands, opts.Threshold), nil
	default:
		return nil, fmt.Errorf("crowder: unknown candidate source %d", opts.Candidates)
	}
}

// generatorFor maps the public enum to the internal strategy.
func generatorFor(g Generator, seed int64) hitgen.ClusterGenerator {
	switch g {
	case GenRandom:
		return hitgen.Random{Seed: seed}
	case GenBFS:
		return hitgen.BFS{}
	case GenDFS:
		return hitgen.DFS{}
	case GenApprox:
		return hitgen.Approx{}
	default:
		return hitgen.TwoTiered{}
	}
}

// totalPairs counts the candidate-pair universe.
func totalPairs(t *Table, cross bool) int {
	if cross && len(t.inner.Source) > 0 {
		counts := map[int]int{}
		for _, s := range t.inner.Source {
			counts[s]++
		}
		if len(counts) == 2 {
			return counts[0] * counts[1]
		}
	}
	n := t.Len()
	return n * (n - 1) / 2
}

// Estimate is the projected footprint of a workflow configuration,
// computed without running the crowd. It supports the budget-based
// workflow the paper lists as future work: sweep thresholds, estimate,
// pick the cheapest configuration that fits.
type Estimate struct {
	// Candidates is the number of pairs that would be sent to the crowd.
	Candidates int
	// HITs is the number of tasks that would be generated.
	HITs int
	// CostDollars is HITs × Assignments × $0.025.
	CostDollars float64
}

// EstimateCost prunes at the configured threshold and generates (but does
// not crowdsource) the HITs, returning the projected task count and cost.
func EstimateCost(t *Table, opts Options) (*Estimate, error) {
	opts.defaults()
	if t == nil || t.Len() == 0 {
		return nil, errors.New("crowder: empty table")
	}
	scored, err := machinePass(t, opts)
	if err != nil {
		return nil, err
	}
	est := &Estimate{Candidates: len(scored)}
	if len(scored) == 0 {
		return est, nil
	}
	pairs := simjoin.Pairs(scored)
	switch opts.HITType {
	case PairHITs:
		hits, err := hitgen.GeneratePairHITs(pairs, opts.ClusterSize)
		if err != nil {
			return nil, err
		}
		est.HITs = len(hits)
	case ClusterHITs:
		hits, err := generatorFor(opts.Generator, opts.Seed).Generate(pairs, opts.ClusterSize)
		if err != nil {
			return nil, err
		}
		est.HITs = len(hits)
	default:
		return nil, fmt.Errorf("crowder: unknown HIT type %d", opts.HITType)
	}
	est.CostDollars = float64(est.HITs*opts.Assignments) * crowd.DollarsPerAssignment
	return est, nil
}

// SortMatches orders matches by confidence descending (tie-break by pair),
// in place. Resolve's output is already sorted; this helper re-sorts after
// caller-side filtering or merging.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Confidence != ms[j].Confidence {
			return ms[i].Confidence > ms[j].Confidence
		}
		if ms[i].Pair.A != ms[j].Pair.A {
			return ms[i].Pair.A < ms[j].Pair.A
		}
		return ms[i].Pair.B < ms[j].Pair.B
	})
}
