// Package crowder implements the hybrid human–machine entity-resolution
// workflow of "CrowdER: Crowdsourcing Entity Resolution" (Wang, Kraska,
// Franklin, Feng — PVLDB 5(11), 2012).
//
// The workflow (Figure 1 of the paper) runs in three stages:
//
//  1. A machine pass computes a likelihood for every candidate record pair
//     (Jaccard similarity over the records' token sets) and discards pairs
//     below a threshold.
//  2. The surviving pairs are batched into HITs — pair-based (independent
//     pairs per task) or cluster-based (groups of records in which the
//     crowd finds all matches). Cluster-based HIT generation minimizes the
//     number of tasks with the paper's two-tiered algorithm: greedy
//     partitioning of large connected components plus cutting-stock
//     packing of the small ones.
//  3. The HITs are executed by a crowd (simulated here: this repository
//     substitutes a worker-model simulator for Amazon Mechanical Turk),
//     each HIT replicated across multiple workers, and the answers are
//     combined with the Dawid–Skene EM algorithm into ranked match
//     decisions.
//
// Internally every resolution runs as a staged engine (internal/engine):
// four named stages — prune (the machine pass), generate (HIT batching),
// execute (the crowd) and aggregate (Dawid–Skene EM) — connected by
// channels, with per-stage wall-clock timings surfaced on Result.Stages.
// The machine pass operates on interned token IDs cached on the table and
// shards its prefix-filtered join across Options.Parallelism goroutines.
//
// The execute stage is an asynchronous HIT lifecycle behind the Backend
// interface: HITs are posted, assignments stream back as workers finish
// them (each HIT stepping through posted → answering → complete), lapsed
// assignments are topped up, and the whole run is cancellable through
// ResolveContext / Resolver.ResolveDeltaContext. The default backend is
// the reference simulator — the paper's AMT worker model replayed on a
// virtual clock, with deterministic RNG streams per pair (pair-based
// HITs) or per HIT (cluster-based ones), so results are bit-identical at
// every parallelism level: runs are deterministic in (table, Options)
// alone. NewQueueBackend instead holds HITs open for external workers to
// claim and answer — the engine side of the crowderd HTTP service
// (internal/service, cmd/crowderd).
//
// Resolve is the one-shot form. For a long-running service absorbing
// appends, the Resolver type keeps the join index and the crowd's
// verdicts alive across batches: ResolveDelta resolves only the newly
// appended records against the existing table, reusing every verdict
// already paid for. See Resolver.
//
// The minimal entry point is Resolve:
//
//	table := crowder.NewTable("name", "price")
//	table.Append("iPad Two 16GB WiFi White", "$490")
//	table.Append("iPad 2nd generation 16GB WiFi White", "$469")
//	res, err := crowder.Resolve(table, crowder.Options{
//		Threshold: 0.3,
//		Oracle:    reference, // simulated-crowd ground truth
//	})
//
// Because the crowd is simulated, callers provide an Oracle: the reference
// labels the simulated workers perturb. In a live deployment the oracle is
// replaced by real crowd answers; everything upstream (pruning, HIT
// generation, aggregation) is unchanged.
package crowder

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/engine"
	"github.com/crowder/crowder/internal/hitgen"
	"github.com/crowder/crowder/internal/learn"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
	"github.com/crowder/crowder/internal/store"
)

// Table is a collection of records to de-duplicate. Records are dense
// integer IDs in insertion order.
type Table struct {
	inner *record.Table
}

// NewTable creates a table with the given attribute names.
func NewTable(schema ...string) *Table {
	return &Table{inner: record.NewTable(schema...)}
}

// Append adds a record and returns its ID.
func (t *Table) Append(values ...string) int {
	return int(t.inner.Append(values...))
}

// AppendFrom adds a record tagged with a source index. When records come
// from two sources (e.g. integrating two catalogs), set CrossSourceOnly in
// Options so only cross-source pairs are considered.
func (t *Table) AppendFrom(source int, values ...string) int {
	return int(t.inner.AppendFrom(source, values...))
}

// Len returns the number of records.
func (t *Table) Len() int { return t.inner.Len() }

// Record returns the attribute values of the record with the given ID.
func (t *Table) Record(id int) []string {
	r := t.inner.Get(record.ID(id))
	if r == nil {
		return nil
	}
	out := make([]string, len(r.Values))
	copy(out, r.Values)
	return out
}

// Pair is an unordered pair of record IDs (A < B).
type Pair struct {
	A, B int
}

// HITType selects the task format sent to the crowd.
type HITType int

const (
	// ClusterHITs batch up to ClusterSize records per task; workers find
	// all matches within the group. This is the paper's preferred format.
	ClusterHITs HITType = iota
	// PairHITs batch ClusterSize individual pairs per task, each verified
	// independently.
	PairHITs
)

// Generator selects the cluster-based HIT generation strategy.
type Generator int

const (
	// GenTwoTiered is the paper's contribution (Section 5) and the default.
	GenTwoTiered Generator = iota
	// GenRandom fills HITs with random pairs.
	GenRandom
	// GenBFS fills HITs in breadth-first graph order.
	GenBFS
	// GenDFS fills HITs in depth-first graph order.
	GenDFS
	// GenApprox is the k-clique-cover approximation algorithm (Section 4).
	GenApprox
)

// TransitivityMode selects whether the workflow deduces verdicts from
// the pair graph instead of asking the crowd for every candidate pair.
type TransitivityMode int

const (
	// TransitivityOff (the default) crowdsources every new candidate
	// pair, exactly as before: results are bit-identical to a build
	// without the transitivity feature.
	TransitivityOff TransitivityMode = iota
	// TransitivityOn replaces the one-shot execute stage with adaptive
	// rounds of post → collect → deduce → retract: verdicts implied by
	// earlier answers (A=B ∧ B=C ⇒ A=C; A=B ∧ B≠D ⇒ A≠D) are deduced
	// instead of asked, in-flight HITs whose pairs become deducible are
	// retracted, and the Result reports DeducedPairs and HITsSaved.
	// Fewer HITs are issued at equal-or-better quality; the price is
	// that rounds serialize, so simulated crowd latency (ElapsedSeconds)
	// grows, and — like cluster-based HITs — results depend on the batch
	// sequence, not on the final table alone.
	TransitivityOn
)

// HybridMode selects whether the session routes candidates through the
// online-learned classifier before buying crowd verdicts.
type HybridMode int

const (
	// HybridOff (the default) sends every new candidate pair to the
	// crowd, exactly as before: results are bit-identical to a build
	// without the hybrid router.
	HybridOff HybridMode = iota
	// HybridOn inserts the route stage between prune and generate: a
	// linear classifier retrained from the verdict cache after every
	// aggregation partitions scored candidates into machine-accept /
	// machine-reject / uncertain, and only the uncertain band is batched
	// into HITs. Machine-resolved pairs enter the verdict cache with
	// machine provenance — transitivity deduces over them, and deltas
	// never re-ask them. Until the session has accumulated
	// HybridMinLabels verdicts of both classes, everything still goes to
	// the crowd, so the first delta of a fresh session is unchanged.
	// Like transitivity, results are deterministic in the batch
	// sequence, not the final table alone: what the learner knows when a
	// pair is routed depends on which delta routed it.
	HybridOn
)

// AggregationMode selects how the replicated crowd answers of each pair
// are combined into a match posterior.
type AggregationMode int

const (
	// AggregationDawidSkene (the default) runs plain Dawid–Skene EM with
	// additive smoothing — bit-identical to every release before the
	// aggregator became pluggable.
	AggregationDawidSkene AggregationMode = iota
	// AggregationMajorityVote scores each pair by its raw match
	// fraction: the paper's baseline, susceptible to spammers but cheap
	// and trivially auditable.
	AggregationMajorityVote
	// AggregationDawidSkeneMAP runs Dawid–Skene with
	// maximum-a-posteriori M-steps: an informative diagonal Beta prior
	// on every worker confusion row plus pool-mean anchoring of workers
	// whose history covers only one class. It fixes the sparse-coverage
	// degeneracy in which a high learned prevalence flips a unanimously
	// rejected pair to a confident match (see the ROADMAP and
	// cmd/bench -aggregate, whose gate this mode ships behind); outputs
	// differ from the default, converging to it as worker histories
	// grow dense.
	AggregationDawidSkeneMAP
)

// aggregateMethod maps the public enum to the internal aggregator
// registry. The zero values correspond, so a zero Options keeps the
// pinned default.
func (m AggregationMode) aggregateMethod() (aggregate.Method, error) {
	switch m {
	case AggregationDawidSkene:
		return aggregate.MethodDawidSkene, nil
	case AggregationMajorityVote:
		return aggregate.MethodMajorityVote, nil
	case AggregationDawidSkeneMAP:
		return aggregate.MethodDawidSkeneMAP, nil
	default:
		return 0, fmt.Errorf("crowder: unknown aggregation mode %d", int(m))
	}
}

// String returns the mode's wire name — the identity persisted on the
// verdict cache and accepted by the service API ("dawid-skene",
// "majority-vote", "dawid-skene-map").
func (m AggregationMode) String() string {
	am, err := m.aggregateMethod()
	if err != nil {
		return fmt.Sprintf("aggregation(%d)", int(m))
	}
	return am.String()
}

// ParseAggregationMode maps a wire name back to its AggregationMode;
// the empty string selects the default. It is the inverse of
// AggregationMode.String and the parser behind the service API's
// "aggregation" table option.
func ParseAggregationMode(s string) (AggregationMode, error) {
	m, err := aggregate.ParseMethod(s)
	if err != nil {
		return 0, fmt.Errorf("crowder: %w", err)
	}
	switch m {
	case aggregate.MethodDawidSkene:
		return AggregationDawidSkene, nil
	case aggregate.MethodMajorityVote:
		return AggregationMajorityVote, nil
	case aggregate.MethodDawidSkeneMAP:
		return AggregationDawidSkeneMAP, nil
	default:
		// A method ParseMethod knows but this mapping does not means the
		// two enums drifted; surface it rather than silently resolving
		// under the default aggregator.
		return 0, fmt.Errorf("crowder: aggregate method %q has no AggregationMode", m)
	}
}

// CandidateSource selects how candidate pairs are generated before the
// likelihood threshold is applied.
type CandidateSource int

const (
	// SourceSimJoin uses the prefix-filtered similarity join (default).
	SourceSimJoin CandidateSource = iota
	// SourceTokenBlocking uses token blocking: records sharing at least
	// one token become candidates, then candidates are Jaccard-scored.
	// Complete for thresholds > 0; combined with MaxBlock it trades a
	// little recall for scale (the paper's footnote 1 and the Section 9
	// scaling direction).
	SourceTokenBlocking
)

// Options configures Resolve.
type Options struct {
	// Threshold is the minimum machine likelihood (Jaccard similarity) for
	// a pair to be sent to the crowd. Default 0.3.
	Threshold float64
	// Candidates selects the candidate-generation scheme (default
	// SourceSimJoin).
	Candidates CandidateSource
	// MaxBlock, with SourceTokenBlocking, drops blocks larger than this
	// many records (0 = no cap). Capping ubiquitous-token blocks is the
	// standard blocking lever for very large tables.
	MaxBlock int
	// ClusterSize is k: the maximum records per cluster-based HIT, or
	// pairs per pair-based HIT. Default 10.
	ClusterSize int
	// HITType selects cluster-based (default) or pair-based tasks.
	HITType HITType
	// Generator selects the cluster-based generation strategy
	// (default GenTwoTiered). Ignored for pair-based HITs.
	Generator Generator
	// Assignments is the replication factor per HIT. Default 3.
	Assignments int
	// QualificationTest screens simulated workers through a three-pair
	// test before they may work (Section 7.1).
	QualificationTest bool
	// CrossSourceOnly restricts candidates to pairs from different sources.
	CrossSourceOnly bool
	// Seed drives all simulation randomness. Runs are deterministic in
	// (table, Options).
	Seed int64
	// Workers is the simulated crowd pool size. Default 120.
	Workers int
	// SpammerRate is the fraction of spammers in the pool. The zero value
	// keeps the 0.12 default; a negative value (NoSpammers) requests an
	// explicitly clean, spammer-free pool — previously inexpressible
	// because 0 was silently overwritten by the default.
	SpammerRate float64
	// Oracle is the reference truth the simulated crowd perturbs: the set
	// of genuinely matching pairs. Required (the simulator cannot invent
	// human judgment). Pairs absent from the oracle are treated as
	// non-matches.
	Oracle []Pair
	// MachineOnly skips the crowd entirely and returns the machine
	// likelihood ranking (the "simjoin" baseline of Section 7.3).
	MachineOnly bool
	// Parallelism bounds the worker goroutines used by the machine pass
	// (sharded similarity join) and the simulated crowd (concurrent HIT
	// execution). 0 means GOMAXPROCS. Results are bit-identical at every
	// parallelism level.
	Parallelism int
	// MaxCandidates, when positive, bounds the machine pass's ranked
	// candidate list: only the MaxCandidates most likely new pairs of
	// each delta are sent to the crowd. The candidate stream feeds a
	// bounded top-K heap, so memory stays O(MaxCandidates) no matter how
	// many pairs survive the threshold — the budget lever for very large
	// tables, complementing Threshold (which bounds by quality rather
	// than by count). 0 is the unbounded sentinel: every qualifying pair
	// is kept, bit-identical to the behavior before the bound existed.
	// Negative values are rejected by validation — a "negative budget"
	// has no meaning, and before the check it silently behaved as
	// unbounded. Dropped pairs are not remembered: they are re-discovered
	// only if a later delta re-emits them.
	MaxCandidates int
	// Shards partitions the machine pass's derived state (SourceSimJoin
	// postings, probe scratch, ranking heaps) into this many
	// shared-nothing shards, keyed by a stable hash of each record's
	// token signature, and runs one delta's index-then-probe with one
	// goroutine per shard. Per-shard top-K heaps are merged
	// deterministically under the canonical candidate order, so results
	// — matches, verdict cache contents, deduction proofs — are
	// bit-identical to the unsharded path at every shard count and
	// parallelism level. 0 or 1 (the default) selects the single-index
	// path. Raise it toward the core count when resolve throughput on
	// large tables is machine-pass-bound; it has no effect on crowd cost
	// or on SourceTokenBlocking sessions. Values above 1024 are
	// rejected: far past any plausible core count, per-shard overhead
	// only fragments the postings.
	Shards int
	// Backend selects the crowd executing the HITs. nil (the default)
	// uses the reference simulator driven by Oracle; NewQueueBackend
	// returns a backend where external workers claim and answer HITs
	// (crowderd's worker API). With a custom backend the Oracle is not
	// required — real workers supply the judgment.
	Backend Backend
	// Progress, when non-nil, receives a lifecycle event after every HIT
	// state transition during the execute stage (posted → answering →
	// complete). Called from the engine's goroutines; keep it fast.
	Progress func(Progress)
	// InterimAggregation enables incremental Dawid–Skene re-aggregation
	// as answers land: each HIT completion recomputes the posterior over
	// the answers collected so far and attaches it to the Progress event.
	// The final result always re-aggregates the full canonical answer
	// set, so this affects observability only, never the outcome.
	InterimAggregation bool
	// Transitivity enables deduction of verdicts from the pair graph
	// (TransitivityOn) instead of crowdsourcing every candidate pair.
	// The zero value (TransitivityOff) keeps results bit-identical to a
	// resolution without the feature. See TransitivityMode.
	Transitivity TransitivityMode
	// Aggregation selects the answer aggregator. The zero value
	// (AggregationDawidSkene) keeps the pinned default; the aggregator
	// is fixed for the session and recorded on the verdict cache, so an
	// incremental session re-aggregates cached and fresh answers under
	// one method and never mixes modes. See AggregationMode.
	Aggregation AggregationMode
	// Hybrid enables the learning router (HybridOn): after the machine
	// pass, a classifier trained online from the session's accumulated
	// verdicts resolves high-confidence pairs directly and sends only
	// the uncertain band to the crowd, so crowd cost falls as the
	// session ages. The zero value (HybridOff) keeps results
	// bit-identical to a build without the router. See HybridMode.
	Hybrid HybridMode
	// HybridRisk is the per-class machine-error budget the router's
	// uncertainty band is cut from: at most this fraction of either
	// training class may land on the machine's side of the band. 0
	// selects the default (0.02); values above 0.25 are rejected. The
	// effective risk is scaled up when the measured worker pool is
	// inaccurate (buying HITs from a noisy pool purchases less
	// certainty) and when the projected crowd cost of the uncertain
	// band exceeds the remaining HybridBudgetDollars.
	HybridRisk float64
	// HybridMinLabels is the verdict-count floor before the router
	// trusts its classifier; below it (or with fewer than 4 verdicts of
	// either class) every candidate still goes to the crowd. 0 selects
	// the default (24).
	HybridMinLabels int
	// HybridBudgetDollars, when positive, is the session's crowd-spend
	// target: once cumulative crowd cost approaches it, the router
	// widens its machine-error risk (doubling, capped at 0.25) until
	// the uncertain band's projected HIT cost fits what remains. 0
	// means no budget pressure — the band is governed by HybridRisk and
	// pool quality alone. ResolveWithBudget seeds this from its
	// BudgetDollars when unset.
	HybridBudgetDollars float64
	// Store, when non-nil, durably logs every state mutation of the
	// session — appended records, discovered candidates, paid-for crowd
	// verdicts with provenance — so a crashed process recovers the
	// session bit-identically (OpenStore + RestoreResolver). nil (the
	// default) keeps the session purely in-memory, identical to a build
	// without persistence. See Store and OpenStore.
	Store Store
}

// validate rejects option values that previously fell through to
// defaults or misbehaved silently. It is the single validation path
// shared by Resolve, NewResolver and EstimateCost.
func (o *Options) validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("crowder: Options.Workers = %d; must not be negative (0 selects the default pool of 120)", o.Workers)
	}
	if o.Assignments < 0 {
		return fmt.Errorf("crowder: Options.Assignments = %d; must not be negative (0 selects the default replication of 3)", o.Assignments)
	}
	if o.MaxCandidates < 0 {
		return fmt.Errorf("crowder: Options.MaxCandidates = %d; must not be negative (0 keeps every qualifying candidate)", o.MaxCandidates)
	}
	if o.MaxBlock < 0 {
		return fmt.Errorf("crowder: Options.MaxBlock = %d; must not be negative (0 keeps every block)", o.MaxBlock)
	}
	if o.Shards < 0 {
		return fmt.Errorf("crowder: Options.Shards = %d; must not be negative (0 selects the single-index path)", o.Shards)
	}
	if o.Shards > maxShards {
		return fmt.Errorf("crowder: Options.Shards = %d; must not exceed %d (sharding past any plausible core count only fragments the postings)", o.Shards, maxShards)
	}
	if o.ClusterSize < 0 {
		return fmt.Errorf("crowder: Options.ClusterSize = %d; must not be negative (0 selects the default of 10)", o.ClusterSize)
	}
	if o.Threshold < 0 || o.Threshold > 1 {
		return fmt.Errorf("crowder: Options.Threshold = %v; must be in [0, 1] (0 selects the default 0.3)", o.Threshold)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("crowder: Options.Parallelism = %d; must not be negative (0 means GOMAXPROCS)", o.Parallelism)
	}
	if o.Transitivity < TransitivityOff || o.Transitivity > TransitivityOn {
		return fmt.Errorf("crowder: Options.Transitivity = %d; must be TransitivityOff (0) or TransitivityOn (1)", o.Transitivity)
	}
	if o.Aggregation < AggregationDawidSkene || o.Aggregation > AggregationDawidSkeneMAP {
		return fmt.Errorf("crowder: Options.Aggregation = %d; must be AggregationDawidSkene (0), AggregationMajorityVote (1) or AggregationDawidSkeneMAP (2)", o.Aggregation)
	}
	if o.Hybrid < HybridOff || o.Hybrid > HybridOn {
		return fmt.Errorf("crowder: Options.Hybrid = %d; must be HybridOff (0) or HybridOn (1)", o.Hybrid)
	}
	if o.HybridRisk < 0 || o.HybridRisk > learn.MaxRisk {
		return fmt.Errorf("crowder: Options.HybridRisk = %v; must be in [0, %v] (0 selects the default %v)", o.HybridRisk, learn.MaxRisk, learn.DefaultRisk)
	}
	if o.HybridMinLabels < 0 {
		return fmt.Errorf("crowder: Options.HybridMinLabels = %d; must not be negative (0 selects the default %d)", o.HybridMinLabels, learn.DefaultMinLabels)
	}
	if o.HybridBudgetDollars < 0 {
		return fmt.Errorf("crowder: Options.HybridBudgetDollars = %v; must not be negative (0 means no budget pressure)", o.HybridBudgetDollars)
	}
	return nil
}

// maxShards bounds Options.Shards. See the field's godoc.
const maxShards = 1024

// shardCount normalizes Options.Shards to the effective shard count
// (≥ 1).
func (o *Options) shardCount() int {
	if o.Shards < 1 {
		return 1
	}
	return o.Shards
}

// transitive reports whether this resolution deduces verdicts from the
// pair graph. Machine-only runs never reach the crowd, so there is
// nothing to deduce from.
func (o *Options) transitive() bool {
	return o.Transitivity == TransitivityOn && !o.MachineOnly
}

// hybrid reports whether this session routes candidates through the
// learning router. MachineOnly is already an all-machine baseline, so
// there is nothing to route.
func (o *Options) hybrid() bool {
	return o.Hybrid == HybridOn && !o.MachineOnly
}

func (o *Options) defaults() {
	if o.Threshold <= 0 {
		o.Threshold = 0.3
	}
	if o.ClusterSize <= 0 {
		o.ClusterSize = 10
	}
	if o.Assignments <= 0 {
		o.Assignments = 3
	}
	if o.Workers <= 0 {
		o.Workers = 120
	}
	if o.SpammerRate == 0 {
		o.SpammerRate = 0.12
	}
	if o.HybridRisk == 0 {
		o.HybridRisk = learn.DefaultRisk
	}
	if o.HybridMinLabels == 0 {
		o.HybridMinLabels = learn.DefaultMinLabels
	}
	// Negative SpammerRate (NoSpammers) passes through unchanged; the
	// population layer normalizes it to an actually clean pool, so the
	// sentinel keeps one meaning everywhere.
}

// NoSpammers is the Options.SpammerRate sentinel for a clean pool: no
// simulated spammers at all. (Options.SpammerRate = 0 keeps the default.)
const NoSpammers = crowd.NoSpammers

// Match is one output pair with the workflow's confidence that it is a
// true match (crowd posterior, or machine likelihood under MachineOnly).
type Match struct {
	Pair       Pair
	Confidence float64
}

// StageStat is the measured wall-clock time of one engine stage.
type StageStat struct {
	// Name is the stage: "prune", "route", "generate", "execute" or
	// "aggregate".
	Name string
	// Seconds is the stage's wall-clock processing time.
	Seconds float64
}

// Result is the outcome of the hybrid workflow. For an incremental
// session (Resolver.ResolveDelta) the match fields cover the whole
// session while the work fields (HITs, CostDollars, ElapsedSeconds,
// NewCandidates) account only for the delta just resolved.
type Result struct {
	// TotalPairs is the number of candidate pairs before pruning, over
	// the whole table.
	TotalPairs int
	// Candidates is the number of pairs whose likelihood passed the
	// threshold — every judged pair of the session, cached and new.
	Candidates int
	// NewCandidates is the number of candidate pairs first discovered by
	// this resolve; only these were batched into HITs. For a one-shot
	// Resolve it equals Candidates.
	NewCandidates int
	// CachedCandidates is the number of pairs whose verdicts were reused
	// from earlier deltas (Candidates − NewCandidates); their HITs were
	// paid for once and never re-issued.
	CachedCandidates int
	// HITs is the number of tasks generated for this resolve's new
	// candidate pairs. With Transitivity on it counts the tasks actually
	// posted to the crowd (including ones later retracted mid-flight) —
	// typically fewer than the one-shot batching when pairs were deduced
	// instead of asked.
	HITs int
	// DeducedPairs is the number of this resolve's new candidate pairs
	// whose verdicts were deduced from the pair graph instead of asked
	// (Transitivity on; always 0 otherwise).
	DeducedPairs int
	// MachinePairs is the number of this resolve's new candidate pairs
	// the hybrid router's classifier resolved outside its uncertainty
	// band — no HIT was issued for them (Hybrid on; always 0
	// otherwise).
	MachinePairs int
	// HITsSaved is the number of tasks the one-shot batching would have
	// generated for this resolve's new candidate pairs minus the tasks
	// actually posted. It is negative when adaptive rounds fragmented
	// the batching without deducing enough to pay for it — possible on
	// workloads with little transitive structure when deferred pairs'
	// chains fail to confirm (the bench gate pins the reference
	// workloads where savings must be strictly positive).
	HITsSaved int
	// RetractedHITs counts posted tasks withdrawn mid-flight because
	// their verdicts became deducible while they were answering. Their
	// collected assignments are still paid for (CostDollars), but their
	// remaining replication was cancelled.
	RetractedHITs int
	// CostDollars is the simulated crowd cost of this resolve (HITs ×
	// assignments × $0.025, Section 7.1's AMT pricing).
	CostDollars float64
	// ElapsedSeconds is the simulated crowd completion time (makespan)
	// of this resolve's HITs.
	ElapsedSeconds float64
	// Matches lists all judged pairs ranked by confidence descending.
	// Callers typically keep those with Confidence ≥ 0.5.
	Matches []Match
	// Stages reports the engine's per-stage wall-clock timings, in
	// execution order (prune, route, generate, execute, aggregate).
	Stages []StageStat
}

// Accepted returns the matches with confidence at least 0.5.
func (r *Result) Accepted() []Match {
	var out []Match
	for _, m := range r.Matches {
		if m.Confidence >= 0.5 {
			out = append(out, m)
		}
	}
	return out
}

// resolverPipeline is the concrete engine pipeline type threading
// resolveState through the stages.
type resolverPipeline = engine.Pipeline[*resolveState]

// resolveState is the value threaded through the engine stages of one
// delta. Each stage reads what its predecessors produced and fills in its
// own slice of the state; the embedded Resolver carries the persistent
// session state (live join index, verdict cache, pending pairs) across
// deltas.
type resolveState struct {
	rv *Resolver
	// planOnly marks an EstimateCost / EstimateDelta run: prune, route
	// and generate execute normally but nothing is judged, so the
	// verdict cache stays untouched.
	planOnly bool
	// keepPending marks a plan-only run over a *live* session
	// (EstimateDelta): the machine pass genuinely absorbs the delta into
	// the join index as a side effect, so the discovered candidates must
	// be recorded as pending (and the prune boundary logged) exactly as
	// a resolving delta would — otherwise the estimate would silently
	// lose them. Never set together with a throwaway session.
	keepPending bool

	// prune → the delta's genuinely new candidate pairs (not in the
	// verdict cache), ranked by likelihood.
	scored []simjoin.ScoredPair
	pairs  []record.Pair
	// route → the machine verdicts under review this delta: pairs the
	// retrained router demoted back into scored for crowd arbitration.
	// While under review a verdict is not ground truth, so transitive
	// execution must not use its edge to deduce it right back.
	demoted record.PairSet
	// generate →
	pairHITs    []hitgen.PairHIT
	clusterHITs []hitgen.ClusterHIT

	res *Result
}

// skipCrowd reports whether the crowd stages have nothing to do: the
// machine-only baseline, or no new candidate pairs this delta.
func (st *resolveState) skipCrowd() bool {
	return st.rv.opts.MachineOnly || len(st.scored) == 0
}

// stagePrune is the machine pass: generate the delta's candidate pairs,
// score them, drop everything below the likelihood threshold, and split
// off the pairs whose verdicts are already cached. Candidates discovered
// by a previously failed delta (still pending) are folded in for retry.
// The whole stage runs under the session's write lock — it mutates the
// join index and the pending set — which is the only long write-held
// window of a resolve; reads resume as soon as the machine pass ends.
//
// The candidates stream out of the source one at a time and feed a
// ranking collector (a bounded top-K heap when Options.MaxCandidates is
// set), so this stage holds O(MaxCandidates) scored pairs rather than
// the delta's full candidate set. The collector's total order makes the
// ranking deterministic even though the parallel join emits in
// nondeterministic order; unbounded, it is bit-identical to sorting a
// materialized slice. With Options.Shards > 1 the stage scatters into
// per-shard collectors instead (stagePruneSharded).
func stagePrune(_ context.Context, st *resolveState) (*resolveState, error) {
	rv := st.rv
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.sidx != nil && rv.opts.Candidates == SourceSimJoin {
		if err := stagePruneSharded(st); err != nil {
			return nil, err
		}
		return st, nil
	}
	seq, err := rv.deltaCandidateSeq()
	if err != nil {
		return nil, err
	}
	pendBefore := len(rv.pending)
	// A plan-only run over a live session (keepPending) records its
	// discoveries exactly as a resolving delta: the join index absorbed
	// the delta as a side effect of the stream, so the candidates must
	// land in the pending set or they would be lost to every later delta.
	recording := !st.planOnly || st.keepPending
	rank := engine.NewTopK(rv.opts.MaxCandidates, simjoin.CompareScored)
	if recording {
		// Fold in candidates left pending by a failed delta. They cannot
		// recur in this delta's stream: both endpoints are already indexed.
		for _, sp := range rv.pending {
			if !rv.cache.Has(sp.Pair) {
				rank.Push(sp)
			}
		}
	}
	for sp := range seq {
		if recording {
			rv.pending = append(rv.pending, sp)
		}
		if !rv.cache.Has(sp.Pair) {
			rank.Push(sp)
		}
	}
	st.finishPrune(rank.Ranked())
	if recording {
		if err := rv.logPrune(rv.pending[pendBefore:]); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// stagePruneSharded is the machine pass for a sharded session: the join
// index scatters each shard's candidate stream into that shard's own
// pending accumulator and top-K heap (single-writer, no locks — the
// sink is serial per shard), and the per-shard survivors are merged
// through one final heap under the canonical candidate order. The
// merged ranking is bit-identical to the single-index stage above: the
// shard streams union to the same candidate multiset, bounded heaps are
// pure functions of their input multisets, and merging per-shard top-K
// survivors cannot lose a global top-K element. The caller holds the
// session write lock.
func stagePruneSharded(st *resolveState) error {
	rv := st.rv
	pendBefore := len(rv.pending)
	ns := rv.sidx.NumShards()
	ranks := make([]*engine.TopK[simjoin.ScoredPair], ns)
	for s := range ranks {
		ranks[s] = engine.NewTopK(rv.opts.MaxCandidates, simjoin.CompareScored)
	}
	pendings := make([][]simjoin.ScoredPair, ns)
	recording := !st.planOnly || st.keepPending
	rv.sidx.UpdateScatter(func(s int, sp simjoin.ScoredPair) bool {
		if recording {
			pendings[s] = append(pendings[s], sp)
		}
		// Concurrent lookups are safe: the cache is read-only during the
		// scatter, and its banks are hash-partitioned by pair.
		if !rv.cache.Has(sp.Pair) {
			ranks[s].Push(sp)
		}
		return true
	})
	lists := make([][]simjoin.ScoredPair, 0, ns+1)
	if recording {
		// Fold in candidates left pending by a failed delta, exactly as
		// the single-index path does; shard order is deterministic, so
		// the rebuilt pending set is too.
		var retry []simjoin.ScoredPair
		for _, sp := range rv.pending {
			if !rv.cache.Has(sp.Pair) {
				retry = append(retry, sp)
			}
		}
		lists = append(lists, retry)
		for _, p := range pendings {
			rv.pending = append(rv.pending, p...)
		}
	}
	for _, r := range ranks {
		lists = append(lists, r.Ranked())
	}
	st.finishPrune(engine.MergeRanked(rv.opts.MaxCandidates, simjoin.CompareScored, lists...))
	if recording {
		if err := rv.logPrune(rv.pending[pendBefore:]); err != nil {
			return err
		}
	}
	return nil
}

// finishPrune records the machine pass's ranked fresh candidates and
// the delta's candidate accounting on the state.
func (st *resolveState) finishPrune(fresh []simjoin.ScoredPair) {
	rv := st.rv
	st.scored = fresh
	st.pairs = simjoin.Pairs(fresh)
	st.res.TotalPairs = rv.table.inner.PairUniverse(rv.opts.CrossSourceOnly)
	st.res.NewCandidates = len(fresh)
	st.res.CachedCandidates = rv.cache.Len()
	st.res.Candidates = st.res.NewCandidates + st.res.CachedCandidates
}

// stageGenerate batches the new candidate pairs into HITs. Cached pairs
// never reach this stage: their HITs were issued (and paid for) by the
// delta that first discovered them. With Transitivity on, generation
// moves inside the execute stage's adaptive rounds — each round batches
// only the pairs deduction could not resolve — except for plan-only
// runs (EstimateCost), which report the one-shot batching because the
// savings depend on answers no estimate can know.
func stageGenerate(_ context.Context, st *resolveState) (*resolveState, error) {
	if st.skipCrowd() {
		return st, nil
	}
	if st.rv.opts.transitive() && !st.planOnly {
		return st, nil
	}
	opts := st.rv.opts
	switch opts.HITType {
	case PairHITs:
		hits, err := hitgen.GeneratePairHITs(st.pairs, opts.ClusterSize)
		if err != nil {
			return nil, err
		}
		st.pairHITs = hits
		st.res.HITs = len(hits)
	case ClusterHITs:
		gen := generatorFor(opts.Generator, opts.Seed)
		hits, err := gen.Generate(st.pairs, opts.ClusterSize)
		if err != nil {
			return nil, err
		}
		if verr := hitgen.ValidateCover(st.pairs, hits, opts.ClusterSize); verr != nil {
			return nil, fmt.Errorf("crowder: generated HITs violate the covering invariant: %w", verr)
		}
		st.clusterHITs = hits
		st.res.HITs = len(hits)
	default:
		return nil, fmt.Errorf("crowder: unknown HIT type %d", opts.HITType)
	}
	return st, nil
}

// stageExecute drives the delta's HITs through the asynchronous crowd
// lifecycle — post to the backend, collect assignments as they land, top
// up expired replication — and commits the collected answers to the
// verdict cache, marking the new pairs judged. With Options.Backend nil
// the backend is the reference simulator, fed by the Oracle; results are
// bit-identical to the synchronous executor this stage replaced.
//
// If the run fails — most importantly, if ctx is cancelled while answers
// are still outstanding — the answers already collected are persisted as
// partial assignment sets (crowd work is paid for on assignment, not on
// batch completion) and the delta's candidates stay pending for retry.
func stageExecute(ctx context.Context, st *resolveState) (*resolveState, error) {
	rv := st.rv
	if st.skipCrowd() {
		// A recovered session with nothing left to crowdsource: every
		// recovered in-flight HIT covers already-judged pairs, so retract
		// them from the backend instead of leaving zombies for workers.
		if resume := rv.takeResume(); resume != nil && rv.opts.Backend != nil {
			retractLeftovers(rv.opts.Backend, resume)
		}
		return st, nil
	}
	opts := rv.opts

	if opts.transitive() {
		return stageExecuteTransitive(ctx, st)
	}

	var hits []crowd.HIT
	if opts.HITType == PairHITs {
		pairLists := make([][]record.Pair, len(st.pairHITs))
		for i, h := range st.pairHITs {
			pairLists[i] = h.Pairs
		}
		hits = crowd.PairHITsFromGen(pairLists, opts.Assignments)
	} else {
		records := make([][]record.ID, len(st.clusterHITs))
		covered := make([][]record.Pair, len(st.clusterHITs))
		for i, h := range st.clusterHITs {
			records[i] = h.Records
			covered[i] = h.CoveredPairs(st.pairs)
		}
		hits = crowd.ClusterHITsFromGen(records, covered, opts.Assignments)
	}

	backend, err := st.newBackend()
	if err != nil {
		return nil, err
	}

	// The crowd runs without the session lock — this is the window reads
	// overlap with — and only the commit below re-takes it.
	resume := rv.takeResume()
	run, err := crowd.ExecuteHITs(ctx, backend, hits, crowd.ExecuteOptions{
		OnProgress: opts.Progress,
		Interim:    opts.InterimAggregation,
		Aggregator: rv.agg,
		Resume:     resume,
	})
	if err != nil {
		if run != nil {
			// Partial assignment sets survive the failure: the crowd work
			// is already paid for, and the pairs stay pending for retry.
			rv.mu.Lock()
			rv.cache.AddPartialAnswers(run.Answers)
			// Log failure too (ignore the sticky error — the delta already
			// failed): the fragments must survive a crash after the abort.
			rv.log.Log(&store.Commit{Ops: []store.Op{{Partial: run.Answers}}})
			rv.mu.Unlock()
		}
		rv.returnResume(resume)
		return nil, err
	}
	retractLeftovers(backend, resume)
	st.res.CostDollars = run.CostDollars
	st.res.ElapsedSeconds = run.TotalSeconds
	// Commit: the delta's pairs are now judged; nothing stays pending.
	// The whole commit is one atomic log record — a crash replays either
	// none of it (the pairs retry) or all of it (judged, never re-asked).
	rv.mu.Lock()
	ops := make([]store.Op, 0, len(st.scored)+2)
	for _, sp := range st.scored {
		rv.cache.Put(sp.Pair, sp.Likelihood)
		ops = append(ops, store.Op{Put: &store.PutOp{Pair: sp.Pair, Likelihood: sp.Likelihood}})
	}
	rv.cache.AddAnswers(run.Answers)
	rv.pending = rv.pending[:0]
	ops = append(ops, store.Op{Answers: run.Answers}, store.Op{ClearPending: true})
	logErr := rv.log.Log(&store.Commit{Ops: ops})
	rv.mu.Unlock()
	if logErr != nil {
		return nil, logErr
	}
	return st, nil
}

// retractLeftovers withdraws recovered in-flight HITs the restarted
// delta did not adopt: their pairs were judged (or deduced) before the
// crash, so the tasks are unreachable and must not sit open for workers.
func retractLeftovers(b crowd.Backend, rs *crowd.ResumeState) {
	if rs == nil {
		return
	}
	ids := rs.Leftovers()
	if len(ids) == 0 {
		return
	}
	if rt, ok := b.(crowd.Retractor); ok {
		rt.Retract(ids)
	}
}

// newBackend returns the crowd executing this resolution's HITs: the
// caller-supplied Options.Backend, or the reference simulator fed by the
// Oracle. Simulated workers err most on genuinely ambiguous pairs; the
// machine likelihoods from the prune stage calibrate that per-pair
// difficulty.
func (st *resolveState) newBackend() (crowd.Backend, error) {
	opts := st.rv.opts
	if opts.Backend != nil {
		return opts.Backend, nil
	}
	truth := record.NewPairSet()
	for _, p := range opts.Oracle {
		truth.Add(record.ID(p.A), record.ID(p.B))
	}
	pop := crowd.NewPopulation(opts.Seed, crowd.PopulationOptions{
		Size:        opts.Workers,
		SpammerRate: opts.SpammerRate,
	})
	likelihood := make(map[record.Pair]float64, len(st.scored))
	for _, sp := range st.scored {
		likelihood[sp.Pair] = sp.Likelihood
	}
	sim, err := crowd.NewSimulator(truth, pop, crowd.Config{
		Assignments:       opts.Assignments,
		QualificationTest: opts.QualificationTest,
		Seed:              opts.Seed,
		Parallelism:       opts.Parallelism,
		Difficulty:        crowd.DifficultyFromLikelihood(likelihood),
	})
	if err != nil {
		return nil, err
	}
	return sim, nil
}

// stageAggregate combines the replicated answers of every judged pair —
// cached and new — with the session's aggregator (Dawid–Skene EM by
// default) into ranked match decisions. The answers are re-aggregated in
// canonical order each delta, so cached pairs' posteriors keep
// sharpening as fresh evidence about the workers arrives, and a k-batch
// session aggregates exactly what a from-scratch run would. The
// aggregator's identity is bound to the verdict cache: one cache, one
// method, across every delta of the session.
func stageAggregate(_ context.Context, st *resolveState) (*resolveState, error) {
	rv := st.rv
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.opts.MachineOnly {
		// The machine baseline "judges" a pair by recording its
		// likelihood; the ranking covers every pair seen so far.
		ops := make([]store.Op, 0, len(st.scored)+2)
		post := make([]store.PairVal, 0, len(st.scored))
		for _, sp := range st.scored {
			rv.cache.Put(sp.Pair, sp.Likelihood).Posterior = sp.Likelihood
			ops = append(ops, store.Op{Put: &store.PutOp{Pair: sp.Pair, Likelihood: sp.Likelihood}})
			post = append(post, store.PairVal{Pair: sp.Pair, Val: sp.Likelihood})
		}
		rv.pending = rv.pending[:0]
		ops = append(ops, store.Op{Posteriors: post}, store.Op{ClearPending: true})
		if err := rv.log.Log(&store.Commit{Ops: ops}); err != nil {
			return nil, err
		}
		for _, p := range rv.cache.Pairs() {
			st.res.Matches = append(st.res.Matches, Match{
				Pair:       Pair{A: int(p.A), B: int(p.B)},
				Confidence: rv.cache.Get(p).Likelihood,
			})
		}
		SortMatches(st.res.Matches)
		return st, nil
	}
	answers := rv.cache.AllAnswers()
	if len(answers) == 0 && rv.cache.MachineLen() == 0 {
		// Nothing judged yet. (The machine-count guard keeps this early
		// return bit-identical to the pre-hybrid build when Hybrid is off:
		// machine entries exist only in hybrid sessions, where a delta the
		// router resolved entirely by machine must still rank matches.)
		return st, nil
	}
	if len(answers) > 0 {
		// The cache was bound to this aggregator's identity when the
		// session was created (NewResolver), so the no-mixed-modes
		// invariant holds structurally by the time any delta aggregates.
		post := rv.agg.Aggregate(answers)
		rv.cache.SetPosteriors(post)
		for _, pr := range post.Ranked() {
			st.res.Matches = append(st.res.Matches, Match{
				Pair:       Pair{A: int(pr.A), B: int(pr.B)},
				Confidence: post[pr],
			})
		}
	}
	nd := appendDeducedMatches(rv.cache, &st.res.Matches)
	nm := appendMachineMatches(rv.cache, &st.res.Matches)
	if nd+nm > 0 {
		// Deduced verdicts re-derive their confidence from the freshly
		// aggregated posteriors of their proofs; re-sort the merged list.
		SortMatches(st.res.Matches)
	}
	// Log the final per-pair posteriors — after the deduced entries were
	// re-derived above, so replay restores exactly what the session holds.
	pairs := rv.cache.Pairs()
	pvs := make([]store.PairVal, 0, len(pairs))
	for _, p := range pairs {
		pvs = append(pvs, store.PairVal{Pair: p, Val: rv.cache.Get(p).Posterior})
	}
	if err := rv.log.Log(&store.Commit{Ops: []store.Op{{Posteriors: pvs}}}); err != nil {
		return nil, err
	}
	if rv.opts.hybrid() {
		// Budget accounting: fold this delta's crowd spend into the
		// session total the router's band adaptation reads, and log the
		// running total so recovery restores it.
		if st.res.CostDollars > 0 {
			rv.spent += st.res.CostDollars
			if err := rv.log.Log(&store.Meta{Spent: rv.spent}); err != nil {
				return nil, err
			}
		}
		// Retrain at the aggregation commit: the canonical retrain point
		// the route stage reads from. The learner is a pure function of
		// the (canonically ordered) cache, so delta and recovery sessions
		// converge to the identical model.
		l, err := rv.trainLearnerLocked()
		if err != nil {
			return nil, err
		}
		rv.learner = l
	}
	return st, nil
}

// resolvePipeline builds the five-stage engine every resolve runs. The
// route stage sits between prune and generate so that only the pairs
// the router leaves uncertain are ever batched into HITs — which also
// makes every plan-only truncation at "generate" (EstimateCost,
// EstimateDelta) hybrid-aware for free. With Options.Hybrid off the
// stage is a pure pass-through and the pipeline behaves bit-identically
// to the four-stage one it replaced.
func resolvePipeline() *resolverPipeline {
	return engine.New(
		engine.Stage[*resolveState]{Name: "prune", Run: stagePrune},
		engine.Stage[*resolveState]{Name: "route", Run: stageRoute},
		engine.Stage[*resolveState]{Name: "generate", Run: stageGenerate},
		engine.Stage[*resolveState]{Name: "execute", Run: stageExecute},
		engine.Stage[*resolveState]{Name: "aggregate", Run: stageAggregate},
	)
}

// Resolve runs the hybrid human–machine workflow on the table: a one-shot
// resolution session. It is the single-batch form of the incremental
// Resolver — it adopts the table into a fresh session and resolves
// everything as one delta, so the batch and streaming paths share one
// prune → generate → execute → aggregate implementation.
func Resolve(t *Table, opts Options) (*Result, error) {
	return ResolveContext(context.Background(), t, opts)
}

// ResolveContext is Resolve bound to a context: cancelling ctx aborts the
// resolution mid-stage. A cancelled run returns ctx's error; any answers
// the crowd already delivered are persisted as partial assignment sets
// on the session (observable through a Resolver; a one-shot session is
// discarded with them).
func ResolveContext(ctx context.Context, t *Table, opts Options) (*Result, error) {
	r, err := NewResolver(t, opts)
	if err != nil {
		return nil, err
	}
	return r.ResolveDeltaContext(ctx)
}

func errUnknownCandidateSource(c CandidateSource) error {
	return fmt.Errorf("crowder: unknown candidate source %d", c)
}

// generatorFor maps the public enum to the internal strategy.
func generatorFor(g Generator, seed int64) hitgen.ClusterGenerator {
	switch g {
	case GenRandom:
		return hitgen.Random{Seed: seed}
	case GenBFS:
		return hitgen.BFS{}
	case GenDFS:
		return hitgen.DFS{}
	case GenApprox:
		return hitgen.Approx{}
	default:
		return hitgen.TwoTiered{}
	}
}

// Estimate is the projected footprint of a workflow configuration,
// computed without running the crowd. It supports the budget-based
// workflow the paper lists as future work: sweep thresholds, estimate,
// pick the cheapest configuration that fits.
type Estimate struct {
	// Candidates is the number of fresh pairs the resolve would judge.
	Candidates int
	// MachinePairs is how many of those candidates the hybrid router
	// would resolve by machine, outside its uncertainty band. Always 0
	// with Hybrid off, and for a fresh session (whose learner has no
	// verdicts to train from — see EstimateCost vs Resolver.EstimateDelta).
	MachinePairs int
	// CrowdPairs is the uncertain remainder that would be batched into
	// HITs (Candidates − MachinePairs).
	CrowdPairs int
	// HITs is the number of tasks that would be generated for CrowdPairs.
	HITs int
	// CostDollars is HITs × Assignments × $0.025.
	CostDollars float64
}

// EstimateCost prunes at the configured threshold, routes through the
// hybrid classifier (when Hybrid is on) and generates — but does not
// crowdsource — the HITs, returning the projected task count and cost.
// It runs the same prune → route → generate stages as Resolve,
// truncated before the crowd ever executes, so the estimate agrees with
// an actual run by construction. Because it estimates over a throwaway
// session, its learner state is exactly a fresh session's: untrained,
// every candidate projected to the crowd — which is also what a
// one-shot Resolve with the same options would do, so the projection
// stays faithful. To project a *live* hybrid session's next delta with
// the session's trained learner, use Resolver.EstimateDelta.
func EstimateCost(t *Table, opts Options) (*Estimate, error) {
	// An estimate is a throwaway session: never log it to the caller's
	// store, which belongs to the live session with the same options.
	opts.Store = nil
	r, err := NewResolver(t, opts)
	if err != nil {
		return nil, err
	}
	r.resolveMu.Lock()
	defer r.resolveMu.Unlock()
	if r.Len() == 0 {
		return nil, errors.New("crowder: empty table")
	}
	st := &resolveState{rv: r, planOnly: true, res: &Result{}}
	final, _, err := resolvePipeline().Upto("generate").Run(context.Background(), st)
	if err != nil {
		return nil, err
	}
	return estimateFromPlan(final.res, r.opts), nil
}

// estimateFromPlan converts a plan-only run's Result into an Estimate.
func estimateFromPlan(res *Result, opts Options) *Estimate {
	est := &Estimate{
		Candidates:   res.NewCandidates,
		MachinePairs: res.MachinePairs,
		HITs:         res.HITs,
	}
	est.CrowdPairs = est.Candidates - est.MachinePairs
	est.CostDollars = float64(est.HITs*opts.Assignments) * crowd.DollarsPerAssignment
	return est
}

// SortMatches orders matches by confidence descending (tie-break by pair),
// in place. Resolve's output is already sorted; this helper re-sorts after
// caller-side filtering or merging.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Confidence != ms[j].Confidence {
			return ms[i].Confidence > ms[j].Confidence
		}
		if ms[i].Pair.A != ms[j].Pair.A {
			return ms[i].Pair.A < ms[j].Pair.A
		}
		return ms[i].Pair.B < ms[j].Pair.B
	})
}
