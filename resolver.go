package crowder

import (
	"cmp"
	"context"
	"errors"
	"iter"
	"slices"
	"sync"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/blocking"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/learn"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
	"github.com/crowder/crowder/internal/store"
	"github.com/crowder/crowder/internal/verdicts"
)

// Resolver is a long-lived entity-resolution session: it owns a table
// plus the derived state the workflow builds over it — the interned token
// cache, the similarity-join inverted index, and a cache of crowd
// verdicts keyed by pair — and keeps all of it incrementally maintained
// as records arrive. Where Resolve is a one-shot batch, a Resolver
// absorbs appends over time: ResolveDelta probes only the newly appended
// records against the existing index (new×all candidate generation
// instead of an all×all re-join) and sends only genuinely new candidate
// pairs to the crowd, reusing the cached verdicts of everything judged in
// earlier batches. Previously paid-for HITs are never re-issued.
//
// With pair-based HITs, resolving k batches incrementally produces
// bit-identical Matches to a from-scratch Resolve of the union table with
// the same Options: candidate generation is exact (the delta join finds
// the same qualifying pairs), every pair's crowd answers are a pure
// function of (Seed, pair) regardless of batching, and aggregation runs
// over the canonically ordered union of all answers. Cluster-based HITs
// remain fully deterministic in the batch sequence, but their answers
// couple pairs within a HIT (the worker's transitive closure), so a
// different batching can legitimately reach different judgments on
// borderline pairs. Likewise, SourceTokenBlocking with a MaxBlock cap
// evaluates the cap against block sizes at delta time: a block that
// grows past the cap mid-session stops contributing new pairs, whereas
// a batch run would have dropped it wholesale — already-judged pairs are
// never retracted. The exact-equivalence guarantee therefore covers
// SourceSimJoin and uncapped token blocking.
//
// If a delta fails mid-flight (e.g. HIT generation rejects an option),
// the candidate pairs already discovered stay pending and are retried by
// the next ResolveDelta; the join index never re-scans them.
//
// A Resolver is safe for concurrent use. Resolutions serialize on their
// own lock (one resolve at a time), while session state is guarded by a
// read-write lock the resolve stages hold only across their mutation
// windows — so reads (Verdict, JudgedPairs, WorkerStats, Record) and
// appends proceed while a resolve is waiting on the crowd, instead of
// blocking for the delta's full wall-clock. Mutating the table other
// than through the Resolver is not supported.
type Resolver struct {
	// resolveMu serializes resolutions (ResolveDelta, EstimateCost): the
	// staged workflow assumes one delta in flight per session.
	resolveMu sync.Mutex
	// mu guards the session state (table, join index, verdict cache,
	// pending set). Resolve stages write-lock it only while actually
	// mutating — the machine pass, the post-crowd commit, aggregation —
	// and the read accessors take it shared, so they interleave with a
	// resolve whenever the crowd, not the session, is the bottleneck.
	mu    sync.RWMutex
	table *Table
	opts  Options

	// idx is the persistent similarity-join index (SourceSimJoin,
	// Shards ≤ 1); exactly one of idx and sidx is non-nil for a
	// SourceSimJoin session.
	idx *simjoin.Index
	// sidx is the sharded join index (SourceSimJoin, Shards > 1): one
	// posting shard per hash bucket of the records' token signatures,
	// probed concurrently with per-shard ranking heaps merged
	// deterministically. Bit-identical to idx at every shard count.
	sidx *simjoin.Sharded
	// blocked counts the records already consumed by the delta blocking
	// path (SourceTokenBlocking).
	blocked int
	// agg is the session's answer aggregator, fixed by
	// Options.Aggregation: every delta re-aggregates the cached∪fresh
	// answer union with it, and its identity is bound to the verdict
	// cache so one session can never mix aggregation modes.
	agg aggregate.Aggregator
	// cache holds the verdicts of every judged pair.
	cache *verdicts.Cache
	// pending lists candidate pairs discovered but not yet judged —
	// normally emptied by the same ResolveDelta that discovers them, it
	// preserves work across a failed delta.
	pending []simjoin.ScoredPair
	// log is the session's durable store (Options.Store, or the no-op
	// store). Appends and queue events log as they happen; verdicts log
	// as atomic commits at the stages' existing commit points, fsynced
	// before the commit returns.
	log store.Store
	// resume carries a recovered session's in-flight HITs (set by
	// RestoreResolver, consumed by the next delta's execute stage).
	resume *crowd.ResumeState

	// learner is the hybrid router's classifier, retrained from the
	// verdict cache after every aggregation commit (nil until the first
	// route of a hybrid session; rebuilt lazily after recovery — it is a
	// pure function of the cache, so it is never persisted). Guarded by
	// mu.
	learner *learn.Learner
	// lastBand and lastRisk record the uncertainty band the most recent
	// route stage actually used, for observability (HybridStats).
	lastBand learn.Band
	lastRisk float64
	// spent is the session's cumulative crowd spend in dollars — the
	// router's budget accounting, persisted as a running total in Meta.
	spent float64
}

// NewResolver creates a resolution session owning the given table. The
// table may be empty (records appended later) or pre-loaded (the first
// ResolveDelta then resolves it wholesale); either way the Resolver takes
// ownership — append through the Resolver from here on. Options are fixed
// for the session so that every batch draws from the same simulated crowd.
func NewResolver(t *Table, opts Options) (*Resolver, error) {
	r, err := newResolverWith(t, opts, nil)
	if err != nil {
		return nil, err
	}
	// Log the session identity first: recovery needs the schema to
	// rebuild the table and the aggregator identity to cross-check the
	// supplied options.
	if err := r.log.Log(&store.Meta{Schema: t.inner.Schema, Aggregator: r.agg.Name()}); err != nil {
		return nil, err
	}
	return r, nil
}

// newResolverWith is the shared constructor: a fresh session (nil cache)
// or a recovered one (RestoreResolver supplies the replayed cache). It
// does not log — NewResolver logs the session identity, RestoreResolver
// restores from a log that already has it.
func newResolverWith(t *Table, opts Options, cache *verdicts.Cache) (*Resolver, error) {
	if t == nil {
		return nil, errors.New("crowder: nil table")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.defaults()
	method, err := opts.Aggregation.aggregateMethod()
	if err != nil {
		return nil, err
	}
	agg, err := aggregate.New(method)
	if err != nil {
		return nil, err
	}
	if cache == nil {
		cache = verdicts.NewCache()
	}
	if err := cache.BindAggregator(agg.Name()); err != nil {
		return nil, err
	}
	var log store.Store = store.Noop{}
	if opts.Store != nil {
		log = opts.Store
	}
	r := &Resolver{
		table: t,
		opts:  opts,
		agg:   agg,
		cache: cache,
		log:   log,
	}
	jopts := simjoin.Options{
		Threshold:       opts.Threshold,
		CrossSourceOnly: opts.CrossSourceOnly,
		Parallelism:     opts.Parallelism,
	}
	if opts.Shards > 1 {
		r.sidx = simjoin.NewSharded(t.inner, opts.Shards, jopts)
	} else {
		r.idx = simjoin.NewIndex(t.inner, jopts)
	}
	return r, nil
}

// Append adds a record and returns its ID. The record is resolved by the
// next ResolveDelta call.
func (r *Resolver) Append(values ...string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.table.Append(values...)
	// A log failure poisons the store (sticky); the next resolve's commit
	// surfaces it, since Append's signature has no error path.
	r.log.Log(&store.Append{Rows: []store.Row{{Src: -1, Values: values}}})
	return id
}

// AppendFrom adds a record tagged with a source index (see
// Table.AppendFrom).
func (r *Resolver) AppendFrom(source int, values ...string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.table.AppendFrom(source, values...)
	r.log.Log(&store.Append{Rows: []store.Row{{Src: source, Values: values}}})
	return id
}

// AppendBatch adds the rows in order and returns the ID of the first one
// (rows occupy IDs first..first+len(rows)-1). An empty batch returns the
// would-be next ID.
func (r *Resolver) AppendBatch(rows ...[]string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	first := r.table.Len()
	for _, row := range rows {
		r.table.Append(row...)
	}
	if len(rows) > 0 {
		ev := &store.Append{Rows: make([]store.Row, len(rows))}
		for i, row := range rows {
			ev.Rows[i] = store.Row{Src: -1, Values: row}
		}
		r.log.Log(ev)
	}
	return first
}

// takeResume consumes the recovered in-flight HIT state, if any.
func (r *Resolver) takeResume() *crowd.ResumeState {
	r.mu.Lock()
	defer r.mu.Unlock()
	rs := r.resume
	r.resume = nil
	return rs
}

// returnResume puts unconsumed resume state back after a failed delta,
// so the retry can still adopt the recovered HITs it regenerates.
func (r *Resolver) returnResume(rs *crowd.ResumeState) {
	if rs == nil || rs.Empty() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resume = rs
}

// indexedLen is the join index's absorb cursor — the Prune event's
// boundary, replayed by RestoreResolver via Absorb.
func (r *Resolver) indexedLen() int {
	if r.sidx != nil {
		return r.sidx.Indexed()
	}
	if r.idx != nil {
		return r.idx.Indexed()
	}
	return 0
}

// logPrune records a machine pass: the absorb boundary, the blocking
// cursor, and the candidates this delta discovered (the pending set's
// new tail). The caller holds r.mu for writing.
func (r *Resolver) logPrune(discovered []simjoin.ScoredPair) error {
	return r.log.Log(&store.Prune{
		Absorbed:   r.indexedLen(),
		Blocked:    r.blocked,
		Discovered: discovered,
	})
}

// Len returns the number of records in the owned table.
func (r *Resolver) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.table.Len()
}

// Record returns the attribute values of the record with the given ID.
// It takes the session lock shared, so HIT rendering and match serving
// read records while a resolve is in flight.
func (r *Resolver) Record(id int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.table.Record(id)
}

// JudgedPairs returns the number of pairs with cached verdicts.
func (r *Resolver) JudgedPairs() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cache.Len()
}

// PendingPairs returns the number of candidate pairs discovered but not
// yet judged — non-zero only after a failed delta.
func (r *Resolver) PendingPairs() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, sp := range r.pending {
		if !r.cache.Has(sp.Pair) {
			n++
		}
	}
	return n
}

// PartialPairs returns the number of pairs holding partial assignment
// sets: answers collected by a cancelled or failed delta for pairs not
// yet judged in full. The next successful delta re-issues those pairs'
// HITs and supersedes the fragments.
func (r *Resolver) PartialPairs() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.cache.PartialLen()
}

// WorkerStat is one worker's session-level diagnostic: agreement with
// the aggregated decisions plus the coverage needed to read it. A
// worker with ClassesSeen < 2 has answered pairs of only one decided
// class; their accuracy on the unseen class is unmeasured, and the MAP
// aggregator anchors them toward the pool mean until coverage arrives.
type WorkerStat struct {
	// Worker is the worker's ID (simulated pool index, or the queue
	// backend's worker ordinal).
	Worker int
	// Accuracy is the fraction of the worker's answers agreeing with the
	// aggregated decision of the pair they judged.
	Accuracy float64
	// Answers counts the worker's judgments over aggregated pairs.
	Answers int
	// MatchesSeen and NonMatchesSeen split Answers by the decided class
	// of the judged pair.
	MatchesSeen, NonMatchesSeen int
	// ClassesSeen is the number of distinct decided classes (0–2) in the
	// worker's history.
	ClassesSeen int
}

// WorkerStats reports every worker's accuracy and coverage against the
// session's current posteriors, sorted by worker ID — the
// spammer-detection diagnostic, with the coverage that tells a spammer
// (low accuracy, both classes seen) from a statistically unanchored
// worker (any accuracy, one class seen). Empty until the first delta
// aggregates.
func (r *Resolver) WorkerStats() []WorkerStat {
	r.mu.RLock()
	defer r.mu.RUnlock()
	answers := r.cache.AllAnswers()
	if len(answers) == 0 {
		return nil
	}
	post := make(aggregate.Posterior)
	for _, p := range r.cache.Pairs() {
		post[p] = r.cache.Get(p).Posterior
	}
	rep := aggregate.WorkerReport(answers, post)
	out := make([]WorkerStat, 0, len(rep))
	for w, s := range rep {
		out = append(out, WorkerStat{
			Worker:         w,
			Accuracy:       s.Accuracy,
			Answers:        s.Answers,
			MatchesSeen:    s.MatchesSeen,
			NonMatchesSeen: s.NonMatchesSeen,
			ClassesSeen:    s.ClassesSeen(),
		})
	}
	slices.SortFunc(out, func(a, b WorkerStat) int { return cmp.Compare(a.Worker, b.Worker) })
	return out
}

// Verdict returns the cached confidence for a pair (crowd posterior, or
// machine likelihood under MachineOnly) and whether the pair has been
// judged.
func (r *Resolver) Verdict(p Pair) (float64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e := r.cache.Get(record.MakePair(record.ID(p.A), record.ID(p.B)))
	if e == nil {
		return 0, false
	}
	return e.Posterior, true
}

// ResolveDelta resolves the records appended since the previous call
// against the whole table: the delta probes the live join index (or delta
// blocking), pairs already judged reuse their cached verdicts, and only
// genuinely new candidate pairs are batched into HITs and crowdsourced.
// The returned Result covers the full session — Matches ranks every
// judged pair, while HITs, CostDollars and ElapsedSeconds account only
// for the work this delta actually performed (all zero when the delta
// introduced no new candidate pairs). Calling it with no new records
// re-aggregates and returns the current state at no crowd cost — except
// in a hybrid session, where an empty delta still runs the router's
// review and re-asks any machine verdicts the retrained model disputes:
// a trailing ResolveDelta is the session's self-audit pass.
func (r *Resolver) ResolveDelta() (*Result, error) {
	return r.ResolveDeltaContext(context.Background())
}

// ResolveDeltaContext is ResolveDelta bound to a context: cancelling ctx
// aborts the delta mid-stage — most usefully while the crowd is still
// answering HITs, which may take minutes to hours against a live
// backend. A cancelled delta keeps its contract with failed deltas: the
// candidate pairs already discovered stay pending and are retried by the
// next ResolveDelta, and any answers the crowd already delivered are
// persisted as partial assignment sets (see PartialPairs).
//
// Resolutions serialize — a second ResolveDelta blocks until the first
// finishes — but the session state lock is held only across the stages'
// mutation windows, so reads (Verdict, JudgedPairs, WorkerStats,
// Record) and appends proceed while the crowd is still answering.
// Records appended mid-resolve are picked up by the next delta.
func (r *Resolver) ResolveDeltaContext(ctx context.Context) (*Result, error) {
	r.resolveMu.Lock()
	defer r.resolveMu.Unlock()
	return r.resolve(ctx, resolvePipeline())
}

// resolve runs the staged workflow; the caller holds r.resolveMu. The
// stages take r.mu themselves around their mutation windows.
func (r *Resolver) resolve(ctx context.Context, p *resolverPipeline) (*Result, error) {
	r.mu.RLock()
	empty := r.table.Len() == 0
	r.mu.RUnlock()
	if empty {
		return nil, errors.New("crowder: empty table")
	}
	if !r.opts.MachineOnly && r.opts.Oracle == nil && r.opts.Backend == nil {
		return nil, errors.New("crowder: Options.Oracle is required (the simulated crowd needs reference labels); set MachineOnly for the pure machine baseline, or supply Options.Backend for real crowd answers")
	}
	st := &resolveState{rv: r, res: &Result{}}
	final, stats, err := p.Run(ctx, st)
	if err != nil {
		return nil, err
	}
	for _, s := range stats {
		final.res.Stages = append(final.res.Stages, StageStat{Name: s.Name, Seconds: s.Duration.Seconds()})
	}
	return final.res, nil
}

// deltaCandidateSeq streams the scored candidate pairs introduced by the
// records appended since the last delta, per the configured candidate
// source (single-index path; the sharded path scatters through
// r.sidx.UpdateScatter instead). The caller holds r.mu for writing and
// must drain the sequence exactly once
// (both sources absorb the delta as a side effect). SourceSimJoin is a
// true stream — candidates are scored as the join index probes, never
// materialized; token blocking computes its (typically much smaller,
// MaxBlock-capped) candidate set eagerly and streams over it.
func (r *Resolver) deltaCandidateSeq() (iter.Seq[simjoin.ScoredPair], error) {
	switch r.opts.Candidates {
	case SourceSimJoin:
		return r.idx.UpdateSeq(), nil
	case SourceTokenBlocking:
		since := r.blocked
		r.blocked = r.table.Len()
		cands := blocking.TokenBlockingSince(r.table.inner, blocking.Options{
			MaxBlock:        r.opts.MaxBlock,
			CrossSourceOnly: r.opts.CrossSourceOnly,
		}, since)
		scored := simjoin.ScoreCandidates(r.table.inner, cands, r.opts.Threshold)
		return slices.Values(scored), nil
	default:
		return nil, errUnknownCandidateSource(r.opts.Candidates)
	}
}
