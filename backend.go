package crowder

import (
	"github.com/crowder/crowder/internal/crowd"
)

// Backend abstracts the crowd marketplace executing HITs: tasks are
// posted asynchronously and assignments stream back as workers complete
// them. Two implementations ship with the package:
//
//   - the reference simulator (the default when Options.Backend is nil),
//     which replays the paper's Section 7.1 worker model on a virtual
//     clock — results are bit-identical to the synchronous executor it
//     replaced, at every parallelism level;
//   - the queue backend (NewQueueBackend), which holds HITs open for
//     external workers to claim and answer — in-process, or over HTTP
//     through the crowderd service.
//
// Custom backends (e.g. a real Mechanical Turk bridge) implement Post
// and Collect; the engine's lifecycle manager handles replication
// accounting, expiry top-ups and aggregation on top.
type Backend = crowd.Backend

// HIT is one crowdsourcing task as posted to a Backend.
type HIT = crowd.HIT

// Assignment is one worker's completed (or expired) assignment of a HIT.
type Assignment = crowd.Assignment

// HITKind distinguishes pair-based from cluster-based tasks.
type HITKind = crowd.HITKind

// HIT kinds.
const (
	PairKind    = crowd.PairKind
	ClusterKind = crowd.ClusterKind
)

// HITState is one task's position in the asynchronous lifecycle.
type HITState = crowd.HITState

// HIT lifecycle states: posted → answering (k of r) → complete.
const (
	HITPosted    = crowd.HITPosted
	HITAnswering = crowd.HITAnswering
	HITComplete  = crowd.HITComplete
)

// Progress is a lifecycle event delivered to Options.Progress after
// every HIT state transition during the execute stage.
type Progress = crowd.Progress

// QueueBackend is the in-memory queue backend: posted HITs stay open for
// external workers to claim (with a lease) and answer. It is the engine
// side of crowderd's worker API and is safe for concurrent use.
type QueueBackend = crowd.Queue

// QueueOptions configures a queue backend (lease duration, test clock).
type QueueOptions = crowd.QueueOptions

// OpenHIT describes a claimable task on a queue backend.
type OpenHIT = crowd.OpenHIT

// ClaimedHIT is a worker's hold on one assignment of an open HIT.
type ClaimedHIT = crowd.Claimed

// Verdict is one worker-submitted judgment on a pair of a claimed HIT.
type Verdict = crowd.Verdict

// NewQueueBackend creates an empty queue backend to pass as
// Options.Backend. Workers drive it with Claim and Answer — directly, or
// through the crowderd HTTP API.
func NewQueueBackend(opts QueueOptions) *QueueBackend {
	return crowd.NewQueue(opts)
}
