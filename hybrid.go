package crowder

import (
	"context"
	"errors"
	"math/rand"
	"sort"

	"github.com/crowder/crowder/internal/aggregate"
	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/learn"
	"github.com/crowder/crowder/internal/record"
	"github.com/crowder/crowder/internal/simjoin"
	"github.com/crowder/crowder/internal/store"
	"github.com/crowder/crowder/internal/verdicts"
)

// stageRoute is the hybrid router: between prune and generate, it runs
// every fresh scored candidate through the session's online-trained
// classifier and resolves the ones outside the uncertainty band by
// machine — accept above the band, reject below — so only the band
// itself flows on to HIT generation. Machine verdicts enter the cache
// with machine provenance and log as one atomic commit; transitivity
// deduces over them, deltas never re-ask them, and matches rank them by
// the router's calibrated confidence.
//
// The band is cut from the training margin distribution at a per-class
// risk that adapts twice: pool quality (a noisy crowd makes HITs buy
// less certainty, loosening the band) and session budget (when the
// uncertain band's projected HIT cost exceeds the remaining
// HybridBudgetDollars, the risk doubles — capped at learn.MaxRisk —
// until the projection fits). Everything is deterministic in the cache
// state and Options, preserving delta and shard bit-identity.
//
// The stage also audits: machine verdicts from earlier deltas that the
// freshly retrained model no longer endorses are demoted back into the
// crowd flow (see reviewMachineVerdictsLocked). Because the review runs
// even when the delta introduces no fresh candidates, a trailing
// ResolveDelta on a hybrid session acts as a pure audit pass — it
// re-asks exactly the machine verdicts the final model disputes, which
// is the one deliberate exception to "no new records, no crowd cost".
//
// With Hybrid off, or before the session has accumulated enough
// verdicts to train (HybridMinLabels, both classes), the stage is a
// pure pass-through and every candidate goes to the crowd.
func stageRoute(_ context.Context, st *resolveState) (*resolveState, error) {
	rv := st.rv
	if !rv.opts.hybrid() {
		return st, nil
	}
	rv.mu.Lock()
	defer rv.mu.Unlock()
	if rv.learner == nil {
		// First route of the session (or after recovery): train from the
		// cache now. The learner is a pure function of the cache, so a
		// recovered session rebuilds the identical model.
		l, err := rv.trainLearnerLocked()
		if err != nil {
			return nil, err
		}
		rv.learner = l
	}
	l := rv.learner
	if !l.Ready() {
		// Not enough paid verdicts yet: everything to the crowd, exactly
		// as a non-hybrid delta. The aggregation commit retrains.
		rv.lastBand, rv.lastRisk = learn.Band{}, 0
		return st, nil
	}

	// Margins are computed once; band search and partitioning reuse them.
	margins := make([]float64, len(st.scored))
	for i, sp := range st.scored {
		margins[i] = l.Margin(rv.table.inner, sp.Pair)
	}

	risk := learn.AdaptRisk(rv.opts.HybridRisk, rv.poolAccuracyLocked())
	band := l.Band(risk)
	if budget := rv.opts.HybridBudgetDollars; budget > 0 {
		// Budget ladder: deterministically double the risk until the
		// uncertain band's projected crowd cost fits the remaining
		// session budget, or the risk cap is reached (past it the budget
		// is advisory — quality floors beat overspend-avoidance).
		remaining := budget - rv.spent
		if remaining < 0 {
			remaining = 0
		}
		for risk < learn.MaxRisk {
			uncertain := 0
			for _, m := range margins {
				if band.Decide(m) == learn.DecideCrowd {
					uncertain++
				}
			}
			if projectedCrowdCost(uncertain, rv.opts) <= remaining {
				break
			}
			risk = min(2*risk, learn.MaxRisk)
			band = l.Band(risk)
		}
	}
	rv.lastBand, rv.lastRisk = band, risk

	var uncertain []simjoin.ScoredPair
	var ops []store.Op
	machine := 0
	for i, sp := range st.scored {
		switch band.Decide(margins[i]) {
		case learn.DecideMatch, learn.DecideNonMatch:
			machine++
			if !st.planOnly {
				conf := band.Confidence(margins[i])
				rv.cache.PutMachine(sp.Pair, sp.Likelihood, conf)
				ops = append(ops, store.Op{Machine: &store.MachineOp{
					Pair:       sp.Pair,
					Likelihood: sp.Likelihood,
					Posterior:  conf,
				}})
			}
		default:
			uncertain = append(uncertain, sp)
		}
	}
	// Self-correction: re-score the machine verdicts of earlier deltas
	// under the retrained model. Any verdict the mature model no longer
	// stands behind is demoted to the crowd in this delta — the answers
	// upgrade the cache entry machine → asked, so a pair demotes at most
	// once and the crowd arbitrates it for good. This is what lets the
	// young model route aggressively: its early mistakes are revisited,
	// not frozen.
	demoted := rv.reviewMachineVerdictsLocked(l, band)
	if len(demoted) > 0 {
		st.demoted = record.NewPairSet()
		for _, sp := range demoted {
			st.demoted.Add(sp.Pair.A, sp.Pair.B)
		}
		uncertain = append(uncertain, demoted...)
	}
	st.res.MachinePairs = machine
	if machine == 0 && len(demoted) == 0 {
		return st, nil
	}
	st.scored = uncertain
	st.pairs = simjoin.Pairs(uncertain)
	if st.planOnly {
		return st, nil
	}
	if len(uncertain) == 0 {
		// The whole delta resolved by machine: no crowd stage will run to
		// clear the pending set, so clear it in this same commit.
		rv.pending = rv.pending[:0]
		ops = append(ops, store.Op{ClearPending: true})
	}
	if len(ops) > 0 {
		if err := rv.log.Log(&store.Commit{Ops: ops}); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// reviewMachineVerdictsLocked re-scores every machine-resolved cache
// entry under the current model and band, returning the ones the model
// no longer endorses — now inside the band, or on the other side of it
// — for re-injection into the crowd flow. The sweep walks the cache in
// canonical pair order and is a pure read: the entries keep their
// machine provenance until crowd answers arrive and upgrade them. The
// caller holds rv.mu.
func (r *Resolver) reviewMachineVerdictsLocked(l *learn.Learner, band learn.Band) []simjoin.ScoredPair {
	var demoted []simjoin.ScoredPair
	for _, p := range r.cache.Pairs() {
		e := r.cache.Get(p)
		if e.Provenance != verdicts.Machine {
			continue
		}
		d := band.Decide(l.Margin(r.table.inner, p))
		if (d == learn.DecideMatch && e.Posterior >= 0.5) ||
			(d == learn.DecideNonMatch && e.Posterior < 0.5) {
			continue // the verdict still stands
		}
		demoted = append(demoted, simjoin.ScoredPair{Pair: p, Likelihood: e.Likelihood})
	}
	return demoted
}

// projectedCrowdCost is the band-adaptation cost model: the HIT count
// if the uncertain pairs were batched ClusterSize to a task, times the
// replication cost. Exact for pair-based HITs; for cluster-based ones
// it is an upper-bound proxy (the two-tiered packer typically fits more
// than ClusterSize pairs per group), which errs toward keeping the band
// wider — the conservative side.
func projectedCrowdCost(pairs int, opts Options) float64 {
	if pairs == 0 {
		return 0
	}
	hits := (pairs + opts.ClusterSize - 1) / opts.ClusterSize
	return float64(hits*opts.Assignments) * crowd.DollarsPerAssignment
}

// trainLearnerLocked fits the router's classifier from the cache's
// current verdicts: asked pairs with answers and deduced pairs, labeled
// by their session posterior. Machine-resolved pairs are excluded — the
// learner never trains on its own predictions, so routing errors cannot
// compound. When the crowd's verdicts are (almost) all positive — a
// match-heavy workload never shows the learner a negative — the set is
// topped up with machine-pruned pseudo-negatives. Labels are gathered
// in canonical pair order and the SVM runs under the session seed,
// making the model a deterministic pure function of (cache, Options).
// The caller holds rv.mu.
func (r *Resolver) trainLearnerLocked() (*learn.Learner, error) {
	var labels []learn.Label
	pos, neg, maxID := 0, 0, record.ID(0)
	for _, p := range r.cache.Pairs() {
		if p.B > maxID {
			maxID = p.B // canonical pairs: B is the larger ID
		}
		e := r.cache.Get(p)
		switch e.Provenance {
		case verdicts.Asked:
			if len(e.Answers) == 0 {
				continue // likelihood-only entry: no judgment to learn from
			}
		case verdicts.Deduced:
			// Deduced verdicts carry proofs over asked pairs: real signal.
		default:
			continue // Machine: never self-train
		}
		match := e.Posterior >= 0.5
		if match {
			pos++
		} else {
			neg++
		}
		labels = append(labels, learn.Label{Pair: p, Match: match})
	}
	labels = append(labels, r.syntheticNegativesLocked(pos, neg, int(maxID)+1)...)
	return learn.Train(r.table.inner, labels, learn.Options{
		Seed:      r.opts.Seed,
		MinLabels: r.opts.HybridMinLabels,
	})
}

// syntheticNegLimit caps how many machine-pruned pseudo-negatives one
// training run mixes in.
const syntheticNegLimit = 256

// syntheticNegativesLocked tops up a positive-heavy training set with
// pairs the machine pass already rejected: random record pairs that are
// neither judged nor pending candidates sit below the likelihood
// threshold, which under the workflow's own pruning assumption
// (Section 4: sub-threshold pairs are non-matches the crowd never sees)
// makes them legitimate negative labels. Without this, a workload whose
// above-threshold candidates are almost all true matches — the
// product+dup benchmark — never shows the learner a negative and the
// router stays dormant. Sampling is driven by the session seed and
// filtered against the cache and pending set, so the result is
// deterministic in session state. The sampling domain is the first n
// record IDs — the caller passes the highest ID the cache has judged,
// NOT the live table length: records appended after the last
// aggregation must not shift the sample, or a recovered session (which
// rebuilds the learner lazily, after the next batch is already in the
// table) would train a different model than the session it replays.
// Only the negative side is ever synthesized: a sub-threshold pair may
// be presumed a non-match, but nothing short of a verdict may be
// presumed a match. The caller holds rv.mu.
func (r *Resolver) syntheticNegativesLocked(pos, neg, n int) []learn.Label {
	if pos == 0 || neg*4 >= pos {
		return nil // real negatives are plentiful enough to band on
	}
	need := min(pos, syntheticNegLimit) - neg
	if n > r.table.Len() {
		n = r.table.Len()
	}
	if need <= 0 || n < 2 {
		return nil
	}
	exclude := make(map[record.Pair]bool, len(r.pending))
	for _, sp := range r.pending {
		exclude[sp.Pair] = true
	}
	rng := rand.New(rand.NewSource(r.opts.Seed))
	var out []learn.Label
	for attempts := 0; attempts < 50*need && len(out) < need; attempts++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		p := record.MakePair(record.ID(i), record.ID(j))
		if exclude[p] || r.cache.Has(p) {
			continue
		}
		exclude[p] = true
		out = append(out, learn.Label{Pair: p, Match: false, Synthetic: true})
	}
	return out
}

// poolAccuracyLocked is the answer-weighted mean worker accuracy
// against the session's current posteriors — the pool-quality signal
// the router's risk adaptation reads (the same report WorkerStats
// serves, reduced to one number). Returns 0 (meaning "no evidence, no
// adaptation") before the first aggregation. The caller holds rv.mu.
func (r *Resolver) poolAccuracyLocked() float64 {
	answers := r.cache.AllAnswers()
	if len(answers) == 0 {
		return 0
	}
	post := make(aggregate.Posterior)
	for _, p := range r.cache.Pairs() {
		post[p] = r.cache.Get(p).Posterior
	}
	rep := aggregate.WorkerReport(answers, post)
	// Deterministic reduction: iterate workers in sorted order so the
	// float sum never depends on map order.
	workers := make([]int, 0, len(rep))
	for w := range rep {
		workers = append(workers, w)
	}
	sort.Ints(workers)
	var wsum float64
	var n int
	for _, w := range workers {
		s := rep[w]
		wsum += s.Accuracy * float64(s.Answers)
		n += s.Answers
	}
	if n == 0 {
		return 0
	}
	return wsum / float64(n)
}

// appendMachineMatches adds the cache's machine-resolved verdicts to
// the match list with the router's calibrated confidence, returning how
// many were added. Asked pairs enter the list via the aggregation
// posterior and deduced ones via their proofs; machine pairs have
// neither answers nor proofs, so they are ranked here.
func appendMachineMatches(cache *verdicts.Cache, ms *[]Match) int {
	n := 0
	for _, p := range cache.Pairs() {
		e := cache.Get(p)
		if e.Provenance != verdicts.Machine {
			continue
		}
		*ms = append(*ms, Match{
			Pair:       Pair{A: int(p.A), B: int(p.B)},
			Confidence: e.Posterior,
		})
		n++
	}
	return n
}

// HybridStats is a hybrid session's routing posture: how the judged
// pairs split by provenance, the classifier's training coverage, and
// the uncertainty band the most recent routed delta used.
type HybridStats struct {
	// Enabled reports Options.Hybrid for the session.
	Enabled bool
	// MachinePairs, CrowdPairs and DeducedPairs split the cache's judged
	// pairs by provenance (CrowdPairs counts asked entries).
	MachinePairs, CrowdPairs, DeducedPairs int
	// TrainingPos and TrainingNeg are the per-class label counts the
	// current learner was trained from (0 before the first training).
	TrainingPos, TrainingNeg int
	// Ready reports whether the learner has a usable model — enough
	// labels of both classes — so the next delta will actually route.
	Ready bool
	// BandLo and BandHi are the margin thresholds of the band the last
	// routed delta used (0 until a delta routes with a ready learner).
	BandLo, BandHi float64
	// Risk is the effective per-class machine-error budget behind that
	// band, after pool-quality and budget adaptation.
	Risk float64
	// SpentDollars is the session's cumulative crowd spend;
	// BudgetDollars echoes Options.HybridBudgetDollars.
	SpentDollars, BudgetDollars float64
}

// HybridStats reports the session's current hybrid-routing posture. It
// is meaningful for any session (a non-hybrid one reports zero machine
// pairs and Enabled false) and safe to call while a resolve is waiting
// on the crowd.
func (r *Resolver) HybridStats() HybridStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	hs := HybridStats{
		Enabled:       r.opts.hybrid(),
		MachinePairs:  r.cache.MachineLen(),
		DeducedPairs:  r.cache.DeducedLen(),
		Risk:          r.lastRisk,
		BandLo:        r.lastBand.Lo,
		BandHi:        r.lastBand.Hi,
		SpentDollars:  r.spent,
		BudgetDollars: r.opts.HybridBudgetDollars,
	}
	hs.CrowdPairs = r.cache.Len() - hs.MachinePairs - hs.DeducedPairs
	if r.learner != nil {
		hs.TrainingPos, hs.TrainingNeg = r.learner.Labels()
		hs.Ready = r.learner.Ready()
	}
	return hs
}

// EstimateDelta projects the next ResolveDelta of this live session —
// candidates, machine/crowd split, HIT count and cost — without running
// the crowd. Unlike the package-level EstimateCost (which estimates
// over a fresh throwaway session), the projection runs through this
// session's verdict cache and trained hybrid learner, so a mature
// hybrid session's estimate shows the shrunken uncertain band the next
// delta will actually pay for. The machine pass genuinely absorbs the
// delta into the join index; the discovered candidates are recorded as
// pending (exactly as a failed delta would leave them), so the
// following ResolveDelta resolves precisely the estimated work — the
// estimate changes when it is next paid for, never what.
func (r *Resolver) EstimateDelta() (*Estimate, error) {
	r.resolveMu.Lock()
	defer r.resolveMu.Unlock()
	r.mu.RLock()
	empty := r.table.Len() == 0
	r.mu.RUnlock()
	if empty {
		return nil, errors.New("crowder: empty table")
	}
	st := &resolveState{rv: r, planOnly: true, keepPending: true, res: &Result{}}
	final, _, err := resolvePipeline().Upto("generate").Run(context.Background(), st)
	if err != nil {
		return nil, err
	}
	return estimateFromPlan(final.res, r.opts), nil
}
