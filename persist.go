package crowder

import (
	"errors"
	"fmt"

	"github.com/crowder/crowder/internal/crowd"
	"github.com/crowder/crowder/internal/store"
)

// Store is the durable session log (see internal/store): every state
// mutation a Resolver or queue backend makes — appended records, posted
// HITs, claim leases, raw answers, aggregated verdicts with provenance,
// retractions — is logged as an event, and a crashed session recovers
// from the log bit-identically to one that never crashed. The default
// (Options.Store nil) is the in-memory no-op store: behavior identical
// to a build without persistence.
type Store = store.Store

// StoreOptions configures the file-backed store (snapshot cadence).
type StoreOptions = store.Options

// FileStore is the file-backed Store: a write-ahead log of
// length-prefixed, CRC-checked event records plus periodic compacting
// snapshots. Paid-for crowd verdicts are fsynced before the commit
// returns.
type FileStore = store.FileLog

// Recovered is the session state OpenStore replayed from disk; pass it
// to RestoreResolver (and, for queue sessions, RestoreQueue) to resume.
type Recovered = store.Recovered

// QueueSnapshot is a queue backend's recovered state (open HITs, claim
// leases, collected assignments); see RestoreQueue.
type QueueSnapshot = crowd.QueueSnapshot

// QueueJournal is the queue-side persistence hook: NewQueueJournal
// adapts a Store into one, and QueueOptions.Journal accepts it.
type QueueJournal = crowd.Journal

// OpenStore opens (or creates) the file-backed session store in dir and
// replays whatever it holds. A torn final record — a crash mid-write —
// is tolerated and truncated; corruption anywhere earlier fails loudly.
func OpenStore(dir string, opts StoreOptions) (*FileStore, *Recovered, error) {
	return store.Open(dir, opts)
}

// NewQueueJournal returns the journal that persists a queue backend's
// lifecycle (posted HITs, claims, answers, expiries, retractions) to the
// session store. Wire it into QueueOptions.Journal for the queue whose
// session logs to s.
func NewQueueJournal(s Store) QueueJournal {
	return store.QueueJournal(s)
}

// RestoreQueue rebuilds a queue backend from its recovered snapshot:
// open HITs resume their lifecycle, outstanding claim leases survive
// with their original deadlines (leases that expired during the outage
// surface as normal expiries on the first sweep), and workers keep their
// identities. Collected in-flight assignments travel to the resolver via
// Recovered.Resume instead.
func RestoreQueue(opts QueueOptions, s *QueueSnapshot) *QueueBackend {
	return crowd.RestoreQueue(opts, s)
}

// EnsureHITIDFloor raises the process-wide HIT ID allocator to at least
// n, so HITs posted after a recovery never collide with recovered ones.
// Pass the max Recovered.NextHITID across every session being restored.
func EnsureHITIDFloor(n int) {
	crowd.EnsureHITIDFloor(n)
}

// RestoreResolver rebuilds a resolution session from recovered state:
// the table is re-appended row by row, the similarity-join index is
// rebuilt by replaying the logged absorb boundaries (bit-identical to
// the crashed index — frozen per-delta token weights demand the original
// boundaries, not one bulk absorb), and the verdict cache, pending
// candidates and in-flight HIT state are installed wholesale. Options
// must match the crashed session's (the service persists and re-derives
// them); the aggregator is cross-checked against the logged identity.
//
// The next ResolveDelta adopts the recovered in-flight HITs by content
// instead of re-posting them — a restarted session re-issues zero HITs
// for pairs the crowd already judged or still holds.
func RestoreResolver(rec *Recovered, opts Options) (*Resolver, error) {
	if rec == nil {
		return nil, errors.New("crowder: nil recovered state")
	}
	if len(rec.Meta.Schema) == 0 && len(rec.Rows) > 0 {
		return nil, errors.New("crowder: recovered rows without a schema")
	}
	t := NewTable(rec.Meta.Schema...)
	for _, row := range rec.Rows {
		if row.Src < 0 {
			t.Append(row.Values...)
		} else {
			t.AppendFrom(row.Src, row.Values...)
		}
	}
	r, err := newResolverWith(t, opts, rec.Cache)
	if err != nil {
		return nil, err
	}
	if rec.Meta.Aggregator != "" && rec.Meta.Aggregator != r.agg.Name() {
		return nil, fmt.Errorf("crowder: recovered session was aggregated with %q; options select %q (one session, one aggregation mode)", rec.Meta.Aggregator, r.agg.Name())
	}
	for _, b := range rec.Boundaries {
		if r.sidx != nil {
			r.sidx.Absorb(b)
		} else if r.idx != nil {
			r.idx.Absorb(b)
		}
	}
	r.blocked = rec.Blocked
	r.pending = append(r.pending, rec.Pending...)
	r.resume = rec.Resume
	// The hybrid router's budget accounting survives the crash; its
	// learner does not need to — it is a pure function of the recovered
	// cache and is rebuilt lazily at the next route.
	r.spent = rec.Meta.Spent
	return r, nil
}
