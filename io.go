package crowder

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// CSVOptions configures ReadCSV.
type CSVOptions struct {
	// Header treats the first row as the schema. Without it, columns are
	// named col0, col1, ….
	Header bool
	// SourceColumn optionally names (with Header) or indexes (without) a
	// column holding an integer source tag for two-source integration;
	// the column is consumed, not stored as an attribute.
	SourceColumn string
	// Comma is the field delimiter (default ',').
	Comma rune
}

// ReadCSV loads records from CSV into a Table. Every row becomes one
// record; ragged rows are rejected. Rows are streamed into the table one
// at a time — the reader's row buffer is reused and each record's values
// are copied out — so loading an n-row catalog takes O(row) transient
// memory on top of the table itself, never a second full copy of the
// file.
func ReadCSV(r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.FieldsPerRecord = -1
	cr.ReuseRecord = true

	first, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("crowder: empty csv input")
	}
	if err != nil {
		return nil, fmt.Errorf("crowder: reading csv: %w", err)
	}

	var schema []string
	if opts.Header {
		schema = append(schema, first...)
	} else {
		for i := range first {
			schema = append(schema, "col"+strconv.Itoa(i))
		}
	}

	srcIdx := -1
	if opts.SourceColumn != "" {
		if opts.Header {
			for i, name := range schema {
				if name != opts.SourceColumn {
					continue
				}
				if srcIdx >= 0 {
					// A duplicated header is ambiguous: silently taking the
					// first match would tag every record with attribute data.
					return nil, fmt.Errorf("crowder: source column %q appears %d times in header %v", opts.SourceColumn, count(schema, opts.SourceColumn), schema)
				}
				srcIdx = i
			}
			if srcIdx < 0 {
				return nil, fmt.Errorf("crowder: source column %q not in header %v", opts.SourceColumn, schema)
			}
		} else {
			idx, err := strconv.Atoi(opts.SourceColumn)
			if err != nil || idx < 0 || idx >= len(schema) {
				return nil, fmt.Errorf("crowder: source column %q is not a valid index", opts.SourceColumn)
			}
			srcIdx = idx
		}
		schema = append(schema[:srcIdx:srcIdx], schema[srcIdx+1:]...)
	}

	t := NewTable(schema...)
	appendRow := func(rowNum int, row []string) error {
		if len(row) != len(schema)+btoi(srcIdx >= 0) {
			return fmt.Errorf("crowder: row %d has %d fields; want %d", rowNum, len(row), len(schema)+btoi(srcIdx >= 0))
		}
		if srcIdx >= 0 {
			src, err := strconv.Atoi(row[srcIdx])
			if err != nil {
				return fmt.Errorf("crowder: row %d: source %q is not an integer", rowNum, row[srcIdx])
			}
			vals := append(append([]string(nil), row[:srcIdx]...), row[srcIdx+1:]...)
			t.AppendFrom(src, vals...)
		} else {
			t.Append(row...)
		}
		return nil
	}

	rowNum := 1
	if !opts.Header {
		if err := appendRow(rowNum, first); err != nil {
			return nil, err
		}
	}
	for {
		rowNum++
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("crowder: reading csv: %w", err)
		}
		if err := appendRow(rowNum, row); err != nil {
			return nil, err
		}
	}
	if t.Len() == 0 {
		return nil, fmt.Errorf("crowder: csv has a header but no data rows")
	}
	return t, nil
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func count(ss []string, s string) int {
	n := 0
	for _, v := range ss {
		if v == s {
			n++
		}
	}
	return n
}

// WriteMatchesCSV writes the matches as "a,b,confidence" rows, with a
// header, for downstream consumption. Confidence is written with the
// shortest decimal form that round-trips the exact float64, so exporting
// and re-importing matches loses nothing (4-decimal rounding used to
// collapse nearby posteriors into ties).
func WriteMatchesCSV(w io.Writer, matches []Match) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"record_a", "record_b", "confidence"}); err != nil {
		return err
	}
	for _, m := range matches {
		err := cw.Write([]string{
			strconv.Itoa(m.Pair.A),
			strconv.Itoa(m.Pair.B),
			strconv.FormatFloat(m.Confidence, 'g', -1, 64),
		})
		if err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Entities groups the accepted matches (confidence ≥ 0.5) into entity
// clusters: the connected components of the match relation, each sorted,
// singletons omitted. This is the final deliverable of an ER pipeline —
// "these records are the same thing".
func (r *Result) Entities() [][]int {
	parent := make(map[int]int)
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p != x {
			parent[x] = find(p)
		}
		return parent[x]
	}
	for _, m := range r.Accepted() {
		ra, rb := find(m.Pair.A), find(m.Pair.B)
		if ra != rb {
			parent[ra] = rb
		}
	}
	groups := make(map[int][]int)
	for x := range parent {
		root := find(x)
		groups[root] = append(groups[root], x)
	}
	var out [][]int
	for _, g := range groups {
		if len(g) < 2 {
			continue
		}
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
